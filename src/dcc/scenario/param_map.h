// String-keyed parameter bags for scenario specs ("n=4096,side=20").
//
// Values stay in their textual form so a parsed spec serializes back
// byte-identically; typed getters convert on read. Every read marks its key
// consumed, and `CheckAllConsumed` turns leftover keys into errors — a
// misspelled parameter fails the run instead of silently using a default.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dcc::scenario {

class ParamMap {
 public:
  ParamMap() = default;

  // Parses "k=v,k=v,..."; the empty string yields an empty map. `context`
  // names the owner (e.g. "topology 'uniform'") in error messages.
  static ParamMap Parse(const std::string& text, const std::string& context);

  // Inserts or overwrites.
  void Set(const std::string& key, const std::string& value);
  bool Has(const std::string& key) const;

  // Typed getters: absent keys return `fallback`; malformed values throw
  // InvalidArgument. Reads mark the key consumed.
  std::int64_t GetInt(const std::string& key, std::int64_t fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;

  // Throws InvalidArgument listing every key no getter ever read.
  void CheckAllConsumed(const std::string& context) const;

  // Canonical "k=v,k=v" in insertion order; "" when empty.
  std::string ToString() const;

  // Copy with entries sorted by key — the order-invariant view behind
  // ScenarioSpec::CanonicalKey. Consumption marks are not carried over.
  ParamMap Sorted() const;

  bool empty() const { return entries_.empty(); }
  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;
  }

  friend bool operator==(const ParamMap& a, const ParamMap& b) {
    return a.entries_ == b.entries_;
  }

 private:
  const std::string* Find(const std::string& key) const;

  std::vector<std::pair<std::string, std::string>> entries_;
  // Consumption tracking is observational (getters are logically const).
  mutable std::vector<char> consumed_;
};

}  // namespace dcc::scenario
