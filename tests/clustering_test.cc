// Theorem 1: Clustering builds a valid 1-clustering of an unclustered set:
// (i) each cluster inside a constant-radius ball around its center;
// (ii) each unit ball meets O(1) clusters; every node assigned, centers
// pairwise > 1 - eps apart.
#include "dcc/cluster/clustering.h"

#include <gtest/gtest.h>

#include <tuple>

#include "dcc/cluster/validate.h"
#include "dcc/workload/generators.h"

namespace dcc::cluster {
namespace {

sinr::Params TestParams() {
  sinr::Params p = sinr::Params::Default();
  p.id_space = 1 << 12;
  return p;
}

std::vector<std::size_t> AllIndices(const sinr::Network& net) {
  std::vector<std::size_t> all(net.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return all;
}

void ExpectValid(const sinr::Network& net, const std::vector<std::size_t>& all,
                 const ClusteringResult& res, const std::string& tag) {
  EXPECT_EQ(res.unassigned, 0u) << tag;
  const auto chk = CheckClustering(net, all, res.cluster_of);
  EXPECT_TRUE(chk.ValidRClustering(1.0, net.params().eps))
      << tag << " radius=" << chk.max_radius << " sep=" << chk.min_center_sep
      << " assigned=" << chk.assigned << "/" << chk.members;
  // O(1) clusters per unit ball: centers >= 1-eps apart pack at most
  // chi(2, 1-eps) centers within distance 2 of any point; radius-1 clusters
  // intersecting a unit ball have centers within 2.
  EXPECT_LE(chk.max_clusters_per_unit_ball, ChiUpperBound(2.0, 1.0 - net.params().eps))
      << tag;
}

TEST(ClusteringTest, UniformDenseField) {
  const auto params = TestParams();
  auto pts = workload::UniformSquare(96, 4.0, 11);
  const auto net = workload::MakeNetwork(pts, params, 21);
  const auto prof = Profile::Practical(params.id_space);
  const auto all = AllIndices(net);
  sim::Exec ex(net);
  const auto res = BuildClustering(ex, prof, all, SubsetDensity(net, all), 1);
  ExpectValid(net, all, res, "uniform");
}

TEST(ClusteringTest, SingleClump) {
  const auto params = TestParams();
  std::vector<Vec2> pts;
  for (int i = 0; i < 24; ++i) pts.push_back({0.05 * i, 0.04 * (i % 6)});
  const auto net = workload::MakeNetwork(pts, params, 9);
  const auto prof = Profile::Practical(params.id_space);
  const auto all = AllIndices(net);
  sim::Exec ex(net);
  const auto res = BuildClustering(ex, prof, all, 24, 2);
  ExpectValid(net, all, res, "clump");
  // A diameter-1.2 clump: a handful of clusters at most.
  const auto chk = CheckClustering(net, all, res.cluster_of);
  EXPECT_LE(chk.num_clusters, 9);
}

TEST(ClusteringTest, SparseSetSelfClusters) {
  const auto params = TestParams();
  auto pts = workload::Grid(4, 4, 1.5);  // pairwise >= 1.5: all isolated
  const auto net = workload::MakeNetwork(pts, params, 13);
  const auto prof = Profile::Practical(params.id_space);
  const auto all = AllIndices(net);
  sim::Exec ex(net);
  const auto res = BuildClustering(ex, prof, all, 2, 3);
  ExpectValid(net, all, res, "sparse");
  const auto chk = CheckClustering(net, all, res.cluster_of);
  EXPECT_EQ(chk.num_clusters, 16);  // everyone their own cluster
}

TEST(ClusteringTest, LineTopology) {
  const auto params = TestParams();
  auto pts = workload::Line(40, 0.35, 4);
  const auto net = workload::MakeNetwork(pts, params, 17);
  const auto prof = Profile::Practical(params.id_space);
  const auto all = AllIndices(net);
  sim::Exec ex(net);
  const auto res = BuildClustering(ex, prof, all, SubsetDensity(net, all), 5);
  ExpectValid(net, all, res, "line");
}

TEST(ClusteringTest, DeterministicAcrossRuns) {
  const auto params = TestParams();
  auto pts = workload::UniformSquare(64, 4.0, 3);
  const auto net = workload::MakeNetwork(pts, params, 23);
  const auto prof = Profile::Practical(params.id_space);
  const auto all = AllIndices(net);
  sim::Exec ex1(net), ex2(net);
  const auto a = BuildClustering(ex1, prof, all, 12, 7);
  const auto b = BuildClustering(ex2, prof, all, 12, 7);
  EXPECT_EQ(a.cluster_of, b.cluster_of);
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(ClusteringTest, RoundsScaleWithGammaTimesLogN) {
  // Theorem 1 shape: rounds/Gamma stays within a logN-ish band as density
  // grows (coarse shape check, not a constant-factor assertion).
  const auto params = TestParams();
  std::vector<double> per_gamma;
  for (const int n : {48, 96, 192}) {
    auto pts = workload::UniformSquare(n, 4.0, 29);
    const auto net = workload::MakeNetwork(pts, params, 31);
    const auto prof = Profile::Practical(params.id_space);
    const auto all = AllIndices(net);
    const int gamma = SubsetDensity(net, all);
    sim::Exec ex(net);
    const auto res = BuildClustering(ex, prof, all, gamma, 9);
    EXPECT_EQ(res.unassigned, 0u);
    per_gamma.push_back(static_cast<double>(res.rounds) /
                        std::max(1, gamma));
  }
  // Quadrupling density shouldn't blow rounds/Gamma by more than ~6x.
  EXPECT_LT(per_gamma.back(), 6.0 * per_gamma.front() + 1e4);
}

class ClusteringSweep
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(ClusteringSweep, ValidAcrossWorkloads) {
  const auto [n, side, seed] = GetParam();
  const auto params = TestParams();
  auto pts = workload::UniformSquare(n, side, static_cast<std::uint64_t>(seed));
  const auto net = workload::MakeNetwork(
      pts, params, static_cast<std::uint64_t>(seed) + 17);
  const auto prof = Profile::Practical(params.id_space);
  const auto all = AllIndices(net);
  sim::Exec ex(net);
  const auto res = BuildClustering(ex, prof, all, SubsetDensity(net, all),
                                   static_cast<std::uint64_t>(seed));
  ExpectValid(net, all, res,
              "n=" + std::to_string(n) + " side=" + std::to_string(side) +
                  " seed=" + std::to_string(seed));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClusteringSweep,
    ::testing::Values(std::tuple{64, 3.0, 1}, std::tuple{96, 4.0, 2},
                      std::tuple{128, 4.0, 3}, std::tuple{96, 6.0, 4},
                      std::tuple{128, 8.0, 5}));

}  // namespace
}  // namespace dcc::cluster
