#include "dcc/stats/recorder.h"

#include <ostream>

#include "dcc/common/json.h"

namespace dcc::stats {

std::size_t Recorder::FindOrCreate(const std::string& key) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].first == key) return i;
  }
  entries_.emplace_back(key, 0.0);
  return entries_.size() - 1;
}

void Recorder::Add(const std::string& key, double value) {
  entries_[FindOrCreate(key)].second += value;
}

void Recorder::Set(const std::string& key, double value) {
  entries_[FindOrCreate(key)].second = value;
}

double Recorder::Get(const std::string& key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return v;
  }
  return 0.0;
}

bool Recorder::Has(const std::string& key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return true;
  }
  return false;
}

void Recorder::Print(std::ostream& os, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  for (const auto& [k, v] : entries_) {
    os << pad << k << " = " << v << '\n';
  }
}

void Recorder::PrintJson(std::ostream& os) const {
  os << '{';
  bool first = true;
  for (const auto& [k, v] : entries_) {
    if (!first) os << ", ";
    first = false;
    os << JsonQuote(k) << ": " << JsonNumber(v);
  }
  os << '}';
}

}  // namespace dcc::stats
