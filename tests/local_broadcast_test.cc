// Theorem 2: LocalBroadcast delivers every node's message to all its
// communication-graph neighbors in O(Delta log N log* N) rounds.
#include "dcc/bcast/local_broadcast.h"

#include <gtest/gtest.h>

#include <tuple>

#include "dcc/cluster/validate.h"
#include "dcc/workload/generators.h"

namespace dcc::bcast {
namespace {

sinr::Params TestParams() {
  sinr::Params p = sinr::Params::Default();
  p.id_space = 1 << 12;
  return p;
}

std::vector<std::size_t> AllIndices(const sinr::Network& net) {
  std::vector<std::size_t> all(net.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return all;
}

TEST(LocalBroadcastTest, FullCoverageOnUniformField) {
  const auto params = TestParams();
  auto pts = workload::UniformSquare(96, 4.0, 31);
  const auto net = workload::MakeNetwork(pts, params, 7);
  const auto prof = cluster::Profile::Practical(params.id_space);
  const auto all = AllIndices(net);
  const int gamma = cluster::SubsetDensity(net, all);

  sim::Exec ex(net);
  const auto res = LocalBroadcast(ex, prof, all, gamma, 1);
  EXPECT_EQ(res.covered_cumulative, res.members)
      << "single-round covered: " << res.covered_single_round;
  // The SNS guarantee is stronger: most nodes are covered in one round.
  EXPECT_GE(res.covered_single_round, res.members * 9 / 10);
}

TEST(LocalBroadcastTest, StageRoundsAddUp) {
  const auto params = TestParams();
  auto pts = workload::UniformSquare(64, 4.0, 5);
  const auto net = workload::MakeNetwork(pts, params, 3);
  const auto prof = cluster::Profile::Practical(params.id_space);
  const auto all = AllIndices(net);
  sim::Exec ex(net);
  const auto res = LocalBroadcast(ex, prof, all, 12, 2);
  EXPECT_EQ(res.rounds,
            res.clustering_rounds + res.labeling_rounds + res.sns_rounds);
  EXPECT_GT(res.clustering_rounds, 0);
  EXPECT_GT(res.sns_rounds, 0);
}

TEST(LocalBroadcastTest, IsolatedNodesTriviallyCovered) {
  const auto params = TestParams();
  auto pts = workload::Grid(3, 3, 3.0);  // no comm edges at all
  const auto net = workload::MakeNetwork(pts, params, 9);
  const auto prof = cluster::Profile::Practical(params.id_space);
  const auto all = AllIndices(net);
  sim::Exec ex(net);
  const auto res = LocalBroadcast(ex, prof, all, 2, 3);
  EXPECT_EQ(res.covered_cumulative, res.members);
}

TEST(LocalBroadcastTest, DeterministicRounds) {
  const auto params = TestParams();
  auto pts = workload::UniformSquare(48, 3.0, 8);
  const auto net = workload::MakeNetwork(pts, params, 2);
  const auto prof = cluster::Profile::Practical(params.id_space);
  const auto all = AllIndices(net);
  sim::Exec ex1(net), ex2(net);
  const auto a = LocalBroadcast(ex1, prof, all, 10, 4);
  const auto b = LocalBroadcast(ex2, prof, all, 10, 4);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.covered_cumulative, b.covered_cumulative);
}

class LocalBroadcastSweep
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(LocalBroadcastSweep, FullCumulativeCoverage) {
  const auto [n, side, seed] = GetParam();
  const auto params = TestParams();
  auto pts = workload::UniformSquare(n, side, static_cast<std::uint64_t>(seed));
  const auto net = workload::MakeNetwork(
      pts, params, static_cast<std::uint64_t>(seed) + 71);
  const auto prof = cluster::Profile::Practical(params.id_space);
  const auto all = AllIndices(net);
  const int gamma = cluster::SubsetDensity(net, all);
  sim::Exec ex(net);
  const auto res =
      LocalBroadcast(ex, prof, all, gamma, static_cast<std::uint64_t>(seed));
  EXPECT_EQ(res.covered_cumulative, res.members)
      << "n=" << n << " side=" << side << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LocalBroadcastSweep,
    ::testing::Values(std::tuple{48, 3.0, 1}, std::tuple{96, 4.0, 2},
                      std::tuple{128, 5.0, 3}, std::tuple{96, 7.0, 4}));

}  // namespace
}  // namespace dcc::bcast
