# Empty dependencies file for bench_fig7_chain_lower_bound.
# This may be replaced when dependencies are built.
