# Empty dependencies file for dcc.
# This may be replaced when dependencies are built.
