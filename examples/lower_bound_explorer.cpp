// Lower-bound explorer: builds the Section 6 gadget, prints its geometry,
// runs the Lemma 13 adversary against a density-aware selector schedule,
// and replays the jammed rounds so you can watch t stay deaf.
//
//   $ ./examples/lower_bound_explorer [delta] [seed]
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <numeric>

#include "dcc/lowerbound/adversary.h"
#include "dcc/lowerbound/gadget.h"
#include "dcc/sinr/engine.h"

int main(int argc, char** argv) {
  using namespace dcc;

  const int delta = argc > 1 ? std::atoi(argv[1]) : 10;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  auto params = lowerbound::GadgetParams(3.0, 0.1, 2.0);
  params.id_space = 1 << 12;
  const auto g = lowerbound::MakeGadget(delta, params, 2.0);

  std::cout << "gadget, Delta=" << delta << " (alpha=" << params.alpha
            << ", beta=" << params.beta << ", eps=" << params.eps << "):\n";
  std::cout << std::fixed << std::setprecision(6);
  std::cout << "  s   at x=" << g.positions[g.s].x << "\n";
  for (std::size_t i = 0; i < g.core.size(); ++i) {
    const double x = g.positions[g.core[i]].x;
    std::cout << "  v" << i << (i + 1 == g.core.size() ? " (only node t hears)" : "")
              << " at x=" << x;
    if (i > 0) {
      std::cout << "  gap=" << x - g.positions[g.core[i - 1]].x;
    }
    std::cout << "\n";
  }
  std::cout << "  t   at x=" << g.positions[g.t].x << "\n\n";

  // The algorithm under attack: a deterministic selector schedule with
  // density-aware parameter k = Delta.
  const auto trace = lowerbound::SelectorTrace(params.id_space, delta, seed);
  std::vector<NodeId> pool(static_cast<std::size_t>(delta) + 2);
  std::iota(pool.begin(), pool.end(), NodeId{100});
  const auto asg =
      lowerbound::AssignAdversarialIds(trace, pool, delta, 1 << 15);
  std::cout << "adversary: pinned id " << asg.core_ids.back()
            << " to v_{Delta+1}; certified deaf until round "
            << asg.blocked_until << " (~" << std::setprecision(1)
            << static_cast<double>(asg.blocked_until) / delta
            << " x Delta)\n\n";

  // Replay on the real engine.
  std::vector<NodeId> ids(g.positions.size());
  ids[g.s] = 1;
  ids[g.t] = 2;
  for (std::size_t i = 0; i < g.core.size(); ++i) {
    ids[g.core[i]] = asg.core_ids[i];
  }
  const sinr::Network net(g.positions, ids, params);
  const sinr::Engine eng(net);
  int shown = 0;
  for (Round r = 0; r <= asg.blocked_until && shown < 12; ++r) {
    std::vector<std::size_t> tx;
    for (const std::size_t c : g.core) {
      if (trace(net.id(c), r)) tx.push_back(c);
    }
    if (tx.empty()) continue;
    const bool last_tx =
        std::find(tx.begin(), tx.end(), g.core.back()) != tx.end();
    if (!last_tx && shown >= 6) continue;  // show mostly the relevant rounds
    const auto recs = eng.Step(tx, {g.t});
    std::cout << "  round " << std::setw(5) << r << ": " << tx.size()
              << " core transmitter(s)"
              << (last_tx ? " incl. v_{Delta+1}" : "")
              << " -> t " << (recs.empty() ? "hears nothing" : "HEARS!")
              << "\n";
    ++shown;
  }
  std::cout << "  ...\n  round " << std::setw(5) << asg.blocked_until
            << ": v_{Delta+1} finally transmits alone -> t hears.\n\n"
            << "This is Theorem 6's Omega(Delta): without randomness,\n"
            << "coordinates or carrier sensing, the adversary's id choice\n"
            << "keeps at least two transmitters colliding in every useful\n"
            << "round, and the geometric gaps make any collision jam the\n"
            << "entire suffix of the core (Fact 2).\n";
  return 0;
}
