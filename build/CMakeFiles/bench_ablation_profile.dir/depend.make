# Empty dependencies file for bench_ablation_profile.
# This may be replaced when dependencies are built.
