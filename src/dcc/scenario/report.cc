#include "dcc/scenario/report.h"

#include <ostream>

#include "dcc/common/json.h"

namespace dcc::scenario {

void RunReport::PrintJson(std::ostream& os) const {
  os << "{\"schema\": \"dcc.run_report.v1\", \"topology\": "
     << JsonQuote(topology) << ", \"algo\": " << JsonQuote(algo)
     << ", \"seed\": " << seed << ", \"ok\": " << (ok ? "true" : "false");
  if (!error.empty()) os << ", \"error\": " << JsonQuote(error);
  os << ", \"metrics\": ";
  metrics.PrintJson(os);
  if (!dynamic.empty()) {
    os << ", \"dynamic\": {\"schema\": \"dcc.dynamic.v1\", \"model\": "
       << JsonQuote(dynamic.model)
       << ", \"epoch_len\": " << JsonNumber(dynamic.epoch_len)
       << ", \"epochs\": [";
    for (std::size_t i = 0; i < dynamic.epochs.size(); ++i) {
      if (i) os << ", ";
      dynamic.epochs[i].PrintJson(os);
    }
    os << "]}";
  }
  os << '}';
}

void PrintSweepJson(std::ostream& os, const std::string& spec_line,
                    const std::vector<RunReport>& runs) {
  os << "{\"schema\": \"dcc.sweep.v1\", \"spec\": " << JsonQuote(spec_line)
     << ", \"runs\": [";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (i) os << ", ";
    runs[i].PrintJson(os);
  }
  os << "]}\n";
}

}  // namespace dcc::scenario
