// bench_parallel_rounds — the scaling axis of the sharded round engine:
// one grid-mode SINR round decomposed across K shards on the shared
// WorkerPool, versus the same round serial.
//
// For each n in {4096, 16384, 65536} (--full extends the ladder to 262144
// and 1048576) and each transmitter regime — dense (every 8th node
// transmits, the acceptance-target workload), sparse (every 64th) and
// dynamic (a mobility + churn epoch loop exercising the incremental index
// path) — the bench walks a thread ladder {1, 2, 4, ..., hw}: it first
// pins the parallel round's receptions bit-identical to threads=1, then
// times ms/round and reports the speedup over the serial engine. For
// threads > 1 each config is timed twice: --pipeline off and on (the on
// pass discloses every next round via SetNextRound, the schedule-driven
// pattern), so the pipelining win is a first-class column. Per-shard
// cumulative loads come straight from Engine::Stats.
//
// Two far-field-specific regimes ride along at fixed sizes:
//   sparse_wide  n=65536 single-thread, every 16th node transmits across
//                thousands of 2.0-side tiles — the far-field-dominated
//                workload. Timed with --farfield=pyramid and flat; the
//                pyramid's speedup column is the acceptance target (>= 2x).
//   tdma         n=4096, an 8-slot periodic schedule for 96 rounds, with
//                --prologue-cache=8 vs off. Emits the cache hit_rate
//                (expected (96-8)/96 after the first period) and the
//                ms/round win from skipping the serial prologue.
//
// Flags:
//   --compare_json   one JSON object per line (dcc.bench.parallel_rounds.v1)
//   --full           extend the size ladder
//   --min_shard=G    Engine::Options::min_listeners_per_shard (default 8)
//   --sweep_grain    sweep the grain over {1, 2, 8, 64, 512, 4096} instead
//                    of the single --min_shard value
//
// CI uploads the JSON as BENCH_parallel.json and scripts/bench_trend.py
// appends key configs to the tracked BENCH_trend.json.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "dcc/parallel/worker_pool.h"
#include "dcc/sinr/engine.h"
#include "dcc/workload/generators.h"

namespace {

using Clock = std::chrono::steady_clock;
using dcc::Box;
using dcc::Vec2;
using dcc::sinr::Engine;
using dcc::sinr::Network;
using dcc::sinr::Reception;

Network MakeNet(int n) {
  dcc::sinr::Params params = dcc::sinr::Params::Default();
  params.id_space = std::max<std::int64_t>(4 * n, 1 << 16);
  auto pts = dcc::workload::UniformSquare(
      n, std::sqrt(static_cast<double>(n)), 42);
  return dcc::workload::MakeNetwork(std::move(pts), params, 7);
}

void Split(std::size_t n, std::size_t period, std::vector<std::size_t>& tx,
           std::vector<std::size_t>& listeners) {
  tx.clear();
  listeners.clear();
  for (std::size_t i = 0; i < n; ++i) {
    (i % period == 0 ? tx : listeners).push_back(i);
  }
}

bool SameReceptions(const std::vector<Reception>& a,
                    const std::vector<Reception>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].listener != b[i].listener || a[i].sender != b[i].sender ||
        a[i].sinr != b[i].sinr) {
      return false;
    }
  }
  return true;
}

// ms per round, over enough rounds to fill ~300 ms of wall clock. With
// `pipeline` set, every round's sets are disclosed up front — the
// steady-schedule pattern the TDMA lookaheads produce.
double TimeRounds(const Engine& eng, const std::vector<std::size_t>& tx,
                  const std::vector<std::size_t>& listeners,
                  bool pipeline = false) {
  std::vector<Reception> out;
  const auto w0 = Clock::now();
  eng.StepInto(tx, listeners, out);  // warmup sizes the scratch
  const double warm_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - w0).count();
  const int rounds = std::max(3, static_cast<int>(300.0 / (warm_ms + 0.01)));
  const auto t0 = Clock::now();
  for (int r = 0; r < rounds; ++r) {
    if (pipeline) eng.SetNextRound(tx, listeners);
    eng.StepInto(tx, listeners, out);
  }
  const double ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  eng.ClearNextRound();
  return ms / rounds;
}

std::vector<int> ThreadLadder() {
  const int hw = dcc::parallel::WorkerPool::Shared().parallelism();
  std::vector<int> ladder{1, 2};
  for (int t = 4; t <= hw; t *= 2) ladder.push_back(t);
  if (std::find(ladder.begin(), ladder.end(), hw) == ladder.end()) {
    ladder.push_back(hw);
  }
  std::sort(ladder.begin(), ladder.end());
  return ladder;
}

// --- Dynamic regime: mobility + churn epochs over the parallel engine. ---

constexpr int kEpochs = 4;
constexpr int kRoundsPerEpoch = 6;
constexpr std::size_t kChurnPeriod = 41;  // ~2.4% of nodes off per epoch

std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Deterministic per-epoch displacement of every node from its base
// position, up to 0.5 per axis (absolute, not cumulative, so every pass
// sees the identical trajectory).
void JitterPositions(const std::vector<Vec2>& base, int epoch,
                     std::vector<Vec2>& out) {
  out.resize(base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    const std::uint64_t h =
        Mix(i * 2654435761ull + static_cast<std::uint64_t>(epoch) * 40503ull);
    const double dx =
        (static_cast<double>(h & 0xffffffffu) / 4294967295.0 - 0.5);
    const double dy =
        (static_cast<double>(h >> 32) / 4294967295.0 - 0.5);
    out[i] = Vec2{base[i].x + dx, base[i].y + dy};
  }
}

// One full epoch loop: per epoch, move every node, flip the churn slice,
// then run the round schedule. Appends every reception to `digest` (the
// cross-config identity witness) and returns ms/round over the whole pass.
double DynamicPass(const Network& base_net, Engine::Options opts,
                   bool pipeline, std::vector<Reception>& digest) {
  Network net = base_net;  // mutable copy: mobility rewrites positions
  const std::vector<Vec2> base = net.positions();
  Box box = dcc::BoundingBox(base);
  box.lo.x -= 1.0;
  box.lo.y -= 1.0;
  box.hi.x += 1.0;
  box.hi.y += 1.0;
  opts.coverage = box;
  opts.pipeline = pipeline;
  Engine eng(net, opts);

  std::vector<char> active(net.size(), 1);
  std::vector<Vec2> pts;
  std::vector<std::size_t> tx, listeners;
  std::vector<Reception> out;
  const auto t0 = Clock::now();
  for (int e = 0; e < kEpochs; ++e) {
    JitterPositions(base, e, pts);
    net.SetPositions(pts);
    eng.SyncIndex();
    // Rotating churn slice: node i is off during epoch e iff
    // (i + e) % kChurnPeriod == 0.
    for (std::size_t i = 0; i < active.size(); ++i) {
      const char on =
          (i + static_cast<std::size_t>(e)) % kChurnPeriod == 0 ? 0 : 1;
      if (on == active[i]) continue;
      if (on) {
        eng.IndexInsert(i);
      } else {
        eng.IndexErase(i);
      }
      active[i] = on;
    }
    tx.clear();
    listeners.clear();
    for (std::size_t i = 0; i < active.size(); ++i) {
      if (!active[i]) continue;
      (i % 8 == 0 ? tx : listeners).push_back(i);
    }
    for (int r = 0; r < kRoundsPerEpoch; ++r) {
      if (pipeline) eng.SetNextRound(tx, listeners);
      eng.StepInto(tx, listeners, out);
      digest.insert(digest.end(), out.begin(), out.end());
    }
  }
  const double ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  return ms / (kEpochs * kRoundsPerEpoch);
}

void EmitLine(bool json, int n, const char* regime, std::size_t n_tx,
              std::size_t n_listen, int threads, std::size_t min_shard,
              bool pipeline, double ms, double speedup, bool identical,
              int* bad, const char* farfield = "pyramid",
              std::size_t cache = 0, double hit_rate = -1.0) {
  *bad += identical ? 0 : 1;
  if (json) {
    std::cout << "{\"schema\": \"dcc.bench.parallel_rounds.v1\", "
              << "\"n\": " << n << ", \"regime\": \"" << regime
              << "\", \"tx\": " << n_tx << ", \"listeners\": " << n_listen
              << ", \"threads\": " << threads << ", \"min_shard\": "
              << min_shard << ", \"pipeline\": "
              << (pipeline ? "true" : "false") << ", \"farfield\": \""
              << farfield << "\", \"cache\": " << cache
              << ", \"ms_per_round\": " << ms << ", \"speedup\": " << speedup;
    if (hit_rate >= 0.0) std::cout << ", \"hit_rate\": " << hit_rate;
    std::cout << ", \"identical\": " << (identical ? "true" : "false")
              << "}\n";
  } else {
    std::printf("%7d  %-11s  %7d  %8zu  %-4s  %-7s  %5zu  %8.3f  %7.2fx  %s\n",
                n, regime, threads, min_shard, pipeline ? "on" : "off",
                farfield, cache, ms, speedup, identical ? "yes" : "NO");
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool full = false;
  bool sweep_grain = false;
  std::size_t min_shard = Engine::Options{}.min_listeners_per_shard;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--compare_json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    } else if (std::strcmp(argv[i], "--sweep_grain") == 0) {
      sweep_grain = true;
    } else if (std::strncmp(argv[i], "--min_shard=", 12) == 0) {
      min_shard = static_cast<std::size_t>(std::atoll(argv[i] + 12));
      if (min_shard < 1) {
        std::cerr << "bench_parallel_rounds: --min_shard must be >= 1\n";
        return 2;
      }
    } else {
      std::cerr << "usage: bench_parallel_rounds [--compare_json] [--full] "
                   "[--min_shard=G] [--sweep_grain]\n";
      return 2;
    }
  }

  std::vector<int> sizes{4096, 16384, 65536};
  if (full) {
    sizes.push_back(262144);
    sizes.push_back(1048576);
  }
  const std::vector<int> ladder = ThreadLadder();
  const std::vector<std::size_t> grains =
      sweep_grain ? std::vector<std::size_t>{1, 2, 8, 64, 512, 4096}
                  : std::vector<std::size_t>{min_shard};

  if (!json) {
    std::cout << "parallel sharded rounds (grid engine, shared pool; hw "
                 "parallelism "
              << dcc::parallel::WorkerPool::Shared().parallelism() << ")\n"
              << "      n  regime       threads     grain  pipe  farfield  "
                 "cache  ms/round   speedup  identical\n";
  }

  int bad = 0;
  for (const int n : sizes) {
    const Network net = MakeNet(n);
    std::vector<std::size_t> tx, listeners;

    // Static regimes: a fixed round repeated.
    for (const auto& [regime, period] :
         {std::pair<const char*, std::size_t>{"dense", 8},
          std::pair<const char*, std::size_t>{"sparse", 64}}) {
      Split(net.size(), period, tx, listeners);
      const Engine serial(net, {.mode = Engine::Mode::kGrid});
      const std::vector<Reception> want = serial.Step(tx, listeners);
      const double serial_ms = TimeRounds(serial, tx, listeners);
      for (const std::size_t grain : grains) {
        for (const int threads : ladder) {
          Engine::Options opts{.mode = Engine::Mode::kGrid};
          opts.threads = threads;
          opts.min_listeners_per_shard = grain;
          const Engine par(net, opts);
          const bool identical = SameReceptions(want, par.Step(tx, listeners));
          const double ms =
              threads == 1 ? serial_ms : TimeRounds(par, tx, listeners);
          EmitLine(json, n, regime, tx.size(), listeners.size(), threads,
                   grain, false, ms, serial_ms / ms, identical, &bad);
          if (threads == 1) continue;  // pipeline needs a pool
          opts.pipeline = true;
          const Engine piped(net, opts);
          piped.SetNextRound(tx, listeners);
          const bool id_on = SameReceptions(want, piped.Step(tx, listeners));
          const double ms_on = TimeRounds(piped, tx, listeners, true);
          EmitLine(json, n, regime, tx.size(), listeners.size(), threads,
                   grain, true, ms_on, serial_ms / ms_on, id_on, &bad);
        }
      }
    }

    // Dynamic regime: mobility + churn epochs; identity is checked over
    // the concatenated receptions of the whole identical mutation
    // sequence.
    {
      std::vector<Reception> want;
      Engine::Options base_opts{.mode = Engine::Mode::kGrid};
      base_opts.min_listeners_per_shard = grains.front();
      const double serial_ms = DynamicPass(net, base_opts, false, want);
      const std::size_t n_tx = (net.size() + 7) / 8;
      EmitLine(json, n, "dynamic", n_tx, net.size() - n_tx, 1,
               grains.front(), false, serial_ms, 1.0, true, &bad);
      for (const int threads : ladder) {
        if (threads == 1) continue;
        Engine::Options opts = base_opts;
        opts.threads = threads;
        std::vector<Reception> got;
        const double ms = DynamicPass(net, opts, false, got);
        EmitLine(json, n, "dynamic", n_tx, net.size() - n_tx, threads,
                 grains.front(), false, ms, serial_ms / ms,
                 SameReceptions(want, got), &bad);
        got.clear();
        const double ms_on = DynamicPass(net, opts, true, got);
        EmitLine(json, n, "dynamic", n_tx, net.size() - n_tx, threads,
                 grains.front(), true, ms_on, serial_ms / ms_on,
                 SameReceptions(want, got), &bad);
      }
    }
  }
  // --- sparse_wide: the far-field-dominated workload. A single-thread
  // round at n=65536 with an explicit 2.0 cell (128x128 = 16384 tiles) and
  // every 16th node transmitting, so the 4096 transmitters occupy well over
  // a thousand tiles. The pyramid's speedup over the flat walk is the
  // acceptance column (target >= 2x). ---
  {
    const int n = 65536;
    const Network net = MakeNet(n);
    std::vector<std::size_t> tx, listeners;
    Split(net.size(), 16, tx, listeners);
    Engine::Options flat_opts{.mode = Engine::Mode::kGrid};
    flat_opts.cell = 2.0;
    flat_opts.farfield = Engine::FarField::kFlat;
    Engine::Options pyr_opts = flat_opts;
    pyr_opts.farfield = Engine::FarField::kPyramid;
    const Engine flat(net, flat_opts);
    const Engine pyr(net, pyr_opts);
    const std::vector<Reception> want = flat.Step(tx, listeners);
    const bool identical = SameReceptions(want, pyr.Step(tx, listeners));
    const double flat_ms = TimeRounds(flat, tx, listeners);
    const double pyr_ms = TimeRounds(pyr, tx, listeners);
    EmitLine(json, n, "sparse_wide", tx.size(), listeners.size(), 1,
             min_shard, false, flat_ms, 1.0, true, &bad, "flat");
    EmitLine(json, n, "sparse_wide", tx.size(), listeners.size(), 1,
             min_shard, false, pyr_ms, flat_ms / pyr_ms, identical, &bad,
             "pyramid");
  }

  // --- tdma: an 8-slot periodic schedule (each slot a fixed disjoint
  // transmit set) stepped for 96 rounds. With --prologue-cache=8 every slot
  // after the first period replays its memoized prologue: hit_rate is
  // expected to reach (96 - 8) / 96 ~ 0.917. ---
  {
    const int n = 4096;
    constexpr int kSlots = 8;
    constexpr int kRounds = 96;
    const Network net = MakeNet(n);
    std::vector<std::vector<std::size_t>> slot_tx(kSlots), slot_ls(kSlots);
    for (int s = 0; s < kSlots; ++s) {
      for (std::size_t i = 0; i < net.size(); ++i) {
        (i % 64 == static_cast<std::size_t>(s) * 8 ? slot_tx[s] : slot_ls[s])
            .push_back(i);
      }
    }
    const auto run = [&](std::size_t cache, std::vector<Reception>& digest) {
      Engine::Options opts{.mode = Engine::Mode::kGrid};
      opts.prologue_cache = cache;
      Engine eng(net, opts);
      std::vector<Reception> out;
      const auto t0 = Clock::now();
      for (int r = 0; r < kRounds; ++r) {
        const int s = r % kSlots;
        eng.StepInto(slot_tx[static_cast<std::size_t>(s)],
                     slot_ls[static_cast<std::size_t>(s)], out);
        digest.insert(digest.end(), out.begin(), out.end());
      }
      const double ms =
          std::chrono::duration<double, std::milli>(Clock::now() - t0)
              .count();
      const double hits = static_cast<double>(eng.stats().prologue_cache_hits);
      return std::pair<double, double>{ms / kRounds, hits / kRounds};
    };
    std::vector<Reception> want, got;
    const auto [cold_ms, cold_hr] = run(0, want);
    (void)cold_hr;
    const auto [warm_ms, warm_hr] = run(8, got);
    const std::size_t n_tx = slot_tx[0].size();
    EmitLine(json, n, "tdma", n_tx, net.size() - n_tx, 1, min_shard, false,
             cold_ms, 1.0, true, &bad, "pyramid", 0, -1.0);
    EmitLine(json, n, "tdma", n_tx, net.size() - n_tx, 1, min_shard, false,
             warm_ms, cold_ms / warm_ms, SameReceptions(want, got), &bad,
             "pyramid", 8, warm_hr);
  }

  if (bad > 0) {
    std::cerr << "bench_parallel_rounds: " << bad
              << " configurations diverged from serial receptions\n";
    return 1;
  }
  return 0;
}
