// The tracing layer's two hard promises, exercised end to end:
//
//  1. Thread safety (gated under TSan in CI): Emit from every WorkerPool
//     worker concurrently — per-thread buffers mean no data races, and a
//     pool Run's join orders every recorded event before the Drain.
//
//  2. Pure observation: receptions are BIT-identical with tracing on or
//     off, at threads {1, 4} and ranks {0, 2}. The trace must never feed
//     back into scheduling, so flipping the tracer cannot move a single
//     reception bit anywhere in the engine / parallel / distrib stack.
//     (Rank runs fork dcc_rank from the build directory — the same
//     resolution the distrib equivalence suite relies on.)
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "dcc/common/rng.h"
#include "dcc/distrib/session.h"
#include "dcc/obs/trace.h"
#include "dcc/parallel/worker_pool.h"
#include "dcc/scenario/scenario.h"
#include "dcc/sinr/engine.h"

namespace dcc {
namespace {

using obs::EventKind;
using obs::Tracer;
using obs::TraceSummary;
using scenario::ScenarioSpec;
using sinr::Engine;
using sinr::Reception;

TEST(ObsConcurrencyTest, EmitFromEveryWorkerIsRaceFree) {
  parallel::WorkerPool pool(4);
  Tracer& t = Tracer::Global();
  t.Enable(/*ring_capacity=*/1 << 12);
  const std::uint32_t span_id = t.Intern("obs_test.worker_span");
  const std::uint32_t ctr_id = t.Intern("obs_test.worker_ctr");
  std::atomic<int> jobs_run{0};
  pool.Run(64, [&](std::size_t i) {
    for (int k = 0; k < 50; ++k) {
      t.Emit(span_id, EventKind::kBegin);
      t.Emit(ctr_id, EventKind::kCounter, static_cast<std::int64_t>(i));
      t.Emit(span_id, EventKind::kEnd);
    }
    jobs_run.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(jobs_run.load(), 64);
  // The pool join ordered every Emit before this Drain.
  std::ostringstream os;
  const TraceSummary sum = t.Drain(os);
  EXPECT_EQ(sum.events + sum.dropped, 64 * 50 * 3);
  EXPECT_GE(sum.threads, 1);
}

// Interleaved Enable cycles: a thread whose slot points at a drained
// buffer must re-register, never write through the stale pointer.
TEST(ObsConcurrencyTest, EnableCyclesInvalidateStaleThreadSlots) {
  parallel::WorkerPool pool(2);
  Tracer& t = Tracer::Global();
  const std::uint32_t id = t.Intern("obs_test.cycle");
  for (int cycle = 0; cycle < 3; ++cycle) {
    t.Enable(1 << 10);
    pool.Run(8, [&](std::size_t) { t.Emit(id, EventKind::kInstant); });
    std::ostringstream os;
    const TraceSummary sum = t.Drain(os);
    EXPECT_EQ(sum.events, 8) << "cycle " << cycle;
  }
}

// --- Bit-identity with tracing on vs off -----------------------------------

constexpr int kRounds = 6;

bool Transmits(std::uint64_t seed, int round, std::size_t i) {
  return HashCombine(HashCombine(seed, static_cast<std::uint64_t>(round)),
                     static_cast<std::uint64_t>(i)) %
             6 ==
         0;
}

// Runs the fixed round schedule at (threads, ranks) and returns the
// concatenated reception stream.
std::vector<Reception> RunSchedule(const ScenarioSpec& spec,
                                   const sinr::Network& net,
                                   std::uint64_t seed, int threads,
                                   int ranks) {
  Engine::Options opts;
  opts.mode = Engine::Mode::kGrid;
  opts.cell = 1.5;
  opts.threads = threads;
  std::unique_ptr<distrib::Session> session;
  if (ranks > 0) {
    session = std::make_unique<distrib::Session>(
        spec, seed, distrib::Session::Options{ranks, ""});
    opts.delegate = session.get();
  }
  Engine engine(net, opts);

  const std::size_t n = net.size();
  std::vector<Reception> all, out;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::size_t> tx, listeners;
    for (std::size_t i = 0; i < n; ++i) {
      (Transmits(seed, round, i) ? tx : listeners).push_back(i);
    }
    engine.StepInto(tx, listeners, out);
    all.insert(all.end(), out.begin(), out.end());
  }
  return all;
}

void ExpectBitIdentical(const std::vector<Reception>& ref,
                        const std::vector<Reception>& got,
                        const std::string& label) {
  ASSERT_EQ(ref.size(), got.size()) << label;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(ref[i].listener, got[i].listener) << label << " entry " << i;
    ASSERT_EQ(ref[i].sender, got[i].sender) << label << " entry " << i;
    ASSERT_EQ(std::bit_cast<std::uint64_t>(ref[i].sinr),
              std::bit_cast<std::uint64_t>(got[i].sinr))
        << label << " entry " << i << ": SINR bits differ";
  }
}

void RunBitIdentityConfig(int threads, int ranks) {
  const std::string label = "threads=" + std::to_string(threads) +
                            " ranks=" + std::to_string(ranks);
  SCOPED_TRACE(label);
  const std::uint64_t seed = 23;
  const ScenarioSpec spec =
      ScenarioSpec::FromArgs({"--topology=uniform:n=400,side=12"});
  const sinr::Network net = scenario::BuildScenarioNetwork(spec, seed);

  Tracer::Global().Disable();
  const std::vector<Reception> untraced =
      RunSchedule(spec, net, seed, threads, ranks);
  ASSERT_GT(untraced.size(), 0u);

  Tracer::Global().Enable();
  const std::vector<Reception> traced =
      RunSchedule(spec, net, seed, threads, ranks);
  std::ostringstream os;
  const TraceSummary sum = Tracer::Global().Drain(os);
  // The traced run must actually have recorded engine spans...
  EXPECT_GT(sum.events, 0) << label;
  EXPECT_EQ(sum.ranks, static_cast<std::int64_t>(ranks)) << label;
  // ...without perturbing one reception bit.
  ExpectBitIdentical(untraced, traced, label);
}

TEST(ObsEquivalenceTest, Threads1Ranks0) { RunBitIdentityConfig(1, 0); }
TEST(ObsEquivalenceTest, Threads4Ranks0) { RunBitIdentityConfig(4, 0); }
TEST(ObsEquivalenceTest, Threads1Ranks2) { RunBitIdentityConfig(1, 2); }
TEST(ObsEquivalenceTest, Threads4Ranks2) { RunBitIdentityConfig(4, 2); }

}  // namespace
}  // namespace dcc
