# Empty dependencies file for sensor_field_broadcast.
# This may be replaced when dependencies are built.
