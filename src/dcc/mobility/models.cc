#include "dcc/mobility/models.h"

#include <algorithm>
#include <cmath>

#include "dcc/common/types.h"

namespace dcc::mobility {

namespace {

constexpr double kPi = 3.14159265358979323846;

void CheckWorld(const Box& world) {
  DCC_REQUIRE(world.hi.x >= world.lo.x && world.hi.y >= world.lo.y,
              "mobility: inverted world box");
}

Vec2 ClampIntoBox(Vec2 p, const Box& box) {
  return {std::clamp(p.x, box.lo.x, box.hi.x),
          std::clamp(p.y, box.lo.y, box.hi.y)};
}

// Advances x by v*dt inside [lo, hi] with billiard reflection, flipping v
// when the final leg travels against the incoming direction. Degenerate
// interval (lo == hi) pins x. Folding through the doubled period instead
// of bouncing iteratively keeps one epoch O(1) even for absurd speeds
// (an extreme --dynamics speed must degrade gracefully, not hang).
void ReflectAxis(double& x, double& v, double dt, double lo, double hi) {
  if (hi <= lo) {
    x = lo;
    return;
  }
  x += v * dt;
  if (x >= lo && x <= hi) return;
  const double span = hi - lo;
  double t = std::fmod(x - lo, 2.0 * span);
  if (!std::isfinite(t)) {  // overflowed position: pin to the wall
    x = v > 0.0 ? hi : lo;
    v = -v;
    return;
  }
  if (t < 0.0) t += 2.0 * span;
  if (t <= span) {
    x = lo + t;
  } else {
    x = lo + 2.0 * span - t;
    v = -v;
  }
}

// Standard normal via Box-Muller over the repo's deterministic generator
// (std::normal_distribution is implementation-defined; trajectories must
// replay identically on any stdlib).
double NextGaussian(Xoshiro256ss& rng) {
  // NextDouble is in [0, 1); shift away from 0 for the log.
  const double u = 1.0 - rng.NextDouble();
  const double v = rng.NextDouble();
  return std::sqrt(-2.0 * std::log(u)) * std::cos(2.0 * kPi * v);
}

}  // namespace

// --- RandomWaypoint ---------------------------------------------------------

RandomWaypoint::RandomWaypoint(Config cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed) {
  CheckWorld(cfg_.world);
  DCC_REQUIRE(cfg_.vmin > 0.0 && cfg_.vmax >= cfg_.vmin &&
                  std::isfinite(cfg_.vmax),
              "waypoint: need 0 < vmin <= vmax (finite)");
  DCC_REQUIRE(cfg_.pause >= 0.0 && std::isfinite(cfg_.pause),
              "waypoint: pause must be >= 0 (finite)");
}

Vec2 RandomWaypoint::UniformInWorld() {
  const Box& w = cfg_.world;
  return {w.lo.x + (w.hi.x - w.lo.x) * rng_.NextDouble(),
          w.lo.y + (w.hi.y - w.lo.y) * rng_.NextDouble()};
}

void RandomWaypoint::Retarget(NodeState& s) {
  s.target = UniformInWorld();
  s.speed = cfg_.vmin + (cfg_.vmax - cfg_.vmin) * rng_.NextDouble();
}

void RandomWaypoint::Init(std::span<const Vec2> pos) {
  nodes_.resize(pos.size());
  for (std::size_t i = 0; i < pos.size(); ++i) Retarget(nodes_[i]);
}

void RandomWaypoint::Step(double dt, std::span<Vec2> pos,
                          std::span<const char> active) {
  DCC_REQUIRE(pos.size() == nodes_.size() && active.size() == nodes_.size(),
              "waypoint: Step size mismatch (call Init first)");
  for (std::size_t i = 0; i < pos.size(); ++i) {
    if (!active[i]) continue;
    NodeState& s = nodes_[i];
    double left = dt;
    // The leg cap only matters for degenerate (point-sized) worlds, where
    // with pause = 0 every target is already reached and no time drains.
    for (int legs = 0; left > 0.0 && legs < 64; ++legs) {
      if (s.pause_left > 0.0) {
        const double wait = std::min(s.pause_left, left);
        s.pause_left -= wait;
        left -= wait;
        continue;
      }
      const double gap = Dist(pos[i], s.target);
      const double reach = s.speed * left;
      if (reach < gap) {
        pos[i] = pos[i] + (reach / gap) * (s.target - pos[i]);
        break;
      }
      // Arrived mid-epoch: burn the travel time, start the pause, and (once
      // the pause drains) pick the next leg.
      pos[i] = s.target;
      left -= gap / s.speed;
      s.pause_left = cfg_.pause;
      Retarget(s);
    }
    pos[i] = ClampIntoBox(pos[i], cfg_.world);  // shed float drift
  }
}

Vec2 RandomWaypoint::Respawn(std::size_t i) {
  DCC_REQUIRE(i < nodes_.size(), "waypoint: Respawn index out of range");
  const Vec2 p = UniformInWorld();
  nodes_[i].pause_left = 0.0;
  Retarget(nodes_[i]);
  return p;
}

// --- GaussMarkov ------------------------------------------------------------

GaussMarkov::GaussMarkov(Config cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed) {
  CheckWorld(cfg_.world);
  DCC_REQUIRE(cfg_.mean_speed > 0.0 && std::isfinite(cfg_.mean_speed),
              "gauss_markov: mean_speed must be > 0 (finite)");
  DCC_REQUIRE(cfg_.sigma >= 0.0 && std::isfinite(cfg_.sigma),
              "gauss_markov: sigma must be >= 0 (finite)");
  DCC_REQUIRE(cfg_.memory >= 0.0 && cfg_.memory < 1.0,
              "gauss_markov: memory must be in [0, 1)");
}

void GaussMarkov::Reseed(NodeState& s) {
  const double heading = 2.0 * kPi * rng_.NextDouble();
  s.mean_vel = {cfg_.mean_speed * std::cos(heading),
                cfg_.mean_speed * std::sin(heading)};
  s.vel = s.mean_vel;
}

void GaussMarkov::Init(std::span<const Vec2> pos) {
  nodes_.resize(pos.size());
  for (auto& s : nodes_) Reseed(s);
}

void GaussMarkov::Step(double dt, std::span<Vec2> pos,
                       std::span<const char> active) {
  DCC_REQUIRE(pos.size() == nodes_.size() && active.size() == nodes_.size(),
              "gauss_markov: Step size mismatch (call Init first)");
  const double a = cfg_.memory;
  const double noise = cfg_.sigma * std::sqrt(1.0 - a * a);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    if (!active[i]) continue;
    NodeState& s = nodes_[i];
    s.vel.x = a * s.vel.x + (1.0 - a) * s.mean_vel.x + noise * NextGaussian(rng_);
    s.vel.y = a * s.vel.y + (1.0 - a) * s.mean_vel.y + noise * NextGaussian(rng_);
    double vx = s.vel.x, vy = s.vel.y;
    ReflectAxis(pos[i].x, vx, dt, cfg_.world.lo.x, cfg_.world.hi.x);
    ReflectAxis(pos[i].y, vy, dt, cfg_.world.lo.y, cfg_.world.hi.y);
    // A bounce reverses both the velocity and its attractor, or the AR(1)
    // pull would drag the node straight back into the wall.
    if (vx != s.vel.x) s.mean_vel.x = -s.mean_vel.x;
    if (vy != s.vel.y) s.mean_vel.y = -s.mean_vel.y;
    s.vel = {vx, vy};
  }
}

Vec2 GaussMarkov::Respawn(std::size_t i) {
  DCC_REQUIRE(i < nodes_.size(), "gauss_markov: Respawn index out of range");
  Reseed(nodes_[i]);
  const Box& w = cfg_.world;
  return {w.lo.x + (w.hi.x - w.lo.x) * rng_.NextDouble(),
          w.lo.y + (w.hi.y - w.lo.y) * rng_.NextDouble()};
}

// --- ReferencePointGroup ----------------------------------------------------

ReferencePointGroup::ReferencePointGroup(Config cfg, std::uint64_t seed)
    : cfg_(cfg),
      rng_(seed),
      refs_({cfg.world, cfg.vmin, cfg.vmax, cfg.pause}, seed ^ 0x47524F5550ull) {
  CheckWorld(cfg_.world);
  DCC_REQUIRE(cfg_.group_size >= 1, "group: group_size must be >= 1");
  DCC_REQUIRE(cfg_.radius >= 0.0 && std::isfinite(cfg_.radius),
              "group: radius must be >= 0 (finite)");
}

Vec2 ReferencePointGroup::JitterOffset(Vec2 offset, double dt) {
  // Offsets do a clipped random walk inside the group disc: a quarter of
  // the disc radius of jitter per unit time keeps groups coherent while the
  // internal arrangement churns.
  const double step = 0.25 * cfg_.radius * dt;
  offset.x += step * (2.0 * rng_.NextDouble() - 1.0);
  offset.y += step * (2.0 * rng_.NextDouble() - 1.0);
  const double d = std::sqrt(offset.x * offset.x + offset.y * offset.y);
  if (d > cfg_.radius && d > 0.0) offset = (cfg_.radius / d) * offset;
  return offset;
}

Vec2 ReferencePointGroup::MemberPosition(std::size_t i) const {
  return ClampIntoBox(ref_pos_[GroupOf(i)] + offset_[i], cfg_.world);
}

void ReferencePointGroup::Init(std::span<const Vec2> pos) {
  const std::size_t n = pos.size();
  const std::size_t groups =
      (n + static_cast<std::size_t>(cfg_.group_size) - 1) /
      static_cast<std::size_t>(cfg_.group_size);
  ref_pos_.assign(std::max<std::size_t>(groups, 1), Vec2{});
  ref_active_.assign(ref_pos_.size(), 1);
  offset_.assign(n, Vec2{});
  // Reference points start at their group's centroid; member offsets are
  // whatever remains, clipped into the group disc so the first Step doesn't
  // teleport anyone.
  std::vector<std::size_t> count(ref_pos_.size(), 0);
  for (std::size_t i = 0; i < n; ++i) {
    ref_pos_[GroupOf(i)] = ref_pos_[GroupOf(i)] + pos[i];
    ++count[GroupOf(i)];
  }
  for (std::size_t g = 0; g < ref_pos_.size(); ++g) {
    if (count[g] > 0) {
      ref_pos_[g] = (1.0 / static_cast<double>(count[g])) * ref_pos_[g];
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    offset_[i] = JitterOffset(pos[i] - ref_pos_[GroupOf(i)], 0.0);
  }
  refs_.Init(ref_pos_);
}

void ReferencePointGroup::Step(double dt, std::span<Vec2> pos,
                               std::span<const char> active) {
  DCC_REQUIRE(pos.size() == offset_.size() && active.size() == offset_.size(),
              "group: Step size mismatch (call Init first)");
  refs_.Step(dt, ref_pos_, ref_active_);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    if (!active[i]) continue;
    offset_[i] = JitterOffset(offset_[i], dt);
    pos[i] = MemberPosition(i);
  }
}

Vec2 ReferencePointGroup::Respawn(std::size_t i) {
  DCC_REQUIRE(i < offset_.size(), "group: Respawn index out of range");
  // Rejoin near the group's current reference point.
  const double angle = 2.0 * kPi * rng_.NextDouble();
  const double r = cfg_.radius * std::sqrt(rng_.NextDouble());
  offset_[i] = {r * std::cos(angle), r * std::sin(angle)};
  return MemberPosition(i);
}

}  // namespace dcc::mobility
