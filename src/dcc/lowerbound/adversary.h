// The Lemma 13 adversary: an ID assignment for the gadget core that keeps
// the target t deaf for Omega(Delta) rounds against any deterministic
// algorithm whose behavior, absent differentiating feedback, is a function
// of (id, round).
//
// The adversary inspects the algorithm through an *oblivious trace*: would
// a node with this id — woken by s at round 0, hearing nothing since —
// transmit at round r? (Fact 2 guarantees the "hearing nothing" premise
// stays true under the produced assignment: every round either no core
// node transmits or at least two do, which jams the whole suffix.)
//
// Assignment: by the gadget geometry, t receives exactly when v_{Delta+1}
// transmits with no other core transmitter, so the proof's pairing
// invariant ("every used round has >= 2 transmitters") reduces to keeping
// v_{Delta+1} covered. The adversary computes every candidate's first
// *solo* transmission round within the pool and pins the latest-solo id to
// v_{Delta+1} — t then stays deaf until that round, which the simulation
// cross-checks.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "dcc/common/types.h"

namespace dcc::lowerbound {

// Would a node with `id`, woken at local round 0 and hearing nothing since,
// transmit at local round `r`?
using ObliviousTrace = std::function<bool(NodeId id, Round r)>;

struct AdversarialAssignment {
  // ids for v_0 .. v_{delta+1}, in core order.
  std::vector<NodeId> core_ids;
  // Rounds at which successive pairs were scheduled to first transmit; the
  // delivery to t cannot happen before blocked_until (adversary's lower
  // bound certificate, cross-checked by simulation).
  std::vector<Round> pair_rounds;
  Round blocked_until = 0;
};

// `pool` must contain at least delta+2 candidate ids. `horizon` caps the
// trace scan (ids that never transmit within the horizon are paired last —
// they silently delay delivery even longer).
AdversarialAssignment AssignAdversarialIds(const ObliviousTrace& trace,
                                           std::vector<NodeId> pool,
                                           int delta, Round horizon);

// Convenience traces to attack.
//
// Selector-style deterministic broadcast: transmit at rounds where a seeded
// (N,k)-selector includes the id — representative of the selector-based
// deterministic algorithms (including this paper's).
ObliviousTrace SelectorTrace(std::int64_t id_space, int k, std::uint64_t seed);

// Round-robin over the id space: node transmits at rounds r ≡ id (mod N).
ObliviousTrace RoundRobinTrace(std::int64_t id_space);

}  // namespace dcc::lowerbound
