// Strict whole-string numeric parsing, shared by every layer that turns
// user text into numbers (scenario specs, ParamMap getters, engine env
// knobs). Rejects empty strings, trailing characters, sign mismatches and
// overflow with InvalidArgument — a typo must fail loudly, never silently
// become a different value.
#pragma once

#include <cstdint>
#include <string>

namespace dcc {

// `what` names the value in the error message, e.g. "--seeds" or
// "parameter 'n'".
std::int64_t ParseInt64(const std::string& text, const std::string& what);
std::uint64_t ParseUint64(const std::string& text, const std::string& what);
double ParseDouble(const std::string& text, const std::string& what);

}  // namespace dcc
