file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_broadcast_phases.dir/bench/bench_fig1_broadcast_phases.cc.o"
  "CMakeFiles/bench_fig1_broadcast_phases.dir/bench/bench_fig1_broadcast_phases.cc.o.d"
  "bench_fig1_broadcast_phases"
  "bench_fig1_broadcast_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_broadcast_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
