#include "dcc/common/spatial_grid.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dcc/common/types.h"

namespace dcc {

namespace {

// Squared distance from x to the interval [lo, hi], per axis.
inline double AxisGapSq(double x, double lo, double hi) {
  const double g = x < lo ? lo - x : (x > hi ? x - hi : 0.0);
  return g * g;
}

// Max |x - q| over q in [lo, hi].
inline double AxisFarSq(double x, double lo, double hi) {
  const double g = std::max(std::abs(x - lo), std::abs(x - hi));
  return g * g;
}

}  // namespace

SpatialGrid::SpatialGrid(std::span<const Vec2> pts, double cell)
    : cell_(cell) {
  DCC_REQUIRE(cell > 0.0, "SpatialGrid: cell must be > 0");
  const Box box = BoundingBox(pts);
  lo_x_ = box.lo.x;
  lo_y_ = box.lo.y;
  // Guard against a cell far smaller than the point extent (e.g. a typo'd
  // engine option): the per-tile arrays would dwarf the point set.
  const std::int64_t max_tiles = std::min<std::int64_t>(
      std::max<std::int64_t>(1024, 64 * static_cast<std::int64_t>(pts.size())),
      std::numeric_limits<int>::max());
  const auto axis_tiles = [&](double extent) {
    const double raw = std::floor(extent / cell_);
    DCC_REQUIRE(raw < static_cast<double>(max_tiles),
                "SpatialGrid: cell too small for the point extent");
    return std::max<std::int64_t>(1, static_cast<std::int64_t>(raw) + 1);
  };
  const std::int64_t nx = axis_tiles(box.hi.x - lo_x_);
  const std::int64_t ny = axis_tiles(box.hi.y - lo_y_);
  DCC_REQUIRE(ny <= max_tiles / nx,
              "SpatialGrid: cell too small for the point extent");
  nx_ = static_cast<int>(nx);
  ny_ = static_cast<int>(ny);

  const std::size_t n = pts.size();
  tile_of_point_.resize(n);
  start_.assign(static_cast<std::size_t>(tile_count()) + 1, 0);
  points_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int t = TileAt(pts[i]);
    tile_of_point_[i] = t;
    ++start_[static_cast<std::size_t>(t) + 1];
  }
  for (std::size_t t = 0; t < start_.size() - 1; ++t) {
    if (start_[t + 1] > 0) occupied_.push_back(static_cast<int>(t));
    start_[t + 1] += start_[t];
  }
  std::vector<std::size_t> fill(start_.begin(), start_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    points_[fill[static_cast<std::size_t>(tile_of_point_[i])]++] = i;
  }
}

int SpatialGrid::TileAt(Vec2 p) const {
  int gx = static_cast<int>(std::floor((p.x - lo_x_) / cell_));
  int gy = static_cast<int>(std::floor((p.y - lo_y_) / cell_));
  gx = std::clamp(gx, 0, nx_ - 1);
  gy = std::clamp(gy, 0, ny_ - 1);
  return gy * nx_ + gx;
}

double SpatialGrid::DistLoSq(Vec2 p, int tile) const {
  const int gx = tile % nx_, gy = tile / nx_;
  const double bx = lo_x_ + gx * cell_, by = lo_y_ + gy * cell_;
  return AxisGapSq(p.x, bx, bx + cell_) + AxisGapSq(p.y, by, by + cell_);
}

double SpatialGrid::DistHiSq(Vec2 p, int tile) const {
  const int gx = tile % nx_, gy = tile / nx_;
  const double bx = lo_x_ + gx * cell_, by = lo_y_ + gy * cell_;
  return AxisFarSq(p.x, bx, bx + cell_) + AxisFarSq(p.y, by, by + cell_);
}

double SpatialGrid::TileDistLoSq(int a, int b) const {
  const int ax = a % nx_, ay = a / nx_;
  const int bx = b % nx_, by = b / nx_;
  const double gx = cell_ * std::max(0, std::abs(ax - bx) - 1);
  const double gy = cell_ * std::max(0, std::abs(ay - by) - 1);
  return gx * gx + gy * gy;
}

double SpatialGrid::TileDistHiSq(int a, int b) const {
  const int ax = a % nx_, ay = a / nx_;
  const int bx = b % nx_, by = b / nx_;
  const double gx = cell_ * (std::abs(ax - bx) + 1);
  const double gy = cell_ * (std::abs(ay - by) + 1);
  return gx * gx + gy * gy;
}

}  // namespace dcc
