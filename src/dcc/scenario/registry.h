// String-keyed registries resolving a ScenarioSpec's names into code.
//
//  * TopologyRegistry: name -> point-set generator over (params, sinr, seed).
//  * AlgorithmRegistry: name -> Algorithm adapter factory. Adapters wrap the
//    library's protocols (BuildClustering, SMSB/SNS, wakeup, leader
//    election, the baselines) behind one interface returning a RunReport.
//
// Unknown names throw InvalidArgument listing everything registered, so a
// typo in a spec is a one-line fix, not a debugging session. Registering a
// custom entry is a single call (see README "Running experiments").
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dcc/cluster/profile.h"
#include "dcc/scenario/param_map.h"
#include "dcc/scenario/report.h"
#include "dcc/sim/runner.h"

namespace dcc::scenario {

// Everything an Algorithm adapter may touch for one run. `members` is the
// protocol participant set (fault-injected jammers are excluded — protocol
// code must not know about them), `gamma` its measured density.
struct RunContext {
  const sinr::Network& net;
  sim::Exec& ex;
  const cluster::Profile& prof;
  std::vector<std::size_t> members;
  int gamma = 1;
  Round max_rounds = 0;  // 0 = adapter-default budget
  std::uint64_t seed = 0;
  std::uint64_t nonce = 0;
  ParamMap params;  // algorithm parameters from the spec
};

class Algorithm {
 public:
  virtual ~Algorithm() = default;
  // Runs the protocol on `ctx`, fills metrics and sets `ok` from its
  // validator. Spec coordinates (topology/algo/seed) and the shared metrics
  // (n, gamma, rounds_total...) are stamped by RunScenario afterwards.
  virtual RunReport Run(RunContext& ctx) = 0;
};

template <typename Value>
class Registry {
 public:
  Registry(std::string kind) : kind_(std::move(kind)) {}

  // `help` is a one-line parameter summary shown by `dcc_run --list`.
  void Register(const std::string& name, Value value, std::string help) {
    for (auto& e : entries_) {
      if (e.name == name) {
        e.value = std::move(value);
        e.help = std::move(help);
        return;
      }
    }
    entries_.push_back({name, std::move(value), std::move(help)});
  }

  const Value& Get(const std::string& name) const {
    for (const auto& e : entries_) {
      if (e.name == name) return e.value;
    }
    std::string known;
    for (const auto& e : entries_) {
      if (!known.empty()) known += ", ";
      known += e.name;
    }
    throw InvalidArgument("unknown " + kind_ + " '" + name +
                          "'; registered: " + known);
  }

  // (name, help) pairs in registration order.
  std::vector<std::pair<std::string, std::string>> List() const {
    std::vector<std::pair<std::string, std::string>> out;
    for (const auto& e : entries_) out.emplace_back(e.name, e.help);
    return out;
  }

 private:
  struct Entry {
    std::string name;
    Value value;
    std::string help;
  };
  std::string kind_;
  std::vector<Entry> entries_;
};

// Generates the node positions for one run. The function owns interpreting
// `params`; RunScenario rejects any parameter it never reads.
using TopologyFn = std::function<std::vector<Vec2>(
    const ParamMap& params, const sinr::Params& sinr, std::uint64_t seed)>;

using AlgorithmFactory = std::function<std::unique_ptr<Algorithm>()>;

using TopologyRegistry = Registry<TopologyFn>;
using AlgorithmRegistry = Registry<AlgorithmFactory>;

// Process-wide registries, pre-loaded with every workload:: generator and
// every protocol/baseline in the library.
TopologyRegistry& Topologies();
AlgorithmRegistry& Algorithms();

}  // namespace dcc::scenario
