// Length-prefixed frame I/O over stream sockets — the transport under the
// scenario service's JSON protocol (src/dcc/service). A frame is a 4-byte
// big-endian payload length followed by the payload bytes; framing lets
// both ends carry arbitrary JSON (which has no self-delimiting wire form)
// over one connection without a streaming parser.
//
// All calls retry EINTR and handle partial reads/writes; writes use
// MSG_NOSIGNAL so a peer that vanished surfaces as an exception, not
// SIGPIPE. Errors (including a frame over kMaxFrameBytes) throw
// WireError. These are blocking calls — the service gives every
// connection its own thread.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace dcc::wire {

// Upper bound on one frame's payload. Reports over a sweep of big runs are
// large but bounded; 64 MiB rejects a corrupted or hostile length word
// before it becomes an allocation.
inline constexpr std::size_t kMaxFrameBytes = 64u << 20;

class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

// Reads one frame into *payload. Returns false on a clean EOF at a frame
// boundary (the peer closed); throws WireError on a short frame, an I/O
// error, or an oversized length prefix.
bool ReadFrame(int fd, std::string* payload);

// Writes one frame. Throws WireError when the peer is gone or the payload
// exceeds kMaxFrameBytes.
void WriteFrame(int fd, const std::string& payload);

}  // namespace dcc::wire
