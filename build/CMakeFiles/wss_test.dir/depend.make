# Empty dependencies file for wss_test.
# This may be replaced when dependencies are built.
