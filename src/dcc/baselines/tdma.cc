#include "dcc/baselines/tdma.h"

#include <algorithm>
#include <unordered_set>

namespace dcc::baselines {

namespace {
constexpr std::int32_t kPayloadMsg = 321;
}  // namespace

TdmaResult TdmaLocalBroadcast(sim::Exec& ex,
                              const std::vector<std::size_t>& members) {
  const sinr::Network& net = ex.net();
  TdmaResult res;
  const auto& comm = net.CommGraph();
  std::vector<std::unordered_set<std::size_t>> covered(net.size());
  const Round start = ex.rounds();
  ex.SetObserver([&](Round, const std::vector<std::size_t>&,
                     const std::vector<sinr::Reception>& recs) {
    for (const auto& r : recs) covered[r.sender].insert(r.listener);
  });
  const std::int64_t N = net.params().id_space;
  // The schedule is a pure function of the round: disclose each next slot
  // so a pipelined engine can prefetch its prologue.
  ex.SetLookahead([&](Round g, std::vector<std::size_t>& tx) {
    const std::int64_t slot = g - start + 1;
    if (slot < 1 || slot > N) return false;
    for (const std::size_t idx : members) {
      if (net.id(idx) == slot) tx.push_back(idx);
    }
    return true;
  });
  for (std::int64_t slot = 1; slot <= N; ++slot) {
    ex.RunRound(
        members,
        [&](std::size_t idx) -> std::optional<sim::Message> {
          if (net.id(idx) != slot) return std::nullopt;
          sim::Message m;
          m.kind = kPayloadMsg;
          return m;
        },
        [](std::size_t, const sim::Message&) {});
  }
  ex.SetLookahead(nullptr);
  ex.SetObserver(nullptr);
  for (const std::size_t v : members) {
    bool all = true;
    for (const std::size_t w : comm[v]) {
      if (!covered[v].count(w)) {
        all = false;
        break;
      }
    }
    if (all) ++res.reached;
  }
  res.complete = res.reached == members.size();
  res.rounds = ex.rounds() - start;
  return res;
}

TdmaResult TdmaGlobalBroadcast(sim::Exec& ex, std::size_t source,
                               int max_sweeps) {
  const sinr::Network& net = ex.net();
  TdmaResult res;
  std::vector<char> has_msg(net.size(), 0);
  has_msg[source] = 1;
  std::vector<std::size_t> holders{source};
  const std::int64_t N = net.params().id_space;
  const Round start = ex.rounds();
  // Predict the next slot's transmitters from the *current* holder set.
  // A reception in the current round can add the very holder that owns the
  // next slot — that misprediction is tolerated (the engine discards the
  // speculation); the common no-new-holder round predicts exactly.
  std::int64_t slot = 0;
  ex.SetLookahead([&](Round, std::vector<std::size_t>& tx) {
    const std::int64_t next = slot >= N ? 1 : slot + 1;
    for (const std::size_t idx : holders) {
      if (net.id(idx) == next) tx.push_back(idx);
    }
    return true;
  });
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    const std::size_t before = holders.size();
    for (slot = 1; slot <= N; ++slot) {
      ex.RunRound(
          holders,
          [&](std::size_t idx) -> std::optional<sim::Message> {
            if (net.id(idx) != slot) return std::nullopt;
            sim::Message m;
            m.kind = kPayloadMsg;
            return m;
          },
          [&](std::size_t listener, const sim::Message& m) {
            if (m.kind != kPayloadMsg || has_msg[listener]) return;
            has_msg[listener] = 1;
            holders.push_back(listener);
          });
      if (holders.size() == net.size()) break;
    }
    if (holders.size() == net.size() || holders.size() == before) break;
  }
  ex.SetLookahead(nullptr);
  res.reached = holders.size();
  res.complete = res.reached == net.size();
  res.rounds = ex.rounds() - start;
  return res;
}

}  // namespace dcc::baselines
