file(REMOVE_RECURSE
  "CMakeFiles/bench_clustering_scaling.dir/bench/bench_clustering_scaling.cc.o"
  "CMakeFiles/bench_clustering_scaling.dir/bench/bench_clustering_scaling.cc.o.d"
  "bench_clustering_scaling"
  "bench_clustering_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_clustering_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
