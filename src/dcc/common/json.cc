#include "dcc/common/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace dcc {

std::string JsonQuote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  // Integral values (round counts, sizes) print without an exponent.
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[40];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

}  // namespace dcc
