file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_full_sparsification.dir/bench/bench_fig4_full_sparsification.cc.o"
  "CMakeFiles/bench_fig4_full_sparsification.dir/bench/bench_fig4_full_sparsification.cc.o.d"
  "bench_fig4_full_sparsification"
  "bench_fig4_full_sparsification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_full_sparsification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
