// Selector ablation — Lemmas 2-3 and the ssf construction.
//
// Reports: (a) ssf size vs k and N (deterministic prime-residue
// construction, ~k^2-polylog growth); (b) wss theory length O(k^3 log N)
// and the measured Monte-Carlo failure rate as the length multiplier c
// shrinks — the calibration evidence behind the practical profile;
// (c) wcss shapes in k and l; (d) the greedy derandomized wss versus the
// seeded construction at small N; (e) the theory-profile constants the
// proofs would demand (exhibited, not run).
#include "bench_common.h"
#include "dcc/cluster/profile.h"
#include "dcc/sel/verify.h"

namespace dcc {
namespace {

void Run() {
  bench::Banner("Selector ablation",
                "Jurdzinski et al., PODC'18, Lemmas 2-3 + Section 3.1",
                "ssf ~k^2 polylog; wss needs c >= ~1 at theory shape; "
                "greedy derandomization matches at small N");

  std::cout << "-- (a) ssf size (deterministic prime construction) --\n";
  Table ta({"N", "k", "sets", "primes"});
  for (const std::int64_t N : {1ll << 10, 1ll << 14, 1ll << 18}) {
    for (const int k : {4, 8, 16}) {
      const auto s = sel::Ssf::Construct(N, k);
      ta.AddRow({Table::Num(N), Table::Num(std::int64_t{k}),
                 Table::Num(s.size()),
                 Table::Num(static_cast<std::int64_t>(s.primes().size()))});
    }
  }
  ta.Print(std::cout);

  std::cout << "\n-- (b) wss length vs failure rate (N=4096, k=4) --\n";
  Table tb({"c", "length", "fail-rate(1200 trials)"});
  for (const double c : {0.1, 0.2, 0.35, 0.5, 1.0, 2.0}) {
    const auto w = sel::Wss::Construct(1 << 12, 4, c, 99);
    const auto res = sel::VerifyWssSampled(w, 1200, 7);
    tb.AddRow({Table::Num(c), Table::Num(w.size()),
               Table::Num(res.FailureRate())});
  }
  tb.Print(std::cout);

  std::cout << "\n-- (c) wcss length vs failure rate (N=4096) --\n";
  Table tc({"k", "l", "c", "length", "fail-rate(600 trials)"});
  for (const int k : {3, 5}) {
    for (const int l : {2, 4}) {
      for (const double c : {0.1, 0.5, 1.0, 3.0}) {
        const auto w = sel::Wcss::Construct(1 << 12, k, l, c, 42);
        const auto res = sel::VerifyWcssSampled(w, 600, 11);
        tc.AddRow({Table::Num(std::int64_t{k}), Table::Num(std::int64_t{l}),
                   Table::Num(c), Table::Num(w.size()),
                   Table::Num(res.FailureRate())});
      }
    }
  }
  tc.Print(std::cout);

  std::cout << "\n-- (d) greedy derandomized wss at small N --\n";
  Table td({"N", "k", "greedy-size", "seeded-size(c=1)"});
  for (const std::int64_t N : {6, 8, 10}) {
    const auto g = sel::GreedyWss::Construct(N, 2);
    const auto w = sel::Wss::Construct(N, 2, 1.0, 5);
    td.AddRow({Table::Num(N), Table::Num(std::int64_t{2}),
               Table::Num(g.size()), Table::Num(w.size())});
  }
  td.Print(std::cout);

  std::cout << "\n-- (e) proof-literal constants (exhibited, not run) --\n";
  const auto params = sinr::Params::Default();
  const auto theory = cluster::Profile::Theory(params, 1 << 16);
  const auto practical = cluster::Profile::Practical(1 << 16);
  Table te({"constant", "theory", "practical"});
  te.AddRow({"kappa", Table::Num(std::int64_t{theory.kappa}),
             Table::Num(std::int64_t{practical.kappa})});
  te.AddRow({"rho", Table::Num(std::int64_t{theory.rho}),
             Table::Num(std::int64_t{practical.rho})});
  te.AddRow({"sns_k", Table::Num(std::int64_t{theory.sns_k}),
             Table::Num(std::int64_t{practical.sns_k})});
  te.AddRow({"l_uncl", Table::Num(std::int64_t{theory.l_uncl}),
             Table::Num(std::int64_t{practical.l_uncl})});
  te.AddRow({"rr_iters", Table::Num(std::int64_t{theory.rr_iters}),
             Table::Num(std::int64_t{practical.rr_iters})});
  te.Print(std::cout);
  std::cout << "\n(theory kappa explodes because alpha-2 appears in the "
               "far-field exponent: worst-case interference bounds are "
               "astronomically conservative; validators certify the "
               "practical values instead — DESIGN.md §4.3)\n";
}

}  // namespace
}  // namespace dcc

int main() {
  dcc::Run();
  return 0;
}
