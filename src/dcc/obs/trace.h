// Cross-subsystem tracing: begin/end spans, counters and instants
// recorded into per-thread bounded buffers and drained as Chrome
// trace-event JSON (chrome://tracing, Perfetto). Always compiled, off by
// default; the entire disabled cost of an instrumentation point is one
// relaxed atomic load (`Tracer::enabled()`) and a dead branch — the
// tracked bench gate (bench_obs_overhead) holds that under 1% of round
// time. Tracing is pure observation: nothing in here is consulted by any
// scheduling decision, so receptions are bit-identical with tracing on or
// off at every thread and rank count (pinned by ObsEquivalenceTest).
//
// Threading contract: Emit is safe from any thread (each thread owns its
// buffer; registration takes a mutex once per thread per Enable cycle).
// Enable and Drain must be called while no traced work is in flight — the
// tools call them strictly before/after the run, and anything that ran
// inside a joined WorkerPool task or joined thread is ordered before the
// drain by that join.
//
// Rank stitching: a coordinator with tracing enabled sets the trace flag
// in the distrib hello, stamping its own steady clock; each rank enables
// its local tracer with `SetClockOffset(coordinator_now - local_now)` so
// every recorded timestamp is already in the coordinator's clock domain,
// then ships its buffers back (EncodeShip) on shutdown for the Session to
// InjectShip under pid = rank + 1. One drain then writes one stitched
// file. See docs/ARCHITECTURE.md for the clock-domain caveat.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dcc::obs {

// Raw steady-clock ticks in nanoseconds — the time base every trace
// event is recorded in (plus the per-process clock offset).
inline std::int64_t NowRawNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

enum class EventKind : std::uint8_t {
  kBegin = 0,    // span open  -> ph "B"
  kEnd = 1,      // span close -> ph "E"
  kCounter = 2,  // value sample -> ph "C"
  kInstant = 3,  // point event -> ph "i"
};

struct TraceEvent {
  std::int64_t ts_ns = 0;
  std::int64_t value = 0;
  std::uint32_t name = 0;  // id from Tracer::Intern
  EventKind kind = EventKind::kBegin;
};

// What Drain reports about the trace it just wrote — the "dcc.obs.v1"
// summary object (layout pinned in docs/REPORT_SCHEMA.md). Every field
// except overhead_ns is deterministic for a deterministic workload;
// overhead_ns is a measured diagnostic.
struct TraceSummary {
  std::int64_t events = 0;    // data events written to the file
  std::int64_t spans = 0;     // begin events among them
  std::int64_t counters = 0;  // counter + instant events among them
  std::int64_t dropped = 0;   // events discarded on full buffers
  std::int64_t threads = 0;   // thread buffers holding >= 1 event
  std::int64_t ranks = 0;     // stitched rank processes (pid >= 1)
  std::int64_t overhead_ns = 0;  // measured cost of 1000 disabled checks

  // {"schema": "dcc.obs.v1", ...} — one object, no trailing newline.
  void PrintJson(std::ostream& os) const;
};

// The process-wide trace recorder. One instance (Global()); per-thread
// buffers are bounded — when full, *new* events are dropped (and counted)
// so a trace always keeps the start of the run, clustering phases
// included, rather than an arbitrary suffix.
class Tracer {
 public:
  static constexpr std::size_t kDefaultRingCapacity = std::size_t{1} << 16;

  static Tracer& Global();

  // THE disabled-path check: one relaxed atomic load. Instrumentation
  // macros branch on this before touching anything else.
  static bool enabled() {
    return g_enabled_.load(std::memory_order_relaxed);
  }

  // Starts a fresh recording: clears prior buffers and injected rank
  // dumps, resets the clock offset, and flips the enabled gate. Interned
  // names survive (call sites cache their ids in function-local statics).
  void Enable(std::size_t ring_capacity = kDefaultRingCapacity);

  // Stops recording without draining; Drain implies this.
  void Disable();

  // Returns a stable id for `name` (same string -> same id, ids are
  // never invalidated for the life of the process).
  std::uint32_t Intern(std::string_view name);

  // Records one event on the calling thread's buffer. Callers should
  // check enabled() first; Emit re-checks and is a no-op when disabled.
  void Emit(std::uint32_t name, EventKind kind, std::int64_t value = 0);

  // Rebases timestamps of subsequently recorded events into another
  // process's clock domain (rank stitching).
  void SetClockOffset(std::int64_t offset_ns);

  // Serializes the current buffers (names, threads, events, drop counts)
  // into a compact wire payload a rank ships to its coordinator.
  std::string EncodeShip() const;

  // Decodes a shipped payload and stitches it in under `pid` (rank + 1;
  // pid 0 is the coordinator). Returns false on a malformed payload.
  bool InjectShip(std::int64_t pid, std::string_view payload);

  // Disables tracing, writes everything recorded (local + injected) as
  // one Chrome trace-event JSON document, clears the buffers, and
  // returns the summary.
  TraceSummary Drain(std::ostream& os);

 private:
  struct ThreadBuf {
    std::vector<TraceEvent> events;  // bounded append; reserved at creation
    std::uint64_t dropped = 0;
    std::uint32_t tid = 0;
  };
  struct ForeignThread {
    std::uint32_t tid = 0;
    std::uint64_t dropped = 0;
    std::vector<TraceEvent> events;
  };
  struct ForeignProcess {
    std::int64_t pid = 0;
    std::vector<std::string> names;  // the rank's own intern table
    std::vector<ForeignThread> threads;
  };

  ThreadBuf* RegisterThisThread(std::uint64_t epoch);

  static std::atomic<bool> g_enabled_;

  mutable std::mutex mu_;
  std::vector<std::string> names_;  // id -> string; append-only
  std::unordered_map<std::string, std::uint32_t> name_ids_;
  std::vector<std::unique_ptr<ThreadBuf>> bufs_;
  std::vector<ForeignProcess> foreign_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::size_t> capacity_{kDefaultRingCapacity};
  std::atomic<std::int64_t> clock_offset_ns_{0};
};

// RAII span. Default-constructed it is inert (a dead store); Arm() opens
// the span and the destructor closes it. The DCC_TRACE_SPAN macro is the
// intended spelling — it keeps the disabled path to the single enabled()
// branch and interns the name once per call site.
class TraceSpan {
 public:
  TraceSpan() = default;
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void Arm(std::uint32_t name) {
    name_ = name;
    armed_ = true;
    Tracer::Global().Emit(name, EventKind::kBegin);
  }

  ~TraceSpan() {
    if (armed_) Tracer::Global().Emit(name_, EventKind::kEnd);
  }

 private:
  std::uint32_t name_ = 0;
  bool armed_ = false;
};

#define DCC_OBS_CONCAT_(a, b) a##b
#define DCC_OBS_CONCAT(a, b) DCC_OBS_CONCAT_(a, b)

// Opens a span named `name_lit` (a string literal) covering the rest of
// the enclosing scope. Disabled cost: one relaxed load + untaken branch.
#define DCC_TRACE_SPAN(name_lit)                                          \
  ::dcc::obs::TraceSpan DCC_OBS_CONCAT(dcc_obs_span_, __LINE__);          \
  if (::dcc::obs::Tracer::enabled()) {                                    \
    static const std::uint32_t DCC_OBS_CONCAT(dcc_obs_id_, __LINE__) =    \
        ::dcc::obs::Tracer::Global().Intern(name_lit);                    \
    DCC_OBS_CONCAT(dcc_obs_span_, __LINE__)                               \
        .Arm(DCC_OBS_CONCAT(dcc_obs_id_, __LINE__));                      \
  }                                                                       \
  static_assert(true, "")  /* force a trailing semicolon */

// Records a counter sample (rendered as a counter track in the viewer).
#define DCC_TRACE_COUNTER(name_lit, sample)                               \
  do {                                                                    \
    if (::dcc::obs::Tracer::enabled()) {                                  \
      static const std::uint32_t DCC_OBS_CONCAT(dcc_obs_id_, __LINE__) =  \
          ::dcc::obs::Tracer::Global().Intern(name_lit);                  \
      ::dcc::obs::Tracer::Global().Emit(                                  \
          DCC_OBS_CONCAT(dcc_obs_id_, __LINE__),                          \
          ::dcc::obs::EventKind::kCounter,                                \
          static_cast<std::int64_t>(sample));                             \
    }                                                                     \
  } while (0)

// Records a zero-duration instant event.
#define DCC_TRACE_INSTANT(name_lit)                                       \
  do {                                                                    \
    if (::dcc::obs::Tracer::enabled()) {                                  \
      static const std::uint32_t DCC_OBS_CONCAT(dcc_obs_id_, __LINE__) =  \
          ::dcc::obs::Tracer::Global().Intern(name_lit);                  \
      ::dcc::obs::Tracer::Global().Emit(                                  \
          DCC_OBS_CONCAT(dcc_obs_id_, __LINE__),                          \
          ::dcc::obs::EventKind::kInstant);                               \
    }                                                                     \
  } while (0)

}  // namespace dcc::obs
