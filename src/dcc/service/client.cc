#include "dcc/service/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "dcc/common/json.h"
#include "dcc/common/types.h"
#include "dcc/common/wire.h"

namespace dcc::service {

namespace {

// The response grammar puts "report" last precisely so clients can slice
// the serialized report out verbatim — byte identity across cache paths
// is part of the service contract and tests compare these raw bytes.
constexpr char kReportMarker[] = ", \"report\": ";

}  // namespace

Client::Client(std::string socket_path)
    : socket_path_(std::move(socket_path)) {}

Client::~Client() { Close(); }

void Client::Connect() {
  if (fd_ >= 0) return;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof addr.sun_path) {
    throw InvalidArgument("client: socket path '" + socket_path_ +
                          "' exceeds the AF_UNIX limit");
  }
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw wire::WireError(std::string("client: socket: ") +
                          std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    throw wire::WireError("client: connect " + socket_path_ + ": " +
                          std::strerror(err));
  }
  fd_ = fd;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::string Client::Call(const std::string& request) {
  Connect();
  std::string response;
  try {
    wire::WriteFrame(fd_, request);
    if (!wire::ReadFrame(fd_, &response)) {
      throw wire::WireError("client: daemon closed the connection");
    }
  } catch (...) {
    Close();  // the stream is desynced; the next call reconnects
    throw;
  }
  return response;
}

Client::RunResult Client::DoRun(const std::string& spec_line,
                                const std::uint64_t* seed) {
  std::string req = "{\"op\": \"run\", \"id\": " + std::to_string(next_id_++) +
                    ", \"spec\": " + JsonQuote(spec_line);
  if (seed != nullptr) req += ", \"seed\": " + std::to_string(*seed);
  req += '}';

  const std::string response = Call(req);
  const JsonValue parsed = JsonValue::Parse(response);
  RunResult out;
  out.ok = parsed.GetBool("ok", false);
  if (!out.ok) {
    // Two error shapes: a plain string (bad spec, unknown op) or the
    // structured {"code", "message"} object (draining; see service.h).
    const JsonValue* err = parsed.Find("error");
    if (err != nullptr && err->kind() == JsonValue::Kind::kObject) {
      out.error_code = err->GetString("code", "");
      out.error = err->GetString("message", "unknown error");
    } else {
      out.error = parsed.GetString("error", "unknown error");
    }
    return out;
  }
  out.cached = parsed.GetString("cached", "");
  const std::size_t pos = response.find(kReportMarker);
  if (pos == std::string::npos || response.empty() ||
      response.back() != '}') {
    throw InvalidArgument("client: malformed run response: " + response);
  }
  const std::size_t begin = pos + sizeof kReportMarker - 1;
  out.report = response.substr(begin, response.size() - begin - 1);
  return out;
}

Client::RunResult Client::Run(const std::string& spec_line) {
  return DoRun(spec_line, nullptr);
}

Client::RunResult Client::Run(const std::string& spec_line,
                              std::uint64_t seed) {
  return DoRun(spec_line, &seed);
}

std::string Client::StatsJson() {
  const std::string response = Call(
      "{\"op\": \"stats\", \"id\": " + std::to_string(next_id_++) + '}');
  const JsonValue parsed = JsonValue::Parse(response);
  if (!parsed.GetBool("ok", false)) {
    throw InvalidArgument("client: stats request failed: " + response);
  }
  constexpr char kStatsMarker[] = ", \"stats\": ";
  const std::size_t pos = response.find(kStatsMarker);
  if (pos == std::string::npos || response.back() != '}') {
    throw InvalidArgument("client: malformed stats response: " + response);
  }
  const std::size_t begin = pos + sizeof kStatsMarker - 1;
  return response.substr(begin, response.size() - begin - 1);
}

std::string Client::MetricsText() {
  const std::string response = Call(
      "{\"op\": \"metrics\", \"id\": " + std::to_string(next_id_++) + '}');
  const JsonValue parsed = JsonValue::Parse(response);
  if (!parsed.GetBool("ok", false)) {
    throw InvalidArgument("client: metrics request failed: " + response);
  }
  const JsonValue* text = parsed.Find("metrics");
  if (text == nullptr || text->kind() != JsonValue::Kind::kString) {
    throw InvalidArgument("client: malformed metrics response: " + response);
  }
  return text->GetString();
}

void Client::Ping() {
  const std::string response =
      Call("{\"op\": \"ping\", \"id\": " + std::to_string(next_id_++) + '}');
  const JsonValue parsed = JsonValue::Parse(response);
  if (!parsed.GetBool("ok", false)) {
    throw InvalidArgument("client: ping failed: " + response);
  }
}

}  // namespace dcc::service
