#include "dcc/sinr/network.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dcc::sinr {
namespace {

Network LineNetwork(int n, double pitch) {
  std::vector<Vec2> pts;
  for (int i = 0; i < n; ++i) pts.push_back({i * pitch, 0.0});
  return Network::WithSequentialIds(std::move(pts), Params::Default());
}

TEST(NetworkTest, IdsAndIndices) {
  const Network net = LineNetwork(5, 0.5);
  EXPECT_EQ(net.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(net.id(i), static_cast<NodeId>(i + 1));
    EXPECT_EQ(net.IndexOf(net.id(i)), i);
  }
  EXPECT_TRUE(net.HasId(3));
  EXPECT_FALSE(net.HasId(99));
  EXPECT_THROW(net.IndexOf(99), InvalidArgument);
}

TEST(NetworkTest, DuplicateIdsRejected) {
  std::vector<Vec2> pts{{0, 0}, {1, 0}};
  std::vector<NodeId> ids{5, 5};
  EXPECT_THROW(Network(pts, ids, Params::Default()), InvalidArgument);
}

TEST(NetworkTest, IdRangeEnforced) {
  std::vector<Vec2> pts{{0, 0}};
  EXPECT_THROW(Network(pts, {0}, Params::Default()), InvalidArgument);
  Params p = Params::Default();
  p.id_space = 4;
  EXPECT_THROW(Network(pts, {5}, p), InvalidArgument);
}

TEST(NetworkTest, GainMatchesFormula) {
  const Network net = LineNetwork(3, 0.5);
  const Params& p = net.params();
  // d(0,1) = 0.5 -> gain = P / 0.5^alpha.
  EXPECT_NEAR(net.Gain(0, 1), p.power / std::pow(0.5, p.alpha), 1e-12);
  EXPECT_NEAR(net.Gain(0, 2), p.power / std::pow(1.0, p.alpha), 1e-12);
  EXPECT_DOUBLE_EQ(net.Gain(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(net.Gain(0, 2), net.Gain(2, 0));
}

TEST(NetworkTest, CommGraphUsesOneMinusEps) {
  // pitch 0.5, eps 0.2 -> comm radius 0.8: neighbors at 0.5, not at 1.0.
  const Network net = LineNetwork(4, 0.5);
  const auto& g = net.CommGraph();
  EXPECT_EQ(g[0], (std::vector<std::size_t>{1}));
  EXPECT_EQ(g[1], (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(net.MaxDegree(), 2);
}

TEST(NetworkTest, HopDistancesAndDiameter) {
  const Network net = LineNetwork(6, 0.5);
  const auto d = net.HopDistances(0);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(d[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(net.Diameter(), 5);
  EXPECT_TRUE(net.Connected());
}

TEST(NetworkTest, DisconnectedDetected) {
  std::vector<Vec2> pts{{0, 0}, {0.5, 0}, {10, 0}, {10.5, 0}};
  const Network net = Network::WithSequentialIds(pts, Params::Default());
  EXPECT_FALSE(net.Connected());
  const auto d = net.HopDistances(0);
  EXPECT_EQ(d[2], -1);
}

TEST(NetworkTest, DensityCountsUnitBall) {
  const Network net = LineNetwork(9, 0.25);  // 4 neighbors each side within 1
  EXPECT_EQ(net.Density(), 9);
}

}  // namespace
}  // namespace dcc::sinr
