// Wire protocol of the distributed round execution mode (src/dcc/distrib):
// the message vocabulary a coordinator (Session) and its rank processes
// exchange over socketpairs, encoded with the compact binary payload codec
// (common/wire.h) inside length-prefixed frames.
//
// The protocol is the halo invariant of docs/ARCHITECTURE.md made explicit:
// per round the coordinator ships each rank
//  * the full transmitter manifest in ORIGINAL round order (the exact
//    fallback and shadowing paths sum interference in that order — shipping
//    only nearby transmitters would change reception bits),
//  * the rank's owned listener ordinals,
//  * exact CSR slices of the transmitter tiles within `far_start` of any
//    owned listener tile (the near/mid halo the staged refinement scans
//    member-by-member), and
//  * (tile, count) envelope summaries for everything farther (far-field
//    tiles contribute through count-scaled distance bounds only).
// A rank holds a deterministic replica of the network (rebuilt from the
// spec line + seed in the Hello, kept current by Positions frames), derives
// the same halo partition with NearTxTiles, and verifies the shipped slices
// match its replica bitwise — any divergence between the two address spaces
// fails the round loudly instead of silently skewing SINR bits.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "dcc/common/geometry.h"
#include "dcc/common/spatial_grid.h"

namespace dcc::distrib {

inline constexpr std::uint32_t kProtocolVersion = 1;

enum class MsgTag : std::uint8_t {
  kHello = 1,       // coordinator -> rank: identity + replica recipe
  kHelloAck = 2,    // rank -> coordinator: replica built and verified
  kPositions = 3,   // coordinator -> rank: full position + liveness sync
  kRound = 4,       // coordinator -> rank: one round's manifest + halo
  kRoundReply = 5,  // rank -> coordinator: ordinal-tagged receptions
  kShutdown = 6,    // coordinator -> rank: clean exit
  kTraceDump = 7,   // rank -> coordinator: trace buffers, after shutdown
  kError = 8,       // rank -> coordinator: fatal failure, then exit
};

struct HelloMsg {
  std::uint32_t version = kProtocolVersion;
  std::uint32_t rank = 0;
  std::uint32_t ranks = 0;
  std::uint64_t seed = 0;
  // Canonical static spec line (ScenarioSpec flag grammar): topology, SINR
  // params, shadowing, id seed — everything BuildScenarioNetwork needs to
  // reproduce the coordinator's network bit-for-bit.
  std::string spec_line;
  // Engine geometry the rank must mirror exactly: tile side, optional
  // explicit coverage box (dynamic scenarios), far-field threshold.
  double cell = 0.0;
  bool has_coverage = false;
  Box coverage;
  double far_start = 0.0;
  // Expected replica shape, verified by the rank before the ack.
  std::uint64_t n = 0;
  std::uint64_t tile_count = 0;
  // Tracing handshake (pure observation; never consulted by the round
  // path): when set, the rank enables its local obs::Tracer with a clock
  // offset derived from `trace_clock_ns` — the coordinator's raw steady
  // clock stamped just before this hello was sent — so rank events are
  // recorded directly in the coordinator's clock domain, and answers the
  // shutdown frame with one kTraceDump before exiting.
  bool trace = false;
  std::int64_t trace_clock_ns = 0;
};

struct HelloAckMsg {
  std::uint32_t rank = 0;
  std::uint64_t n = 0;
  std::uint64_t tile_count = 0;
};

struct PositionsMsg {
  std::vector<Vec2> positions;     // one per node, index order
  std::vector<std::uint8_t> live;  // 1 = in the spatial index (churn)
};

// One near/mid halo tile: the transmitters bucketed into it, in the
// engine's CSR order, with their bit-exact positions.
struct TxSlice {
  std::uint32_t tile = 0;
  std::vector<std::uint64_t> members;
  std::vector<Vec2> pos;
};

struct RoundMsg {
  std::uint64_t round = 0;
  std::uint64_t n_listen_total = 0;  // listeners across ALL ranks
  std::vector<std::uint64_t> tx;     // manifest, original round order
  // This rank's listeners: (global ordinal, node index), ordinal-ascending.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> owned;
  std::vector<TxSlice> near;  // tile-ascending
  // Far-field envelope summaries: (tile, transmitter count), tile-ascending.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> far;
};

struct ReplyEntry {
  std::uint32_t ordinal = 0;
  std::uint64_t listener = 0;
  std::uint64_t sender = 0;
  double sinr = 0.0;
};

struct RoundReplyMsg {
  std::uint64_t round = 0;
  std::vector<ReplyEntry> receptions;  // ordinal-ascending
};

// Encoders produce one frame payload (tag byte + body).
std::string Encode(const HelloMsg& m);
std::string Encode(const HelloAckMsg& m);
std::string Encode(const PositionsMsg& m);
std::string Encode(const RoundMsg& m);
std::string Encode(const RoundReplyMsg& m);
std::string EncodeShutdown();
std::string EncodeError(const std::string& message);
// `ship` is an opaque obs::Tracer::EncodeShip payload; the coordinator
// hands the decoded bytes straight to obs::Tracer::InjectShip.
std::string EncodeTraceDump(const std::string& ship);

// First byte of a received payload; throws WireError on an empty payload.
MsgTag PeekTag(std::string_view payload);

// Decoders verify the tag, bounds-check every read, and reject trailing
// bytes; all failures throw wire::WireError.
HelloMsg DecodeHello(std::string_view payload);
HelloAckMsg DecodeHelloAck(std::string_view payload);
PositionsMsg DecodePositions(std::string_view payload);
RoundMsg DecodeRound(std::string_view payload);
RoundReplyMsg DecodeRoundReply(std::string_view payload);
std::string DecodeError(std::string_view payload);
std::string DecodeTraceDump(std::string_view payload);

// The near/mid halo set: occupied transmitter tiles within `far_start` of
// at least one of `listener_tiles` (tile-box to tile-box lower bound —
// the exact criterion the engine's staged refinement uses to decide which
// tiles it scans member-by-member). Both ends derive the halo with this
// one function, so they can only agree or fail verification; they cannot
// silently diverge. `listener_tiles` and `occupied_tx` ascending; the
// result is an ascending subset of `occupied_tx`.
std::vector<int> NearTxTiles(const SpatialGrid& grid,
                             std::span<const int> listener_tiles,
                             std::span<const int> occupied_tx,
                             double far_start);

}  // namespace dcc::distrib
