#include "dcc/parallel/worker_pool.h"

#include <cstdlib>
#include <exception>
#include <string>
#include <utility>

#include "dcc/common/types.h"
#include "dcc/obs/metrics.h"
#include "dcc/obs/trace.h"

namespace dcc::parallel {

namespace {

// Identifies the pool whose job the current thread is running (nullptr
// outside any job). Set around each job, so OnWorkerThread() is true for
// nested fan-outs from inside a job regardless of which thread runs it.
thread_local const WorkerPool* t_running_pool = nullptr;

// Worker-thread identity: which pool owns this thread and which deque is
// its local one. Distinct from t_running_pool — a non-worker caller inside
// Run has a running pool but no local deque.
struct WorkerSlot {
  const WorkerPool* pool = nullptr;
  int index = -1;
};
thread_local WorkerSlot t_worker;

int SharedWorkerCount() {
  const char* env = std::getenv("DCC_POOL_WORKERS");
  if (env != nullptr && *env != '\0') {
    const std::string s(env);
    std::size_t pos = 0;
    long v = -1;
    try {
      v = std::stol(s, &pos);
    } catch (...) {
      pos = 0;
    }
    if (pos != s.size() || v < 0 || v > 4096) {
      throw InvalidArgument("DCC_POOL_WORKERS: expected an integer in "
                            "[0, 4096], got \"" +
                            s + "\"");
    }
    return static_cast<int>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 1 ? static_cast<int>(hw) - 1 : 0;
}

}  // namespace

// A fan-out in flight. `next` is the job dispenser: every participant —
// caller, ticket holders — claims indices from it, so each job runs
// exactly once no matter how many (possibly stale) tickets circulate.
// `active` counts ticket holders currently contributing; the caller drains
// the dispenser itself and then waits for active == 0, at which point no
// other thread can reach `fn` again (the dispenser is exhausted and only
// hands out indices >= n_jobs). Reference-counted: the owner handle plus
// one reference per published ticket.
struct WorkerPool::Task {
  std::function<void(std::size_t)> owned_fn;  // Submit owns its closure
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t n_jobs = 0;
  std::atomic<std::size_t> next{0};       // job dispenser
  std::atomic<int> active{0};             // ticket holders inside JoinTask
  std::atomic<int> refs{1};               // owner + live tickets
  std::atomic<int> stolen_joins{0};       // helpers that arrived via steals
  std::mutex mu;
  std::condition_variable cv;  // signaled when active drops to 0
  std::mutex error_mu;
  std::exception_ptr error;  // first job exception (guarded by error_mu)
};

WorkerPool::WorkerPool(int workers) {
  const std::size_t n = workers > 0 ? static_cast<std::size_t>(workers) : 0;
  n_workers_ = static_cast<int>(n);
  deques_ = std::make_unique<Deque[]>(n);
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(static_cast<int>(i)); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    stop_ = true;
  }
  idle_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  // Every task is complete by now (Run blocks until done; TaskHandle waits
  // in its destructor), but stale tickets may still hold references.
  for (int i = 0; i < n_workers_; ++i) {
    while (Task* t = deques_[i].PopBottom()) ReleaseRef(t);
  }
  for (Task* t : injection_) ReleaseRef(t);
}

WorkerPool& WorkerPool::Shared() {
  // Leaked on purpose: joining workers from a static destructor while other
  // statics may still Run is a shutdown hazard with zero upside.
  static WorkerPool* pool = new WorkerPool(SharedWorkerCount());
  return *pool;
}

bool WorkerPool::OnWorkerThread() const { return t_running_pool == this; }

void WorkerPool::ReleaseRef(Task* t) {
  if (t->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) delete t;
}

void WorkerPool::RunJob(Task& task, std::size_t i) {
  const WorkerPool* prev = t_running_pool;
  t_running_pool = this;
  try {
    (*task.fn)(i);
  } catch (...) {
    // The first error wins; stop dispensing further jobs so the fan-out
    // drains quickly (jobs already running finish normally). The caller
    // reads `error` only after the completion barrier.
    task.next.store(task.n_jobs, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(task.error_mu);
    if (!task.error) task.error = std::current_exception();
  }
  t_running_pool = prev;
}

void WorkerPool::JoinTask(Task* task, bool stolen) {
  // Register before claiming: once a participant holds a job index, its
  // `active` increment is already visible to anyone who later observes the
  // dispenser exhausted, so the caller's active==0 wait cannot pass while
  // a job is still running.
  task->active.fetch_add(1, std::memory_order_acq_rel);
  bool joined = false;
  for (;;) {
    const std::size_t i = task->next.fetch_add(1, std::memory_order_acq_rel);
    if (i >= task->n_jobs) break;
    if (!joined) {
      joined = true;
      if (stolen) {
        task->stolen_joins.fetch_add(1, std::memory_order_relaxed);
        steal_count_.fetch_add(1, std::memory_order_relaxed);
        static obs::Counter& steals_metric =
            obs::MetricsRegistry::Global().GetCounter(
                "dcc_pool_steals_total",
                "Fan-outs joined via work stealing");
        steals_metric.Add(1);
        DCC_TRACE_INSTANT("pool.steal");
      }
    }
    RunJob(*task, i);
  }
  if (task->active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    {
      std::lock_guard<std::mutex> lock(task->mu);
    }
    task->cv.notify_all();
  }
  ReleaseRef(task);
}

void WorkerPool::CollectStaleTickets(Deque& d) {
  for (;;) {
    Task* t = d.PopBottom();
    if (t == nullptr) return;
    if (t->next.load(std::memory_order_relaxed) < t->n_jobs) {
      // Still live (an unconsumed Submit ticket): put it back and stop.
      d.TryPush(t);  // space is guaranteed — we just popped it
      return;
    }
    ReleaseRef(t);
  }
}

void WorkerPool::PublishTickets(Task* task, int count) {
  task->refs.fetch_add(count, std::memory_order_relaxed);
  Deque* local =
      t_worker.pool == this ? &deques_[t_worker.index] : nullptr;
  if (local != nullptr) CollectStaleTickets(*local);
  for (int k = 0; k < count; ++k) {
    if (local != nullptr && local->TryPush(task)) continue;
    std::lock_guard<std::mutex> lock(inj_mu_);
    injection_.push_back(task);
  }
  work_signal_.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
  }
  idle_cv_.notify_all();
}

WorkerPool::Task* WorkerPool::FindWork(int self, bool* stolen) {
  *stolen = false;
  if (Task* t = deques_[self].PopBottom()) return t;
  {
    std::lock_guard<std::mutex> lock(inj_mu_);
    if (!injection_.empty()) {
      Task* t = injection_.front();
      injection_.pop_front();
      return t;
    }
  }
  const int n = n_workers_;
  for (int k = 1; k < n; ++k) {
    const int victim = (self + k) % n;
    if (Task* t = deques_[victim].Steal()) {
      *stolen = true;
      return t;
    }
  }
  return nullptr;
}

void WorkerPool::WorkerLoop(int self) {
  t_worker = WorkerSlot{this, self};
  for (;;) {
    const std::uint64_t seen = work_signal_.load(std::memory_order_acquire);
    bool stolen = false;
    if (Task* t = FindWork(self, &stolen)) {
      JoinTask(t, stolen);
      continue;
    }
    std::unique_lock<std::mutex> lock(idle_mu_);
    if (stop_) return;
    // A publish between the scan above and this lock moved the signal; go
    // look again instead of sleeping through it.
    if (work_signal_.load(std::memory_order_acquire) != seen) continue;
    idle_cv_.wait(lock);
    if (stop_) return;
  }
}

int WorkerPool::Run(std::size_t n_jobs,
                    const std::function<void(std::size_t)>& fn,
                    int max_workers) {
  if (n_jobs == 0) return 0;
  // The caller occupies one participation slot; tickets cover the rest, and
  // never more than there are jobs left to hand out.
  int helper_cap = max_workers > 0 ? max_workers - 1 : n_workers_;
  if (helper_cap > n_workers_) helper_cap = n_workers_;
  if (static_cast<std::size_t>(helper_cap) > n_jobs - 1) {
    helper_cap = static_cast<int>(n_jobs - 1);
  }
  if (n_workers_ == 0 || n_jobs == 1 || helper_cap <= 0) {
    for (std::size_t i = 0; i < n_jobs; ++i) fn(i);
    return 0;
  }

  Task* task = new Task;
  task->fn = &fn;
  task->n_jobs = n_jobs;
  PublishTickets(task, helper_cap);

  // The caller participates like any ticket holder, draining the dispenser
  // until it is exhausted.
  for (;;) {
    const std::size_t i = task->next.fetch_add(1, std::memory_order_acq_rel);
    if (i >= n_jobs) break;
    RunJob(*task, i);
  }

  // The caller drained the dispenser (next >= n_jobs), so completion is
  // exactly "no ticket holder still inside a job": holders register in
  // `active` before claiming an index, and the dispenser only hands out
  // indices >= n_jobs from here on. The acq_rel traffic on `active` makes
  // every job's writes visible to the caller; late stale tickets touch
  // only the task's own (reference-counted) fields, never `fn`.
  {
    std::unique_lock<std::mutex> lock(task->mu);
    task->cv.wait(lock, [&] {
      return task->active.load(std::memory_order_acquire) == 0;
    });
  }
  const int stolen = task->stolen_joins.load(std::memory_order_relaxed);
  std::exception_ptr err = task->error;
  ReleaseRef(task);
  if (err) std::rethrow_exception(err);
  return stolen;
}

WorkerPool::TaskHandle WorkerPool::Submit(std::function<void()> fn) {
  Task* task = new Task;
  task->owned_fn = [f = std::move(fn)](std::size_t) { f(); };
  task->fn = &task->owned_fn;
  task->n_jobs = 1;
  // With no workers there is nobody to publish to; Wait() runs it inline.
  if (n_workers_ > 0) PublishTickets(task, 1);
  return TaskHandle(task);
}

WorkerPool::TaskHandle& WorkerPool::TaskHandle::operator=(
    TaskHandle&& o) noexcept {
  if (this != &o) {
    if (task_ != nullptr) {
      try {
        Wait();
      } catch (...) {
      }
    }
    task_ = o.task_;
    o.task_ = nullptr;
  }
  return *this;
}

WorkerPool::TaskHandle::~TaskHandle() {
  if (task_ != nullptr) {
    try {
      Wait();
    } catch (...) {
    }
  }
}

bool WorkerPool::TaskHandle::Wait() {
  Task* task = task_;
  task_ = nullptr;
  // Claim the single job: if we get index 0 nobody had started it — run it
  // inline. Otherwise a ticket holder owns it; it registered in `active`
  // before claiming, and the dispenser traffic orders that registration
  // before our fetch, so waiting for active == 0 cannot pass early.
  const std::size_t i = task->next.fetch_add(1, std::memory_order_acq_rel);
  const bool elsewhere = i != 0;
  if (!elsewhere) {
    try {
      (*task->fn)(0);
    } catch (...) {
      std::lock_guard<std::mutex> lock(task->error_mu);
      if (!task->error) task->error = std::current_exception();
    }
  } else {
    std::unique_lock<std::mutex> lock(task->mu);
    task->cv.wait(lock, [&] {
      return task->active.load(std::memory_order_acquire) == 0;
    });
  }
  std::exception_ptr err = task->error;
  ReleaseRef(task);
  if (err) std::rethrow_exception(err);
  return elsewhere;
}

}  // namespace dcc::parallel
