// RadiusReduction (Alg. 5, Lemma 12): turns an r-clustering (r = O(1)) of a
// set X into a 1-clustering in O((Gamma + log* N) log N) rounds.
//
// Each iteration: FullSparsification thins X to a constant-density core;
// the core runs a Sparse Network Schedule to learn its neighborhood graph
// G, computes a MIS D of G (LOCAL rounds simulated by SNS replays), and D
// broadcasts — every node hearing some d in D joins d's new cluster and
// retires. MIS independence puts the new centers pairwise further than
// 1 - eps apart; reception range caps the new radius at 1.
#pragma once

#include <cstdint>
#include <vector>

#include "dcc/cluster/profile.h"
#include "dcc/sim/runner.h"

namespace dcc::cluster {

struct RadiusReductionStats {
  Round rounds = 0;
  int iterations = 0;
  std::size_t unassigned = 0;  // members that never heard a center (0 when
                               // the iteration budget suffices — Lemma 12)
};

// Rewrites cluster_of[idx] for idx in `members` with the new 1-clustering
// (cluster id = center's node id). The incoming clustering is the
// r-clustering being reduced; it is consumed as wcss keys during the
// internal sparsifications.
RadiusReductionStats RadiusReduction(sim::Exec& ex, const Profile& prof,
                                     const std::vector<std::size_t>& members,
                                     std::vector<ClusterId>& cluster_of,
                                     int gamma, std::uint64_t nonce);

}  // namespace dcc::cluster
