// Small numeric helpers: iterated logarithm, integer logs, prime sieve.
#pragma once

#include <cstdint>
#include <vector>

#include "dcc/common/types.h"

namespace dcc {

// ceil(log2(x)) for x >= 1; 0 for x == 1.
int CeilLog2(std::uint64_t x);

// The iterated logarithm log*(n): number of times log2 must be applied
// before the value drops to <= 1. log*(1)=0, log*(2)=1, log*(4)=2,
// log*(16)=3, log*(65536)=4, ...
int LogStar(double n);

// ceil(log_{4/3}(x)) for x >= 1 — the iteration count k of FullSparsification
// (Alg. 4) and Clustering (Alg. 6).
int CeilLog43(double x);

// All primes in [lo, hi] (inclusive), simple sieve; hi <= ~10^7 expected.
std::vector<std::int64_t> PrimesInRange(std::int64_t lo, std::int64_t hi);

// The first prime >= x.
std::int64_t NextPrime(std::int64_t x);

bool IsPrime(std::int64_t x);

}  // namespace dcc
