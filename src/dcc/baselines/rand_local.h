// Randomized local-broadcast baselines for Table 1.
//
//  * `RandLocalBroadcastKnown` — Goussevskaia et al. [16] with known Delta:
//    every node transmits with probability p = c/Delta each round, for
//    O(Delta log n) rounds (success w.h.p.).
//  * `RandLocalBroadcastUnknown` — the doubling variant for unknown Delta
//    ([16] O(Delta log^3 n) regime): epochs e = 1, 2, ... guess
//    Delta_e = 2^e and run c * Delta_e * log n rounds at p = c'/Delta_e.
//
// Both report the round at which the oracle observed full cumulative
// coverage (every node's message heard by every comm-graph neighbor) and
// whether coverage completed within the budget.
#pragma once

#include <cstdint>
#include <vector>

#include "dcc/sim/runner.h"

namespace dcc::baselines {

struct RandLocalResult {
  Round rounds_budget = 0;   // rounds the protocol runs (it never knows)
  Round rounds_to_cover = 0; // oracle: when the last node completed
  bool covered = false;
  std::size_t members = 0;
  std::size_t covered_nodes = 0;
};

RandLocalResult RandLocalBroadcastKnown(sim::Exec& ex,
                                        const std::vector<std::size_t>& members,
                                        int delta, double c_prob,
                                        double c_len, std::uint64_t seed);

RandLocalResult RandLocalBroadcastUnknown(
    sim::Exec& ex, const std::vector<std::size_t>& members, int max_delta,
    double c_prob, double c_len, std::uint64_t seed);

}  // namespace dcc::baselines
