// Engine::Options::FromEnv — strict parsing of DCC_ENGINE_MODE /
// DCC_ENGINE_CELL / DCC_ENGINE_THREADS / DCC_ENGINE_MIN_SHARD /
// DCC_ENGINE_FARFIELD / DCC_ENGINE_PROLOGUE_CACHE. Typos must reject, not
// silently fall back.
#include <gtest/gtest.h>

#include <cstdlib>

#include "dcc/sinr/engine.h"

namespace dcc::sinr {
namespace {

class EngineEnvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    unsetenv("DCC_ENGINE_MODE");
    unsetenv("DCC_ENGINE_CELL");
    unsetenv("DCC_ENGINE_THREADS");
    unsetenv("DCC_ENGINE_MIN_SHARD");
    unsetenv("DCC_ENGINE_FARFIELD");
    unsetenv("DCC_ENGINE_PROLOGUE_CACHE");
  }
};

TEST_F(EngineEnvTest, DefaultsWhenUnset) {
  const auto opts = Engine::Options::FromEnv();
  EXPECT_EQ(opts.mode, Engine::Mode::kAuto);
  EXPECT_EQ(opts.cell, 0.0);
  EXPECT_EQ(opts.threads, 1);
}

TEST_F(EngineEnvTest, ParsesEveryMode) {
  setenv("DCC_ENGINE_MODE", "exact", 1);
  EXPECT_EQ(Engine::Options::FromEnv().mode, Engine::Mode::kExact);
  setenv("DCC_ENGINE_MODE", "grid", 1);
  EXPECT_EQ(Engine::Options::FromEnv().mode, Engine::Mode::kGrid);
  setenv("DCC_ENGINE_MODE", "auto", 1);
  EXPECT_EQ(Engine::Options::FromEnv().mode, Engine::Mode::kAuto);
}

TEST_F(EngineEnvTest, ParsesCell) {
  setenv("DCC_ENGINE_CELL", "2.5", 1);
  EXPECT_DOUBLE_EQ(Engine::Options::FromEnv().cell, 2.5);
}

TEST_F(EngineEnvTest, RejectsModeTypos) {
  setenv("DCC_ENGINE_MODE", "gird", 1);
  EXPECT_THROW(Engine::Options::FromEnv(), InvalidArgument);
}

TEST_F(EngineEnvTest, RejectsMalformedCell) {
  setenv("DCC_ENGINE_CELL", "2.5x", 1);
  EXPECT_THROW(Engine::Options::FromEnv(), InvalidArgument);
  setenv("DCC_ENGINE_CELL", "-1", 1);
  EXPECT_THROW(Engine::Options::FromEnv(), InvalidArgument);
}

TEST_F(EngineEnvTest, ParsesThreads) {
  setenv("DCC_ENGINE_THREADS", "4", 1);
  EXPECT_EQ(Engine::Options::FromEnv().threads, 4);
  setenv("DCC_ENGINE_THREADS", "0", 1);  // 0 = hardware
  EXPECT_EQ(Engine::Options::FromEnv().threads, 0);
}

TEST_F(EngineEnvTest, RejectsMalformedThreads) {
  setenv("DCC_ENGINE_THREADS", "four", 1);
  EXPECT_THROW(Engine::Options::FromEnv(), InvalidArgument);
  setenv("DCC_ENGINE_THREADS", "-2", 1);
  EXPECT_THROW(Engine::Options::FromEnv(), InvalidArgument);
  setenv("DCC_ENGINE_THREADS", "8192", 1);
  EXPECT_THROW(Engine::Options::FromEnv(), InvalidArgument);
}

TEST_F(EngineEnvTest, ParsesMinShard) {
  setenv("DCC_ENGINE_MIN_SHARD", "64", 1);
  EXPECT_EQ(Engine::Options::FromEnv().min_listeners_per_shard, 64);
  setenv("DCC_ENGINE_MIN_SHARD", "1", 1);
  EXPECT_EQ(Engine::Options::FromEnv().min_listeners_per_shard, 1);
}

TEST_F(EngineEnvTest, RejectsMalformedMinShard) {
  setenv("DCC_ENGINE_MIN_SHARD", "lots", 1);
  EXPECT_THROW(Engine::Options::FromEnv(), InvalidArgument);
  setenv("DCC_ENGINE_MIN_SHARD", "0", 1);  // grain of 0 would always shard
  EXPECT_THROW(Engine::Options::FromEnv(), InvalidArgument);
  setenv("DCC_ENGINE_MIN_SHARD", "-8", 1);
  EXPECT_THROW(Engine::Options::FromEnv(), InvalidArgument);
  setenv("DCC_ENGINE_MIN_SHARD", "2000000", 1);  // above the sanity cap
  EXPECT_THROW(Engine::Options::FromEnv(), InvalidArgument);
}

TEST_F(EngineEnvTest, ParsesFarfield) {
  setenv("DCC_ENGINE_FARFIELD", "flat", 1);
  EXPECT_EQ(Engine::Options::FromEnv().farfield, Engine::FarField::kFlat);
  setenv("DCC_ENGINE_FARFIELD", "pyramid", 1);
  EXPECT_EQ(Engine::Options::FromEnv().farfield, Engine::FarField::kPyramid);
}

TEST_F(EngineEnvTest, RejectsFarfieldTypos) {
  setenv("DCC_ENGINE_FARFIELD", "pyramind", 1);
  EXPECT_THROW(Engine::Options::FromEnv(), InvalidArgument);
  setenv("DCC_ENGINE_FARFIELD", "on", 1);
  EXPECT_THROW(Engine::Options::FromEnv(), InvalidArgument);
}

TEST_F(EngineEnvTest, ParsesPrologueCache) {
  setenv("DCC_ENGINE_PROLOGUE_CACHE", "8", 1);
  EXPECT_EQ(Engine::Options::FromEnv().prologue_cache, 8u);
  setenv("DCC_ENGINE_PROLOGUE_CACHE", "0", 1);  // 0 = off
  EXPECT_EQ(Engine::Options::FromEnv().prologue_cache, 0u);
}

TEST_F(EngineEnvTest, RejectsMalformedPrologueCache) {
  setenv("DCC_ENGINE_PROLOGUE_CACHE", "many", 1);
  EXPECT_THROW(Engine::Options::FromEnv(), InvalidArgument);
  setenv("DCC_ENGINE_PROLOGUE_CACHE", "-1", 1);
  EXPECT_THROW(Engine::Options::FromEnv(), InvalidArgument);
  setenv("DCC_ENGINE_PROLOGUE_CACHE", "4096", 1);  // above the sanity cap
  EXPECT_THROW(Engine::Options::FromEnv(), InvalidArgument);
}

TEST_F(EngineEnvTest, EmptyValuesMeanUnset) {
  setenv("DCC_ENGINE_MODE", "", 1);
  setenv("DCC_ENGINE_CELL", "", 1);
  setenv("DCC_ENGINE_THREADS", "", 1);
  setenv("DCC_ENGINE_MIN_SHARD", "", 1);
  setenv("DCC_ENGINE_FARFIELD", "", 1);
  setenv("DCC_ENGINE_PROLOGUE_CACHE", "", 1);
  const auto opts = Engine::Options::FromEnv();
  EXPECT_EQ(opts.mode, Engine::Mode::kAuto);
  EXPECT_EQ(opts.cell, 0.0);
  EXPECT_EQ(opts.threads, 1);
  EXPECT_EQ(opts.min_listeners_per_shard, Engine::kMinListenersPerShard);
  EXPECT_EQ(opts.farfield, Engine::FarField::kPyramid);
  EXPECT_EQ(opts.prologue_cache, 0u);
}

}  // namespace
}  // namespace dcc::sinr
