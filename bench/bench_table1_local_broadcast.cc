// Table 1 — local broadcast algorithms.
//
// Paper rows (asymptotics):
//   [16] randomized, knows Delta, n:        O(Delta log n)
//   [16] randomized, knows n:               O(Delta log^3 n)   (doubling)
//   [35] randomized, knows n:               O(Delta log n + log^2 n)
//   [22] deterministic + location:          O(Delta log^3 n)
//   this work, deterministic, Delta & N:    O(Delta log* n log n)
//
// We regenerate the comparable rows as *measured rounds* over the same
// workloads, sweeping the density Delta at (roughly) fixed n. Absolute
// numbers are simulator-specific; the shape to check is (a) every
// algorithm grows ~linearly in Delta, (b) the deterministic algorithm
// stays within a polylog factor of the randomized baselines, and (c) the
// deterministic TDMA strawman pays Theta(N) regardless of Delta.
#include <cmath>

#include "bench_common.h"
#include "dcc/baselines/grid_tdma.h"
#include "dcc/baselines/rand_local.h"
#include "dcc/baselines/tdma.h"
#include "dcc/bcast/local_broadcast.h"

namespace dcc {
namespace {

void Run() {
  bench::Banner("Table 1: local broadcast",
                "Jurdzinski et al., PODC'18, Table 1",
                "all rows ~linear in Delta; deterministic (this work) within "
                "polylog of randomized; TDMA pays Theta(N)");

  sinr::Params params = sinr::Params::Default();
  params.id_space = 1 << 12;
  const auto prof = cluster::Profile::Practical(params.id_space);

  Table t({"n", "Delta", "rand-known[16]", "rand-unknown[16]",
           "det+loc[22]", "tdma(N=4096)", "this-work", "det/rand",
           "coverage"});

  // Density sweep: same area, growing population.
  const double side = 5.0;
  for (const int n : {48, 96, 192, 288}) {
    auto pts = workload::UniformSquare(n, side, 1000 + n);
    const auto net = workload::MakeNetwork(pts, params, 7 + n);
    const auto all = bench::AllIndices(net);
    const int delta = cluster::SubsetDensity(net, all);

    sim::Exec ex_rk(net, bench::EngineOptionsFromEnv());
    const auto rk =
        baselines::RandLocalBroadcastKnown(ex_rk, all, delta, 1.0, 24.0, 42);

    sim::Exec ex_ru(net, bench::EngineOptionsFromEnv());
    const auto ru = baselines::RandLocalBroadcastUnknown(ex_ru, all, 2 * delta,
                                                         1.0, 24.0, 43);

    sim::Exec ex_td(net, bench::EngineOptionsFromEnv());
    const auto td = baselines::TdmaLocalBroadcast(ex_td, all);

    sim::Exec ex_gt(net, bench::EngineOptionsFromEnv());
    const auto gt = baselines::GridTdmaLocalBroadcast(ex_gt, all);

    sim::Exec ex_dt(net, bench::EngineOptionsFromEnv());
    const auto dt =
        bcast::LocalBroadcast(ex_dt, prof, all, delta, 100 + n);

    const double ratio = static_cast<double>(dt.rounds) /
                         std::max<Round>(rk.rounds_to_cover, 1);
    t.AddRow({Table::Num(std::int64_t{n}), Table::Num(std::int64_t{delta}),
              Table::Num(rk.rounds_to_cover), Table::Num(ru.rounds_to_cover),
              Table::Num(gt.rounds), Table::Num(td.rounds),
              Table::Num(dt.rounds), Table::Num(ratio),
              std::to_string(dt.covered_cumulative) + "/" +
                  std::to_string(dt.members)});
  }
  t.Print(std::cout);
  std::cout << "\nnotes: rand rows report oracle-observed completion; "
               "this-work reports full protocol rounds\n"
               "(clustering + labeling + Delta SNS runs).\n";
}

}  // namespace
}  // namespace dcc

int main() {
  dcc::Run();
  return 0;
}
