#include "dcc/lowerbound/adversary.h"

#include <algorithm>

#include "dcc/common/rng.h"

namespace dcc::lowerbound {

AdversarialAssignment AssignAdversarialIds(const ObliviousTrace& trace,
                                           std::vector<NodeId> pool,
                                           int delta, Round horizon) {
  DCC_REQUIRE(static_cast<int>(pool.size()) >= delta + 2,
              "AssignAdversarialIds: pool must hold >= delta+2 ids");
  std::sort(pool.begin(), pool.end());
  pool.resize(static_cast<std::size_t>(delta) + 2);
  const std::size_t M = pool.size();

  // Transmission matrix of the candidates under silent feedback. The
  // gadget geometry (Fact 2) makes t's reception equivalent to
  // "v_{Delta+1} transmits and no other core node does", so the adversary
  // must pick for v_{Delta+1} the id whose first *solo* transmission round
  // (no other pool id transmitting) is latest — the operational form of
  // the Lemma 13 pairing invariant ">= 2 transmitters in every used
  // round". For oblivious (schedule-driven) algorithms the silent-feedback
  // premise holds exactly: jammed rounds deliver nothing, and solo rounds
  // don't happen before the bound by construction.
  std::vector<std::vector<char>> tx(M, std::vector<char>(
                                          static_cast<std::size_t>(horizon), 0));
  std::vector<int> tx_count(static_cast<std::size_t>(horizon), 0);
  for (std::size_t i = 0; i < M; ++i) {
    for (Round r = 0; r < horizon; ++r) {
      if (trace(pool[i], r)) {
        tx[i][static_cast<std::size_t>(r)] = 1;
        ++tx_count[static_cast<std::size_t>(r)];
      }
    }
  }

  // First solo round of each candidate.
  std::vector<Round> first_solo(M, horizon);
  for (std::size_t i = 0; i < M; ++i) {
    for (Round r = 0; r < horizon; ++r) {
      if (tx[i][static_cast<std::size_t>(r)] &&
          tx_count[static_cast<std::size_t>(r)] == 1) {
        first_solo[i] = r;
        break;
      }
    }
  }

  // v_{Delta+1} gets the latest-solo id; remaining ids fill v_0..v_Delta in
  // pool order (their placement is irrelevant to t's deafness).
  std::size_t best = 0;
  for (std::size_t i = 1; i < M; ++i) {
    if (first_solo[i] > first_solo[best]) best = i;
  }
  AdversarialAssignment out;
  out.core_ids.reserve(M);
  for (std::size_t i = 0; i < M; ++i) {
    if (i != best) out.core_ids.push_back(pool[i]);
  }
  out.core_ids.push_back(pool[best]);  // v_{Delta+1}
  out.blocked_until = first_solo[best];
  out.pair_rounds.assign(1, first_solo[best]);
  return out;
}

ObliviousTrace SelectorTrace(std::int64_t id_space, int k,
                             std::uint64_t seed) {
  (void)id_space;
  StatelessHash h(seed);
  return [h, k](NodeId id, Round r) {
    return h.Coin(static_cast<std::uint64_t>(k), static_cast<std::uint64_t>(r),
                  static_cast<std::uint64_t>(id));
  };
}

ObliviousTrace RoundRobinTrace(std::int64_t id_space) {
  return [id_space](NodeId id, Round r) {
    return (r % id_space) == (id % id_space);
  };
}

}  // namespace dcc::lowerbound
