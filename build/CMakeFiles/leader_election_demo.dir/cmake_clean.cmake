file(REMOVE_RECURSE
  "CMakeFiles/leader_election_demo.dir/examples/leader_election_demo.cpp.o"
  "CMakeFiles/leader_election_demo.dir/examples/leader_election_demo.cpp.o.d"
  "leader_election_demo"
  "leader_election_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leader_election_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
