// Lemmas 8-9: Sparsification contracts.
//  * clustered: the returned set keeps >= 1 node per nonempty cluster and
//    reduces every dense cluster's size to <= (3/4) * Gamma.
//  * unclustered (chained l times): density drops to <= (3/4) * Gamma.
//  * every retired node has a same-cluster parent in the returned set,
//    linked through a recorded exchange stage.
#include "dcc/cluster/sparsify.h"

#include <gtest/gtest.h>

#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "dcc/cluster/validate.h"
#include "dcc/workload/generators.h"

namespace dcc::cluster {
namespace {

sinr::Params TestParams() {
  sinr::Params p = sinr::Params::Default();
  p.id_space = 1 << 12;
  return p;
}

std::vector<std::size_t> AllIndices(const sinr::Network& net) {
  std::vector<std::size_t> all(net.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return all;
}

TEST(SparsifyTest, ClusteredKeepsOnePerClusterAndShrinksDense) {
  const auto params = TestParams();
  // Three dense clumps, one cluster each.
  std::vector<Vec2> pts;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 16; ++i) {
      pts.push_back({c * 2.0 + 0.03 * i, 0.1 * (i % 4)});
    }
  }
  const auto net = workload::MakeNetwork(pts, params, 31);
  const auto prof = Profile::Practical(params.id_space);
  std::vector<ClusterId> cl(net.size());
  for (std::size_t i = 0; i < net.size(); ++i) {
    cl[i] = net.id((i / 16) * 16);  // first node of each clump
  }
  const int gamma = 16;

  sim::Exec ex(net);
  const auto r = Sparsify(ex, prof, AllIndices(net), cl, gamma,
                          /*clustered=*/true, 1);

  std::unordered_map<ClusterId, int> before, after;
  for (std::size_t i = 0; i < net.size(); ++i) ++before[cl[i]];
  for (const std::size_t idx : r.returned) ++after[cl[idx]];
  for (const auto& [phi, cnt] : before) {
    ASSERT_TRUE(after.count(phi)) << "cluster " << phi << " lost entirely";
    EXPECT_GE(after[phi], 1);
    EXPECT_LE(after[phi], (3 * gamma) / 4) << "cluster " << phi;
  }
}

TEST(SparsifyTest, LinksPointIntoReturnedSetSameCluster) {
  const auto params = TestParams();
  auto pts = workload::UniformSquare(96, 4.0, 77);
  const auto net = workload::MakeNetwork(pts, params, 7);
  const auto prof = Profile::Practical(params.id_space);
  std::vector<ClusterId> one(net.size(), net.id(0));
  const int gamma = SubsetDensity(net, AllIndices(net));

  sim::Exec ex(net);
  const auto r = Sparsify(ex, prof, AllIndices(net), one, gamma, true, 2);

  std::unordered_set<NodeId> returned_ids;
  for (const std::size_t idx : r.returned) returned_ids.insert(net.id(idx));
  std::unordered_set<NodeId> retired_ids;
  for (const std::size_t idx : AllIndices(net)) {
    if (!returned_ids.count(net.id(idx))) retired_ids.insert(net.id(idx));
  }
  for (const NodeId child : retired_ids) {
    const auto it = r.links.find(child);
    // Children must be linked; parents were retired from Active but are in
    // the returned set, so every missing id must have a link.
    ASSERT_TRUE(it != r.links.end()) << "retired node " << child << " unlinked";
    EXPECT_FALSE(retired_ids.count(it->second.parent))
        << "parent of " << child << " also retired";
    EXPECT_GE(it->second.stage, 0);
    EXPECT_LT(it->second.stage, static_cast<int>(r.stages.size()));
  }
}

TEST(SparsifyTest, ParentChildAreCloseGeometrically) {
  // H-edges connect nodes within 1 (SINR reception range), so parent-child
  // distance is bounded by 1.
  const auto params = TestParams();
  auto pts = workload::UniformSquare(96, 4.0, 13);
  const auto net = workload::MakeNetwork(pts, params, 3);
  const auto prof = Profile::Practical(params.id_space);
  std::vector<ClusterId> one(net.size(), net.id(0));
  sim::Exec ex(net);
  const auto r = Sparsify(ex, prof, AllIndices(net), one, 12, true, 3);
  for (const auto& [child, link] : r.links) {
    EXPECT_LE(net.Distance(net.IndexOf(child), net.IndexOf(link.parent)),
              1.0 + 1e-9);
  }
}

TEST(SparsifyUTest, DensityDropsByThreeQuarters) {
  const auto params = TestParams();
  auto pts = workload::UniformSquare(128, 4.0, 5);
  const auto net = workload::MakeNetwork(pts, params, 11);
  const auto prof = Profile::Practical(params.id_space);
  const auto all = AllIndices(net);
  const int gamma = SubsetDensity(net, all);
  ASSERT_GE(gamma, 8) << "workload not dense enough to be interesting";

  sim::Exec ex(net);
  const auto chain = SparsifyU(ex, prof, all, gamma, 4);
  ASSERT_EQ(chain.sets.size(), static_cast<std::size_t>(prof.l_uncl) + 1);
  const int final_density = SubsetDensity(net, chain.sets.back());
  EXPECT_LE(final_density, (3 * gamma) / 4)
      << "density " << gamma << " -> " << final_density;
  // Sets are nested.
  for (std::size_t i = 0; i + 1 < chain.sets.size(); ++i) {
    std::unordered_set<std::size_t> sup(chain.sets[i].begin(),
                                        chain.sets[i].end());
    for (const std::size_t idx : chain.sets[i + 1]) {
      EXPECT_TRUE(sup.count(idx));
    }
  }
}

TEST(SparsifyTest, EmptyAndSingletonInputs) {
  const auto params = TestParams();
  auto pts = workload::UniformSquare(4, 4.0, 2);
  const auto net = workload::MakeNetwork(pts, params, 1);
  const auto prof = Profile::Practical(params.id_space);
  std::vector<ClusterId> one(net.size(), net.id(0));
  sim::Exec ex(net);
  const auto r0 = Sparsify(ex, prof, {}, one, 4, true, 5);
  EXPECT_TRUE(r0.returned.empty());
  const auto r1 = Sparsify(ex, prof, {0}, one, 4, true, 6);
  EXPECT_EQ(r1.returned, (std::vector<std::size_t>{0}));
}

TEST(SparsifyTest, DeterministicAcrossRuns) {
  const auto params = TestParams();
  auto pts = workload::UniformSquare(64, 4.0, 9);
  const auto net = workload::MakeNetwork(pts, params, 2);
  const auto prof = Profile::Practical(params.id_space);
  std::vector<ClusterId> one(net.size(), net.id(0));
  sim::Exec ex1(net), ex2(net);
  const auto a = Sparsify(ex1, prof, AllIndices(net), one, 10, true, 7);
  const auto b = Sparsify(ex2, prof, AllIndices(net), one, 10, true, 7);
  EXPECT_EQ(a.returned, b.returned);
  EXPECT_EQ(a.rounds, b.rounds);
}

class SparsifyUSweep
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(SparsifyUSweep, DensityContractAcrossWorkloads) {
  const auto [n, side, seed] = GetParam();
  const auto params = TestParams();
  auto pts = workload::UniformSquare(n, side, static_cast<std::uint64_t>(seed));
  const auto net = workload::MakeNetwork(
      pts, params, static_cast<std::uint64_t>(seed) + 100);
  const auto prof = Profile::Practical(params.id_space);
  const auto all = AllIndices(net);
  const int gamma = SubsetDensity(net, all);
  sim::Exec ex(net);
  const auto chain =
      SparsifyU(ex, prof, all, gamma, static_cast<std::uint64_t>(seed));
  EXPECT_LE(SubsetDensity(net, chain.sets.back()),
            std::max(3, (3 * gamma) / 4));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SparsifyUSweep,
    ::testing::Values(std::tuple{96, 3.0, 1}, std::tuple{128, 4.0, 2},
                      std::tuple{160, 5.0, 3}, std::tuple{96, 6.0, 4}));

}  // namespace
}  // namespace dcc::cluster
