#include "dcc/sinr/farfield.h"

namespace dcc::sinr {

void FarFieldPyramid::Reset(const SpatialGrid& grid) {
  if (nx0_ == grid.nx() && ny0_ == grid.ny() && !levels_.empty()) return;
  nx0_ = grid.nx();
  ny0_ = grid.ny();
  levels_.clear();
  int nx = nx0_, ny = ny0_;
  for (;;) {
    Level lv;
    lv.nx = nx;
    lv.ny = ny;
    lv.count.assign(static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny),
                    0);
    levels_.push_back(std::move(lv));
    if (nx == 1 && ny == 1) break;
    nx = (nx + 1) / 2;
    ny = (ny + 1) / 2;
  }
  near_mark_.assign(
      static_cast<std::size_t>(nx0_) * static_cast<std::size_t>(ny0_), 0);
}

std::vector<int> FarFieldPyramid::NearTiles(const SpatialGrid& grid,
                                            std::span<const int> listener_tiles,
                                            std::span<const int> occupied_tx,
                                            double far_start) const {
  const double far_sq = far_start * far_start;
  const int top = static_cast<int>(levels_.size()) - 1;
  for (const int t : listener_tiles) {
    stack_.clear();
    if (top >= 0 && levels_[static_cast<std::size_t>(top)].count[0] > 0) {
      stack_.push_back(Cell{top, 0, 0});
    }
    while (!stack_.empty()) {
      const Cell c = stack_.back();
      stack_.pop_back();
      const int bx0 = c.x << c.level;
      const int by0 = c.y << c.level;
      const int bx1 = std::min(((c.x + 1) << c.level) - 1, nx0_ - 1);
      const int by1 = std::min(((c.y + 1) << c.level) - 1, ny0_ - 1);
      if (grid.TileRangeDistLoSq(t, bx0, by0, bx1, by1) > far_sq) continue;
      if (c.level == 0) {
        near_mark_[static_cast<std::size_t>(by0) *
                       static_cast<std::size_t>(nx0_) +
                   static_cast<std::size_t>(bx0)] = 1;
      } else {
        PushChildren(c);
      }
    }
  }
  // Ascending by construction: marks are harvested in occupied order, which
  // is exactly how the flat NearTxTiles emits them.
  std::vector<int> out;
  for (const int b : occupied_tx) {
    auto& mark = near_mark_[static_cast<std::size_t>(b)];
    if (mark != 0) {
      out.push_back(b);
      mark = 0;
    }
  }
  return out;
}

}  // namespace dcc::sinr
