#!/usr/bin/env bash
# Docs consistency gate (run by the CI docs job, and locally before
# shipping doc changes):
#
#   1. Markdown link check — every relative [text](target) link in
#      README.md and docs/*.md must resolve to a file in the repo.
#   2. Source-path check — every `src/...`, `tests/...`, `bench/...`,
#      `tools/...`, `scripts/...` path mentioned in those docs must exist
#      ({a,b} brace groups are expanded), so the paper map and
#      architecture doc cannot point at renamed files.
#   3. Flag drift — every --flag the CLI binaries (dcc_run, dccd,
#      dcc_load) advertise in --help must be documented in README.md, and
#      every --flag README's tables document must be accepted by at least
#      one of the three.
#   4. Registry drift — every mobility model `dcc_run --list` reports,
#      and every dynamics driver key it names, must appear in README.md.
#
# Usage: scripts/check_docs.sh [path-to-dcc_run]   (default: build/dcc_run;
# dccd and dcc_load are expected next to it)
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BIN="${1:-$ROOT/build/dcc_run}"

fail=0
err() {
  echo "check_docs: $*" >&2
  fail=1
}

DOCS=("$ROOT/README.md" "$ROOT"/docs/*.md)

# --- 1. relative markdown links ---------------------------------------------
for doc in "${DOCS[@]}"; do
  dir="$(dirname "$doc")"
  while IFS= read -r link; do
    case "$link" in
      http://* | https://* | mailto:*) continue ;;
    esac
    target="${link%%#*}"
    [ -z "$target" ] && continue
    if [ ! -e "$dir/$target" ] && [ ! -e "$ROOT/$target" ]; then
      err "$(basename "$doc"): broken link -> $link"
    fi
  done < <(grep -oE '\]\([^)]+\)' "$doc" | sed 's/^](//; s/)$//')
done

# --- 2. referenced source paths ---------------------------------------------
expand_braces() {
  # "src/a/{b,c}.{h,cc}" -> the four concrete paths; paths without braces
  # pass through. Groups expand left to right.
  local path="$1"
  if [[ "$path" == *"{"*"}"* ]]; then
    local prefix="${path%%\{*}" rest="${path#*\{}"
    local group="${rest%%\}*}" suffix="${rest#*\}}"
    local alt
    IFS=',' read -ra alts <<< "$group"
    for alt in "${alts[@]}"; do
      expand_braces "${prefix}${alt}${suffix}"
    done
  else
    echo "$path"
  fi
}

for doc in "${DOCS[@]}"; do
  while IFS= read -r ref; do
    while IFS= read -r path; do
      # Directories, files, and extension-less stems ("sinr/engine" for
      # engine.{h,cc}) all count as resolved.
      if [ ! -e "$ROOT/$path" ] && ! compgen -G "$ROOT/$path.*" > /dev/null; then
        err "$(basename "$doc"): references missing path $ref"
        break
      fi
    done < <(expand_braces "$ref")
  done < <(grep -oE '(src|tests|bench|tools|scripts)/[A-Za-z0-9_/.{,}-]*[A-Za-z0-9_}]' "$doc" | sort -u)
done

# --- 3. --help flags vs README ----------------------------------------------
if [ ! -x "$BIN" ]; then
  err "dcc_run binary not found at $BIN (build first, or pass its path)"
  exit 1
fi
BINDIR="$(dirname "$BIN")"

help_out="$("$BIN" --help)" || { err "dcc_run --help failed"; exit 1; }
list_out="$("$BIN" --list)" || { err "dcc_run --list failed"; exit 1; }

# Every CLI's advertised flags must be documented; README's flag-table
# rows ("| `--flag...`") must be advertised by at least one CLI. Prose
# also mentions cmake/ctest flags, which is why only table rows count.
all_help="$help_out"
for tool in dccd dcc_load; do
  if [ ! -x "$BINDIR/$tool" ]; then
    err "$tool binary not found next to $BIN (build first)"
    continue
  fi
  tool_help="$("$BINDIR/$tool" --help)" || { err "$tool --help failed"; continue; }
  all_help="$all_help
$tool_help"
  while IFS= read -r flag; do
    grep -qF -- "$flag" "$ROOT/README.md" ||
      err "README.md does not document $flag (advertised by $tool --help)"
  done < <(grep -oE -- '--[a-z][a-z-]*' <<< "$tool_help" | sort -u)
done

help_flags="$(grep -oE -- '--[a-z][a-z-]*' <<< "$help_out" | sort -u)"
readme_flags="$(grep -E '^\| *`--' "$ROOT/README.md" |
                grep -oE -- '--[a-z][a-z-]*' | sort -u)"

while IFS= read -r flag; do
  grep -qF -- "$flag" "$ROOT/README.md" ||
    err "README.md does not document $flag (advertised by dcc_run --help)"
done <<< "$help_flags"

while IFS= read -r flag; do
  grep -qF -- "$flag" <<< "$all_help" ||
    err "README.md documents $flag which no CLI --help advertises"
done <<< "$readme_flags"

# --- 4. --list registries vs README -----------------------------------------
models="$(sed -n '/^mobility models/,$p' <<< "$list_out" |
          grep -E '^  [a-z_]+$' | tr -d ' ')"
if [ -z "$models" ]; then
  err "dcc_run --list prints no mobility models section"
fi
while IFS= read -r model; do
  [ -z "$model" ] && continue
  grep -qE "(^|[^a-z_])${model}([^a-z_]|$)" "$ROOT/README.md" ||
    err "README.md does not mention mobility model '$model' (from --list)"
done <<< "$models"

driver_keys="$(grep -oE 'driver keys: [a-z_, ]+' <<< "$list_out" |
               head -1 | sed 's/driver keys: //; s/,/ /g')"
for key in $driver_keys; do
  grep -qF -- "$key" "$ROOT/README.md" ||
    err "README.md does not document dynamics driver key '$key'"
  grep -qF -- "$key" <<< "$help_out" ||
    err "dcc_run --help does not document dynamics driver key '$key'"
done

if [ "$fail" -ne 0 ]; then
  echo "check_docs: FAILED" >&2
  exit 1
fi
echo "check_docs: OK (${#DOCS[@]} docs, $(wc -l <<< "$help_flags") flags, $(wc -l <<< "$models") mobility models)"
