// Leader election (Theorem 5): elects exactly one node network-wide in
// O(D(Delta + log* N) log^2 N) rounds.
//
// Scheme: Clustering selects the O(1)-density center set S; binary search
// over the ID space then isolates the minimum-ID center: each probe runs
// SMSBroadcast sourced at the centers whose IDs fall in the probed range —
// every node observes "heard something" iff the range is non-empty, so all
// nodes shrink the range consistently. O(log N) probes.
#pragma once

#include <cstdint>
#include <vector>

#include "dcc/cluster/profile.h"
#include "dcc/sim/runner.h"

namespace dcc::bcast {

struct LeaderElectionResult {
  Round rounds = 0;
  NodeId leader = kNoNode;
  bool agreed = false;   // every node derived the same leader
  int probes = 0;        // SMSB executions
};

LeaderElectionResult ElectLeader(sim::Exec& ex, const cluster::Profile& prof,
                                 const std::vector<std::size_t>& members,
                                 int gamma, int max_phases,
                                 std::uint64_t nonce);

}  // namespace dcc::bcast
