// Content-addressed caches for the scenario service.
//
// A ContentCache maps a canonical content key (ScenarioSpec::CanonicalKey
// or a topology-coordinate subset of it — see service.h) to an immutable,
// shared value. Two properties carry the service's repeat-traffic story:
//
//  * Single-flight builds: concurrent requests for the same missing key
//    block on ONE build instead of racing N identical ones — this is how
//    requests sharing a topology that arrive together get batched onto
//    one generated network. Waiters count as hits (they were served by
//    someone else's work). A build that throws wakes the waiters, one of
//    which becomes the next builder; the thrower sees its own exception.
//  * LRU bounds: `capacity` ready entries at most. Eviction drops the
//    cache's reference only — values are shared_ptr<const V>, so runs
//    holding an evicted network keep it alive until they finish.
//
// Values must be immutable once published (the service caches generated
// sinr::Networks and serialized RunReport strings; both are read-only
// after construction), which is what makes a cached value safe to hand to
// any number of concurrent runs.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "dcc/common/types.h"
#include "dcc/obs/trace.h"

namespace dcc::service {

template <typename V>
class ContentCache {
 public:
  explicit ContentCache(std::size_t capacity) : capacity_(capacity) {
    DCC_REQUIRE(capacity >= 1, "cache: capacity must be >= 1");
  }

  ContentCache(const ContentCache&) = delete;
  ContentCache& operator=(const ContentCache&) = delete;

  // Returns the value for `key`, invoking `build` outside the lock when it
  // is absent. `*hit` reports whether this call was served by the cache
  // (including waiting on another caller's in-flight build).
  std::shared_ptr<const V> GetOrBuild(
      const std::string& key,
      const std::function<std::shared_ptr<const V>()>& build, bool* hit) {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      const auto it = map_.find(key);
      if (it == map_.end()) break;  // miss: become the builder below
      Entry& e = it->second;
      if (e.ready) {
        lru_.splice(lru_.begin(), lru_, e.lru_it);
        hits_.fetch_add(1, std::memory_order_relaxed);
        *hit = true;
        return e.value;
      }
      // In flight: wait for the builder, then re-check (the entry may be
      // ready, or erased if the build threw — in which case we take over).
      // Each blocked stretch is a single-flight-wait span in the trace.
      {
        DCC_TRACE_SPAN("service.cache.wait");
        ready_cv_.wait(lock);
      }
    }
    map_.emplace(key, Entry{});
    misses_.fetch_add(1, std::memory_order_relaxed);
    *hit = false;
    lock.unlock();

    std::shared_ptr<const V> value;
    try {
      value = build();
    } catch (...) {
      lock.lock();
      map_.erase(key);
      ready_cv_.notify_all();
      throw;
    }

    lock.lock();
    Entry& e = map_.at(key);  // only the builder erases a pending entry
    e.value = value;
    e.ready = true;
    lru_.push_front(key);
    e.lru_it = lru_.begin();
    if (lru_.size() > capacity_) {
      map_.erase(lru_.back());
      lru_.pop_back();
    }
    ready_cv_.notify_all();
    return value;
  }

  // Lifetime lookup counters (service stats): hits include single-flight
  // waiters; misses count builds started (successful or not).
  std::int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::int64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lru_.size();  // ready entries only
  }

 private:
  struct Entry {
    std::shared_ptr<const V> value;
    bool ready = false;
    std::list<std::string>::iterator lru_it;
  };

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_cv_;
  std::list<std::string> lru_;  // ready keys, most recently used first
  std::unordered_map<std::string, Entry> map_;
  std::atomic<std::int64_t> hits_{0};
  std::atomic<std::int64_t> misses_{0};
};

}  // namespace dcc::service
