#include "dcc/common/parse.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "dcc/common/types.h"

namespace dcc {

namespace {

[[noreturn]] void Fail(const std::string& what, const std::string& text,
                       const char* kind) {
  throw InvalidArgument(what + ": '" + text + "' is not " + kind);
}

}  // namespace

std::int64_t ParseInt64(const std::string& text, const std::string& what) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (text.empty() || end == text.c_str() || *end != '\0' || errno == ERANGE) {
    Fail(what, text, "an integer");
  }
  return v;
}

std::uint64_t ParseUint64(const std::string& text, const std::string& what) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  // strtoull wraps negative input instead of rejecting it.
  if (text.empty() || text.find('-') != std::string::npos ||
      end == text.c_str() || *end != '\0' || errno == ERANGE) {
    Fail(what, text, "an unsigned integer");
  }
  return v;
}

double ParseDouble(const std::string& text, const std::string& what) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (text.empty() || end == text.c_str() || *end != '\0') {
    Fail(what, text, "a number");
  }
  // ERANGE also covers harmless underflow-to-zero; only magnitude overflow
  // is a lie about the value.
  if (errno == ERANGE && std::abs(v) == HUGE_VAL) {
    Fail(what, text, "a representable number");
  }
  return v;
}

}  // namespace dcc
