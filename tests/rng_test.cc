#include "dcc/common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace dcc {
namespace {

TEST(SplitMix64Test, DeterministicSequence) {
  std::uint64_t s1 = 42, s2 = 42;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(SplitMix64(s1), SplitMix64(s2));
  }
}

TEST(XoshiroTest, SameSeedSameStream) {
  Xoshiro256ss a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(XoshiroTest, DifferentSeedsDiverge) {
  Xoshiro256ss a(7), b(8);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(XoshiroTest, NextDoubleInUnitInterval) {
  Xoshiro256ss rng(123);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(XoshiroTest, NextBelowRespectsBound) {
  Xoshiro256ss rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.NextBelow(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all residues hit over 1000 draws
}

TEST(XoshiroTest, RoughlyUniform) {
  Xoshiro256ss rng(2024);
  std::vector<int> buckets(8, 0);
  const int draws = 80000;
  for (int i = 0; i < draws; ++i) ++buckets[rng.NextBelow(8)];
  for (const int b : buckets) {
    EXPECT_NEAR(b, draws / 8, draws / 80);  // within 10%
  }
}

TEST(StatelessHashTest, PureFunction) {
  const StatelessHash h(99);
  EXPECT_EQ(h(1, 2, 3, 4), h(1, 2, 3, 4));
  EXPECT_NE(h(1, 2, 3, 4), h(1, 2, 3, 5));
  EXPECT_NE(h(1, 2), h(2, 1));
}

TEST(StatelessHashTest, SeedMatters) {
  const StatelessHash h1(1), h2(2);
  int same = 0;
  for (std::uint64_t i = 0; i < 64; ++i) {
    if (h1(i, 0) == h2(i, 0)) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(StatelessHashTest, CoinDensityMatchesDenominator) {
  const StatelessHash h(7);
  for (const std::uint64_t denom : {2ull, 8ull, 32ull}) {
    int hits = 0;
    const int trials = 64000;
    for (int i = 0; i < trials; ++i) {
      if (h.Coin(denom, static_cast<std::uint64_t>(i), 5)) ++hits;
    }
    const double expect = static_cast<double>(trials) / static_cast<double>(denom);
    EXPECT_NEAR(hits, expect, expect * 0.15) << "denom=" << denom;
  }
}

TEST(HashCombineTest, OrderSensitive) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

}  // namespace
}  // namespace dcc
