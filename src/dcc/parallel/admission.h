// Bounded admission of external work onto a WorkerPool.
//
// The scenario service accepts requests from arbitrarily many client
// connections, but the process has one shared pool that also runs sweeps
// and engine shards. AdmissionQueue is the valve between the two: at most
// `capacity` admitted jobs exist at once, and an admitting thread *blocks*
// when the queue is full — backpressure propagates to the socket instead
// of unbounded closures piling up in the pool's injection queue.
//
// Execute() submits the job to the pool (an idle worker picks it up; under
// full load the admitting thread runs it inline via TaskHandle::Wait — the
// pool's graceful-degradation contract) and waits for completion, so the
// caller observes the job's effects and exceptions synchronously. Nested
// parallelism composes: a job that fans out again (an engine sharding its
// rounds) publishes tickets idle workers steal.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>

#include "dcc/parallel/worker_pool.h"

namespace dcc::parallel {

class AdmissionQueue {
 public:
  // `capacity` >= 1: max jobs admitted (executing or handed to the pool)
  // at once.
  AdmissionQueue(WorkerPool& pool, int capacity);

  // Blocks until a slot frees, runs `fn` to completion on the pool, and
  // rethrows anything it threw. Returns false (without running fn) when
  // the queue is draining.
  bool Execute(const std::function<void()>& fn);

  // Rejects all future Execute calls and wakes blocked admitters; jobs
  // already admitted finish normally. Idempotent.
  void Drain();

  int capacity() const { return capacity_; }
  // Jobs currently admitted, and the lifetime peak (service stats).
  int depth() const;
  int peak_depth() const;

 private:
  WorkerPool& pool_;
  const int capacity_;

  mutable std::mutex mu_;
  std::condition_variable slot_cv_;
  int depth_ = 0;       // guarded by mu_
  int peak_depth_ = 0;  // guarded by mu_
  bool draining_ = false;
};

}  // namespace dcc::parallel
