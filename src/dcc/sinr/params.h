// SINR model parameters (paper, Section 1.1).
//
// The model is determined by: path loss alpha > 2, threshold beta > 1,
// ambient noise N > 0, transmission power P, and the connectivity parameter
// eps in (0,1) that defines the communication graph (edges at distance
// <= 1 - eps).
//
// A node u receives a message from v with transmitter set T iff v in T and
//     SINR(v,u,T) = (P / d(v,u)^alpha) / (N + sum_{w in T \ {v}} P/d(w,u)^alpha)
//                 >= beta.
// The paper normalizes the transmission range to 1, which forces P = N*beta
// (a lone transmitter at distance exactly 1 is received at equality).
#pragma once

#include <cstdint>

#include "dcc/common/types.h"

namespace dcc::sinr {

struct Params {
  double alpha = 3.0;   // path-loss exponent, > 2
  double beta = 1.5;    // SINR threshold, > 1
  double noise = 1.0;   // ambient noise N, > 0
  double eps = 0.2;     // connectivity parameter, in (0,1)

  // Transmission power. Defaults to noise*beta so the transmission range is
  // exactly 1; kept explicit so experiments can perturb it.
  double power = 1.5;

  // Upper bound N on the ID space [N]; IDs are unique in [1, id_space].
  // The paper assumes N = n^{O(1)}.
  std::int64_t id_space = 1 << 16;

  // Validates ranges and the P = N*beta coupling (within tolerance when
  // `strict_range` is set). Throws InvalidArgument on violation.
  void Validate() const;

  // Range of a lone transmitter: (P / (noise*beta))^{1/alpha}.
  double TransmissionRange() const;

  // Communication-graph radius: 1 - eps (paper, "Communication graph").
  double CommRadius() const { return TransmissionRange() - eps; }

  // Params with range normalized to 1 for a given alpha/beta/eps.
  static Params Default(double alpha = 3.0, double beta = 1.5,
                        double eps = 0.2);
};

}  // namespace dcc::sinr
