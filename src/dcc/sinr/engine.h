// The SINR round engine: given the set of transmitters in a round, computes
// which listeners successfully receive and from whom (Eq. 1 of the paper).
//
// Because beta > 1, at most one transmitter can satisfy the SINR constraint
// at a given listener, so reception resolves to "the strongest transmitter,
// if its SINR clears beta" — the engine computes exactly that.
//
// Two interference resolution strategies:
//  * kExact — brute force O(|T|) per listener. The semantic reference and
//    test oracle.
//  * kGrid — a uniform spatial index (common/spatial_grid.h) buckets the
//    round's transmitters into tiles. Near-field tiles are scanned exactly;
//    mid- and far-field tiles contribute conservative interference bounds
//    through the propagation model's distance envelope. The bounds prune
//    listeners whose best-case SINR cannot clear beta (the common case in
//    dense rounds); every listener that might receive is resolved exactly
//    by a batched far-field sweep (vectorized where the host supports it),
//    so the reception set matches kExact and reported SINR values agree to
//    >= 9 significant digits (floating-point reassociation only; at extreme
//    SINRs the agreement degrades by an additional eps * |T| * sinr factor
//    from cancellation in the interference subtraction, which affects both
//    modes equally).
// kAuto picks kExact while the network still carries its dense gain matrix
// and kGrid above that size threshold.
//
// --- Parallel sharded rounds (Options::threads) ---
// Either strategy can run one round across K shards on the process-wide
// parallel::WorkerPool. In grid mode a parallel::ShardPlan partitions the
// spatial tiles into K contiguous ranges (balanced by this round's
// listeners-per-tile histogram); each worker resolves the listeners of its
// own tiles against the full, read-only transmitter index — its near-field
// tiles plus the conservative envelope bounds of everything beyond, so the
// "halo" a shard needs from its neighbors is exactly the shared CSR slices
// of their tiles, imported by reference rather than by message. In exact
// mode shards are contiguous listener ranges. Per-listener resolution is a
// pure function of (listener, transmitter index), every worker owns its
// whole scratch, and the merge emits receptions in listener order — so the
// reception set AND every SINR bit are identical to serial execution at
// every thread count. Rounds below kMinListenersPerShard * K listeners run
// serially (the dispatch would cost more than the round).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "dcc/common/spatial_grid.h"
#include "dcc/parallel/shard_plan.h"
#include "dcc/sinr/network.h"

namespace dcc::parallel {
class WorkerPool;
}  // namespace dcc::parallel

namespace dcc::sinr {

// Result of one round for one listener.
struct Reception {
  std::size_t listener = 0;
  std::size_t sender = 0;
  double sinr = 0.0;
};

class Engine {
 public:
  enum class Mode {
    kAuto,   // kExact up to the dense-gain-matrix limit, kGrid beyond
    kExact,  // brute-force oracle
    kGrid,   // spatial-index pruning + exact fallback
  };

  struct Options {
    Mode mode = Mode::kAuto;
    // Grid tile side; 0 picks a density-based default (~64 nodes/tile).
    double cell = 0.0;
    // kAuto switches to kGrid for networks larger than this.
    std::size_t grid_threshold = Network::kGainMatrixLimit;
    // Spatial-index coverage area for dynamic networks: positions may move
    // anywhere inside this box without outgrowing the index. Defaults to
    // the bounding box of the construction-time positions (static runs).
    // Not part of the flag grammar — set programmatically (scenario
    // dynamics passes its world box).
    std::optional<Box> coverage;
    // Round-level parallelism: every round is decomposed into this many
    // shards executed on the shared parallel::WorkerPool. 1 = serial
    // (default), 0 = one shard per hardware thread, K > 1 = exactly K
    // shards regardless of the host (receptions are bit-identical to
    // serial at every setting, so K only affects speed).
    int threads = 1;
    // How grid-mode shards cut the tile range (see parallel/shard_plan.h).
    parallel::ShardPolicy shard_policy = parallel::ShardPolicy::kBalanced;

    // Options overridden from the environment (benches and dcc_run):
    //   DCC_ENGINE_MODE    = exact | grid | auto   (default auto)
    //   DCC_ENGINE_CELL    = <tile side>           (default: engine heuristic)
    //   DCC_ENGINE_THREADS = <shard count, 0=hw>   (default: 1, serial)
    // Throws InvalidArgument on any unrecognized or malformed value — a
    // typo must not silently fall back to the default strategy.
    static Options FromEnv();
  };

  explicit Engine(const Network& net) : Engine(net, Options{}) {}
  Engine(const Network& net, Options options);

  // Computes receptions for one round.
  //  * `transmitters`: indices of nodes transmitting this round.
  //  * `listeners`: indices of nodes listening (a transmitter never listens;
  //    passing it as a listener is an error).
  // Returns one entry per successful reception.
  std::vector<Reception> Step(const std::vector<std::size_t>& transmitters,
                              const std::vector<std::size_t>& listeners) const;

  // Allocation-free variant: clears `out` and appends receptions into it.
  // Reuses internal scratch buffers across rounds — a single Engine must
  // not run concurrent Steps from multiple threads (parallelism inside one
  // Step is the engine's own job, via Options::threads).
  void StepInto(std::span<const std::size_t> transmitters,
                std::span<const std::size_t> listeners,
                std::vector<Reception>& out) const;

  // SINR of transmitter `v` at listener `u` under transmitter set T.
  double Sinr(std::size_t v, std::size_t u,
              const std::vector<std::size_t>& transmitters) const;

  // Total interference power at `u` from `transmitters` (no noise term).
  double InterferenceAt(std::size_t u,
                        const std::vector<std::size_t>& transmitters) const;

  const Network& net() const { return *net_; }

  // The resolved strategy (never kAuto).
  Mode mode() const { return mode_; }
  const Options& options() const { return options_; }

  // Resolved shard count (>= 1; Options::threads with 0 resolved to the
  // shared pool's parallelism).
  int threads() const { return threads_; }

  // --- Dynamic networks: spatial-index maintenance. ---
  // The grid built at construction tracks the network's positions; after
  // the network mutates (Network::SetPositions / churn), reconcile the
  // index before the next Step. All three are O(changed points) bucket
  // updates — never a rebuild — and no-ops in exact mode.

  // Re-tiles every indexed point whose position changed tiles. Call after
  // a bulk Network::SetPositions.
  void SyncIndex();

  // Removes node i from the index (churn leave). Until re-inserted, i must
  // not appear as a transmitter or listener in grid-mode Steps.
  void IndexErase(std::size_t i);

  // Restores node i at its current network position (churn join; pair with
  // Network::SetPosition for the respawn point).
  void IndexInsert(std::size_t i);

  // Live points in the index (== net().size() minus erased nodes); 0 in
  // exact mode, where no index exists.
  std::size_t IndexSize() const { return grid_ ? grid_->point_count() : 0; }

  // Below this many listeners per shard a round is not worth dispatching:
  // it runs serially even when threads() > 1 (counted in
  // Stats::parallel_small_rounds).
  static constexpr std::size_t kMinListenersPerShard = 2;

  // Cumulative counters (diagnostics for benches).
  struct Stats {
    std::int64_t rounds = 0;
    std::int64_t transmissions = 0;
    std::int64_t receptions = 0;
    // Grid mode only: listeners rejected by interference bounds alone vs
    // listeners resolved by the exact fallback loop.
    std::int64_t grid_pruned = 0;
    std::int64_t grid_exact_fallbacks = 0;
    // Parallel engines only (threads() > 1): rounds dispatched across
    // shards vs rounds run serially because dispatching could not win
    // (under the listener grain, a tile plan with < 2 populated shards,
    // or the engine nested inside an occupied pool), and the cumulative
    // listeners resolved by each shard index — the per-shard load profile
    // the dcc.parallel.v1 report section exposes.
    std::int64_t parallel_rounds = 0;
    std::int64_t parallel_small_rounds = 0;
    std::vector<std::int64_t> shard_listeners;
  };
  const Stats& stats() const { return stats_; }
  // Counters accumulate through const Steps (they are diagnostics, not
  // logical state), so resetting them is const as well.
  void ResetStats() const { stats_ = {}; }

 private:
  // Listeners deferred to the exact fallback, with their phase-A partials.
  struct GridFallback {
    std::uint32_t tile = 0;     // listener tile (phase-B grouping key)
    std::uint32_t ordinal = 0;  // position in the listeners span
    std::size_t u = 0;
    double close_sum = 0.0;   // exact near+mid interference
    double close_best = -1.0; // strongest near/mid gain...
    std::size_t close_best_v = 0;  // ...and its transmitter
  };

  // One worker's whole mutable state for one round: the per-listener-tile
  // bound cache, the deferred-fallback queue, and the (ordinal, Reception)
  // pairs it produced. Serial rounds use scratch_[0]; a K-shard round uses
  // scratch_[0..K) with no sharing, which is what makes the fan-out
  // race-free by construction.
  struct RoundScratch {
    // Per-listener-tile round cache: shared far-field bounds plus the list
    // of close (near/mid) transmitter tiles.
    std::vector<std::uint64_t> tile_stamp;
    std::vector<double> tile_far_lo;
    std::vector<double> tile_far_ub;
    std::vector<std::uint32_t> tile_close_begin;
    std::vector<std::uint32_t> tile_close_end;
    std::vector<int> close_pool;
    std::uint64_t round_stamp = 0;
    std::vector<GridFallback> fallback;
    // Receptions tagged with their listener ordinal; sorted by ordinal at
    // the end of a range so the merge is a deterministic concatenation.
    std::vector<std::pair<std::uint32_t, Reception>> pending;
    std::vector<std::pair<std::size_t, std::size_t>> far_ranges;
    // Round-local counter deltas, folded into stats_ after the join.
    std::int64_t pruned = 0;
    std::int64_t exact_fallbacks = 0;
  };

  void StepExact(std::span<const std::size_t> transmitters,
                 std::span<const std::size_t> listeners,
                 std::vector<Reception>& out) const;
  void StepGrid(std::span<const std::size_t> transmitters,
                std::span<const std::size_t> listeners,
                std::vector<Reception>& out) const;
  // The exact per-listener inner loop, shared by kExact mode, kGrid's
  // fallback for models without a devirtualized kernel, and the
  // near-threshold recheck; returns the reception if SINR clears beta.
  std::optional<Reception> ResolveExact(
      std::size_t u, std::span<const std::size_t> transmitters) const;
  // Buckets this round's transmitters into tiles (CSR over tx_start_ /
  // tx_members_ / tx_sx_ / tx_sy_, occupied tiles ascending). Read-only
  // for the rest of the round, which is what lets shard workers share it.
  void BuildTxIndex(std::span<const std::size_t> transmitters) const;
  // Resolves listeners into s.pending, tagged with their ordinal and
  // ordinal-sorted: all of them when `all_listeners` is set (a whole
  // serial grid round), else exactly the ones named by `ordinals`
  // (ascending indices into `listeners`, possibly empty — an empty shard
  // is a no-op). The body of one shard worker.
  void StepGridRange(std::span<const std::size_t> transmitters,
                     std::span<const std::size_t> listeners,
                     bool all_listeners,
                     std::span<const std::uint32_t> ordinals,
                     RoundScratch& s) const;
  // kGrid's batched exact fallback for the pure path-loss model: resolves
  // s.fallback tile by tile, sweeping each tile group's far-field
  // transmitter ranges once per kChunk-listener chunk (kChunk is defined in
  // engine.cc; one AVX-512 register of lanes). Near-threshold SINRs are
  // re-resolved over `transmitters` with the scalar kernel so the
  // reception set is host-invariant.
  void ResolveFallbacksBlocked(std::span<const std::size_t> transmitters,
                               RoundScratch& s) const;
  // Grows scratch_ to `shards` entries with tile arrays sized for grid_.
  void EnsureScratch(int shards) const;
  // Concatenates every shard's pending receptions, restores global
  // listener order, and appends to `out` (allocation-free at steady
  // state). Folds the shards' counter deltas into stats_.
  void MergeShards(int shards, std::vector<Reception>& out) const;

  const Network* net_;
  Options options_;
  Mode mode_ = Mode::kExact;
  int threads_ = 1;                       // resolved, >= 1
  parallel::WorkerPool* pool_ = nullptr;  // set iff threads_ > 1
  mutable Stats stats_;

  // --- Grid-mode state (unused in kExact). ---
  std::optional<SpatialGrid> grid_;
  double near_radius_ = 0.0;  // exact-scan distance
  double far_start_ = 0.0;    // beyond this, tiles share per-listener-tile bounds
  // Set iff the network's model is exactly PathLossModel: the grid hot
  // loops then inline PathLossModel::GainD2 instead of dispatching through
  // the virtual GainFromDistanceSq per link.
  const PathLossModel* pure_path_loss_ = nullptr;

  // Per-round transmitter index, built serially before listener resolution
  // and read-only after (see StepInto threading note).
  mutable std::vector<char> is_tx_;
  mutable std::vector<std::size_t> tx_start_;    // CSR offsets per tile
  mutable std::vector<std::size_t> tx_fill_;     // scatter cursors
  mutable std::vector<std::size_t> tx_members_;  // transmitters by tile
  // Transmitter positions in tile (CSR) order, parallel to tx_members_.
  mutable std::vector<double> tx_sx_;
  mutable std::vector<double> tx_sy_;
  mutable std::vector<int> occupied_tx_;         // tiles with >= 1 transmitter

  // Per-worker round state; [0] doubles as the serial scratch.
  mutable std::vector<RoundScratch> scratch_;

  // Parallel-round plumbing (built serially each dispatched round).
  mutable parallel::ShardPlan plan_;
  mutable std::vector<std::uint32_t> shard_weights_;    // listeners per tile
  mutable std::vector<std::uint32_t> listener_shard_;   // shard per listener
  mutable std::vector<std::uint32_t> shard_ord_start_;  // CSR offsets
  mutable std::vector<std::uint32_t> shard_ord_fill_;
  mutable std::vector<std::uint32_t> shard_ordinals_;   // ordinals by shard
  mutable std::vector<std::pair<std::uint32_t, Reception>> merge_;
};

}  // namespace dcc::sinr
