// Engine::Options::FromEnv — strict parsing of DCC_ENGINE_MODE /
// DCC_ENGINE_CELL. Typos must reject, not silently fall back.
#include <gtest/gtest.h>

#include <cstdlib>

#include "dcc/sinr/engine.h"

namespace dcc::sinr {
namespace {

class EngineEnvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    unsetenv("DCC_ENGINE_MODE");
    unsetenv("DCC_ENGINE_CELL");
  }
};

TEST_F(EngineEnvTest, DefaultsWhenUnset) {
  const auto opts = Engine::Options::FromEnv();
  EXPECT_EQ(opts.mode, Engine::Mode::kAuto);
  EXPECT_EQ(opts.cell, 0.0);
}

TEST_F(EngineEnvTest, ParsesEveryMode) {
  setenv("DCC_ENGINE_MODE", "exact", 1);
  EXPECT_EQ(Engine::Options::FromEnv().mode, Engine::Mode::kExact);
  setenv("DCC_ENGINE_MODE", "grid", 1);
  EXPECT_EQ(Engine::Options::FromEnv().mode, Engine::Mode::kGrid);
  setenv("DCC_ENGINE_MODE", "auto", 1);
  EXPECT_EQ(Engine::Options::FromEnv().mode, Engine::Mode::kAuto);
}

TEST_F(EngineEnvTest, ParsesCell) {
  setenv("DCC_ENGINE_CELL", "2.5", 1);
  EXPECT_DOUBLE_EQ(Engine::Options::FromEnv().cell, 2.5);
}

TEST_F(EngineEnvTest, RejectsModeTypos) {
  setenv("DCC_ENGINE_MODE", "gird", 1);
  EXPECT_THROW(Engine::Options::FromEnv(), InvalidArgument);
}

TEST_F(EngineEnvTest, RejectsMalformedCell) {
  setenv("DCC_ENGINE_CELL", "2.5x", 1);
  EXPECT_THROW(Engine::Options::FromEnv(), InvalidArgument);
  setenv("DCC_ENGINE_CELL", "-1", 1);
  EXPECT_THROW(Engine::Options::FromEnv(), InvalidArgument);
}

TEST_F(EngineEnvTest, EmptyValuesMeanUnset) {
  setenv("DCC_ENGINE_MODE", "", 1);
  setenv("DCC_ENGINE_CELL", "", 1);
  const auto opts = Engine::Options::FromEnv();
  EXPECT_EQ(opts.mode, Engine::Mode::kAuto);
  EXPECT_EQ(opts.cell, 0.0);
}

}  // namespace
}  // namespace dcc::sinr
