#include "dcc/sel/wss.h"

#include <gtest/gtest.h>

#include <tuple>

#include "dcc/sel/verify.h"

namespace dcc::sel {
namespace {

TEST(WssTest, DeterministicInSeed) {
  const Wss a = Wss::WithLength(1000, 4, 500, 42);
  const Wss b = Wss::WithLength(1000, 4, 500, 42);
  for (std::int64_t i = 0; i < 500; i += 11) {
    for (std::int64_t x = 1; x <= 1000; x += 97) {
      EXPECT_EQ(a.Member(i, x), b.Member(i, x));
    }
  }
}

TEST(WssTest, MembershipDensityNearOneOverK) {
  const int k = 8;
  const Wss w = Wss::WithLength(1 << 14, k, 2000, 7);
  std::int64_t hits = 0, total = 0;
  for (std::int64_t i = 0; i < w.size(); ++i) {
    for (std::int64_t x = 1; x <= 64; ++x) {
      hits += w.Member(i, x) ? 1 : 0;
      ++total;
    }
  }
  const double density = static_cast<double>(hits) / static_cast<double>(total);
  EXPECT_NEAR(density, 1.0 / k, 0.02);
}

TEST(WssTest, TheoryLengthFormula) {
  const Wss w = Wss::Construct(1 << 16, 4, 1.0, 1);
  // c * k^2 * (k+2) * ln N = 16 * 6 * 11.09 ~ 1064
  EXPECT_GT(w.size(), 1000);
  EXPECT_LT(w.size(), 1200);
}

TEST(WssTest, WitnessedSelectionHoldsAtTheoryLength) {
  const Wss w = Wss::Construct(512, 3, 1.0, 99);
  const auto res = VerifyWssSampled(w, 400, 2024);
  EXPECT_TRUE(res.AllSatisfied())
      << res.failures << "/" << res.trials << " size=" << w.size();
}

TEST(WssTest, TooShortFailsOften) {
  // A length-20 "wss" cannot satisfy the property — the verifier must
  // notice (sanity check that the verifier has teeth).
  const Wss w = Wss::WithLength(512, 3, 20, 99);
  const auto res = VerifyWssSampled(w, 300, 2024);
  EXPECT_GT(res.failures, 0);
}

TEST(GreedyWssTest, SatisfiesPropertyExhaustively) {
  const std::int64_t N = 8;
  const int k = 2;
  const GreedyWss g = GreedyWss::Construct(N, k);
  // Exhaustive check over all (X, x, y).
  for (std::uint32_t X = 1; X < (1u << N); ++X) {
    if (__builtin_popcount(X) != k) continue;
    for (int xi = 0; xi < N; ++xi) {
      if (!((X >> xi) & 1)) continue;
      for (int yi = 0; yi < N; ++yi) {
        if ((X >> yi) & 1) continue;
        bool ok = false;
        for (std::int64_t i = 0; i < g.size() && !ok; ++i) {
          if (!g.Member(i, xi + 1) || !g.Member(i, yi + 1)) continue;
          bool alone = true;
          for (int zi = 0; zi < N; ++zi) {
            if (zi != xi && ((X >> zi) & 1) && g.Member(i, zi + 1)) {
              alone = false;
              break;
            }
          }
          ok = alone;
        }
        EXPECT_TRUE(ok) << "X=" << X << " x=" << (xi + 1) << " y=" << (yi + 1);
      }
    }
  }
}

TEST(GreedyWssTest, ReasonableSize) {
  const GreedyWss g = GreedyWss::Construct(8, 2);
  // Greedy set cover stays within O(k^3 log N)-flavor bounds for tiny N.
  EXPECT_LE(g.size(), 60);
  EXPECT_GE(g.size(), 4);
}

TEST(GreedyWssTest, RejectsBadArguments) {
  EXPECT_THROW(GreedyWss::Construct(1, 1), InvalidArgument);
  EXPECT_THROW(GreedyWss::Construct(30, 2), InvalidArgument);
  EXPECT_THROW(GreedyWss::Construct(8, 8), InvalidArgument);
}

class WssSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(WssSweepTest, LowFailureRateAtScaledLengths) {
  const auto [logN, k, c] = GetParam();
  const Wss w = Wss::Construct(1ll << logN, k, c, 1234);
  const auto res = VerifyWssSampled(w, 200, 555);
  EXPECT_LE(res.FailureRate(), 0.02)
      << "logN=" << logN << " k=" << k << " c=" << c << " size=" << w.size();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WssSweepTest,
    ::testing::Values(std::tuple{10, 2, 1.0}, std::tuple{12, 3, 1.0},
                      std::tuple{14, 4, 1.0}, std::tuple{16, 5, 1.0}));

}  // namespace
}  // namespace dcc::sel
