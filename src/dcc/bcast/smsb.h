// Sparse multiple-source broadcast (Alg. 8, Theorem 3) — the global
// broadcast algorithm when |S| = 1.
//
// Phase 0: the sources (pairwise > 1-eps apart) run one SNS; receivers wake
// and cluster under their awakener. Each later phase on the set L_i of
// nodes awakened in the previous phase:
//   Stage 1  imperfect labeling of L_i,
//   Stage 2  Delta SNS runs by label — every L_i node locally broadcasts
//            the payload; hearers wake and inherit the sender's cluster
//            (2-clustering of L_{i+1}),
//   Stage 3  RadiusReduction -> 1-clustering of L_{i+1}.
// Runs until a full phase wakes nobody new (so the last cohort still
// performs its local broadcast, satisfying condition (b) of the SMSB
// problem) or `max_phases` elapses.
#pragma once

#include <cstdint>
#include <vector>

#include "dcc/cluster/profile.h"
#include "dcc/sim/runner.h"

namespace dcc::bcast {

struct SmsbPhase {
  Round label_rounds = 0;
  Round sns_rounds = 0;
  Round rr_rounds = 0;
  std::size_t cohort = 0;       // |L_i|
  std::size_t newly_awake = 0;  // |L_{i+1}|
  int clusters = 0;             // distinct clusters among L_{i+1} after RR
};

struct SmsbResult {
  Round rounds = 0;
  int phases = 0;
  bool all_awake = false;
  std::size_t awake = 0;
  std::vector<int> awake_phase;      // by node index; -1 = never woke
  std::vector<ClusterId> cluster_of; // final clustering of awake nodes
  std::vector<SmsbPhase> phase_stats;
};

// `sources` are node indices, pairwise further than 1 - eps apart (SMSB
// precondition; checked). `gamma` is the public density bound Delta;
// `max_phases` the public diameter bound D (the loop also stops as soon as
// a phase wakes nobody).
SmsbResult SmsBroadcast(sim::Exec& ex, const cluster::Profile& prof,
                        const std::vector<std::size_t>& sources, int gamma,
                        int max_phases, std::uint64_t nonce);

}  // namespace dcc::bcast
