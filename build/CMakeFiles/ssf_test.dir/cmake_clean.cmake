file(REMOVE_RECURSE
  "CMakeFiles/ssf_test.dir/tests/ssf_test.cc.o"
  "CMakeFiles/ssf_test.dir/tests/ssf_test.cc.o.d"
  "ssf_test"
  "ssf_test.pdb"
  "ssf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
