// Sensor-field broadcast: the scenario from the paper's introduction — a
// large set of sensors scattered over a rescue-operation area, no
// infrastructure, and a command node that must disseminate an alert to
// everyone. Runs the deterministic global broadcast (Alg. 8) and renders
// the wake-up wave as an ASCII map, phase by phase.
//
//   $ ./examples/sensor_field_broadcast [blobs] [per_blob] [seed]
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "dcc/bcast/smsb.h"
#include "dcc/workload/generators.h"

namespace {

// Renders nodes as the phase digit in which they woke ('.' = field).
void RenderWave(const dcc::sinr::Network& net,
                const std::vector<int>& awake_phase) {
  using dcc::Vec2;
  std::vector<Vec2> pts = net.positions();
  const dcc::Box box = dcc::BoundingBox(pts);
  const int W = 76;
  const double w = std::max(box.hi.x - box.lo.x, 1e-9);
  const double h = std::max(box.hi.y - box.lo.y, 1e-9);
  const int H = std::max(6, static_cast<int>(W * h / w / 2.2));
  std::vector<std::string> canvas(static_cast<std::size_t>(H),
                                  std::string(static_cast<std::size_t>(W), '.'));
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const int x = static_cast<int>((pts[i].x - box.lo.x) / w * (W - 1));
    const int y = static_cast<int>((pts[i].y - box.lo.y) / h * (H - 1));
    const int ph = awake_phase[i];
    char c = '?';
    if (ph < 0) {
      c = 'x';  // never woke
    } else if (ph <= 9) {
      c = static_cast<char>('0' + ph);
    } else {
      c = '+';
    }
    canvas[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)] = c;
  }
  for (const auto& row : canvas) std::cout << "  " << row << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcc;

  const int blobs = argc > 1 ? std::atoi(argv[1]) : 6;
  const int per_blob = argc > 2 ? std::atoi(argv[2]) : 14;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 9;

  sinr::Params params = sinr::Params::Default();
  params.id_space = 1 << 12;

  // Sensor clusters along a valley: dense spots, multi-hop end to end.
  auto pts = workload::BlobChain(blobs, per_blob, 0.3, 1.2, seed);
  const sinr::Network net = workload::MakeNetwork(pts, params, seed + 1);
  if (!net.Connected()) {
    std::cerr << "field came out disconnected; try another seed\n";
    return 1;
  }
  std::cout << "sensor field: " << net.size() << " sensors, density "
            << net.Density() << ", " << net.Diameter() << " hops across\n\n";

  const auto prof = cluster::Profile::Practical(params.id_space);
  sim::Exec ex(net);
  const auto res = bcast::SmsBroadcast(ex, prof, {0}, net.Density(),
                                       net.Diameter() + 3, seed + 2);

  std::cout << "alert delivered to " << res.awake << "/" << net.size()
            << " sensors in " << res.phases << " phases, " << res.rounds
            << " rounds\n\n";
  std::cout << "wake-up wave (digit = phase a sensor first heard the alert):\n";
  RenderWave(net, res.awake_phase);

  std::cout << "\nper-phase progress:\n";
  for (std::size_t p = 0; p < res.phase_stats.size(); ++p) {
    const auto& ps = res.phase_stats[p];
    std::cout << "  phase " << (p + 1) << ": cohort " << ps.cohort
              << " woke " << ps.newly_awake << " (labeling "
              << ps.label_rounds << "r, broadcast " << ps.sns_rounds
              << "r, re-clustering " << ps.rr_rounds << "r)\n";
  }
  return res.all_awake ? 0 : 1;
}
