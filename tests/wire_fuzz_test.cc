// Property/fuzz coverage for the frame transport and the binary payload
// codec (common/wire.{h,cc}), exercised the way a hostile or flaky peer
// would: real socketpairs with adversarial 1-3 byte dribble writes, frames
// truncated mid-payload and mid-header, oversized length prefixes, EINTR
// storms against both the reading and the writing side, and payload
// buffers cut at every byte offset. The invariants: a complete frame is
// always reassembled bit-exactly, anything malformed throws WireError, and
// nothing ever crashes, hangs, or reads past a buffer.
#include <gtest/gtest.h>

#include <csignal>
#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "dcc/common/rng.h"
#include "dcc/common/wire.h"

namespace dcc::wire {
namespace {

struct SocketPair {
  int a = -1;
  int b = -1;
  SocketPair() {
    int sv[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    a = sv[0];
    b = sv[1];
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
  void CloseA() {
    ::close(a);
    a = -1;
  }
};

std::string RandomBytes(Xoshiro256ss& rng, std::size_t len) {
  std::string s(len, '\0');
  for (auto& c : s) c = static_cast<char>(rng.NextBelow(256));
  return s;
}

// The 4-byte big-endian header WriteFrame would emit.
std::string Header(std::uint32_t len) {
  std::string h(4, '\0');
  h[0] = static_cast<char>(len >> 24);
  h[1] = static_cast<char>(len >> 16);
  h[2] = static_cast<char>(len >> 8);
  h[3] = static_cast<char>(len);
  return h;
}

TEST(WireFuzz, FramesRoundTripAcrossSocketpair) {
  SocketPair sp;
  Xoshiro256ss rng(42);
  std::vector<std::string> sent;
  for (const std::size_t len : {0ul, 1ul, 2ul, 37ul, 4096ul, 100000ul}) {
    sent.push_back(RandomBytes(rng, len));
  }
  std::thread writer([&] {
    for (const std::string& p : sent) WriteFrame(sp.a, p);
  });
  std::string got;
  for (const std::string& p : sent) {
    ASSERT_TRUE(ReadFrame(sp.b, &got));
    EXPECT_EQ(got, p);
  }
  writer.join();
}

// A peer that dribbles 1-3 bytes at a time (short reads on our side) must
// still produce bit-exact frames.
TEST(WireFuzz, DribbledWritesReassemble) {
  SocketPair sp;
  Xoshiro256ss rng(7);
  const std::string payload = RandomBytes(rng, 997);
  const std::string raw = Header(static_cast<std::uint32_t>(payload.size())) +
                          payload;
  std::thread writer([&] {
    Xoshiro256ss wrng(8);
    std::size_t off = 0;
    while (off < raw.size()) {
      const std::size_t n =
          std::min(raw.size() - off, 1 + wrng.NextBelow(3));
      ASSERT_EQ(::send(sp.a, raw.data() + off, n, MSG_NOSIGNAL),
                static_cast<ssize_t>(n));
      off += n;
    }
  });
  std::string got;
  ASSERT_TRUE(ReadFrame(sp.b, &got));
  EXPECT_EQ(got, payload);
  writer.join();
}

TEST(WireFuzz, CleanEofAtFrameBoundaryReturnsFalse) {
  SocketPair sp;
  sp.CloseA();
  std::string got;
  EXPECT_FALSE(ReadFrame(sp.b, &got));
}

TEST(WireFuzz, TruncationMidHeaderThrows) {
  for (std::size_t cut = 1; cut < 4; ++cut) {
    SocketPair sp;
    const std::string h = Header(100);
    ASSERT_EQ(::send(sp.a, h.data(), cut, MSG_NOSIGNAL),
              static_cast<ssize_t>(cut));
    sp.CloseA();
    std::string got;
    EXPECT_THROW(ReadFrame(sp.b, &got), WireError) << "cut at " << cut;
  }
}

TEST(WireFuzz, TruncationMidPayloadThrows) {
  Xoshiro256ss rng(11);
  for (const std::size_t cut : {0ul, 1ul, 99ul, 255ul}) {
    SocketPair sp;
    const std::string payload = RandomBytes(rng, 256);
    const std::string raw =
        Header(static_cast<std::uint32_t>(payload.size())) +
        payload.substr(0, cut);
    ASSERT_EQ(::send(sp.a, raw.data(), raw.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(raw.size()));
    sp.CloseA();
    std::string got;
    EXPECT_THROW(ReadFrame(sp.b, &got), WireError) << "cut at " << cut;
  }
}

// A hostile length prefix must be rejected from the 4 header bytes alone —
// before any allocation, and without trying to read 4 GiB.
TEST(WireFuzz, OversizedLengthPrefixThrows) {
  for (const std::uint32_t len :
       {static_cast<std::uint32_t>(kMaxFrameBytes) + 1, 0xFFFFFFFFu}) {
    SocketPair sp;
    const std::string h = Header(len);
    ASSERT_EQ(::send(sp.a, h.data(), h.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(h.size()));
    std::string got;
    EXPECT_THROW(ReadFrame(sp.b, &got), WireError);
  }
  // Writing oversized is equally rejected (no partial frame escapes).
  SocketPair sp;
  EXPECT_THROW(WriteFrame(sp.a, std::string(kMaxFrameBytes + 1, 'x')),
               WireError);
}

// EINTR storm: a signal handler installed WITHOUT SA_RESTART makes every
// blocking read()/send() eligible to fail with EINTR; the frame layer must
// retry transparently on both sides. The writer pushes a frame well past
// the socket buffer so the writing side blocks (and gets interrupted) too.
std::atomic<int> g_sigusr1_count{0};

TEST(WireFuzz, EintrStormOnBothSidesIsTransparent) {
  struct sigaction sa = {};
  sa.sa_handler = [](int) { g_sigusr1_count.fetch_add(1); };
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately no SA_RESTART
  struct sigaction old = {};
  ASSERT_EQ(sigaction(SIGUSR1, &sa, &old), 0);

  SocketPair sp;
  Xoshiro256ss rng(13);
  const std::string payload = RandomBytes(rng, 4u << 20);  // >> socket buffer

  const pthread_t main_thread = pthread_self();
  std::atomic<bool> reader_started{false};
  std::atomic<bool> done{false};
  pthread_t reader_thread{};

  std::string got;
  std::thread reader([&] {
    reader_thread = pthread_self();
    reader_started.store(true);
    EXPECT_TRUE(ReadFrame(sp.b, &got));
  });
  while (!reader_started.load()) std::this_thread::yield();

  std::thread interrupter([&] {
    while (!done.load()) {
      pthread_kill(main_thread, SIGUSR1);    // interrupt the writer
      pthread_kill(reader_thread, SIGUSR1);  // interrupt the reader
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  WriteFrame(sp.a, payload);  // blocks past the socket buffer; EINTRs here
  reader.join();
  done.store(true);
  interrupter.join();
  ASSERT_EQ(sigaction(SIGUSR1, &old, nullptr), 0);

  EXPECT_EQ(got, payload);
  EXPECT_GT(g_sigusr1_count.load(), 0);
}

// --- Payload codec. ---

struct Op {
  int kind;  // 0=u8 1=u32 2=u64 3=f64 4=str
  std::uint64_t u = 0;
  double f = 0.0;
  std::string s;
};

std::vector<Op> RandomOps(Xoshiro256ss& rng) {
  std::vector<Op> ops;
  const std::size_t n = 1 + rng.NextBelow(20);
  for (std::size_t i = 0; i < n; ++i) {
    Op op;
    op.kind = static_cast<int>(rng.NextBelow(5));
    switch (op.kind) {
      case 0:
        op.u = rng.NextBelow(256);
        break;
      case 1:
        op.u = rng.Next() & 0xFFFFFFFFu;
        break;
      case 2:
        op.u = rng.Next();
        break;
      case 3:
        // Bit-pattern round trip must survive the values JSON cannot carry.
        switch (rng.NextBelow(5)) {
          case 0:
            op.f = std::numeric_limits<double>::quiet_NaN();
            break;
          case 1:
            op.f = std::numeric_limits<double>::infinity();
            break;
          case 2:
            op.f = -0.0;
            break;
          default:
            op.f = (rng.NextDouble() - 0.5) * 1e300;
        }
        break;
      default:
        op.s = std::string(rng.NextBelow(32), '\0');
        for (auto& c : op.s) c = static_cast<char>(rng.NextBelow(256));
        break;
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

std::string Encode(const std::vector<Op>& ops) {
  PayloadWriter w;
  for (const Op& op : ops) {
    switch (op.kind) {
      case 0:
        w.U8(static_cast<std::uint8_t>(op.u));
        break;
      case 1:
        w.U32(static_cast<std::uint32_t>(op.u));
        break;
      case 2:
        w.U64(op.u);
        break;
      case 3:
        w.F64(op.f);
        break;
      default:
        w.Str(op.s);
        break;
    }
  }
  return w.Take();
}

void DecodeAll(const std::vector<Op>& ops, PayloadReader& r,
               bool check = false) {
  for (const Op& op : ops) {
    switch (op.kind) {
      case 0: {
        const auto v = r.U8();
        if (check) EXPECT_EQ(v, static_cast<std::uint8_t>(op.u));
        break;
      }
      case 1: {
        const auto v = r.U32();
        if (check) EXPECT_EQ(v, static_cast<std::uint32_t>(op.u));
        break;
      }
      case 2: {
        const auto v = r.U64();
        if (check) EXPECT_EQ(v, op.u);
        break;
      }
      case 3: {
        const double v = r.F64();
        if (check) {
          EXPECT_EQ(std::bit_cast<std::uint64_t>(v),
                    std::bit_cast<std::uint64_t>(op.f));
        }
        break;
      }
      default: {
        const std::string v = r.Str();
        if (check) EXPECT_EQ(v, op.s);
        break;
      }
    }
  }
}

TEST(WireFuzz, PayloadCodecRoundTripsBitExactly) {
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    Xoshiro256ss rng(seed * 131);
    const auto ops = RandomOps(rng);
    const std::string buf = Encode(ops);
    PayloadReader r(buf);
    DecodeAll(ops, r, /*check=*/true);
    EXPECT_TRUE(r.AtEnd());
    r.ExpectEnd();
  }
}

// Every strict prefix of an encoded payload must throw WireError at some
// read — never complete, never read past the buffer.
TEST(WireFuzz, TruncatedPayloadsAlwaysThrow) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Xoshiro256ss rng(seed * 733);
    const auto ops = RandomOps(rng);
    const std::string buf = Encode(ops);
    for (std::size_t len = 0; len < buf.size(); ++len) {
      PayloadReader r(std::string_view(buf).substr(0, len));
      EXPECT_THROW(DecodeAll(ops, r), WireError)
          << "prefix " << len << " of " << buf.size();
    }
  }
}

TEST(WireFuzz, HostileStringLengthThrowsBeforeAllocating) {
  PayloadWriter w;
  w.U32(0xFFFFFFFFu);  // claims a 4 GiB string
  w.U8(1);
  const std::string buf = w.Take();
  PayloadReader r(buf);
  EXPECT_THROW(r.Str(), WireError);
}

TEST(WireFuzz, TrailingBytesAreAProtocolError) {
  PayloadWriter w;
  w.U32(5);
  w.U8(9);
  const std::string buf = w.Take();
  PayloadReader r(buf);
  EXPECT_EQ(r.U32(), 5u);
  EXPECT_THROW(r.ExpectEnd(), WireError);
  EXPECT_EQ(r.U8(), 9u);
  r.ExpectEnd();
}

TEST(WireFuzz, OversizedStrWriteRejected) {
  PayloadWriter w;
  // Str length-checks against kMaxFrameBytes up front; build the length
  // without building a 64 MiB string by checking the guard boundary.
  const std::string big(kMaxFrameBytes + 1, 'x');
  EXPECT_THROW(w.Str(big), WireError);
}

}  // namespace
}  // namespace dcc::wire
