// Deterministic LOCAL-model coloring and MIS for bounded-degree graphs —
// our stand-in for the Schneider–Wattenhofer MIS [34] the paper invokes
// (DESIGN.md §4.2). On constant-degree graphs the pipeline
//   Linial color reduction (log* rounds)  →  MIS from coloring
// runs in O(log* N) + O(1) LOCAL rounds, matching [34] asymptotically.
//
// Everything here is expressed as *pure per-round step functions* so that
// SINR protocols can embed them (one LOCAL round = one replay of an
// exchange schedule), plus whole-graph runners for tests and benches.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dcc/common/types.h"

namespace dcc::mis {

// An undirected graph in the LOCAL model: adjacency over indices 0..n-1.
struct LocalGraph {
  std::vector<std::vector<std::size_t>> adj;

  std::size_t size() const { return adj.size(); }
  int MaxDegree() const;
  bool IsIndependent(const std::vector<bool>& in_set) const;
  // Every node is in the set or has a neighbor in it.
  bool IsDominating(const std::vector<bool>& in_set) const;
};

// --- Linial color reduction -------------------------------------------

// Parameters of one reduction round: colors in [0, m) are viewed as
// polynomials of degree <= t over GF(q); the new color space is [0, q^2).
struct LinialRound {
  std::int64_t q = 0;  // prime
  int t = 0;           // polynomial degree bound, q > delta * t
  std::int64_t m = 0;  // incoming color space
};

// The sequence of reduction rounds from color space m0 with degree bound
// delta, iterated until q^2 stops shrinking the space. O(log* m0) entries.
std::vector<LinialRound> LinialPlan(std::int64_t m0, int delta);

// One node's reduction step: its color c in [0, m), neighbor colors (all in
// [0, m), all != c), and the round parameters. Returns the new color in
// [0, q^2).
std::int64_t LinialStep(std::int64_t c, std::span<const std::int64_t> neighbors,
                        const LinialRound& round);

// Whole-graph runner: reduces initial colors (proper, in [0, m0)) to the
// final space. Asserts the coloring stays proper after every round.
struct ColoringRun {
  std::vector<std::int64_t> colors;
  std::int64_t num_colors = 0;  // final color space bound
  int local_rounds = 0;
};
ColoringRun LinialColorReduction(const LocalGraph& g,
                                 std::vector<std::int64_t> colors,
                                 std::int64_t m0, int delta);

// Reduces a proper coloring from `num_colors` to `target` colors (target
// must be >= MaxDegree()+1): classes target..num_colors-1 recolor greedily
// one LOCAL round per class — the standard O(Delta^2) -> Delta+1 tail of
// the Linial pipeline (Barenboim-Elkin Ch. 3).
ColoringRun ReduceColors(const LocalGraph& g, std::vector<std::int64_t> colors,
                         std::int64_t num_colors, std::int64_t target);

// --- MIS from a proper coloring ----------------------------------------
// Processes color classes 0..K-1 in order: an undecided node whose color
// equals the current class joins the MIS unless a neighbor already joined;
// neighbors of MIS nodes become dominated. K LOCAL rounds.
struct MisRun {
  std::vector<bool> in_mis;
  int local_rounds = 0;
};
MisRun MisFromColoring(const LocalGraph& g,
                       const std::vector<std::int64_t>& colors,
                       std::int64_t num_colors);

// Full pipeline: Linial reduction from the ID space, then MIS by colors.
MisRun LinialMis(const LocalGraph& g, const std::vector<std::int64_t>& ids,
                 std::int64_t id_space);

}  // namespace dcc::mis
