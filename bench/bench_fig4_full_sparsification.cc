// Figure 4 — full sparsification (Alg. 4): the level-by-level trajectory.
//
// The paper's figure shows two successive Sparsification rounds carving
// the parent forest. We regenerate it as the per-level density trajectory,
// which Lemma 10 bounds by Gamma * (3/4)^i, plus forest sanity (every
// retired node linked, roots = final level).
#include <cmath>

#include "bench_common.h"
#include "dcc/cluster/full_sparsify.h"

namespace dcc {
namespace {

void Run() {
  bench::Banner("Figure 4: full sparsification trajectory",
                "Jurdzinski et al., PODC'18, Fig. 4 + Lemma 10",
                "per-level max cluster size under Gamma*(3/4)^i (+O(1) floor); "
                "every retired node linked to a same-cluster parent");

  sinr::Params params = sinr::Params::Default();
  params.id_space = 1 << 12;
  const auto prof = cluster::Profile::Practical(params.id_space);

  // One dense cluster per clump.
  std::vector<Vec2> pts;
  const int per = 32, clumps = 3;
  for (int c = 0; c < clumps; ++c) {
    for (int i = 0; i < per; ++i) {
      pts.push_back({c * 2.5 + 0.05 * (i % 8), 0.05 * (i / 8)});
    }
  }
  const auto net = workload::MakeNetwork(pts, params, 13);
  const auto all = bench::AllIndices(net);
  std::vector<ClusterId> cl(net.size());
  for (std::size_t i = 0; i < net.size(); ++i) cl[i] = net.id((i / per) * per);

  sim::Exec ex(net, bench::EngineOptionsFromEnv());
  const auto full = cluster::FullSparsify(ex, prof, all, cl, per, 1);

  Table t({"level", "size", "max-cluster", "bound=G*(3/4)^i"});
  for (std::size_t lev = 0; lev < full.levels.size(); ++lev) {
    const double bound = per * std::pow(0.75, static_cast<double>(lev));
    t.AddRow({Table::Num(static_cast<std::int64_t>(lev)),
              Table::Num(static_cast<std::int64_t>(full.levels[lev].size())),
              Table::Num(std::int64_t{
                  cluster::MaxClusterSize(net, full.levels[lev], cl)}),
              Table::Num(bound)});
  }
  t.Print(std::cout);

  // Forest sanity.
  std::size_t linked = full.links.size();
  const std::size_t retired = all.size() - full.final_set().size();
  std::cout << "\nretired nodes: " << retired << ", linked: " << linked
            << " (must match), stages recorded: " << full.stages.size()
            << ", rounds: " << full.rounds << "\n";
}

}  // namespace
}  // namespace dcc

int main() {
  dcc::Run();
  return 0;
}
