// Figures 5-6 + Theorem 6 (Omega(Delta) part) — the gadget lower bound.
//
// The adversary (Lemma 13) picks IDs for the gadget core so that the
// target t stays deaf. We attack the density-aware selector schedule
// (k = Delta — the shape every efficient deterministic algorithm uses) and
// measure, per Delta: the adversary's certified blocking round and the
// simulated first delivery to t, against a friendly (random-ID) control.
//
// Expected shape: adversarial delivery grows ~linearly in Delta (the
// Omega(Delta) bound); the friendly control stays near the selector's
// isolation time (~k rounds), showing the adversary — not the schedule —
// is what binds.
#include <numeric>

#include "bench_common.h"
#include "dcc/lowerbound/adversary.h"
#include "dcc/lowerbound/gadget.h"
#include "dcc/sinr/engine.h"

namespace dcc {
namespace {

// First round at which t hears anything when the core follows `trace`.
Round FirstDelivery(const lowerbound::Gadget& g, const sinr::Network& net,
                    const lowerbound::ObliviousTrace& trace, Round horizon) {
  const sinr::Engine eng(net);
  for (Round r = 0; r < horizon; ++r) {
    std::vector<std::size_t> tx;
    for (const std::size_t c : g.core) {
      if (trace(net.id(c), r)) tx.push_back(c);
    }
    if (tx.empty()) continue;
    if (!eng.Step(tx, {g.t}).empty()) return r;
  }
  return horizon;
}

void Run() {
  bench::Banner(
      "Figures 5-6: gadget lower bound (Omega(Delta))",
      "Jurdzinski et al., PODC'18, Figs. 5-6, Lemma 13",
      "adversarial delivery to t grows ~linearly in Delta; friendly control "
      "stays ~flat");

  const sinr::Params params = [] {
    auto p = lowerbound::GadgetParams(3.0, 0.1, 2.0);
    p.id_space = 1 << 12;
    return p;
  }();
  const Round horizon = 1 << 15;

  // Averaged over selector seeds: single-instance delivery times have
  // exponential-in-M/k tails, so per-point noise is large; the averaged
  // curve exposes the Omega(Delta) floor.
  const std::vector<std::uint64_t> seeds{2024, 7, 99, 1234, 5555};
  Table t({"Delta", "avg-blocked(cert)", "avg-delivery(adversarial)",
           "avg-delivery(friendly)", "adv/Delta"});
  for (const int delta : {8, 12, 16, 24, 32}) {
    const auto g = lowerbound::MakeGadget(delta, params, 2.0);
    double sum_cert = 0, sum_adv = 0, sum_fr = 0;
    for (const std::uint64_t seed : seeds) {
      const auto trace =
          lowerbound::SelectorTrace(params.id_space, delta, seed);

      // Adversarial ids.
      std::vector<NodeId> pool(static_cast<std::size_t>(delta) + 2);
      std::iota(pool.begin(), pool.end(), NodeId{100});
      const auto asg =
          lowerbound::AssignAdversarialIds(trace, pool, delta, horizon);
      std::vector<NodeId> ids(g.positions.size());
      ids[g.s] = 1;
      ids[g.t] = 2;
      for (std::size_t i = 0; i < g.core.size(); ++i) {
        ids[g.core[i]] = asg.core_ids[i];
      }
      const sinr::Network adv_net(g.positions, ids, params);
      sum_adv += static_cast<double>(FirstDelivery(g, adv_net, trace, horizon));
      sum_cert += static_cast<double>(asg.blocked_until);

      // Friendly control: same pool, natural order.
      std::vector<NodeId> fids(g.positions.size());
      fids[g.s] = 1;
      fids[g.t] = 2;
      for (std::size_t i = 0; i < g.core.size(); ++i) {
        fids[g.core[i]] = pool[i];
      }
      const sinr::Network fr_net(g.positions, fids, params);
      sum_fr += static_cast<double>(FirstDelivery(g, fr_net, trace, horizon));
    }
    const double k = static_cast<double>(seeds.size());
    t.AddRow({Table::Num(std::int64_t{delta}), Table::Num(sum_cert / k),
              Table::Num(sum_adv / k), Table::Num(sum_fr / k),
              Table::Num(sum_adv / k / delta)});
  }
  t.Print(std::cout);
  std::cout << "\nSINR params for the gadget family: alpha=" << params.alpha
            << " beta=" << params.beta << " eps=" << params.eps
            << " (beta > (q/(q-1))^alpha so Fact 2 blocks)\n";
}

}  // namespace
}  // namespace dcc

int main() {
  dcc::Run();
  return 0;
}
