#include "dcc/baselines/decay_global.h"

#include <algorithm>
#include <cmath>

#include "dcc/common/rng.h"

namespace dcc::baselines {

namespace {
constexpr std::int32_t kBroadcastMsg = 311;
}  // namespace

DecayGlobalResult DecayGlobalBroadcast(sim::Exec& ex, std::size_t source,
                                       int delta, Round budget,
                                       std::uint64_t seed) {
  const sinr::Network& net = ex.net();
  DCC_REQUIRE(source < net.size(), "DecayGlobalBroadcast: bad source");
  DecayGlobalResult res;
  res.awake_at.assign(net.size(), Round{-1});
  res.awake_at[source] = 0;

  const int K = std::max(2, static_cast<int>(std::ceil(std::log2(
                                std::max(delta, 2)))) + 2);
  Xoshiro256ss rng(seed);
  std::vector<std::size_t> awake{source};
  std::vector<char> is_awake(net.size(), 0);
  is_awake[source] = 1;

  const Round start = ex.rounds();
  for (Round t = 0; t < budget; ++t) {
    // Decay step: probability 2^{-(1 + t mod K)}.
    const double p = std::pow(2.0, -(1.0 + static_cast<double>(t % K)));
    std::vector<std::size_t> newly;
    ex.RunRound(
        awake,
        [&](std::size_t) -> std::optional<sim::Message> {
          if (rng.NextDouble() >= p) return std::nullopt;
          sim::Message m;
          m.kind = kBroadcastMsg;
          return m;
        },
        [&](std::size_t listener, const sim::Message& m) {
          if (m.kind != kBroadcastMsg || is_awake[listener]) return;
          is_awake[listener] = 1;
          res.awake_at[listener] = ex.rounds() - start;
          newly.push_back(listener);
        });
    awake.insert(awake.end(), newly.begin(), newly.end());
    if (awake.size() == net.size()) break;
  }

  res.awake = awake.size();
  res.all_awake = res.awake == net.size();
  res.rounds = ex.rounds() - start;
  return res;
}

}  // namespace dcc::baselines
