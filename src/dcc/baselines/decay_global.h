// Randomized global-broadcast baseline for Table 2 (Decay-style, after
// Bar-Yehuda et al. adapted to SINR — the regime of [10]/[25]'s
// O(D log^2 n) randomized algorithms): awake message-holders cycle through
// exponentially decaying transmission probabilities 1/2, 1/4, ..., 1/2^K
// with K = ceil(log2 Delta) + 2; sleepers wake on first reception.
#pragma once

#include <cstdint>
#include <vector>

#include "dcc/sim/runner.h"

namespace dcc::baselines {

struct DecayGlobalResult {
  Round rounds = 0;          // until all awake (or budget exhausted)
  bool all_awake = false;
  std::size_t awake = 0;
  std::vector<Round> awake_at;  // by node index, -1 = never
};

DecayGlobalResult DecayGlobalBroadcast(sim::Exec& ex, std::size_t source,
                                       int delta, Round budget,
                                       std::uint64_t seed);

}  // namespace dcc::baselines
