# Empty dependencies file for sns_test.
# This may be replaced when dependencies are built.
