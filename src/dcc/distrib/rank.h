// Rank side of the distributed round execution mode: the process body
// behind tools/dcc_rank. A rank rebuilds a deterministic replica of the
// coordinator's network from the Hello frame's spec line + seed, keeps it
// current from Positions frames, and answers Round frames by resolving its
// owned listener ordinals with the exact serial grid kernel
// (Engine::StepOrdinalsInto) — after verifying the shipped halo slices
// against its own replica bitwise, so the two address spaces can never
// silently diverge.
#pragma once

namespace dcc::distrib {

// Serves frames on `fd` until a Shutdown frame (returns 0) or a failure
// (best-effort Error frame to the coordinator, returns nonzero). EOF on
// the stream — the coordinator vanished — returns nonzero without output.
int RunRank(int fd);

}  // namespace dcc::distrib
