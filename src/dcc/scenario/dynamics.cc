#include "dcc/scenario/dynamics.h"

#include <algorithm>
#include <exception>
#include <memory>
#include <utility>
#include <vector>

#include "dcc/cluster/clustering.h"
#include "dcc/cluster/validate.h"
#include "dcc/common/rng.h"
#include "dcc/distrib/session.h"
#include "dcc/mobility/churn.h"
#include "dcc/mobility/models.h"
#include "dcc/workload/generators.h"

namespace dcc::scenario {

namespace {

// Salts separating the mobility and churn streams from every other use of
// the run seed (topology = seed, ids = seed+1, nonce = seed+2, faults have
// their own salt in scenario.cc).
constexpr std::uint64_t kMobilitySalt = 0x4D4F42494Cull;  // "MOBIL"
constexpr std::uint64_t kChurnSalt = 0x434855524Eull;     // "CHURN"

MobilityRegistry& BuildMobilityModels() {
  static MobilityRegistry reg("mobility model");
  reg.Register(
      "waypoint",
      [](const ParamMap& p, const Box& world, std::uint64_t seed) {
        mobility::RandomWaypoint::Config cfg;
        cfg.world = world;
        cfg.vmax = p.GetDouble("speed", 1.0);
        cfg.vmin = p.GetDouble("vmin", std::min(0.1, cfg.vmax));
        cfg.pause = p.GetDouble("pause", 0.0);
        return std::unique_ptr<mobility::MobilityModel>(
            new mobility::RandomWaypoint(cfg, seed));
      },
      "speed=1,vmin=0.1,pause=0 — random waypoint: walk to a uniform "
      "target, pause, re-target");
  reg.Register(
      "walk",
      [](const ParamMap& p, const Box& world, std::uint64_t seed) {
        mobility::GaussMarkov::Config cfg;
        cfg.world = world;
        cfg.mean_speed = p.GetDouble("speed", 0.5);
        cfg.sigma = p.GetDouble("sigma", 0.5 * cfg.mean_speed);
        cfg.memory = p.GetDouble("memory", 0.75);
        return std::unique_ptr<mobility::MobilityModel>(
            new mobility::GaussMarkov(cfg, seed));
      },
      "speed=0.5,sigma=0.25,memory=0.75 — Gauss-Markov random walk "
      "(memory=0: memoryless), reflecting walls");
  reg.Register(
      "group",
      [](const ParamMap& p, const Box& world, std::uint64_t seed) {
        mobility::ReferencePointGroup::Config cfg;
        cfg.world = world;
        cfg.group_size = static_cast<int>(p.GetInt("group", 8));
        cfg.vmax = p.GetDouble("speed", 1.0);
        cfg.vmin = p.GetDouble("vmin", std::min(0.1, cfg.vmax));
        cfg.pause = p.GetDouble("pause", 0.0);
        cfg.radius = p.GetDouble("radius", 1.0);
        return std::unique_ptr<mobility::MobilityModel>(
            new mobility::ReferencePointGroup(cfg, seed));
      },
      "group=8,speed=1,vmin=0.1,pause=0,radius=1 — reference-point group "
      "mobility (RPGM): waypoint groups, members jitter in a disc");
  return reg;
}

}  // namespace

MobilityRegistry& MobilityModels() {
  static MobilityRegistry& reg = BuildMobilityModels();
  return reg;
}

bool IsDynamic(const ScenarioSpec& spec) { return !spec.dynamics.empty(); }

RunReport RunDynamicScenario(const ScenarioSpec& spec, std::uint64_t seed) {
  RunReport rep;
  rep.topology = spec.topology;
  rep.algo = spec.algo;
  rep.seed = seed;
  // Outside the try: a rank failure mid-epoch still reports the distributed
  // accounting gathered so far (see scenario.cc).
  std::unique_ptr<distrib::Session> session;
  try {
    spec.sinr.Validate();
    DCC_REQUIRE(spec.algo == "clustering",
                "dynamics: only algo 'clustering' is supported (stability "
                "metrics are defined on clusterings); got '" + spec.algo +
                    "'");
    DCC_REQUIRE(spec.faults == 0,
                "dynamics: fault injection is not supported in dynamic runs");
    spec.algo_params.CheckAllConsumed("algorithm 'clustering' (dynamics)");

    // Local copies: consumption marks are per-run state and the same spec
    // may be running on several sweep threads.
    ParamMap topo_params = spec.topology_params;
    ParamMap dyn = spec.dynamics;

    const TopologyFn& topo = Topologies().Get(spec.topology);
    auto pts = topo(topo_params, spec.sinr, seed);
    topo_params.CheckAllConsumed("topology '" + spec.topology + "'");

    const std::string model_name = dyn.GetString("model", "waypoint");
    const auto epochs = static_cast<int>(dyn.GetInt("epochs", 8));
    const double epoch_len = dyn.GetDouble("epoch_len", 1.0);
    const double churn_rate = dyn.GetDouble("churn", 0.0);
    const double join_rate = dyn.GetDouble("join", churn_rate);
    const double side = dyn.GetDouble("side", 0.0);
    DCC_REQUIRE(epochs >= 1, "dynamics: epochs must be >= 1");
    DCC_REQUIRE(epoch_len > 0.0, "dynamics: epoch_len must be > 0");
    DCC_REQUIRE(side >= 0.0, "dynamics: side must be >= 0");

    const Box world = side > 0.0 ? Box{{0.0, 0.0}, {side, side}}
                                 : BoundingBox(pts);
    for (const Vec2 p : pts) {
      DCC_REQUIRE(p.x >= world.lo.x && p.x <= world.hi.x &&
                      p.y >= world.lo.y && p.y <= world.hi.y,
                  "dynamics: generated topology exceeds the world box "
                  "(side too small for the topology parameters)");
    }

    const MobilityFactory& factory = MobilityModels().Get(model_name);
    auto model = factory(dyn, world, HashCombine(seed, kMobilitySalt));
    dyn.CheckAllConsumed("dynamics (model '" + model_name + "')");

    sinr::Network net =
        workload::MakeNetwork(std::move(pts), spec.sinr,
                              spec.id_seed.value_or(seed + 1), spec.shadowing);
    sinr::Engine::Options engine_opts = spec.engine;
    engine_opts.coverage = world;
    if (spec.ranks >= 1) {
      session = std::make_unique<distrib::Session>(
          spec, seed, distrib::Session::Options{spec.ranks, ""});
      engine_opts.delegate = session.get();
    }
    sim::Exec ex(net, engine_opts);
    if (spec.ranks >= 1 && ex.engine().mode() != sinr::Engine::Mode::kGrid) {
      throw InvalidArgument(
          "--ranks: distributed execution requires the grid engine "
          "(pass --engine=grid)");
    }

    mobility::ChurnProcess churn(churn_rate, join_rate,
                                 HashCombine(seed, kChurnSalt));
    mobility::ChurnProcess::Delta delta;

    const std::size_t n = net.size();
    std::vector<Vec2> pos = net.positions();
    std::vector<char> active(n, 1);
    std::vector<char> prev_active(n, 0);
    std::vector<ClusterId> prev_cluster(n, kNoCluster);
    std::vector<std::size_t> members;
    members.reserve(n);

    model->Init(pos);
    // Off nodes must not listen (and, erased from the spatial index, must
    // not reach the engine at all).
    ex.SetActivityMask(active);
    const auto prof = cluster::Profile::Practical(spec.sinr.id_space);
    const std::uint64_t nonce = spec.nonce.value_or(seed + 2);

    rep.dynamic.model = model_name;
    rep.dynamic.epoch_len = epoch_len;
    rep.ok = true;
    double survival_sum = 0.0;
    int survival_epochs = 0;
    std::int64_t joined_total = 0, left_total = 0;

    for (int e = 0; e < epochs; ++e) {
      if (e > 0) {
        model->Step(epoch_len, pos, active);
        churn.Step(epoch_len, active, delta);
        for (const std::size_t i : delta.joined) pos[i] = model->Respawn(i);
        net.SetPositions(pos);
        ex.engine().SyncIndex();
        for (const std::size_t i : delta.left) ex.engine().IndexErase(i);
        for (const std::size_t i : delta.joined) ex.engine().IndexInsert(i);
      }

      members.clear();
      for (std::size_t i = 0; i < n; ++i) {
        if (active[i]) members.push_back(i);
      }
      const int gamma = cluster::SubsetDensity(net, members);
      const Round rounds_before = ex.rounds();
      const auto res = cluster::BuildClustering(ex, prof, members, gamma,
                                                HashCombine(nonce, e));
      const auto chk = cluster::CheckClustering(net, members, res.cluster_of);
      const bool epoch_ok =
          chk.ValidRClustering(1.0, spec.sinr.eps) && res.unassigned == 0;
      rep.ok = rep.ok && epoch_ok;

      stats::Recorder em;
      em.Set("epoch", e);
      em.Set("ok", epoch_ok ? 1 : 0);
      em.Set("members", static_cast<double>(members.size()));
      em.Set("gamma", gamma);
      em.Set("rounds", static_cast<double>(ex.rounds() - rounds_before));
      em.Set("levels", res.levels);
      em.Set("unassigned", static_cast<double>(res.unassigned));
      em.Set("clusters", chk.num_clusters);
      em.Set("max_radius", chk.max_radius);
      em.Set("min_center_sep", chk.min_center_sep);
      if (e > 0) {
        em.Set("joined", static_cast<double>(delta.joined.size()));
        em.Set("left", static_cast<double>(delta.left.size()));
        joined_total += static_cast<std::int64_t>(delta.joined.size());
        left_total += static_cast<std::int64_t>(delta.left.size());
        // Label survival: of the nodes clustered in both epochs, the
        // fraction that kept their cluster label across the epoch.
        std::size_t eligible = 0, survived = 0;
        for (const std::size_t i : members) {
          if (!prev_active[i] || prev_cluster[i] == kNoCluster) continue;
          ++eligible;
          if (res.cluster_of[i] == prev_cluster[i]) ++survived;
        }
        const double survival =
            eligible == 0 ? 1.0
                          : static_cast<double>(survived) /
                                static_cast<double>(eligible);
        em.Set("survival", survival);
        survival_sum += survival;
        ++survival_epochs;
      }
      rep.dynamic.epochs.push_back(std::move(em));

      prev_active = active;
      prev_cluster = res.cluster_of;
      prev_cluster.resize(n, kNoCluster);
    }

    rep.metrics.Set("n", static_cast<double>(n));
    rep.metrics.Set("members", static_cast<double>(members.size()));
    rep.metrics.Set("epochs", epochs);
    rep.metrics.Set("rounds_total", static_cast<double>(ex.rounds()));
    if (survival_epochs > 0) {
      rep.metrics.Set("survival_mean",
                      survival_sum / static_cast<double>(survival_epochs));
    }
    if (churn_rate > 0.0 || join_rate > 0.0) {
      rep.metrics.Set("joined_total", static_cast<double>(joined_total));
      rep.metrics.Set("left_total", static_cast<double>(left_total));
    }
    // The Exec (and its engine's shard pool and scratch) persisted across
    // every epoch; the section aggregates all of them.
    FillParallelSection(rep, ex.engine());
  } catch (const std::exception& e) {
    rep.ok = false;
    rep.error = e.what();
  }
  if (session) FillDistribSection(rep, *session);
  return rep;
}

}  // namespace dcc::scenario
