// Grid-indexed Engine::Step must reproduce the exact-mode oracle: same
// receptions (listener, sender) with the same SINR values, on randomized
// networks with and without shadowing, across transmitter densities and
// forced tile sizes. Also pins down that Engine::Stats counters survived
// the layered-engine refactor.
#include "dcc/sinr/engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "dcc/sinr/propagation.h"
#include "dcc/workload/generators.h"

namespace dcc::sinr {
namespace {

struct Scenario {
  int n;
  double side;
  double shadowing_spread;
  int tx_period;  // every tx_period-th node transmits
  double cell;    // grid tile size; 0 = auto
};

void SplitTxListeners(std::size_t n, int period,
                      std::vector<std::size_t>& tx,
                      std::vector<std::size_t>& listeners) {
  tx.clear();
  listeners.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (i % static_cast<std::size_t>(period) == 0) {
      tx.push_back(i);
    } else {
      listeners.push_back(i);
    }
  }
}

void ExpectSameReceptions(const std::vector<Reception>& exact,
                          const std::vector<Reception>& grid,
                          std::size_t n_tx, const std::string& label) {
  ASSERT_EQ(exact.size(), grid.size()) << label;
  for (std::size_t k = 0; k < exact.size(); ++k) {
    EXPECT_EQ(exact[k].listener, grid[k].listener) << label << " k=" << k;
    EXPECT_EQ(exact[k].sender, grid[k].sender) << label << " k=" << k;
    // Grid mode's devirtualized gain kernel may reassociate floating-point
    // operations: SINR values agree to >= 9 significant digits, except that
    // at extreme SINRs the `total - best` interference subtraction
    // amplifies summation-order noise by ~sinr (in both modes), hence the
    // eps * |T| * sinr cancellation term.
    const double s = exact[k].sinr;
    const double tol =
        s * (1e-9 + std::numeric_limits<double>::epsilon() *
                        static_cast<double>(n_tx) * s);
    EXPECT_NEAR(s, grid[k].sinr, tol) << label << " k=" << k;
  }
}

class EngineEquivalence : public ::testing::TestWithParam<Scenario> {};

TEST_P(EngineEquivalence, GridReproducesExactReceptions) {
  const Scenario sc = GetParam();
  Params params = Params::Default();
  params.id_space = 1 << 16;
  auto pts = workload::UniformSquare(sc.n, sc.side, /*seed=*/17 + sc.n);
  std::vector<NodeId> ids(pts.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<NodeId>(2 * i + 3);  // non-sequential ids
  }
  const Network net(pts, ids, params,
                    Shadowing{sc.shadowing_spread, /*seed=*/99});

  const Engine exact(net, {.mode = Engine::Mode::kExact});
  const Engine grid(net, {.mode = Engine::Mode::kGrid, .cell = sc.cell});
  ASSERT_EQ(exact.mode(), Engine::Mode::kExact);
  ASSERT_EQ(grid.mode(), Engine::Mode::kGrid);

  std::vector<std::size_t> tx, listeners;
  SplitTxListeners(net.size(), sc.tx_period, tx, listeners);
  const auto label = ::testing::PrintToString(sc.n) + "/" +
                     ::testing::PrintToString(sc.tx_period);
  ExpectSameReceptions(exact.Step(tx, listeners), grid.Step(tx, listeners),
                       tx.size(), label);

  // And on a second, sparser round with the same engines (scratch reuse).
  SplitTxListeners(net.size(), 4 * sc.tx_period, tx, listeners);
  ExpectSameReceptions(exact.Step(tx, listeners), grid.Step(tx, listeners),
                       tx.size(), label + " round2");
}

INSTANTIATE_TEST_SUITE_P(
    RandomNetworks, EngineEquivalence,
    ::testing::Values(
        // No shadowing, dense and sparse transmitter sets, auto tile size.
        Scenario{200, 14.0, 0.0, 2, 0.0}, Scenario{200, 14.0, 0.0, 16, 0.0},
        // Forced tiny tiles exercise multi-tile classification at small n.
        Scenario{150, 12.0, 0.0, 4, 1.0},
        // Shadowed gains widen the envelope bounds; both densities.
        Scenario{200, 14.0, 0.5, 2, 0.0}, Scenario{200, 14.0, 0.25, 8, 1.5},
        // Dense network (clustered interference) and a sparse one.
        Scenario{300, 8.0, 0.0, 4, 0.0}, Scenario{100, 40.0, 0.0, 4, 2.0}));

TEST(EngineEquivalenceTest, LargeNetworkBeyondGainMatrix) {
  // Above Network::kGainMatrixLimit gains are computed on the fly and
  // kAuto resolves to kGrid; compare against the forced-exact oracle.
  Params params = Params::Default();
  params.id_space = 1 << 16;
  auto pts = workload::UniformSquare(2500, 50.0, 7);
  const Network net = Network::WithSequentialIds(std::move(pts), params);
  ASSERT_GT(net.size(), Network::kGainMatrixLimit);

  const Engine exact(net, {.mode = Engine::Mode::kExact});
  const Engine automatic(net);  // defaults: kAuto
  ASSERT_EQ(automatic.mode(), Engine::Mode::kGrid);

  std::vector<std::size_t> tx, listeners;
  SplitTxListeners(net.size(), 8, tx, listeners);
  ExpectSameReceptions(exact.Step(tx, listeners),
                       automatic.Step(tx, listeners), tx.size(), "large");
}

TEST(EngineEquivalenceTest, TheoryModelEquivalence) {
  // The truncated theory-mode propagation has a discontinuous envelope;
  // grid pruning must stay sound across the cutoff.
  Params params = Params::Default();
  auto pts = workload::UniformSquare(200, 14.0, 23);
  std::vector<NodeId> ids(pts.size());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<NodeId>(i + 1);
  const Network net(pts, ids, params,
                    std::make_shared<TheoryModel>(params, /*cutoff=*/4.0));

  const Engine exact(net, {.mode = Engine::Mode::kExact});
  const Engine grid(net, {.mode = Engine::Mode::kGrid, .cell = 1.0});
  std::vector<std::size_t> tx, listeners;
  SplitTxListeners(net.size(), 4, tx, listeners);
  ExpectSameReceptions(exact.Step(tx, listeners), grid.Step(tx, listeners),
                       tx.size(), "theory");
}

TEST(EngineEquivalenceTest, StepIntoMatchesStepAndReusesBuffer) {
  Params params = Params::Default();
  auto pts = workload::UniformSquare(120, 9.0, 31);
  const Network net = Network::WithSequentialIds(std::move(pts), params);
  const Engine eng(net, {.mode = Engine::Mode::kGrid});

  std::vector<std::size_t> tx, listeners;
  SplitTxListeners(net.size(), 3, tx, listeners);
  const auto from_step = eng.Step(tx, listeners);

  std::vector<Reception> out;
  out.reserve(net.size());
  const auto* data_before = out.data();
  eng.StepInto(tx, listeners, out);
  ASSERT_EQ(out.size(), from_step.size());
  for (std::size_t k = 0; k < out.size(); ++k) {
    EXPECT_EQ(out[k].listener, from_step[k].listener);
    EXPECT_EQ(out[k].sender, from_step[k].sender);
  }
  // A second call must reuse the buffer, not reallocate.
  eng.StepInto(tx, listeners, out);
  EXPECT_EQ(out.data(), data_before);
}

TEST(EngineEquivalenceTest, StatsCountersSurviveRefactor) {
  // Regression: the refactored engine keeps the legacy counter semantics —
  // rounds counts Step calls (even empty ones), transmissions sums |T|,
  // receptions sums successful deliveries — in both modes.
  Params params = Params::Default();
  auto pts = workload::UniformSquare(150, 10.0, 41);
  const Network net = Network::WithSequentialIds(std::move(pts), params);

  for (const auto mode : {Engine::Mode::kExact, Engine::Mode::kGrid}) {
    Engine eng(net, {.mode = mode});
    std::vector<std::size_t> tx, listeners;
    SplitTxListeners(net.size(), 10, tx, listeners);
    const auto recs1 = eng.Step(tx, listeners);
    const auto recs2 = eng.Step({0}, {1, 2, 3});
    eng.Step({}, {});  // counted as a round, no transmissions
    EXPECT_EQ(eng.stats().rounds, 3);
    EXPECT_EQ(eng.stats().transmissions,
              static_cast<std::int64_t>(tx.size()) + 1);
    EXPECT_EQ(eng.stats().receptions,
              static_cast<std::int64_t>(recs1.size() + recs2.size()));
    eng.ResetStats();
    EXPECT_EQ(eng.stats().rounds, 0);
    EXPECT_EQ(eng.stats().transmissions, 0);
    EXPECT_EQ(eng.stats().receptions, 0);
  }

  // Grid mode accounts every listener as either pruned or exact-resolved.
  Engine grid(net, {.mode = Engine::Mode::kGrid});
  std::vector<std::size_t> tx, listeners;
  SplitTxListeners(net.size(), 5, tx, listeners);
  grid.Step(tx, listeners);
  EXPECT_EQ(grid.stats().grid_pruned + grid.stats().grid_exact_fallbacks,
            static_cast<std::int64_t>(listeners.size()));
}

TEST(EngineEquivalenceTest, ExactModeHasIdenticalLegacyBehavior) {
  // The deterministic boundary case from engine_test must hold in grid mode
  // too: a lone transmitter is received at distance exactly 1 (SINR == beta)
  // and not at 1.01.
  std::vector<Vec2> pts{{0, 0}, {0.5, 0}, {1.0, 0}, {1.01, 0}};
  const Network net = Network::WithSequentialIds(pts, Params::Default());
  const Engine grid(net, {.mode = Engine::Mode::kGrid, .cell = 0.5});
  const auto recs = grid.Step({0}, {1, 2, 3});
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].listener, 1u);
  EXPECT_EQ(recs[1].listener, 2u);
}

}  // namespace
}  // namespace dcc::sinr
