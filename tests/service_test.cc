// The scenario service: content cache semantics (single-flight, LRU,
// failure recovery), the dccd request/response protocol end to end over a
// real Unix socket, cache-path reporting, drain, and the stats surface.
// ServiceCacheTest proves the zero-work-on-hit property the warm-path
// acceptance rests on: a cache hit never invokes the build closure, so a
// warm result-cache request runs zero engine rounds.
#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dcc/common/wire.h"
#include "dcc/service/cache.h"
#include "dcc/service/client.h"
#include "dcc/service/loadgen.h"
#include "dcc/service/service.h"

namespace {

using dcc::service::Client;
using dcc::service::ContentCache;
using dcc::service::Service;

constexpr char kSpec[] =
    "--topology=uniform:n=48,side=4 --algo=clustering --id-space=4096";

std::string TestSocket(const char* tag) {
  return "/tmp/dcc_service_test." + std::to_string(::getpid()) + "." + tag +
         ".sock";
}

TEST(ServiceCacheTest, HitNeverInvokesTheBuilder) {
  ContentCache<int> cache(4);
  int builds = 0;
  bool hit = true;
  auto v = cache.GetOrBuild(
      "k",
      [&] {
        ++builds;
        return std::make_shared<const int>(7);
      },
      &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(*v, 7);
  v = cache.GetOrBuild(
      "k",
      [&] {
        ++builds;
        return std::make_shared<const int>(8);
      },
      &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(*v, 7);       // the cached value, not a rebuild
  EXPECT_EQ(builds, 1);   // zero work on the warm path
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
}

TEST(ServiceCacheTest, LruEvictsTheColdestEntry) {
  ContentCache<int> cache(2);
  bool hit = false;
  const auto put = [&](const std::string& key, int value) {
    return cache.GetOrBuild(
        key, [&] { return std::make_shared<const int>(value); }, &hit);
  };
  put("a", 1);
  put("b", 2);
  put("a", 0);  // touch: a is now warmer than b
  EXPECT_TRUE(hit);
  put("c", 3);  // evicts b
  EXPECT_EQ(cache.size(), 2u);
  put("a", 0);
  EXPECT_TRUE(hit);
  put("b", 9);
  EXPECT_FALSE(hit) << "b should have been evicted";
}

TEST(ServiceCacheTest, EvictedValuesSurviveThroughSharedOwnership) {
  ContentCache<int> cache(1);
  bool hit = false;
  const auto held = cache.GetOrBuild(
      "old", [] { return std::make_shared<const int>(42); }, &hit);
  cache.GetOrBuild("new", [] { return std::make_shared<const int>(1); },
                   &hit);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(*held, 42);  // eviction dropped the cache's ref, not ours
}

TEST(ServiceCacheTest, FailedBuildIsRetriedNotCached) {
  ContentCache<int> cache(4);
  bool hit = true;
  EXPECT_THROW(cache.GetOrBuild(
                   "k",
                   [&]() -> std::shared_ptr<const int> {
                     throw std::runtime_error("boom");
                   },
                   &hit),
               std::runtime_error);
  const auto v = cache.GetOrBuild(
      "k", [] { return std::make_shared<const int>(5); }, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(*v, 5);
}

TEST(ServiceCacheTest, ConcurrentMissesSingleFlightOntoOneBuild) {
  ContentCache<int> cache(4);
  std::atomic<int> builds{0};
  std::atomic<int> hits{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      bool hit = false;
      const auto v = cache.GetOrBuild(
          "k",
          [&] {
            builds.fetch_add(1);
            // Hold the build open so other threads pile onto the wait.
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
            return std::make_shared<const int>(11);
          },
          &hit);
      EXPECT_EQ(*v, 11);
      if (hit) hits.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(builds.load(), 1) << "concurrent misses must batch onto one build";
  EXPECT_EQ(hits.load(), kThreads - 1);
}

TEST(ServiceTest, RunReportsItsCachePathAndServesIdenticalBytes) {
  Service::Options opts;
  opts.socket_path = TestSocket("roundtrip");
  Service service(opts);
  service.Start();
  Client client(opts.socket_path);

  const Client::RunResult cold = client.Run(kSpec);
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_EQ(cold.cached, "none");
  EXPECT_NE(cold.report.find("\"schema\": \"dcc.run_report.v1\""),
            std::string::npos);

  const Client::RunResult warm = client.Run(kSpec);
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_EQ(warm.cached, "result");
  EXPECT_EQ(warm.report, cold.report);  // byte identity across cache paths

  // Same topology, different algorithm: the network is reused, the run is
  // not.
  const Client::RunResult sibling = client.Run(
      "--topology=uniform:n=48,side=4 --algo=local_broadcast "
      "--id-space=4096");
  ASSERT_TRUE(sibling.ok) << sibling.error;
  EXPECT_EQ(sibling.cached, "topology");

  const auto stats = service.Snapshot();
  EXPECT_EQ(stats.result_hits, 1);
  EXPECT_EQ(stats.result_misses, 2);
  EXPECT_EQ(stats.topology_hits, 1);
  EXPECT_EQ(stats.topology_misses, 1);
  EXPECT_EQ(stats.runs, 3);
  EXPECT_EQ(stats.errors, 0);
}

TEST(ServiceTest, SeedFieldAddressesDistinctResults) {
  Service::Options opts;
  opts.socket_path = TestSocket("seeds");
  Service service(opts);
  service.Start();
  Client client(opts.socket_path);

  const Client::RunResult s1 = client.Run(kSpec, 1);
  const Client::RunResult s2 = client.Run(kSpec, 2);
  ASSERT_TRUE(s1.ok && s2.ok);
  EXPECT_NE(s1.report, s2.report);
  const Client::RunResult again = client.Run(kSpec, 1);
  ASSERT_TRUE(again.ok);
  EXPECT_EQ(again.cached, "result");
  EXPECT_EQ(again.report, s1.report);
}

TEST(ServiceTest, DynamicSpecsAreServedAndResultCached) {
  Service::Options opts;
  opts.socket_path = TestSocket("dynamic");
  Service service(opts);
  service.Start();
  Client client(opts.socket_path);

  const std::string spec =
      std::string(kSpec) + " --dynamics=model=waypoint,epochs=2";
  const Client::RunResult cold = client.Run(spec);
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_EQ(cold.cached, "none");
  EXPECT_NE(cold.report.find("\"schema\": \"dcc.dynamic.v1\""),
            std::string::npos);
  const Client::RunResult warm = client.Run(spec);
  ASSERT_TRUE(warm.ok);
  EXPECT_EQ(warm.cached, "result");
  EXPECT_EQ(warm.report, cold.report);
  // Mobility bypasses the topology cache entirely.
  EXPECT_EQ(service.Snapshot().topology_misses, 0);
}

TEST(ServiceTest, RequestErrorsAreAnsweredInBand) {
  Service::Options opts;
  opts.socket_path = TestSocket("errors");
  Service service(opts);
  service.Start();
  Client client(opts.socket_path);

  const Client::RunResult bad = client.Run("--no-such-flag=1");
  EXPECT_FALSE(bad.ok);
  EXPECT_FALSE(bad.error.empty());

  const Client::RunResult sweep =
      client.Run("--topology=uniform:n=48,side=4 --sweep=n:48,96");
  EXPECT_FALSE(sweep.ok);
  EXPECT_NE(sweep.error.find("sweep"), std::string::npos);

  // The connection survives errors; a good request still works.
  const Client::RunResult good = client.Run(kSpec);
  EXPECT_TRUE(good.ok) << good.error;
  EXPECT_EQ(service.Snapshot().errors, 2);
}

TEST(ServiceTest, StatsAndPingSpeakTheProtocol) {
  Service::Options opts;
  opts.socket_path = TestSocket("stats");
  Service service(opts);
  service.Start();
  Client client(opts.socket_path);
  client.Ping();
  const std::string stats = client.StatsJson();
  EXPECT_EQ(stats.rfind("{\"schema\": \"dcc.service.v1\"", 0), 0u) << stats;
}

TEST(ServiceTest, DrainStopsNewConnectionsAndIsIdempotent) {
  Service::Options opts;
  opts.socket_path = TestSocket("drain");
  Service service(opts);
  service.Start();
  {
    Client client(opts.socket_path);
    ASSERT_TRUE(client.Run(kSpec).ok);
  }
  service.Drain();
  EXPECT_TRUE(service.draining());
  Client late(opts.socket_path);
  EXPECT_THROW(late.Ping(), dcc::wire::WireError);
  service.Drain();  // second drain: no-op, no deadlock
  EXPECT_TRUE(service.Snapshot().draining);
}

TEST(ServiceTest, DrainRejectsQueuedRunsWithStructuredError) {
  Service::Options opts;
  opts.socket_path = TestSocket("drain_reject");
  opts.queue_capacity = 1;
  Service service(opts);
  service.Start();

  // A occupies the single admission slot with a multi-second run; B then
  // blocks on admission. Drain must wake B with the structured draining
  // frame — not strand it until A finishes.
  Client::RunResult a_result, b_result;
  std::thread a([&] {
    Client client(opts.socket_path);
    a_result = client.Run("--topology=uniform:n=384,side=11");
  });
  while (service.Snapshot().queue_depth < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::thread b([&] {
    Client client(opts.socket_path);
    b_result = client.Run(kSpec);
  });
  // Give B's frame time to reach its connection thread and park on the
  // admission queue. (If Drain still wins the race, Execute rejects on
  // entry and B gets the same structured frame — no flaky outcome.)
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  service.Drain();
  a.join();
  b.join();

  EXPECT_TRUE(a_result.ok) << a_result.error;  // admitted work finishes
  EXPECT_FALSE(b_result.ok);
  EXPECT_EQ(b_result.error_code, "draining") << b_result.error;
  EXPECT_NE(b_result.error.find("draining"), std::string::npos);
}

TEST(ServiceTest, ErrorFrameShapeIsStable) {
  EXPECT_EQ(Service::ErrorFrame(7, "draining", "service is draining"),
            "{\"id\": 7, \"ok\": false, \"error\": {\"code\": \"draining\", "
            "\"message\": \"service is draining\"}}");
}

TEST(ServiceTest, TopologyKeyIgnoresEverythingButTheNetwork) {
  using dcc::scenario::ScenarioSpec;
  using dcc::service::TopologyCacheKey;
  const ScenarioSpec a = ScenarioSpec::FromArgs(
      {"--topology=uniform:n=64,side=4", "--algo=clustering"});
  const ScenarioSpec b = ScenarioSpec::FromArgs(
      {"--topology=uniform:side=4,n=64", "--algo=local_broadcast",
       "--engine=grid", "--faults=3", "--rounds=17", "--threads=2"});
  EXPECT_EQ(TopologyCacheKey(a, 1), TopologyCacheKey(b, 1));
  EXPECT_NE(TopologyCacheKey(a, 1), TopologyCacheKey(a, 2));
  const ScenarioSpec c =
      ScenarioSpec::FromArgs({"--topology=uniform:n=65,side=4"});
  EXPECT_NE(TopologyCacheKey(a, 1), TopologyCacheKey(c, 1));
  // The id-seed default resolves against the seed: an explicit --id-seed
  // equal to seed+1 is the same network.
  const ScenarioSpec d = ScenarioSpec::FromArgs(
      {"--topology=uniform:n=64,side=4", "--id-seed=4"});
  EXPECT_EQ(TopologyCacheKey(a, 3), TopologyCacheKey(d, 3));
  EXPECT_NE(TopologyCacheKey(a, 4), TopologyCacheKey(d, 4));
}

}  // namespace
