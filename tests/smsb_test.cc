// Theorem 3: SMSBroadcast wakes the whole (connected) network from the
// source set, phase by phase, keeping each new cohort 1-clustered.
#include "dcc/bcast/smsb.h"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "dcc/cluster/validate.h"
#include "dcc/workload/generators.h"

namespace dcc::bcast {
namespace {

sinr::Params TestParams() {
  sinr::Params p = sinr::Params::Default();
  p.id_space = 1 << 12;
  return p;
}

TEST(SmsbTest, SingleSourceReachesEveryone) {
  const auto params = TestParams();
  auto pts = workload::ConnectedUniform(80, 5.0, params, 3);
  const auto net = workload::MakeNetwork(pts, params, 11);
  const auto prof = cluster::Profile::Practical(params.id_space);
  sim::Exec ex(net);
  const auto res = SmsBroadcast(ex, prof, {0}, net.Density(),
                                net.Diameter() + 3, 1);
  EXPECT_TRUE(res.all_awake) << res.awake << "/" << net.size();
}

TEST(SmsbTest, PhasesTrackHopDistance) {
  // On a line with pitch 0.7, hop i is at distance i; nodes must wake in
  // phase order consistent with BFS layers (allowing the paper's slack:
  // awake-phase <= hop distance, since reception can jump up to 1).
  const auto params = TestParams();
  auto pts = workload::Line(20, 0.7, 2);
  const auto net = workload::MakeNetwork(pts, params, 13);
  const auto prof = cluster::Profile::Practical(params.id_space);
  sim::Exec ex(net);
  const auto res =
      SmsBroadcast(ex, prof, {0}, net.Density(), net.Diameter() + 3, 2);
  ASSERT_TRUE(res.all_awake);
  const auto hops = net.HopDistances(0);
  for (std::size_t i = 1; i < net.size(); ++i) {
    EXPECT_LE(res.awake_phase[i], hops[i] + 1) << "node " << i;
    EXPECT_GE(res.awake_phase[i], 1) << "node " << i;
  }
}

TEST(SmsbTest, CohortsAreValidOneClusterings) {
  const auto params = TestParams();
  auto pts = workload::BlobChain(5, 14, 0.4, 1.6, 7);
  const auto net = workload::MakeNetwork(pts, params, 17);
  const auto prof = cluster::Profile::Practical(params.id_space);
  sim::Exec ex(net);
  const auto res =
      SmsBroadcast(ex, prof, {0}, net.Density(), net.Diameter() + 3, 3);
  ASSERT_TRUE(res.all_awake);
  // Validate the per-phase clusterings: group awake nodes by phase.
  for (int ph = 2; ph <= res.phases; ++ph) {
    std::vector<std::size_t> cohort;
    for (std::size_t i = 0; i < net.size(); ++i) {
      if (res.awake_phase[i] == ph) cohort.push_back(i);
    }
    if (cohort.size() < 2) continue;
    const auto chk = cluster::CheckClustering(net, cohort, res.cluster_of);
    EXPECT_EQ(chk.assigned, chk.members) << "phase " << ph;
    EXPECT_LE(chk.max_radius, 1.0 + 1e-9) << "phase " << ph;
  }
}

TEST(SmsbTest, ConditionBEveryNodeLocallyBroadcasts) {
  // SMSB condition (b): every node transmits its message in some round
  // received by all its communication-graph neighbors (cumulatively).
  const auto params = TestParams();
  auto pts = workload::Line(16, 0.7, 11);
  const auto net = workload::MakeNetwork(pts, params, 31);
  const auto prof = cluster::Profile::Practical(params.id_space);
  const auto& comm = net.CommGraph();

  sim::Exec ex(net);
  std::vector<std::set<std::size_t>> covered(net.size());
  ex.SetObserver([&](Round, const std::vector<std::size_t>&,
                     const std::vector<sinr::Reception>& recs) {
    for (const auto& r : recs) covered[r.sender].insert(r.listener);
  });
  const auto res =
      SmsBroadcast(ex, prof, {0}, net.Density(), net.Diameter() + 3, 7);
  ex.SetObserver(nullptr);
  ASSERT_TRUE(res.all_awake);
  for (std::size_t v = 0; v < net.size(); ++v) {
    for (const std::size_t w : comm[v]) {
      EXPECT_TRUE(covered[v].count(w))
          << "neighbor " << w << " never heard node " << v;
    }
  }
}

TEST(SmsbTest, MultipleSeparatedSources) {
  const auto params = TestParams();
  auto pts = workload::Line(30, 0.7, 5);
  const auto net = workload::MakeNetwork(pts, params, 19);
  const auto prof = cluster::Profile::Practical(params.id_space);
  // Sources at both ends: > 1-eps apart.
  sim::Exec ex(net);
  const auto res = SmsBroadcast(ex, prof, {0, 29}, net.Density(),
                                net.Diameter() + 3, 4);
  EXPECT_TRUE(res.all_awake);
  // Propagation from both ends halves the phase count vs a single source.
  sim::Exec ex2(net);
  const auto single =
      SmsBroadcast(ex2, prof, {0}, net.Density(), net.Diameter() + 3, 4);
  EXPECT_LT(res.phases, single.phases);
}

TEST(SmsbTest, CloseSourcesRejected) {
  const auto params = TestParams();
  auto pts = workload::Line(10, 0.3, 6);
  const auto net = workload::MakeNetwork(pts, params, 23);
  const auto prof = cluster::Profile::Practical(params.id_space);
  sim::Exec ex(net);
  EXPECT_THROW(SmsBroadcast(ex, prof, {0, 1}, 4, 10, 5), InvalidArgument);
}

TEST(SmsbTest, RoundsGrowLinearlyWithDiameter) {
  const auto params = TestParams();
  std::vector<Round> rounds;
  for (const int n : {10, 20, 40}) {
    auto pts = workload::Line(n, 0.7, 9);
    const auto net = workload::MakeNetwork(pts, params, 29);
    const auto prof = cluster::Profile::Practical(params.id_space);
    sim::Exec ex(net);
    const auto res =
        SmsBroadcast(ex, prof, {0}, net.Density(), net.Diameter() + 3, 6);
    EXPECT_TRUE(res.all_awake);
    rounds.push_back(res.rounds);
  }
  // Doubling the line length should roughly double the rounds (within 3x).
  EXPECT_GT(rounds[1], rounds[0]);
  EXPECT_GT(rounds[2], rounds[1]);
  EXPECT_LT(static_cast<double>(rounds[2]),
            3.2 * static_cast<double>(rounds[1]));
}

class SmsbSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SmsbSweep, AllAwakeAcrossBlobChains) {
  const auto [blobs, per_blob, seed] = GetParam();
  const auto params = TestParams();
  auto pts = workload::BlobChain(blobs, per_blob, 0.3, 1.2,
                                 static_cast<std::uint64_t>(seed));
  const auto net = workload::MakeNetwork(
      pts, params, static_cast<std::uint64_t>(seed) + 3);
  if (!net.Connected()) GTEST_SKIP() << "unlucky disconnected blob chain";
  const auto prof = cluster::Profile::Practical(params.id_space);
  sim::Exec ex(net);
  const auto res = SmsBroadcast(ex, prof, {0}, net.Density(),
                                net.Diameter() + 3,
                                static_cast<std::uint64_t>(seed));
  EXPECT_TRUE(res.all_awake)
      << res.awake << "/" << net.size() << " blobs=" << blobs;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SmsbSweep,
                         ::testing::Values(std::tuple{4, 10, 1},
                                           std::tuple{6, 12, 2},
                                           std::tuple{8, 8, 3},
                                           std::tuple{3, 24, 4}));

}  // namespace
}  // namespace dcc::bcast
