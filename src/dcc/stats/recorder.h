// Lightweight named-counter recorder used by benches to collect per-stage
// round counts and derived metrics.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace dcc::stats {

class Recorder {
 public:
  void Add(const std::string& key, double value);
  void Set(const std::string& key, double value);
  double Get(const std::string& key) const;  // 0 if absent
  bool Has(const std::string& key) const;

  // Insertion-ordered (key, value) view.
  const std::vector<std::pair<std::string, double>>& entries() const {
    return entries_;
  }

  void Print(std::ostream& os, int indent = 0) const;

  // Emits the entries as one JSON object in insertion order, e.g.
  // {"rounds": 42, "unassigned": 0}. Values print with shortest-round-trip
  // precision; non-finite values become null.
  void PrintJson(std::ostream& os) const;

 private:
  std::vector<std::pair<std::string, double>> entries_;
  std::size_t FindOrCreate(const std::string& key);
};

}  // namespace dcc::stats
