// Section 6 constructions: gadget geometry, Fact 2 under the engine, the
// adversarial ID assignment, and the measured Omega(Delta) blocking.
#include <gtest/gtest.h>

#include <numeric>

#include "dcc/lowerbound/adversary.h"
#include "dcc/lowerbound/gadget.h"
#include "dcc/sinr/engine.h"
#include "dcc/sinr/network.h"

namespace dcc::lowerbound {
namespace {

sinr::Params LbParams() {
  // eps = 0.1 keeps the nu budget (Theta(eps^{-alpha})) comfortably above
  // worst-case cross-gadget interference in chains.
  sinr::Params p = GadgetParams(3.0, 0.1, 2.0);
  p.id_space = 1 << 12;
  return p;
}

sinr::Network GadgetNetwork(const Gadget& g, const sinr::Params& p) {
  return sinr::Network::WithSequentialIds(g.positions, p);
}

TEST(GadgetTest, GeometryMatchesPaper) {
  const auto params = LbParams();
  const Gadget g = MakeGadget(12, params, 2.0);
  ASSERT_EQ(g.positions.size(), static_cast<std::size_t>(12) + 4);
  ASSERT_EQ(g.core.size(), static_cast<std::size_t>(12) + 2);
  const double eps = params.eps;
  // Core span within (2*eps, 3*eps) as in Fig. 6.
  const double span = g.positions[g.core.back()].x - g.positions[g.core.front()].x;
  EXPECT_GT(span, 2.0 * eps);
  EXPECT_LT(span, 3.0 * eps);
  // t within range of v_{delta+1} only.
  const Vec2 t = g.positions[g.t];
  for (std::size_t i = 0; i + 1 < g.core.size(); ++i) {
    EXPECT_GT(Dist(g.positions[g.core[i]], t), 1.0) << "core " << i;
  }
  EXPECT_LE(Dist(g.positions[g.core.back()], t), 1.0);
  // s reaches the whole core.
  for (const std::size_t c : g.core) {
    EXPECT_LE(Dist(g.positions[g.s], g.positions[c]), 1.0);
  }
}

TEST(GadgetTest, SourceWakesWholeCoreAtOnce) {
  const auto params = LbParams();
  const Gadget g = MakeGadget(10, params, 2.0);
  const auto net = GadgetNetwork(g, params);
  const sinr::Engine eng(net);
  std::vector<std::size_t> listeners(g.core.begin(), g.core.end());
  const auto recs = eng.Step({g.s}, listeners);
  EXPECT_EQ(recs.size(), g.core.size());
}

TEST(GadgetTest, Fact2TwoTransmittersJamTheSuffix) {
  const auto params = LbParams();
  const int delta = 14;
  const Gadget g = MakeGadget(delta, params, 2.0);
  const auto net = GadgetNetwork(g, params);
  const sinr::Engine eng(net);
  // For every pair i < j of core transmitters, no listener beyond j hears.
  for (std::size_t i = 0; i < g.core.size(); ++i) {
    for (std::size_t j = i + 1; j < g.core.size(); ++j) {
      std::vector<std::size_t> listeners;
      for (std::size_t l = j + 1; l < g.core.size(); ++l) {
        listeners.push_back(g.core[l]);
      }
      listeners.push_back(g.t);
      const auto recs = eng.Step({g.core[i], g.core[j]}, listeners);
      EXPECT_TRUE(recs.empty()) << "i=" << i << " j=" << j;
    }
  }
}

TEST(GadgetTest, Fact2TargetHearsOnlySoloLastNode) {
  const auto params = LbParams();
  const Gadget g = MakeGadget(10, params, 2.0);
  const auto net = GadgetNetwork(g, params);
  const sinr::Engine eng(net);
  // v_{delta+1} alone: t hears.
  const auto solo = eng.Step({g.core.back()}, {g.t});
  ASSERT_EQ(solo.size(), 1u);
  // v_{delta+1} plus any other core node: t deaf.
  for (std::size_t i = 0; i + 1 < g.core.size(); ++i) {
    const auto recs = eng.Step({g.core.back(), g.core[i]}, {g.t});
    EXPECT_TRUE(recs.empty()) << "i=" << i;
  }
}

TEST(GadgetChainTest, BufferBoundsInterGadgetInterference) {
  const auto params = LbParams();
  const GadgetChain chain = MakeGadgetChain(3, 10, params, 2.0);
  const auto net = sinr::Network::WithSequentialIds(chain.positions, params);
  const sinr::Engine eng(net);
  // Worst case: every node of gadgets 0 and 1 plus all buffers transmit;
  // interference at gadget 2's core must stay below the Lemma 13 budget
  // nu = P/(4 eps)^alpha - noise... we check the operational consequence:
  // a close-range transmission inside gadget 2 still succeeds.
  std::vector<std::size_t> tx;
  for (int gi = 0; gi < 2; ++gi) {
    tx.push_back(chain.gadgets[static_cast<std::size_t>(gi)].s);
    for (const auto c : chain.gadgets[static_cast<std::size_t>(gi)].core) {
      tx.push_back(c);
    }
  }
  for (const auto b : chain.buffer_nodes) tx.push_back(b);
  const Gadget& g2 = chain.gadgets[2];
  // s of gadget 2 transmits to its core under all that noise.
  tx.push_back(g2.s);
  std::vector<std::size_t> listeners(g2.core.begin(), g2.core.end());
  const auto recs = eng.Step(tx, listeners);
  std::size_t from_s = 0;
  for (const auto& r : recs) {
    if (r.sender == g2.s) ++from_s;
  }
  EXPECT_EQ(from_s, g2.core.size())
      << "buffering fails to isolate the gadget";
}

TEST(AdversaryTest, RoundRobinDelayedPastPoolMinimum) {
  const auto trace = RoundRobinTrace(1 << 12);
  std::vector<NodeId> pool(30);
  std::iota(pool.begin(), pool.end(), NodeId{100});
  const auto asg = AssignAdversarialIds(trace, pool, 28, 1 << 12);
  // Round-robin ids never collide, so every id's first transmission is
  // solo: the adversary can only pick the largest id (last slot).
  EXPECT_EQ(asg.blocked_until, 129 % (1 << 12));
}

TEST(AdversaryTest, SelectorTraceBlockedLinearInDelta) {
  const std::int64_t N = 1 << 12;
  Round prev = 0;
  for (const int delta : {8, 16, 32}) {
    const auto trace = SelectorTrace(N, delta, 77);  // density-aware k=delta
    std::vector<NodeId> pool(static_cast<std::size_t>(delta) + 2);
    std::iota(pool.begin(), pool.end(), NodeId{50});
    const auto asg = AssignAdversarialIds(trace, pool, delta, 1 << 16);
    EXPECT_GT(asg.blocked_until, delta) << "delta=" << delta;
    EXPECT_GE(asg.blocked_until, prev);  // grows with delta
    prev = asg.blocked_until;
  }
}

TEST(AdversaryTest, SimulationConfirmsBlockedUntil) {
  // Run the selector schedule on the real gadget with adversarial ids and
  // confirm t hears nothing until the predicted round.
  const auto params = LbParams();
  const int delta = 12;
  const Gadget g = MakeGadget(delta, params, 2.0);
  const std::int64_t N = params.id_space;
  const auto trace = SelectorTrace(N, delta, 123);
  std::vector<NodeId> pool(static_cast<std::size_t>(delta) + 2);
  std::iota(pool.begin(), pool.end(), NodeId{10});
  const auto asg = AssignAdversarialIds(trace, pool, delta, 1 << 15);
  ASSERT_GT(asg.blocked_until, 0);

  // Build the network with the adversarial core ids.
  std::vector<NodeId> ids(g.positions.size());
  ids[g.s] = 1;
  ids[g.t] = 2;
  for (std::size_t i = 0; i < g.core.size(); ++i) {
    ids[g.core[i]] = asg.core_ids[i];
  }
  const sinr::Network net(g.positions, ids, params);
  const sinr::Engine eng(net);

  Round first_heard = -1;
  for (Round r = 0; r <= asg.blocked_until + 8; ++r) {
    std::vector<std::size_t> tx;
    for (const std::size_t c : g.core) {
      if (trace(net.id(c), r)) tx.push_back(c);
    }
    if (tx.empty()) continue;
    const auto recs = eng.Step(tx, {g.t});
    if (!recs.empty()) {
      first_heard = r;
      break;
    }
  }
  ASSERT_GE(first_heard, 0) << "t never heard anything in the window";
  EXPECT_GE(first_heard, asg.blocked_until);
}

TEST(AdversaryTest, PoolTooSmallRejected) {
  const auto trace = RoundRobinTrace(64);
  EXPECT_THROW(AssignAdversarialIds(trace, {1, 2, 3}, 4, 100),
               InvalidArgument);
}

}  // namespace
}  // namespace dcc::lowerbound
