#include "dcc/mis/linial.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "dcc/common/rng.h"
#include "dcc/mis/local_mis.h"

namespace dcc::mis {
namespace {

LocalGraph PathGraph(int n) {
  LocalGraph g;
  g.adj.resize(static_cast<std::size_t>(n));
  for (int i = 0; i + 1 < n; ++i) {
    g.adj[static_cast<std::size_t>(i)].push_back(static_cast<std::size_t>(i + 1));
    g.adj[static_cast<std::size_t>(i + 1)].push_back(static_cast<std::size_t>(i));
  }
  return g;
}

LocalGraph RandomBoundedDegreeGraph(int n, int degree, std::uint64_t seed) {
  LocalGraph g;
  g.adj.resize(static_cast<std::size_t>(n));
  Xoshiro256ss rng(seed);
  for (int e = 0; e < n * degree / 2; ++e) {
    const auto a = rng.NextBelow(static_cast<std::uint64_t>(n));
    const auto b = rng.NextBelow(static_cast<std::uint64_t>(n));
    if (a == b) continue;
    auto& na = g.adj[a];
    auto& nb = g.adj[b];
    if (na.size() >= static_cast<std::size_t>(degree) ||
        nb.size() >= static_cast<std::size_t>(degree)) {
      continue;
    }
    if (std::find(na.begin(), na.end(), b) != na.end()) continue;
    na.push_back(b);
    nb.push_back(a);
  }
  return g;
}

std::vector<std::int64_t> SequentialIds(int n) {
  std::vector<std::int64_t> ids(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) ids[static_cast<std::size_t>(i)] = i + 1;
  return ids;
}

TEST(LinialPlanTest, ReachesFixpointQuickly) {
  const auto plan = LinialPlan(1 << 16, 4);
  // log* shaped: a handful of rounds.
  EXPECT_GE(plan.size(), 1u);
  EXPECT_LE(plan.size(), 6u);
  // Color spaces strictly shrink.
  for (std::size_t i = 0; i + 1 < plan.size(); ++i) {
    EXPECT_LT(plan[i + 1].m, plan[i].m);
  }
}

TEST(LinialPlanTest, DegreeConstraintRespected) {
  for (const int delta : {2, 4, 8}) {
    for (const auto& round : LinialPlan(1 << 20, delta)) {
      EXPECT_GT(round.q, static_cast<std::int64_t>(delta) * round.t);
    }
  }
}

TEST(LinialStepTest, ProducesDistinctColorsForNeighbors) {
  // A clique of delta+1 nodes with distinct colors stays properly colored.
  const LinialRound round{11, 2, 1000};
  const std::vector<std::int64_t> colors{5, 123, 777};
  for (std::size_t v = 0; v < colors.size(); ++v) {
    std::vector<std::int64_t> ncs;
    for (std::size_t u = 0; u < colors.size(); ++u) {
      if (u != v) ncs.push_back(colors[u]);
    }
    const auto nv = LinialStep(colors[v], ncs, round);
    EXPECT_GE(nv, 0);
    EXPECT_LT(nv, round.q * round.q);
    for (const std::int64_t cu : ncs) {
      // A neighbor mapping through the same round from a different color
      // at the same evaluation point would differ; full properness is
      // checked by the whole-graph test below.
      (void)cu;
    }
  }
}

TEST(LinialColorReductionTest, ProperColoringOnPath) {
  const int n = 200;
  const LocalGraph g = PathGraph(n);
  std::vector<std::int64_t> colors(SequentialIds(n));
  for (auto& c : colors) --c;  // 0-based colors
  const auto run = LinialColorReduction(g, colors, 1 << 14, 2);
  EXPECT_LT(run.num_colors, 200);
  EXPECT_LE(run.local_rounds, 6);
  for (std::size_t v = 0; v + 1 < static_cast<std::size_t>(n); ++v) {
    EXPECT_NE(run.colors[v], run.colors[v + 1]);
  }
}

TEST(MisFromColoringTest, IndependentAndMaximal) {
  const int n = 300;
  const LocalGraph g = RandomBoundedDegreeGraph(n, 4, 99);
  std::vector<std::int64_t> colors(SequentialIds(n));
  for (auto& c : colors) --c;
  const auto reduced = LinialColorReduction(g, colors, 1 << 12, 4);
  const auto mis = MisFromColoring(g, reduced.colors, reduced.num_colors);
  EXPECT_TRUE(g.IsIndependent(mis.in_mis));
  EXPECT_TRUE(g.IsDominating(mis.in_mis));
}

TEST(LinialMisTest, FullPipeline) {
  const int n = 256;
  const LocalGraph g = RandomBoundedDegreeGraph(n, 5, 3);
  const auto mis = LinialMis(g, SequentialIds(n), 1 << 12);
  EXPECT_TRUE(g.IsIndependent(mis.in_mis));
  EXPECT_TRUE(g.IsDominating(mis.in_mis));
}

TEST(LinialMisTest, LocalRoundsGrowLikeLogStar) {
  // Rounds should be essentially flat as n doubles (log* growth).
  int prev = 0;
  for (const int logn : {8, 10, 12, 14}) {
    const int n = 1 << logn;
    const LocalGraph g = RandomBoundedDegreeGraph(std::min(n, 1024), 3,
                                                  static_cast<std::uint64_t>(logn));
    const auto mis = LinialMis(g, SequentialIds(static_cast<int>(g.size())),
                               n * 4);
    if (prev > 0) {
      EXPECT_LE(mis.local_rounds, prev + 40);
    }
    prev = mis.local_rounds;
  }
}

TEST(ReduceColorsTest, ReachesDeltaPlusOne) {
  const int n = 300;
  const LocalGraph g = RandomBoundedDegreeGraph(n, 4, 21);
  std::vector<std::int64_t> colors(SequentialIds(n));
  for (auto& c : colors) --c;
  const auto red = LinialColorReduction(g, colors, 1 << 12, 4);
  const std::int64_t target = g.MaxDegree() + 1;
  const auto fin = ReduceColors(g, red.colors, red.num_colors, target);
  EXPECT_EQ(fin.num_colors, target);
  for (std::size_t v = 0; v < g.size(); ++v) {
    EXPECT_LT(fin.colors[v], target);
    for (const std::size_t u : g.adj[v]) {
      EXPECT_NE(fin.colors[v], fin.colors[u]);
    }
  }
  // One LOCAL round per eliminated class.
  EXPECT_EQ(fin.local_rounds, red.num_colors - target);
}

TEST(ReduceColorsTest, TargetBelowDegreePlusOneRejected) {
  const LocalGraph g = PathGraph(10);
  std::vector<std::int64_t> colors{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_THROW(ReduceColors(g, colors, 10, 2), InvalidArgument);
}

TEST(ReduceColorsTest, MisFromTightColoringFast) {
  // Delta+1 colors -> MIS sweep in Delta+1 LOCAL rounds.
  const int n = 200;
  const LocalGraph g = RandomBoundedDegreeGraph(n, 3, 33);
  std::vector<std::int64_t> colors(SequentialIds(n));
  for (auto& c : colors) --c;
  const auto red = LinialColorReduction(g, colors, 1 << 10, 3);
  const auto fin = ReduceColors(g, red.colors, red.num_colors,
                                g.MaxDegree() + 1);
  const auto mis = MisFromColoring(g, fin.colors, fin.num_colors);
  EXPECT_TRUE(g.IsIndependent(mis.in_mis));
  EXPECT_TRUE(g.IsDominating(mis.in_mis));
  EXPECT_EQ(mis.local_rounds, g.MaxDegree() + 1);
}

TEST(LocalMinimaStepTest, MinJoins) {
  const std::vector<std::pair<NodeId, MisState>> ns{
      {5, MisState::kUndecided}, {9, MisState::kUndecided}};
  EXPECT_EQ(LocalMinimaStep(3, MisState::kUndecided, ns), MisState::kInMis);
  EXPECT_EQ(LocalMinimaStep(7, MisState::kUndecided, ns),
            MisState::kUndecided);
}

TEST(LocalMinimaStepTest, DominationBeatsJoining) {
  const std::vector<std::pair<NodeId, MisState>> ns{{9, MisState::kInMis}};
  EXPECT_EQ(LocalMinimaStep(3, MisState::kUndecided, ns),
            MisState::kDominated);
}

TEST(LocalMinimaStepTest, DecidedStatesFrozen) {
  EXPECT_EQ(LocalMinimaStep(3, MisState::kInMis, {}), MisState::kInMis);
  EXPECT_EQ(LocalMinimaStep(3, MisState::kDominated, {}),
            MisState::kDominated);
}

TEST(LocalMinimaMisTest, ConvergesOnRandomGraphs) {
  const LocalGraph g = RandomBoundedDegreeGraph(400, 4, 17);
  const auto run = LocalMinimaMis(g, SequentialIds(400), 50);
  EXPECT_TRUE(run.all_decided);
  std::vector<bool> in(g.size());
  for (std::size_t v = 0; v < g.size(); ++v) {
    in[v] = run.state[v] == MisState::kInMis;
  }
  EXPECT_TRUE(g.IsIndependent(in));
  EXPECT_TRUE(g.IsDominating(in));
}

TEST(LocalMinimaMisTest, IndependenceHoldsEvenWhenCapped) {
  // Adversarial decreasing-ID path: slow convergence, but whatever joined
  // stays independent.
  const int n = 60;
  const LocalGraph g = PathGraph(n);
  std::vector<std::int64_t> ids(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) ids[static_cast<std::size_t>(i)] = n - i;
  const auto run = LocalMinimaMis(g, ids, 3);  // deliberately tiny cap
  std::vector<bool> in(g.size());
  for (std::size_t v = 0; v < g.size(); ++v) {
    in[v] = run.state[v] == MisState::kInMis;
  }
  EXPECT_TRUE(g.IsIndependent(in));
}

class LocalMinimaSweep : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(LocalMinimaSweep, IndependentOnAllShapes) {
  const auto [n, deg] = GetParam();
  const LocalGraph g = RandomBoundedDegreeGraph(
      n, deg, static_cast<std::uint64_t>(n * 31 + deg));
  const auto run = LocalMinimaMis(g, SequentialIds(n), 30);
  std::vector<bool> in(g.size());
  for (std::size_t v = 0; v < g.size(); ++v) {
    in[v] = run.state[v] == MisState::kInMis;
  }
  EXPECT_TRUE(g.IsIndependent(in));
  if (run.all_decided) {
    EXPECT_TRUE(g.IsDominating(in));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LocalMinimaSweep,
                         ::testing::Combine(::testing::Values(50, 200, 500),
                                            ::testing::Values(2, 4, 6)));

}  // namespace
}  // namespace dcc::mis
