// Theorem 1 ablation — Clustering rounds vs density Gamma and id space N.
//
// Expected shape: rounds ~ Gamma * log N * log* N. We sweep Gamma at fixed
// N (rounds/Gamma should stay within a logarithmic band) and N at fixed
// Gamma (rounds should grow ~log N), and validate every produced
// clustering geometrically.
//
// Ported onto the scenario layer: each cell is a ScenarioSpec (with the
// legacy seed/nonce pinned, so the measured round counts match the
// pre-port bench exactly) and the table reads the RunReport metrics.
#include "bench_common.h"
#include "dcc/scenario/scenario.h"

namespace dcc {
namespace {

scenario::ScenarioSpec BaseSpec() {
  scenario::ScenarioSpec spec;
  spec.algo = "clustering";
  spec.sinr.id_space = 1 << 12;
  spec.engine = sinr::Engine::Options::FromEnv();
  return spec;
}

void Run() {
  bench::Banner("Clustering scaling (Theorem 1)",
                "Jurdzinski et al., PODC'18, Theorem 1",
                "rounds/Gamma flat-ish across the Gamma sweep; rounds ~log N "
                "across the N sweep; all clusterings valid");

  std::cout << "-- Gamma sweep (N = 4096, fixed area) --\n";
  {
    Table t({"n", "Gamma", "rounds", "rounds/Gamma", "clusters", "valid"});
    for (const int n : {48, 96, 192, 288, 384}) {
      scenario::ScenarioSpec spec = BaseSpec();
      spec.topology_params.Set("n", std::to_string(n));
      spec.topology_params.Set("side", "5.0");
      spec.id_seed = static_cast<std::uint64_t>(3 + n);
      spec.nonce = static_cast<std::uint64_t>(n);
      const auto rep =
          scenario::RunScenario(spec, static_cast<std::uint64_t>(7 + n));
      const double gamma = rep.metrics.Get("gamma");
      t.AddRow({Table::Num(std::int64_t{n}),
                Table::Num(static_cast<std::int64_t>(gamma)),
                Table::Num(static_cast<std::int64_t>(rep.metrics.Get("rounds"))),
                Table::Num(rep.metrics.Get("rounds") / std::max(gamma, 1.0)),
                Table::Num(static_cast<std::int64_t>(
                    rep.metrics.Get("clusters"))),
                rep.ok ? "yes" : "NO"});
    }
    t.Print(std::cout);
  }

  std::cout << "\n-- N sweep (same 128-node workload, growing id space) --\n";
  {
    Table t({"N", "rounds", "rounds/lnN", "valid"});
    for (const int logN : {10, 14, 18, 22}) {
      scenario::ScenarioSpec spec = BaseSpec();
      spec.sinr.id_space = std::int64_t{1} << logN;
      spec.topology_params.Set("n", "128");
      spec.topology_params.Set("side", "4.5");
      spec.id_seed = 31;
      spec.nonce = 9;
      const auto rep = scenario::RunScenario(spec, 77);
      t.AddRow({Table::Num(spec.sinr.id_space),
                Table::Num(static_cast<std::int64_t>(rep.metrics.Get("rounds"))),
                Table::Num(rep.metrics.Get("rounds") / (0.693 * logN)),
                rep.ok ? "yes" : "NO"});
    }
    t.Print(std::cout);
  }
}

}  // namespace
}  // namespace dcc

int main() {
  dcc::Run();
  return 0;
}
