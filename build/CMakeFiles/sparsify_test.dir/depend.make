# Empty dependencies file for sparsify_test.
# This may be replaced when dependencies are built.
