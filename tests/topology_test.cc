// Hard-topology sweeps for the full pipeline: corridors with pinch points,
// two-scale density contrast, and star networks — shapes where clustering
// and broadcast historically break (boundary effects, extreme Gamma
// contrast, high-degree hubs).
#include <gtest/gtest.h>

#include "dcc/bcast/smsb.h"
#include "dcc/cluster/clustering.h"
#include "dcc/cluster/validate.h"
#include "dcc/workload/generators.h"

namespace dcc {
namespace {

sinr::Params TestParams() {
  sinr::Params p = sinr::Params::Default();
  p.id_space = 1 << 12;
  return p;
}

std::vector<std::size_t> AllIndices(const sinr::Network& net) {
  std::vector<std::size_t> all(net.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return all;
}

void ExpectValidClustering(const sinr::Network& net, const std::string& tag) {
  const auto prof = cluster::Profile::Practical(net.params().id_space);
  const auto all = AllIndices(net);
  sim::Exec ex(net);
  const auto res = cluster::BuildClustering(
      ex, prof, all, cluster::SubsetDensity(net, all), 1);
  EXPECT_EQ(res.unassigned, 0u) << tag;
  const auto chk = cluster::CheckClustering(net, all, res.cluster_of);
  EXPECT_TRUE(chk.ValidRClustering(1.0, net.params().eps))
      << tag << ": radius=" << chk.max_radius
      << " sep=" << chk.min_center_sep;
}

TEST(TopologyTest, CorridorClusteringValid) {
  const auto params = TestParams();
  auto pts = workload::Corridor(120, 12.0, 2.0, 3, 1.2, 7);
  const auto net = workload::MakeNetwork(pts, params, 3);
  ExpectValidClustering(net, "corridor");
}

TEST(TopologyTest, CorridorBroadcastThroughPinchPoints) {
  const auto params = TestParams();
  auto pts = workload::Corridor(140, 12.0, 2.0, 3, 1.2, 2);
  const auto net = workload::MakeNetwork(pts, params, 5);
  if (!net.Connected()) GTEST_SKIP() << "holes disconnected the corridor";
  const auto prof = cluster::Profile::Practical(params.id_space);
  sim::Exec ex(net);
  const auto res = bcast::SmsBroadcast(ex, prof, {0}, net.Density(),
                                       net.Diameter() + 3, 2);
  EXPECT_TRUE(res.all_awake) << res.awake << "/" << net.size();
}

TEST(TopologyTest, TwoScaleClusteringValid) {
  const auto params = TestParams();
  // Sparse backdrop + two hotspots: Gamma contrast ~1 vs ~30.
  auto pts = workload::TwoScale(48, 8.0, 2, 30, 0.25, 11);
  const auto net = workload::MakeNetwork(pts, params, 7);
  ExpectValidClustering(net, "two-scale");
}

TEST(TopologyTest, TwoScaleHotspotsGetMultipleClusters) {
  const auto params = TestParams();
  auto pts = workload::TwoScale(30, 6.0, 1, 40, 0.5, 13);
  const auto net = workload::MakeNetwork(pts, params, 9);
  const auto prof = cluster::Profile::Practical(params.id_space);
  const auto all = AllIndices(net);
  sim::Exec ex(net);
  const auto res = cluster::BuildClustering(
      ex, prof, all, cluster::SubsetDensity(net, all), 3);
  ASSERT_EQ(res.unassigned, 0u);
  // A sigma=0.5 hotspot spans ~2 units: it cannot be one unit-ball
  // cluster, and the O(1)-clusters-per-ball bound still must hold.
  const auto chk = cluster::CheckClustering(net, all, res.cluster_of);
  EXPECT_GE(chk.num_clusters, 2);
  EXPECT_LE(chk.max_clusters_per_unit_ball,
            ChiUpperBound(2.0, 1.0 - params.eps));
}

TEST(TopologyTest, StarClusteringValid) {
  const auto params = TestParams();
  auto pts = workload::Star(6, 8, 0.45);
  const auto net = workload::MakeNetwork(pts, params, 15);
  ExpectValidClustering(net, "star");
}

TEST(TopologyTest, StarBroadcastFromArmTip) {
  const auto params = TestParams();
  auto pts = workload::Star(5, 10, 0.6);
  const auto net = workload::MakeNetwork(pts, params, 17);
  ASSERT_TRUE(net.Connected());
  const auto prof = cluster::Profile::Practical(params.id_space);
  // Source at the end of one arm: the wave must pass through the hub.
  sim::Exec ex(net);
  const auto res = bcast::SmsBroadcast(ex, prof, {10}, net.Density(),
                                       net.Diameter() + 3, 4);
  EXPECT_TRUE(res.all_awake) << res.awake << "/" << net.size();
}

TEST(TopologyTest, RingClusteringValid) {
  const auto params = TestParams();
  auto pts = workload::Ring(48, 5.0);
  const auto net = workload::MakeNetwork(pts, params, 19);
  ExpectValidClustering(net, "ring");
}

}  // namespace
}  // namespace dcc
