// The parallel sharded round engine must be invisible except for speed:
// receptions (listener, sender AND every SINR bit) are pinned identical to
// serial execution across thread counts, shard policies, engine modes,
// propagation models, and moving/churning networks. Also covers the
// subsystem's building blocks: WorkerPool fan-out semantics and ShardPlan
// partition invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dcc/common/rng.h"
#include "dcc/parallel/shard_plan.h"
#include "dcc/parallel/worker_pool.h"
#include "dcc/scenario/scenario.h"
#include "dcc/sinr/engine.h"
#include "dcc/sinr/network.h"
#include "dcc/workload/generators.h"

namespace dcc {
namespace {

using parallel::ShardPlan;
using parallel::ShardPolicy;
using parallel::WorkerPool;
using sinr::Engine;
using sinr::Network;
using sinr::Params;
using sinr::Reception;
using sinr::Shadowing;

// --- WorkerPool -------------------------------------------------------------

TEST(WorkerPoolTest, RunsEveryJobExactlyOnce) {
  WorkerPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h = 0;
  pool.Run(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], 1) << "job " << i;
  }
}

TEST(WorkerPoolTest, ZeroWorkerPoolRunsInline) {
  WorkerPool pool(0);
  EXPECT_EQ(pool.parallelism(), 1);
  std::vector<int> hits(16, 0);
  const auto caller = std::this_thread::get_id();
  pool.Run(hits.size(), [&](std::size_t i) {
    hits[i] = std::this_thread::get_id() == caller ? 1 : -1;
  });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(WorkerPoolTest, NestedRunKeepsExactlyOnceSemantics) {
  WorkerPool pool(2);
  std::vector<std::atomic<int>> hits(4 * 8);
  for (auto& h : hits) h = 0;
  pool.Run(4, [&](std::size_t outer) {
    // A worker calling back into its own pool must not deadlock. The inner
    // fan-out publishes tickets to this worker's own deque — idle workers
    // may steal them — and the calling worker joins until the inner task
    // completes. Every inner job still runs exactly once.
    pool.Run(8, [&](std::size_t inner) { ++hits[outer * 8 + inner]; });
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], 1) << "job " << i;
  }
}

TEST(WorkerPoolTest, NestedRunFromEveryWorkerStress) {
  // Three levels of nesting from every participant at once: the
  // refcounted task blocks, per-worker deques, and the injection queue
  // all churn concurrently. Run under TSan in CI; the assertion here is
  // exactly-once completion, the sanitizer checks the rest.
  WorkerPool pool(4);
  constexpr std::size_t kOuter = 4, kMid = 4, kInner = 8;
  for (int iter = 0; iter < 8; ++iter) {
    std::vector<std::atomic<int>> hits(kOuter * kMid * kInner);
    for (auto& h : hits) h = 0;
    pool.Run(kOuter, [&](std::size_t o) {
      pool.Run(kMid, [&](std::size_t m) {
        pool.Run(kInner, [&](std::size_t i) {
          ++hits[(o * kMid + m) * kInner + i];
        });
      });
    });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i], 1) << "iter " << iter << " job " << i;
    }
  }
}

TEST(WorkerPoolTest, MaxWorkersCapsParticipants) {
  WorkerPool pool(3);
  std::vector<std::thread::id> by_job(64);
  pool.Run(by_job.size(),
           [&](std::size_t i) { by_job[i] = std::this_thread::get_id(); }, 2);
  const std::set<std::thread::id> distinct(by_job.begin(), by_job.end());
  EXPECT_LE(distinct.size(), 2u);
}

TEST(WorkerPoolTest, FirstJobExceptionPropagatesAndPoolSurvives) {
  WorkerPool pool(2);
  EXPECT_THROW(
      pool.Run(32,
               [&](std::size_t i) {
                 if (i == 7) throw InvalidArgument("job 7 failed");
               }),
      InvalidArgument);
  // The pool stays usable after a failed fan-out.
  std::atomic<int> done{0};
  pool.Run(8, [&](std::size_t) { ++done; });
  EXPECT_EQ(done, 8);
}

TEST(WorkerPoolTest, SharedPoolIsOneInstance) {
  WorkerPool& a = WorkerPool::Shared();
  WorkerPool& b = WorkerPool::Shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.parallelism(), 1);
}

// --- ShardPlan --------------------------------------------------------------

// Every tile in exactly one shard, shards contiguous and ordered, lookup
// consistent with the ranges.
void ExpectValidPartition(const ShardPlan& plan, int n_tiles, int shards) {
  ASSERT_EQ(plan.shard_count(), shards);
  EXPECT_EQ(plan.begin(0), 0);
  EXPECT_EQ(plan.end(shards - 1), n_tiles);
  for (int k = 0; k < shards; ++k) {
    EXPECT_LE(plan.begin(k), plan.end(k)) << "shard " << k;
    if (k > 0) EXPECT_EQ(plan.begin(k), plan.end(k - 1)) << "shard " << k;
    for (int t = plan.begin(k); t < plan.end(k); ++t) {
      EXPECT_EQ(plan.ShardOfTile(t), k) << "tile " << t;
    }
  }
}

TEST(ShardPlanTest, EvenPolicyPartitionsAnyShape) {
  for (const int n_tiles : {1, 7, 64, 100}) {
    for (const int shards : {1, 2, 3, 5, 7, 16, 200}) {
      ShardPlan plan;
      plan.Reset(n_tiles, shards, ShardPolicy::kEven, {});
      ExpectValidPartition(plan, n_tiles, shards);
    }
  }
}

TEST(ShardPlanTest, BalancedPolicyPartitionsRandomWeights) {
  Xoshiro256ss rng(42);
  for (const int n_tiles : {1, 9, 144}) {
    std::vector<std::uint32_t> weights(n_tiles);
    std::uint64_t total = 0;
    for (auto& w : weights) {
      w = static_cast<std::uint32_t>(rng.NextBelow(50));
      total += w;
    }
    for (const int shards : {1, 2, 3, 5, 7, 16}) {
      ShardPlan plan;
      plan.Reset(n_tiles, shards, ShardPolicy::kBalanced, weights);
      ExpectValidPartition(plan, n_tiles, shards);
      // Balance: a shard exceeds its fair share by at most one tile's
      // weight (the greedy cut overshoots by at most the tile it closed
      // on).
      std::uint32_t max_w = 0;
      for (const std::uint32_t w : weights) max_w = std::max(max_w, w);
      for (int k = 0; k < plan.shard_count(); ++k) {
        std::uint64_t load = 0;
        for (int t = plan.begin(k); t < plan.end(k); ++t) load += weights[t];
        EXPECT_LE(load, total / static_cast<std::uint64_t>(shards) + max_w + 1)
            << "shard " << k << " of " << shards << ", tiles " << n_tiles;
      }
    }
  }
}

TEST(ShardPlanTest, MoreShardsThanTilesLeavesTrailingShardsEmpty) {
  std::vector<std::uint32_t> weights(3, 1);
  ShardPlan plan;
  plan.Reset(3, 8, ShardPolicy::kBalanced, weights);
  ExpectValidPartition(plan, 3, 8);
}

// --- Engine: parallel == serial, bit for bit --------------------------------

void SplitTxListeners(std::size_t n, int period, std::vector<std::size_t>& tx,
                      std::vector<std::size_t>& listeners) {
  tx.clear();
  listeners.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (i % static_cast<std::size_t>(period) == 0) {
      tx.push_back(i);
    } else {
      listeners.push_back(i);
    }
  }
}

// Parallel decomposition reorders no floating-point operation, so the
// comparison is exact — not a tolerance check.
void ExpectBitIdentical(const std::vector<Reception>& serial,
                        const std::vector<Reception>& par,
                        const std::string& label) {
  ASSERT_EQ(serial.size(), par.size()) << label;
  for (std::size_t k = 0; k < serial.size(); ++k) {
    EXPECT_EQ(serial[k].listener, par[k].listener) << label << " k=" << k;
    EXPECT_EQ(serial[k].sender, par[k].sender) << label << " k=" << k;
    EXPECT_EQ(serial[k].sinr, par[k].sinr) << label << " k=" << k;
  }
}

Network MakeUniformNet(int n, double side, double shadowing_spread,
                       std::uint64_t seed) {
  Params params = Params::Default();
  params.id_space = 1 << 17;
  auto pts = workload::UniformSquare(n, side, seed);
  std::vector<NodeId> ids(pts.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<NodeId>(2 * i + 3);  // non-sequential ids
  }
  return Network(std::move(pts), std::move(ids), params,
                 Shadowing{shadowing_spread, /*seed=*/99});
}

void ExpectParallelMatchesSerial(const Network& net, Engine::Options base,
                                 const std::vector<int>& thread_counts,
                                 const std::string& label) {
  Engine::Options serial_opts = base;
  serial_opts.threads = 1;
  const Engine serial(net, serial_opts);
  std::vector<std::size_t> tx, listeners;
  std::vector<Reception> want, got;
  for (const int period : {2, 7}) {
    SplitTxListeners(net.size(), period, tx, listeners);
    serial.StepInto(tx, listeners, want);
    for (const int threads : thread_counts) {
      Engine::Options par_opts = base;
      par_opts.threads = threads;
      const Engine par(net, par_opts);
      EXPECT_EQ(par.threads(), threads);
      par.StepInto(tx, listeners, got);
      ExpectBitIdentical(
          want, got,
          label + " period=" + std::to_string(period) +
              " threads=" + std::to_string(threads));
      if (threads > 1 && !listeners.empty()) {
        EXPECT_GT(par.stats().parallel_rounds, 0)
            << label << ": round was not actually dispatched";
      }
      // Pipelined variant: disclosing the next round ahead of time must be
      // invisible in the output. In grid mode the speculation path must
      // actually be taken; in exact mode the disclosure is ignored and the
      // results still match.
      if (threads > 1) {
        Engine::Options piped_opts = base;
        piped_opts.threads = threads;
        piped_opts.pipeline = true;
        const Engine piped(net, piped_opts);
        for (int r = 0; r < 3; ++r) {
          piped.SetNextRound(tx, listeners);
          piped.StepInto(tx, listeners, got);
          ExpectBitIdentical(
              want, got,
              label + " piped period=" + std::to_string(period) +
                  " threads=" + std::to_string(threads) +
                  " r=" + std::to_string(r));
        }
        if (piped.pipeline_enabled() && !listeners.empty()) {
          EXPECT_GT(piped.stats().rounds_pipelined, 0)
              << label << ": disclosure was never consumed";
        } else {
          EXPECT_EQ(piped.stats().rounds_pipelined, 0) << label;
        }
      }
    }
  }
}

TEST(ParallelEngineTest, GridBitIdenticalAcrossThreadCounts) {
  const Network net = MakeUniformNet(700, 13.0, 0.0, 1234);
  ExpectParallelMatchesSerial(net, {.mode = Engine::Mode::kGrid},
                              {1, 2, 3, 5, 7, 8, 16}, "grid");
}

TEST(ParallelEngineTest, ExactBitIdenticalAcrossThreadCounts) {
  const Network net = MakeUniformNet(400, 10.0, 0.0, 99);
  ExpectParallelMatchesSerial(net, {.mode = Engine::Mode::kExact},
                              {1, 2, 3, 5, 7, 8, 16}, "exact");
}

TEST(ParallelEngineTest, ShadowingModelTakesTheVirtualPathIdentically) {
  // Shadowing defeats the devirtualized kernel: grid mode resolves through
  // the virtual per-listener fallback, whose parallel form must also be
  // bit-identical.
  const Network net = MakeUniformNet(500, 11.0, 0.4, 7);
  ExpectParallelMatchesSerial(net, {.mode = Engine::Mode::kGrid},
                              {2, 3, 8}, "grid+shadowing");
}

TEST(ParallelEngineTest, OddShardCountsOnFewTiles) {
  // A huge tile side leaves very few tiles — shard counts above the tile
  // count must produce empty shards, not wrong answers.
  const Network net = MakeUniformNet(300, 8.0, 0.0, 31);
  ExpectParallelMatchesSerial(net, {.mode = Engine::Mode::kGrid, .cell = 4.0},
                              {3, 5, 7, 16}, "few-tiles");
}

TEST(ParallelEngineTest, EvenShardPolicyAlsoMatches) {
  const Network net = MakeUniformNet(420, 10.0, 0.0, 88);
  Engine::Options opts{.mode = Engine::Mode::kGrid};
  opts.shard_policy = ShardPolicy::kEven;
  ExpectParallelMatchesSerial(net, opts, {2, 5}, "even-policy");
}

TEST(ParallelEngineTest, TileBoundaryStress) {
  // Positions pinned to exact tile-grid lines (multiples of the cell side,
  // including the coverage corners) exercise the boundary ownership of
  // TileAt; sharding must agree with serial no matter which side of a cut
  // a boundary tile lands on.
  constexpr double kCell = 2.0;
  constexpr double kSide = 10.0;
  Xoshiro256ss rng(2024);
  std::vector<Vec2> pts;
  std::vector<NodeId> ids;
  int next_id = 1;
  for (int gx = 0; gx <= 5; ++gx) {
    for (int gy = 0; gy <= 5; ++gy) {
      pts.push_back({gx * kCell, gy * kCell});  // every grid-line crossing
      ids.push_back(next_id++);
    }
  }
  for (int i = 0; i < 264; ++i) {  // random mix: on-line and interior
    const double x = rng.NextBelow(2) == 0
                         ? kCell * static_cast<double>(rng.NextBelow(6))
                         : kSide * rng.NextDouble();
    const double y = rng.NextBelow(2) == 0
                         ? kCell * static_cast<double>(rng.NextBelow(6))
                         : kSide * rng.NextDouble();
    pts.push_back({x, y});
    ids.push_back(next_id++);
  }
  Params params = Params::Default();
  params.id_space = 1 << 16;
  const Network net(std::move(pts), std::move(ids), params);
  ExpectParallelMatchesSerial(net, {.mode = Engine::Mode::kGrid, .cell = kCell},
                              {2, 3, 7}, "tile-boundary");
}

TEST(ParallelEngineTest, MovingChurningNetworkStaysIdentical) {
  const int n = 500;
  const double side = 11.0;
  Network net = MakeUniformNet(n, side, 0.0, 555);
  Engine::Options base{.mode = Engine::Mode::kGrid};
  base.coverage = Box{{0.0, 0.0}, {side, side}};
  Engine::Options par_opts = base;
  par_opts.threads = 3;
  // Non-const: index maintenance (SyncIndex / IndexErase / IndexInsert)
  // mutates the engines' grids.
  Engine serial(net, base);
  Engine par(net, par_opts);

  Xoshiro256ss rng(777);
  std::vector<char> active(n, 1);
  std::vector<Vec2> pos = net.positions();
  std::vector<std::size_t> tx, listeners;
  std::vector<Reception> want, got;
  for (int epoch = 0; epoch < 6; ++epoch) {
    // Random walk inside the coverage box.
    for (int i = 0; i < n; ++i) {
      if (!active[i]) continue;
      pos[i].x = std::min(side, std::max(0.0, pos[i].x +
                                                  0.6 * (rng.NextDouble() - 0.5)));
      pos[i].y = std::min(side, std::max(0.0, pos[i].y +
                                                  0.6 * (rng.NextDouble() - 0.5)));
    }
    net.SetPositions(pos);
    serial.SyncIndex();
    par.SyncIndex();
    // Churn: ~5% leave, previously-left nodes rejoin at fresh positions.
    for (int i = 0; i < n; ++i) {
      if (active[i] && rng.NextBelow(20) == 0) {
        active[i] = 0;
        serial.IndexErase(i);
        par.IndexErase(i);
      } else if (!active[i] && rng.NextBelow(4) == 0) {
        const Vec2 p{side * rng.NextDouble(), side * rng.NextDouble()};
        pos[i] = p;
        net.SetPosition(i, p);
        active[i] = 1;
        serial.IndexInsert(i);
        par.IndexInsert(i);
      }
    }
    tx.clear();
    listeners.clear();
    for (int i = 0; i < n; ++i) {
      if (!active[i]) continue;
      (i % 5 == epoch % 5 ? tx : listeners).push_back(i);
    }
    serial.StepInto(tx, listeners, want);
    par.StepInto(tx, listeners, got);
    ExpectBitIdentical(want, got, "epoch " + std::to_string(epoch));
  }
  EXPECT_GT(par.stats().parallel_rounds, 0);
}

TEST(ParallelEngineTest, SmallRoundsFallBackToSerialExecution) {
  const Network net = MakeUniformNet(64, 4.0, 0.0, 3);
  Engine::Options opts{.mode = Engine::Mode::kGrid};
  opts.threads = 8;
  const Engine par(net, opts);
  const std::vector<std::size_t> tx = {0, 1, 2};
  // 4 listeners < kMinListenersPerShard * 8: not worth a dispatch.
  const std::vector<std::size_t> listeners = {10, 11, 12, 13};
  const Engine serial(net, {.mode = Engine::Mode::kGrid});
  ExpectBitIdentical(serial.Step(tx, listeners), par.Step(tx, listeners),
                     "small round");
  EXPECT_EQ(par.stats().parallel_rounds, 0);
  EXPECT_EQ(par.stats().parallel_small_rounds, 1);
}

TEST(ParallelEngineTest, SingleTileGridRunsSeriallyInsteadOfIdleShards) {
  // cell >= side leaves one tile: the domain cannot be decomposed, so the
  // round must skip the dispatch (idle workers would be pure overhead)
  // and still produce serial results.
  const Network net = MakeUniformNet(128, 4.0, 0.0, 21);
  Engine::Options opts{.mode = Engine::Mode::kGrid, .cell = 8.0};
  opts.threads = 4;
  const Engine par(net, opts);
  const Engine serial(net, {.mode = Engine::Mode::kGrid, .cell = 8.0});
  std::vector<std::size_t> tx, listeners;
  SplitTxListeners(net.size(), 4, tx, listeners);
  ExpectBitIdentical(serial.Step(tx, listeners), par.Step(tx, listeners),
                     "one tile");
  EXPECT_EQ(par.stats().parallel_rounds, 0);
  EXPECT_EQ(par.stats().parallel_small_rounds, 1);
}

TEST(ParallelEngineTest, ShardLoadsAccountForEveryListener) {
  const Network net = MakeUniformNet(600, 12.0, 0.0, 11);
  Engine::Options opts{.mode = Engine::Mode::kGrid};
  opts.threads = 4;
  const Engine par(net, opts);
  std::vector<std::size_t> tx, listeners;
  SplitTxListeners(net.size(), 3, tx, listeners);
  std::vector<Reception> out;
  const int rounds = 5;
  for (int r = 0; r < rounds; ++r) par.StepInto(tx, listeners, out);
  const auto& st = par.stats();
  EXPECT_EQ(st.parallel_rounds, rounds);
  ASSERT_EQ(st.shard_listeners.size(), 4u);
  std::int64_t total = 0;
  for (const std::int64_t l : st.shard_listeners) total += l;
  EXPECT_EQ(total, static_cast<std::int64_t>(listeners.size()) * rounds);
}

TEST(ParallelEngineTest, SweepTailDonatesIdleWorkersToNestedEngines) {
  // Models a sweep's tail: an outer fan-out with fewer jobs than pool
  // participants leaves workers idle while the last runs' engines grind.
  // Each engine publishes its shard tickets to its own worker's deque, so
  // the idle workers steal them — nested rounds scale instead of running
  // inline. The steal counter only counts deque steals, so a nonzero total
  // proves a donated worker executed another engine's shard.
  WorkerPool pool(3);
  const Network net = MakeUniformNet(700, 13.0, 0.0, 1234);
  std::vector<std::size_t> tx, listeners;
  SplitTxListeners(net.size(), 7, tx, listeners);
  const Engine serial(net, {.mode = Engine::Mode::kGrid});
  std::vector<Reception> want;
  serial.StepInto(tx, listeners, want);

  Engine::Options opts{.mode = Engine::Mode::kGrid};
  opts.threads = 3;
  opts.pool = &pool;
  const Engine a(net, opts);
  const Engine b(net, opts);
  std::vector<Reception> got_a, got_b;
  // One of the two outer jobs may land on the caller thread (whose nested
  // tickets go through the injection queue and are never counted as
  // steals), and a worker can drain its own deque before anyone steals —
  // so retry the fan-out until a steal is observed. In practice the first
  // batch is enough; the bound only caps a pathological scheduler.
  std::atomic<std::int64_t> rounds{0};
  for (int batch = 0; batch < 40; ++batch) {
    pool.Run(2, [&](std::size_t job) {
      const Engine& eng = job == 0 ? a : b;
      auto& got = job == 0 ? got_a : got_b;
      for (int r = 0; r < 8; ++r) {
        got.clear();
        eng.StepInto(tx, listeners, got);
        ++rounds;
      }
    });
    ExpectBitIdentical(want, got_a, "stolen-shards A");
    ExpectBitIdentical(want, got_b, "stolen-shards B");
    if (a.stats().steal_count + b.stats().steal_count > 0) break;
  }
  EXPECT_EQ(a.stats().parallel_rounds + b.stats().parallel_rounds, rounds)
      << "nested rounds must dispatch, not degrade to inline execution";
  EXPECT_GT(a.stats().steal_count + b.stats().steal_count, 0)
      << "no idle worker ever stole a nested shard ticket";
}

TEST(ParallelEngineTest, PipelineDiscardsStaleAndWrongSpeculation) {
  // The pipeline must never trade correctness for overlap: a speculative
  // prologue built against a mutated index (generation check) or from a
  // wrong disclosure (content check) is discarded and rebuilt fresh.
  const int n = 500;
  const double side = 11.0;
  Network net = MakeUniformNet(n, side, 0.0, 4242);
  Engine::Options base{.mode = Engine::Mode::kGrid};
  base.coverage = Box{{0.0, 0.0}, {side, side}};
  Engine serial(net, base);
  Engine::Options popts = base;
  popts.threads = 3;
  popts.pipeline = true;
  Engine piped(net, popts);
  ASSERT_TRUE(piped.pipeline_enabled());

  std::vector<std::size_t> tx, listeners, wrong_tx;
  SplitTxListeners(n, 5, tx, listeners);
  SplitTxListeners(n, 3, wrong_tx, listeners);
  SplitTxListeners(n, 5, tx, listeners);  // restore the matching pair
  std::vector<Reception> want, got;
  auto step_both = [&](const std::string& label) {
    serial.StepInto(tx, listeners, want);
    piped.StepInto(tx, listeners, got);
    ExpectBitIdentical(want, got, label);
  };

  // Round 1: truthful disclosure; its speculative build targets round 2.
  piped.SetNextRound(tx, listeners);
  step_both("round 1");
  // Mutation between rounds: the in-flight build read the old index, so
  // SyncIndex must abandon it (and the generation stamp would reject it).
  std::vector<Vec2> pos = net.positions();
  Xoshiro256ss rng(17);
  for (auto& p : pos) {
    p.x = std::min(side, std::max(0.0, p.x + 0.4 * (rng.NextDouble() - 0.5)));
    p.y = std::min(side, std::max(0.0, p.y + 0.4 * (rng.NextDouble() - 0.5)));
  }
  net.SetPositions(pos);
  serial.SyncIndex();
  piped.SyncIndex();
  // Round 2 discloses the WRONG transmitter set before stepping.
  piped.SetNextRound(wrong_tx, listeners);
  step_both("round 2 after mutation");
  // Round 3 steps the real sets: the wrong-guess speculation fails the
  // content check and is rebuilt.
  step_both("round 3 after wrong guess");
  EXPECT_EQ(piped.stats().rounds_pipelined, 0)
      << "stale or wrong speculation was consumed";

  // A truthful disclosure still works after all those rejections.
  piped.SetNextRound(tx, listeners);
  step_both("round 4");
  step_both("round 5");
  EXPECT_EQ(piped.stats().rounds_pipelined, 1);
}

// --- Scenario plumbing ------------------------------------------------------

TEST(ParallelScenarioTest, ParallelRunReportsSectionAndIdenticalMetrics) {
  scenario::ScenarioSpec spec;
  spec.topology_params.Set("n", "40");
  spec.topology_params.Set("side", "3.5");
  spec.sinr.id_space = 4096;

  const scenario::RunReport serial = RunScenario(spec, 1);
  ASSERT_TRUE(serial.ok) << serial.error;
  EXPECT_TRUE(serial.parallel.empty());

  spec.engine.threads = 3;
  const scenario::RunReport par = RunScenario(spec, 1);
  ASSERT_TRUE(par.ok) << par.error;
  ASSERT_FALSE(par.parallel.empty());
  EXPECT_EQ(par.parallel.threads, 3);
  EXPECT_GT(par.parallel.rounds_parallel, 0);
  EXPECT_EQ(par.parallel.shard_load.size(), 3u);
  EXPECT_GE(par.parallel.imbalance, 1.0);
  // The decomposition must not change a single metric.
  ASSERT_EQ(serial.metrics.entries().size(), par.metrics.entries().size());
  for (std::size_t i = 0; i < serial.metrics.entries().size(); ++i) {
    EXPECT_EQ(serial.metrics.entries()[i], par.metrics.entries()[i]);
  }
}

TEST(ParallelScenarioTest, SweepOccupyingThePoolStillShardsItsEngines) {
  // Pre-stealing, an engine inside an occupied pool ran its rounds inline
  // (a nested fan-out could not execute anywhere else, so dispatching was
  // pure overhead). With per-worker deques, nested shard tickets are
  // published where idle tail-end workers can steal them — so sweep runs
  // dispatch their rounds like any other engine, and every metric stays
  // identical to the serial sweep.
  scenario::ScenarioSpec spec;
  spec.topology_params.Set("n", "32");
  spec.topology_params.Set("side", "3");
  spec.sinr.id_space = 4096;
  spec.seeds = {1, 2};
  const std::vector<scenario::RunReport> serial = RunSweep(spec);

  spec.threads = 2;
  spec.engine.threads = 2;  // what --threads=2 sets
  const std::vector<scenario::RunReport> par = RunSweep(spec);
  ASSERT_EQ(serial.size(), par.size());
  for (std::size_t i = 0; i < par.size(); ++i) {
    ASSERT_TRUE(par[i].ok) << par[i].error;
    ASSERT_FALSE(par[i].parallel.empty());
    EXPECT_GT(par[i].parallel.rounds_parallel, 0)
        << "seed " << par[i].seed
        << ": engine refused to shard inside an occupied pool";
    ASSERT_EQ(serial[i].metrics.entries().size(),
              par[i].metrics.entries().size());
    for (std::size_t j = 0; j < serial[i].metrics.entries().size(); ++j) {
      EXPECT_EQ(serial[i].metrics.entries()[j], par[i].metrics.entries()[j]);
    }
  }
}

TEST(ParallelScenarioTest, ThreadsFlagDrivesEngineAndRoundTrips) {
  const auto spec = scenario::ScenarioSpec::FromArgs(
      {"--topology=uniform:n=32,side=3", "--algo=clustering", "--seeds=1",
       "--threads=4"});
  EXPECT_EQ(spec.threads, 4);
  EXPECT_EQ(spec.engine.threads, 4);
  EXPECT_EQ(scenario::ScenarioSpec::FromArgs(spec.ToArgs()), spec);
  // Same bounds as DCC_ENGINE_THREADS — an absurd shard count must fail
  // validation, not allocation.
  EXPECT_THROW(scenario::ScenarioSpec::FromArgs({"--threads=100000"}),
               InvalidArgument);
  EXPECT_THROW(scenario::ScenarioSpec::FromArgs({"--threads=-1"}),
               InvalidArgument);
}

TEST(ParallelScenarioTest, PipelineFlagDrivesEngineAndRoundTrips) {
  const auto spec = scenario::ScenarioSpec::FromArgs(
      {"--topology=uniform:n=32,side=3", "--algo=clustering", "--seeds=1",
       "--threads=2", "--pipeline=on"});
  EXPECT_TRUE(spec.engine.pipeline);
  EXPECT_EQ(scenario::ScenarioSpec::FromArgs(spec.ToArgs()), spec);
  EXPECT_FALSE(
      scenario::ScenarioSpec::FromArgs({"--pipeline=off"}).engine.pipeline);
  EXPECT_THROW(scenario::ScenarioSpec::FromArgs({"--pipeline=maybe"}),
               InvalidArgument);
}

}  // namespace
}  // namespace dcc
