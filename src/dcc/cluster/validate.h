// Geometric validators — the test oracles that pin the paper's
// postconditions to the actual node positions. Protocol code never sees
// these (they read the ground-truth geometry).
#pragma once

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dcc/sinr/network.h"

namespace dcc::cluster {

struct ClusteringCheck {
  std::size_t members = 0;
  std::size_t assigned = 0;
  int num_clusters = 0;
  int max_cluster_size = 0;
  // Max distance from a member to its cluster center (center = the node
  // whose id equals the cluster id). r-clustering condition (i).
  double max_radius = 0.0;
  bool centers_exist = true;
  // Min pairwise distance between centers. r-clustering condition (ii):
  // must be >= 1 - eps.
  double min_center_sep = std::numeric_limits<double>::infinity();
  // Max number of distinct clusters intersecting any (node-centered) unit
  // ball. Paper contribution (ii): O(1).
  int max_clusters_per_unit_ball = 0;

  bool ValidRClustering(double r, double eps) const {
    return assigned == members && centers_exist && max_radius <= r + 1e-9 &&
           min_center_sep >= (1.0 - eps) - 1e-9;
  }
};

ClusteringCheck CheckClustering(const sinr::Network& net,
                                const std::vector<std::size_t>& members,
                                const std::vector<ClusterId>& cluster_of);

// Close pairs per Definition 1 among `members`. In clustered mode pairs
// must share a cluster and r is the clustering radius; in unclustered mode
// pass cluster_of filled with a single value and r = 1.
std::vector<std::pair<std::size_t, std::size_t>> FindClosePairs(
    const sinr::Network& net, const std::vector<std::size_t>& members,
    const std::vector<ClusterId>& cluster_of, int gamma, double r);

// Density of a member subset: max members in any member-centered unit ball.
int SubsetDensity(const sinr::Network& net,
                  const std::vector<std::size_t>& members);

// Max members of any single cluster (clustered density, Section 2).
int MaxClusterSize(const sinr::Network& net,
                   const std::vector<std::size_t>& members,
                   const std::vector<ClusterId>& cluster_of);

struct LabelingCheck {
  int max_label = 0;
  // Max multiplicity of one label within one cluster — the "c" of
  // c-imperfect labeling.
  int max_multiplicity = 0;
  bool all_labeled = true;
};

LabelingCheck CheckLabeling(const sinr::Network& net,
                            const std::vector<std::size_t>& members,
                            const std::vector<ClusterId>& cluster_of,
                            const std::unordered_map<NodeId, int>& labels);

}  // namespace dcc::cluster
