#include "dcc/mobility/churn.h"
#include "dcc/mobility/models.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "dcc/common/rng.h"

namespace dcc::mobility {
namespace {

constexpr Box kWorld{{0.0, 0.0}, {10.0, 10.0}};

std::vector<Vec2> RandomPlacement(std::size_t n, std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({10.0 * rng.NextDouble(), 10.0 * rng.NextDouble()});
  }
  return pts;
}

bool InWorld(Vec2 p) {
  return p.x >= kWorld.lo.x && p.x <= kWorld.hi.x && p.y >= kWorld.lo.y &&
         p.y <= kWorld.hi.y;
}

template <typename Model>
void ExpectConfined(Model& model, int steps) {
  auto pos = RandomPlacement(40, 1);
  const std::vector<char> active(pos.size(), 1);
  model.Init(pos);
  for (int s = 0; s < steps; ++s) {
    model.Step(1.0, pos, active);
    for (const Vec2 p : pos) {
      ASSERT_TRUE(InWorld(p)) << "(" << p.x << ", " << p.y << ") step " << s;
    }
  }
  for (std::size_t i = 0; i < pos.size(); ++i) {
    EXPECT_TRUE(InWorld(model.Respawn(i)));
  }
}

TEST(MobilityTest, WaypointStaysInWorld) {
  RandomWaypoint m({kWorld, 0.5, 3.0, 0.5}, 7);
  ExpectConfined(m, 50);
}

TEST(MobilityTest, GaussMarkovStaysInWorld) {
  GaussMarkov m({kWorld, 2.0, 1.0, 0.5}, 7);
  ExpectConfined(m, 50);
}

TEST(MobilityTest, GroupStaysInWorld) {
  ReferencePointGroup m({kWorld, 7, 0.5, 3.0, 0.0, 1.5}, 7);
  ExpectConfined(m, 50);
}

TEST(MobilityTest, WaypointRespectsSpeedBound) {
  const double vmax = 1.25;
  RandomWaypoint m({kWorld, 0.25, vmax, 0.0}, 3);
  auto pos = RandomPlacement(32, 2);
  auto prev = pos;
  const std::vector<char> active(pos.size(), 1);
  m.Init(pos);
  for (int s = 0; s < 30; ++s) {
    const double dt = 0.5 + 0.1 * s;
    m.Step(dt, pos, active);
    for (std::size_t i = 0; i < pos.size(); ++i) {
      EXPECT_LE(Dist(prev[i], pos[i]), vmax * dt + 1e-9);
    }
    prev = pos;
  }
}

TEST(MobilityTest, TrajectoriesAreSeedDeterministic) {
  const auto init = RandomPlacement(24, 4);
  const std::vector<char> active(init.size(), 1);
  const auto run = [&](std::uint64_t seed) {
    GaussMarkov m({kWorld, 1.0, 0.5, 0.5}, seed);
    auto pos = init;
    m.Init(pos);
    for (int s = 0; s < 20; ++s) m.Step(1.0, pos, active);
    return pos;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(MobilityTest, InactiveNodesDoNotMove) {
  RandomWaypoint m({kWorld, 0.5, 2.0, 0.0}, 5);
  auto pos = RandomPlacement(16, 6);
  std::vector<char> active(pos.size(), 1);
  for (std::size_t i = 0; i < active.size(); i += 2) active[i] = 0;
  m.Init(pos);
  const auto before = pos;
  for (int s = 0; s < 10; ++s) m.Step(1.0, pos, active);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    if (!active[i]) {
      EXPECT_EQ(pos[i], before[i]);
    } else {
      EXPECT_NE(pos[i], before[i]);
    }
  }
}

TEST(MobilityTest, GroupMembersStayCohesive) {
  const double radius = 1.25;
  ReferencePointGroup m({kWorld, 5, 0.5, 2.0, 0.0, radius}, 9);
  auto pos = RandomPlacement(25, 8);
  const std::vector<char> active(pos.size(), 1);
  m.Init(pos);
  for (int s = 0; s < 40; ++s) {
    m.Step(1.0, pos, active);
    // Every member sits within `radius` of its group's reference point, so
    // group-mates are within 2 * radius of each other (clamping into the
    // world box only ever pulls members closer to the interior).
    for (std::size_t g = 0; g < 5; ++g) {
      for (std::size_t i = 5 * g; i < 5 * g + 5; ++i) {
        for (std::size_t j = i + 1; j < 5 * g + 5; ++j) {
          EXPECT_LE(Dist(pos[i], pos[j]), 2.0 * radius + 1e-9);
        }
      }
    }
  }
}

TEST(MobilityTest, ExtremeSpeedsFoldInsteadOfHanging) {
  // A pathological (finite) speed must terminate in O(1) per node and
  // still confine positions — the reflection folds through the box period
  // rather than bouncing iteratively.
  GaussMarkov m({kWorld, 1.0e300, 0.0, 0.0}, 11);
  auto pos = RandomPlacement(8, 10);
  const std::vector<char> active(pos.size(), 1);
  m.Init(pos);
  for (int s = 0; s < 5; ++s) {
    m.Step(1.0, pos, active);
    for (const Vec2 p : pos) ASSERT_TRUE(InWorld(p));
  }
  EXPECT_THROW(
      GaussMarkov({kWorld, std::numeric_limits<double>::infinity(), 0.0, 0.0},
                  1),
      InvalidArgument);
}

TEST(MobilityTest, RejectsBadConfigs) {
  EXPECT_THROW(RandomWaypoint({kWorld, 0.0, 1.0, 0.0}, 1), InvalidArgument);
  EXPECT_THROW(RandomWaypoint({kWorld, 2.0, 1.0, 0.0}, 1), InvalidArgument);
  EXPECT_THROW(GaussMarkov({kWorld, 1.0, 0.5, 1.0}, 1), InvalidArgument);
  EXPECT_THROW(ReferencePointGroup({kWorld, 0, 0.5, 1.0, 0.0, 1.0}, 1),
               InvalidArgument);
}

TEST(ChurnTest, NeverDrainsTheNetwork) {
  ChurnProcess churn(50.0, 0.0, 3);  // leave probability ~ 1 per epoch
  std::vector<char> active(20, 1);
  ChurnProcess::Delta delta;
  for (int e = 0; e < 10; ++e) {
    churn.Step(1.0, active, delta);
  }
  int remaining = 0;
  for (const char a : active) remaining += a;
  EXPECT_EQ(remaining, 1);
}

TEST(ChurnTest, DeltaMatchesMaskChanges) {
  ChurnProcess churn(0.3, 0.4, 5);
  std::vector<char> active(64, 1);
  ChurnProcess::Delta delta;
  for (int e = 0; e < 25; ++e) {
    const auto before = active;
    churn.Step(1.0, active, delta);
    for (std::size_t i = 0; i < active.size(); ++i) {
      const bool left = before[i] && !active[i];
      const bool joined = !before[i] && active[i];
      EXPECT_EQ(left, std::find(delta.left.begin(), delta.left.end(), i) !=
                          delta.left.end());
      EXPECT_EQ(joined, std::find(delta.joined.begin(), delta.joined.end(),
                                  i) != delta.joined.end());
    }
  }
}

TEST(ChurnTest, ZeroRatesAreQuiescent) {
  ChurnProcess churn(0.0, 0.0, 6);
  std::vector<char> active(16, 1);
  active[3] = 0;
  ChurnProcess::Delta delta;
  churn.Step(1.0, active, delta);
  EXPECT_TRUE(delta.left.empty());
  EXPECT_TRUE(delta.joined.empty());
  EXPECT_EQ(active[3], 0);
}

}  // namespace
}  // namespace dcc::mobility
