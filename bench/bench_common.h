// Shared helpers for the table/figure regenerators.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "dcc/cluster/validate.h"
#include "dcc/common/table.h"
#include "dcc/sinr/engine.h"
#include "dcc/sinr/network.h"
#include "dcc/workload/generators.h"

namespace dcc::bench {

inline std::vector<std::size_t> AllIndices(const sinr::Network& net) {
  std::vector<std::size_t> all(net.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return all;
}

// Engine options for the regenerators, overridable without recompiling:
//   DCC_ENGINE_MODE = exact | grid | auto   (default auto)
//   DCC_ENGINE_CELL = <tile side>           (default: engine's heuristic)
inline sinr::Engine::Options EngineOptionsFromEnv() {
  sinr::Engine::Options opts;
  if (const char* mode = std::getenv("DCC_ENGINE_MODE")) {
    const std::string m(mode);
    if (m == "exact") {
      opts.mode = sinr::Engine::Mode::kExact;
    } else if (m == "grid") {
      opts.mode = sinr::Engine::Mode::kGrid;
    } else if (m != "auto" && !m.empty()) {
      std::cerr << "DCC_ENGINE_MODE: unknown mode '" << m << "', using auto\n";
    }
  }
  if (const char* cell = std::getenv("DCC_ENGINE_CELL")) {
    char* end = nullptr;
    const double v = std::strtod(cell, &end);
    if (end != cell && *end == '\0' && v > 0.0) {
      opts.cell = v;
    } else {
      std::cerr << "DCC_ENGINE_CELL: invalid value '" << cell
                << "', using the engine's heuristic\n";
    }
  }
  return opts;
}

inline void Banner(const std::string& title, const std::string& paper_ref,
                   const std::string& expectation) {
  std::cout << "\n=== " << title << " ===\n"
            << "paper: " << paper_ref << "\n"
            << "expected shape: " << expectation << "\n\n";
}

}  // namespace dcc::bench
