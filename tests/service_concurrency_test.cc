// The service under concurrent clients: N connections hammering shared
// (spec, seed) keys must observe byte-identical report bytes at every
// engine thread count, co-arriving cold misses must batch onto one build,
// and a fresh service instance must reproduce the exact bytes (the cache
// stores what a deterministic run produces — it never invents state).
// CI also runs this suite under -DDCC_SANITIZE=thread.
#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dcc/service/client.h"
#include "dcc/service/loadgen.h"
#include "dcc/service/service.h"

namespace {

using dcc::service::Client;
using dcc::service::LoadResult;
using dcc::service::LoadSpec;
using dcc::service::Service;

std::string TestSocket(const std::string& tag) {
  return "/tmp/dcc_service_conc." + std::to_string(::getpid()) + "." + tag +
         ".sock";
}

std::string SpecLine(int threads) {
  return "--topology=uniform:n=48,side=4 --algo=clustering --id-space=4096 "
         "--threads=" +
         std::to_string(threads);
}

TEST(ServiceConcurrencyTest, ByteIdentityAtEveryThreadCount) {
  for (const int threads : {1, 2, 4}) {
    const std::string tag = "ladder" + std::to_string(threads);
    std::string reference;
    {
      Service::Options opts;
      opts.socket_path = TestSocket(tag);
      Service service(opts);
      service.Start();

      LoadSpec load;
      load.socket_path = opts.socket_path;
      load.spec_lines = {SpecLine(threads)};
      load.seeds = {1, 2};
      load.connections = 6;
      load.requests = 60;
      const LoadResult r = dcc::service::RunLoad(load);
      EXPECT_EQ(r.errors, 0) << "threads=" << threads << ": "
                             << r.first_error;
      EXPECT_TRUE(r.reports_consistent)
          << "report bytes diverged at threads=" << threads;
      EXPECT_EQ(r.requests, 60);

      Client client(opts.socket_path);
      const Client::RunResult warm = client.Run(SpecLine(threads), 1);
      ASSERT_TRUE(warm.ok) << warm.error;
      EXPECT_EQ(warm.cached, "result");
      reference = warm.report;
    }
    // A brand-new service (cold caches) must rebuild the exact bytes.
    {
      Service::Options opts;
      opts.socket_path = TestSocket(tag + "b");
      Service service(opts);
      service.Start();
      Client client(opts.socket_path);
      const Client::RunResult cold = client.Run(SpecLine(threads), 1);
      ASSERT_TRUE(cold.ok) << cold.error;
      EXPECT_EQ(cold.cached, "none");
      EXPECT_EQ(cold.report, reference)
          << "cold rebuild diverged at threads=" << threads;
    }
  }
}

TEST(ServiceConcurrencyTest, CoArrivingMissesBatchOntoOneBuild) {
  Service::Options opts;
  opts.socket_path = TestSocket("batch");
  Service service(opts);
  service.Start();

  // Every connection asks for the SAME (spec, seed): whatever the
  // interleaving, exactly one run may execute.
  LoadSpec load;
  load.socket_path = opts.socket_path;
  load.spec_lines = {SpecLine(1)};
  load.seeds = {7};
  load.connections = 8;
  load.requests = 8;
  const LoadResult r = dcc::service::RunLoad(load);
  EXPECT_EQ(r.errors, 0) << r.first_error;
  EXPECT_TRUE(r.reports_consistent);

  const auto stats = service.Snapshot();
  EXPECT_EQ(stats.result_misses, 1)
      << "co-arriving identical requests must single-flight";
  EXPECT_EQ(stats.result_hits, 7);
  EXPECT_EQ(stats.topology_misses, 1);
}

TEST(ServiceConcurrencyTest, MixedWorkloadUnderSmallQueueStaysCorrect) {
  // A queue smaller than the client count forces the backpressure path.
  Service::Options opts;
  opts.socket_path = TestSocket("queue");
  opts.queue_capacity = 2;
  Service service(opts);
  service.Start();

  LoadSpec load;
  load.socket_path = opts.socket_path;
  load.spec_lines = {
      SpecLine(1),
      "--topology=uniform:n=48,side=4 --algo=local_broadcast "
      "--id-space=4096",
      "--topology=uniform:n=72,side=5 --algo=clustering --id-space=4096",
  };
  load.seeds = {1, 2};
  load.connections = 6;
  load.requests = 72;
  const LoadResult r = dcc::service::RunLoad(load);
  EXPECT_EQ(r.errors, 0) << r.first_error;
  EXPECT_TRUE(r.reports_consistent);

  const auto stats = service.Snapshot();
  EXPECT_LE(stats.queue_peak, 2);
  EXPECT_EQ(stats.queue_depth, 0);
  EXPECT_EQ(stats.result_misses, 6);  // one build per distinct pair
  EXPECT_EQ(stats.result_hits, 66);   // everything else was served
}

}  // namespace
