# Empty dependencies file for bench_selectors.
# This may be replaced when dependencies are built.
