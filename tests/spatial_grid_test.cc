#include "dcc/common/spatial_grid.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "dcc/common/rng.h"

namespace dcc {
namespace {

std::vector<Vec2> RandomPoints(int n, double side, std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  std::vector<Vec2> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pts.push_back({side * rng.NextDouble(), side * rng.NextDouble()});
  }
  return pts;
}

TEST(SpatialGridTest, MembersPartitionThePointSet) {
  const auto pts = RandomPoints(200, 10.0, 1);
  const SpatialGrid grid(pts, 1.5);
  std::vector<char> seen(pts.size(), 0);
  std::size_t total = 0;
  for (int t = 0; t < grid.tile_count(); ++t) {
    for (const std::size_t i : grid.Members(t)) {
      EXPECT_EQ(grid.TileOfPoint(i), t);
      EXPECT_FALSE(seen[i]);
      seen[i] = 1;
      ++total;
    }
  }
  EXPECT_EQ(total, pts.size());
}

TEST(SpatialGridTest, OccupiedListsExactlyNonEmptyTiles) {
  const auto pts = RandomPoints(64, 8.0, 2);
  const SpatialGrid grid(pts, 2.0);
  std::vector<int> expect;
  for (int t = 0; t < grid.tile_count(); ++t) {
    if (!grid.Members(t).empty()) expect.push_back(t);
  }
  EXPECT_EQ(grid.occupied(), expect);
}

TEST(SpatialGridTest, PointToTileBoundsAreSound) {
  const auto pts = RandomPoints(300, 12.0, 3);
  const SpatialGrid grid(pts, 1.0);
  const auto probes = RandomPoints(20, 14.0, 4);
  for (const Vec2 p : probes) {
    for (const int t : grid.occupied()) {
      const double lo = grid.DistLo(p, t);
      const double hi = grid.DistHi(p, t);
      for (const std::size_t i : grid.Members(t)) {
        const double d = Dist(p, pts[i]);
        EXPECT_LE(lo, d + 1e-12);
        EXPECT_GE(hi, d - 1e-12);
      }
    }
  }
}

TEST(SpatialGridTest, TileToTileBoundsAreSound) {
  const auto pts = RandomPoints(300, 12.0, 5);
  const SpatialGrid grid(pts, 1.3);
  for (const int a : grid.occupied()) {
    for (const int b : grid.occupied()) {
      const double lo = grid.TileDistLo(a, b);
      const double hi = grid.TileDistHi(a, b);
      for (const std::size_t i : grid.Members(a)) {
        for (const std::size_t j : grid.Members(b)) {
          const double d = Dist(pts[i], pts[j]);
          EXPECT_LE(lo, d + 1e-12);
          EXPECT_GE(hi, d - 1e-12);
        }
      }
    }
  }
}

TEST(SpatialGridTest, DegenerateSets) {
  // Empty set: one tile, no members.
  const SpatialGrid empty(std::span<const Vec2>{}, 1.0);
  EXPECT_EQ(empty.tile_count(), 1);
  EXPECT_TRUE(empty.occupied().empty());

  // Co-located points land in the same tile.
  std::vector<Vec2> same(5, Vec2{3.0, -2.0});
  const SpatialGrid grid(same, 0.7);
  EXPECT_EQ(grid.tile_count(), 1);
  EXPECT_EQ(grid.Members(0).size(), 5u);

  // Collinear points: a 1-row grid.
  std::vector<Vec2> line;
  for (int i = 0; i < 10; ++i) line.push_back({static_cast<double>(i), 0.0});
  const SpatialGrid lg(line, 1.0);
  EXPECT_EQ(lg.ny(), 1);
  EXPECT_GE(lg.nx(), 10);
}

TEST(SpatialGridTest, RejectsNonPositiveCell) {
  const auto pts = RandomPoints(4, 1.0, 6);
  EXPECT_THROW(SpatialGrid(pts, 0.0), InvalidArgument);
}

}  // namespace
}  // namespace dcc
