// Theorem 1 ablation — Clustering rounds vs density Gamma and id space N.
//
// Expected shape: rounds ~ Gamma * log N * log* N. We sweep Gamma at fixed
// N (rounds/Gamma should stay within a logarithmic band) and N at fixed
// Gamma (rounds should grow ~log N), and validate every produced
// clustering geometrically.
#include "bench_common.h"
#include "dcc/cluster/clustering.h"

namespace dcc {
namespace {

void Run() {
  bench::Banner("Clustering scaling (Theorem 1)",
                "Jurdzinski et al., PODC'18, Theorem 1",
                "rounds/Gamma flat-ish across the Gamma sweep; rounds ~log N "
                "across the N sweep; all clusterings valid");

  std::cout << "-- Gamma sweep (N = 4096, fixed area) --\n";
  {
    sinr::Params params = sinr::Params::Default();
    params.id_space = 1 << 12;
    const auto prof = cluster::Profile::Practical(params.id_space);
    Table t({"n", "Gamma", "rounds", "rounds/Gamma", "clusters", "valid"});
    for (const int n : {48, 96, 192, 288, 384}) {
      auto pts = workload::UniformSquare(n, 5.0, 7 + n);
      const auto net = workload::MakeNetwork(pts, params, 3 + n);
      const auto all = bench::AllIndices(net);
      const int gamma = cluster::SubsetDensity(net, all);
      sim::Exec ex(net, bench::EngineOptionsFromEnv());
      const auto res = cluster::BuildClustering(
          ex, prof, all, gamma, static_cast<std::uint64_t>(n));
      const auto chk = cluster::CheckClustering(net, all, res.cluster_of);
      t.AddRow({Table::Num(std::int64_t{n}), Table::Num(std::int64_t{gamma}),
                Table::Num(res.rounds),
                Table::Num(static_cast<double>(res.rounds) /
                           std::max(gamma, 1)),
                Table::Num(std::int64_t{chk.num_clusters}),
                chk.ValidRClustering(1.0, params.eps) && res.unassigned == 0
                    ? "yes"
                    : "NO"});
    }
    t.Print(std::cout);
  }

  std::cout << "\n-- N sweep (same 128-node workload, growing id space) --\n";
  {
    Table t({"N", "rounds", "rounds/lnN", "valid"});
    for (const int logN : {10, 14, 18, 22}) {
      sinr::Params params = sinr::Params::Default();
      params.id_space = 1ll << logN;
      const auto prof = cluster::Profile::Practical(params.id_space);
      auto pts = workload::UniformSquare(128, 4.5, 77);
      const auto net = workload::MakeNetwork(pts, params, 31);
      const auto all = bench::AllIndices(net);
      const int gamma = cluster::SubsetDensity(net, all);
      sim::Exec ex(net, bench::EngineOptionsFromEnv());
      const auto res = cluster::BuildClustering(ex, prof, all, gamma, 9);
      const auto chk = cluster::CheckClustering(net, all, res.cluster_of);
      t.AddRow({Table::Num(params.id_space), Table::Num(res.rounds),
                Table::Num(static_cast<double>(res.rounds) /
                           (0.693 * logN)),
                chk.ValidRClustering(1.0, params.eps) && res.unassigned == 0
                    ? "yes"
                    : "NO"});
    }
    t.Print(std::cout);
  }
}

}  // namespace
}  // namespace dcc

int main() {
  dcc::Run();
  return 0;
}
