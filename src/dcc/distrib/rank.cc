#include "dcc/distrib/rank.h"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "dcc/common/types.h"
#include "dcc/common/wire.h"
#include "dcc/distrib/protocol.h"
#include "dcc/obs/trace.h"
#include "dcc/scenario/scenario.h"
#include "dcc/sinr/engine.h"

namespace dcc::distrib {

namespace {

// Whitespace-split (the spec line is ScenarioSpec::ToString() output, which
// joins flags with single spaces; extra whitespace is tolerated).
std::vector<std::string> SplitLine(const std::string& line) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && line[pos] == ' ') ++pos;
    std::size_t end = pos;
    while (end < line.size() && line[end] != ' ') ++end;
    if (end > pos) out.push_back(line.substr(pos, end - pos));
    pos = end;
  }
  return out;
}

// The rank's whole mutable state: the network replica and the grid engine
// over it.
struct Replica {
  std::uint32_t rank = 0;
  double far_start = 0.0;
  std::optional<sinr::Network> net;
  std::optional<sinr::Engine> engine;

  // Round scratch, reused across rounds.
  std::vector<std::size_t> tx;
  std::vector<int> tx_tile;
  std::vector<std::uint32_t> tx_count;
  std::vector<int> occupied_tx;
  std::vector<int> listener_tiles;
  std::vector<std::size_t> listeners;
  std::vector<std::uint32_t> ordinals;
  std::vector<std::pair<std::uint32_t, sinr::Reception>> pending;
};

void HandleHello(Replica& rep, const HelloMsg& m, int fd) {
  if (m.version != kProtocolVersion) {
    throw wire::WireError("rank: protocol version " +
                          std::to_string(m.version) + " (expected " +
                          std::to_string(kProtocolVersion) + ")");
  }
  rep.rank = m.rank;
  rep.far_start = m.far_start;
  if (m.trace) {
    // Record rank events directly in the coordinator's clock domain: the
    // hello carries the coordinator's raw steady clock stamped just before
    // the send, so (theirs - ours) corrects every local timestamp. Pure
    // observation — nothing on the round path reads the tracer.
    obs::Tracer::Global().Enable();
    obs::Tracer::Global().SetClockOffset(m.trace_clock_ns - obs::NowRawNs());
  }
  const auto spec = scenario::ScenarioSpec::FromArgs(SplitLine(m.spec_line));
  rep.net.emplace(scenario::BuildScenarioNetwork(spec, m.seed));

  sinr::Engine::Options opts;
  opts.mode = sinr::Engine::Mode::kGrid;
  opts.cell = m.cell;
  if (m.has_coverage) opts.coverage = m.coverage;
  opts.threads = 1;
  // The only engine options a coordinator ships: perf-only knobs whose
  // contract is bit-identical receptions.
  opts.farfield = spec.engine.farfield;
  opts.prologue_cache = spec.engine.prologue_cache;
  rep.engine.emplace(*rep.net, opts);

  const SpatialGrid* grid = rep.engine->grid();
  if (rep.net->size() != m.n || grid == nullptr ||
      static_cast<std::uint64_t>(grid->tile_count()) != m.tile_count ||
      rep.engine->far_start() != m.far_start) {
    throw wire::WireError(
        "rank: replica shape mismatch (n=" + std::to_string(rep.net->size()) +
        " tiles=" +
        std::to_string(grid != nullptr ? grid->tile_count() : 0) +
        ", coordinator expects n=" + std::to_string(m.n) +
        " tiles=" + std::to_string(m.tile_count) + ")");
  }

  HelloAckMsg ack;
  ack.rank = m.rank;
  ack.n = rep.net->size();
  ack.tile_count = m.tile_count;
  wire::WriteFrame(fd, Encode(ack));
}

void HandlePositions(Replica& rep, const PositionsMsg& m) {
  if (!rep.net || m.positions.size() != rep.net->size()) {
    throw wire::WireError("rank: positions frame for " +
                          std::to_string(m.positions.size()) +
                          " nodes (replica has " +
                          std::to_string(rep.net ? rep.net->size() : 0) + ")");
  }
  rep.net->SetPositions(m.positions);
  const SpatialGrid& grid = *rep.engine->grid();
  for (std::size_t i = 0; i < m.live.size(); ++i) {
    const bool in_index = grid.Contains(i);
    if (m.live[i] && !in_index) {
      rep.engine->IndexInsert(i);
    } else if (!m.live[i] && in_index) {
      rep.engine->IndexErase(i);
    }
  }
  rep.engine->SyncIndex();
}

// The shipped halo must match what this rank derives from its own replica:
// same near tile set, same CSR members, bit-identical positions, same
// far-field counts. A mismatch means the two address spaces disagree about
// the network — the round must fail loudly, because proceeding would skew
// reception bits silently.
void VerifyHalo(const Replica& rep, const RoundMsg& m) {
  const SpatialGrid& grid = *rep.engine->grid();
  const std::vector<int> near = NearTxTiles(
      grid, rep.listener_tiles, rep.occupied_tx, rep.far_start);
  if (near.size() != m.near.size()) {
    throw wire::WireError("rank: halo disagreement: " +
                          std::to_string(m.near.size()) +
                          " shipped near tiles, derived " +
                          std::to_string(near.size()));
  }
  std::size_t csr_cursor = 0;  // members arrive grouped per tile
  for (std::size_t i = 0; i < near.size(); ++i) {
    const TxSlice& slice = m.near[i];
    if (static_cast<int>(slice.tile) != near[i]) {
      throw wire::WireError("rank: halo disagreement at near tile " +
                            std::to_string(slice.tile) + " (derived " +
                            std::to_string(near[i]) + ")");
    }
    // Local CSR slice of this tile: manifest order filtered by tile — the
    // exact order the engine's counting sort produces.
    std::size_t j = 0;
    for (std::size_t t = 0; t < rep.tx.size() && j <= slice.members.size();
         ++t) {
      if (rep.tx_tile[t] != static_cast<int>(slice.tile)) continue;
      const Vec2 p = rep.net->position(rep.tx[t]);
      if (j >= slice.members.size() ||
          slice.members[j] != static_cast<std::uint64_t>(rep.tx[t]) ||
          !(slice.pos[j] == p)) {
        throw wire::WireError(
            "rank: halo slice for tile " + std::to_string(slice.tile) +
            " diverges from the replica at member " + std::to_string(j));
      }
      ++j;
    }
    if (j != slice.members.size()) {
      throw wire::WireError("rank: halo slice for tile " +
                            std::to_string(slice.tile) + " has " +
                            std::to_string(slice.members.size()) +
                            " members, replica has " + std::to_string(j));
    }
    csr_cursor += j;
  }
  (void)csr_cursor;
  // Far summaries: every remaining occupied tile, with matching counts.
  std::size_t ni = 0;
  std::size_t fi = 0;
  for (const int b : rep.occupied_tx) {
    if (ni < near.size() && near[ni] == b) {
      ++ni;
      continue;
    }
    if (fi >= m.far.size() || static_cast<int>(m.far[fi].first) != b ||
        m.far[fi].second != rep.tx_count[static_cast<std::size_t>(b)]) {
      throw wire::WireError("rank: far-field summary diverges at tile " +
                            std::to_string(b));
    }
    ++fi;
  }
  if (fi != m.far.size()) {
    throw wire::WireError("rank: " + std::to_string(m.far.size() - fi) +
                          " unexpected far-field summaries");
  }
}

void HandleRound(Replica& rep, const RoundMsg& m, int fd) {
  DCC_TRACE_SPAN("rank.round");
  if (!rep.engine) {
    throw wire::WireError("rank: round frame before hello");
  }
  const SpatialGrid& grid = *rep.engine->grid();
  const auto tiles = static_cast<std::size_t>(grid.tile_count());

  rep.tx.resize(m.tx.size());
  rep.tx_tile.resize(m.tx.size());
  rep.tx_count.assign(tiles, 0);
  rep.occupied_tx.clear();
  for (std::size_t i = 0; i < m.tx.size(); ++i) {
    const auto v = static_cast<std::size_t>(m.tx[i]);
    if (!grid.Contains(v)) {
      throw wire::WireError("rank: transmitter " + std::to_string(v) +
                            " is not in the index");
    }
    rep.tx[i] = v;
    const int t = grid.TileOfPoint(v);
    rep.tx_tile[i] = t;
    ++rep.tx_count[static_cast<std::size_t>(t)];
  }
  for (std::size_t t = 0; t < tiles; ++t) {
    if (rep.tx_count[t] > 0) rep.occupied_tx.push_back(static_cast<int>(t));
  }

  // Owned listeners: a sparse ordinal-indexed view. Slots this rank does
  // not own stay zero and are never read (StepOrdinalsInto touches exactly
  // the named ordinals).
  rep.listeners.assign(static_cast<std::size_t>(m.n_listen_total), 0);
  rep.ordinals.clear();
  rep.listener_tiles.clear();
  std::uint32_t prev = 0;
  for (std::size_t i = 0; i < m.owned.size(); ++i) {
    const auto [ord, u64] = m.owned[i];
    const auto u = static_cast<std::size_t>(u64);
    if (ord >= m.n_listen_total || (i > 0 && ord <= prev)) {
      throw wire::WireError("rank: owned ordinals malformed at entry " +
                            std::to_string(i));
    }
    if (!grid.Contains(u)) {
      throw wire::WireError("rank: listener " + std::to_string(u) +
                            " is not in the index");
    }
    prev = ord;
    rep.listeners[ord] = u;
    rep.ordinals.push_back(ord);
    rep.listener_tiles.push_back(grid.TileOfPoint(u));
  }
  std::sort(rep.listener_tiles.begin(), rep.listener_tiles.end());
  rep.listener_tiles.erase(
      std::unique(rep.listener_tiles.begin(), rep.listener_tiles.end()),
      rep.listener_tiles.end());

  VerifyHalo(rep, m);

  rep.engine->StepOrdinalsInto(rep.tx, rep.listeners, rep.ordinals,
                               rep.pending);

  RoundReplyMsg reply;
  reply.round = m.round;
  reply.receptions.reserve(rep.pending.size());
  for (const auto& [ordinal, rec] : rep.pending) {
    reply.receptions.push_back(
        ReplyEntry{ordinal, static_cast<std::uint64_t>(rec.listener),
                   static_cast<std::uint64_t>(rec.sender), rec.sinr});
  }
  wire::WriteFrame(fd, Encode(reply));
}

}  // namespace

int RunRank(int fd) {
  Replica rep;
  std::string payload;
  try {
    while (wire::ReadFrame(fd, &payload)) {
      switch (PeekTag(payload)) {
        case MsgTag::kHello:
          HandleHello(rep, DecodeHello(payload), fd);
          break;
        case MsgTag::kPositions:
          HandlePositions(rep, DecodePositions(payload));
          break;
        case MsgTag::kRound:
          HandleRound(rep, DecodeRound(payload), fd);
          break;
        case MsgTag::kShutdown:
          if (obs::Tracer::enabled()) {
            // Answer the shutdown with this rank's trace buffers; the
            // coordinator stitches them into its own drain.
            wire::WriteFrame(
                fd, EncodeTraceDump(obs::Tracer::Global().EncodeShip()));
          }
          return 0;
        default:
          throw wire::WireError(
              "rank: unexpected message tag " +
              std::to_string(static_cast<int>(PeekTag(payload))));
      }
    }
    // EOF without shutdown: the coordinator vanished.
    return 1;
  } catch (const std::exception& e) {
    try {
      wire::WriteFrame(fd, EncodeError(std::string("rank ") +
                                       std::to_string(rep.rank) + ": " +
                                       e.what()));
    } catch (...) {
      // The stream is gone too; exiting nonzero is all that's left.
    }
    return 1;
  }
}

}  // namespace dcc::distrib
