# Empty dependencies file for selector_playground.
# This may be replaced when dependencies are built.
