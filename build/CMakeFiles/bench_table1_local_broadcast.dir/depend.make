# Empty dependencies file for bench_table1_local_broadcast.
# This may be replaced when dependencies are built.
