#include "dcc/sim/runner.h"

#include <gtest/gtest.h>

namespace dcc::sim {
namespace {

sinr::Network LineNetwork(int n, double pitch) {
  std::vector<Vec2> pts;
  for (int i = 0; i < n; ++i) pts.push_back({i * pitch, 0.0});
  return sinr::Network::WithSequentialIds(std::move(pts),
                                          sinr::Params::Default());
}

TEST(ExecTest, RoundsAdvanceEvenWhenSilent) {
  const auto net = LineNetwork(3, 0.5);
  Exec ex(net);
  ex.RunRound({0, 1, 2}, [](std::size_t) { return std::nullopt; },
              [](std::size_t, const Message&) {});
  EXPECT_EQ(ex.rounds(), 1);
  ex.ChargeRounds(10);
  EXPECT_EQ(ex.rounds(), 11);
  EXPECT_THROW(ex.ChargeRounds(-1), InvalidArgument);
}

TEST(ExecTest, BackgroundTransmitterIndexValidated) {
  const auto net = LineNetwork(2, 0.5);
  Exec ex(net);
  EXPECT_THROW(ex.SetBackgroundTransmitters({5}, Message{}), InvalidArgument);
}

TEST(ExecTest, SingleTransmitterDelivers) {
  const auto net = LineNetwork(3, 0.5);
  Exec ex(net);
  int heard = 0;
  const int tx_count = ex.RunRound(
      {0},
      [&](std::size_t) {
        Message m;
        m.src = net.id(0);
        m.a = 77;
        return std::optional<Message>(m);
      },
      [&](std::size_t listener, const Message& m) {
        EXPECT_EQ(m.a, 77);
        EXPECT_TRUE(listener == 1 || listener == 2);
        ++heard;
      });
  EXPECT_EQ(tx_count, 1);
  EXPECT_EQ(heard, 2);  // both within range 1
}

TEST(ExecTest, TransmitterDoesNotHearItself) {
  const auto net = LineNetwork(2, 0.5);
  Exec ex(net);
  ex.RunRound(
      {0, 1},
      [&](std::size_t i) {
        if (i != 0) return std::optional<Message>();
        Message m;
        m.src = net.id(0);
        return std::optional<Message>(m);
      },
      [&](std::size_t listener, const Message&) { EXPECT_NE(listener, 0u); });
}

TEST(ExecTest, MessageRoutingMatchesSender) {
  // Two far-apart transmitters: each nearby listener hears the right one.
  std::vector<Vec2> pts{{0, 0}, {0.3, 0}, {10, 0}, {10.3, 0}};
  const auto net = sinr::Network::WithSequentialIds(pts, sinr::Params::Default());
  Exec ex(net);
  ex.RunRound(
      {0, 2},
      [&](std::size_t i) {
        Message m;
        m.src = net.id(i);
        m.a = static_cast<std::int64_t>(i);
        return std::optional<Message>(m);
      },
      [&](std::size_t listener, const Message& m) {
        if (listener == 1) {
          EXPECT_EQ(m.a, 0);
        }
        if (listener == 3) {
          EXPECT_EQ(m.a, 2);
        }
      });
}

TEST(ExecTest, ObserverSeesRounds) {
  const auto net = LineNetwork(3, 0.5);
  Exec ex(net);
  int calls = 0;
  ex.SetObserver([&](Round, const std::vector<std::size_t>&,
                     const std::vector<sinr::Reception>&) { ++calls; });
  ex.RunRound({0}, [&](std::size_t) {
    Message m;
    return std::optional<Message>(m);
  }, [](std::size_t, const Message&) {});
  ex.RunRound({0}, [](std::size_t) { return std::nullopt; },
              [](std::size_t, const Message&) {});
  EXPECT_EQ(calls, 2);
}

// A tiny NodeProtocol: node 0 counts down then transmits once; others
// finish when they hear it.
class PingProtocol final : public NodeProtocol {
 public:
  PingProtocol(bool sender, NodeId id) : sender_(sender), id_(id) {}
  std::optional<Message> OnRound(Round r) override {
    if (sender_ && r == 3 && !sent_) {
      sent_ = true;
      done_ = true;
      Message m;
      m.src = id_;
      return m;
    }
    return std::nullopt;
  }
  void OnHear(Round, const Message&) override { done_ = true; }
  bool Done() const override { return done_; }

 private:
  bool sender_;
  NodeId id_;
  bool sent_ = false;
  bool done_ = false;
};

TEST(RunnerTest, StopsWhenAllDone) {
  const auto net = LineNetwork(3, 0.5);
  Runner runner(net);
  PingProtocol p0(true, net.id(0)), p1(false, net.id(1)), p2(false, net.id(2));
  const Round r = runner.Run({&p0, &p1, &p2}, 100);
  EXPECT_LE(r, 6);
  EXPECT_TRUE(p1.Done());
  EXPECT_TRUE(p2.Done());
}

TEST(RunnerTest, RespectsMaxRounds) {
  const auto net = LineNetwork(2, 0.5);
  Runner runner(net);
  PingProtocol p0(false, net.id(0)), p1(false, net.id(1));  // never done
  const Round r = runner.Run({&p0, &p1}, 25);
  EXPECT_EQ(r, 25);
}

}  // namespace
}  // namespace dcc::sim
