file(REMOVE_RECURSE
  "CMakeFiles/wakeup_leader_test.dir/tests/wakeup_leader_test.cc.o"
  "CMakeFiles/wakeup_leader_test.dir/tests/wakeup_leader_test.cc.o.d"
  "wakeup_leader_test"
  "wakeup_leader_test.pdb"
  "wakeup_leader_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wakeup_leader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
