#include "dcc/sim/schedule.h"

#include <gtest/gtest.h>

#include "dcc/sim/runner.h"

namespace dcc::sim {
namespace {

sinr::Network LineNetwork(int n, double pitch) {
  std::vector<Vec2> pts;
  for (int i = 0; i < n; ++i) pts.push_back({i * pitch, 0.0});
  return sinr::Network::WithSequentialIds(std::move(pts),
                                          sinr::Params::Default());
}

TEST(SsfScheduleTest, TransmitsPerMembership) {
  SsfSchedule sched(sel::Ssf::Construct(64, 3));
  for (std::int64_t i = 0; i < sched.size(); i += 5) {
    for (NodeId v = 1; v <= 64; v += 7) {
      EXPECT_EQ(sched.Transmits(i, v, kNoCluster),
                sched.ssf().Member(i, v));
    }
  }
}

TEST(WcssScheduleTest, KeysOnCluster) {
  WcssSchedule sched(sel::Wcss::WithLength(256, 3, 2, 500, 11));
  bool differs = false;
  for (std::int64_t i = 0; i < sched.size() && !differs; ++i) {
    if (sched.Transmits(i, 5, 1) != sched.Transmits(i, 5, 2)) differs = true;
  }
  EXPECT_TRUE(differs);  // cluster identity must matter
}

TEST(ExecuteScheduleTest, RunsExactlySizeRounds) {
  const auto net = LineNetwork(4, 0.5);
  Exec ex(net);
  WssSchedule sched(sel::Wss::WithLength(64, 3, 40, 3));
  std::vector<Participant> parts;
  for (std::size_t i = 0; i < net.size(); ++i) {
    parts.push_back({i, net.id(i), kNoCluster});
  }
  ExecuteSchedule(
      ex, sched, parts,
      [&](std::size_t, std::int64_t) {
        Message m;
        return std::optional<Message>(m);
      },
      [](std::size_t, const Message&, std::int64_t) {});
  EXPECT_EQ(ex.rounds(), sched.size());
}

TEST(ExecuteScheduleTest, OnlyScheduledParticipantsTransmit) {
  const auto net = LineNetwork(4, 10.0);  // far apart: no receptions
  Exec ex(net);
  WssSchedule sched(sel::Wss::WithLength(64, 2, 64, 5));
  std::vector<Participant> parts;
  for (std::size_t i = 0; i < net.size(); ++i) {
    parts.push_back({i, net.id(i), kNoCluster});
  }
  std::vector<std::vector<char>> sent(net.size());
  for (auto& s : sent) s.assign(static_cast<std::size_t>(sched.size()), 0);
  ExecuteSchedule(
      ex, sched, parts,
      [&](std::size_t idx, std::int64_t t) {
        sent[idx][static_cast<std::size_t>(t)] = 1;
        Message m;
        return std::optional<Message>(m);
      },
      [](std::size_t, const Message&, std::int64_t) {});
  for (std::size_t i = 0; i < net.size(); ++i) {
    for (std::int64_t t = 0; t < sched.size(); ++t) {
      EXPECT_EQ(static_cast<bool>(sent[i][static_cast<std::size_t>(t)]),
                sched.Transmits(t, net.id(i), kNoCluster));
    }
  }
}

TEST(ExecuteScheduleTest, SilentOptOutRespected) {
  const auto net = LineNetwork(2, 0.5);
  Exec ex(net);
  WssSchedule sched(sel::Wss::WithLength(64, 2, 50, 5));
  std::vector<Participant> parts{{0, net.id(0), kNoCluster},
                                 {1, net.id(1), kNoCluster}};
  int heard = 0;
  ExecuteSchedule(
      ex, sched, parts,
      [&](std::size_t, std::int64_t) { return std::optional<Message>(); },
      [&](std::size_t, const Message&, std::int64_t) { ++heard; });
  EXPECT_EQ(heard, 0);
}

TEST(ExecuteScheduleTest, DuplicateParticipantRejected) {
  const auto net = LineNetwork(2, 0.5);
  Exec ex(net);
  WssSchedule sched(sel::Wss::WithLength(64, 2, 10, 5));
  std::vector<Participant> parts{{0, net.id(0), kNoCluster},
                                 {0, net.id(0), kNoCluster}};
  EXPECT_THROW(ExecuteSchedule(
                   ex, sched, parts,
                   [](std::size_t, std::int64_t) {
                     return std::optional<Message>();
                   },
                   [](std::size_t, const Message&, std::int64_t) {}),
               InvalidArgument);
}

}  // namespace
}  // namespace dcc::sim
