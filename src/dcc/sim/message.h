// Messages exchanged by protocols. The paper limits messages to O(log N)
// bits; we model that as a fixed small struct of integer words (each word
// holds a value polynomial in N, i.e. O(log N) bits). Protocols must not
// smuggle unbounded data through these fields.
#pragma once

#include <cstdint>

#include "dcc/common/types.h"

namespace dcc::sim {

struct Message {
  NodeId src = kNoNode;          // sender id (always included)
  ClusterId cluster = kNoCluster;  // sender's cluster id, if clustered
  std::int32_t kind = 0;         // protocol-defined tag
  std::int64_t a = 0;            // payload words, O(log N) bits each
  std::int64_t b = 0;
  std::int64_t c = 0;
};

}  // namespace dcc::sim
