#include "dcc/distrib/session.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "dcc/common/types.h"
#include "dcc/common/wire.h"
#include "dcc/obs/trace.h"

namespace dcc::distrib {

namespace {

// dcc_rank is expected next to the running executable (CMake puts every
// target in one build directory); $DCC_RANK_EXE overrides for tests.
std::string DefaultRankExe() {
  char buf[4096];
  const ssize_t len = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (len <= 0) return "dcc_rank";
  buf[len] = '\0';
  std::string path(buf);
  const std::size_t slash = path.rfind('/');
  if (slash == std::string::npos) return "dcc_rank";
  return path.substr(0, slash + 1) + "dcc_rank";
}

}  // namespace

Session::Session(const scenario::ScenarioSpec& spec, std::uint64_t seed,
                 Options opts)
    : spec_(spec), seed_(seed), opts_(std::move(opts)) {
  DCC_REQUIRE(opts_.ranks >= 1 && opts_.ranks <= 512,
              "distrib: rank count must be in [1, 512]");
}

Session::~Session() {
  for (Rank& r : ranks_) {
    if (r.fd < 0) continue;
    try {
      wire::WriteFrame(r.fd, EncodeShutdown());
      if (trace_) {
        // A traced rank answers the shutdown with one kTraceDump carrying
        // its event buffers; stitch them into the coordinator tracer so a
        // single drain emits all clock domains. Best effort — a rank that
        // died mid-run simply contributes no events.
        std::string payload;
        if (wire::ReadFrame(r.fd, &payload) &&
            PeekTag(payload) == MsgTag::kTraceDump) {
          const std::int64_t pid = 1 + (&r - ranks_.data());
          obs::Tracer::Global().InjectShip(pid, DecodeTraceDump(payload));
        }
      }
    } catch (...) {
      // Best effort: a dead rank can't take a shutdown frame.
    }
    ::close(r.fd);
    r.fd = -1;
  }
  for (Rank& r : ranks_) {
    if (r.pid < 0) continue;
    // Grace period for the clean exit, then SIGKILL. Bounded either way —
    // a Session destructor must never hang the run.
    bool reaped = false;
    for (int i = 0; i < 500 && !reaped; ++i) {
      int status = 0;
      const pid_t got = ::waitpid(r.pid, &status, WNOHANG);
      if (got == r.pid || (got < 0 && errno == ECHILD)) {
        reaped = true;
        break;
      }
      ::usleep(10 * 1000);
    }
    if (!reaped) {
      ::kill(r.pid, SIGKILL);
      int status = 0;
      ::waitpid(r.pid, &status, 0);
    }
    r.pid = -1;
  }
}

void Session::SpawnRank(int k, const std::string& exe) {
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, sv) != 0) {
    throw DistribError(std::string("distrib: socketpair failed: ") +
                       std::strerror(errno));
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    throw DistribError(std::string("distrib: fork failed: ") +
                       std::strerror(errno));
  }
  if (pid == 0) {
    // Child: keep only its end across the exec (everything else in the
    // parent is CLOEXEC, including earlier ranks' sockets).
    ::fcntl(sv[1], F_SETFD, 0);
    const std::string fd_arg = "--fd=" + std::to_string(sv[1]);
    ::execl(exe.c_str(), "dcc_rank", fd_arg.c_str(),
            static_cast<char*>(nullptr));
    _exit(127);  // exec failed; the parent sees EOF at the Hello ack
  }
  ::close(sv[1]);
  ranks_[static_cast<std::size_t>(k)] = Rank{sv[0], pid, true};
}

void Session::SendTo(int k, const std::string& payload) {
  try {
    wire::WriteFrame(ranks_[static_cast<std::size_t>(k)].fd, payload);
  } catch (const wire::WireError& e) {
    throw DistribError("distrib: rank " + std::to_string(k) +
                       " unreachable: " + e.what());
  }
}

std::string Session::ReadFrom(int k) {
  std::string payload;
  bool got = false;
  try {
    got = wire::ReadFrame(ranks_[static_cast<std::size_t>(k)].fd, &payload);
  } catch (const wire::WireError& e) {
    throw DistribError("distrib: rank " + std::to_string(k) +
                       " stream error: " + e.what());
  }
  if (!got) {
    throw DistribError("distrib: rank " + std::to_string(k) +
                       " died (EOF on its frame stream)");
  }
  if (PeekTag(payload) == MsgTag::kError) {
    throw DistribError("distrib: rank " + std::to_string(k) +
                       " failed: " + DecodeError(payload));
  }
  return payload;
}

void Session::SendPositions(const sinr::Engine& engine) {
  const sinr::Network& net = engine.net();
  const SpatialGrid& grid = *engine.grid();
  PositionsMsg m;
  m.positions = net.positions();
  m.live.resize(net.size());
  for (std::size_t i = 0; i < net.size(); ++i) {
    m.live[i] = grid.Contains(i) ? 1 : 0;
  }
  const std::string payload = Encode(m);
  for (int k = 0; k < opts_.ranks; ++k) SendTo(k, payload);
  last_pos_gen_ = net.generation();
  last_index_gen_ = grid.generation();
}

void Session::EnsureStarted(const sinr::Engine& engine) {
  if (started_) return;
  DCC_REQUIRE(engine.mode() == sinr::Engine::Mode::kGrid &&
                  engine.grid() != nullptr,
              "distrib: rank execution requires the grid engine");
  std::string exe = opts_.rank_exe;
  if (exe.empty()) {
    const char* env = std::getenv("DCC_RANK_EXE");
    exe = (env != nullptr && *env != '\0') ? env : DefaultRankExe();
  }

  ranks_.resize(static_cast<std::size_t>(opts_.ranks));
  for (int k = 0; k < opts_.ranks; ++k) SpawnRank(k, exe);

  // The replica recipe: only the network-determining coordinates survive
  // (topology, SINR, shadowing, id seed). Execution-shape fields — sweep,
  // dynamics, faults, threads, ranks, engine options — are cleared so a
  // rank neither recurses nor runs anything on its own.
  scenario::ScenarioSpec replica = spec_;
  replica.seeds = {seed_};
  replica.sweep_key.clear();
  replica.sweep_values.clear();
  replica.dynamics = scenario::ParamMap{};
  replica.max_rounds = 0;
  replica.faults = 0;
  replica.threads = 0;
  replica.ranks = 0;
  replica.nonce.reset();
  replica.engine = sinr::Engine::Options{};
  // Perf-only engine knobs do ride along: they cannot change receptions
  // (bit-identity is part of their contract), and a rank replaying periodic
  // schedules benefits from them exactly like the coordinator does.
  replica.engine.farfield = spec_.engine.farfield;
  replica.engine.prologue_cache = spec_.engine.prologue_cache;

  const sinr::Network& net = engine.net();
  const SpatialGrid& grid = *engine.grid();
  HelloMsg hello;
  hello.ranks = static_cast<std::uint32_t>(opts_.ranks);
  hello.seed = seed_;
  hello.spec_line = replica.ToString();
  hello.cell = grid.cell();
  if (engine.options().coverage) {
    hello.has_coverage = true;
    hello.coverage = *engine.options().coverage;
  }
  hello.far_start = engine.far_start();
  hello.n = net.size();
  hello.tile_count = static_cast<std::uint64_t>(grid.tile_count());
  trace_ = obs::Tracer::enabled();
  hello.trace = trace_;
  for (int k = 0; k < opts_.ranks; ++k) {
    hello.rank = static_cast<std::uint32_t>(k);
    // Stamped immediately before each send so the rank's clock offset
    // reflects this hello's flight, not the whole handshake loop.
    hello.trace_clock_ns = trace_ ? obs::NowRawNs() : 0;
    SendTo(k, Encode(hello));
  }
  for (int k = 0; k < opts_.ranks; ++k) {
    const HelloAckMsg ack = DecodeHelloAck(ReadFrom(k));
    if (ack.rank != static_cast<std::uint32_t>(k) || ack.n != hello.n ||
        ack.tile_count != hello.tile_count) {
      throw DistribError("distrib: rank " + std::to_string(k) +
                         " replica mismatch (n=" + std::to_string(ack.n) +
                         " tiles=" + std::to_string(ack.tile_count) +
                         ", expected n=" + std::to_string(hello.n) +
                         " tiles=" + std::to_string(hello.tile_count) + ")");
    }
  }

  stats_.ranks = opts_.ranks;
  stats_.rank_load.assign(static_cast<std::size_t>(opts_.ranks), 0);
  // Always sync once: a dynamic scenario may have moved nodes between the
  // network build and the first round.
  SendPositions(engine);
  started_ = true;
}

bool Session::StepRound(const sinr::Engine& engine,
                        std::span<const std::size_t> transmitters,
                        std::span<const std::size_t> listeners,
                        std::vector<sinr::Reception>& out) {
  DCC_TRACE_SPAN("distrib.round");
  EnsureStarted(engine);
  const sinr::Network& net = engine.net();
  const SpatialGrid& grid = *engine.grid();
  if (net.generation() != last_pos_gen_ ||
      grid.generation() != last_index_gen_) {
    SendPositions(engine);
  }

  const int R = opts_.ranks;
  const auto tiles = static_cast<std::size_t>(grid.tile_count());
  ++round_;

  // The same balanced cut the in-process engine would make over this
  // round's listeners-per-tile histogram; contiguity means every listener
  // tile lands on exactly one rank, preserving the fallback grouping.
  tile_weights_.assign(tiles, 0);
  for (const std::size_t u : listeners) {
    ++tile_weights_[static_cast<std::size_t>(grid.TileOfPoint(u))];
  }
  plan_.Reset(grid.tile_count(), R, parallel::ShardPolicy::kBalanced,
              tile_weights_);

  // This round's transmitter tiling (counts + occupied tiles, ascending) —
  // the coordinator's half of the halo derivation.
  tx_count_.assign(tiles, 0);
  tx_tile_.resize(transmitters.size());
  for (std::size_t i = 0; i < transmitters.size(); ++i) {
    const int t = grid.TileOfPoint(transmitters[i]);
    tx_tile_[i] = t;
    ++tx_count_[static_cast<std::size_t>(t)];
  }
  occupied_tx_.clear();
  for (std::size_t t = 0; t < tiles; ++t) {
    if (tx_count_[t] > 0) occupied_tx_.push_back(static_cast<int>(t));
  }
  // Same engagement rule as Engine::BuildTileState: the pyramid's NearTiles
  // yields the identical near set either way, so the gate is purely the
  // descent-vs-walk cost crossover.
  const bool use_pyramid =
      engine.options().farfield == sinr::Engine::FarField::kPyramid &&
      occupied_tx_.size() >= engine.options().pyramid_min_occupied;
  if (use_pyramid) {
    pyramid_.Reset(grid);
    pyramid_.Rebuild(occupied_tx_, [&](int b) {
      return tx_count_[static_cast<std::size_t>(b)];
    });
  }

  // Owned ordinals per rank (ascending: ordinals are visited in order).
  std::vector<std::vector<std::pair<std::uint32_t, std::uint64_t>>> owned(
      static_cast<std::size_t>(R));
  for (std::size_t ord = 0; ord < listeners.size(); ++ord) {
    const int k = plan_.ShardOfTile(grid.TileOfPoint(listeners[ord]));
    owned[static_cast<std::size_t>(k)].emplace_back(
        static_cast<std::uint32_t>(ord),
        static_cast<std::uint64_t>(listeners[ord]));
  }

  RoundMsg m;
  m.round = round_;
  m.n_listen_total = listeners.size();
  m.tx.resize(transmitters.size());
  for (std::size_t i = 0; i < transmitters.size(); ++i) {
    m.tx[i] = static_cast<std::uint64_t>(transmitters[i]);
  }

  std::vector<int> listener_tiles;
  {
    DCC_TRACE_SPAN("distrib.ship");
    for (int k = 0; k < R; ++k) {
      m.owned = owned[static_cast<std::size_t>(k)];
      // Listener-occupied tiles of this rank's contiguous range.
      listener_tiles.clear();
      for (int t = plan_.begin(k); t < plan_.end(k); ++t) {
        if (tile_weights_[static_cast<std::size_t>(t)] > 0) {
          listener_tiles.push_back(t);
        }
      }
      const std::vector<int> near =
          use_pyramid ? pyramid_.NearTiles(grid, listener_tiles, occupied_tx_,
                                           engine.far_start())
                      : NearTxTiles(grid, listener_tiles, occupied_tx_,
                                    engine.far_start());
      m.near.clear();
      m.near.reserve(near.size());
      for (const int b : near) {
        TxSlice slice;
        slice.tile = static_cast<std::uint32_t>(b);
        for (std::size_t i = 0; i < transmitters.size(); ++i) {
          if (tx_tile_[i] != b) continue;
          slice.members.push_back(static_cast<std::uint64_t>(transmitters[i]));
          slice.pos.push_back(net.position(transmitters[i]));
        }
        m.near.push_back(std::move(slice));
      }
      m.far.clear();
      std::size_t ni = 0;
      for (const int b : occupied_tx_) {
        if (ni < near.size() && near[ni] == b) {
          ++ni;
          continue;
        }
        m.far.emplace_back(static_cast<std::uint32_t>(b),
                           tx_count_[static_cast<std::size_t>(b)]);
      }
      const std::string payload = Encode(m);
      stats_.halo_tiles += static_cast<std::int64_t>(m.near.size());
      stats_.halo_bytes += static_cast<std::int64_t>(payload.size());
      SendTo(k, payload);
    }
  }

  // Gather in rank order; one ordinal sort restores the serial emission
  // order exactly as the in-process shard merge does.
  merge_.clear();
  {
    DCC_TRACE_SPAN("distrib.gather");
    for (int k = 0; k < R; ++k) {
      const std::string payload = ReadFrom(k);
      stats_.reply_bytes += static_cast<std::int64_t>(payload.size());
      const RoundReplyMsg reply = DecodeRoundReply(payload);
      if (reply.round != round_) {
        throw DistribError("distrib: rank " + std::to_string(k) +
                           " answered round " + std::to_string(reply.round) +
                           " during round " + std::to_string(round_));
      }
      stats_.rank_load[static_cast<std::size_t>(k)] +=
          static_cast<std::int64_t>(owned[static_cast<std::size_t>(k)].size());
      for (const ReplyEntry& e : reply.receptions) {
        if (e.ordinal >= listeners.size() ||
            listeners[e.ordinal] != static_cast<std::size_t>(e.listener)) {
          throw DistribError("distrib: rank " + std::to_string(k) +
                             " reported a reception for a listener it does "
                             "not own (ordinal " +
                             std::to_string(e.ordinal) + ")");
        }
        merge_.emplace_back(
            e.ordinal,
            sinr::Reception{static_cast<std::size_t>(e.listener),
                            static_cast<std::size_t>(e.sender), e.sinr});
      }
    }
  }
  std::sort(merge_.begin(), merge_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t i = 1; i < merge_.size(); ++i) {
    if (merge_[i].first == merge_[i - 1].first) {
      throw DistribError("distrib: duplicate reception for listener ordinal " +
                         std::to_string(merge_[i].first));
    }
  }
  for (const auto& [ordinal, rec] : merge_) out.push_back(rec);
  ++stats_.rounds;
  return true;
}

void Session::KillRank(int k) {
  Rank& r = ranks_.at(static_cast<std::size_t>(k));
  if (r.pid < 0) return;
  ::kill(r.pid, SIGKILL);
  int status = 0;
  ::waitpid(r.pid, &status, 0);
  r.pid = -1;  // reaped; the open socket now reads EOF
}

}  // namespace dcc::distrib
