file(REMOVE_RECURSE
  "CMakeFiles/bench_selectors.dir/bench/bench_selectors.cc.o"
  "CMakeFiles/bench_selectors.dir/bench/bench_selectors.cc.o.d"
  "bench_selectors"
  "bench_selectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_selectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
