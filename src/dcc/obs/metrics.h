// Process-wide metrics: named counters, gauges and power-of-two
// histograms with a Prometheus-style text exposition. Unlike the tracer,
// the registry is always on — updates are single relaxed atomic
// operations on handles resolved once (function-local statics at the
// instrumentation site), so the steady-state cost is the same class as
// the engine's own Stats counters. The text surface is served by the
// daemon's `metrics` op and dumped by `dcc_run --metrics`.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "dcc/obs/histogram.h"

namespace dcc::obs {

class Counter {
 public:
  void Add(std::int64_t delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

class Gauge {
 public:
  void Set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

// Registry of named metrics. Handles returned by Get* are valid for the
// life of the process (entries are never removed), which is what lets
// call sites cache them in statics. Names follow the Prometheus
// convention: snake_case, `_total` suffix on counters, unit suffix on
// histograms (the repo records histogram values in microseconds, `_us`).
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& GetCounter(std::string_view name, std::string_view help);
  Gauge& GetGauge(std::string_view name, std::string_view help);
  Pow2Histogram& GetHistogram(std::string_view name, std::string_view help);

  // Text exposition (Prometheus format): `# HELP` / `# TYPE` preamble per
  // metric, histograms as cumulative `_bucket{le="..."}` series plus
  // `_sum` and `_count`. Metrics print in name order, so the output is
  // stable for a deterministic workload.
  void PrintText(std::ostream& os) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Pow2Histogram> histogram;
  };

  Entry& GetEntry(std::string_view name, std::string_view help, Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Entry, std::less<>> metrics_;
};

}  // namespace dcc::obs
