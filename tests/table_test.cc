#include "dcc/common/table.h"

#include <gtest/gtest.h>

#include <sstream>

#include "dcc/common/types.h"

namespace dcc {
namespace {

TEST(TableTest, AlignedOutput) {
  Table t({"name", "rounds"});
  t.AddRow({"alg", "123"});
  t.AddRow({"longer-name", "7"});
  std::ostringstream os;
  t.Print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  // Header underline present.
  EXPECT_NE(s.find("----"), std::string::npos);
  // All rows same line count: header + underline + 2 rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

TEST(TableTest, CsvOutput) {
  Table t({"a", "b"});
  t.AddRow({"1", "2"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TableTest, CellCountMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.AddRow({"only-one"}), InvalidArgument);
}

TEST(TableTest, NumFormatting) {
  EXPECT_EQ(Table::Num(std::int64_t{42}), "42");
  EXPECT_EQ(Table::Num(3.5), "3.5");
  EXPECT_EQ(Table::Num(0.125), "0.125");
}

TEST(TableTest, RowCount) {
  Table t({"x"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.AddRow({"1"});
  t.AddRow({"2"});
  EXPECT_EQ(t.num_rows(), 2u);
}

}  // namespace
}  // namespace dcc
