#include "dcc/sim/schedule.h"

#include <unordered_map>

namespace dcc::sim {

void ExecuteSchedule(
    Exec& ex, const Schedule& sched, const std::vector<Participant>& parts,
    const std::function<std::optional<Message>(std::size_t, std::int64_t)>&
        make_msg,
    const std::function<void(std::size_t, const Message&, std::int64_t)>&
        hear) {
  std::vector<std::size_t> candidates(parts.size());
  std::unordered_map<std::size_t, std::size_t> pos;  // node index -> parts pos
  pos.reserve(parts.size());
  for (std::size_t p = 0; p < parts.size(); ++p) {
    candidates[p] = parts[p].index;
    const bool inserted = pos.emplace(parts[p].index, p).second;
    DCC_REQUIRE(inserted, "ExecuteSchedule: duplicate participant index");
  }

  for (std::int64_t t = 0; t < sched.size(); ++t) {
    ex.RunRound(
        candidates,
        [&](std::size_t idx) -> std::optional<Message> {
          const Participant& part = parts[pos.at(idx)];
          if (!sched.Transmits(t, part.id, part.cluster)) return std::nullopt;
          return make_msg(idx, t);
        },
        [&](std::size_t listener, const Message& m) { hear(listener, m, t); });
  }
}

}  // namespace dcc::sim
