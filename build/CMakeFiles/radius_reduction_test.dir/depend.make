# Empty dependencies file for radius_reduction_test.
# This may be replaced when dependencies are built.
