#include "dcc/scenario/spec.h"

#include "dcc/common/json.h"
#include "dcc/common/parse.h"
#include "dcc/common/types.h"

namespace dcc::scenario {

namespace {

using dcc::ParseDouble;
using dcc::ParseInt64;
using dcc::ParseUint64;

// Splits "name[:k=v,...]" into the registry key and its ParamMap.
void ParseNamed(const std::string& text, const std::string& what,
                std::string* name, ParamMap* params) {
  const std::size_t colon = text.find(':');
  *name = text.substr(0, colon == std::string::npos ? text.size() : colon);
  if (name->empty()) throw InvalidArgument(what + ": empty name");
  *params = colon == std::string::npos
                ? ParamMap{}
                : ParamMap::Parse(text.substr(colon + 1), what);
}

std::string FormatSeeds(const std::vector<std::uint64_t>& seeds) {
  bool contiguous = seeds.size() > 1;
  for (std::size_t i = 1; contiguous && i < seeds.size(); ++i) {
    contiguous = seeds[i] == seeds[i - 1] + 1;
  }
  if (contiguous) {
    return std::to_string(seeds.front()) + ".." + std::to_string(seeds.back());
  }
  std::string out;
  for (const std::uint64_t s : seeds) {
    if (!out.empty()) out += ',';
    out += std::to_string(s);
  }
  return out;
}

}  // namespace

std::vector<std::uint64_t> ParseSeeds(const std::string& text) {
  const std::size_t dots = text.find("..");
  if (dots != std::string::npos) {
    const std::uint64_t lo = ParseUint64(text.substr(0, dots), "--seeds");
    const std::uint64_t hi = ParseUint64(text.substr(dots + 2), "--seeds");
    if (hi < lo) throw InvalidArgument("--seeds: empty range '" + text + "'");
    // Guards both runaway sweeps and the ++s wraparound at UINT64_MAX.
    constexpr std::uint64_t kMaxRange = 1u << 22;
    if (hi - lo >= kMaxRange) {
      throw InvalidArgument("--seeds: range '" + text + "' exceeds " +
                            std::to_string(kMaxRange) + " seeds");
    }
    std::vector<std::uint64_t> seeds;
    seeds.reserve(hi - lo + 1);
    for (std::uint64_t s = lo; s <= hi; ++s) seeds.push_back(s);
    return seeds;
  }
  std::vector<std::uint64_t> seeds;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    seeds.push_back(ParseUint64(text.substr(pos, comma - pos), "--seeds"));
    pos = comma + 1;
  }
  return seeds;
}

ScenarioSpec ScenarioSpec::FromArgs(const std::vector<std::string>& args) {
  ScenarioSpec spec;
  bool power_set = false;
  for (const std::string& arg : args) {
    const std::size_t eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
      throw InvalidArgument("scenario flag '" + arg +
                            "' is not of the form --key=value");
    }
    const std::string key = arg.substr(0, eq);
    const std::string val = arg.substr(eq + 1);
    if (key == "--topology") {
      ParseNamed(val, "--topology", &spec.topology, &spec.topology_params);
    } else if (key == "--algo") {
      ParseNamed(val, "--algo", &spec.algo, &spec.algo_params);
    } else if (key == "--seeds") {
      spec.seeds = ParseSeeds(val);
    } else if (key == "--sweep") {
      const std::size_t colon = val.find(':');
      if (colon == std::string::npos || colon == 0 || colon + 1 >= val.size()) {
        throw InvalidArgument("--sweep: expected key:v1,v2,... got '" + val +
                              "'");
      }
      spec.sweep_key = val.substr(0, colon);
      spec.sweep_values.clear();
      std::size_t pos = colon + 1;
      while (pos <= val.size()) {
        std::size_t comma = val.find(',', pos);
        if (comma == std::string::npos) comma = val.size();
        if (comma == pos) throw InvalidArgument("--sweep: empty value");
        spec.sweep_values.push_back(val.substr(pos, comma - pos));
        pos = comma + 1;
      }
    } else if (key == "--dynamics") {
      spec.dynamics = ParamMap::Parse(val, "--dynamics");
      if (spec.dynamics.empty()) {
        throw InvalidArgument("--dynamics: expected k=v,... (e.g. "
                              "model=waypoint,epochs=8)");
      }
    } else if (key == "--id-seed") {
      spec.id_seed = ParseUint64(val, key);
    } else if (key == "--nonce") {
      spec.nonce = ParseUint64(val, key);
    } else if (key == "--alpha") {
      spec.sinr.alpha = ParseDouble(val, key);
    } else if (key == "--beta") {
      spec.sinr.beta = ParseDouble(val, key);
    } else if (key == "--eps") {
      spec.sinr.eps = ParseDouble(val, key);
    } else if (key == "--noise") {
      spec.sinr.noise = ParseDouble(val, key);
    } else if (key == "--power") {
      spec.sinr.power = ParseDouble(val, key);
      power_set = true;
    } else if (key == "--id-space") {
      spec.sinr.id_space = ParseInt64(val, key);
    } else if (key == "--shadowing") {
      const std::size_t colon = val.find(':');
      spec.shadowing.spread =
          ParseDouble(val.substr(0, colon == std::string::npos ? val.size()
                                                               : colon),
                      key);
      spec.shadowing.seed =
          colon == std::string::npos ? 0 : ParseUint64(val.substr(colon + 1), key);
    } else if (key == "--engine") {
      if (val == "auto") {
        spec.engine.mode = sinr::Engine::Mode::kAuto;
      } else if (val == "exact") {
        spec.engine.mode = sinr::Engine::Mode::kExact;
      } else if (val == "grid") {
        spec.engine.mode = sinr::Engine::Mode::kGrid;
      } else {
        throw InvalidArgument("--engine: unknown mode '" + val +
                              "' (expected exact, grid or auto)");
      }
    } else if (key == "--cell") {
      spec.engine.cell = ParseDouble(val, key);
      if (!(spec.engine.cell > 0.0)) {
        throw InvalidArgument("--cell: tile side must be positive");
      }
    } else if (key == "--grid-threshold") {
      spec.engine.grid_threshold =
          static_cast<std::size_t>(ParseUint64(val, key));
    } else if (key == "--rounds") {
      spec.max_rounds = ParseInt64(val, key);
    } else if (key == "--faults") {
      spec.faults = static_cast<int>(ParseInt64(val, key));
      if (spec.faults < 0) throw InvalidArgument("--faults: must be >= 0");
    } else if (key == "--threads") {
      spec.threads = static_cast<int>(ParseInt64(val, key));
      // Same bounds as DCC_ENGINE_THREADS: the value becomes the engine's
      // shard count, and grid-mode scratch scales with shards x tiles — an
      // absurd value must fail validation, not allocation.
      if (spec.threads < 0 || spec.threads > 4096) {
        throw InvalidArgument("--threads: shard count '" + val +
                              "' must be in [0, 4096] (0 = hardware)");
      }
      // One knob, both layers: sweep workers AND engine round shards. The
      // shared WorkerPool arbitrates — nested engine fan-outs publish
      // tickets idle workers steal, so the tail of a sweep donates its
      // freed threads to the runs still going.
      spec.engine.threads = spec.threads;
    } else if (key == "--ranks") {
      spec.ranks = static_cast<int>(ParseInt64(val, key));
      // Each rank is a forked process with its own network replica; cap
      // well below any sane host's process budget.
      if (spec.ranks < 0 || spec.ranks > 512) {
        throw InvalidArgument("--ranks: rank count '" + val +
                              "' must be in [0, 512] (0 = in-process)");
      }
    } else if (key == "--pipeline") {
      if (val == "on") {
        spec.engine.pipeline = true;
      } else if (val == "off") {
        spec.engine.pipeline = false;
      } else {
        throw InvalidArgument("--pipeline: expected on or off, got '" + val +
                              "'");
      }
    } else if (key == "--farfield") {
      if (val == "pyramid") {
        spec.engine.farfield = sinr::Engine::FarField::kPyramid;
      } else if (val == "flat") {
        spec.engine.farfield = sinr::Engine::FarField::kFlat;
      } else {
        throw InvalidArgument("--farfield: expected pyramid or flat, got '" +
                              val + "'");
      }
    } else if (key == "--prologue-cache") {
      const std::uint64_t entries = ParseUint64(val, key);
      // Each entry pins a full prologue (tile state + CSR); bound it the
      // same way DCC_ENGINE_PROLOGUE_CACHE is.
      if (entries > 1024) {
        throw InvalidArgument("--prologue-cache: entry count '" + val +
                              "' must be in [0, 1024] (0 = off)");
      }
      spec.engine.prologue_cache = static_cast<std::size_t>(entries);
    } else {
      throw InvalidArgument("unknown scenario flag '" + key + "'");
    }
  }
  if (spec.seeds.empty()) throw InvalidArgument("--seeds: empty seed list");
  // The paper normalizes range to 1 via P = noise * beta; keep the coupling
  // unless the power was pinned explicitly.
  if (!power_set) spec.sinr.power = spec.sinr.noise * spec.sinr.beta;
  return spec;
}

std::vector<std::string> ScenarioSpec::ToArgs() const {
  const sinr::Params def = sinr::Params::Default();
  std::vector<std::string> args;
  std::string topo = "--topology=" + topology;
  if (!topology_params.empty()) topo += ':' + topology_params.ToString();
  args.push_back(topo);
  std::string alg = "--algo=" + algo;
  if (!algo_params.empty()) alg += ':' + algo_params.ToString();
  args.push_back(alg);
  args.push_back("--seeds=" + FormatSeeds(seeds));
  if (!sweep_key.empty()) {
    std::string sw = "--sweep=" + sweep_key + ':';
    for (std::size_t i = 0; i < sweep_values.size(); ++i) {
      if (i) sw += ',';
      sw += sweep_values[i];
    }
    args.push_back(sw);
  }
  if (!dynamics.empty()) args.push_back("--dynamics=" + dynamics.ToString());
  if (id_seed) args.push_back("--id-seed=" + std::to_string(*id_seed));
  if (nonce) args.push_back("--nonce=" + std::to_string(*nonce));
  if (sinr.alpha != def.alpha) {
    args.push_back("--alpha=" + JsonNumber(sinr.alpha));
  }
  if (sinr.beta != def.beta) args.push_back("--beta=" + JsonNumber(sinr.beta));
  if (sinr.eps != def.eps) args.push_back("--eps=" + JsonNumber(sinr.eps));
  if (sinr.noise != def.noise) {
    args.push_back("--noise=" + JsonNumber(sinr.noise));
  }
  if (sinr.power != sinr.noise * sinr.beta) {
    args.push_back("--power=" + JsonNumber(sinr.power));
  }
  if (sinr.id_space != def.id_space) {
    args.push_back("--id-space=" + std::to_string(sinr.id_space));
  }
  if (shadowing.spread != 0.0) {
    std::string sh = "--shadowing=" + JsonNumber(shadowing.spread);
    if (shadowing.seed != 0) sh += ':' + std::to_string(shadowing.seed);
    args.push_back(sh);
  }
  if (engine.mode == sinr::Engine::Mode::kExact) {
    args.push_back("--engine=exact");
  } else if (engine.mode == sinr::Engine::Mode::kGrid) {
    args.push_back("--engine=grid");
  }
  if (engine.cell != 0.0) args.push_back("--cell=" + JsonNumber(engine.cell));
  if (engine.grid_threshold != sinr::Engine::Options{}.grid_threshold) {
    args.push_back("--grid-threshold=" +
                   std::to_string(engine.grid_threshold));
  }
  if (max_rounds != 0) args.push_back("--rounds=" + std::to_string(max_rounds));
  if (faults != 0) args.push_back("--faults=" + std::to_string(faults));
  if (threads != 0) args.push_back("--threads=" + std::to_string(threads));
  if (ranks != 0) args.push_back("--ranks=" + std::to_string(ranks));
  if (engine.pipeline) args.push_back("--pipeline=on");
  if (engine.farfield != sinr::Engine::Options{}.farfield) {
    args.push_back("--farfield=flat");
  }
  if (engine.prologue_cache != 0) {
    args.push_back("--prologue-cache=" + std::to_string(engine.prologue_cache));
  }
  return args;
}

std::string ScenarioSpec::ToString() const {
  std::string out;
  for (const std::string& arg : ToArgs()) {
    if (!out.empty()) out += ' ';
    out += arg;
  }
  return out;
}

std::string ScenarioSpec::CanonicalKey() const {
  ScenarioSpec sorted = *this;
  sorted.topology_params = topology_params.Sorted();
  sorted.algo_params = algo_params.Sorted();
  sorted.dynamics = dynamics.Sorted();
  return sorted.ToString();
}

}  // namespace dcc::scenario
