# Empty dependencies file for theory_mode_test.
# This may be replaced when dependencies are built.
