#include "dcc/sinr/params.h"

#include <cmath>

namespace dcc::sinr {

void Params::Validate() const {
  DCC_REQUIRE(alpha > 2.0, "SINR: alpha must be > 2");
  DCC_REQUIRE(beta > 1.0, "SINR: beta must be > 1");
  DCC_REQUIRE(noise > 0.0, "SINR: noise must be > 0");
  DCC_REQUIRE(power > 0.0, "SINR: power must be > 0");
  DCC_REQUIRE(eps > 0.0 && eps < 1.0, "SINR: eps must be in (0,1)");
  DCC_REQUIRE(id_space >= 1, "SINR: id_space must be >= 1");
  DCC_REQUIRE(TransmissionRange() > eps,
              "SINR: communication radius (range - eps) must be positive");
}

double Params::TransmissionRange() const {
  return std::pow(power / (noise * beta), 1.0 / alpha);
}

Params Params::Default(double alpha, double beta, double eps) {
  Params p;
  p.alpha = alpha;
  p.beta = beta;
  p.noise = 1.0;
  p.power = p.noise * p.beta;  // range = 1
  p.eps = eps;
  p.Validate();
  return p;
}

}  // namespace dcc::sinr
