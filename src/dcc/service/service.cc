#include "dcc/service/service.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <sstream>
#include <utility>

#include "dcc/common/json.h"
#include "dcc/common/wire.h"
#include "dcc/obs/metrics.h"
#include "dcc/obs/trace.h"
#include "dcc/scenario/dynamics.h"

namespace dcc::service {

namespace {

using Clock = std::chrono::steady_clock;

std::vector<std::string> SplitLine(const std::string& line) {
  std::vector<std::string> args;
  std::size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && line[pos] == ' ') ++pos;
    std::size_t end = line.find(' ', pos);
    if (end == std::string::npos) end = line.size();
    if (end > pos) args.push_back(line.substr(pos, end - pos));
    pos = end;
  }
  return args;
}

std::uint64_t SeedFromField(const double* field,
                            const scenario::ScenarioSpec& spec) {
  if (field == nullptr) return spec.seeds.front();
  if (*field < 0 || *field != std::floor(*field) || *field > 9.0e15) {
    throw InvalidArgument("seed: must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(*field);
}

std::string ErrorResponse(std::uint64_t id, const std::string& what) {
  return "{\"id\": " + std::to_string(id) +
         ", \"ok\": false, \"error\": " + JsonQuote(what) + '}';
}

}  // namespace

std::string Service::ErrorFrame(std::uint64_t id, const std::string& code,
                                const std::string& message) {
  return "{\"id\": " + std::to_string(id) +
         ", \"ok\": false, \"error\": {\"code\": " + JsonQuote(code) +
         ", \"message\": " + JsonQuote(message) + "}}";
}

std::string TopologyCacheKey(const scenario::ScenarioSpec& spec,
                             std::uint64_t seed) {
  scenario::ScenarioSpec key;
  key.topology = spec.topology;
  key.topology_params = spec.topology_params;
  key.sinr = spec.sinr;
  key.shadowing = spec.shadowing;
  key.seeds = {seed};
  // Resolve the id-seed default so "--id-seed=4 under seed 3" and plain
  // "seed 3" (id seed 3+1) address the same network.
  key.id_seed = spec.id_seed.value_or(seed + 1);
  return key.CanonicalKey();
}

Service::Service(Options opts)
    : opts_(std::move(opts)),
      admission_(parallel::WorkerPool::Shared(), opts_.queue_capacity),
      topology_cache_(opts_.topology_cache),
      result_cache_(opts_.result_cache) {
  DCC_REQUIRE(!opts_.socket_path.empty(), "service: socket_path required");
}

Service::~Service() { Drain(); }

void Service::Start() {
  DCC_REQUIRE(!started_.load(), "service: already started");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opts_.socket_path.size() >= sizeof addr.sun_path) {
    throw InvalidArgument("service: socket path '" + opts_.socket_path +
                          "' exceeds the AF_UNIX limit");
  }
  std::memcpy(addr.sun_path, opts_.socket_path.c_str(),
              opts_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    throw wire::WireError(std::string("service: socket: ") +
                          std::strerror(errno));
  }
  ::unlink(opts_.socket_path.c_str());  // a stale file from a dead daemon
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw wire::WireError("service: bind " + opts_.socket_path + ": " +
                          std::strerror(err));
  }
  if (::listen(listen_fd_, 128) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw wire::WireError(std::string("service: listen: ") +
                          std::strerror(err));
  }
  start_time_ = Clock::now();
  started_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

void Service::AcceptLoop() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (drain) or fatal — stop accepting
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (draining_.load(std::memory_order_acquire)) {
      ::close(fd);
      continue;
    }
    conn_fds_.push_back(fd);
    ++connections_total_;
    conn_threads_.emplace_back([this, fd] { ConnectionLoop(fd); });
  }
}

void Service::ConnectionLoop(int fd) {
  std::string frame;
  try {
    while (wire::ReadFrame(fd, &frame)) {
      const auto t0 = Clock::now();
      const std::string response = HandleRequest(frame);
      wire::WriteFrame(fd, response);
      latency_.Record(std::chrono::duration_cast<std::chrono::microseconds>(
                          Clock::now() - t0)
                          .count());
      requests_.fetch_add(1, std::memory_order_relaxed);
      if (draining_.load(std::memory_order_acquire)) break;
    }
  } catch (const std::exception&) {
    // Peer vanished or sent garbage framing: drop the connection. Request-
    // level errors were already answered in-band by HandleRequest.
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (std::size_t i = 0; i < conn_fds_.size(); ++i) {
    if (conn_fds_[i] == fd) {
      conn_fds_[i] = conn_fds_.back();
      conn_fds_.pop_back();
      break;
    }
  }
}

std::string Service::HandleRequest(const std::string& frame) {
  DCC_TRACE_SPAN("service.request");
  std::uint64_t id = 0;
  try {
    const JsonValue req = JsonValue::Parse(frame);
    const double id_num = req.GetNumber("id", 0.0);
    if (id_num >= 0 && id_num == std::floor(id_num)) {
      id = static_cast<std::uint64_t>(id_num);
    }
    const std::string op = req.GetString("op", "run");
    if (op == "ping") {
      return "{\"id\": " + std::to_string(id) + ", \"ok\": true}";
    }
    if (op == "stats") {
      std::ostringstream os;
      Snapshot().PrintJson(os);
      return "{\"id\": " + std::to_string(id) +
             ", \"ok\": true, \"stats\": " + os.str() + '}';
    }
    if (op == "metrics") {
      std::ostringstream os;
      PrintMetricsText(os);
      return "{\"id\": " + std::to_string(id) +
             ", \"ok\": true, \"metrics\": " + JsonQuote(os.str()) + '}';
    }
    if (op != "run") {
      throw InvalidArgument("unknown op '" + op +
                            "' (expected run, stats, metrics or ping)");
    }
    const JsonValue* spec_field = req.Find("spec");
    if (spec_field == nullptr) {
      throw InvalidArgument("run request needs a \"spec\" field");
    }
    const JsonValue* seed_field = req.Find("seed");
    double seed_num = 0.0;
    if (seed_field != nullptr) seed_num = seed_field->GetNumber();
    return HandleRun(id, spec_field->GetString(),
                     seed_field ? &seed_num : nullptr);
  } catch (const DrainingError& e) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return ErrorFrame(id, "draining", e.what());
  } catch (const std::exception& e) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(id, e.what());
  }
}

std::string Service::HandleRun(std::uint64_t id, const std::string& spec_line,
                               const double* seed_field) {
  const scenario::ScenarioSpec spec =
      scenario::ScenarioSpec::FromArgs(SplitLine(spec_line));
  if (!spec.sweep_key.empty()) {
    throw InvalidArgument(
        "service requests are single runs; expand --sweep grids into one "
        "request per (value, seed)");
  }
  const std::uint64_t seed = SeedFromField(seed_field, spec);

  scenario::ScenarioSpec run_spec = spec;
  run_spec.seeds = {seed};
  const std::string result_key = run_spec.CanonicalKey();

  bool result_hit = false;
  bool topology_hit = false;
  const std::shared_ptr<const std::string> report = result_cache_.GetOrBuild(
      result_key,
      [&]() -> std::shared_ptr<const std::string> {
        std::string serialized;
        const bool admitted = admission_.Execute([&] {
          scenario::RunReport rep;
          if (scenario::IsDynamic(spec)) {
            // Mobility mutates its own network copy per run; the shared
            // topology cache only serves immutable static networks.
            rep = scenario::RunScenario(spec, seed);
          } else {
            bool hit = false;
            const std::shared_ptr<const sinr::Network> net =
                topology_cache_.GetOrBuild(
                    TopologyCacheKey(spec, seed),
                    [&] {
                      return std::make_shared<const sinr::Network>(
                          scenario::BuildScenarioNetwork(spec, seed));
                    },
                    &hit);
            topology_hit = hit;
            if (hit) {
              DCC_TRACE_INSTANT("service.topology_cache.hit");
            } else {
              DCC_TRACE_INSTANT("service.topology_cache.miss");
            }
            rep = scenario::RunScenarioOnNetwork(spec, seed, *net);
          }
          std::ostringstream os;
          rep.PrintJson(os);
          serialized = os.str();
        });
        if (!admitted) {
          throw DrainingError(
              "service is draining; no new runs are admitted");
        }
        return std::make_shared<const std::string>(std::move(serialized));
      },
      &result_hit);

  if (result_hit) {
    DCC_TRACE_INSTANT("service.result_cache.hit");
  } else {
    DCC_TRACE_INSTANT("service.result_cache.miss");
  }
  runs_.fetch_add(1, std::memory_order_relaxed);
  const char* cached =
      result_hit ? "result" : (topology_hit ? "topology" : "none");
  return "{\"id\": " + std::to_string(id) + ", \"ok\": true, \"cached\": \"" +
         cached + "\", \"report\": " + *report + '}';
}

void Service::Drain() {
  if (!started_.load(std::memory_order_acquire)) return;
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true)) {
    // Another drainer is (or was) at work; wait for it to finish joining.
    while (!drained_.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    return;
  }
  // Wake admitters blocked on a full queue FIRST: their requests are
  // rejected with the structured draining frame (and their connection
  // threads flush it and exit) instead of waiting out every admitted run.
  admission_.Drain();
  // Stop the accept loop, then stop new frames on every open connection;
  // requests already received finish and flush their responses. The fd
  // slot is only cleared once the accept thread has joined — it reads
  // listen_fd_ on every accept call, so writing -1 any earlier races.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  accept_thread_.join();
  listen_fd_ = -1;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
  }
  // The accept loop is gone, so conn_threads_ no longer grows.
  for (std::thread& t : conn_threads_) t.join();
  conn_threads_.clear();
  ::unlink(opts_.socket_path.c_str());
  drained_.store(true, std::memory_order_release);
}

ServiceStats Service::Snapshot() const {
  ServiceStats s;
  if (started_.load(std::memory_order_acquire)) {
    s.uptime_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      Clock::now() - start_time_)
                      .count();
  }
  {
    std::lock_guard<std::mutex> lock(const_cast<std::mutex&>(conn_mu_));
    s.connections_active = static_cast<std::int64_t>(conn_fds_.size());
    s.connections_total = connections_total_;
  }
  s.requests = requests_.load(std::memory_order_relaxed);
  s.runs = runs_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.result_hits = result_cache_.hits();
  s.result_misses = result_cache_.misses();
  s.topology_hits = topology_cache_.hits();
  s.topology_misses = topology_cache_.misses();
  s.queue_depth = admission_.depth();
  s.queue_peak = admission_.peak_depth();
  s.queue_capacity = admission_.capacity();
  if (s.uptime_ms > 0) {
    s.throughput_rps = static_cast<double>(s.requests) /
                       (static_cast<double>(s.uptime_ms) / 1000.0);
  }
  s.latency_ms_p50 = latency_.Quantile(0.50) / 1000.0;
  s.latency_ms_p99 = latency_.Quantile(0.99) / 1000.0;
  s.draining = draining_.load(std::memory_order_acquire);
  return s;
}

void Service::PrintMetricsText(std::ostream& os) const {
  const ServiceStats s = Snapshot();
  const auto counter = [&os](const char* name, const char* help,
                             std::int64_t v) {
    os << "# HELP " << name << ' ' << help << "\n# TYPE " << name
       << " counter\n"
       << name << ' ' << v << '\n';
  };
  const auto gauge = [&os](const char* name, const char* help,
                           std::int64_t v) {
    os << "# HELP " << name << ' ' << help << "\n# TYPE " << name
       << " gauge\n"
       << name << ' ' << v << '\n';
  };
  counter("dcc_service_requests_total", "Frames answered", s.requests);
  counter("dcc_service_runs_total", "Run ops that produced a report", s.runs);
  counter("dcc_service_errors_total", "Requests answered with ok=false",
          s.errors);
  counter("dcc_service_connections_total", "Connections accepted",
          s.connections_total);
  counter("dcc_service_result_cache_hits_total", "Result cache hits",
          s.result_hits);
  counter("dcc_service_result_cache_misses_total", "Result cache misses",
          s.result_misses);
  counter("dcc_service_topology_cache_hits_total", "Topology cache hits",
          s.topology_hits);
  counter("dcc_service_topology_cache_misses_total", "Topology cache misses",
          s.topology_misses);
  gauge("dcc_service_connections_active", "Open connections",
        s.connections_active);
  gauge("dcc_service_queue_depth", "Admitted runs waiting or running",
        s.queue_depth);
  gauge("dcc_service_queue_peak", "Peak admission queue depth", s.queue_peak);
  gauge("dcc_service_uptime_ms", "Milliseconds since Start", s.uptime_ms);

  const char* hist = "dcc_service_request_latency_us";
  os << "# HELP " << hist << " Request latency, microseconds\n"
     << "# TYPE " << hist << " histogram\n";
  const auto snap = latency_.SnapshotBuckets();
  int last = -1;
  std::int64_t total = 0;
  for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
    total += snap[static_cast<std::size_t>(i)];
    if (snap[static_cast<std::size_t>(i)] > 0) last = i;
  }
  std::int64_t cum = 0;
  for (int i = 0; i <= last; ++i) {
    cum += snap[static_cast<std::size_t>(i)];
    os << hist << "_bucket{le=\"" << LatencyHistogram::BucketUpper(i) << "\"} "
       << cum << '\n';
  }
  os << hist << "_bucket{le=\"+Inf\"} " << total << '\n'
     << hist << "_sum " << latency_.sum() << '\n'
     << hist << "_count " << total << '\n';

  obs::MetricsRegistry::Global().PrintText(os);
}

}  // namespace dcc::service
