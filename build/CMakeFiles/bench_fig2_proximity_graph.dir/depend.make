# Empty dependencies file for bench_fig2_proximity_graph.
# This may be replaced when dependencies are built.
