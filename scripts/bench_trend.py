#!/usr/bin/env python3
"""Tracked performance trend for the repo's top-line benches.

BENCH_trend.json (at the repo root, committed) holds one entry per
recorded run: a timestamp, the host parallelism, and the key config
points of every tracked bench schema. This script maintains it:

  append   read bench JSON lines on stdin (bench_parallel_rounds,
           bench_service_load and/or bench_distrib_rounds, each with
           --compare_json; concatenating the streams records one
           combined entry) and append one trend entry
  check    read bench JSON lines on stdin and compare against the last
           committed entry: exit 1 if any matching config slowed down by
           more than --threshold (default 15%); configs under --min-ms
           are skipped as noise
  delta    same comparison, but emit a markdown table (for
           $GITHUB_STEP_SUMMARY) and always exit 0

Tracked schemas and their identity/value fields:

  dcc.bench.parallel_rounds.v1   keyed on (n, regime, threads, pipeline,
                                 min_shard, farfield, cache), value
                                 ms_per_round
  dcc.bench.service_load.v1      keyed on (workload, phase, connections),
                                 value ms_per_request
  dcc.bench.distrib_rounds.v1    keyed on (n, ranks), value ms_per_round
  dcc.bench.obs_overhead.v1      keyed on (n, trace), value ms_per_round;
                                 only trace=off points are tracked (the
                                 "tracing compiled in but disabled is
                                 free" invariant), under a per-schema 1%
                                 gate instead of --threshold

Points are matched on (schema, key fields). A schema may pin its own
regression threshold (the obs overhead gate above); --threshold covers
the rest. Configs present in one side only produce a warning, never a
failure — the thread ladder legitimately varies with host core count,
and a new bench's first run has no baseline.
The regression gate can be skipped for a known-slow commit with
`[bench-skip]` in the commit message (the CI job checks the tag, not this
script).
"""

import argparse
import json
import sys
import time
from pathlib import Path

SCHEMAS = {
    "dcc.bench.parallel_rounds.v1": {
        "key_fields": ("n", "regime", "threads", "pipeline", "min_shard",
                       "farfield", "cache"),
        "value_field": "ms_per_round",
        # The acceptance-relevant configs a trend entry records; everything
        # else in the bench output is transient diagnostics. sparse_wide
        # tracks the pyramid-vs-flat far-field win; tdma tracks the
        # prologue-cache win on a periodic schedule.
        "keep": lambda obj: obj.get("regime") in {"dense", "sparse",
                                                  "dynamic", "sparse_wide",
                                                  "tdma"},
    },
    "dcc.bench.service_load.v1": {
        "key_fields": ("workload", "phase", "connections"),
        "value_field": "ms_per_request",
        "keep": lambda obj: True,
    },
    "dcc.bench.distrib_rounds.v1": {
        "key_fields": ("n", "ranks"),
        "value_field": "ms_per_round",
        "keep": lambda obj: True,
    },
    "dcc.bench.obs_overhead.v1": {
        "key_fields": ("n", "trace"),
        "value_field": "ms_per_round",
        # trace=on lines are diagnostics (recording is allowed to cost);
        # the tracked invariant is that the DISABLED instrumentation adds
        # nothing to the round path, so only trace=off enters the trend —
        # under a deliberately tight gate.
        "keep": lambda obj: obj.get("trace") == "off",
        "threshold": 1.0,
    },
}


def point_key(obj):
    """(schema, field values...) for a bench point, or None if untracked."""
    cfg = SCHEMAS.get(obj.get("schema"))
    if cfg is None or not cfg["keep"](obj):
        return None
    return (obj["schema"],) + tuple(obj.get(f) for f in cfg["key_fields"])


def point_value(obj):
    return obj[SCHEMAS[obj["schema"]]["value_field"]]


def read_points(stream):
    """Parses bench JSON lines into {key_tuple: point_dict}."""
    points = {}
    for line in stream:
        line = line.strip()
        if not line or not line.startswith("{"):
            continue
        obj = json.loads(line)
        key = point_key(obj)
        if key is not None:
            points[key] = obj
    return points


def load_trend(path):
    if not path.exists():
        return []
    with path.open() as f:
        data = json.load(f)
    if not isinstance(data, list):
        raise SystemExit(f"bench_trend: {path} is not a JSON list")
    return data


def fmt_key(key):
    schema = key[0]
    if schema == "dcc.bench.parallel_rounds.v1":
        n, regime, threads, pipeline, min_shard, farfield, cache = key[1:]
        pipe = "on" if pipeline else "off"
        return (f"n={n} {regime} t={threads} pipe={pipe} grain={min_shard} "
                f"ff={farfield} cache={cache}")
    if schema == "dcc.bench.service_load.v1":
        workload, phase, connections = key[1:]
        return f"service {workload} {phase} c={connections}"
    if schema == "dcc.bench.distrib_rounds.v1":
        n, ranks = key[1:]
        return f"n={n} distrib ranks={ranks}"
    if schema == "dcc.bench.obs_overhead.v1":
        n, trace = key[1:]
        return f"n={n} obs trace={trace}"
    return " ".join(str(k) for k in key)


def cmd_append(args, points):
    path = Path(args.trend_file)
    trend = load_trend(path)
    entry = {
        "schema": "dcc.bench_trend.v1",
        "recorded_unix": int(time.time()),
        "host_parallelism": args.host_parallelism,
        "label": args.label,
        "points": [points[k] for k in sorted(points, key=str)],
    }
    trend.append(entry)
    with path.open("w") as f:
        json.dump(trend, f, indent=1)
        f.write("\n")
    print(f"bench_trend: appended entry #{len(trend)} "
          f"({len(points)} points) to {path}")
    return 0


def compare(args, points):
    """Returns (rows, regressions): per-config comparison vs the last
    committed entry. Rows are (key, base_ms, new_ms, ratio_or_None)."""
    trend = load_trend(Path(args.trend_file))
    if not trend:
        print("bench_trend: no committed trend entry yet — nothing to "
              "compare against", file=sys.stderr)
        return [], []
    base = {}
    for p in trend[-1]["points"]:
        key = point_key(p)
        if key is not None:
            base[key] = p
    rows, regressions = [], []
    for key in sorted(set(base) | set(points), key=str):
        b, p = base.get(key), points.get(key)
        if b is None or p is None:
            side = "baseline" if p is None else "new run"
            print(f"bench_trend: warning: {fmt_key(key)} only in {side}",
                  file=sys.stderr)
            continue
        base_ms, new_ms = point_value(b), point_value(p)
        if base_ms < args.min_ms or new_ms < args.min_ms:
            rows.append((key, base_ms, new_ms, None))  # noise floor
            continue
        ratio = new_ms / base_ms
        rows.append((key, base_ms, new_ms, ratio))
        threshold = SCHEMAS[key[0]].get("threshold", args.threshold)
        if ratio > 1.0 + threshold / 100.0:
            regressions.append((key, base_ms, new_ms, ratio, threshold))
    return rows, regressions


def cmd_check(args, points):
    rows, regressions = compare(args, points)
    if not rows:
        return 0
    for key, base_ms, new_ms, ratio, threshold in regressions:
        print(f"bench_trend: REGRESSION {fmt_key(key)}: "
              f"{base_ms:.3f} -> {new_ms:.3f} ms "
              f"({(ratio - 1) * 100:+.1f}%, gate {threshold:g}%)",
              file=sys.stderr)
    if regressions:
        print(f"bench_trend: {len(regressions)} config(s) regressed past "
              f"their gate vs the last committed trend point "
              f"(commit with [bench-skip] to override)", file=sys.stderr)
        return 1
    print(f"bench_trend: {len(rows)} configs within their gates "
          f"(default {args.threshold}%) of the last committed trend point")
    return 0


def cmd_delta(args, points):
    rows, regressions = compare(args, points)
    print("| config | committed ms | this run ms | delta |")
    print("|---|---|---|---|")
    for key, base_ms, new_ms, ratio in rows:
        delta = ("(under noise floor)" if ratio is None
                 else f"{(ratio - 1) * 100:+.1f}%")
        print(f"| {fmt_key(key)} | {base_ms:.3f} | {new_ms:.3f} | {delta} |")
    if regressions:
        print(f"\n**{len(regressions)} config(s) over their regression "
              f"threshold.**")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("command", choices=["append", "check", "delta"])
    ap.add_argument("--trend-file", default="BENCH_trend.json")
    ap.add_argument("--threshold", type=float, default=15.0,
                    help="regression gate, percent (default 15)")
    ap.add_argument("--min-ms", type=float, default=1.0,
                    help="skip configs faster than this (noise floor)")
    ap.add_argument("--host-parallelism", type=int, default=0,
                    help="recorded with `append` (pool parallelism)")
    ap.add_argument("--label", default="",
                    help="free-form tag recorded with `append`")
    args = ap.parse_args()

    points = read_points(sys.stdin)
    if not points and args.command != "delta":
        print("bench_trend: no tracked bench JSON lines on stdin",
              file=sys.stderr)
        return 2
    return {"append": cmd_append, "check": cmd_check,
            "delta": cmd_delta}[args.command](args, points)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. piped into `head`
        sys.exit(0)
