file(REMOVE_RECURSE
  "CMakeFiles/wss_test.dir/tests/wss_test.cc.o"
  "CMakeFiles/wss_test.dir/tests/wss_test.cc.o.d"
  "wss_test"
  "wss_test.pdb"
  "wss_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
