file(REMOVE_RECURSE
  "CMakeFiles/sensor_field_broadcast.dir/examples/sensor_field_broadcast.cpp.o"
  "CMakeFiles/sensor_field_broadcast.dir/examples/sensor_field_broadcast.cpp.o.d"
  "sensor_field_broadcast"
  "sensor_field_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_field_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
