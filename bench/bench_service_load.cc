// bench_service_load — the top-line number for the scenario service: what
// repeat traffic costs against a resident dccd versus first-contact.
//
// The bench starts an in-process Service on a private socket and replays
// a mixed workload (static clustering + local broadcast on a shared
// topology, a second topology size, and a dynamic mobility spec, crossed
// with two seeds) through the same loadgen that powers `dcc_load`:
//
//   cold   every (spec, seed) pair requested exactly once — each request
//          pays topology generation + the full run
//   warm   --requests requests round-robin over the same pairs across
//          --connections concurrent connections — every request must be a
//          result-cache hit (zero engine rounds) with byte-identical
//          report bytes
//
// The bench FAILS (exit 1) if warm traffic is not 100% result-cached, if
// byte-identity breaks, or if the warm speedup falls under --min_speedup
// (default 10x; 0 disables). --compare_json emits one
// dcc.bench.service_load.v1 object per phase; CI uploads the lines as
// BENCH_service.json and scripts/bench_trend.py tracks them in
// BENCH_trend.json alongside the parallel-rounds points.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <unistd.h>
#include <vector>

#include "dcc/service/loadgen.h"
#include "dcc/service/service.h"

namespace {

using dcc::service::LoadResult;
using dcc::service::LoadSpec;

void EmitLine(bool json, const char* phase, int connections,
              const LoadResult& r, double hit_rate, double speedup) {
  if (json) {
    std::cout << "{\"schema\": \"dcc.bench.service_load.v1\", "
              << "\"workload\": \"mixed\", \"phase\": \"" << phase
              << "\", \"connections\": " << connections
              << ", \"requests\": " << r.requests
              << ", \"ms_per_request\": " << r.ms_per_request
              << ", \"rps\": " << r.rps << ", \"result_hit_rate\": "
              << hit_rate << ", \"speedup\": " << speedup
              << ", \"consistent\": "
              << (r.reports_consistent ? "true" : "false") << "}\n";
  } else {
    std::printf("%-5s  %5d conns  %6lld req  %10.3f ms/req  %9.1f rps  "
                "hit %4.0f%%  %6.1fx\n",
                phase, connections, static_cast<long long>(r.requests),
                r.ms_per_request, r.rps, hit_rate * 100.0, speedup);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  int connections = 4;
  int requests = 2000;
  double min_speedup = 10.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--compare_json") == 0) {
      json = true;
    } else if (std::strncmp(argv[i], "--connections=", 14) == 0) {
      connections = std::atoi(argv[i] + 14);
    } else if (std::strncmp(argv[i], "--requests=", 11) == 0) {
      requests = std::atoi(argv[i] + 11);
    } else if (std::strncmp(argv[i], "--min_speedup=", 14) == 0) {
      min_speedup = std::atof(argv[i] + 14);
    } else {
      std::cerr << "usage: bench_service_load [--compare_json] "
                   "[--connections=N] [--requests=N] [--min_speedup=X]\n";
      return 2;
    }
  }
  if (connections < 1 || requests < 1) {
    std::cerr << "bench_service_load: --connections and --requests must be "
                 ">= 1\n";
    return 2;
  }

  dcc::service::Service::Options opts;
  opts.socket_path =
      "/tmp/dcc_bench_service." + std::to_string(::getpid()) + ".sock";
  dcc::service::Service service(opts);
  service.Start();

  LoadSpec load;
  load.socket_path = opts.socket_path;
  load.spec_lines = {
      // Two algorithms on ONE topology: the second set of cold requests
      // exercises the topology cache even before anything is warm.
      "--topology=uniform:n=64,side=4 --algo=clustering --id-space=4096",
      "--topology=uniform:n=64,side=4 --algo=local_broadcast "
      "--id-space=4096",
      "--topology=uniform:n=96,side=5 --algo=clustering --id-space=4096",
      // A dynamic spec: mobility runs bypass the topology cache but their
      // reports are content-addressed like any other.
      "--topology=uniform:n=64,side=4 --algo=clustering --id-space=4096 "
      "--dynamics=model=waypoint,epochs=2",
  };
  load.seeds = {1, 2};
  load.connections = connections;

  const int pairs =
      static_cast<int>(load.spec_lines.size() * load.seeds.size());

  if (!json) {
    std::cout << "service load (in-process dccd, " << pairs
              << " distinct (spec, seed) pairs)\n";
  }

  // Cold: each pair exactly once; round-robin assignment covers the
  // workload with no repeats.
  load.requests = pairs;
  const LoadResult cold = dcc::service::RunLoad(load);
  const double cold_hits =
      cold.requests > 0 ? static_cast<double>(cold.result_cached) /
                              static_cast<double>(cold.requests)
                        : 0.0;
  EmitLine(json, "cold", connections, cold, cold_hits, 1.0);

  // Warm: the same workload under real repetition.
  load.requests = requests;
  const LoadResult warm = dcc::service::RunLoad(load);
  const double warm_hits =
      warm.requests > 0 ? static_cast<double>(warm.result_cached) /
                              static_cast<double>(warm.requests)
                        : 0.0;
  const double speedup = warm.ms_per_request > 0.0
                             ? cold.ms_per_request / warm.ms_per_request
                             : 0.0;
  EmitLine(json, "warm", connections, warm, warm_hits, speedup);

  service.Drain();

  int bad = 0;
  if (cold.errors > 0 || warm.errors > 0) {
    std::cerr << "bench_service_load: " << (cold.errors + warm.errors)
              << " request(s) failed: " << cold.first_error
              << warm.first_error << '\n';
    bad = 1;
  }
  if (cold.result_cached != 0) {
    std::cerr << "bench_service_load: cold phase saw " << cold.result_cached
              << " result-cache hits; pairs are not distinct\n";
    bad = 1;
  }
  if (warm.result_cached != warm.requests) {
    std::cerr << "bench_service_load: warm phase was not fully cached ("
              << warm.result_cached << "/" << warm.requests
              << " result hits)\n";
    bad = 1;
  }
  if (!cold.reports_consistent || !warm.reports_consistent) {
    std::cerr << "bench_service_load: report bytes diverged for a repeated "
                 "(spec, seed) pair\n";
    bad = 1;
  }
  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::cerr << "bench_service_load: warm speedup " << speedup
              << "x under the " << min_speedup << "x floor\n";
    bad = 1;
  }
  return bad;
}
