// Witnessed strong selectors (Lemma 2).
//
// An (N,k)-wss is a sequence S_1..S_m over [N] such that for every
// X subset of [N] with |X| = k, every x in X and every y not in X there is
// a set S_i with S_i ∩ X = {x} AND y in S_i ("y witnesses the selection").
//
// The paper proves existence of size O(k^3 log N) via the probabilistic
// method (each S_i includes each element independently with prob 1/k). We
// realize the object two ways:
//
//  * `Wss` — the probabilistic-method construction made deterministic by a
//    fixed seed: membership is a pure hash of (seed, i, x). All nodes
//    evaluate the same predicate, so protocols using it stay deterministic;
//    the seed is part of the algorithm description. `sel::VerifyWss`
//    certifies the property on sampled instances.
//  * `GreedyWss` — an explicitly derandomized construction (greedy set
//    cover over all (X, x, y) constraints) for small N; used by tests and
//    the selector ablation bench to ground-truth the implicit version.
#pragma once

#include <cstdint>
#include <vector>

#include "dcc/common/rng.h"
#include "dcc/common/types.h"

namespace dcc::sel {

class Wss {
 public:
  // Theory-shaped length: ceil(c * k^2 * (k + 2) * ln N) rounds (the union
  // bound in Lemma 2 needs m = Theta(k^2 * (k+2) * ln N) with c covering
  // e^2 factors). Practical profiles pass smaller c and rely on the
  // geometric validators.
  static Wss Construct(std::int64_t N, int k, double c, std::uint64_t seed);

  // Explicit length override.
  static Wss WithLength(std::int64_t N, int k, std::int64_t m,
                        std::uint64_t seed);

  std::int64_t size() const { return m_; }
  std::int64_t N() const { return n_; }
  int k() const { return k_; }

  // Is x in S_i? (probability 1/k per (i,x), deterministic in the seed)
  bool Member(std::int64_t i, std::int64_t x) const {
    return hash_.Coin(static_cast<std::uint64_t>(k_),
                      static_cast<std::uint64_t>(i),
                      static_cast<std::uint64_t>(x));
  }

 private:
  Wss(std::int64_t N, int k, std::int64_t m, std::uint64_t seed)
      : n_(N), k_(k), m_(m), hash_(seed) {}

  std::int64_t n_;
  int k_;
  std::int64_t m_;
  StatelessHash hash_;
};

// Greedy derandomized (N,k)-wss for small N (exponential in N; intended for
// N <= ~14, k <= 3). Enumerates all (X, x, y) constraints and repeatedly
// adds the subset of [N] covering the most uncovered constraints.
class GreedyWss {
 public:
  static GreedyWss Construct(std::int64_t N, int k);

  std::int64_t size() const { return static_cast<std::int64_t>(sets_.size()); }
  bool Member(std::int64_t i, std::int64_t x) const {
    return (sets_[static_cast<std::size_t>(i)] >> (x - 1)) & 1u;
  }
  const std::vector<std::uint32_t>& sets() const { return sets_; }

 private:
  std::vector<std::uint32_t> sets_;  // bitmask subsets of [N]
};

}  // namespace dcc::sel
