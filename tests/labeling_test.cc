// Lemma 11: imperfect labeling — labels in [1, Gamma]; per cluster, each
// label is used at most c = O(1) times.
#include "dcc/cluster/labeling.h"

#include <gtest/gtest.h>

#include <tuple>

#include "dcc/cluster/clustering.h"
#include "dcc/cluster/validate.h"
#include "dcc/workload/generators.h"

namespace dcc::cluster {
namespace {

sinr::Params TestParams() {
  sinr::Params p = sinr::Params::Default();
  p.id_space = 1 << 12;
  return p;
}

std::vector<std::size_t> AllIndices(const sinr::Network& net) {
  std::vector<std::size_t> all(net.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return all;
}

TEST(LabelingTest, SingleDenseClusterGetsNearUniqueLabels) {
  const auto params = TestParams();
  std::vector<Vec2> pts;
  for (int i = 0; i < 20; ++i) pts.push_back({0.04 * i, 0.05 * (i % 5)});
  const auto net = workload::MakeNetwork(pts, params, 17);
  const auto prof = Profile::Practical(params.id_space);
  std::vector<ClusterId> cl(net.size(), net.id(0));

  sim::Exec ex(net);
  const auto lab =
      ImperfectLabeling(ex, prof, AllIndices(net), cl, 20, 1);
  const auto chk = CheckLabeling(net, AllIndices(net), cl, lab.label);
  EXPECT_TRUE(chk.all_labeled);
  EXPECT_LE(chk.max_label, 20);
  // Nodes split into O(1) trees per cluster; multiplicity = #trees.
  EXPECT_LE(chk.max_multiplicity, 2 * prof.kappa);
}

TEST(LabelingTest, LabelsWithinGammaOnClusteredWorkload) {
  const auto params = TestParams();
  auto pts = workload::UniformSquare(96, 4.0, 23);
  const auto net = workload::MakeNetwork(pts, params, 29);
  const auto prof = Profile::Practical(params.id_space);
  const auto all = AllIndices(net);
  const int gamma = SubsetDensity(net, all);

  // Real clustering from the pipeline.
  sim::Exec ex(net);
  const auto cl = BuildClustering(ex, prof, all, gamma, 5);
  ASSERT_EQ(cl.unassigned, 0u);

  const auto lab = ImperfectLabeling(ex, prof, all, cl.cluster_of, gamma,
                                     0xBEEF);
  const auto chk = CheckLabeling(net, all, cl.cluster_of, lab.label);
  EXPECT_TRUE(chk.all_labeled);
  EXPECT_LE(chk.max_label, std::max(gamma, chk.max_multiplicity));
  EXPECT_LE(chk.max_multiplicity, 2 * prof.kappa);
}

TEST(LabelingTest, SparseSetTriviallyLabeled) {
  const auto params = TestParams();
  auto pts = workload::Grid(3, 3, 2.0);  // pairwise > 1 apart
  const auto net = workload::MakeNetwork(pts, params, 3);
  const auto prof = Profile::Practical(params.id_space);
  std::vector<ClusterId> cl(net.size());
  for (std::size_t i = 0; i < net.size(); ++i) cl[i] = net.id(i);  // own cluster
  sim::Exec ex(net);
  const auto lab = ImperfectLabeling(ex, prof, AllIndices(net), cl, 4, 2);
  for (const auto& [id, l] : lab.label) EXPECT_EQ(l, 1);
}

class LabelingSweep
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(LabelingSweep, MultiplicityStaysConstant) {
  const auto [n, side, seed] = GetParam();
  const auto params = TestParams();
  auto pts = workload::UniformSquare(n, side, static_cast<std::uint64_t>(seed));
  const auto net = workload::MakeNetwork(
      pts, params, static_cast<std::uint64_t>(seed) + 41);
  const auto prof = Profile::Practical(params.id_space);
  const auto all = AllIndices(net);
  const int gamma = SubsetDensity(net, all);
  sim::Exec ex(net);
  const auto cl = BuildClustering(ex, prof, all, gamma,
                                  static_cast<std::uint64_t>(seed));
  ASSERT_EQ(cl.unassigned, 0u);
  const auto lab = ImperfectLabeling(ex, prof, all, cl.cluster_of, gamma,
                                     static_cast<std::uint64_t>(seed) + 1);
  const auto chk = CheckLabeling(net, all, cl.cluster_of, lab.label);
  EXPECT_TRUE(chk.all_labeled);
  EXPECT_LE(chk.max_multiplicity, 2 * prof.kappa)
      << "n=" << n << " side=" << side << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, LabelingSweep,
                         ::testing::Values(std::tuple{64, 3.0, 1},
                                           std::tuple{96, 4.0, 2},
                                           std::tuple{128, 5.0, 3}));

}  // namespace
}  // namespace dcc::cluster
