// Quickstart: build a random SINR network, run the deterministic clustering
// (Alg. 6 / Theorem 1), and inspect the result.
//
//   $ ./examples/quickstart [n] [side] [seed]
//
// Walks through the core public API:
//   workload::MakeNetwork  -> a network instance (positions + ids + params)
//   sim::Exec              -> the shared round clock over the SINR engine
//   cluster::Profile       -> the algorithm constants
//   cluster::BuildClustering -> the paper's headline algorithm
//   cluster::CheckClustering -> geometric validation of the postconditions
#include <cstdlib>
#include <iostream>

#include "dcc/cluster/clustering.h"
#include "dcc/cluster/validate.h"
#include "dcc/common/table.h"
#include "dcc/workload/generators.h"

int main(int argc, char** argv) {
  using namespace dcc;

  const int n = argc > 1 ? std::atoi(argv[1]) : 128;
  const double side = argc > 2 ? std::atof(argv[2]) : 5.0;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;

  // 1. SINR model parameters: alpha=3, beta=1.5, eps=0.2, range 1,
  //    ids drawn from [1, 4096].
  sinr::Params params = sinr::Params::Default();
  params.id_space = 1 << 12;

  // 2. A workload: n nodes uniform over a side x side field, random ids.
  auto pts = workload::UniformSquare(n, side, seed);
  const sinr::Network net = workload::MakeNetwork(pts, params, seed + 1);
  std::cout << "network: n=" << net.size() << " density=" << net.Density()
            << " degree=" << net.MaxDegree()
            << " diameter=" << net.Diameter() << "\n";

  // 3. Run the deterministic clustering. Everything a node uses is public:
  //    N, the density bound, the SINR parameters and the profile constants.
  const auto prof = cluster::Profile::Practical(params.id_space);
  std::vector<std::size_t> members(net.size());
  for (std::size_t i = 0; i < members.size(); ++i) members[i] = i;

  sim::Exec ex(net);
  const auto res =
      cluster::BuildClustering(ex, prof, members, net.Density(), seed + 2);
  std::cout << "clustering: rounds=" << res.rounds
            << " levels=" << res.levels << " unassigned=" << res.unassigned
            << "\n";

  // 4. Validate the paper's postconditions against the real geometry.
  const auto chk = cluster::CheckClustering(net, members, res.cluster_of);
  Table t({"check", "value"});
  t.AddRow({"clusters", Table::Num(std::int64_t{chk.num_clusters})});
  t.AddRow({"max cluster size", Table::Num(std::int64_t{chk.max_cluster_size})});
  t.AddRow({"max radius (<= 1)", Table::Num(chk.max_radius)});
  t.AddRow({"min center separation (>= 1-eps)", Table::Num(chk.min_center_sep)});
  t.AddRow({"max clusters per unit ball (O(1))",
            Table::Num(std::int64_t{chk.max_clusters_per_unit_ball})});
  t.AddRow({"valid 1-clustering",
            chk.ValidRClustering(1.0, params.eps) ? "yes" : "NO"});
  t.Print(std::cout);
  return chk.ValidRClustering(1.0, params.eps) ? 0 : 1;
}
