// Power-of-two-bucketed histogram — the one histogram shape the repo
// uses, promoted out of the service layer so the metrics registry and the
// daemon's latency tracking share an implementation. Bucket i counts
// values in [2^i, 2^(i+1)) (bucket 0 includes everything below 2).
// Recording is a single relaxed increment per bucket plus a relaxed sum
// accumulate, so concurrent writers never contend; reads snapshot the
// buckets and may lag writers by a few events, which is fine for a
// surface whose job is trend detection.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace dcc::obs {

class Pow2Histogram {
 public:
  static constexpr int kBuckets = 40;

  // Inclusive lower / exclusive upper bound of bucket i.
  static constexpr std::int64_t BucketLower(int i) {
    return i == 0 ? 0 : std::int64_t{1} << i;
  }
  static constexpr std::int64_t BucketUpper(int i) {
    return std::int64_t{2} << i;
  }

  void Record(std::int64_t value) {
    int bucket = 0;
    while (bucket + 1 < kBuckets && value >= BucketUpper(bucket)) ++bucket;
    buckets_[static_cast<std::size_t>(bucket)].fetch_add(
        1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  // Quantile `q` (0 < q <= 1), linearly interpolated inside the covering
  // bucket: with `r` the 1-based rank ceil(q * count) and `b` the bucket
  // holding it, the estimate is lower(b) + width(b) * r_within / n_b. The
  // interpolation is what keeps p50 < p99 when every sample lands in one
  // bucket (the former upper-bound rule collapsed them); a lone sample
  // still reports its bucket's upper bound. Returns 0 when empty.
  double Quantile(double q) const {
    std::array<std::int64_t, kBuckets> snap = SnapshotBuckets();
    std::int64_t total = 0;
    for (const std::int64_t c : snap) total += c;
    if (total == 0) return 0.0;
    auto rank =
        static_cast<std::int64_t>(q * static_cast<double>(total) + 0.999999);
    if (rank < 1) rank = 1;
    if (rank > total) rank = total;
    std::int64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      const std::int64_t in_bucket = snap[static_cast<std::size_t>(i)];
      if (seen + in_bucket >= rank) {
        const auto lo = static_cast<double>(BucketLower(i));
        const auto hi = static_cast<double>(BucketUpper(i));
        return lo + (hi - lo) * static_cast<double>(rank - seen) /
                        static_cast<double>(in_bucket);
      }
      seen += in_bucket;
    }
    return static_cast<double>(BucketUpper(kBuckets - 1));
  }

  std::int64_t count() const {
    std::int64_t total = 0;
    for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
    return total;
  }

  std::int64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  // A relaxed copy of the raw bucket counts, for text exposition.
  std::array<std::int64_t, kBuckets> SnapshotBuckets() const {
    std::array<std::int64_t, kBuckets> snap;
    for (int i = 0; i < kBuckets; ++i) {
      snap[static_cast<std::size_t>(i)] =
          buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    }
    return snap;
  }

 private:
  std::array<std::atomic<std::int64_t>, kBuckets> buckets_{};
  std::atomic<std::int64_t> sum_{0};
};

}  // namespace dcc::obs
