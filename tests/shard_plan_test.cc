// Cut invariants of the domain decomposition (parallel/shard_plan.h). The
// distributed launcher exports bounds() to rank processes, which must agree
// on the exact cut — so the invariants here are wire-protocol guarantees,
// not just engine internals: contiguous, disjoint, covering, and (under
// kBalanced) a pure deterministic function of the weight histogram.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "dcc/common/rng.h"
#include "dcc/parallel/shard_plan.h"

namespace dcc::parallel {
namespace {

std::vector<std::uint32_t> RandomWeights(int n_tiles, std::uint64_t seed,
                                         std::uint32_t max_w) {
  Xoshiro256ss rng(seed);
  std::vector<std::uint32_t> w(static_cast<std::size_t>(n_tiles));
  for (auto& x : w) x = static_cast<std::uint32_t>(rng.NextBelow(max_w + 1));
  return w;
}

// The three structural invariants every plan must satisfy: bounds start at
// 0, end at n_tiles, and never decrease — which is exactly "every tile in
// one shard, shards contiguous and disjoint, union covers [0, n_tiles)".
void CheckStructure(const ShardPlan& plan, int n_tiles, int shards) {
  const auto bounds = plan.bounds();
  ASSERT_EQ(bounds.size(), static_cast<std::size_t>(shards) + 1);
  EXPECT_EQ(plan.shard_count(), shards);
  EXPECT_EQ(bounds.front(), 0);
  EXPECT_EQ(bounds.back(), n_tiles);
  for (int k = 0; k < shards; ++k) {
    EXPECT_LE(plan.begin(k), plan.end(k)) << "shard " << k;
    EXPECT_EQ(plan.begin(k), bounds[static_cast<std::size_t>(k)]);
    EXPECT_EQ(plan.end(k), bounds[static_cast<std::size_t>(k) + 1]);
  }
  // ShardOfTile agrees with the ranges: tile t lands in the shard whose
  // [begin, end) contains it.
  for (int t = 0; t < n_tiles; ++t) {
    const int k = plan.ShardOfTile(t);
    ASSERT_GE(k, 0);
    ASSERT_LT(k, shards);
    EXPECT_GE(t, plan.begin(k)) << "tile " << t;
    EXPECT_LT(t, plan.end(k)) << "tile " << t;
  }
}

TEST(ShardPlan, EvenCutsAreStructurallySound) {
  ShardPlan plan;
  for (const int n_tiles : {0, 1, 7, 64, 129}) {
    for (const int shards : {1, 2, 3, 8, 150}) {
      plan.Reset(n_tiles, shards, ShardPolicy::kEven, {});
      CheckStructure(plan, n_tiles, shards);
      // Even policy: shard sizes differ by at most one tile.
      int lo = n_tiles, hi = 0;
      for (int k = 0; k < shards; ++k) {
        const int len = plan.end(k) - plan.begin(k);
        lo = std::min(lo, len);
        hi = std::max(hi, len);
      }
      EXPECT_LE(hi - lo, 1) << n_tiles << " tiles / " << shards << " shards";
    }
  }
}

TEST(ShardPlan, BalancedCutsAreStructurallySound) {
  ShardPlan plan;
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    for (const int n_tiles : {1, 13, 64, 257}) {
      for (const int shards : {1, 2, 5, 16, 300}) {
        const auto w = RandomWeights(n_tiles, seed * 1000 + n_tiles, 50);
        plan.Reset(n_tiles, shards, ShardPolicy::kBalanced, w);
        CheckStructure(plan, n_tiles, shards);
      }
    }
  }
}

// The defining property of a balanced cut: bounds()[k] is the smallest
// tile index (not before the previous cut) whose prefix weight reaches
// k/K of the total mass. Integer arithmetic makes this exactly checkable.
TEST(ShardPlan, BalancedCutsSitAtWeightThresholds) {
  ShardPlan plan;
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    const int n_tiles = 200;
    const int shards = 7;
    const auto w = RandomWeights(n_tiles, seed, 40);
    std::vector<std::uint64_t> prefix(static_cast<std::size_t>(n_tiles) + 1, 0);
    for (int t = 0; t < n_tiles; ++t) {
      prefix[static_cast<std::size_t>(t) + 1] =
          prefix[static_cast<std::size_t>(t)] + w[static_cast<std::size_t>(t)];
    }
    const std::uint64_t total = prefix.back();

    plan.Reset(n_tiles, shards, ShardPolicy::kBalanced, w);
    const auto bounds = plan.bounds();
    for (int k = 1; k < shards; ++k) {
      const std::uint64_t target =
          total * static_cast<std::uint64_t>(k) / static_cast<std::uint64_t>(shards);
      const int cut = bounds[static_cast<std::size_t>(k)];
      if (cut < n_tiles) {
        EXPECT_GE(prefix[static_cast<std::size_t>(cut)], target)
            << "cut " << k << " under-weighted";
      }
      // Minimality: if this cut advanced past the previous one, the tile
      // just before it had not yet reached the threshold.
      if (cut > bounds[static_cast<std::size_t>(k) - 1]) {
        EXPECT_LT(prefix[static_cast<std::size_t>(cut) - 1], target)
            << "cut " << k << " not minimal";
      }
    }
  }
}

// Weak monotonicity in histogram mass: piling extra weight onto tile 0
// can only pull every cut earlier (or leave it), never push it later —
// the prefix sums gain the full extra mass while each threshold gains
// only k/K of it.
TEST(ShardPlan, BalancedCutsMonotoneInLeadingMass) {
  ShardPlan before, after;
  for (const std::uint64_t seed : {21u, 22u, 23u, 24u}) {
    const int n_tiles = 150;
    const int shards = 6;
    auto w = RandomWeights(n_tiles, seed, 30);
    before.Reset(n_tiles, shards, ShardPolicy::kBalanced, w);
    w[0] += 500;
    after.Reset(n_tiles, shards, ShardPolicy::kBalanced, w);
    for (int k = 0; k <= shards; ++k) {
      EXPECT_LE(after.bounds()[static_cast<std::size_t>(k)],
                before.bounds()[static_cast<std::size_t>(k)])
          << "cut " << k << " moved later after adding mass at tile 0";
    }
  }
}

TEST(ShardPlan, ZeroWeightsDegenerateCleanly) {
  ShardPlan plan;
  const std::vector<std::uint32_t> w(64, 0);
  plan.Reset(64, 4, ShardPolicy::kBalanced, w);
  CheckStructure(plan, 64, 4);
}

TEST(ShardPlan, MoreShardsThanTilesLeavesEmptyShards) {
  ShardPlan plan;
  const auto w = RandomWeights(3, 99, 10);
  plan.Reset(3, 8, ShardPolicy::kBalanced, w);
  CheckStructure(plan, 3, 8);
  int non_empty = 0;
  for (int k = 0; k < 8; ++k) {
    if (plan.end(k) > plan.begin(k)) ++non_empty;
  }
  EXPECT_LE(non_empty, 3);
}

}  // namespace
}  // namespace dcc::parallel
