#include "dcc/bcast/leader_election.h"

#include <algorithm>
#include <unordered_set>

#include "dcc/bcast/smsb.h"
#include "dcc/cluster/clustering.h"

namespace dcc::bcast {

LeaderElectionResult ElectLeader(sim::Exec& ex, const cluster::Profile& prof,
                                 const std::vector<std::size_t>& members,
                                 int gamma, int max_phases,
                                 std::uint64_t nonce) {
  const sinr::Network& net = ex.net();
  LeaderElectionResult res;
  const Round start = ex.rounds();

  // 1) Cluster; centers form the candidate set S (pairwise > 1-eps apart).
  cluster::ClusteringResult cl =
      cluster::BuildClustering(ex, prof, members, gamma, nonce);
  std::unordered_set<ClusterId> center_ids;
  for (const std::size_t idx : members) {
    if (cl.cluster_of[idx] != kNoCluster) center_ids.insert(cl.cluster_of[idx]);
  }
  DCC_CHECK(!center_ids.empty());

  // 2) Binary search over [1, N]: probe = SMSB from centers in [lo, mid].
  //    Every probe either reaches everyone (range non-empty) or no one.
  NodeId lo = 1, hi = net.params().id_space;
  while (lo < hi) {
    const NodeId mid = lo + (hi - lo) / 2;
    std::vector<std::size_t> src;
    for (const ClusterId phi : center_ids) {
      if (phi >= lo && phi <= mid && net.HasId(phi)) {
        src.push_back(net.IndexOf(phi));
      }
    }
    ++res.probes;
    // A node's observation bit is "I received the probe's broadcast or I
    // was one of its sources"; SMSB correctness makes the bit uniform
    // network-wide, equal to "the probed range holds a center".
    const bool heard = !src.empty();
    if (!src.empty()) {
      SmsbResult sm = SmsBroadcast(ex, prof, src, gamma, max_phases,
                                   HashCombine(nonce, 0x9000u + res.probes));
      if (!sm.all_awake) {
        // Partial propagation would desynchronize nodes' ranges; surface
        // loudly in results rather than silently disagreeing.
        res.agreed = false;
        res.leader = kNoNode;
        res.rounds = ex.rounds() - start;
        return res;
      }
    } else {
      // Empty probe: nodes listen through an (empty) SMSB window; charge
      // one SNS worth of rounds, which is what phase 0 would cost.
      ex.ChargeRounds(prof.SnsLen(net.params().id_space));
    }
    if (heard) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }

  res.leader = lo;
  // The leader must be one of the centers (the minimum-ID center).
  NodeId min_center = *std::min_element(center_ids.begin(), center_ids.end());
  res.agreed = (res.leader == min_center);
  res.rounds = ex.rounds() - start;
  return res;
}

}  // namespace dcc::bcast
