#include "dcc/common/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "dcc/common/types.h"

namespace dcc {

std::string JsonQuote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  // Integral values (round counts, sizes) print without an exponent.
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[40];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

// --- Parsing ---------------------------------------------------------------

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue ParseDocument() {
    JsonValue v = ParseValue(0);
    SkipWs();
    if (pos_ != text_.size()) Fail("trailing characters after JSON value");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void Fail(const std::string& why) const {
    throw InvalidArgument("json: " + why + " at offset " +
                          std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char Peek() {
    if (pos_ >= text_.size()) Fail("unexpected end of input");
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) Fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool Consume(const char* literal) {
    const std::size_t len = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, len, literal) != 0) return false;
    pos_ += len;
    return true;
  }

  JsonValue ParseValue(int depth) {
    if (depth > kMaxDepth) Fail("nesting deeper than 64 levels");
    SkipWs();
    const char c = Peek();
    JsonValue v;
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"':
        v.kind_ = JsonValue::Kind::kString;
        v.str_ = ParseString();
        return v;
      case 't':
        if (!Consume("true")) Fail("invalid literal");
        v.kind_ = JsonValue::Kind::kBool;
        v.bool_ = true;
        return v;
      case 'f':
        if (!Consume("false")) Fail("invalid literal");
        v.kind_ = JsonValue::Kind::kBool;
        v.bool_ = false;
        return v;
      case 'n':
        if (!Consume("null")) Fail("invalid literal");
        return v;
      default:
        return ParseNumber();
    }
  }

  JsonValue ParseObject(int depth) {
    Expect('{');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      SkipWs();
      std::string key = ParseString();
      SkipWs();
      Expect(':');
      v.obj_[std::move(key)] = ParseValue(depth + 1);
      SkipWs();
      const char c = Peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') Fail("expected ',' or '}' in object");
    }
  }

  JsonValue ParseArray(int depth) {
    Expect('[');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.arr_.push_back(ParseValue(depth + 1));
      SkipWs();
      const char c = Peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') Fail("expected ',' or ']' in array");
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) Fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) Fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else Fail("invalid \\u escape");
          }
          // UTF-8 encode the code point (surrogate pairs are passed through
          // as two 3-byte sequences — the emitter never writes them, and
          // protocol strings are spec lines / error messages, not payloads
          // needing astral-plane fidelity).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          Fail("unknown escape");
      }
    }
  }

  JsonValue ParseNumber() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) Fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double num = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) Fail("malformed number");
    JsonValue v;
    v.kind_ = JsonValue::Kind::kNumber;
    v.num_ = num;
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::Parse(const std::string& text) {
  return JsonParser(text).ParseDocument();
}

bool JsonValue::GetBool() const {
  if (kind_ != Kind::kBool) throw InvalidArgument("json: not a bool");
  return bool_;
}

double JsonValue::GetNumber() const {
  if (kind_ != Kind::kNumber) throw InvalidArgument("json: not a number");
  return num_;
}

const std::string& JsonValue::GetString() const {
  if (kind_ != Kind::kString) throw InvalidArgument("json: not a string");
  return str_;
}

const std::vector<JsonValue>& JsonValue::GetArray() const {
  if (kind_ != Kind::kArray) throw InvalidArgument("json: not an array");
  return arr_;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = obj_.find(key);
  return it == obj_.end() ? nullptr : &it->second;
}

std::string JsonValue::GetString(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return v == nullptr ? fallback : v->GetString();
}

double JsonValue::GetNumber(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return v == nullptr ? fallback : v->GetNumber();
}

bool JsonValue::GetBool(const std::string& key, bool fallback) const {
  const JsonValue* v = Find(key);
  return v == nullptr ? fallback : v->GetBool();
}

}  // namespace dcc
