// The validators themselves: they are the oracles for everything else, so
// pin their behavior on hand-built configurations.
#include "dcc/cluster/validate.h"

#include <gtest/gtest.h>

#include "dcc/workload/generators.h"

namespace dcc::cluster {
namespace {

sinr::Params TestParams() {
  sinr::Params p = sinr::Params::Default();
  p.id_space = 1 << 10;
  return p;
}

TEST(CheckClusteringTest, PerfectTwoClusterLayout) {
  const auto params = TestParams();
  // Cluster A around node 0 at origin; cluster B around node 3 at (2, 0).
  std::vector<Vec2> pts{{0, 0}, {0.3, 0}, {0, 0.4}, {2, 0}, {2.3, 0}};
  const auto net = sinr::Network::WithSequentialIds(pts, params);
  std::vector<ClusterId> cl{1, 1, 1, 4, 4};
  std::vector<std::size_t> all{0, 1, 2, 3, 4};
  const auto chk = CheckClustering(net, all, cl);
  EXPECT_EQ(chk.assigned, 5u);
  EXPECT_EQ(chk.num_clusters, 2);
  EXPECT_NEAR(chk.max_radius, 0.4, 1e-9);
  EXPECT_NEAR(chk.min_center_sep, 2.0, 1e-9);
  EXPECT_TRUE(chk.ValidRClustering(1.0, params.eps));
  EXPECT_EQ(chk.max_cluster_size, 3);
}

TEST(CheckClusteringTest, DetectsUnassignedAndFatRadius) {
  const auto params = TestParams();
  std::vector<Vec2> pts{{0, 0}, {1.7, 0}, {5, 5}};
  const auto net = sinr::Network::WithSequentialIds(pts, params);
  std::vector<ClusterId> cl{1, 1, kNoCluster};
  std::vector<std::size_t> all{0, 1, 2};
  const auto chk = CheckClustering(net, all, cl);
  EXPECT_EQ(chk.assigned, 2u);
  EXPECT_FALSE(chk.ValidRClustering(1.0, params.eps));  // radius 1.7 & hole
  EXPECT_NEAR(chk.max_radius, 1.7, 1e-9);
}

TEST(CheckClusteringTest, DetectsCloseCenters) {
  const auto params = TestParams();
  std::vector<Vec2> pts{{0, 0}, {0.3, 0}};
  const auto net = sinr::Network::WithSequentialIds(pts, params);
  std::vector<ClusterId> cl{1, 2};  // two centers 0.3 < 1-eps apart
  std::vector<std::size_t> all{0, 1};
  const auto chk = CheckClustering(net, all, cl);
  EXPECT_FALSE(chk.ValidRClustering(1.0, params.eps));
  EXPECT_NEAR(chk.min_center_sep, 0.3, 1e-9);
}

TEST(CheckClusteringTest, MissingCenterFlagged) {
  const auto params = TestParams();
  std::vector<Vec2> pts{{0, 0}};
  const auto net = sinr::Network::WithSequentialIds(pts, params);
  std::vector<ClusterId> cl{99};  // no node with id 99
  const auto chk = CheckClustering(net, {0}, cl);
  EXPECT_FALSE(chk.centers_exist);
}

TEST(FindClosePairsTest, MutuallyNearestPairFound) {
  const auto params = TestParams();
  // A tight pair far from a third node: exactly one close pair.
  std::vector<Vec2> pts{{0, 0}, {0.05, 0}, {0.9, 0}};
  const auto net = sinr::Network::WithSequentialIds(pts, params);
  std::vector<ClusterId> one(3, 1);
  const auto pairs = FindClosePairs(net, {0, 1, 2}, one, 6, 1.0);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].first, 0u);
  EXPECT_EQ(pairs[0].second, 1u);
}

TEST(FindClosePairsTest, CrossClusterPairsExcluded) {
  const auto params = TestParams();
  std::vector<Vec2> pts{{0, 0}, {0.05, 0}};
  const auto net = sinr::Network::WithSequentialIds(pts, params);
  std::vector<ClusterId> cl{1, 2};
  const auto pairs = FindClosePairs(net, {0, 1}, cl, 6, 1.0);
  EXPECT_TRUE(pairs.empty());
}

TEST(FindClosePairsTest, TooDistantPairExcluded) {
  const auto params = TestParams();
  // Distance above d_{Gamma,r} for a dense enough Gamma (but still within
  // the 1 - eps cap of condition (b)).
  std::vector<Vec2> pts{{0, 0}, {0.7, 0}};
  const auto net = sinr::Network::WithSequentialIds(pts, params);
  std::vector<ClusterId> one(2, 1);
  const auto far = FindClosePairs(net, {0, 1}, one, 64, 1.0);
  EXPECT_TRUE(far.empty());  // d_bound(64) = 2/(sqrt 32 - 1) ~ 0.43 < 0.7
  const auto near = FindClosePairs(net, {0, 1}, one, 4, 1.0);
  EXPECT_EQ(near.size(), 1u);  // small Gamma: bound is the diameter
}

TEST(FindClosePairsTest, CrowdedNeighborhoodViolatesSpacing) {
  const auto params = TestParams();
  // u,w at distance 0.2 but a third node 0.05 from u: condition (c) fails
  // for (u,w) — u's nearest is the third node.
  std::vector<Vec2> pts{{0, 0}, {0.2, 0}, {0.05, 0}};
  const auto net = sinr::Network::WithSequentialIds(pts, params);
  std::vector<ClusterId> one(3, 1);
  const auto pairs = FindClosePairs(net, {0, 1, 2}, one, 8, 1.0);
  for (const auto& [u, w] : pairs) {
    EXPECT_FALSE(u == 0 && w == 1);
  }
}

TEST(SubsetDensityTest, CountsOnlySubset) {
  const auto params = TestParams();
  std::vector<Vec2> pts{{0, 0}, {0.1, 0}, {0.2, 0}, {10, 10}};
  const auto net = sinr::Network::WithSequentialIds(pts, params);
  EXPECT_EQ(SubsetDensity(net, {0, 1, 2, 3}), 3);
  EXPECT_EQ(SubsetDensity(net, {0, 3}), 1);
}

TEST(MaxClusterSizeTest, Counts) {
  const auto params = TestParams();
  std::vector<Vec2> pts{{0, 0}, {0.1, 0}, {0.2, 0}};
  const auto net = sinr::Network::WithSequentialIds(pts, params);
  std::vector<ClusterId> cl{1, 1, 2};
  EXPECT_EQ(MaxClusterSize(net, {0, 1, 2}, cl), 2);
}

TEST(CheckLabelingTest, MultiplicityAndCoverage) {
  const auto params = TestParams();
  std::vector<Vec2> pts{{0, 0}, {0.1, 0}, {0.2, 0}};
  const auto net = sinr::Network::WithSequentialIds(pts, params);
  std::vector<ClusterId> cl{1, 1, 1};
  std::unordered_map<NodeId, int> labels{{1, 1}, {2, 1}, {3, 2}};
  const auto chk = CheckLabeling(net, {0, 1, 2}, cl, labels);
  EXPECT_TRUE(chk.all_labeled);
  EXPECT_EQ(chk.max_label, 2);
  EXPECT_EQ(chk.max_multiplicity, 2);

  labels.erase(3);
  const auto chk2 = CheckLabeling(net, {0, 1, 2}, cl, labels);
  EXPECT_FALSE(chk2.all_labeled);
}

}  // namespace
}  // namespace dcc::cluster
