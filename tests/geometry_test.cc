#include "dcc/common/geometry.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dcc {
namespace {

TEST(Vec2Test, Arithmetic) {
  const Vec2 a{1.0, 2.0}, b{3.0, -1.0};
  EXPECT_EQ((a + b), (Vec2{4.0, 1.0}));
  EXPECT_EQ((a - b), (Vec2{-2.0, 3.0}));
  EXPECT_EQ((2.0 * a), (Vec2{2.0, 4.0}));
}

TEST(DistTest, KnownValues) {
  EXPECT_DOUBLE_EQ(Dist({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(Dist({1, 1}, {1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(Dist2({0, 0}, {3, 4}), 25.0);
}

TEST(BallTest, ContainsBoundary) {
  const Ball b{{0, 0}, 1.0};
  EXPECT_TRUE(b.Contains({1.0, 0.0}));
  EXPECT_TRUE(b.Contains({0.0, 0.0}));
  EXPECT_FALSE(b.Contains({1.0001, 0.0}));
}

TEST(ChiUpperBoundTest, SinglePointWhenSeparationExceedsDiameter) {
  EXPECT_EQ(ChiUpperBound(1.0, 2.5), 1);
}

TEST(ChiUpperBoundTest, MatchesPackingFormula) {
  // (1 + 2*r1/r2)^2 floored.
  EXPECT_EQ(ChiUpperBound(1.0, 1.0), 9);
  EXPECT_EQ(ChiUpperBound(5.0, 1.0), 121);
  EXPECT_EQ(ChiUpperBound(1.0, 0.5), 25);
}

TEST(ChiUpperBoundTest, IsActuallyAnUpperBoundForGrids) {
  // Pack a grid with pitch exactly r2 = 0.5 into a ball of radius 1: count
  // the points and compare.
  const double r2 = 0.5;
  int count = 0;
  for (int x = -4; x <= 4; ++x) {
    for (int y = -4; y <= 4; ++y) {
      if (Dist({x * r2, y * r2}, {0, 0}) <= 1.0) ++count;
    }
  }
  EXPECT_LE(count, ChiUpperBound(1.0, r2));
}

TEST(ChiUpperBoundTest, RejectsBadArguments) {
  EXPECT_THROW(ChiUpperBound(0.0, 1.0), InvalidArgument);
  EXPECT_THROW(ChiUpperBound(1.0, -1.0), InvalidArgument);
}

TEST(CloseDistanceBoundTest, SmallGammaIsDiameter) {
  EXPECT_DOUBLE_EQ(CloseDistanceBound(1, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(CloseDistanceBound(2, 2.0), 4.0);
}

TEST(CloseDistanceBoundTest, DecreasesWithGamma) {
  double prev = CloseDistanceBound(4, 1.0);
  for (int g = 8; g <= 1024; g *= 2) {
    const double d = CloseDistanceBound(g, 1.0);
    EXPECT_LE(d, prev);
    prev = d;
  }
}

TEST(CloseDistanceBoundTest, InverseOfChi) {
  // chi(r, d_bound) should be >= Gamma/2 (the defining property).
  for (int g : {8, 32, 128}) {
    const double d = CloseDistanceBound(g, 1.0);
    EXPECT_GE(ChiUpperBound(1.0, d), g / 2) << "gamma=" << g;
  }
}

TEST(BoundingBoxTest, Basic) {
  const std::vector<Vec2> pts{{0, 1}, {2, -1}, {1, 5}};
  const Box b = BoundingBox(pts);
  EXPECT_DOUBLE_EQ(b.lo.x, 0);
  EXPECT_DOUBLE_EQ(b.lo.y, -1);
  EXPECT_DOUBLE_EQ(b.hi.x, 2);
  EXPECT_DOUBLE_EQ(b.hi.y, 5);
}

TEST(PointGridTest, NearFindsExactlyTheBallMembers) {
  std::vector<Vec2> pts;
  for (int x = 0; x < 10; ++x) {
    for (int y = 0; y < 10; ++y) pts.push_back({x * 0.5, y * 0.5});
  }
  const PointGrid grid(pts, 1.0);
  const Vec2 q{2.25, 2.25};
  const auto got = grid.Near(q, 1.0);
  // Brute-force reference.
  std::vector<std::size_t> want;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (Dist(pts[i], q) <= 1.0) want.push_back(i);
  }
  EXPECT_EQ(got, want);
  EXPECT_EQ(grid.CountNear(q, 1.0), static_cast<int>(want.size()));
}

TEST(PointGridTest, NegativeCoordinates) {
  const std::vector<Vec2> pts{{-3.7, -2.1}, {-3.6, -2.0}, {4.0, 4.0}};
  const PointGrid grid(pts, 1.0);
  EXPECT_EQ(grid.CountNear({-3.65, -2.05}, 0.5), 2);
  EXPECT_EQ(grid.CountNear({4.0, 4.0}, 0.1), 1);
}

TEST(UnitBallDensityTest, UniformGrid) {
  // Pitch-1 grid: a unit ball centered on a node covers its 4 axis
  // neighbors plus itself.
  std::vector<Vec2> pts;
  for (int x = 0; x < 5; ++x) {
    for (int y = 0; y < 5; ++y) pts.push_back({double(x), double(y)});
  }
  EXPECT_EQ(UnitBallDensity(pts), 5);
}

TEST(UnitBallDensityTest, EmptyAndSingle) {
  EXPECT_EQ(UnitBallDensity({}), 0);
  const std::vector<Vec2> one{{0, 0}};
  EXPECT_EQ(UnitBallDensity(one), 1);
}

TEST(UnitBallDensityTest, Cluster) {
  std::vector<Vec2> pts(17, Vec2{0.1, 0.1});
  for (std::size_t i = 0; i < pts.size(); ++i) {
    pts[i].x += 0.001 * static_cast<double>(i);
  }
  EXPECT_EQ(UnitBallDensity(pts), 17);
}

}  // namespace
}  // namespace dcc
