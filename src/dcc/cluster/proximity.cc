#include "dcc/cluster/proximity.h"

#include <algorithm>
#include <unordered_map>

namespace dcc::cluster {

namespace {

constexpr std::int32_t kExchangeMsg = 101;
constexpr std::int32_t kConfirmMsg = 102;

}  // namespace

ProximityResult BuildProximityGraph(sim::Exec& ex, const Profile& prof,
                                    const std::vector<sim::Participant>& parts,
                                    bool clustered, std::uint64_t nonce) {
  const std::int64_t N = ex.net().params().id_space;
  ProximityResult res;
  res.schedule = clustered ? prof.MakeWcss(N, nonce) : prof.MakeWss(N, nonce);
  const sim::Schedule& S = *res.schedule;
  const Round start = ex.rounds();

  const std::size_t np = parts.size();
  res.adj.assign(np, {});
  if (np == 0) {
    res.rounds = 0;
    return res;
  }

  // Lookup: node index -> position in parts; id -> position.
  std::unordered_map<std::size_t, std::size_t> pos_of_index;
  std::unordered_map<NodeId, std::size_t> pos_of_id;
  pos_of_index.reserve(np);
  pos_of_id.reserve(np);
  for (std::size_t p = 0; p < np; ++p) {
    pos_of_index.emplace(parts[p].index, p);
    pos_of_id.emplace(parts[p].id, p);
  }

  // --- Exchange phase ---------------------------------------------------
  // heard[p]: (local round, sender position), same-cluster only when
  // clustered.
  std::vector<std::vector<std::pair<std::int64_t, std::size_t>>> heard(np);
  sim::ExecuteSchedule(
      ex, S, parts,
      [&](std::size_t idx, std::int64_t) -> std::optional<sim::Message> {
        const std::size_t p = pos_of_index.at(idx);
        sim::Message m;
        m.src = parts[p].id;
        m.cluster = parts[p].cluster;
        m.kind = kExchangeMsg;
        return m;
      },
      [&](std::size_t listener, const sim::Message& m, std::int64_t t) {
        const auto it = pos_of_index.find(listener);
        if (it == pos_of_index.end()) return;  // not a participant
        const std::size_t p = it->second;
        if (clustered && m.cluster != parts[p].cluster) return;
        const auto sit = pos_of_id.find(m.src);
        if (sit == pos_of_id.end()) return;
        heard[p].emplace_back(t, sit->second);
      });

  // --- Filtering phase (local computation, no rounds) ---------------------
  // Cv: candidate positions per node.
  std::vector<std::vector<std::size_t>> cand(np);
  for (std::size_t p = 0; p < np; ++p) {
    // Distinct heard senders.
    std::vector<std::size_t> uv;
    for (const auto& [t, s] : heard[p]) uv.push_back(s);
    std::sort(uv.begin(), uv.end());
    uv.erase(std::unique(uv.begin(), uv.end()), uv.end());

    for (const std::size_t w : uv) {
      // Drop w if p heard some u != w in a round where the schedule had w
      // transmitting (w's signal was "witnessed away").
      bool keep = true;
      for (const auto& [t, u] : heard[p]) {
        if (u == w) continue;
        if (S.Transmits(t, parts[w].id, parts[w].cluster)) {
          keep = false;
          break;
        }
      }
      if (keep) cand[p].push_back(w);
    }
    if (static_cast<int>(cand[p].size()) > prof.kappa) cand[p].clear();
  }

  // --- Confirmation phase: kappa repetitions of S -------------------------
  // conf[p] = positions w with w in cand[p] that announced p (i.e. p in
  // cand[w] as far as p can tell).
  std::vector<std::vector<std::size_t>> conf(np);
  for (int rep = 0; rep < prof.kappa; ++rep) {
    sim::ExecuteSchedule(
        ex, S, parts,
        [&](std::size_t idx, std::int64_t) -> std::optional<sim::Message> {
          const std::size_t p = pos_of_index.at(idx);
          if (static_cast<std::size_t>(rep) >= cand[p].size())
            return std::nullopt;
          sim::Message m;
          m.src = parts[p].id;
          m.cluster = parts[p].cluster;
          m.kind = kConfirmMsg;
          m.a = parts[cand[p][static_cast<std::size_t>(rep)]].id;
          return m;
        },
        [&](std::size_t listener, const sim::Message& m, std::int64_t) {
          if (m.kind != kConfirmMsg) return;
          const auto it = pos_of_index.find(listener);
          if (it == pos_of_index.end()) return;
          const std::size_t p = it->second;
          if (clustered && m.cluster != parts[p].cluster) return;
          if (m.a != parts[p].id) return;  // not addressed to me
          const auto sit = pos_of_id.find(m.src);
          if (sit == pos_of_id.end()) return;
          // Only candidates can become neighbors.
          const std::size_t w = sit->second;
          if (std::find(cand[p].begin(), cand[p].end(), w) != cand[p].end()) {
            conf[p].push_back(w);
          }
        });
  }

  // --- Edge set: mutual confirmation --------------------------------------
  for (std::size_t p = 0; p < np; ++p) {
    std::sort(conf[p].begin(), conf[p].end());
    conf[p].erase(std::unique(conf[p].begin(), conf[p].end()), conf[p].end());
  }
  for (std::size_t p = 0; p < np; ++p) {
    for (const std::size_t w : conf[p]) {
      if (w <= p) continue;
      if (std::binary_search(conf[w].begin(), conf[w].end(), p)) {
        res.adj[p].push_back(w);
        res.adj[w].push_back(p);
      }
    }
  }
  for (auto& a : res.adj) std::sort(a.begin(), a.end());

  res.rounds = ex.rounds() - start;
  return res;
}

}  // namespace dcc::cluster
