// Quickstart: run the deterministic clustering (Alg. 6 / Theorem 1) on a
// random SINR network through the scenario layer, and inspect the report.
//
//   $ ./examples/quickstart [n] [side] [seed]
//
// Walks through the experiment API:
//   scenario::ScenarioSpec  -> the experiment as a value (topology name +
//                              params, algorithm name, seeds, SINR options)
//   scenario::RunScenario   -> generator -> network -> Exec -> algorithm ->
//                              validation, in one call
//   scenario::RunReport     -> named metrics + the validator's verdict
//
// The same spec runs from the command line:
//   $ ./dcc_run --topology=uniform:n=128,side=5 --algo=clustering \
//               --seeds=1 --id-space=4096
#include <cstdlib>
#include <iostream>

#include "dcc/common/table.h"
#include "dcc/scenario/scenario.h"

int main(int argc, char** argv) {
  using namespace dcc;

  const int n = argc > 1 ? std::atoi(argv[1]) : 128;
  const double side = argc > 2 ? std::atof(argv[2]) : 5.0;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;

  // 1. The experiment as a value. SINR model: alpha=3, beta=1.5, eps=0.2,
  //    range 1, ids drawn from [1, 4096].
  scenario::ScenarioSpec spec;
  spec.topology = "uniform";
  spec.topology_params.Set("n", std::to_string(n));
  spec.topology_params.Set("side", std::to_string(side));
  spec.algo = "clustering";
  spec.sinr.id_space = 1 << 12;
  spec.seeds = {seed};
  std::cout << "spec: " << spec.ToString() << "\n";

  // 2. One call: generate the workload, build the network, run the
  //    deterministic clustering, validate the paper's postconditions
  //    against the real geometry.
  const scenario::RunReport rep = scenario::RunScenario(spec, seed);
  if (!rep.error.empty()) {
    std::cerr << "run failed: " << rep.error << "\n";
    return 1;
  }

  // 3. Everything measured is a named metric in the report. Counts are
  //    integral doubles; print them integer-exact.
  const auto& m = rep.metrics;
  const auto count = [&](const char* key) {
    return static_cast<std::int64_t>(m.Get(key));
  };
  std::cout << "network: n=" << count("n") << " gamma=" << count("gamma")
            << "\nclustering: rounds=" << count("rounds")
            << " levels=" << count("levels")
            << " unassigned=" << count("unassigned") << "\n";

  Table t({"check", "value"});
  t.AddRow({"clusters", Table::Num(count("clusters"))});
  t.AddRow({"max cluster size", Table::Num(count("max_cluster_size"))});
  t.AddRow({"max radius (<= 1)", Table::Num(m.Get("max_radius"))});
  t.AddRow({"min center separation (>= 1-eps)",
            Table::Num(m.Get("min_center_sep"))});
  t.AddRow({"max clusters per unit ball (O(1))",
            Table::Num(count("max_clusters_per_unit_ball"))});
  t.AddRow({"valid 1-clustering", rep.ok ? "yes" : "NO"});
  t.Print(std::cout);

  std::cout << "\nas JSON:\n";
  rep.PrintJson(std::cout);
  std::cout << "\n";
  return rep.ok ? 0 : 1;
}
