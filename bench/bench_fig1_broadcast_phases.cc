// Figure 1 — the phase anatomy of the global broadcast (Alg. 8).
//
// The paper's figure illustrates one phase: (a) the awake 1-clustered
// cohort, (b) label-sliced SNS local broadcast, (c) sleepers waking and
// inheriting clusters, (d) radius reduction re-forming a 1-clustering.
// We regenerate it as a phase-by-phase trace table: cohort size, newly
// awake, stage round costs, and the cluster count after stage 3 — with the
// per-phase geometric validity checked.
#include "bench_common.h"
#include "dcc/bcast/smsb.h"

namespace dcc {
namespace {

void Run() {
  bench::Banner(
      "Figure 1: global broadcast phase trace",
      "Jurdzinski et al., PODC'18, Fig. 1",
      "cohorts advance one hop per phase; every cohort ends 1-clustered "
      "(radius <= 1, O(1) clusters per unit ball)");

  sinr::Params params = sinr::Params::Default();
  params.id_space = 1 << 12;
  const auto prof = cluster::Profile::Practical(params.id_space);

  auto pts = workload::BlobChain(7, 14, 0.3, 1.3, 99);
  const auto net = workload::MakeNetwork(pts, params, 41);
  if (!net.Connected()) {
    std::cout << "workload disconnected; rerun with another seed\n";
    return;
  }
  std::cout << "workload: 7 blobs x 14 nodes, D=" << net.Diameter()
            << " Delta=" << net.Density() << "\n\n";

  sim::Exec ex(net, bench::EngineOptionsFromEnv());
  const auto sm = bcast::SmsBroadcast(ex, prof, {0}, net.Density(),
                                      net.Diameter() + 3, 1);

  Table t({"phase", "cohort", "label-rounds", "sns-rounds", "rr-rounds",
           "newly-awake", "clusters", "cohort-radius<=1"});
  for (std::size_t p = 0; p < sm.phase_stats.size(); ++p) {
    const auto& ps = sm.phase_stats[p];
    // Validate the cohort woken in this phase (phase p+1 cohort).
    std::vector<std::size_t> cohort;
    for (std::size_t i = 0; i < net.size(); ++i) {
      if (sm.awake_phase[i] == static_cast<int>(p) + 2) cohort.push_back(i);
    }
    std::string valid = "-";
    if (!cohort.empty()) {
      const auto chk = cluster::CheckClustering(net, cohort, sm.cluster_of);
      valid = (chk.assigned == chk.members && chk.max_radius <= 1.0 + 1e-9)
                  ? "yes"
                  : "NO";
    }
    t.AddRow({Table::Num(static_cast<std::int64_t>(p + 1)),
              Table::Num(static_cast<std::int64_t>(ps.cohort)),
              Table::Num(ps.label_rounds), Table::Num(ps.sns_rounds),
              Table::Num(ps.rr_rounds),
              Table::Num(static_cast<std::int64_t>(ps.newly_awake)),
              Table::Num(std::int64_t{ps.clusters}), valid});
  }
  t.Print(std::cout);
  std::cout << "\nall awake: " << (sm.all_awake ? "yes" : "NO") << " ("
            << sm.awake << "/" << net.size() << ") in " << sm.phases
            << " phases, " << sm.rounds << " rounds total\n";
}

}  // namespace
}  // namespace dcc

int main() {
  dcc::Run();
  return 0;
}
