// Executing ScenarioSpecs: one run per seed, or a seed sweep on a thread
// pool. This is the umbrella header of the scenario layer — include this
// to drive experiments, registry.h to extend it.
#pragma once

#include <cstdint>
#include <vector>

#include "dcc/scenario/registry.h"
#include "dcc/scenario/report.h"
#include "dcc/scenario/spec.h"

namespace dcc::scenario {

// Runs the spec once under `seed`: resolve the topology, build the network
// (ids from id_seed, default seed+1), inject faults, resolve and run the
// algorithm, validate. Never throws — a failed run returns a report with
// ok = false and the error message.
RunReport RunScenario(const ScenarioSpec& spec, std::uint64_t seed);

// The two halves of a static RunScenario, split so the service layer can
// reuse one generated network across every request that shares it
// (src/dcc/service): BuildScenarioNetwork resolves the topology and builds
// the network — the expensive, algorithm-independent prefix (it throws on
// bad specs); RunScenarioOnNetwork runs the algorithm half against a
// prebuilt network it never mutates, so concurrent runs may share one
// instance (it never throws — failures land in the report). The network
// must come from BuildScenarioNetwork on a spec whose topology/sinr/
// shadowing/id_seed coordinates match, under the same seed.
sinr::Network BuildScenarioNetwork(const ScenarioSpec& spec,
                                   std::uint64_t seed);
RunReport RunScenarioOnNetwork(const ScenarioSpec& spec, std::uint64_t seed,
                               const sinr::Network& net);

// Runs the spec over its sweep grid — spec.seeds, crossed with
// spec.sweep_values over topology parameter spec.sweep_key when set — on
// the process-wide parallel::WorkerPool, capped at spec.threads workers
// (0 = the pool's full parallelism). Every run builds its own
// Network/Exec, so the result is independent of the thread count and
// equal to serial execution; reports come back in grid order
// (value-major, then seed). Engines inside a pool-occupying sweep run
// their rounds serially (nested fan-outs go inline); a single-job sweep
// leaves the pool to the engine's shards.
std::vector<RunReport> RunSweep(const ScenarioSpec& spec);

}  // namespace dcc::scenario
