// Location-aware deterministic local broadcast — the [22]-style comparator
// of Table 1 (Jurdzinski & Kowalski, DISC'12: deterministic local
// broadcast in O(Delta log^3 n) *given node coordinates*).
//
// With coordinates the problem is easy: tile the plane with cells of side
// 1/sqrt(2) (cell-mates are mutually within distance 1), color cells with
// an s x s periodic pattern so simultaneously active cells are >= (s-1)
// cells apart (bounded interference), and let each cell's members take
// turns. Rounds = s^2 * max cell occupancy = O(Delta) for constant s.
//
// We grant each node its cell rank directly (the paper's extra log-factors
// pay for discovering cell-mates without it; granting it makes this
// baseline *stronger*, which only strengthens the Table 1 comparison).
#pragma once

#include <cstdint>
#include <vector>

#include "dcc/sim/runner.h"

namespace dcc::baselines {

struct GridTdmaResult {
  Round rounds = 0;
  bool covered = false;
  std::size_t covered_nodes = 0;
  std::size_t members = 0;
  int cell_colors = 0;    // s^2
  int max_occupancy = 0;  // slots per color
};

// `s` is the color period; s >= 3. Larger s trades rounds for less
// interference — s = 6 is ample for the default SINR parameters.
GridTdmaResult GridTdmaLocalBroadcast(sim::Exec& ex,
                                      const std::vector<std::size_t>& members,
                                      int s = 6);

}  // namespace dcc::baselines
