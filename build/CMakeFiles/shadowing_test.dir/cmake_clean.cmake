file(REMOVE_RECURSE
  "CMakeFiles/shadowing_test.dir/tests/shadowing_test.cc.o"
  "CMakeFiles/shadowing_test.dir/tests/shadowing_test.cc.o.d"
  "shadowing_test"
  "shadowing_test.pdb"
  "shadowing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shadowing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
