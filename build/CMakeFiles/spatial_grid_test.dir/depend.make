# Empty dependencies file for spatial_grid_test.
# This may be replaced when dependencies are built.
