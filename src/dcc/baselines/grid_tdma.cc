#include "dcc/baselines/grid_tdma.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_set>

namespace dcc::baselines {

namespace {
constexpr std::int32_t kPayloadMsg = 331;
constexpr double kCell = 0.70710678118;  // 1/sqrt(2): cell-mates within 1
}  // namespace

GridTdmaResult GridTdmaLocalBroadcast(sim::Exec& ex,
                                      const std::vector<std::size_t>& members,
                                      int s) {
  DCC_REQUIRE(s >= 3, "GridTdmaLocalBroadcast: s >= 3");
  const sinr::Network& net = ex.net();
  GridTdmaResult res;
  res.members = members.size();
  res.cell_colors = s * s;

  // Cell assignment and in-cell ranks (granted by the location model).
  struct Slot {
    int color = 0;
    int rank = 0;
  };
  std::map<std::pair<int, int>, std::vector<std::size_t>> cells;
  for (const std::size_t idx : members) {
    const Vec2 p = net.position(idx);
    cells[{static_cast<int>(std::floor(p.x / kCell)),
           static_cast<int>(std::floor(p.y / kCell))}]
        .push_back(idx);
  }
  std::vector<Slot> slot(net.size());
  for (auto& [cell, nodes] : cells) {
    // Deterministic rank: by id.
    std::sort(nodes.begin(), nodes.end(), [&](std::size_t a, std::size_t b) {
      return net.id(a) < net.id(b);
    });
    const int color = ((cell.first % s + s) % s) * s +
                      ((cell.second % s + s) % s);
    for (std::size_t r = 0; r < nodes.size(); ++r) {
      slot[nodes[r]] = Slot{color, static_cast<int>(r)};
    }
    res.max_occupancy =
        std::max(res.max_occupancy, static_cast<int>(nodes.size()));
  }

  // Coverage oracle.
  const auto& comm = net.CommGraph();
  std::vector<std::unordered_set<std::size_t>> covered(net.size());
  ex.SetObserver([&](Round, const std::vector<std::size_t>&,
                     const std::vector<sinr::Reception>& recs) {
    for (const auto& r : recs) covered[r.sender].insert(r.listener);
  });

  const Round start = ex.rounds();
  // The (color, rank) schedule is a pure function of the round offset:
  // disclose each next round so a pipelined engine can prefetch.
  ex.SetLookahead([&](Round g, std::vector<std::size_t>& tx) {
    if (res.max_occupancy == 0) return false;
    const std::int64_t p = g - start;  // schedule position of round g
    if (p >= static_cast<std::int64_t>(s) * s * res.max_occupancy) {
      return false;
    }
    const int color = static_cast<int>(p / res.max_occupancy);
    const int rank = static_cast<int>(p % res.max_occupancy);
    for (const std::size_t idx : members) {
      if (slot[idx].color == color && slot[idx].rank == rank) {
        tx.push_back(idx);
      }
    }
    return true;
  });
  for (int color = 0; color < s * s; ++color) {
    for (int rank = 0; rank < res.max_occupancy; ++rank) {
      ex.RunRound(
          members,
          [&](std::size_t idx) -> std::optional<sim::Message> {
            if (slot[idx].color != color || slot[idx].rank != rank) {
              return std::nullopt;
            }
            sim::Message m;
            m.src = net.id(idx);
            m.kind = kPayloadMsg;
            return m;
          },
          [](std::size_t, const sim::Message&) {});
    }
  }
  ex.SetLookahead(nullptr);
  ex.SetObserver(nullptr);

  for (const std::size_t v : members) {
    bool all = true;
    for (const std::size_t w : comm[v]) {
      if (!covered[v].count(w)) {
        all = false;
        break;
      }
    }
    if (all) ++res.covered_nodes;
  }
  res.covered = res.covered_nodes == res.members;
  res.rounds = ex.rounds() - start;
  return res;
}

}  // namespace dcc::baselines
