// Network generators for experiments: uniform squares, Gaussian blob
// chains, grids, lines, rings — plus helpers to retry until the
// communication graph is connected (the global-broadcast experiments need
// connectivity). All generation is seed-deterministic.
#pragma once

#include <cstdint>
#include <vector>

#include "dcc/common/geometry.h"
#include "dcc/sinr/network.h"

namespace dcc::workload {

// n points uniform in [0, side] x [0, side].
std::vector<Vec2> UniformSquare(int n, double side, std::uint64_t seed);

// `blobs` Gaussian clusters of `per_blob` points with standard deviation
// `sigma`, blob centers spaced `spacing` apart on a line. Produces
// elongated multi-hop networks with dense spots (the Fig. 1 topology).
std::vector<Vec2> BlobChain(int blobs, int per_blob, double sigma,
                            double spacing, std::uint64_t seed);

// Regular grid with the given pitch.
std::vector<Vec2> Grid(int rows, int cols, double pitch);

// Line of n nodes with the given pitch (plus tiny jitter to avoid exact
// collinearity degeneracies).
std::vector<Vec2> Line(int n, double pitch, std::uint64_t seed);

// Ring of n nodes with the given radius.
std::vector<Vec2> Ring(int n, double radius);

// Uniform square resampled (with the seed advanced) until the communication
// graph under `params` is connected; throws after `max_tries`.
std::vector<Vec2> ConnectedUniform(int n, double side, sinr::Params params,
                                   std::uint64_t seed, int max_tries = 64);

// A corridor with obstructions: nodes uniform over [0, length] x [0, width]
// except inside `holes` evenly spaced square cut-outs of side `hole_side` —
// elongated topologies with pinch points (hard cases for broadcast).
std::vector<Vec2> Corridor(int n, double length, double width, int holes,
                           double hole_side, std::uint64_t seed);

// Two-scale field: a sparse uniform backdrop (n_sparse over side x side)
// plus `hotspots` dense clusters of n_dense points with deviation sigma —
// extreme density contrast in one network (stresses the Gamma machinery).
std::vector<Vec2> TwoScale(int n_sparse, double side, int hotspots,
                           int n_dense, double sigma, std::uint64_t seed);

// Star: `arms` rays of `per_arm` nodes at `pitch` from a shared hub.
std::vector<Vec2> Star(int arms, int per_arm, double pitch);

// Builds a network with ids randomly permuted over [1, id_space] (the
// algorithms must not depend on ids being 1..n). Optional deterministic
// shadowing perturbs per-link gains (see sinr::Shadowing).
sinr::Network MakeNetwork(std::vector<Vec2> pts, sinr::Params params,
                          std::uint64_t id_seed,
                          sinr::Shadowing shadowing = {});

}  // namespace dcc::workload
