# Empty dependencies file for bench_fig56_gadget_lower_bound.
# This may be replaced when dependencies are built.
