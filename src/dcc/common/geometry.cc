#include "dcc/common/geometry.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dcc {

int ChiUpperBound(double r1, double r2) {
  DCC_REQUIRE(r1 > 0 && r2 > 0, "ChiUpperBound: radii must be positive");
  if (r2 > 2.0 * r1) return 1;  // two points can't both fit
  const double ratio = 1.0 + 2.0 * r1 / r2;
  // Saturate: theory-profile exhibits feed extreme ratios through here.
  const double bound = std::floor(ratio * ratio);
  if (bound >= static_cast<double>(std::numeric_limits<int>::max())) {
    return std::numeric_limits<int>::max();
  }
  return static_cast<int>(bound);
}

double CloseDistanceBound(int gamma, double r) {
  DCC_REQUIRE(r > 0, "CloseDistanceBound: radius must be positive");
  if (gamma <= 2) return 2.0 * r;
  // Solve (1 + 2r/d)^2 >= Gamma/2 for the largest d: d = 2r/(sqrt(G/2)-1).
  const double root = std::sqrt(static_cast<double>(gamma) / 2.0);
  if (root <= 1.0) return 2.0 * r;
  return std::min(2.0 * r, 2.0 * r / (root - 1.0));
}

Box BoundingBox(std::span<const Vec2> pts) {
  if (pts.empty()) return {};
  Box b{pts[0], pts[0]};
  for (const Vec2& p : pts) {
    b.lo.x = std::min(b.lo.x, p.x);
    b.lo.y = std::min(b.lo.y, p.y);
    b.hi.x = std::max(b.hi.x, p.x);
    b.hi.y = std::max(b.hi.y, p.y);
  }
  return b;
}

PointGrid::PointGrid(std::span<const Vec2> pts, double cell)
    : pts_(pts.begin(), pts.end()), cell_(cell) {
  DCC_REQUIRE(cell > 0, "PointGrid: cell size must be positive");
  cells_.reserve(pts_.size());
  for (std::size_t i = 0; i < pts_.size(); ++i) {
    const auto [gx, gy] = CellOf(pts_[i]);
    cells_[Key(gx, gy)].push_back(i);
  }
}

std::vector<std::size_t> PointGrid::Near(Vec2 p, double radius) const {
  std::vector<std::size_t> out;
  ForNear(p, radius, [&](std::size_t j) { out.push_back(j); });
  std::sort(out.begin(), out.end());
  return out;
}

int PointGrid::CountNear(Vec2 p, double radius) const {
  int n = 0;
  ForNear(p, radius, [&](std::size_t) { ++n; });
  return n;
}

int UnitBallDensity(std::span<const Vec2> pts, double radius) {
  if (pts.empty()) return 0;
  const PointGrid grid(pts, std::max(radius, 1e-9));
  int best = 0;
  for (const Vec2& p : pts) {
    best = std::max(best, grid.CountNear(p, radius));
  }
  return best;
}

}  // namespace dcc
