#include "dcc/sel/wcss.h"

#include <gtest/gtest.h>

#include <tuple>

#include "dcc/sel/verify.h"

namespace dcc::sel {
namespace {

TEST(WcssTest, DeterministicInSeed) {
  const Wcss a = Wcss::WithLength(1000, 4, 3, 800, 42);
  const Wcss b = Wcss::WithLength(1000, 4, 3, 800, 42);
  for (std::int64_t i = 0; i < 800; i += 13) {
    for (std::int64_t x = 1; x <= 1000; x += 101) {
      EXPECT_EQ(a.Member(i, x, 7), b.Member(i, x, 7));
      EXPECT_EQ(a.ClusterAllowed(i, x), b.ClusterAllowed(i, x));
    }
  }
}

TEST(WcssTest, MemberImpliesClusterAllowed) {
  const Wcss w = Wcss::WithLength(1 << 12, 4, 3, 1000, 5);
  for (std::int64_t i = 0; i < w.size(); i += 7) {
    for (std::int64_t x = 1; x <= 40; ++x) {
      if (w.Member(i, x, x + 100)) {
        EXPECT_TRUE(w.ClusterAllowed(i, x + 100));
      }
    }
  }
}

TEST(WcssTest, ClusterGateDensityNearOneOverL) {
  const int l = 4;
  const Wcss w = Wcss::WithLength(1 << 12, 4, l, 4000, 5);
  std::int64_t hits = 0, total = 0;
  for (std::int64_t i = 0; i < w.size(); ++i) {
    for (ClusterId phi = 1; phi <= 16; ++phi) {
      hits += w.ClusterAllowed(i, phi) ? 1 : 0;
      ++total;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / static_cast<double>(total), 1.0 / l,
              0.02);
}

TEST(WcssTest, PairDensityNearProductOfCoins) {
  const int k = 5, l = 3;
  const Wcss w = Wcss::WithLength(1 << 12, k, l, 6000, 9);
  std::int64_t hits = 0, total = 0;
  for (std::int64_t i = 0; i < w.size(); ++i) {
    for (std::int64_t x = 1; x <= 8; ++x) {
      hits += w.Member(i, x, 300 + x) ? 1 : 0;
      ++total;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / static_cast<double>(total),
              1.0 / (k * l), 0.01);
}

TEST(WcssTest, PropertyHoldsAtTheoryLength) {
  // Lemma 3's O(.) hides the union-bound constant: per-round success
  // probability is (1/l)(1-1/l)^l (1/k)(1-1/k)^{k-1} (1/k), so at small
  // (k,l) the multiplier c must cover the e^2-ish slack. c=3 suffices.
  const Wcss w = Wcss::Construct(256, 2, 2, 3.0, 77);
  const auto res = VerifyWcssSampled(w, 200, 31337);
  EXPECT_TRUE(res.AllSatisfied())
      << res.failures << "/" << res.trials << " size=" << w.size();
}

TEST(WcssTest, TooShortFailsOften) {
  const Wcss w = Wcss::WithLength(256, 2, 2, 30, 77);
  const auto res = VerifyWcssSampled(w, 200, 31337);
  EXPECT_GT(res.failures, 0);
}

TEST(WcssTest, TheoryLengthFormula) {
  const Wcss w = Wcss::Construct(1 << 16, 4, 3, 1.0, 1);
  // (k+l)*l*k^2*lnN = 7*3*16*11.09 ~ 3726
  EXPECT_GT(w.size(), 3500);
  EXPECT_LT(w.size(), 3950);
}

class WcssSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(WcssSweepTest, LowFailureRateAcrossShapes) {
  const auto [logN, k, l] = GetParam();
  const Wcss w = Wcss::Construct(1ll << logN, k, l, 3.0, 4321);
  const auto res = VerifyWcssSampled(w, 120, 999);
  EXPECT_LE(res.FailureRate(), 0.03)
      << "logN=" << logN << " k=" << k << " l=" << l << " size=" << w.size();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WcssSweepTest,
    ::testing::Values(std::tuple{10, 2, 2}, std::tuple{12, 3, 2},
                      std::tuple{12, 2, 4}, std::tuple{14, 3, 3}));

}  // namespace
}  // namespace dcc::sel
