// Client side of the dccd protocol (see service.h for the wire contract).
//
// A Client owns one connection; it is NOT thread-safe — the protocol
// answers frames in order per connection, so concurrency means one Client
// per thread (that is exactly how the load generator and the concurrency
// tests drive the service). Calls throw wire::WireError if the daemon
// goes away mid-call and InvalidArgument on malformed responses;
// request-level failures come back as RunResult::ok = false.
#pragma once

#include <cstdint>
#include <string>

namespace dcc::service {

class Client {
 public:
  // Remembers the path; call Connect() (or let the first call do it).
  explicit Client(std::string socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  void Connect();  // idempotent; throws wire::WireError on failure
  void Close();
  bool connected() const { return fd_ >= 0; }

  struct RunResult {
    bool ok = false;       // a report was produced (it may itself be ok=false)
    std::string cached;    // "result" | "topology" | "none" (ok only)
    std::string report;    // raw serialized dcc.run_report.v1 bytes (ok only)
    std::string error;     // daemon's message (ok == false only)
    // Machine-actionable rejection code from a structured error frame
    // ("draining"); empty for plain-string errors (bad spec, unknown op).
    std::string error_code;
  };

  // One run request. With `seed`, pins the seed; otherwise the spec's
  // first seed applies.
  RunResult Run(const std::string& spec_line);
  RunResult Run(const std::string& spec_line, std::uint64_t seed);

  // Raw dcc.service.v1 stats object.
  std::string StatsJson();

  // Prometheus text exposition from the daemon's `metrics` op (decoded
  // from its JSON-string transport).
  std::string MetricsText();

  // Round-trip liveness probe; throws if the daemon misbehaves.
  void Ping();

 private:
  std::string Call(const std::string& request);
  RunResult DoRun(const std::string& spec_line, const std::uint64_t* seed);

  std::string socket_path_;
  int fd_ = -1;
  std::uint64_t next_id_ = 1;
};

}  // namespace dcc::service
