#include "dcc/sel/ssf.h"

#include <algorithm>
#include <cmath>

#include "dcc/common/math_util.h"

namespace dcc::sel {

Ssf Ssf::Construct(std::int64_t N, int k) {
  DCC_REQUIRE(N >= 1, "Ssf: N >= 1");
  DCC_REQUIRE(k >= 1, "Ssf: k >= 1");
  Ssf s;
  s.n_ = N;
  s.k_ = k;

  // Find the smallest threshold T such that the number of primes in (T, 2T]
  // strictly exceeds (k-1) * ceil(log_T N): then for every k-set X and
  // x in X a "good" prime survives.
  std::int64_t T = 2;
  std::vector<std::int64_t> primes;
  for (;; T = std::max<std::int64_t>(T + 1, static_cast<std::int64_t>(
                                               static_cast<double>(T) * 1.3))) {
    primes = PrimesInRange(T + 1, 2 * T);
    const double logT = std::log(std::max<double>(static_cast<double>(T), 2.0));
    const double needed =
        static_cast<double>(k - 1) *
        std::ceil(std::log(static_cast<double>(std::max<std::int64_t>(N, 2))) /
                  logT);
    if (static_cast<double>(primes.size()) > needed) break;
    DCC_CHECK(T < (std::int64_t{1} << 40));  // construction always terminates
  }
  s.primes_ = std::move(primes);
  s.prefix_.resize(s.primes_.size() + 1, 0);
  for (std::size_t j = 0; j < s.primes_.size(); ++j) {
    s.prefix_[j + 1] = s.prefix_[j] + s.primes_[j];
  }
  s.size_ = s.prefix_.back();
  return s;
}

std::pair<std::int64_t, std::int64_t> Ssf::SetParams(std::int64_t i) const {
  DCC_REQUIRE(i >= 0 && i < size_, "Ssf: round index out of range");
  // Find j with prefix_[j] <= i < prefix_[j+1].
  const auto it = std::upper_bound(prefix_.begin(), prefix_.end(), i);
  const std::size_t j = static_cast<std::size_t>(it - prefix_.begin()) - 1;
  return {primes_[j], i - prefix_[j]};
}

bool Ssf::Member(std::int64_t i, std::int64_t x) const {
  const auto [p, r] = SetParams(i);
  return x % p == r;
}

}  // namespace dcc::sel
