file(REMOVE_RECURSE
  "CMakeFiles/selector_playground.dir/examples/selector_playground.cpp.o"
  "CMakeFiles/selector_playground.dir/examples/selector_playground.cpp.o.d"
  "selector_playground"
  "selector_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selector_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
