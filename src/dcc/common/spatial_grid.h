// Uniform spatial grid over a point set, with per-tile bucket storage and
// incremental maintenance.
//
// Unlike PointGrid (geometry.h), which hashes sparse cells for one-off
// radius queries, SpatialGrid is built over the simulator's node positions
// and optimized for the SINR engine's per-round tile sweeps:
//  * members of a tile are a contiguous span (one bucket per tile);
//  * O(1) point -> tile lookup (precomputed per point);
//  * conservative distance bounds between a point (or tile) and a tile's
//    bounding box, used to bound per-tile interference contributions;
//  * O(1) incremental Move / Insert / Erase (dynamic networks: node
//    mobility and churn mutate tile membership in place instead of
//    rebuilding the index — see bench_mobility_churn for the cost gap).
//
// Tiles are indexed row-major in [0, tile_count()). The grid covers either
// the bounding box of the construction points or an explicit coverage box
// (dynamic networks pass their world box so moved points stay covered);
// every live point maps to exactly one tile, and the soundness of the
// distance bounds requires each point to lie inside its tile's box — hence
// Move/Insert reject positions outside the coverage area.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "dcc/common/geometry.h"
#include "dcc/common/types.h"

namespace dcc {

class SpatialGrid {
 public:
  // `cell` > 0 is the tile side length; the grid covers the points'
  // bounding box.
  SpatialGrid(std::span<const Vec2> pts, double cell);

  // Same, with an explicit coverage box (must contain every point). Use for
  // dynamic point sets whose future positions exceed the initial bounding
  // box.
  SpatialGrid(std::span<const Vec2> pts, double cell, const Box& coverage);

  double cell() const { return cell_; }
  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int tile_count() const { return nx_ * ny_; }
  // Live points (erased slots excluded).
  std::size_t point_count() const { return live_count_; }
  // One past the largest point index ever seen (live or erased).
  std::size_t index_bound() const { return tile_of_point_.size(); }

  // Tile of live point i. Calling this for an erased slot is invalid (the
  // stored tile is kErased, outside [0, tile_count())).
  int TileOfPoint(std::size_t i) const { return tile_of_point_[i]; }

  // True iff slot i currently holds a live point.
  bool Contains(std::size_t i) const {
    return i < tile_of_point_.size() && tile_of_point_[i] != kErased;
  }

  // Tile containing an arbitrary position (clamped into the grid).
  // Header-inlined along with Move/Insert/Erase: mobility re-tiles every
  // node every epoch, so per-call overhead is the difference between
  // incremental maintenance beating a bulk rebuild or losing to it
  // (bench_mobility_churn).
  // The reciprocal multiply instead of dividing by cell_ can only shift a
  // boundary point into the neighboring tile; both closed tile boxes
  // contain such a point, so the distance bounds stay sound either way.
  int TileAt(Vec2 p) const {
    int gx = static_cast<int>(std::floor((p.x - lo_x_) * inv_cell_));
    int gy = static_cast<int>(std::floor((p.y - lo_y_) * inv_cell_));
    gx = gx < 0 ? 0 : (gx >= nx_ ? nx_ - 1 : gx);
    gy = gy < 0 ? 0 : (gy >= ny_ ? ny_ - 1 : gy);
    return gy * nx_ + gx;
  }

  // Point indices inside a tile (contiguous; order unspecified after
  // incremental updates).
  std::span<const std::size_t> Members(int tile) const {
    return buckets_[static_cast<std::size_t>(tile)];
  }

  // Tiles holding at least one point, ascending.
  const std::vector<int>& occupied() const;

  // --- Incremental maintenance (dynamic networks). ---

  // Bumped on every Move/Insert/Erase (even tile-preserving moves: the
  // *position* changed, which is what speculative consumers care about).
  // Anything built against a snapshot of the index — the engine's
  // pipelined round prologues — records this value and discards the
  // snapshot when it moved.
  std::uint64_t generation() const { return generation_; }

  // Relocates live point i to position p (which must be inside the coverage
  // area); O(1), a bucket no-op when the tile is unchanged (but still a
  // generation bump — see generation()).
  void Move(std::size_t i, Vec2 p) {
    DCC_REQUIRE(Contains(i), "SpatialGrid::Move: point not in the grid");
    CheckCovered(p);
    ++generation_;
    const int t = TileAt(p);
    if (t == tile_of_point_[i]) return;
    PopFromTile(i);
    PushToTile(i, t);
  }

  // Adds point i at position p. The slot must not be live: i is either
  // brand-new (extends index_bound; intermediate slots start erased) or a
  // previously erased slot rejoining (churn).
  void Insert(std::size_t i, Vec2 p);

  // Removes live point i, leaving an erased slot that Insert can revive.
  void Erase(std::size_t i) {
    DCC_REQUIRE(Contains(i), "SpatialGrid::Erase: point not in the grid");
    ++generation_;
    PopFromTile(i);
    tile_of_point_[i] = kErased;
    --live_count_;
  }

  // Distance bounds from a position to a tile's closed bounding box:
  // DistLo <= |p - q| <= DistHi for every q in the tile box (and hence for
  // every member point). The squared variants skip the sqrt for hot loops.
  double DistLoSq(Vec2 p, int tile) const;
  double DistHiSq(Vec2 p, int tile) const;
  double DistLo(Vec2 p, int tile) const { return std::sqrt(DistLoSq(p, tile)); }
  double DistHi(Vec2 p, int tile) const { return std::sqrt(DistHiSq(p, tile)); }

  // Distance bounds between two tiles' bounding boxes: for every p in tile
  // a's box and q in tile b's box, TileDistLo <= |p - q| <= TileDistHi.
  double TileDistLoSq(int a, int b) const;
  double TileDistHiSq(int a, int b) const;

  // Distance bounds between tile a's box and the union box of the tile
  // range [bx0, bx1] x [by0, by1] (tile coordinates, inclusive) — the
  // coarse cells of the far-field pyramid (sinr/farfield.h). For a
  // degenerate range (bx0 == bx1, by0 == by1) these perform the exact same
  // arithmetic as TileDistLoSq/TileDistHiSq, and for any tile b inside the
  // range, TileRangeDistLoSq <= TileDistLoSq(a, b) and
  // TileRangeDistHiSq >= TileDistHiSq(a, b) — the monotonicity the
  // pyramid's conservativeness rests on.
  double TileRangeDistLoSq(int a, int bx0, int by0, int bx1, int by1) const;
  double TileRangeDistHiSq(int a, int bx0, int by0, int bx1, int by1) const;
  double TileDistLo(int a, int b) const { return std::sqrt(TileDistLoSq(a, b)); }
  double TileDistHi(int a, int b) const { return std::sqrt(TileDistHiSq(a, b)); }

 private:
  static constexpr int kErased = -1;

  void InitTiles(std::span<const Vec2> pts, const Box& coverage);

  // A point outside the tiled area would be clamped into a boundary tile
  // whose box does not contain it, breaking the distance bounds.
  void CheckCovered(Vec2 p) const {
    DCC_REQUIRE(p.x >= lo_x_ && p.x <= lo_x_ + nx_ * cell_ && p.y >= lo_y_ &&
                    p.y <= lo_y_ + ny_ * cell_,
                "SpatialGrid: position outside the coverage area");
  }

  void PushToTile(std::size_t i, int t) {
    auto& bucket = buckets_[static_cast<std::size_t>(t)];
    if (bucket.empty()) {
      occupied_.push_back(t);
      occupied_dirty_ = true;
    }
    tile_of_point_[i] = t;
    slot_of_point_[i] = static_cast<std::uint32_t>(bucket.size());
    bucket.push_back(i);
  }

  void PopFromTile(std::size_t i) {
    auto& bucket = buckets_[static_cast<std::size_t>(tile_of_point_[i])];
    const std::uint32_t slot = slot_of_point_[i];
    // Swap-pop: the displaced last member inherits the vacated slot.
    const std::size_t moved = bucket.back();
    bucket[slot] = moved;
    slot_of_point_[moved] = slot;
    bucket.pop_back();
    if (bucket.empty()) occupied_dirty_ = true;
  }

  std::uint64_t generation_ = 0;
  double lo_x_ = 0.0, lo_y_ = 0.0;  // grid origin (coverage-box corner)
  double cell_ = 1.0;
  double inv_cell_ = 1.0;
  int nx_ = 1, ny_ = 1;
  std::size_t live_count_ = 0;
  std::vector<int> tile_of_point_;        // kErased for dead slots
  std::vector<std::uint32_t> slot_of_point_;  // position inside the bucket
  std::vector<std::vector<std::size_t>> buckets_;  // per-tile members
  // Occupancy is maintained lazily: mutations append candidates and set the
  // dirty flag; occupied() compacts (drop empties, sort, dedup) on demand.
  mutable std::vector<int> occupied_;
  mutable bool occupied_dirty_ = false;
};

}  // namespace dcc
