// Cross-cutting property tests pinning the model-level facts the
// algorithm proofs lean on:
//  * the SINR "subset argument": removing interferers never breaks a
//    reception (the basis for every schedule-replay delivery guarantee);
//  * Lemma 1: dense areas contain close pairs;
//  * Fact 1: network density and communication-graph degree are linearly
//    related;
//  * SNS coverage across SINR parameter choices (alpha, beta, eps).
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "dcc/bcast/smsb.h"
#include "dcc/bcast/sns.h"
#include "dcc/cluster/validate.h"
#include "dcc/sinr/engine.h"
#include "dcc/workload/generators.h"

namespace dcc {
namespace {

class SubsetArgumentTest : public ::testing::TestWithParam<int> {};

TEST_P(SubsetArgumentTest, RemovingInterferersPreservesReceptions) {
  const int seed = GetParam();
  sinr::Params params = sinr::Params::Default();
  params.id_space = 1 << 10;
  auto pts = workload::UniformSquare(48, 4.0, static_cast<std::uint64_t>(seed));
  const auto net = workload::MakeNetwork(pts, params,
                                         static_cast<std::uint64_t>(seed) + 1);
  const sinr::Engine eng(net);
  Xoshiro256ss rng(static_cast<std::uint64_t>(seed) * 7919);

  for (int trial = 0; trial < 30; ++trial) {
    // Random transmitter set.
    std::vector<std::size_t> tx, listeners;
    for (std::size_t i = 0; i < net.size(); ++i) {
      if (rng.NextDouble() < 0.25) {
        tx.push_back(i);
      } else {
        listeners.push_back(i);
      }
    }
    if (tx.size() < 2) continue;
    const auto before = eng.Step(tx, listeners);

    // Remove a random non-sender transmitter and re-run.
    std::vector<std::size_t> senders;
    for (const auto& r : before) senders.push_back(r.sender);
    std::vector<std::size_t> removable;
    for (const std::size_t v : tx) {
      if (std::find(senders.begin(), senders.end(), v) == senders.end()) {
        removable.push_back(v);
      }
    }
    if (removable.empty()) continue;
    const std::size_t drop = removable[rng.NextBelow(removable.size())];
    std::vector<std::size_t> tx2;
    for (const std::size_t v : tx) {
      if (v != drop) tx2.push_back(v);
    }
    auto listeners2 = listeners;
    listeners2.push_back(drop);  // the dropped node may listen now
    const auto after = eng.Step(tx2, listeners2);

    // Every (listener, sender) pair from `before` must persist.
    for (const auto& rb : before) {
      bool found = false;
      for (const auto& ra : after) {
        if (ra.listener == rb.listener && ra.sender == rb.sender) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "reception " << rb.sender << "->" << rb.listener
                         << " lost after removing interferer " << drop;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubsetArgumentTest, ::testing::Range(1, 6));

TEST(Lemma1Test, DenseBallsContainClosePairs) {
  sinr::Params params = sinr::Params::Default();
  params.id_space = 1 << 12;
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    auto pts = workload::UniformSquare(128, 4.0, seed);
    const auto net = workload::MakeNetwork(pts, params, seed + 9);
    std::vector<std::size_t> all(net.size());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    std::vector<ClusterId> one(net.size(), 1);
    const int gamma = cluster::SubsetDensity(net, all);
    const auto close = cluster::FindClosePairs(net, all, one, gamma, 1.0);

    // For every dense node-centered unit ball, a close pair must exist
    // within distance 5 of its center (Lemma 1.1).
    for (std::size_t c = 0; c < net.size(); ++c) {
      int in_ball = 0;
      for (std::size_t u = 0; u < net.size(); ++u) {
        if (net.Distance(c, u) <= 1.0) ++in_ball;
      }
      if (in_ball < (gamma + 1) / 2) continue;  // not dense
      bool found = false;
      for (const auto& [u, w] : close) {
        if (net.Distance(c, u) <= 5.0 && net.Distance(c, w) <= 5.0) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "dense ball at node " << c << " (" << in_ball
                         << " nodes) has no close pair within 5";
    }
  }
}

TEST(Fact1Test, DensityAndDegreeLinearlyRelated) {
  sinr::Params params = sinr::Params::Default();
  params.id_space = 1 << 12;
  for (const int n : {64, 128, 256}) {
    auto pts = workload::UniformSquare(n, 4.0, static_cast<std::uint64_t>(n));
    const auto net = workload::MakeNetwork(pts, params,
                                           static_cast<std::uint64_t>(n) + 3);
    const double density = net.Density();
    const double degree = net.MaxDegree() + 1;  // closed neighborhood
    // Unit ball (radius 1) vs comm radius (1-eps): constants c1, c2 with
    // c1*deg <= density <= c2*deg; generous band for random fields.
    EXPECT_GE(density, 0.3 * degree) << "n=" << n;
    EXPECT_LE(density, 4.0 * degree) << "n=" << n;
  }
}

class SnsParamsSweep
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(SnsParamsSweep, CoverageAcrossSinrParameters) {
  const auto [alpha, beta, eps] = GetParam();
  sinr::Params params = sinr::Params::Default(alpha, beta, eps);
  params.id_space = 1 << 12;
  auto pts = workload::Grid(5, 5, 1.15);
  const auto net = workload::MakeNetwork(pts, params, 17);
  const auto prof = cluster::Profile::Practical(params.id_space);

  sim::Exec ex(net);
  std::vector<sim::Participant> parts;
  for (std::size_t i = 0; i < net.size(); ++i) {
    parts.push_back({i, net.id(i), kNoCluster});
  }
  std::vector<std::vector<std::size_t>> heard_by(net.size());
  bcast::RunSns(
      ex, prof, parts,
      [&](std::size_t) {
        sim::Message m;
        m.kind = 1;
        return std::optional<sim::Message>(m);
      },
      [&](std::size_t l, const sim::Message& m) {
        heard_by[net.IndexOf(m.src)].push_back(l);
      },
      3);
  const double comm = params.CommRadius();
  for (std::size_t v = 0; v < net.size(); ++v) {
    for (std::size_t u = 0; u < net.size(); ++u) {
      if (u == v || net.Distance(u, v) > comm) continue;
      EXPECT_NE(std::find(heard_by[v].begin(), heard_by[v].end(), u),
                heard_by[v].end())
          << "alpha=" << alpha << " beta=" << beta << " eps=" << eps;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SnsParamsSweep,
    ::testing::Values(std::tuple{3.0, 1.5, 0.2}, std::tuple{4.0, 1.5, 0.2},
                      std::tuple{3.0, 2.5, 0.2}, std::tuple{3.0, 1.5, 0.35},
                      std::tuple{5.0, 2.0, 0.25}));

TEST(DeterminismTest, WholeStackIsSeedStable) {
  // Two complete, independent executions of the most composite protocol
  // must agree bit-for-bit on every outcome.
  sinr::Params params = sinr::Params::Default();
  params.id_space = 1 << 12;
  auto pts = workload::BlobChain(4, 10, 0.3, 1.2, 11);
  const auto net = workload::MakeNetwork(pts, params, 5);
  if (!net.Connected()) GTEST_SKIP();
  const auto prof = cluster::Profile::Practical(params.id_space);

  sim::Exec ex1(net), ex2(net);
  const auto a = bcast::SmsBroadcast(ex1, prof, {0}, net.Density(),
                                     net.Diameter() + 3, 9);
  const auto b = bcast::SmsBroadcast(ex2, prof, {0}, net.Density(),
                                     net.Diameter() + 3, 9);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.awake_phase, b.awake_phase);
  EXPECT_EQ(a.cluster_of, b.cluster_of);
}

}  // namespace
}  // namespace dcc
