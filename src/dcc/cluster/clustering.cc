#include "dcc/cluster/clustering.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <unordered_map>

#include "dcc/cluster/radius_reduction.h"
#include "dcc/cluster/sparsify.h"
#include "dcc/common/math_util.h"
#include "dcc/obs/trace.h"

namespace dcc::cluster {

namespace {

constexpr std::int32_t kInheritMsg = 141;

// One phase-1 level: the set it started from and the sparsification record.
struct Level {
  std::vector<std::size_t> in_set;
  SparsifyResult sp;
  int lambda = 1;  // density bound in force when the level was created
};

}  // namespace

ClusteringResult BuildClustering(sim::Exec& ex, const Profile& prof,
                                 const std::vector<std::size_t>& members,
                                 int gamma, std::uint64_t nonce) {
  DCC_TRACE_SPAN("cluster.build");
  const sinr::Network& net = ex.net();
  const Round start = ex.rounds();
  ClusteringResult res;
  res.cluster_of.assign(net.size(), kNoCluster);
  if (members.empty()) return res;

  const std::vector<ClusterId> no_clusters(net.size(), kNoCluster);

  // --- Phase 1: thinning chain -------------------------------------------
  const int k = CeilLog43(std::max(1.0, static_cast<double>(gamma)));
  std::vector<Level> levels;
  std::vector<std::size_t> X = members;
  double lambda = static_cast<double>(gamma);
  int idle_levels = 0;
  for (int i = 1; i <= k && idle_levels < 2; ++i) {
    for (int j = 0; j < prof.l_uncl; ++j) {
      const int lam = std::max(2, static_cast<int>(std::ceil(lambda)));
      Level lev;
      lev.in_set = X;
      lev.lambda = lam;
      lev.sp = Sparsify(ex, prof, X, no_clusters, lam, /*clustered=*/false,
                        HashCombine(nonce, (0x4000u + i) * 131 + j));
      X = lev.sp.returned;
      const bool progressed = X.size() < lev.in_set.size();
      levels.push_back(std::move(lev));
      if (prof.early_stop) idle_levels = progressed ? 0 : idle_levels + 1;
      if (idle_levels >= 2) break;
    }
    lambda *= 0.75;
  }
  res.levels = static_cast<int>(levels.size());

  // --- Phase 2: re-clustering ----------------------------------------------
  // The final core self-clusters.
  for (const std::size_t idx : X) res.cluster_of[idx] = net.id(idx);

  for (int lev_i = static_cast<int>(levels.size()) - 1; lev_i >= 0; --lev_i) {
    const Level& lev = levels[static_cast<std::size_t>(lev_i)];

    // Inheritance: replay each exchange stage; nodes that already hold a
    // cluster broadcast it; children listen for their recorded parent.
    for (const ExchangeStage& stage : lev.sp.stages) {
      std::unordered_map<std::size_t, std::size_t> pos_of_index;
      for (std::size_t p = 0; p < stage.participants.size(); ++p) {
        pos_of_index.emplace(stage.participants[p].index, p);
      }
      sim::ExecuteSchedule(
          ex, *stage.schedule, stage.participants,
          [&](std::size_t idx, std::int64_t) -> std::optional<sim::Message> {
            if (res.cluster_of[idx] == kNoCluster) return std::nullopt;
            sim::Message m;
            m.src = net.id(idx);
            m.kind = kInheritMsg;
            m.a = res.cluster_of[idx];
            return m;
          },
          [&](std::size_t listener, const sim::Message& m, std::int64_t) {
            if (m.kind != kInheritMsg) return;
            if (!pos_of_index.count(listener)) return;
            if (res.cluster_of[listener] != kNoCluster) return;
            const auto lit = lev.sp.links.find(net.id(listener));
            if (lit == lev.sp.links.end()) return;
            if (lit->second.parent != m.src) return;
            res.cluster_of[listener] = static_cast<ClusterId>(m.a);
          });
    }

    // All of lev.in_set now carries a (<= 2)-radius clustering; reduce it.
    // Build the member list restricted to nodes that do hold a cluster
    // (equal to in_set when every link delivered; validators check).
    std::vector<std::size_t> cl_members;
    cl_members.reserve(lev.in_set.size());
    for (const std::size_t idx : lev.in_set) {
      if (res.cluster_of[idx] != kNoCluster) cl_members.push_back(idx);
    }
    RadiusReduction(ex, prof, cl_members, res.cluster_of,
                    std::max(4, lev.lambda),
                    HashCombine(nonce, 0x5000u + lev_i));
  }

  for (const std::size_t idx : members) {
    if (res.cluster_of[idx] == kNoCluster) ++res.unassigned;
  }
  res.rounds = ex.rounds() - start;
  return res;
}

}  // namespace dcc::cluster
