// Dynamic scenarios: mobility + churn driving per-epoch re-clustering.
//
// A dynamic run executes `epochs` epochs of `epoch_len` simulated time
// each. Epoch 0 clusters the freshly generated topology; every later epoch
// (1) advances the mobility model in place on the Network (incremental
// SpatialGrid maintenance — no index rebuild), (2) applies the churn
// process (leave = SpatialGrid::Erase, join = Respawn + Insert), and
// (3) re-runs clustering over the active member set, validating the
// geometric postconditions against the *current* positions and measuring
// how much of the previous epoch's cluster structure survived.
//
// Driver keys of the `dynamics` ParamMap (all others go to the mobility
// model's factory; unknown keys are rejected):
//   model      mobility model name in MobilityModels()     (waypoint)
//   epochs     number of epochs                            (8)
//   epoch_len  simulated time per epoch                    (1)
//   churn      leave rate, events/node/time                (0)
//   join       rejoin rate for inactive nodes              (= churn)
//   side       world box [0,side]^2; 0 = bounding box of the
//              generated points                            (0)
//
// Per-seed derivations extend the static ones: the mobility and churn
// streams are salted hashes of the run seed, independent of the topology,
// id and nonce streams.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "dcc/mobility/model.h"
#include "dcc/scenario/registry.h"
#include "dcc/scenario/spec.h"

namespace dcc::scenario {

// Builds a mobility model from the (shared) dynamics ParamMap. The factory
// owns interpreting its model-specific keys; leftovers fail the run.
using MobilityFactory = std::function<std::unique_ptr<mobility::MobilityModel>(
    const ParamMap& params, const Box& world, std::uint64_t seed)>;

using MobilityRegistry = Registry<MobilityFactory>;

// Process-wide registry, pre-loaded with waypoint, walk (Gauss-Markov) and
// group (RPGM). Extend like the other registries: one Register call.
MobilityRegistry& MobilityModels();

// True iff the spec requests a dynamic run; RunScenario dispatches here.
bool IsDynamic(const ScenarioSpec& spec);

// Runs one dynamic scenario under `seed`. Requires algo "clustering" (the
// stability metrics are defined on clusterings) and no fault injection.
// Fills RunReport::dynamic with one metric set per epoch; `ok` iff every
// epoch produced a valid clustering with zero unassigned members.
RunReport RunDynamicScenario(const ScenarioSpec& spec, std::uint64_t seed);

}  // namespace dcc::scenario
