# Empty dependencies file for ssf_test.
# This may be replaced when dependencies are built.
