// bench_distrib_rounds — the process axis of the sharded round engine:
// one grid-mode SINR round distributed across R rank processes
// (src/dcc/distrib, dcc_run --ranks=N) versus the same round serial.
//
// For n = 65536 (--full extends to 262144) and the dense transmitter
// regime (every 8th node transmits — the same acceptance workload
// bench_parallel_rounds times in-process), the bench walks a rank ladder
// {0, 2, 4}: rank count 0 is the serial grid engine, every other count
// spawns real dcc_rank processes over socketpairs through a
// distrib::Session. Each distributed config first pins its receptions
// bit-identical to serial (the oracle harness's invariant, re-checked
// here on the timed workload), then reports ms/round, the speedup over
// serial, and the per-round halo traffic from Session::Stats — so the
// wire cost of shipping the boundary CSR is a first-class column next to
// the time it buys.
//
// Flags:
//   --compare_json   one JSON object per line (dcc.bench.distrib_rounds.v1)
//   --full           extend the size ladder
//
// CI appends the JSON to the stream scripts/bench_trend.py tracks in
// BENCH_trend.json (keyed on (n, ranks), value ms_per_round), entering
// the >15% regression gate.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dcc/distrib/session.h"
#include "dcc/scenario/scenario.h"
#include "dcc/scenario/spec.h"
#include "dcc/sinr/engine.h"

namespace {

using Clock = std::chrono::steady_clock;
using dcc::distrib::Session;
using dcc::scenario::ScenarioSpec;
using dcc::sinr::Engine;
using dcc::sinr::Network;
using dcc::sinr::Reception;

// The ranks rebuild their replica from the spec, so the bench must build
// its network the same way the scenario layer does — a spec line, not an
// ad-hoc generator.
ScenarioSpec MakeSpec(int n) {
  const double side = std::sqrt(static_cast<double>(n));
  char topo[64];
  std::snprintf(topo, sizeof topo, "--topology=uniform:n=%d,side=%g", n, side);
  ScenarioSpec spec = ScenarioSpec::FromArgs({topo});
  return spec;
}

bool SameReceptions(const std::vector<Reception>& a,
                    const std::vector<Reception>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].listener != b[i].listener || a[i].sender != b[i].sender ||
        a[i].sinr != b[i].sinr) {
      return false;
    }
  }
  return true;
}

// ms per round, over enough rounds to fill ~300 ms of wall clock. The
// warmup round also sizes the scratch and (for a Session-backed engine)
// spawns the ranks, so process launch never pollutes the timing.
double TimeRounds(const Engine& eng, const std::vector<std::size_t>& tx,
                  const std::vector<std::size_t>& listeners) {
  std::vector<Reception> out;
  const auto w0 = Clock::now();
  eng.StepInto(tx, listeners, out);
  const double warm_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - w0).count();
  const int rounds = std::max(3, static_cast<int>(300.0 / (warm_ms + 0.01)));
  const auto t0 = Clock::now();
  for (int r = 0; r < rounds; ++r) eng.StepInto(tx, listeners, out);
  const double ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  return ms / rounds;
}

void EmitLine(bool json, int n, std::size_t n_tx, std::size_t n_listen,
              int ranks, double ms, double speedup, double halo_mb,
              double reply_mb, bool identical, int* bad) {
  *bad += identical ? 0 : 1;
  if (json) {
    std::cout << "{\"schema\": \"dcc.bench.distrib_rounds.v1\", "
              << "\"n\": " << n << ", \"tx\": " << n_tx
              << ", \"listeners\": " << n_listen << ", \"ranks\": " << ranks
              << ", \"ms_per_round\": " << ms << ", \"speedup\": " << speedup
              << ", \"halo_mb_per_round\": " << halo_mb
              << ", \"reply_mb_per_round\": " << reply_mb
              << ", \"identical\": " << (identical ? "true" : "false")
              << "}\n";
  } else {
    std::printf("%7d  %5d  %8.3f  %7.2fx  %10.3f  %10.3f  %s\n", n, ranks, ms,
                speedup, halo_mb, reply_mb, identical ? "yes" : "NO");
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--compare_json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    } else {
      std::cerr << "usage: bench_distrib_rounds [--compare_json] [--full]\n";
      return 2;
    }
  }

  std::vector<int> sizes{65536};
  if (full) sizes.push_back(262144);
  const std::vector<int> rank_ladder{2, 4};
  constexpr std::uint64_t kSeed = 42;

  if (!json) {
    std::cout << "distributed rounds (grid engine, rank processes over "
                 "socketpairs; ranks=0 is serial)\n"
              << "      n  ranks  ms/round   speedup  halo MB/rd  reply "
                 "MB/rd  identical\n";
  }

  int bad = 0;
  for (const int n : sizes) {
    const ScenarioSpec spec = MakeSpec(n);
    const Network net = dcc::scenario::BuildScenarioNetwork(spec, kSeed);
    std::vector<std::size_t> tx, listeners;
    for (std::size_t i = 0; i < net.size(); ++i) {
      (i % 8 == 0 ? tx : listeners).push_back(i);
    }

    const Engine::Options grid{.mode = Engine::Mode::kGrid};
    const Engine serial(net, grid);
    const std::vector<Reception> want = serial.Step(tx, listeners);
    const double serial_ms = TimeRounds(serial, tx, listeners);
    EmitLine(json, n, tx.size(), listeners.size(), 0, serial_ms, 1.0, 0.0,
             0.0, true, &bad);

    for (const int ranks : rank_ladder) {
      Session session(spec, kSeed, Session::Options{ranks, ""});
      Engine::Options opts = grid;
      opts.delegate = &session;
      const Engine dist(net, opts);
      const bool identical = SameReceptions(want, dist.Step(tx, listeners));
      const double ms = TimeRounds(dist, tx, listeners);
      const Session::Stats& st = session.stats();
      const double per_round =
          st.rounds > 0 ? 1.0 / (static_cast<double>(st.rounds) * 1048576.0)
                        : 0.0;
      EmitLine(json, n, tx.size(), listeners.size(), ranks, ms,
               serial_ms / ms, static_cast<double>(st.halo_bytes) * per_round,
               static_cast<double>(st.reply_bytes) * per_round, identical,
               &bad);
    }
  }
  if (bad > 0) {
    std::cerr << "bench_distrib_rounds: " << bad
              << " configurations diverged from serial receptions\n";
    return 1;
  }
  return 0;
}
