# Empty dependencies file for smsb_test.
# This may be replaced when dependencies are built.
