#include "dcc/scenario/param_map.h"

#include <algorithm>

#include "dcc/common/parse.h"
#include "dcc/common/types.h"

namespace dcc::scenario {

ParamMap ParamMap::Parse(const std::string& text, const std::string& context) {
  ParamMap out;
  if (text.empty()) return out;
  std::size_t pos = 0;
  for (;;) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string item = text.substr(pos, comma - pos);
    const std::size_t eq = item.find('=');
    // An empty item also rejects leading, doubled and trailing commas.
    if (item.empty() || eq == std::string::npos || eq == 0) {
      throw InvalidArgument(context + ": malformed parameter '" + item +
                            "' (expected key=value)");
    }
    out.Set(item.substr(0, eq), item.substr(eq + 1));
    if (comma == text.size()) break;
    pos = comma + 1;
  }
  return out;
}

void ParamMap::Set(const std::string& key, const std::string& value) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].first == key) {
      entries_[i].second = value;
      return;
    }
  }
  entries_.emplace_back(key, value);
  consumed_.push_back(0);
}

const std::string* ParamMap::Find(const std::string& key) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].first == key) {
      consumed_[i] = 1;
      return &entries_[i].second;
    }
  }
  return nullptr;
}

bool ParamMap::Has(const std::string& key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return true;
  }
  return false;
}

std::int64_t ParamMap::GetInt(const std::string& key,
                              std::int64_t fallback) const {
  const std::string* v = Find(key);
  if (!v) return fallback;
  return ParseInt64(*v, "parameter '" + key + "'");
}

double ParamMap::GetDouble(const std::string& key, double fallback) const {
  const std::string* v = Find(key);
  if (!v) return fallback;
  return ParseDouble(*v, "parameter '" + key + "'");
}

std::string ParamMap::GetString(const std::string& key,
                                const std::string& fallback) const {
  const std::string* v = Find(key);
  return v ? *v : fallback;
}

void ParamMap::CheckAllConsumed(const std::string& context) const {
  std::string leftover;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (consumed_[i]) continue;
    if (!leftover.empty()) leftover += ", ";
    leftover += entries_[i].first;
  }
  if (!leftover.empty()) {
    throw InvalidArgument(context + ": unknown parameter(s): " + leftover);
  }
}

ParamMap ParamMap::Sorted() const {
  ParamMap out;
  out.entries_ = entries_;
  std::sort(out.entries_.begin(), out.entries_.end());
  out.consumed_.assign(out.entries_.size(), 0);
  return out;
}

std::string ParamMap::ToString() const {
  std::string out;
  for (const auto& [k, v] : entries_) {
    if (!out.empty()) out += ',';
    out += k + '=' + v;
  }
  return out;
}

}  // namespace dcc::scenario
