// dcc_load — load generator for a running dccd.
//
//   $ dcc_load --socket=/tmp/dccd.sock --connections=4 --requests=512 \
//       --spec='--topology=uniform:n=256,side=8 --algo=clustering' \
//       --seeds=1..4
//
// Replays the (spec x seed) workload round-robin across N concurrent
// connections, verifies byte-identical reports per (spec, seed), and
// prints a one-line JSON summary plus the daemon's dcc.service.v1 stats.
// Exit 0 iff no request failed and byte-identity held.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "dcc/common/json.h"
#include "dcc/scenario/spec.h"
#include "dcc/service/client.h"
#include "dcc/service/loadgen.h"

namespace {

void PrintUsage(std::ostream& os) {
  os << "usage: dcc_load [flags]\n"
        "\n"
        "  --socket=PATH        daemon socket to connect to (/tmp/dccd.sock)\n"
        "  --spec=LINE          scenario flag line to request; repeatable —\n"
        "                       the workload cycles through all given specs\n"
        "  --seeds=A..B|A,B|A   seeds crossed with every spec (1)\n"
        "  --connections=N      concurrent client connections (4)\n"
        "  --requests=N         total requests across connections (256)\n"
        "  --stats              also fetch and print daemon stats after the\n"
        "                       run (off)\n"
        "  --percentiles        append client-side latency percentiles\n"
        "                       (p50/p90/p99 ms, stamped around each call)\n"
        "                       to the summary line (off)\n"
        "  --metrics            fetch and print the daemon's Prometheus\n"
        "                       text exposition after the run (off)\n"
        "  --help               usage\n";
}

}  // namespace

int main(int argc, char** argv) {
  dcc::service::LoadSpec load;
  load.socket_path = "/tmp/dccd.sock";
  bool want_stats = false;
  bool want_percentiles = false;
  bool want_metrics = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg == "--help" || arg == "-h") {
        PrintUsage(std::cout);
        return 0;
      } else if (arg.rfind("--socket=", 0) == 0) {
        load.socket_path = arg.substr(9);
      } else if (arg.rfind("--spec=", 0) == 0) {
        load.spec_lines.push_back(arg.substr(7));
      } else if (arg.rfind("--seeds=", 0) == 0) {
        load.seeds = dcc::scenario::ParseSeeds(arg.substr(8));
      } else if (arg.rfind("--connections=", 0) == 0) {
        load.connections = std::stoi(arg.substr(14));
      } else if (arg.rfind("--requests=", 0) == 0) {
        load.requests = std::stoi(arg.substr(11));
      } else if (arg == "--stats") {
        want_stats = true;
      } else if (arg == "--percentiles") {
        want_percentiles = true;
      } else if (arg == "--metrics") {
        want_metrics = true;
      } else {
        std::cerr << "dcc_load: unknown flag '" << arg << "' (see --help)\n";
        return 2;
      }
    } catch (const std::exception& e) {
      std::cerr << "dcc_load: " << arg << ": " << e.what() << '\n';
      return 2;
    }
  }
  if (load.spec_lines.empty()) {
    std::cerr << "dcc_load: at least one --spec=LINE is required\n";
    return 2;
  }

  dcc::service::LoadResult r;
  try {
    r = dcc::service::RunLoad(load);
  } catch (const std::exception& e) {
    std::cerr << "dcc_load: " << e.what() << '\n';
    return 2;
  }

  std::cout << "{\"schema\": \"dcc.load.v1\", \"requests\": " << r.requests
            << ", \"errors\": " << r.errors
            << ", \"result_cached\": " << r.result_cached
            << ", \"topology_cached\": " << r.topology_cached
            << ", \"uncached\": " << r.uncached
            << ", \"wall_ms\": " << dcc::JsonNumber(r.wall_ms)
            << ", \"ms_per_request\": " << dcc::JsonNumber(r.ms_per_request)
            << ", \"rps\": " << dcc::JsonNumber(r.rps);
  if (want_percentiles) {
    std::cout << ", \"p50_ms\": " << dcc::JsonNumber(r.p50_ms)
              << ", \"p90_ms\": " << dcc::JsonNumber(r.p90_ms)
              << ", \"p99_ms\": " << dcc::JsonNumber(r.p99_ms);
  }
  std::cout << ", \"reports_consistent\": "
            << (r.reports_consistent ? "true" : "false") << "}\n";
  if (!r.first_error.empty()) {
    std::cerr << "dcc_load: first error: " << r.first_error << '\n';
  }

  if (want_stats || want_metrics) {
    try {
      dcc::service::Client client(load.socket_path);
      if (want_stats) std::cout << client.StatsJson() << '\n';
      if (want_metrics) std::cout << client.MetricsText();
    } catch (const std::exception& e) {
      std::cerr << "dcc_load: stats: " << e.what() << '\n';
      return 2;
    }
  }
  return (r.errors == 0 && r.reports_consistent) ? 0 : 1;
}
