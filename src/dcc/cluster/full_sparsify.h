// FullSparsification (Alg. 4, Lemma 10): iterates clustered Sparsification
// with a geometrically decaying density bound, producing the nested chain
//   A_0 ⊇ A_1 ⊇ ... ⊇ A_k,  density(A_i) <= max(Gamma*(3/4)^i, O(1)),
// where every node retired between levels has a same-cluster parent one
// level up, reachable through the recorded exchange stages. The resulting
// parent forest splits every cluster into O(1) trees rooted in A_k — the
// backbone of imperfect labeling (Lemma 11) and radius reduction (Alg. 5).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dcc/cluster/sparsify.h"

namespace dcc::cluster {

struct FullSparsifyResult {
  // levels[0] = input set; levels[i] = result after i sparsifications.
  std::vector<std::vector<std::size_t>> levels;
  std::unordered_map<NodeId, ParentLink> links;  // stage indices -> `stages`
  std::vector<ExchangeStage> stages;
  Round rounds = 0;

  const std::vector<std::size_t>& final_set() const { return levels.back(); }
};

FullSparsifyResult FullSparsify(sim::Exec& ex, const Profile& prof,
                                const std::vector<std::size_t>& members,
                                const std::vector<ClusterId>& cluster_of,
                                int gamma, std::uint64_t nonce);

}  // namespace dcc::cluster
