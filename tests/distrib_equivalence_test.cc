// Serial-equivalence oracle harness for the distributed execution mode
// (src/dcc/distrib): every configuration runs the same round schedule
// through
//   * serial kExact            — the semantic oracle,
//   * serial kGrid             — the bit-identity reference,
//   * kGrid with 4 threads     — the in-process shard fan-out,
//   * kGrid with R in {2,3,5}  — rank processes via distrib::Session,
// and asserts the reception streams agree:
//   * within the grid family (serial / threaded / every rank count) the
//     streams must be BYTE-identical — same order, same (listener, sender),
//     and bit-equal SINR doubles. This is the halo invariant of
//     docs/ARCHITECTURE.md: a rank resolves its listeners against a
//     reconstruction of the full transmitter CSR, so per-listener
//     resolution is the same arithmetic on the same bits, and the
//     ordinal-ordered gather restores the serial emission order.
//   * against kExact the grid family matches as a set on (listener,
//     sender) with SINR agreement to >= 9 significant digits (the two
//     strategies sum interference in different associations; see the
//     engine header). kExact vs kGrid is NOT bit-identical by design, so
//     the oracle check is set-identity + tolerance, never byte equality.
//
// Configurations cover mobility (per-round jitter), churn (index
// erase/insert mid-schedule), shadowing (the non-pure propagation model
// whose fallback order the wire protocol must preserve), and jammer fault
// injection (fixed extra transmitters every round).
//
// Failure path: killing a rank mid-run must surface as a DistribError
// naming the rank on the next round — and the Session destructor must
// reap every child without hanging. At the scenario layer a rank that
// cannot even launch must produce a clean ok=false report, not a hang.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "dcc/common/rng.h"
#include "dcc/distrib/session.h"
#include "dcc/scenario/scenario.h"
#include "dcc/sinr/engine.h"

namespace dcc {
namespace {

using scenario::ScenarioSpec;
using sinr::Engine;
using sinr::Reception;

struct Config {
  std::string name;
  std::vector<std::string> args;  // ScenarioSpec flags (network recipe)
  std::uint64_t seed = 1;
  int jammers = 0;    // fixed extra transmitters, every round
  bool dynamic = false;  // per-round jitter + churn at rounds 4/8
};

std::vector<Config> Configs() {
  const std::string topo = "--topology=uniform:n=600,side=14";
  return {
      {"static", {topo}, 7, 0, false},
      {"shadowing", {topo, "--shadowing=0.5:7"}, 11, 0, false},
      {"jammers", {topo}, 13, 8, false},
      {"mobility_churn", {topo, "--shadowing=0.3:3"}, 17, 4, true},
  };
}

constexpr double kSide = 14.0;
constexpr double kCell = 1.5;
constexpr int kRounds = 12;
constexpr std::size_t kChurnNode = 17;

// Deterministic per-round transmitter choice (~1/8 of the live nodes).
bool Transmits(std::uint64_t seed, int round, std::size_t i) {
  return HashCombine(HashCombine(seed, static_cast<std::uint64_t>(round)),
                     static_cast<std::uint64_t>(i)) %
             8 ==
         0;
}

// One engine stream: an Engine plus (for rank streams) the Session that
// takes its rounds over.
struct Stream {
  std::string name;
  std::unique_ptr<distrib::Session> session;  // null for in-process streams
  std::unique_ptr<Engine> engine;
};

Stream MakeStream(const std::string& name, const sinr::Network& net,
                  Engine::Options opts, const ScenarioSpec& spec,
                  std::uint64_t seed, int ranks) {
  Stream s;
  s.name = name;
  if (ranks > 0) {
    s.session = std::make_unique<distrib::Session>(
        spec, seed, distrib::Session::Options{ranks, ""});
    opts.delegate = s.session.get();
  }
  s.engine = std::make_unique<Engine>(net, opts);
  return s;
}

void ExpectByteIdentical(const std::string& label,
                         const std::vector<Reception>& ref,
                         const std::vector<Reception>& got, int round) {
  ASSERT_EQ(ref.size(), got.size()) << label << " round " << round;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(ref[i].listener, got[i].listener)
        << label << " round " << round << " entry " << i;
    ASSERT_EQ(ref[i].sender, got[i].sender)
        << label << " round " << round << " entry " << i;
    ASSERT_EQ(std::bit_cast<std::uint64_t>(ref[i].sinr),
              std::bit_cast<std::uint64_t>(got[i].sinr))
        << label << " round " << round << " entry " << i
        << ": SINR bits differ (" << ref[i].sinr << " vs " << got[i].sinr
        << ")";
  }
}

// Oracle comparison: same (listener, sender) set, SINR to >= 9 significant
// digits. Both streams emit in ascending-listener order here (the listener
// span is ascending and at most one sender can clear beta per listener),
// so positional comparison doubles as the set check.
void ExpectOracleMatch(const std::string& label,
                       const std::vector<Reception>& oracle,
                       const std::vector<Reception>& got, int round) {
  ASSERT_EQ(oracle.size(), got.size()) << label << " round " << round;
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    ASSERT_EQ(oracle[i].listener, got[i].listener)
        << label << " round " << round << " entry " << i;
    ASSERT_EQ(oracle[i].sender, got[i].sender)
        << label << " round " << round << " entry " << i;
    ASSERT_NEAR(got[i].sinr / oracle[i].sinr, 1.0, 1e-8)
        << label << " round " << round << " entry " << i;
  }
}

void RunConfig(const Config& cfg) {
  SCOPED_TRACE(cfg.name);
  const ScenarioSpec spec = ScenarioSpec::FromArgs(cfg.args);
  sinr::Network net = scenario::BuildScenarioNetwork(spec, cfg.seed);
  const std::size_t n = net.size();

  Engine::Options exact;
  exact.mode = Engine::Mode::kExact;
  Engine::Options grid;
  grid.mode = Engine::Mode::kGrid;
  grid.cell = kCell;
  if (cfg.dynamic) grid.coverage = Box{{0.0, 0.0}, {kSide, kSide}};
  Engine::Options grid4 = grid;
  grid4.threads = 4;

  Engine oracle(net, exact);
  std::vector<Stream> streams;
  streams.push_back(MakeStream("grid-serial", net, grid, spec, cfg.seed, 0));
  streams.push_back(MakeStream("grid-threads4", net, grid4, spec, cfg.seed, 0));
  for (const int r : {2, 3, 5}) {
    streams.push_back(MakeStream("ranks-" + std::to_string(r), net, grid, spec,
                                 cfg.seed, r));
  }

  // Fixed jammers: always-on extra transmitters, never the churn node.
  std::vector<std::size_t> jammers;
  for (std::size_t i = 0; jammers.size() < static_cast<std::size_t>(cfg.jammers);
       i += 37) {
    if (i != kChurnNode && i < n) jammers.push_back(i);
  }

  std::vector<char> live(n, 1);
  std::vector<Vec2> pos = net.positions();
  std::vector<Reception> out_oracle, out_ref, out;

  for (int round = 0; round < kRounds; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    if (cfg.dynamic) {
      if (round > 0) {
        // Deterministic jitter, clamped inside the coverage box.
        for (std::size_t i = 0; i < n; ++i) {
          const std::uint64_t h = HashCombine(
              HashCombine(cfg.seed ^ 0xD17Eull, round), i);
          const double dx = (static_cast<double>(h % 1000) / 999.0 - 0.5) * 0.3;
          const double dy =
              (static_cast<double>((h >> 20) % 1000) / 999.0 - 0.5) * 0.3;
          pos[i].x = std::clamp(pos[i].x + dx, 0.05, kSide - 0.05);
          pos[i].y = std::clamp(pos[i].y + dy, 0.05, kSide - 0.05);
        }
        net.SetPositions(pos);
        for (Stream& s : streams) s.engine->SyncIndex();
      }
      if (round == 4) {
        live[kChurnNode] = 0;
        for (Stream& s : streams) s.engine->IndexErase(kChurnNode);
      }
      if (round == 8) {
        live[kChurnNode] = 1;
        for (Stream& s : streams) s.engine->IndexInsert(kChurnNode);
      }
    }

    std::vector<std::size_t> tx;
    std::vector<char> is_tx(n, 0);
    for (const std::size_t j : jammers) {
      if (live[j]) {
        tx.push_back(j);
        is_tx[j] = 1;
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (live[i] && !is_tx[i] && Transmits(cfg.seed, round, i)) {
        tx.push_back(i);
        is_tx[i] = 1;
      }
    }
    std::sort(tx.begin(), tx.end());
    std::vector<std::size_t> listeners;
    for (std::size_t i = 0; i < n; ++i) {
      if (live[i] && !is_tx[i]) listeners.push_back(i);
    }
    ASSERT_FALSE(tx.empty());

    oracle.StepInto(tx, listeners, out_oracle);
    streams[0].engine->StepInto(tx, listeners, out_ref);
    ASSERT_GT(out_ref.size(), 0u);
    ExpectOracleMatch(streams[0].name, out_oracle, out_ref, round);
    for (std::size_t s = 1; s < streams.size(); ++s) {
      streams[s].engine->StepInto(tx, listeners, out);
      ExpectByteIdentical(streams[s].name, out_ref, out, round);
    }
  }

  // Every rank session shipped every round.
  for (const Stream& s : streams) {
    if (!s.session) continue;
    EXPECT_EQ(s.session->stats().rounds, kRounds) << s.name;
    EXPECT_EQ(s.session->stats().ranks, s.session->ranks()) << s.name;
  }
}

TEST(DistribEquivalence, Static) { RunConfig(Configs()[0]); }
TEST(DistribEquivalence, Shadowing) { RunConfig(Configs()[1]); }
TEST(DistribEquivalence, Jammers) { RunConfig(Configs()[2]); }
TEST(DistribEquivalence, MobilityChurn) { RunConfig(Configs()[3]); }

// Killing a rank mid-run: the next round must fail with a DistribError
// naming the dead rank, and the Session destructor must reap the children
// without hanging (the test would time out otherwise).
TEST(DistribFailure, RankDeathMidRoundFailsCleanly) {
  const ScenarioSpec spec =
      ScenarioSpec::FromArgs({"--topology=uniform:n=300,side=10"});
  const sinr::Network net = scenario::BuildScenarioNetwork(spec, 21);
  distrib::Session session(spec, 21, distrib::Session::Options{3, ""});
  Engine::Options opts;
  opts.mode = Engine::Mode::kGrid;
  opts.cell = kCell;
  opts.delegate = &session;
  Engine engine(net, opts);

  std::vector<std::size_t> tx, listeners;
  for (std::size_t i = 0; i < net.size(); ++i) {
    (i % 7 == 0 ? tx : listeners).push_back(i);
  }
  std::vector<Reception> out;
  for (int round = 0; round < 3; ++round) engine.StepInto(tx, listeners, out);
  EXPECT_EQ(session.stats().rounds, 3);

  session.KillRank(1);
  try {
    engine.StepInto(tx, listeners, out);
    FAIL() << "expected DistribError after killing rank 1";
  } catch (const distrib::DistribError& e) {
    EXPECT_NE(std::string(e.what()).find("rank 1"), std::string::npos)
        << e.what();
  }
}

// A rank executable that cannot speak the protocol (exits immediately):
// the scenario layer must return a clean ok=false report — no hang, no
// crash — and the error must name the failing rank.
TEST(DistribFailure, LaunchFailureYieldsErrorReport) {
  ::setenv("DCC_RANK_EXE", "/bin/false", 1);
  ScenarioSpec spec = ScenarioSpec::FromArgs(
      {"--topology=uniform:n=128,side=6", "--engine=grid", "--ranks=2"});
  const scenario::RunReport rep = scenario::RunScenario(spec, 5);
  ::unsetenv("DCC_RANK_EXE");
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("rank"), std::string::npos) << rep.error;
}

// --ranks with a non-grid engine must be rejected loudly, not silently run
// in-process (the delegate hook is grid-only).
TEST(DistribFailure, NonGridEngineRejected) {
  ScenarioSpec spec = ScenarioSpec::FromArgs(
      {"--topology=uniform:n=128,side=6", "--engine=exact", "--ranks=2"});
  const scenario::RunReport rep = scenario::RunScenario(spec, 5);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("--ranks"), std::string::npos) << rep.error;
}

// A full scenario run over ranks reports the dcc.distrib.v1 section with
// deterministic accounting.
TEST(DistribEquivalence, ScenarioReportsDistribSection) {
  ScenarioSpec spec = ScenarioSpec::FromArgs(
      {"--topology=uniform:n=64,side=4", "--engine=grid", "--ranks=2"});
  const scenario::RunReport rep = scenario::RunScenario(spec, 3);
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.distrib.ranks, 2);
  EXPECT_GT(rep.distrib.rounds, 0);
  EXPECT_GT(rep.distrib.halo_bytes, 0);
  EXPECT_GT(rep.distrib.reply_bytes, 0);
  ASSERT_EQ(rep.distrib.rank_load.size(), 2u);
  EXPECT_GE(rep.distrib.imbalance, 1.0);
}

}  // namespace
}  // namespace dcc
