// Trivial deterministic baselines over the ID space.
//
//  * `TdmaLocalBroadcast`: round r lets the unique node with id ≡ r
//    (mod N) transmit — no interference ever, local broadcast completes in
//    exactly N rounds. The deterministic strawman of Table 1: correct, but
//    Theta(N) instead of ~Delta * polylog(N).
//  * `TdmaGlobalBroadcast`: D sweeps of the same schedule propagate a
//    message from the source — Theta(D * N).
#pragma once

#include <cstdint>
#include <vector>

#include "dcc/sim/runner.h"

namespace dcc::baselines {

struct TdmaResult {
  Round rounds = 0;
  bool complete = false;
  std::size_t reached = 0;
};

TdmaResult TdmaLocalBroadcast(sim::Exec& ex,
                              const std::vector<std::size_t>& members);

TdmaResult TdmaGlobalBroadcast(sim::Exec& ex, std::size_t source,
                               int max_sweeps);

}  // namespace dcc::baselines
