// Shared helpers for the table/figure regenerators.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "dcc/cluster/validate.h"
#include "dcc/common/table.h"
#include "dcc/sinr/engine.h"
#include "dcc/sinr/network.h"
#include "dcc/workload/generators.h"

namespace dcc::bench {

inline std::vector<std::size_t> AllIndices(const sinr::Network& net) {
  std::vector<std::size_t> all(net.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return all;
}

// Engine options for the regenerators, overridable without recompiling via
// DCC_ENGINE_MODE / DCC_ENGINE_CELL (see sinr::Engine::Options::FromEnv;
// malformed values are rejected, not silently defaulted).
inline sinr::Engine::Options EngineOptionsFromEnv() {
  return sinr::Engine::Options::FromEnv();
}

inline void Banner(const std::string& title, const std::string& paper_ref,
                   const std::string& expectation) {
  std::cout << "\n=== " << title << " ===\n"
            << "paper: " << paper_ref << "\n"
            << "expected shape: " << expectation << "\n\n";
}

}  // namespace dcc::bench
