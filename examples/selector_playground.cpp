// Selector playground: construct the paper's combinatorial objects
// directly, print a few schedule rows, and verify their properties.
// Useful for understanding what "witnessed selection" buys over a plain
// strongly-selective family.
//
//   $ ./examples/selector_playground [N] [k]
#include <cstdlib>
#include <iostream>

#include "dcc/sel/verify.h"

int main(int argc, char** argv) {
  using namespace dcc;

  const std::int64_t N = argc > 1 ? std::atoll(argv[1]) : 64;
  const int k = argc > 2 ? std::atoi(argv[2]) : 3;

  // --- (N,k)-ssf: deterministic prime-residue construction. ---
  const auto ssf = sel::Ssf::Construct(N, k);
  std::cout << "(N=" << N << ", k=" << k << ")-ssf: " << ssf.size()
            << " sets from primes {";
  for (std::size_t i = 0; i < ssf.primes().size(); ++i) {
    std::cout << (i ? "," : "") << ssf.primes()[i];
  }
  std::cout << "}\n  first rounds (members of S_i among [1,16]):\n";
  for (std::int64_t i = 0; i < std::min<std::int64_t>(4, ssf.size()); ++i) {
    const auto [p, r] = ssf.SetParams(i);
    std::cout << "  S_" << i << " = {x : x mod " << p << " == " << r << "}: ";
    for (std::int64_t x = 1; x <= std::min<std::int64_t>(N, 16); ++x) {
      if (ssf.Member(i, x)) std::cout << x << ' ';
    }
    std::cout << '\n';
  }
  if (N <= 20) {
    const auto res = sel::VerifySsfExhaustive(ssf);
    std::cout << "  exhaustive selection check: " << res.failures << "/"
              << res.trials << " failures\n";
  }

  // --- (N,k)-wss: seeded probabilistic-method realization. ---
  const auto wss = sel::Wss::Construct(N, k, 1.5, /*seed=*/2024);
  const auto wres = sel::VerifyWssSampled(wss, 500, 7);
  std::cout << "\n(N,k)-wss: " << wss.size() << " sets (seeded, c=1.5); "
            << "witnessed-selection failures: " << wres.failures << "/"
            << wres.trials << "\n";
  std::cout << "  (every selection S cap X = {x} must also contain the\n"
               "   witness y — the implicit collision detection that lets\n"
               "   Alg. 1 discard far-away candidates)\n";

  // --- (N,k,l)-wcss. ---
  const int l = 2;
  const auto wcss = sel::Wcss::Construct(N, k, l, 3.0, 5);
  const auto cres = sel::VerifyWcssSampled(wcss, 300, 11);
  std::cout << "\n(N,k,l=" << l << ")-wcss: " << wcss.size()
            << " sets; cluster-aware witnessed-selection failures: "
            << cres.failures << "/" << cres.trials << "\n";

  // --- Greedy derandomized wss for tiny N. ---
  if (N <= 12 && k <= 3) {
    const auto greedy = sel::GreedyWss::Construct(N, k);
    std::cout << "\ngreedy derandomized wss: " << greedy.size()
              << " sets (vs " << wss.size() << " seeded)\n";
  }
  return 0;
}
