# Empty dependencies file for bench_clustering_scaling.
# This may be replaced when dependencies are built.
