// The far-field tile pyramid and the transmit-set-memoized prologue cache
// must be invisible except for speed:
//  * the pyramid's coarse bounds are CONSERVATIVE relative to the flat
//    per-tile walk (interference lower bound can only shrink, best-gain
//    upper bound can only grow) and its leaf close/far classification is
//    EXACT — checked as a randomized property over 1k transmit sets with
//    shadowing on and off;
//  * receptions are bit-identical with the pyramid on or off, and with the
//    prologue cache on or off, across thread counts, rank counts, and
//    mobility + churn;
//  * a periodic (TDMA) schedule hits the cache on every repeat, and any
//    position or membership mutation invalidates instead of serving stale
//    state.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "dcc/common/rng.h"
#include "dcc/common/spatial_grid.h"
#include "dcc/distrib/protocol.h"
#include "dcc/distrib/session.h"
#include "dcc/scenario/scenario.h"
#include "dcc/scenario/spec.h"
#include "dcc/sinr/engine.h"
#include "dcc/sinr/farfield.h"
#include "dcc/sinr/network.h"
#include "dcc/workload/generators.h"

namespace dcc {
namespace {

using sinr::Engine;
using sinr::FarFieldPyramid;
using sinr::Network;
using sinr::Params;
using sinr::Reception;
using sinr::Shadowing;

// --- SpatialGrid range bounds -----------------------------------------------

SpatialGrid MakeGrid(int nx, int ny, double cell) {
  // Two corner points span the box; the grid covers the bounding box.
  const std::vector<Vec2> pts = {
      {0.0, 0.0}, {cell * nx - cell * 0.5, cell * ny - cell * 0.5}};
  return SpatialGrid(pts, cell);
}

TEST(FarFieldRangeBoundsTest, DegenerateRangeIsExactlyTheTileBound) {
  const SpatialGrid grid = MakeGrid(13, 9, 1.5);
  Xoshiro256ss rng(1);
  for (int it = 0; it < 500; ++it) {
    const int a = static_cast<int>(rng.NextBelow(13 * 9));
    const int b = static_cast<int>(rng.NextBelow(13 * 9));
    const int bx = b % 13, by = b / 13;
    // Bitwise equality: the degenerate range performs the same arithmetic,
    // which is what lets pyramid leaf classification match the flat walk.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(grid.TileDistLoSq(a, b)),
              std::bit_cast<std::uint64_t>(
                  grid.TileRangeDistLoSq(a, bx, by, bx, by)))
        << "a=" << a << " b=" << b;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(grid.TileDistHiSq(a, b)),
              std::bit_cast<std::uint64_t>(
                  grid.TileRangeDistHiSq(a, bx, by, bx, by)))
        << "a=" << a << " b=" << b;
  }
}

TEST(FarFieldRangeBoundsTest, RangeBoundsContainEveryMemberTile) {
  const SpatialGrid grid = MakeGrid(11, 7, 2.0);
  Xoshiro256ss rng(2);
  for (int it = 0; it < 300; ++it) {
    const int a = static_cast<int>(rng.NextBelow(11 * 7));
    const int bx0 = static_cast<int>(rng.NextBelow(11));
    const int by0 = static_cast<int>(rng.NextBelow(7));
    const int bx1 = bx0 + static_cast<int>(rng.NextBelow(
                              static_cast<std::uint64_t>(11 - bx0)));
    const int by1 = by0 + static_cast<int>(rng.NextBelow(
                              static_cast<std::uint64_t>(7 - by0)));
    const double lo = grid.TileRangeDistLoSq(a, bx0, by0, bx1, by1);
    const double hi = grid.TileRangeDistHiSq(a, bx0, by0, bx1, by1);
    for (int by = by0; by <= by1; ++by) {
      for (int bx = bx0; bx <= bx1; ++bx) {
        const int b = by * 11 + bx;
        EXPECT_LE(lo, grid.TileDistLoSq(a, b)) << "a=" << a << " b=" << b;
        EXPECT_GE(hi, grid.TileDistHiSq(a, b)) << "a=" << a << " b=" << b;
      }
    }
  }
}

// --- Pyramid bounds: randomized conservativeness property -------------------

// Flat reference: the exact walk BuildTileState performs with
// --farfield=flat (occupied ascending; far tiles accumulate count-scaled
// envelope bounds, close tiles are listed).
template <class MinGain, class MaxGain>
void FlatAccumulate(const SpatialGrid& grid, int tile, double far_sq,
                    const std::vector<int>& occupied,
                    const std::vector<std::uint32_t>& count,
                    MinGain&& min_gain_d2, MaxGain&& max_gain_d2,
                    std::vector<int>& close_out, double& far_lo,
                    double& far_ub) {
  far_lo = 0.0;
  far_ub = 0.0;
  close_out.clear();
  for (const int b : occupied) {
    const double d2_lo = grid.TileDistLoSq(tile, b);
    if (d2_lo > far_sq) {
      far_lo += static_cast<double>(count[static_cast<std::size_t>(b)]) *
                min_gain_d2(grid.TileDistHiSq(tile, b));
      far_ub = std::max(far_ub, max_gain_d2(d2_lo));
    } else {
      close_out.push_back(b);
    }
  }
}

void RunConservativenessProperty(double shadowing_spread, std::uint64_t seed) {
  constexpr int kNx = 24, kNy = 24;
  constexpr double kCell = 1.0;
  const SpatialGrid grid = MakeGrid(kNx, kNy, kCell);

  // A real propagation model supplies the envelope kernels; shadowing
  // widens them (Min/MaxGain diverge) without changing any invariant.
  Params params = Params::Default();
  auto pts = workload::UniformSquare(16, kNx * kCell, seed);
  std::vector<NodeId> ids(pts.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<NodeId>(i + 1);
  }
  const Network net(std::move(pts), std::move(ids), params,
                    Shadowing{shadowing_spread, /*seed=*/5});
  const auto& model = net.propagation();
  const auto min_gain_d2 = [&](double d2_hi) {
    return model.MinGain(std::sqrt(d2_hi));
  };
  const auto max_gain_d2 = [&](double d2_lo) {
    return model.MaxGain(std::sqrt(d2_lo));
  };

  FarFieldPyramid pyr;
  pyr.Reset(grid);
  ASSERT_GT(pyr.depth(), 1u);

  Xoshiro256ss rng(seed ^ 0xFA12F1E1Dull);
  std::vector<std::uint32_t> count(static_cast<std::size_t>(kNx) * kNy);
  std::vector<int> occupied, close_flat, close_pyr;
  for (int it = 0; it < 1000; ++it) {
    // Random sparse transmit set: 1..40 occupied tiles, counts 1..4. The
    // pyramid never reads tile membership, only the count function, so
    // synthesizing occupancy covers exactly what a round's CSR provides.
    std::fill(count.begin(), count.end(), 0);
    occupied.clear();
    const int n_occ = 1 + static_cast<int>(rng.NextBelow(40));
    for (int i = 0; i < n_occ; ++i) {
      count[rng.NextBelow(static_cast<std::uint64_t>(kNx) * kNy)] +=
          1 + static_cast<std::uint32_t>(rng.NextBelow(4));
    }
    for (int t = 0; t < kNx * kNy; ++t) {
      if (count[static_cast<std::size_t>(t)] > 0) occupied.push_back(t);
    }
    pyr.Rebuild(occupied,
                [&](int b) { return count[static_cast<std::size_t>(b)]; });

    const double far_edge = 2.0 + static_cast<double>(rng.NextBelow(12));
    const double far_sq = far_edge * far_edge;
    const int tile =
        static_cast<int>(rng.NextBelow(static_cast<std::uint64_t>(kNx) * kNy));

    double flat_lo, flat_ub, pyr_lo = 0.0, pyr_ub = 0.0;
    FlatAccumulate(grid, tile, far_sq, occupied, count, min_gain_d2,
                   max_gain_d2, close_flat, flat_lo, flat_ub);
    close_pyr.clear();
    pyr.Accumulate(grid, tile, far_sq, min_gain_d2, max_gain_d2, close_pyr,
                   pyr_lo, pyr_ub);

    // Leaf classification is exact: same close set, same (ascending) order.
    ASSERT_EQ(close_flat, close_pyr) << "it=" << it << " tile=" << tile;
    // Bounds are conservative. Terms are individually <= / >= the flat
    // ones; the far_lo sum is grouped differently, so allow one ulp-scale
    // slack for the comparison itself (never needed in practice).
    EXPECT_LE(pyr_lo, flat_lo * (1.0 + 1e-12) + 1e-300)
        << "it=" << it << " tile=" << tile;
    EXPECT_GE(pyr_ub, flat_ub) << "it=" << it << " tile=" << tile;
  }
}

TEST(FarFieldPyramidTest, BoundsConservativeOnRandomTransmitSets) {
  RunConservativenessProperty(/*shadowing_spread=*/0.0, /*seed=*/101);
}

TEST(FarFieldPyramidTest, BoundsConservativeUnderShadowing) {
  RunConservativenessProperty(/*shadowing_spread=*/0.6, /*seed=*/202);
}

TEST(FarFieldPyramidTest, NearTilesMatchesFlatHaloDerivation) {
  constexpr int kNx = 20, kNy = 16;
  const SpatialGrid grid = MakeGrid(kNx, kNy, 1.0);
  FarFieldPyramid pyr;
  pyr.Reset(grid);
  Xoshiro256ss rng(33);
  std::vector<std::uint32_t> count(static_cast<std::size_t>(kNx) * kNy);
  for (int it = 0; it < 200; ++it) {
    std::fill(count.begin(), count.end(), 0);
    std::vector<int> occupied, listener_tiles;
    const int n_occ = 1 + static_cast<int>(rng.NextBelow(50));
    for (int i = 0; i < n_occ; ++i) {
      count[rng.NextBelow(static_cast<std::uint64_t>(kNx) * kNy)] = 1;
    }
    for (int t = 0; t < kNx * kNy; ++t) {
      if (count[static_cast<std::size_t>(t)] > 0) occupied.push_back(t);
    }
    std::set<int> lt;
    const int n_lt = 1 + static_cast<int>(rng.NextBelow(6));
    for (int i = 0; i < n_lt; ++i) {
      lt.insert(
          static_cast<int>(rng.NextBelow(static_cast<std::uint64_t>(kNx) * kNy)));
    }
    listener_tiles.assign(lt.begin(), lt.end());
    const double far_start = 2.0 + static_cast<double>(rng.NextBelow(8));

    pyr.Rebuild(occupied,
                [&](int b) { return count[static_cast<std::size_t>(b)]; });
    EXPECT_EQ(distrib::NearTxTiles(grid, listener_tiles, occupied, far_start),
              pyr.NearTiles(grid, listener_tiles, occupied, far_start))
        << "it=" << it;
  }
}

// --- Engine: pyramid on/off, cache on/off — bit for bit ---------------------

void ExpectBitIdentical(const std::vector<Reception>& ref,
                        const std::vector<Reception>& got,
                        const std::string& label) {
  ASSERT_EQ(ref.size(), got.size()) << label;
  for (std::size_t k = 0; k < ref.size(); ++k) {
    ASSERT_EQ(ref[k].listener, got[k].listener) << label << " k=" << k;
    ASSERT_EQ(ref[k].sender, got[k].sender) << label << " k=" << k;
    ASSERT_EQ(std::bit_cast<std::uint64_t>(ref[k].sinr),
              std::bit_cast<std::uint64_t>(got[k].sinr))
        << label << " k=" << k;
  }
}

Network MakeUniformNet(int n, double side, double shadowing_spread,
                       std::uint64_t seed) {
  Params params = Params::Default();
  params.id_space = 1 << 17;
  auto pts = workload::UniformSquare(n, side, seed);
  std::vector<NodeId> ids(pts.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<NodeId>(2 * i + 3);
  }
  return Network(std::move(pts), std::move(ids), params,
                 Shadowing{shadowing_spread, /*seed=*/99});
}

void SplitTxListeners(std::size_t n, int period, std::vector<std::size_t>& tx,
                      std::vector<std::size_t>& listeners) {
  tx.clear();
  listeners.clear();
  for (std::size_t i = 0; i < n; ++i) {
    (i % static_cast<std::size_t>(period) == 0 ? tx : listeners).push_back(i);
  }
}

TEST(FarFieldEngineTest, PyramidBitIdenticalToFlatAcrossThreads) {
  for (const double spread : {0.0, 0.4}) {
    const Network net = MakeUniformNet(700, 13.0, spread, 404);
    Engine::Options flat{.mode = Engine::Mode::kGrid};
    flat.farfield = Engine::FarField::kFlat;
    const Engine ref(net, flat);
    std::vector<std::size_t> tx, listeners;
    std::vector<Reception> want, got;
    for (const int period : {2, 7}) {
      SplitTxListeners(net.size(), period, tx, listeners);
      ref.StepInto(tx, listeners, want);
      for (const int threads : {1, 4}) {
        Engine::Options pyr{.mode = Engine::Mode::kGrid};
        pyr.farfield = Engine::FarField::kPyramid;
        pyr.pyramid_min_occupied = 0;  // force the descent on this fixture
        pyr.threads = threads;
        const Engine eng(net, pyr);
        eng.StepInto(tx, listeners, got);
        ExpectBitIdentical(want, got,
                           "spread=" + std::to_string(spread) +
                               " period=" + std::to_string(period) +
                               " threads=" + std::to_string(threads));
        EXPECT_GT(eng.stats().tile_states_computed, 0);
        EXPECT_EQ(eng.stats().tile_states_reused, 0);
      }
    }
  }
}

TEST(FarFieldEngineTest, MobilityChurnStaysIdentical) {
  const int n = 500;
  const double side = 11.0;
  Network net = MakeUniformNet(n, side, 0.0, 909);
  Engine::Options flat{.mode = Engine::Mode::kGrid};
  flat.coverage = Box{{0.0, 0.0}, {side, side}};
  flat.farfield = Engine::FarField::kFlat;
  Engine::Options pyr = flat;
  pyr.farfield = Engine::FarField::kPyramid;
  pyr.pyramid_min_occupied = 0;  // force the descent on this fixture
  Engine::Options pyr4 = pyr;
  pyr4.threads = 4;
  Engine::Options pyr_cached = pyr;
  pyr_cached.prologue_cache = 4;
  Engine ref(net, flat);
  Engine a(net, pyr);
  Engine b(net, pyr4);
  Engine c(net, pyr_cached);

  Xoshiro256ss rng(4242);
  std::vector<char> active(n, 1);
  std::vector<Vec2> pos = net.positions();
  std::vector<std::size_t> tx, listeners;
  std::vector<Reception> want, got;
  for (int epoch = 0; epoch < 6; ++epoch) {
    for (int i = 0; i < n; ++i) {
      if (!active[i]) continue;
      pos[i].x = std::min(
          side, std::max(0.0, pos[i].x + 0.6 * (rng.NextDouble() - 0.5)));
      pos[i].y = std::min(
          side, std::max(0.0, pos[i].y + 0.6 * (rng.NextDouble() - 0.5)));
    }
    net.SetPositions(pos);
    for (Engine* e : {&ref, &a, &b, &c}) e->SyncIndex();
    for (int i = 0; i < n; ++i) {
      if (active[i] && rng.NextBelow(20) == 0) {
        active[i] = 0;
        for (Engine* e : {&ref, &a, &b, &c}) e->IndexErase(i);
      } else if (!active[i] && rng.NextBelow(4) == 0) {
        const Vec2 p{side * rng.NextDouble(), side * rng.NextDouble()};
        pos[i] = p;
        net.SetPosition(i, p);
        active[i] = 1;
        for (Engine* e : {&ref, &a, &b, &c}) e->IndexInsert(i);
      }
    }
    tx.clear();
    listeners.clear();
    for (int i = 0; i < n; ++i) {
      if (!active[i]) continue;
      (i % 5 == epoch % 5 ? tx : listeners).push_back(i);
    }
    ref.StepInto(tx, listeners, want);
    for (Engine* e : {&a, &b, &c}) {
      e->StepInto(tx, listeners, got);
      ExpectBitIdentical(want, got, "epoch " + std::to_string(epoch));
    }
  }
  // Every mutation bumped a generation stamp, so the cached engine can
  // never have served a stale prologue.
  EXPECT_EQ(c.stats().prologue_cache_hits, 0);
  EXPECT_EQ(c.stats().prologue_cache_misses, 6);
}

// --- Prologue cache ---------------------------------------------------------

TEST(PrologueCacheTest, PeriodicScheduleHitsAfterFirstPeriod) {
  const Network net = MakeUniformNet(600, 12.0, 0.0, 777);
  Engine::Options base{.mode = Engine::Mode::kGrid};
  base.pyramid_min_occupied = 0;  // cache + descent together
  const Engine ref(net, base);
  for (const int threads : {1, 4}) {
    Engine::Options copts = base;
    copts.threads = threads;
    copts.prologue_cache = 8;
    const Engine cached(net, copts);
    constexpr int kPeriod = 4;
    constexpr int kRounds = 24;
    std::vector<std::size_t> tx, listeners;
    std::vector<Reception> want, got;
    for (int r = 0; r < kRounds; ++r) {
      // TDMA: slot r mod kPeriod transmits, the rest listen — after the
      // first period every (tx, listeners) pair repeats exactly.
      tx.clear();
      listeners.clear();
      for (std::size_t i = 0; i < net.size(); ++i) {
        (i % kPeriod == static_cast<std::size_t>(r % kPeriod) ? tx : listeners)
            .push_back(i);
      }
      ref.StepInto(tx, listeners, want);
      cached.StepInto(tx, listeners, got);
      ExpectBitIdentical(want, got, "threads=" + std::to_string(threads) +
                                        " round " + std::to_string(r));
    }
    EXPECT_EQ(cached.stats().prologue_cache_misses, kPeriod)
        << "threads=" << threads;
    EXPECT_EQ(cached.stats().prologue_cache_hits, kRounds - kPeriod)
        << "threads=" << threads;
    EXPECT_GT(cached.stats().tile_states_reused, 0) << "threads=" << threads;
  }
}

TEST(PrologueCacheTest, CapacityEvictionStillCorrect) {
  const Network net = MakeUniformNet(400, 10.0, 0.0, 321);
  Engine::Options base{.mode = Engine::Mode::kGrid};
  const Engine ref(net, base);
  Engine::Options copts = base;
  copts.prologue_cache = 2;  // smaller than the period: every round evicts
  const Engine cached(net, copts);
  std::vector<std::size_t> tx, listeners;
  std::vector<Reception> want, got;
  for (int r = 0; r < 12; ++r) {
    SplitTxListeners(net.size(), 2 + (r % 4), tx, listeners);
    ref.StepInto(tx, listeners, want);
    cached.StepInto(tx, listeners, got);
    ExpectBitIdentical(want, got, "round " + std::to_string(r));
  }
  // Period 4 > capacity 2: LRU evicts every slot before it repeats.
  EXPECT_EQ(cached.stats().prologue_cache_hits, 0);
  EXPECT_EQ(cached.stats().prologue_cache_misses, 12);
}

TEST(PrologueCacheTest, PositionMutationInvalidates) {
  const double side = 10.0;
  Network net = MakeUniformNet(400, side, 0.0, 11);
  Engine::Options copts{.mode = Engine::Mode::kGrid};
  copts.coverage = Box{{0.0, 0.0}, {side, side}};
  copts.prologue_cache = 4;
  Engine cached(net, copts);
  Engine::Options base{.mode = Engine::Mode::kGrid};
  base.coverage = copts.coverage;
  Engine ref(net, base);

  std::vector<std::size_t> tx, listeners;
  SplitTxListeners(net.size(), 4, tx, listeners);
  std::vector<Reception> want, got;
  ref.StepInto(tx, listeners, want);
  cached.StepInto(tx, listeners, got);
  ExpectBitIdentical(want, got, "before move");
  ASSERT_EQ(cached.stats().prologue_cache_misses, 1);

  // Same transmit set again: a hit.
  cached.StepInto(tx, listeners, got);
  ExpectBitIdentical(want, got, "repeat");
  ASSERT_EQ(cached.stats().prologue_cache_hits, 1);

  // Move one node: the generation stamps must reject the entry even though
  // the sets are unchanged.
  net.SetPosition(3, Vec2{side * 0.5, side * 0.5});
  ref.SyncIndex();
  cached.SyncIndex();
  ref.StepInto(tx, listeners, want);
  cached.StepInto(tx, listeners, got);
  ExpectBitIdentical(want, got, "after move");
  EXPECT_EQ(cached.stats().prologue_cache_hits, 1);
  EXPECT_EQ(cached.stats().prologue_cache_misses, 2);

  // Churn: erase a listener from the index — again a forced rebuild.
  const std::size_t gone = listeners.back();
  listeners.pop_back();
  ref.IndexErase(gone);
  cached.IndexErase(gone);
  ref.StepInto(tx, listeners, want);
  cached.StepInto(tx, listeners, got);
  ExpectBitIdentical(want, got, "after churn");
  EXPECT_EQ(cached.stats().prologue_cache_misses, 3);
}

// --- Distributed ranks ------------------------------------------------------

TEST(FarFieldDistribTest, RanksBitIdenticalWithPyramidAndCache) {
  const std::vector<std::string> args = {"--topology=uniform:n=600,side=14",
                                         "--farfield=pyramid",
                                         "--prologue-cache=4"};
  const auto spec = scenario::ScenarioSpec::FromArgs(args);
  const std::uint64_t seed = 7;
  sinr::Network net = scenario::BuildScenarioNetwork(spec, seed);

  // Reference: serial grid, flat far field, no cache.
  Engine::Options flat{.mode = Engine::Mode::kGrid};
  flat.cell = 1.5;
  flat.farfield = Engine::FarField::kFlat;
  const Engine ref(net, flat);

  Engine::Options pyr = flat;
  pyr.farfield = Engine::FarField::kPyramid;
  pyr.pyramid_min_occupied = 0;  // force the descent on this fixture
  pyr.prologue_cache = 4;

  for (const int ranks : {0, 2}) {
    std::unique_ptr<distrib::Session> session;
    Engine::Options opts = pyr;
    if (ranks > 0) {
      session = std::make_unique<distrib::Session>(
          spec, seed, distrib::Session::Options{ranks, ""});
      opts.delegate = session.get();
    }
    const Engine eng(net, opts);
    std::vector<std::size_t> tx, listeners;
    std::vector<Reception> want, got;
    for (int r = 0; r < 8; ++r) {
      // Periodic slots so the rank-side prologue caches see repeats too.
      tx.clear();
      listeners.clear();
      for (std::size_t i = 0; i < net.size(); ++i) {
        (i % 4 == static_cast<std::size_t>(r % 4) ? tx : listeners).push_back(i);
      }
      ref.StepInto(tx, listeners, want);
      eng.StepInto(tx, listeners, got);
      ExpectBitIdentical(want, got, "ranks=" + std::to_string(ranks) +
                                        " round " + std::to_string(r));
    }
  }
}

// --- Scenario flags ---------------------------------------------------------

TEST(FarFieldScenarioTest, FlagsDriveEngineAndRoundTrip) {
  const auto spec = scenario::ScenarioSpec::FromArgs(
      {"--topology=uniform:n=32,side=3", "--algo=clustering", "--seeds=1",
       "--farfield=flat", "--prologue-cache=16"});
  EXPECT_EQ(spec.engine.farfield, Engine::FarField::kFlat);
  EXPECT_EQ(spec.engine.prologue_cache, 16u);
  EXPECT_EQ(scenario::ScenarioSpec::FromArgs(spec.ToArgs()), spec);

  // Defaults round-trip to NO flag (the pinned canonical spec string in
  // scenario_test must not grow).
  const auto defaults = scenario::ScenarioSpec::FromArgs(
      {"--topology=uniform", "--algo=clustering", "--seeds=1"});
  EXPECT_EQ(defaults.engine.farfield, Engine::FarField::kPyramid);
  EXPECT_EQ(defaults.engine.prologue_cache, 0u);
  for (const std::string& a : defaults.ToArgs()) {
    EXPECT_EQ(a.find("--farfield"), std::string::npos) << a;
    EXPECT_EQ(a.find("--prologue-cache"), std::string::npos) << a;
  }

  // Strict rejection.
  EXPECT_THROW(scenario::ScenarioSpec::FromArgs({"--farfield=triangle"}),
               InvalidArgument);
  EXPECT_THROW(scenario::ScenarioSpec::FromArgs({"--farfield="}),
               InvalidArgument);
  EXPECT_THROW(scenario::ScenarioSpec::FromArgs({"--prologue-cache=big"}),
               InvalidArgument);
  EXPECT_THROW(scenario::ScenarioSpec::FromArgs({"--prologue-cache=-4"}),
               InvalidArgument);
  EXPECT_THROW(scenario::ScenarioSpec::FromArgs({"--prologue-cache=2000"}),
               InvalidArgument);
}

TEST(FarFieldScenarioTest, CachedParallelRunReportsCounters) {
  scenario::ScenarioSpec spec;
  spec.topology_params.Set("n", "48");
  spec.topology_params.Set("side", "4");
  spec.sinr.id_space = 4096;
  // Grid mode explicitly: auto would pick exact at n=48, and only grid
  // rounds build prologues (the cache has nothing to memoize in exact).
  spec.engine.mode = Engine::Mode::kGrid;

  const scenario::RunReport serial = RunScenario(spec, 1);
  ASSERT_TRUE(serial.ok) << serial.error;

  scenario::ScenarioSpec cached = spec;
  cached.engine.threads = 2;
  cached.engine.prologue_cache = 8;
  const scenario::RunReport rep = RunScenario(cached, 1);
  ASSERT_TRUE(rep.ok) << rep.error;
  ASSERT_FALSE(rep.parallel.empty());
  EXPECT_GT(rep.parallel.tile_states_computed, 0);
  EXPECT_GT(rep.parallel.prologue_cache_hits +
                rep.parallel.prologue_cache_misses,
            0);
  // Bit-identity at the metric level: the cache must not change one result.
  ASSERT_EQ(serial.metrics.entries().size(), rep.metrics.entries().size());
  for (std::size_t i = 0; i < serial.metrics.entries().size(); ++i) {
    EXPECT_EQ(serial.metrics.entries()[i], rep.metrics.entries()[i]);
  }
}

}  // namespace
}  // namespace dcc
