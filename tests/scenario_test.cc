#include "dcc/scenario/scenario.h"

#include <gtest/gtest.h>

#include <sstream>

namespace dcc::scenario {
namespace {

// --- ParamMap ---------------------------------------------------------------

TEST(ParamMapTest, ParsesAndReadsTypedValues) {
  const ParamMap p = ParamMap::Parse("n=128,side=4.5,name=ring", "test");
  EXPECT_EQ(p.GetInt("n", 0), 128);
  EXPECT_DOUBLE_EQ(p.GetDouble("side", 0.0), 4.5);
  EXPECT_EQ(p.GetString("name", ""), "ring");
  EXPECT_EQ(p.GetInt("absent", 7), 7);
  EXPECT_NO_THROW(p.CheckAllConsumed("test"));
}

TEST(ParamMapTest, MalformedItemsThrow) {
  EXPECT_THROW(ParamMap::Parse("n", "test"), InvalidArgument);
  EXPECT_THROW(ParamMap::Parse("=3", "test"), InvalidArgument);
  const ParamMap p = ParamMap::Parse("n=abc", "test");
  EXPECT_THROW(p.GetInt("n", 0), InvalidArgument);
  EXPECT_THROW(p.GetDouble("n", 0.0), InvalidArgument);
}

TEST(ParamMapTest, UnconsumedKeysAreReported) {
  const ParamMap p = ParamMap::Parse("n=1,sdie=4", "test");
  (void)p.GetInt("n", 0);
  try {
    p.CheckAllConsumed("topology 'uniform'");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("sdie"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("uniform"), std::string::npos);
  }
}

TEST(ParamMapTest, RoundTripsThroughString) {
  const ParamMap p = ParamMap::Parse("b=2,a=1", "test");
  EXPECT_EQ(p.ToString(), "b=2,a=1");  // insertion order preserved
  EXPECT_EQ(ParamMap::Parse(p.ToString(), "test"), p);
}

// --- Seeds ------------------------------------------------------------------

TEST(ParseSeedsTest, RangeListAndSingle) {
  EXPECT_EQ(ParseSeeds("7"), (std::vector<std::uint64_t>{7}));
  EXPECT_EQ(ParseSeeds("1..4"), (std::vector<std::uint64_t>{1, 2, 3, 4}));
  EXPECT_EQ(ParseSeeds("1,5,9"), (std::vector<std::uint64_t>{1, 5, 9}));
  EXPECT_THROW(ParseSeeds("8..1"), InvalidArgument);
  EXPECT_THROW(ParseSeeds("x"), InvalidArgument);
  EXPECT_THROW(ParseSeeds(""), InvalidArgument);
  EXPECT_THROW(ParseSeeds("-1"), InvalidArgument);  // no strtoull wraparound
  EXPECT_THROW(ParseSeeds("99999999999999999999"), InvalidArgument);
  // Oversized ranges reject instead of allocating (or wrapping at 2^64-1).
  EXPECT_THROW(ParseSeeds("0..18446744073709551615"), InvalidArgument);
  EXPECT_THROW(ParseSeeds("1..5000000"), InvalidArgument);
}

// --- ScenarioSpec -----------------------------------------------------------

TEST(ScenarioSpecTest, DefaultSpecRoundTrips) {
  const ScenarioSpec spec;
  EXPECT_EQ(ScenarioSpec::FromArgs(spec.ToArgs()), spec);
  EXPECT_EQ(spec.ToString(),
            "--topology=uniform --algo=clustering --seeds=1");
}

TEST(ScenarioSpecTest, FullyCustomizedSpecRoundTrips) {
  ScenarioSpec spec;
  spec.topology = "blob_chain";
  spec.topology_params.Set("blobs", "4");
  spec.topology_params.Set("sigma", "0.25");
  spec.algo = "global_broadcast";
  spec.algo_params.Set("max_phases", "9");
  spec.seeds = {3, 4, 5, 6};
  spec.id_seed = 11;
  spec.nonce = 13;
  spec.sinr = sinr::Params::Default(3.5, 2.0, 0.25);
  spec.sinr.id_space = 1 << 20;
  spec.shadowing.spread = 0.1;
  spec.shadowing.seed = 99;
  spec.engine.mode = sinr::Engine::Mode::kGrid;
  spec.engine.cell = 2.5;
  spec.engine.grid_threshold = 512;
  spec.max_rounds = 5000;
  spec.faults = 2;
  spec.threads = 3;
  const ScenarioSpec parsed = ScenarioSpec::FromArgs(spec.ToArgs());
  EXPECT_EQ(parsed, spec);
  EXPECT_EQ(parsed.seeds, spec.seeds);
  EXPECT_EQ(parsed.topology_params, spec.topology_params);
  EXPECT_DOUBLE_EQ(parsed.sinr.beta, 2.0);
  EXPECT_DOUBLE_EQ(parsed.sinr.power, 2.0);  // power = noise * beta coupling
  EXPECT_EQ(parsed.engine.mode, sinr::Engine::Mode::kGrid);
  EXPECT_EQ(parsed.engine.grid_threshold, 512u);
}

TEST(ScenarioSpecTest, RejectsUnknownOrMalformedFlags) {
  EXPECT_THROW(ScenarioSpec::FromArgs({"--tpology=uniform"}), InvalidArgument);
  EXPECT_THROW(ScenarioSpec::FromArgs({"not-a-flag"}), InvalidArgument);
  EXPECT_THROW(ScenarioSpec::FromArgs({"--engine=fast"}), InvalidArgument);
  EXPECT_THROW(ScenarioSpec::FromArgs({"--cell=-1"}), InvalidArgument);
  EXPECT_THROW(ScenarioSpec::FromArgs({"--seeds="}), InvalidArgument);
}

// --- Registries -------------------------------------------------------------

TEST(RegistryTest, UnknownNamesListEverythingRegistered) {
  try {
    Topologies().Get("unifrom");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unifrom"), std::string::npos);
    for (const auto& [name, help] : Topologies().List()) {
      EXPECT_NE(msg.find(name), std::string::npos) << name;
    }
  }
  try {
    Algorithms().Get("clusterng");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("clustering"), std::string::npos);
    EXPECT_NE(msg.find("local_broadcast"), std::string::npos);
  }
}

TEST(RegistryTest, AllWorkloadGeneratorsAreRegistered) {
  for (const char* name :
       {"uniform", "connected_uniform", "blob_chain", "grid", "line", "ring",
        "corridor", "two_scale", "star"}) {
    EXPECT_NO_THROW(Topologies().Get(name)) << name;
  }
}

// --- RunScenario ------------------------------------------------------------

ScenarioSpec TinyClusteringSpec() {
  ScenarioSpec spec;
  spec.topology_params.Set("n", "40");
  spec.topology_params.Set("side", "4");
  spec.sinr.id_space = 1 << 10;
  return spec;
}

TEST(RunScenarioTest, ClusteringRunValidates) {
  const RunReport rep = RunScenario(TinyClusteringSpec(), 1);
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.topology, "uniform");
  EXPECT_EQ(rep.algo, "clustering");
  EXPECT_EQ(rep.metrics.Get("n"), 40);
  EXPECT_EQ(rep.metrics.Get("unassigned"), 0);
  EXPECT_GT(rep.metrics.Get("rounds"), 0);
  EXPECT_GE(rep.metrics.Get("rounds_total"), rep.metrics.Get("rounds"));
}

TEST(RunScenarioTest, ErrorsAreCapturedNotThrown) {
  ScenarioSpec spec = TinyClusteringSpec();
  spec.topology = "no_such_topology";
  const RunReport rep = RunScenario(spec, 1);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("no_such_topology"), std::string::npos);
}

TEST(RunScenarioTest, UnknownTopologyParameterFailsTheRun) {
  ScenarioSpec spec = TinyClusteringSpec();
  spec.topology_params.Set("sid", "4");  // typo for "side"
  const RunReport rep = RunScenario(spec, 1);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("sid"), std::string::npos);
}

TEST(RunScenarioTest, FaultInjectionExcludesJammersFromMembers) {
  ScenarioSpec spec = TinyClusteringSpec();
  spec.faults = 3;
  const RunReport rep = RunScenario(spec, 5);
  EXPECT_EQ(rep.metrics.Get("n"), 40);
  EXPECT_EQ(rep.metrics.Get("members"), 37);
  EXPECT_EQ(rep.metrics.Get("faults"), 3);
}

TEST(RunScenarioTest, RunsAreDeterministic) {
  const RunReport a = RunScenario(TinyClusteringSpec(), 3);
  const RunReport b = RunScenario(TinyClusteringSpec(), 3);
  std::ostringstream ja, jb;
  a.PrintJson(ja);
  b.PrintJson(jb);
  EXPECT_EQ(ja.str(), jb.str());
}

// --- RunSweep ---------------------------------------------------------------

// Runs only (the spec line would differ by --threads, which must not
// affect results).
std::string SweepJson(const ScenarioSpec& spec) {
  std::ostringstream os;
  PrintSweepJson(os, "spec", RunSweep(spec));
  return os.str();
}

TEST(RunSweepTest, ParallelSweepEqualsSerialExecution) {
  ScenarioSpec spec = TinyClusteringSpec();
  spec.seeds = {1, 2, 3, 4};
  spec.threads = 1;
  const std::string serial = SweepJson(spec);
  spec.threads = 4;
  const std::string parallel = SweepJson(spec);
  EXPECT_EQ(serial, parallel);
  // And deterministic across repetitions.
  EXPECT_EQ(parallel, SweepJson(spec));
}

TEST(RunSweepTest, SizeGridCrossesValuesWithSeeds) {
  ScenarioSpec spec = TinyClusteringSpec();
  spec.seeds = {1, 2};
  spec.sweep_key = "n";
  spec.sweep_values = {"20", "30"};
  spec.threads = 4;
  const auto runs = RunSweep(spec);
  ASSERT_EQ(runs.size(), 4u);  // value-major: (20,1) (20,2) (30,1) (30,2)
  EXPECT_EQ(runs[0].metrics.Get("n"), 20);
  EXPECT_EQ(runs[1].metrics.Get("n"), 20);
  EXPECT_EQ(runs[2].metrics.Get("n"), 30);
  EXPECT_EQ(runs[3].metrics.Get("n"), 30);
  EXPECT_EQ(runs[0].seed, 1u);
  EXPECT_EQ(runs[1].seed, 2u);
}

TEST(ScenarioSpecTest, SweepFlagRoundTrips) {
  ScenarioSpec spec;
  spec.sweep_key = "n";
  spec.sweep_values = {"64", "128"};
  EXPECT_NE(spec.ToString().find("--sweep=n:64,128"), std::string::npos);
  EXPECT_EQ(ScenarioSpec::FromArgs(spec.ToArgs()), spec);
  EXPECT_THROW(ScenarioSpec::FromArgs({"--sweep=n"}), InvalidArgument);
  EXPECT_THROW(ScenarioSpec::FromArgs({"--sweep=:1,2"}), InvalidArgument);
}

TEST(RunSweepTest, ReportsComeBackInSeedOrder) {
  ScenarioSpec spec = TinyClusteringSpec();
  spec.seeds = {9, 2, 7, 4};
  spec.threads = 4;
  const auto runs = RunSweep(spec);
  ASSERT_EQ(runs.size(), 4u);
  EXPECT_EQ(runs[0].seed, 9u);
  EXPECT_EQ(runs[1].seed, 2u);
  EXPECT_EQ(runs[2].seed, 7u);
  EXPECT_EQ(runs[3].seed, 4u);
}

// --- Report JSON ------------------------------------------------------------

TEST(RunReportTest, JsonIsSchemaStable) {
  RunReport rep;
  rep.topology = "uniform";
  rep.algo = "clustering";
  rep.seed = 7;
  rep.ok = true;
  rep.metrics.Set("rounds", 42);
  rep.metrics.Set("max_radius", 0.5);
  std::ostringstream os;
  rep.PrintJson(os);
  EXPECT_EQ(os.str(),
            "{\"schema\": \"dcc.run_report.v1\", \"topology\": \"uniform\", "
            "\"algo\": \"clustering\", \"seed\": 7, \"ok\": true, "
            "\"metrics\": {\"rounds\": 42, \"max_radius\": 0.5}}");
}

}  // namespace
}  // namespace dcc::scenario
