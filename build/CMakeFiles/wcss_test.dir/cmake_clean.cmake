file(REMOVE_RECURSE
  "CMakeFiles/wcss_test.dir/tests/wcss_test.cc.o"
  "CMakeFiles/wcss_test.dir/tests/wcss_test.cc.o.d"
  "wcss_test"
  "wcss_test.pdb"
  "wcss_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
