// LocalBroadcast (Alg. 7, Theorem 2): every node delivers its own message
// to all its communication-graph neighbors in O(Delta log N log* N) rounds.
//
// Pipeline: Clustering (Alg. 6) -> imperfect labeling (Lemma 11) -> Delta
// executions of the Sparse Network Schedule, the l-th run by nodes labeled
// l (per cluster only O(1) nodes share a label, so each run has constant
// density — the SNS premise).
//
// Success accounting (oracle, not protocol knowledge): a node's broadcast
// has "single-round coverage" when some round delivered it to all its
// neighbors simultaneously (the Lemma 4 guarantee), and "cumulative
// coverage" when every neighbor has heard it in some round (the baseline-
// comparable criterion used by Table 1).
#pragma once

#include <cstdint>
#include <vector>

#include "dcc/cluster/profile.h"
#include "dcc/sim/runner.h"

namespace dcc::bcast {

struct LocalBroadcastResult {
  Round rounds = 0;
  Round clustering_rounds = 0;
  Round labeling_rounds = 0;
  Round sns_rounds = 0;
  std::vector<ClusterId> cluster_of;  // final clustering, by node index
  std::size_t members = 0;
  std::size_t covered_single_round = 0;
  std::size_t covered_cumulative = 0;
  bool AllCovered() const { return covered_cumulative == members; }
};

LocalBroadcastResult LocalBroadcast(sim::Exec& ex,
                                    const cluster::Profile& prof,
                                    const std::vector<std::size_t>& members,
                                    int gamma, std::uint64_t nonce);

}  // namespace dcc::bcast
