# Empty dependencies file for local_broadcast_test.
# This may be replaced when dependencies are built.
