// Transmission schedules (paper, Section 3.1): a schedule is a sequence
// S_1..S_t of subsets of [N] (unclustered) or [N]x[N] (clustered); a node
// with id v (and cluster phi) transmits in local round i iff v in S_i
// (resp. (v, phi) in S_i).
//
// `Schedule` is the common interface; concrete schedules wrap the selector
// structures. `ExecuteSchedule` runs a schedule over an Exec for a
// participant set — the workhorse of every algorithm in the library.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "dcc/sel/ssf.h"
#include "dcc/sel/wcss.h"
#include "dcc/sel/wss.h"
#include "dcc/sim/runner.h"

namespace dcc::sim {

class Schedule {
 public:
  virtual ~Schedule() = default;
  virtual std::int64_t size() const = 0;
  // Does (id, cluster) transmit in local round i? Unclustered schedules
  // ignore `cluster`.
  virtual bool Transmits(std::int64_t i, NodeId id, ClusterId cluster) const = 0;
};

class SsfSchedule final : public Schedule {
 public:
  explicit SsfSchedule(sel::Ssf ssf) : ssf_(std::move(ssf)) {}
  std::int64_t size() const override { return ssf_.size(); }
  bool Transmits(std::int64_t i, NodeId id, ClusterId) const override {
    return ssf_.Member(i, id);
  }
  const sel::Ssf& ssf() const { return ssf_; }

 private:
  sel::Ssf ssf_;
};

class WssSchedule final : public Schedule {
 public:
  explicit WssSchedule(sel::Wss wss) : wss_(wss) {}
  std::int64_t size() const override { return wss_.size(); }
  bool Transmits(std::int64_t i, NodeId id, ClusterId) const override {
    return wss_.Member(i, id);
  }

 private:
  sel::Wss wss_;
};

class WcssSchedule final : public Schedule {
 public:
  explicit WcssSchedule(sel::Wcss wcss) : wcss_(wcss) {}
  std::int64_t size() const override { return wcss_.size(); }
  bool Transmits(std::int64_t i, NodeId id, ClusterId cluster) const override {
    return wcss_.Member(i, id, cluster);
  }
  const sel::Wcss& wcss() const { return wcss_; }

 private:
  sel::Wcss wcss_;
};

// A participant in a schedule execution: node index plus the identity the
// schedule keys on.
struct Participant {
  std::size_t index = 0;
  NodeId id = kNoNode;
  ClusterId cluster = kNoCluster;
};

// Runs `sched` from its first to last round on `ex`.
//  * `make_msg(index, local_round)` produces the message a scheduled
//    participant sends (nullopt = stay silent even when scheduled).
//  * `hear(listener_index, msg, local_round)` fires per reception at any
//    listening node of the network.
void ExecuteSchedule(
    Exec& ex, const Schedule& sched, const std::vector<Participant>& parts,
    const std::function<std::optional<Message>(std::size_t, std::int64_t)>&
        make_msg,
    const std::function<void(std::size_t, const Message&, std::int64_t)>& hear);

}  // namespace dcc::sim
