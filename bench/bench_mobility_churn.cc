// bench_mobility_churn — dynamics maintenance cost: incremental spatial
// index updates vs recluster-from-scratch infrastructure.
//
// Two measurements per network size, over E epochs of waypoint motion with
// Poisson churn:
//  * index_incremental_ms — per-epoch SpatialGrid maintenance via
//    Move/Insert/Erase (what Engine::SyncIndex + churn wiring do);
//  * index_rebuild_ms — constructing a fresh SpatialGrid over the epoch's
//    live positions (what a static engine would have to do every epoch).
// The incremental path must win at scale (no allocation, O(changed tiles)
// bucket surgery); the rebuild pays allocation + counting sort every epoch.
//
// A third column, recluster_rounds, runs the full dynamic scenario at the
// smallest size as a sanity anchor (clustering cost dwarfs index cost; the
// index win matters because it keeps StepInto allocation-free, not because
// it dominates the epoch).
//
// Output: one JSON object per line (dcc.bench.mobility_churn.v1).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <vector>

#include "dcc/common/rng.h"
#include "dcc/common/spatial_grid.h"
#include "dcc/mobility/churn.h"
#include "dcc/mobility/models.h"
#include "dcc/scenario/dynamics.h"
#include "dcc/scenario/scenario.h"

namespace {

using dcc::Box;
using dcc::SpatialGrid;
using dcc::Vec2;
using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

struct EpochTrace {
  std::vector<Vec2> pos;
  std::vector<char> active;
};

// Pre-computes E epochs of waypoint + churn so both index strategies replay
// the exact same position/activity history.
std::vector<EpochTrace> MakeTrace(int n, double side, int epochs,
                                  std::uint64_t seed) {
  dcc::Xoshiro256ss rng(seed);
  std::vector<Vec2> pos;
  pos.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pos.push_back({side * rng.NextDouble(), side * rng.NextDouble()});
  }
  const Box world{{0.0, 0.0}, {side, side}};
  // MANET regime: per-epoch displacement is a fraction of the transmission
  // range (vehicles at 20 m/s with 250 m range cover < 0.1 range/s), so
  // most nodes stay inside their tile each epoch — the case incremental
  // maintenance exists for.
  dcc::mobility::RandomWaypoint model({world, 0.05, 0.2, 0.0}, seed + 1);
  // Asymmetric rates: ~2% of the population cycles per epoch with ~90% of
  // nodes present at steady state (symmetric rates would drift to a
  // half-empty network, which no deployment runs at).
  dcc::mobility::ChurnProcess churn(0.02, 0.2, seed + 2);
  dcc::mobility::ChurnProcess::Delta delta;
  model.Init(pos);
  std::vector<char> active(pos.size(), 1);

  std::vector<EpochTrace> trace;
  trace.push_back({pos, active});
  for (int e = 1; e < epochs; ++e) {
    model.Step(1.0, pos, active);
    churn.Step(1.0, active, delta);
    for (const std::size_t i : delta.joined) pos[i] = model.Respawn(i);
    trace.push_back({pos, active});
  }
  return trace;
}

// Live positions of one epoch (rebuild path indexes only live points, the
// best case a full rebuild can hope for).
std::vector<Vec2> LivePositions(const EpochTrace& t) {
  std::vector<Vec2> live;
  live.reserve(t.pos.size());
  for (std::size_t i = 0; i < t.pos.size(); ++i) {
    if (t.active[i]) live.push_back(t.pos[i]);
  }
  return live;
}

}  // namespace

int main(int argc, char** argv) {
  int epochs_flag = 0;  // 0 = auto: ~1M node-epochs per size
  int reps = 7;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--epochs=", 9) == 0) {
      epochs_flag = std::atoi(argv[i] + 9);
    }
    if (std::strncmp(argv[i], "--reps=", 7) == 0) reps = std::atoi(argv[i] + 7);
  }

  for (const int n : {1024, 4096, 16384, 65536}) {
    const int epochs =
        epochs_flag > 0 ? epochs_flag : std::max(64, (1 << 20) / n);
    const double side = std::sqrt(static_cast<double>(n) / 10.0);  // ~10/unit^2
    const Box world{{0.0, 0.0}, {side, side}};
    // The engine's density heuristic: ~64 nodes per tile.
    const double cell =
        std::max(1.0, std::sqrt(64.0 * side * side / static_cast<double>(n)));
    const auto trace = MakeTrace(n, side, epochs, 7);

    double best_inc = -1.0, best_reb = -1.0;
    for (int rep = 0; rep < reps; ++rep) {
      // Incremental: one grid for the whole run, epoch deltas applied as
      // Move / Erase / Insert (exactly what Engine::SyncIndex + the churn
      // wiring in RunDynamicScenario perform).
      auto t0 = Clock::now();
      SpatialGrid grid(trace[0].pos, cell, world);
      for (std::size_t e = 1; e < trace.size(); ++e) {
        const auto& cur = trace[e];
        const auto& prev = trace[e - 1];
        for (std::size_t i = 0; i < cur.pos.size(); ++i) {
          if (cur.active[i] && prev.active[i]) {
            grid.Move(i, cur.pos[i]);
          } else if (!cur.active[i] && prev.active[i]) {
            grid.Erase(i);
          } else if (cur.active[i] && !prev.active[i]) {
            grid.Insert(i, cur.pos[i]);
          }
        }
      }
      const double inc = MsSince(t0);
      if (best_inc < 0.0 || inc < best_inc) best_inc = inc;

      // Rebuild: a fresh grid over each epoch's live points.
      t0 = Clock::now();
      std::size_t sink = 0;
      for (const auto& e : trace) {
        const SpatialGrid fresh(LivePositions(e), cell, world);
        sink += fresh.point_count();  // keep the build observable
      }
      const double reb = MsSince(t0);
      if (best_reb < 0.0 || reb < best_reb) best_reb = reb;
      if (sink == 0) std::cerr << "";  // defeat dead-code elimination
    }

    std::cout << "{\"schema\": \"dcc.bench.mobility_churn.v1\", \"n\": " << n
              << ", \"epochs\": " << epochs << ", \"cell\": " << cell
              << ", \"index_incremental_ms\": " << best_inc
              << ", \"index_rebuild_ms\": " << best_reb
              << ", \"speedup\": " << (best_inc > 0.0 ? best_reb / best_inc : 0.0)
              << "}" << std::endl;
  }

  // Sanity anchor: one real dynamic scenario through the scenario layer
  // (clustering per epoch), small enough to finish in seconds.
  dcc::scenario::ScenarioSpec spec;
  spec.topology_params.Set("n", "64");
  spec.topology_params.Set("side", "5");
  spec.sinr.id_space = 4096;
  spec.dynamics.Set("model", "waypoint");
  spec.dynamics.Set("epochs", "4");
  spec.dynamics.Set("churn", "0.05");
  spec.dynamics.Set("side", "5");
  const auto rep = dcc::scenario::RunScenario(spec, 1);
  std::cout << "{\"schema\": \"dcc.bench.mobility_churn.v1\", "
               "\"scenario_ok\": "
            << (rep.ok ? "true" : "false") << ", \"recluster_rounds\": "
            << rep.metrics.Get("rounds_total")
            << ", \"survival_mean\": " << rep.metrics.Get("survival_mean")
            << "}" << std::endl;
  return rep.ok ? 0 : 1;
}
