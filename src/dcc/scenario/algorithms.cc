// Built-in algorithm adapters: every protocol and baseline in the library
// behind the common Algorithm interface. Each adapter runs its protocol,
// records per-stage metrics, and sets `ok` from the matching validator —
// geometric postconditions for clustering, oracle coverage for the
// broadcast problems, agreement for leader election.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <unordered_set>
#include <utility>

#include "dcc/baselines/decay_global.h"
#include "dcc/baselines/grid_tdma.h"
#include "dcc/baselines/rand_local.h"
#include "dcc/baselines/tdma.h"
#include "dcc/bcast/leader_election.h"
#include "dcc/bcast/local_broadcast.h"
#include "dcc/bcast/smsb.h"
#include "dcc/bcast/sns.h"
#include "dcc/bcast/wakeup.h"
#include "dcc/cluster/clustering.h"
#include "dcc/cluster/validate.h"
#include "dcc/scenario/registry.h"

namespace dcc::scenario {

namespace {

class FnAlgorithm final : public Algorithm {
 public:
  using Fn = RunReport (*)(RunContext&);
  explicit FnAlgorithm(Fn fn) : fn_(fn) {}
  RunReport Run(RunContext& ctx) override { return fn_(ctx); }

 private:
  Fn fn_;
};

void RegisterFn(AlgorithmRegistry& reg, const std::string& name,
                FnAlgorithm::Fn fn, std::string help) {
  reg.Register(
      name, [fn] { return std::make_unique<FnAlgorithm>(fn); },
      std::move(help));
}

// The source of a (global) broadcast-style run, as a rank into the member
// set: rank 0 is the first member, matching the node-index-0 convention of
// the legacy benches on fault-free runs.
std::size_t SourceMember(const RunContext& ctx) {
  const auto rank =
      static_cast<std::size_t>(ctx.params.GetInt("source", 0));
  DCC_REQUIRE(rank < ctx.members.size(), "source: rank out of member range");
  return ctx.members[rank];
}

// Diameter-derived default phase budget (the paper's public D bound),
// recorded so sweeps can normalize rounds by D. Connectivity rides along
// (the comm graph is built already) — global problems can only succeed on
// connected networks.
int MaxPhases(const RunContext& ctx, RunReport& rep) {
  const int d = ctx.net.Diameter();
  rep.metrics.Set("diameter", d);
  rep.metrics.Set("connected", ctx.net.Connected() ? 1 : 0);
  return static_cast<int>(
      ctx.params.GetInt("max_phases", std::max(d, 0) + 3));
}

RunReport RunClustering(RunContext& ctx) {
  RunReport rep;
  const auto res = cluster::BuildClustering(ctx.ex, ctx.prof, ctx.members,
                                            ctx.gamma, ctx.nonce);
  const auto chk = cluster::CheckClustering(ctx.net, ctx.members,
                                            res.cluster_of);
  rep.ok = chk.ValidRClustering(1.0, ctx.net.params().eps) &&
           res.unassigned == 0;
  rep.metrics.Set("rounds", static_cast<double>(res.rounds));
  rep.metrics.Set("levels", res.levels);
  rep.metrics.Set("unassigned", static_cast<double>(res.unassigned));
  rep.metrics.Set("clusters", chk.num_clusters);
  rep.metrics.Set("max_cluster_size", chk.max_cluster_size);
  rep.metrics.Set("max_radius", chk.max_radius);
  rep.metrics.Set("min_center_sep", chk.min_center_sep);
  rep.metrics.Set("max_clusters_per_unit_ball",
                  chk.max_clusters_per_unit_ball);
  return rep;
}

RunReport RunLocalBroadcast(RunContext& ctx) {
  RunReport rep;
  const auto res = bcast::LocalBroadcast(ctx.ex, ctx.prof, ctx.members,
                                         ctx.gamma, ctx.nonce);
  rep.ok = res.AllCovered();
  rep.metrics.Set("rounds", static_cast<double>(res.rounds));
  rep.metrics.Set("clustering_rounds",
                  static_cast<double>(res.clustering_rounds));
  rep.metrics.Set("labeling_rounds", static_cast<double>(res.labeling_rounds));
  rep.metrics.Set("sns_rounds", static_cast<double>(res.sns_rounds));
  rep.metrics.Set("covered_single_round",
                  static_cast<double>(res.covered_single_round));
  rep.metrics.Set("covered_cumulative",
                  static_cast<double>(res.covered_cumulative));
  return rep;
}

RunReport RunGlobalBroadcast(RunContext& ctx) {
  RunReport rep;
  const int max_phases = MaxPhases(ctx, rep);
  const auto res = bcast::SmsBroadcast(ctx.ex, ctx.prof, {SourceMember(ctx)},
                                       ctx.gamma, max_phases, ctx.nonce);
  rep.ok = res.all_awake;
  rep.metrics.Set("rounds", static_cast<double>(res.rounds));
  rep.metrics.Set("phases", res.phases);
  rep.metrics.Set("awake", static_cast<double>(res.awake));
  return rep;
}

RunReport RunSnsOnce(RunContext& ctx) {
  RunReport rep;
  std::vector<sim::Participant> parts;
  parts.reserve(ctx.members.size());
  for (const std::size_t idx : ctx.members) {
    parts.push_back({idx, ctx.net.id(idx), kNoCluster});
  }
  // Oracle: which comm-graph member pairs exchanged the payload. The SNS
  // guarantee is unconditional only for constant-density participant sets;
  // coverage over a dense member set measures how far the schedule reaches.
  // Receptions are recorded sparsely — a dense member x node matrix would
  // be O(n^2) memory at the sizes the sweep layer runs.
  std::vector<char> is_member(ctx.net.size(), 0);
  for (const std::size_t idx : ctx.members) is_member[idx] = 1;
  std::size_t receptions = 0;
  const std::uint64_t n64 = ctx.net.size();
  std::unordered_set<std::uint64_t> heard;  // listener * n + sender index
  const Round rounds = bcast::RunSns(
      ctx.ex, ctx.prof, parts,
      [](std::size_t) {
        sim::Message m;
        m.kind = 1;
        return std::optional<sim::Message>(m);
      },
      [&](std::size_t listener, const sim::Message& m) {
        ++receptions;
        if (is_member[listener]) {
          heard.insert(listener * n64 + ctx.net.IndexOf(m.src));
        }
      },
      ctx.nonce);
  std::size_t covered_pairs = 0;
  std::size_t comm_pairs = 0;
  for (const std::size_t u : ctx.members) {
    for (const std::size_t v : ctx.net.CommGraph()[u]) {
      if (!is_member[v]) continue;
      ++comm_pairs;
      covered_pairs += heard.count(u * n64 + v);
    }
  }
  rep.ok = covered_pairs == comm_pairs;
  rep.metrics.Set("rounds", static_cast<double>(rounds));
  rep.metrics.Set("receptions", static_cast<double>(receptions));
  rep.metrics.Set("comm_pairs", static_cast<double>(comm_pairs));
  rep.metrics.Set("covered_pairs", static_cast<double>(covered_pairs));
  return rep;
}

RunReport RunWakeupScheme(RunContext& ctx) {
  RunReport rep;
  const int max_phases = MaxPhases(ctx, rep);
  const std::vector<std::pair<std::size_t, Round>> spontaneous{
      {SourceMember(ctx), Round{0}}};
  const auto res = bcast::RunWakeup(ctx.ex, ctx.prof, spontaneous, ctx.gamma,
                                    max_phases, ctx.nonce);
  rep.ok = res.all_awake;
  rep.metrics.Set("rounds", static_cast<double>(res.rounds));
  rep.metrics.Set("epochs", res.epochs);
  return rep;
}

RunReport RunLeaderElection(RunContext& ctx) {
  RunReport rep;
  const int max_phases = MaxPhases(ctx, rep);
  const auto res = bcast::ElectLeader(ctx.ex, ctx.prof, ctx.members,
                                      ctx.gamma, max_phases, ctx.nonce);
  rep.ok = res.agreed;
  rep.metrics.Set("rounds", static_cast<double>(res.rounds));
  rep.metrics.Set("probes", res.probes);
  rep.metrics.Set("leader", static_cast<double>(res.leader));
  return rep;
}

RunReport RunTdmaLocal(RunContext& ctx) {
  RunReport rep;
  const auto res = baselines::TdmaLocalBroadcast(ctx.ex, ctx.members);
  rep.ok = res.complete;
  rep.metrics.Set("rounds", static_cast<double>(res.rounds));
  rep.metrics.Set("reached", static_cast<double>(res.reached));
  return rep;
}

RunReport RunTdmaGlobal(RunContext& ctx) {
  RunReport rep;
  const int d = ctx.net.Diameter();
  rep.metrics.Set("diameter", d);
  rep.metrics.Set("connected", ctx.net.Connected() ? 1 : 0);
  const auto max_sweeps = static_cast<int>(
      ctx.params.GetInt("max_sweeps", std::max(d, 0) + 3));
  const auto res =
      baselines::TdmaGlobalBroadcast(ctx.ex, SourceMember(ctx), max_sweeps);
  rep.ok = res.complete;
  rep.metrics.Set("rounds", static_cast<double>(res.rounds));
  rep.metrics.Set("reached", static_cast<double>(res.reached));
  return rep;
}

RunReport RunGridTdma(RunContext& ctx) {
  RunReport rep;
  const auto res = baselines::GridTdmaLocalBroadcast(
      ctx.ex, ctx.members, static_cast<int>(ctx.params.GetInt("s", 6)));
  rep.ok = res.covered;
  rep.metrics.Set("rounds", static_cast<double>(res.rounds));
  rep.metrics.Set("cell_colors", res.cell_colors);
  rep.metrics.Set("max_occupancy", res.max_occupancy);
  rep.metrics.Set("covered_nodes", static_cast<double>(res.covered_nodes));
  return rep;
}

// Randomized baselines draw their coin-flip seed from the run seed unless
// the spec pins one (the legacy tables used fixed seeds).
std::uint64_t CoinSeed(const RunContext& ctx) {
  return static_cast<std::uint64_t>(
      ctx.params.GetInt("seed", static_cast<std::int64_t>(ctx.seed)));
}

RunReport RunRandLocalKnown(RunContext& ctx) {
  RunReport rep;
  const auto res = baselines::RandLocalBroadcastKnown(
      ctx.ex, ctx.members, ctx.gamma, ctx.params.GetDouble("c_prob", 1.0),
      ctx.params.GetDouble("c_len", 24.0), CoinSeed(ctx));
  rep.ok = res.covered;
  rep.metrics.Set("rounds", static_cast<double>(res.rounds_budget));
  rep.metrics.Set("rounds_to_cover", static_cast<double>(res.rounds_to_cover));
  rep.metrics.Set("covered_nodes", static_cast<double>(res.covered_nodes));
  return rep;
}

RunReport RunRandLocalUnknown(RunContext& ctx) {
  RunReport rep;
  const auto max_delta = static_cast<int>(
      ctx.params.GetInt("max_delta", 2 * std::int64_t{ctx.gamma}));
  const auto res = baselines::RandLocalBroadcastUnknown(
      ctx.ex, ctx.members, max_delta, ctx.params.GetDouble("c_prob", 1.0),
      ctx.params.GetDouble("c_len", 24.0), CoinSeed(ctx));
  rep.ok = res.covered;
  rep.metrics.Set("rounds", static_cast<double>(res.rounds_budget));
  rep.metrics.Set("rounds_to_cover", static_cast<double>(res.rounds_to_cover));
  rep.metrics.Set("covered_nodes", static_cast<double>(res.covered_nodes));
  return rep;
}

RunReport RunDecayGlobal(RunContext& ctx) {
  RunReport rep;
  const Round budget = ctx.params.GetInt(
      "budget", ctx.max_rounds > 0 ? ctx.max_rounds : Round{400000});
  const auto res = baselines::DecayGlobalBroadcast(
      ctx.ex, SourceMember(ctx), ctx.gamma, budget, CoinSeed(ctx));
  rep.ok = res.all_awake;
  rep.metrics.Set("rounds", static_cast<double>(res.rounds));
  rep.metrics.Set("awake", static_cast<double>(res.awake));
  return rep;
}

}  // namespace

void RegisterBuiltinAlgorithms(AlgorithmRegistry& reg) {
  RegisterFn(reg, "clustering", RunClustering,
             "Alg. 6 / Thm 1 deterministic 1-clustering; validated "
             "geometrically");
  RegisterFn(reg, "local_broadcast", RunLocalBroadcast,
             "Alg. 7 / Thm 2 deterministic local broadcast");
  RegisterFn(reg, "global_broadcast", RunGlobalBroadcast,
             "Alg. 8 / Thm 3 SMSB global broadcast "
             "(source=0,max_phases=D+3)");
  RegisterFn(reg, "sns", RunSnsOnce,
             "one Sparse Network Schedule over the member set (Lemma 4)");
  RegisterFn(reg, "wakeup", RunWakeupScheme,
             "Thm 4 wake-up scheme (source=0,max_phases=D+3)");
  RegisterFn(reg, "leader_election", RunLeaderElection,
             "Thm 5 leader election (max_phases=D+3)");
  RegisterFn(reg, "tdma_local", RunTdmaLocal,
             "Theta(N) id-cycling TDMA local broadcast strawman");
  RegisterFn(reg, "tdma_global", RunTdmaGlobal,
             "Theta(D*N) TDMA global broadcast (source=0,max_sweeps=D+3)");
  RegisterFn(reg, "grid_tdma", RunGridTdma,
             "[22]-style location-aware deterministic local broadcast (s=6)");
  RegisterFn(reg, "rand_local_known", RunRandLocalKnown,
             "[16] randomized local broadcast, known Delta "
             "(c_prob=1,c_len=24,seed=<run seed>)");
  RegisterFn(reg, "rand_local_unknown", RunRandLocalUnknown,
             "[16] doubling randomized local broadcast "
             "(max_delta=2*Gamma,c_prob=1,c_len=24,seed=<run seed>)");
  RegisterFn(reg, "decay_global", RunDecayGlobal,
             "Decay-style randomized global broadcast "
             "(source=0,budget=400000,seed=<run seed>)");
}

}  // namespace dcc::scenario
