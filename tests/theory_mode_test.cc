// Theory-mode paths: the Linial-MIS sparsifier branch and the Theory()
// profile constants. The literal theory profile is unrunnable by design
// (kappa in the billions — exhibited by bench_selectors); here we run the
// theory *structure* (Linial pipeline, no early stopping in MIS) with
// practically-sized constants to verify the code path end to end.
#include <gtest/gtest.h>

#include "dcc/cluster/sparsify.h"
#include "dcc/cluster/validate.h"
#include "dcc/workload/generators.h"

namespace dcc::cluster {
namespace {

TEST(TheoryModeTest, TheoryProfileExhibitsProofConstants) {
  const auto params = sinr::Params::Default();
  const auto t = Profile::Theory(params, 1 << 16);
  const auto p = Profile::Practical(1 << 16);
  // Proof constants dominate the calibrated ones by orders of magnitude.
  EXPECT_GT(t.kappa, 1000 * p.kappa);
  EXPECT_GT(t.rho, p.rho);
  EXPECT_GT(t.sns_k, 100 * p.sns_k);
  EXPECT_GT(t.l_uncl, p.l_uncl);
  EXPECT_GT(t.rr_iters, p.rr_iters);
  EXPECT_TRUE(t.use_linial_mis);
  EXPECT_FALSE(t.early_stop);
}

TEST(TheoryModeTest, LinialMisSparsifierBranch) {
  sinr::Params params = sinr::Params::Default();
  params.id_space = 256;  // small id space keeps the color sweep short
  auto pts = workload::UniformSquare(24, 2.0, 5);
  const auto net = workload::MakeNetwork(pts, params, 3);

  Profile prof = Profile::Practical(params.id_space);
  prof.use_linial_mis = true;  // theory structure, practical constants
  const std::vector<ClusterId> none(net.size(), kNoCluster);
  std::vector<std::size_t> all(net.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  const int gamma = SubsetDensity(net, all);

  sim::Exec ex(net);
  const auto r = Sparsify(ex, prof, all, none, gamma, /*clustered=*/false, 1);
  // The contract is the same as the fast path's: progress plus valid links.
  EXPECT_LT(r.returned.size(), all.size());
  for (const auto& [child, link] : r.links) {
    EXPECT_LE(net.Distance(net.IndexOf(child), net.IndexOf(link.parent)),
              1.0 + 1e-9);
  }
  // And it costs more rounds than the capped fast path (the color sweep).
  const Profile fast = Profile::Practical(params.id_space);
  sim::Exec ex2(net);
  const auto rf = Sparsify(ex2, fast, all, none, gamma, false, 1);
  EXPECT_GT(r.rounds, rf.rounds);
}

TEST(TheoryModeTest, LinialBranchDensityContractHolds) {
  sinr::Params params = sinr::Params::Default();
  params.id_space = 256;
  auto pts = workload::UniformSquare(32, 2.0, 9);
  const auto net = workload::MakeNetwork(pts, params, 7);
  Profile prof = Profile::Practical(params.id_space);
  prof.use_linial_mis = true;
  const std::vector<ClusterId> none(net.size(), kNoCluster);
  std::vector<std::size_t> all(net.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  const int gamma = SubsetDensity(net, all);

  sim::Exec ex(net);
  const auto chain = SparsifyU(ex, prof, all, gamma, 4);
  EXPECT_LE(SubsetDensity(net, chain.sets.back()),
            std::max(3, (3 * gamma) / 4));
}

}  // namespace
}  // namespace dcc::cluster
