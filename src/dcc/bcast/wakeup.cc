#include "dcc/bcast/wakeup.h"

#include <algorithm>
#include <unordered_set>

#include "dcc/bcast/smsb.h"
#include "dcc/cluster/clustering.h"

namespace dcc::bcast {

WakeupResult RunWakeup(sim::Exec& ex, const cluster::Profile& prof,
                       const std::vector<std::pair<std::size_t, Round>>&
                           spontaneous,
                       int gamma, int max_phases, std::uint64_t nonce) {
  DCC_REQUIRE(!spontaneous.empty(), "RunWakeup: need a spontaneous wake-up");
  const sinr::Network& net = ex.net();
  WakeupResult res;
  res.awake_at.assign(net.size(), Round{-1});

  Round first = spontaneous[0].second;
  for (const auto& [idx, r] : spontaneous) first = std::min(first, r);
  // Align the clock: the epoch scheme starts executions at multiples of the
  // (publicly computable) epoch length; we charge rounds from the first
  // spontaneous wake-up.
  const Round start = ex.rounds();

  for (int epoch = 0; epoch < 8; ++epoch) {
    ++res.epochs;
    const Round now = ex.rounds() - start + first;
    // Nodes awake before this epoch's start participate.
    std::vector<std::size_t> awake;
    for (const auto& [idx, r] : spontaneous) {
      if (r <= now && res.awake_at[idx] < 0) res.awake_at[idx] = r;
    }
    for (std::size_t i = 0; i < net.size(); ++i) {
      if (res.awake_at[i] >= 0) awake.push_back(i);
    }
    if (awake.empty()) continue;

    // Cluster the awake set; the centers become the SMSB source set.
    cluster::ClusteringResult cl = cluster::BuildClustering(
        ex, prof, awake, gamma, HashCombine(nonce, 0x8000u + epoch));
    std::unordered_set<ClusterId> centers_ids;
    for (const std::size_t idx : awake) {
      if (cl.cluster_of[idx] != kNoCluster) centers_ids.insert(cl.cluster_of[idx]);
    }
    std::vector<std::size_t> centers;
    for (const ClusterId phi : centers_ids) {
      if (net.HasId(phi)) centers.push_back(net.IndexOf(phi));
    }
    if (centers.empty()) centers.push_back(awake.front());

    SmsbResult sm = SmsBroadcast(ex, prof, centers, gamma, max_phases,
                                 HashCombine(nonce, 0x8100u + epoch));
    for (std::size_t i = 0; i < net.size(); ++i) {
      if (sm.awake_phase[i] >= 0 && res.awake_at[i] < 0) {
        res.awake_at[i] = ex.rounds() - start + first;
      }
    }
    const bool done = std::all_of(res.awake_at.begin(), res.awake_at.end(),
                                  [](Round r) { return r >= 0; });
    if (done) break;
  }

  res.all_awake = std::all_of(res.awake_at.begin(), res.awake_at.end(),
                              [](Round r) { return r >= 0; });
  res.rounds = ex.rounds() - start;
  return res;
}

}  // namespace dcc::bcast
