// The SINR round engine: given the set of transmitters in a round, computes
// which listeners successfully receive and from whom (Eq. 1 of the paper).
//
// Because beta > 1, at most one transmitter can satisfy the SINR constraint
// at a given listener, so reception resolves to "the strongest transmitter,
// if its SINR clears beta" — the engine computes exactly that.
//
// Two interference resolution strategies:
//  * kExact — brute force O(|T|) per listener. The semantic reference and
//    test oracle.
//  * kGrid — a uniform spatial index (common/spatial_grid.h) buckets the
//    round's transmitters into tiles. Near-field tiles are scanned exactly;
//    mid- and far-field tiles contribute conservative interference bounds
//    through the propagation model's distance envelope. The bounds prune
//    listeners whose best-case SINR cannot clear beta (the common case in
//    dense rounds); every listener that might receive is resolved exactly
//    by a batched far-field sweep (vectorized where the host supports it),
//    so the reception set matches kExact and reported SINR values agree to
//    >= 9 significant digits (floating-point reassociation only; at extreme
//    SINRs the agreement degrades by an additional eps * |T| * sinr factor
//    from cancellation in the interference subtraction, which affects both
//    modes equally).
// kAuto picks kExact while the network still carries its dense gain matrix
// and kGrid above that size threshold.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "dcc/common/spatial_grid.h"
#include "dcc/sinr/network.h"

namespace dcc::sinr {

// Result of one round for one listener.
struct Reception {
  std::size_t listener = 0;
  std::size_t sender = 0;
  double sinr = 0.0;
};

class Engine {
 public:
  enum class Mode {
    kAuto,   // kExact up to the dense-gain-matrix limit, kGrid beyond
    kExact,  // brute-force oracle
    kGrid,   // spatial-index pruning + exact fallback
  };

  struct Options {
    Mode mode = Mode::kAuto;
    // Grid tile side; 0 picks a density-based default (~64 nodes/tile).
    double cell = 0.0;
    // kAuto switches to kGrid for networks larger than this.
    std::size_t grid_threshold = Network::kGainMatrixLimit;
    // Spatial-index coverage area for dynamic networks: positions may move
    // anywhere inside this box without outgrowing the index. Defaults to
    // the bounding box of the construction-time positions (static runs).
    // Not part of the flag grammar — set programmatically (scenario
    // dynamics passes its world box).
    std::optional<Box> coverage;

    // Options overridden from the environment (benches and dcc_run):
    //   DCC_ENGINE_MODE = exact | grid | auto   (default auto)
    //   DCC_ENGINE_CELL = <tile side>           (default: engine heuristic)
    // Throws InvalidArgument on any unrecognized or malformed value — a
    // typo must not silently fall back to the default strategy.
    static Options FromEnv();
  };

  explicit Engine(const Network& net) : Engine(net, Options{}) {}
  Engine(const Network& net, Options options);

  // Computes receptions for one round.
  //  * `transmitters`: indices of nodes transmitting this round.
  //  * `listeners`: indices of nodes listening (a transmitter never listens;
  //    passing it as a listener is an error).
  // Returns one entry per successful reception.
  std::vector<Reception> Step(const std::vector<std::size_t>& transmitters,
                              const std::vector<std::size_t>& listeners) const;

  // Allocation-free variant: clears `out` and appends receptions into it.
  // Reuses internal scratch buffers across rounds — a single Engine must
  // not run concurrent Steps from multiple threads.
  void StepInto(std::span<const std::size_t> transmitters,
                std::span<const std::size_t> listeners,
                std::vector<Reception>& out) const;

  // SINR of transmitter `v` at listener `u` under transmitter set T.
  double Sinr(std::size_t v, std::size_t u,
              const std::vector<std::size_t>& transmitters) const;

  // Total interference power at `u` from `transmitters` (no noise term).
  double InterferenceAt(std::size_t u,
                        const std::vector<std::size_t>& transmitters) const;

  const Network& net() const { return *net_; }

  // The resolved strategy (never kAuto).
  Mode mode() const { return mode_; }
  const Options& options() const { return options_; }

  // --- Dynamic networks: spatial-index maintenance. ---
  // The grid built at construction tracks the network's positions; after
  // the network mutates (Network::SetPositions / churn), reconcile the
  // index before the next Step. All three are O(changed points) bucket
  // updates — never a rebuild — and no-ops in exact mode.

  // Re-tiles every indexed point whose position changed tiles. Call after
  // a bulk Network::SetPositions.
  void SyncIndex();

  // Removes node i from the index (churn leave). Until re-inserted, i must
  // not appear as a transmitter or listener in grid-mode Steps.
  void IndexErase(std::size_t i);

  // Restores node i at its current network position (churn join; pair with
  // Network::SetPosition for the respawn point).
  void IndexInsert(std::size_t i);

  // Live points in the index (== net().size() minus erased nodes); 0 in
  // exact mode, where no index exists.
  std::size_t IndexSize() const { return grid_ ? grid_->point_count() : 0; }

  // Cumulative counters (diagnostics for benches).
  struct Stats {
    std::int64_t rounds = 0;
    std::int64_t transmissions = 0;
    std::int64_t receptions = 0;
    // Grid mode only: listeners rejected by interference bounds alone vs
    // listeners resolved by the exact fallback loop.
    std::int64_t grid_pruned = 0;
    std::int64_t grid_exact_fallbacks = 0;
  };
  const Stats& stats() const { return stats_; }
  // Counters accumulate through const Steps (they are diagnostics, not
  // logical state), so resetting them is const as well.
  void ResetStats() const { stats_ = {}; }

 private:
  void StepExact(std::span<const std::size_t> transmitters,
                 std::span<const std::size_t> listeners,
                 std::vector<Reception>& out) const;
  void StepGrid(std::span<const std::size_t> transmitters,
                std::span<const std::size_t> listeners,
                std::vector<Reception>& out) const;
  // The exact per-listener inner loop, shared by kExact mode and kGrid's
  // fallback for models without a devirtualized kernel; appends to `out`
  // on success.
  void ResolveExact(std::size_t u, std::span<const std::size_t> transmitters,
                    std::vector<Reception>& out) const;
  // kGrid's batched exact fallback for the pure path-loss model: resolves
  // all deferred listeners tile by tile, sweeping each tile group's
  // far-field transmitter ranges once per kChunk-listener chunk (kChunk is
  // defined in engine.cc; one AVX-512 register of lanes). Near-threshold
  // SINRs are re-resolved over `transmitters` with the scalar kernel so
  // the reception set is host-invariant.
  void ResolveFallbacksBlocked(std::span<const std::size_t> transmitters,
                               std::vector<Reception>& out) const;

  const Network* net_;
  Options options_;
  Mode mode_ = Mode::kExact;
  mutable Stats stats_;

  // --- Grid-mode state (unused in kExact). ---
  std::optional<SpatialGrid> grid_;
  double near_radius_ = 0.0;  // exact-scan distance
  double far_start_ = 0.0;    // beyond this, tiles share per-listener-tile bounds
  // Set iff the network's model is exactly PathLossModel: the grid hot
  // loops then inline PathLossModel::GainD2 instead of dispatching through
  // the virtual GainFromDistanceSq per link.
  const PathLossModel* pure_path_loss_ = nullptr;

  // Per-round scratch, reused across Steps (see StepInto threading note).
  mutable std::vector<char> is_tx_;
  mutable std::vector<std::size_t> tx_start_;    // CSR offsets per tile
  mutable std::vector<std::size_t> tx_fill_;     // scatter cursors
  mutable std::vector<std::size_t> tx_members_;  // transmitters by tile
  // Transmitter positions in tile (CSR) order, parallel to tx_members_.
  mutable std::vector<double> tx_sx_;
  mutable std::vector<double> tx_sy_;
  mutable std::vector<int> occupied_tx_;         // tiles with >= 1 transmitter
  // Listeners deferred to the exact fallback, with their phase-A partials.
  struct GridFallback {
    std::uint32_t tile = 0;     // listener tile (phase-B grouping key)
    std::uint32_t ordinal = 0;  // position in the listeners span
    std::size_t u = 0;
    double close_sum = 0.0;   // exact near+mid interference
    double close_best = -1.0; // strongest near/mid gain...
    std::size_t close_best_v = 0;  // ...and its transmitter
  };
  mutable std::vector<GridFallback> fallback_;
  mutable std::vector<std::pair<std::uint32_t, Reception>> pending_;
  mutable std::vector<std::pair<std::size_t, std::size_t>> far_ranges_;
  // Per-listener-tile round cache: shared far-field bounds plus the list of
  // close (near/mid) transmitter tiles.
  mutable std::vector<std::uint64_t> tile_stamp_;
  mutable std::vector<double> tile_far_lo_;
  mutable std::vector<double> tile_far_ub_;
  mutable std::vector<std::uint32_t> tile_close_begin_;
  mutable std::vector<std::uint32_t> tile_close_end_;
  mutable std::vector<int> close_pool_;
  mutable std::uint64_t round_stamp_ = 0;
};

}  // namespace dcc::sinr
