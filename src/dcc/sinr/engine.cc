#include "dcc/sinr/engine.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>
#include <typeinfo>

#include "dcc/common/parse.h"
#include "dcc/obs/metrics.h"
#include "dcc/obs/trace.h"
#include "dcc/parallel/worker_pool.h"

#if defined(__GNUC__) && defined(__x86_64__)
#include <immintrin.h>
#define DCC_X86_DISPATCH 1
#endif

namespace dcc::sinr {

namespace {

// Pruning decisions are made from conservative bounds computed in floating
// point; this margin routes near-threshold listeners to the exact fallback
// instead of trusting the last few ulps of the bound arithmetic.
constexpr double kPruneSlack = 1e-9;

// The batched AVX-512 fallback kernel is ~2 ulp off the correctly-rounded
// scalar path (and hardware rsqrt seeds differ between vendors), so any
// fallback SINR within this relative distance of beta is re-resolved with
// the scalar libm kernel: the reception *set* is then host-invariant even
// though far-from-threshold SINR values may differ in their last bits.
constexpr double kThresholdRecheck = 1e-12;

// Fallback listeners are resolved in chunks of this many per far-field
// sweep: the lanes are independent accumulators, so the sweep vectorizes
// without any floating-point reassociation (one zmm/ymm lane group per
// transmitter) and each transmitter load is amortized across the chunk.
constexpr std::size_t kChunk = 8;

// target_clones emits an ifunc whose resolver runs during relocation,
// before sanitizer runtimes initialize — under ThreadSanitizer that is a
// load-time crash, so sanitized builds take the plain (still vectorizable)
// definition.
#if defined(DCC_X86_DISPATCH) && !defined(__clang__) && \
    !defined(__SANITIZE_THREAD__)
#define DCC_TARGET_CLONES \
  __attribute__((target_clones("avx512f", "avx2", "default")))
#else
#define DCC_TARGET_CLONES
#endif

// Sweeps the far-field transmitter ranges for one chunk of listeners under
// the alpha = 3 path-loss kernel. div and sqrt vectorize to their packed
// forms, which are correctly rounded, so results are bit-identical across
// the dispatched clones.
DCC_TARGET_CLONES
void FarSweepAlpha3(const double* __restrict xs, const double* __restrict ys,
                    const std::pair<std::size_t, std::size_t>* ranges,
                    std::size_t n_ranges, double p, const double* __restrict lx,
                    const double* __restrict ly, double* __restrict total,
                    double* __restrict best,
                    std::size_t* __restrict best_slot) {
  for (std::size_t r = 0; r < n_ranges; ++r) {
    for (std::size_t s = ranges[r].first; s < ranges[r].second; ++s) {
      const double vx = xs[s];
      const double vy = ys[s];
      for (std::size_t j = 0; j < kChunk; ++j) {
        const double dx = vx - lx[j];
        const double dy = vy - ly[j];
        double d2 = dx * dx + dy * dy;
        d2 = d2 < PathLossModel::kMinDistanceSq ? PathLossModel::kMinDistanceSq
                                                : d2;
        const double g = p / (d2 * std::sqrt(d2));
        total[j] += g;
        const bool upd = g > best[j];
        best[j] = upd ? g : best[j];
        best_slot[j] = upd ? s : best_slot[j];
      }
    }
  }
}

#ifdef DCC_X86_DISPATCH
// AVX-512 variant of the sweep above: d2^{-3/2} from vrsqrt14pd refined by
// two Newton steps — a pure multiply/FMA pipeline with no divider pressure.
// Error after refinement is ~1.5 * (5e-9)^2, i.e. below double epsilon, so
// gains agree with the scalar kernel to ~2 ulp (well inside the engine's
// documented 1e-9 SINR tolerance and the pruning slack).
__attribute__((target("avx512f"))) void FarSweepAlpha3Avx512(
    const double* xs, const double* ys,
    const std::pair<std::size_t, std::size_t>* ranges, std::size_t n_ranges,
    double p, const double* lx, const double* ly, double* total, double* best,
    std::size_t* best_slot) {
  static_assert(kChunk == 8, "one zmm register holds the listener chunk");
  const __m512d vlx = _mm512_loadu_pd(lx);
  const __m512d vly = _mm512_loadu_pd(ly);
  const __m512d vmin = _mm512_set1_pd(PathLossModel::kMinDistanceSq);
  const __m512d vp = _mm512_set1_pd(p);
  const __m512d vhalf = _mm512_set1_pd(0.5);
  const __m512d v3half = _mm512_set1_pd(1.5);
  __m512d vtotal = _mm512_loadu_pd(total);
  __m512d vbest = _mm512_loadu_pd(best);
  __m512i vslot = _mm512_loadu_si512(best_slot);
  for (std::size_t r = 0; r < n_ranges; ++r) {
    for (std::size_t s = ranges[r].first; s < ranges[r].second; ++s) {
      const __m512d dx = _mm512_sub_pd(_mm512_set1_pd(xs[s]), vlx);
      const __m512d dy = _mm512_sub_pd(_mm512_set1_pd(ys[s]), vly);
      const __m512d d2 = _mm512_max_pd(
          _mm512_fmadd_pd(dx, dx, _mm512_mul_pd(dy, dy)), vmin);
      __m512d h = _mm512_rsqrt14_pd(d2);
      // Two Newton refinements: h <- h * (1.5 - 0.5 * d2 * h * h).
      __m512d hh = _mm512_mul_pd(h, h);
      h = _mm512_mul_pd(
          h, _mm512_fnmadd_pd(_mm512_mul_pd(vhalf, d2), hh, v3half));
      hh = _mm512_mul_pd(h, h);
      h = _mm512_mul_pd(
          h, _mm512_fnmadd_pd(_mm512_mul_pd(vhalf, d2), hh, v3half));
      // g = p * h^3 = p / d2^{3/2}.
      const __m512d g =
          _mm512_mul_pd(_mm512_mul_pd(vp, h), _mm512_mul_pd(h, h));
      vtotal = _mm512_add_pd(vtotal, g);
      const __mmask8 upd = _mm512_cmp_pd_mask(g, vbest, _CMP_GT_OQ);
      vbest = _mm512_mask_mov_pd(vbest, upd, g);
      vslot = _mm512_mask_mov_epi64(
          vslot, upd, _mm512_set1_epi64(static_cast<long long>(s)));
    }
  }
  _mm512_storeu_pd(total, vtotal);
  _mm512_storeu_pd(best, vbest);
  _mm512_storeu_si512(best_slot, vslot);
}
#endif  // DCC_X86_DISPATCH

bool HasAvx512() {
#ifdef DCC_X86_DISPATCH
  static const bool has = __builtin_cpu_supports("avx512f") != 0;
  return has;
#else
  return false;
#endif
}

double AutoCell(const Network& net, const std::optional<Box>& coverage) {
  const Box box = coverage ? *coverage : BoundingBox(net.positions());
  const double area = (box.hi.x - box.lo.x) * (box.hi.y - box.lo.y);
  if (net.size() == 0 || area <= 0.0) return 1.0;
  // Aim for ~64 nodes per tile under uniform density, with tiles no smaller
  // than the transmission range scale.
  return std::max(1.0,
                  std::sqrt(64.0 * area / static_cast<double>(net.size())));
}

bool SpanEq(const std::vector<std::size_t>& a,
            std::span<const std::size_t> b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

bool OrdinalsEq(const std::vector<std::uint32_t>& a,
                std::span<const std::uint32_t> b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

// Word-wise FNV-1a over the round's input spans — the prologue cache's
// probe key. Collisions are harmless: a probe match is confirmed by a full
// element-wise comparison before the entry is used.
std::uint64_t HashRound(std::span<const std::size_t> tx,
                        std::span<const std::size_t> listeners,
                        std::span<const std::uint32_t> ordinals) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(tx.size());
  for (const std::size_t v : tx) mix(v);
  mix(listeners.size());
  for (const std::size_t v : listeners) mix(v);
  mix(ordinals.size());
  for (const std::uint32_t v : ordinals) mix(v);
  return h;
}

}  // namespace

Engine::Options Engine::Options::FromEnv() {
  Options opts;
  if (const char* mode = std::getenv("DCC_ENGINE_MODE")) {
    const std::string m(mode);
    if (m == "exact") {
      opts.mode = Mode::kExact;
    } else if (m == "grid") {
      opts.mode = Mode::kGrid;
    } else if (m != "auto" && !m.empty()) {
      throw InvalidArgument("DCC_ENGINE_MODE: unknown mode '" + m +
                            "' (expected exact, grid or auto)");
    }
  }
  if (const char* cell = std::getenv("DCC_ENGINE_CELL");
      cell && *cell != '\0') {
    const double v = ParseDouble(cell, "DCC_ENGINE_CELL");
    if (!(v > 0.0)) {
      throw InvalidArgument("DCC_ENGINE_CELL: tile side '" +
                            std::string(cell) + "' must be positive");
    }
    opts.cell = v;
  }
  if (const char* threads = std::getenv("DCC_ENGINE_THREADS");
      threads && *threads != '\0') {
    const std::int64_t v = ParseInt64(threads, "DCC_ENGINE_THREADS");
    if (v < 0 || v > 4096) {
      throw InvalidArgument("DCC_ENGINE_THREADS: shard count '" +
                            std::string(threads) +
                            "' must be in [0, 4096] (0 = hardware)");
    }
    opts.threads = static_cast<int>(v);
  }
  if (const char* grain = std::getenv("DCC_ENGINE_MIN_SHARD");
      grain && *grain != '\0') {
    const std::int64_t v = ParseInt64(grain, "DCC_ENGINE_MIN_SHARD");
    if (v < 1 || v > 1048576) {
      throw InvalidArgument("DCC_ENGINE_MIN_SHARD: listener grain '" +
                            std::string(grain) +
                            "' must be in [1, 1048576]");
    }
    opts.min_listeners_per_shard = static_cast<std::size_t>(v);
  }
  if (const char* ff = std::getenv("DCC_ENGINE_FARFIELD"); ff && *ff != '\0') {
    const std::string f(ff);
    if (f == "pyramid") {
      opts.farfield = FarField::kPyramid;
    } else if (f == "flat") {
      opts.farfield = FarField::kFlat;
    } else {
      throw InvalidArgument("DCC_ENGINE_FARFIELD: unknown strategy '" + f +
                            "' (expected pyramid or flat)");
    }
  }
  if (const char* cache = std::getenv("DCC_ENGINE_PROLOGUE_CACHE");
      cache && *cache != '\0') {
    const std::int64_t v = ParseInt64(cache, "DCC_ENGINE_PROLOGUE_CACHE");
    if (v < 0 || v > 1024) {
      throw InvalidArgument("DCC_ENGINE_PROLOGUE_CACHE: entry count '" +
                            std::string(cache) + "' must be in [0, 1024]");
    }
    opts.prologue_cache = static_cast<std::size_t>(v);
  }
  return opts;
}

Engine::Engine(const Network& net, Options options)
    : net_(&net), options_(options) {
  switch (options_.mode) {
    case Mode::kExact:
      mode_ = Mode::kExact;
      break;
    case Mode::kGrid:
      mode_ = Mode::kGrid;
      break;
    case Mode::kAuto:
      mode_ = net.size() > options_.grid_threshold ? Mode::kGrid : Mode::kExact;
      break;
  }
  DCC_REQUIRE(options_.threads >= 0, "Engine: threads must be >= 0");
  DCC_REQUIRE(options_.min_listeners_per_shard >= 1,
              "Engine: min_listeners_per_shard must be >= 1");
  parallel::WorkerPool& pool =
      options_.pool ? *options_.pool : parallel::WorkerPool::Shared();
  threads_ = options_.threads == 0 ? pool.parallelism() : options_.threads;
  if (threads_ > 1) pool_ = &pool;
  planner_ = parallel::RoundPlanner(pool_);
  if (mode_ == Mode::kGrid) {
    const double cell =
        options_.cell > 0.0 ? options_.cell : AutoCell(net, options_.coverage);
    if (options_.coverage) {
      grid_.emplace(std::span<const Vec2>(net.positions()), cell,
                    *options_.coverage);
    } else {
      grid_.emplace(std::span<const Vec2>(net.positions()), cell);
    }
    near_radius_ = std::max(cell, 2.0);
    far_start_ = 2.0 * near_radius_;
    if (typeid(net.propagation()) == typeid(PathLossModel)) {
      pure_path_loss_ = static_cast<const PathLossModel*>(&net.propagation());
    }
  }
  for (RoundPrologue& P : prologue_) {
    P.is_tx.assign(net.size(), 0);
    if (grid_) {
      P.tx_start.assign(static_cast<std::size_t>(grid_->tile_count()) + 1, 0);
    }
  }
  if (grid_ && options_.farfield == FarField::kPyramid) {
    pyramid_.Reset(*grid_);
  }
  if (grid_ && options_.prologue_cache > 0) {
    cache_.resize(options_.prologue_cache);
  }
  EnsureScratch(1);
}

Engine::~Engine() { AbandonPrefetch(); }

void Engine::EnsureScratch(int shards) const {
  if (static_cast<int>(scratch_.size()) >= shards) return;
  scratch_.resize(static_cast<std::size_t>(shards));
}

void Engine::SyncIndex() {
  if (!grid_) return;
  // The speculative build reads the grid; finish (and discard) it before
  // any bucket moves. The generation bump below then keeps any *future*
  // speculation honest.
  AbandonPrefetch();
  const auto& pos = net_->positions();
  for (std::size_t i = 0; i < pos.size(); ++i) {
    if (grid_->Contains(i)) grid_->Move(i, pos[i]);
  }
}

void Engine::IndexErase(std::size_t i) {
  if (!grid_) return;
  AbandonPrefetch();
  grid_->Erase(i);
}

void Engine::IndexInsert(std::size_t i) {
  if (!grid_) return;
  AbandonPrefetch();
  grid_->Insert(i, net_->position(i));
}

std::vector<Reception> Engine::Step(
    const std::vector<std::size_t>& transmitters,
    const std::vector<std::size_t>& listeners) const {
  std::vector<Reception> out;
  StepInto(transmitters, listeners, out);
  return out;
}

void Engine::StepInto(std::span<const std::size_t> transmitters,
                      std::span<const std::size_t> listeners,
                      std::vector<Reception>& out) const {
  DCC_TRACE_SPAN("engine.round");
  static obs::Counter& rounds_metric = obs::MetricsRegistry::Global().GetCounter(
      "dcc_engine_rounds_total", "SINR rounds stepped");
  static obs::Counter& receptions_metric =
      obs::MetricsRegistry::Global().GetCounter(
          "dcc_engine_receptions_total", "Receptions resolved across rounds");
  rounds_metric.Add(1);
  ++stats_.rounds;
  stats_.transmissions += static_cast<std::int64_t>(transmitters.size());
  out.clear();
  if (transmitters.empty() || listeners.empty()) return;
  if (mode_ == Mode::kGrid && options_.delegate != nullptr &&
      options_.delegate->StepRound(*this, transmitters, listeners, out)) {
    stats_.receptions += static_cast<std::int64_t>(out.size());
    receptions_metric.Add(static_cast<std::int64_t>(out.size()));
    return;
  }
  if (mode_ == Mode::kGrid) {
    StepGrid(transmitters, listeners, out);
  } else {
    StepExact(transmitters, listeners, out);
  }
  stats_.receptions += static_cast<std::int64_t>(out.size());
  receptions_metric.Add(static_cast<std::int64_t>(out.size()));
}

void Engine::StepOrdinalsInto(
    std::span<const std::size_t> transmitters,
    std::span<const std::size_t> listeners,
    std::span<const std::uint32_t> ordinals,
    std::vector<std::pair<std::uint32_t, Reception>>& out) const {
  DCC_REQUIRE(mode_ == Mode::kGrid,
              "StepOrdinalsInto: grid mode only (the distributed kernel)");
  out.clear();
  if (transmitters.empty() || ordinals.empty()) return;
  AbandonPrefetch();
  // A rank runs with threads == 1, so BuildPrologue skips the shard
  // decomposition and this is exactly the serial per-round index build.
  // With a prologue cache, a repeated (tx, listeners, ordinals) triple — a
  // TDMA slot revisited inside one rank process — replays the memoized
  // prologue instead of rebuilding it.
  RoundPrologue* P;
  bool from_cache = false;
  if (!cache_.empty()) {
    P = &CacheAcquire(transmitters, listeners, ordinals);
    from_cache = true;
  } else {
    P = &prologue_[live_slot_];
    BuildPrologue(*P, transmitters, listeners, /*tx_pos=*/nullptr, ordinals);
    stats_.tile_states_computed +=
        static_cast<std::int64_t>(P->lt_tiles.size());
  }
  EnsureScratch(1);
  RoundScratch& s = scratch_[0];
  StepGridRange(*P, transmitters, listeners, /*all_listeners=*/false, ordinals,
                s);
  out.insert(out.end(), s.pending.begin(), s.pending.end());
  stats_.grid_pruned += s.pruned;
  stats_.grid_exact_fallbacks += s.exact_fallbacks;
  s.pruned = 0;
  s.exact_fallbacks = 0;
  // Cache-resident prologues keep their marks (valid for their tx set and
  // re-validated on every hit); eviction clears them.
  if (!from_cache) ClearTxMarks(*P, transmitters);
}

// --- Round pipeline. ---

void Engine::SetNextRound(std::span<const std::size_t> transmitters,
                          std::span<const std::size_t> listeners) const {
  if (!pipeline_enabled() || transmitters.empty() || listeners.empty()) {
    next_valid_ = false;
    return;
  }
  next_tx_.assign(transmitters.begin(), transmitters.end());
  next_listeners_.assign(listeners.begin(), listeners.end());
  // Snapshot the transmitters' positions on this (the stepping) thread:
  // the asynchronous build and the far-sweep kernels read the snapshot, so
  // a Network::SetPositions racing the build can never tear a coordinate.
  // The generation stamps make any such mutation discard the speculation.
  next_tx_pos_.resize(next_tx_.size());
  for (std::size_t i = 0; i < next_tx_.size(); ++i) {
    next_tx_pos_[i] = net_->position(next_tx_[i]);
  }
  next_index_gen_ = grid_->generation();
  next_pos_gen_ = net_->generation();
  next_valid_ = true;
}

void Engine::ClearNextRound() const { next_valid_ = false; }

void Engine::PumpPrefetch() const { MaybePrefetchNext(); }

void Engine::MaybePrefetchNext() const {
  if (!next_valid_ || prefetch_pending_) return;
  RoundPrologue& spare = prologue_[1 - live_slot_];
  spare.tx.swap(next_tx_);
  spare.listeners.swap(next_listeners_);
  spare.tx_pos.swap(next_tx_pos_);
  spare.index_gen = next_index_gen_;
  spare.pos_gen = next_pos_gen_;
  next_valid_ = false;
  prefetch_pending_ = true;
  planner_.Launch([this, slot = 1 - live_slot_] {
    RoundPrologue& P = prologue_[slot];
    BuildPrologue(P, P.tx, P.listeners, P.tx_pos.data(), {});
  });
}

void Engine::AbandonPrefetch() const {
  if (!prefetch_pending_) return;
  planner_.Abandon();
  prefetch_pending_ = false;
  ClearTxMarks(prologue_[1 - live_slot_], prologue_[1 - live_slot_].tx);
}

void Engine::ClearTxMarks(RoundPrologue& P,
                          std::span<const std::size_t> tx) {
  for (const std::size_t v : tx) {
    if (v < P.is_tx.size()) P.is_tx[v] = 0;
  }
}

Engine::RoundPrologue& Engine::AcquirePrologue(
    std::span<const std::size_t> tx,
    std::span<const std::size_t> listeners) const {
  live_from_cache_ = false;
  if (prefetch_pending_) {
    const parallel::RoundPlanner::Outcome outcome = planner_.Collect();
    prefetch_pending_ = false;
    RoundPrologue& spec = prologue_[1 - live_slot_];
    // Use the speculation only if the disclosed inputs match this round
    // bit-for-bit and nothing the build read has mutated since: then the
    // prologue is byte-equivalent to what a serial build would produce
    // right now, and using it cannot change any output bit.
    const bool valid = spec.index_gen == grid_->generation() &&
                       spec.pos_gen == net_->generation() &&
                       SpanEq(spec.tx, tx) && SpanEq(spec.listeners, listeners);
    if (valid) {
      live_slot_ = 1 - live_slot_;
      ++stats_.rounds_pipelined;
      stats_.tile_states_computed +=
          static_cast<std::int64_t>(spec.lt_tiles.size());
      if (outcome.overlapped) stats_.prologue_overlap_ns += outcome.build_ns;
      return spec;
    }
    ClearTxMarks(spec, spec.tx);  // wrong guess: discard, build fresh
  }
  if (!cache_.empty()) {
    live_from_cache_ = true;
    return CacheAcquire(tx, listeners, {});
  }
  RoundPrologue& P = prologue_[live_slot_];
  BuildPrologue(P, tx, listeners, /*tx_pos=*/nullptr, {});
  stats_.tile_states_computed += static_cast<std::int64_t>(P.lt_tiles.size());
  return P;
}

Engine::RoundPrologue& Engine::CacheAcquire(
    std::span<const std::size_t> tx, std::span<const std::size_t> listeners,
    std::span<const std::uint32_t> ordinals) const {
  static obs::Counter& hits_metric = obs::MetricsRegistry::Global().GetCounter(
      "dcc_engine_prologue_cache_hits_total",
      "Rounds whose prologue was replayed from the transmit-set cache");
  static obs::Counter& misses_metric =
      obs::MetricsRegistry::Global().GetCounter(
          "dcc_engine_prologue_cache_misses_total",
          "Rounds that built a prologue into the transmit-set cache");
  const std::uint64_t key = HashRound(tx, listeners, ordinals);
  const std::uint64_t index_gen = grid_->generation();
  const std::uint64_t pos_gen = net_->generation();
  CacheEntry* victim = nullptr;
  for (CacheEntry& e : cache_) {
    if (!e.used) {
      if (victim == nullptr || victim->used) victim = &e;
      continue;
    }
    // The same validation the pipeline's speculation performs: content
    // equality plus untouched generation stamps. A stale or mismatched
    // entry is just an eviction candidate.
    if (e.key == key && e.P.index_gen == index_gen && e.P.pos_gen == pos_gen &&
        SpanEq(e.P.tx, tx) && SpanEq(e.P.listeners, listeners) &&
        OrdinalsEq(e.ordinals, ordinals)) {
      e.last_used = ++cache_tick_;
      ++stats_.prologue_cache_hits;
      stats_.tile_states_reused +=
          static_cast<std::int64_t>(e.P.lt_tiles.size());
      hits_metric.Add(1);
      DCC_TRACE_INSTANT("engine.prologue_cache_hit");
      return e.P;
    }
    if (victim == nullptr || (victim->used && e.last_used < victim->last_used)) {
      victim = &e;
    }
  }
  // Miss: build into the LRU slot (unused entries first). The evicted
  // prologue's marks are cleared before its tx copy is overwritten.
  if (victim->used) ClearTxMarks(victim->P, victim->P.tx);
  victim->used = true;
  victim->key = key;
  victim->last_used = ++cache_tick_;
  victim->ordinals.assign(ordinals.begin(), ordinals.end());
  RoundPrologue& P = victim->P;
  P.tx.assign(tx.begin(), tx.end());
  P.listeners.assign(listeners.begin(), listeners.end());
  P.tx_pos.clear();
  P.index_gen = index_gen;
  P.pos_gen = pos_gen;
  BuildPrologue(P, tx, listeners, /*tx_pos=*/nullptr, ordinals);
  ++stats_.prologue_cache_misses;
  stats_.tile_states_computed += static_cast<std::int64_t>(P.lt_tiles.size());
  misses_metric.Add(1);
  DCC_TRACE_INSTANT("engine.prologue_cache_miss");
  return P;
}

void Engine::BuildPrologue(RoundPrologue& P, std::span<const std::size_t> tx,
                           std::span<const std::size_t> listeners,
                           const Vec2* tx_pos,
                           std::span<const std::uint32_t> ordinals) const {
  // Serial builds run on the stepping thread; speculative builds run on a
  // pool worker — the span lands on whichever thread did the work.
  DCC_TRACE_SPAN("engine.prologue");
  const Network& net = *net_;
  const SpatialGrid& grid = *grid_;
  const auto tiles = static_cast<std::size_t>(grid.tile_count());

  // Counting sort into the CSR scratch; O(tiles + |T|).
  if (P.tx_start.size() != tiles + 1) {
    P.tx_start.assign(tiles + 1, 0);
  } else {
    std::fill(P.tx_start.begin(), P.tx_start.end(), 0);
  }
  if (P.is_tx.size() < net.size()) P.is_tx.resize(net.size(), 0);
  for (const std::size_t v : tx) {
    P.is_tx[v] = 1;
    ++P.tx_start[static_cast<std::size_t>(grid.TileOfPoint(v)) + 1];
  }
  P.occupied_tx.clear();
  for (std::size_t t = 0; t + 1 < P.tx_start.size(); ++t) {
    if (P.tx_start[t + 1] > 0) P.occupied_tx.push_back(static_cast<int>(t));
    P.tx_start[t + 1] += P.tx_start[t];
  }
  P.tx_members.resize(tx.size());
  P.tx_sx.resize(tx.size());
  P.tx_sy.resize(tx.size());
  P.tx_fill.assign(P.tx_start.begin(), P.tx_start.end() - 1);
  for (std::size_t i = 0; i < tx.size(); ++i) {
    const std::size_t v = tx[i];
    const std::size_t slot =
        P.tx_fill[static_cast<std::size_t>(grid.TileOfPoint(v))]++;
    P.tx_members[slot] = v;
    const Vec2 p = tx_pos != nullptr ? tx_pos[i] : net.position(v);
    P.tx_sx[slot] = p.x;
    P.tx_sy[slot] = p.y;
  }

  // Dispatch decision + shard decomposition. Stats are NOT touched here
  // (this may run on a pool worker); the consumer folds P.small_round into
  // the counters.
  const std::size_t n_listen = listeners.size();
  P.shards = 1;
  P.small_round = false;
  if (threads_ > 1 && pool_ != nullptr &&
      n_listen >= options_.min_listeners_per_shard *
                      static_cast<std::size_t>(threads_)) {
    P.shards = threads_;
  } else if (threads_ > 1) {
    P.small_round = true;
  }
  if (P.shards > 1) {
    // Plan contiguous tile shards balanced by this round's listener
    // histogram, then bucket listener ordinals by shard (stable, so each
    // shard sees its listeners in ascending ordinal order — the exact
    // relative order the serial sweep would process them in).
    P.shard_weights.assign(tiles, 0);
    P.listener_shard.resize(n_listen);
    for (const std::size_t u : listeners) {
      ++P.shard_weights[static_cast<std::size_t>(grid.TileOfPoint(u))];
    }
    P.plan.Reset(grid.tile_count(), P.shards, options_.shard_policy,
                 P.shard_weights);
    P.shard_ord_start.assign(static_cast<std::size_t>(P.shards) + 1, 0);
    for (std::size_t ord = 0; ord < n_listen; ++ord) {
      const auto k = static_cast<std::uint32_t>(
          P.plan.ShardOfTile(grid.TileOfPoint(listeners[ord])));
      P.listener_shard[ord] = k;
      ++P.shard_ord_start[k + 1];
    }
    for (std::size_t k = 1; k < P.shard_ord_start.size(); ++k) {
      P.shard_ord_start[k] += P.shard_ord_start[k - 1];
    }
    // A plan below 2 non-empty shards cannot win (tiles are the
    // decomposition grain; e.g. a tiny network whose auto cell yields one
    // tile): the dispatch would pay pool overhead to run serially anyway.
    int populated = 0;
    for (int k = 0; k < P.shards; ++k) {
      populated += P.shard_ord_start[static_cast<std::size_t>(k) + 1] >
                           P.shard_ord_start[static_cast<std::size_t>(k)]
                       ? 1
                       : 0;
    }
    if (populated < 2) {
      P.shards = 1;
      P.small_round = true;
    } else {
      P.shard_ordinals.resize(n_listen);
      P.shard_ord_fill.assign(P.shard_ord_start.begin(),
                              P.shard_ord_start.end() - 1);
      for (std::size_t ord = 0; ord < n_listen; ++ord) {
        P.shard_ordinals[P.shard_ord_fill[P.listener_shard[ord]]++] =
            static_cast<std::uint32_t>(ord);
      }
    }
  }

  BuildTileState(P, listeners, ordinals);
}

void Engine::BuildTileState(RoundPrologue& P,
                            std::span<const std::size_t> listeners,
                            std::span<const std::uint32_t> ordinals) const {
  DCC_TRACE_SPAN("engine.farfield");
  const Network& net = *net_;
  const PropagationModel& model = net.propagation();
  const SpatialGrid& grid = *grid_;
  const auto tiles = static_cast<std::size_t>(grid.tile_count());

  // The distinct listener tiles this round resolves, ascending — the whole
  // round's, or only the named ordinals' (the rank path never pays for
  // tiles it does not own).
  if (P.lt_mark.size() != tiles) P.lt_mark.assign(tiles, 0);
  P.lt_tiles.clear();
  const std::size_t count = ordinals.empty() ? listeners.size()
                                             : ordinals.size();
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t u = listeners[ordinals.empty() ? k : ordinals[k]];
    const auto t = static_cast<std::size_t>(grid.TileOfPoint(u));
    if (!P.lt_mark[t]) {
      P.lt_mark[t] = 1;
      P.lt_tiles.push_back(static_cast<int>(t));
    }
  }
  std::sort(P.lt_tiles.begin(), P.lt_tiles.end());
  for (const int t : P.lt_tiles) P.lt_mark[static_cast<std::size_t>(t)] = 0;

  if (P.tile_far_lo.size() != tiles) {
    P.tile_far_lo.assign(tiles, 0.0);
    P.tile_far_ub.assign(tiles, 0.0);
    P.tile_close_begin.assign(tiles, 0);
    P.tile_close_end.assign(tiles, 0);
  }
  P.close_pool.clear();

  // Envelope bounds as a function of squared distance, devirtualized for
  // the pure path-loss model (same kernels StepGridRange uses).
  const auto min_gain_d2 = [&](double d2_hi) {
    return pure_path_loss_ != nullptr ? pure_path_loss_->GainD2(d2_hi)
                                      : model.MinGain(std::sqrt(d2_hi));
  };
  const auto max_gain_d2 = [&](double d2_lo) {
    return pure_path_loss_ != nullptr ? pure_path_loss_->GainD2(d2_lo)
                                      : model.MaxGain(std::sqrt(d2_lo));
  };
  const double far_sq = far_start_ * far_start_;

  if (options_.farfield == FarField::kPyramid &&
      P.occupied_tx.size() >= options_.pyramid_min_occupied) {
    pyramid_.Reset(grid);
    pyramid_.Rebuild(P.occupied_tx, [&](int b) {
      return P.tx_start[static_cast<std::size_t>(b) + 1] -
             P.tx_start[static_cast<std::size_t>(b)];
    });
    for (const int t : P.lt_tiles) {
      const auto tile = static_cast<std::size_t>(t);
      double far_lo = 0.0, far_ub = 0.0;
      P.tile_close_begin[tile] = static_cast<std::uint32_t>(P.close_pool.size());
      pyramid_.Accumulate(grid, t, far_sq, min_gain_d2, max_gain_d2,
                          P.close_pool, far_lo, far_ub);
      P.tile_close_end[tile] = static_cast<std::uint32_t>(P.close_pool.size());
      P.tile_far_lo[tile] = far_lo;
      P.tile_far_ub[tile] = far_ub;
    }
  } else {
    // The flat walk, hoisted verbatim: same occupied-ascending iteration
    // (and therefore the same far_lo summation order and close-list order)
    // the per-shard lazy build used to perform.
    for (const int t : P.lt_tiles) {
      const auto tile = static_cast<std::size_t>(t);
      double far_lo = 0.0, far_ub = 0.0;
      P.tile_close_begin[tile] = static_cast<std::uint32_t>(P.close_pool.size());
      for (const int b : P.occupied_tx) {
        const double d2_lo = grid.TileDistLoSq(t, b);
        if (d2_lo > far_sq) {
          const auto cnt = static_cast<double>(
              P.tx_start[static_cast<std::size_t>(b) + 1] -
              P.tx_start[static_cast<std::size_t>(b)]);
          far_lo += cnt * min_gain_d2(grid.TileDistHiSq(t, b));
          far_ub = std::max(far_ub, max_gain_d2(d2_lo));
        } else {
          P.close_pool.push_back(b);
        }
      }
      P.tile_close_end[tile] = static_cast<std::uint32_t>(P.close_pool.size());
      P.tile_far_lo[tile] = far_lo;
      P.tile_far_ub[tile] = far_ub;
    }
  }
}

std::optional<Reception> Engine::ResolveExact(
    std::size_t u, std::span<const std::size_t> transmitters) const {
  const Network& net = *net_;
  double total = 0.0;
  double best = -1.0;
  std::size_t best_tx = 0;
  for (const std::size_t v : transmitters) {
    DCC_CHECK(v != u);  // a transmitter cannot listen
    const double g = net.Gain(v, u);
    total += g;
    if (g > best) {
      best = g;
      best_tx = v;
    }
  }
  const double interference = total - best;
  const double sinr = best / (net.params().noise + interference);
  if (sinr >= net.params().beta) {
    return Reception{u, best_tx, sinr};
  }
  return std::nullopt;
}

void Engine::StepExact(std::span<const std::size_t> transmitters,
                       std::span<const std::size_t> listeners,
                       std::vector<Reception>& out) const {
  const std::size_t n_listen = listeners.size();
  const int shards =
      threads_ > 1 && pool_ != nullptr &&
              n_listen >= options_.min_listeners_per_shard *
                              static_cast<std::size_t>(threads_)
          ? threads_
          : 1;
  if (shards <= 1) {
    if (threads_ > 1) ++stats_.parallel_small_rounds;
    for (const std::size_t u : listeners) {
      if (auto r = ResolveExact(u, transmitters)) out.push_back(*r);
    }
    return;
  }

  // Contiguous listener ranges (no spatial structure to decompose in exact
  // mode); shard k resolves ordinals [n*k/K, n*(k+1)/K).
  EnsureScratch(shards);
  ++stats_.parallel_rounds;
  if (static_cast<int>(stats_.shard_listeners.size()) < shards) {
    stats_.shard_listeners.resize(static_cast<std::size_t>(shards), 0);
  }
  stats_.steal_count +=
      pool_->Run(static_cast<std::size_t>(shards), [&](std::size_t k) {
        RoundScratch& s = scratch_[k];
        s.pending.clear();
        const std::size_t lo = n_listen * k / static_cast<std::size_t>(shards);
        const std::size_t hi =
            n_listen * (k + 1) / static_cast<std::size_t>(shards);
        for (std::size_t ord = lo; ord < hi; ++ord) {
          if (auto r = ResolveExact(listeners[ord], transmitters)) {
            s.pending.emplace_back(static_cast<std::uint32_t>(ord), *r);
          }
        }
      });
  for (int k = 0; k < shards; ++k) {
    const std::size_t lo =
        n_listen * static_cast<std::size_t>(k) / static_cast<std::size_t>(shards);
    const std::size_t hi = n_listen * static_cast<std::size_t>(k + 1) /
                           static_cast<std::size_t>(shards);
    stats_.shard_listeners[static_cast<std::size_t>(k)] +=
        static_cast<std::int64_t>(hi - lo);
  }
  MergeShards(shards, out);
}

void Engine::ResolveFallbacksBlocked(
    const RoundPrologue& P, std::span<const std::size_t> transmitters,
    RoundScratch& s) const {
  const Network& net = *net_;
  const PathLossModel& plm = *pure_path_loss_;
  const double beta = net.params().beta;
  const double noise = net.params().noise;

  // Group the deferred listeners by tile so each group shares one far-range
  // scan; ordinals restore the caller's listener order at the end (the
  // caller sorts s.pending).
  std::sort(s.fallback.begin(), s.fallback.end(),
            [](const GridFallback& a, const GridFallback& b) {
              return a.tile != b.tile ? a.tile < b.tile
                                      : a.ordinal < b.ordinal;
            });

  for (std::size_t i = 0; i < s.fallback.size();) {
    const std::uint32_t tile = s.fallback[i].tile;
    std::size_t group_end = i;
    while (group_end < s.fallback.size() &&
           s.fallback[group_end].tile == tile) {
      ++group_end;
    }

    // The tile's far transmitter ranges: occupied tiles minus the close
    // list (both ascending), with adjacent CSR ranges coalesced.
    s.far_ranges.clear();
    {
      std::uint32_t c = P.tile_close_begin[tile];
      const std::uint32_t c_end = P.tile_close_end[tile];
      for (const int b : P.occupied_tx) {
        if (c < c_end && P.close_pool[c] == b) {
          ++c;
          continue;
        }
        const std::size_t mb = P.tx_start[static_cast<std::size_t>(b)];
        const std::size_t me = P.tx_start[static_cast<std::size_t>(b) + 1];
        if (!s.far_ranges.empty() && s.far_ranges.back().second == mb) {
          s.far_ranges.back().second = me;
        } else {
          s.far_ranges.emplace_back(mb, me);
        }
      }
    }

    for (std::size_t c0 = i; c0 < group_end; c0 += kChunk) {
      const std::size_t m = std::min(kChunk, group_end - c0);
      alignas(64) double lx[kChunk], ly[kChunk], total[kChunk],
          far_best[kChunk];
      alignas(64) std::size_t far_best_v[kChunk] = {};
      for (std::size_t j = 0; j < kChunk; ++j) {
        // Pad short chunks with lane 0; padded lanes are never emitted.
        const GridFallback& r = s.fallback[c0 + (j < m ? j : 0)];
        const Vec2 p = net.position(r.u);
        lx[j] = p.x;
        ly[j] = p.y;
        total[j] = 0.0;
        far_best[j] = -1.0;
      }
      if (plm.alpha_is_three()) {
#ifdef DCC_X86_DISPATCH
        if (HasAvx512()) {
          FarSweepAlpha3Avx512(P.tx_sx.data(), P.tx_sy.data(),
                               s.far_ranges.data(), s.far_ranges.size(),
                               plm.power(), lx, ly, total, far_best,
                               far_best_v);
        } else {
          FarSweepAlpha3(P.tx_sx.data(), P.tx_sy.data(), s.far_ranges.data(),
                         s.far_ranges.size(), plm.power(), lx, ly, total,
                         far_best, far_best_v);
        }
#else
        FarSweepAlpha3(P.tx_sx.data(), P.tx_sy.data(), s.far_ranges.data(),
                       s.far_ranges.size(), plm.power(), lx, ly, total,
                       far_best, far_best_v);
#endif
      } else {
        for (const auto& [mb, me] : s.far_ranges) {
          for (std::size_t t = mb; t < me; ++t) {
            const double vx = P.tx_sx[t];
            const double vy = P.tx_sy[t];
            for (std::size_t j = 0; j < kChunk; ++j) {
              const double dx = vx - lx[j];
              const double dy = vy - ly[j];
              const double g = plm.GainD2(dx * dx + dy * dy);
              total[j] += g;
              if (g > far_best[j]) {
                far_best[j] = g;
                far_best_v[j] = t;
              }
            }
          }
        }
      }
      for (std::size_t j = 0; j < m; ++j) {
        const GridFallback& r = s.fallback[c0 + j];
        const double all = r.close_sum + total[j];
        double best = r.close_best;
        std::size_t best_v = r.close_best_v;
        if (far_best[j] > best) {
          best = far_best[j];
          best_v = P.tx_members[far_best_v[j]];
        }
        const double sinr = best / (noise + all - best);
        if (std::abs(sinr - beta) <= beta * kThresholdRecheck) {
          // Too close to beta to trust the vectorized kernel's last ulps
          // (see kThresholdRecheck): re-resolve with the scalar kernel.
          if (auto rec = ResolveExact(r.u, transmitters)) {
            s.pending.emplace_back(r.ordinal, *rec);
          }
        } else if (sinr >= beta) {
          s.pending.emplace_back(r.ordinal, Reception{r.u, best_v, sinr});
        }
      }
    }
    i = group_end;
  }
}

void Engine::StepGridRange(const RoundPrologue& P,
                           std::span<const std::size_t> transmitters,
                           std::span<const std::size_t> listeners,
                           bool all_listeners,
                           std::span<const std::uint32_t> ordinals,
                           RoundScratch& s) const {
  DCC_TRACE_SPAN("engine.shard");
  const Network& net = *net_;
  const PropagationModel& model = net.propagation();
  const SpatialGrid& grid = *grid_;
  const double beta = net.params().beta;
  const double noise = net.params().noise;

  s.fallback.clear();
  s.pending.clear();
  s.pruned = 0;
  s.exact_fallbacks = 0;

  // Envelope bounds as a function of squared distance, devirtualized for
  // the pure path-loss model (no per-link structure, so the envelope IS the
  // gain kernel).
  const auto min_gain_d2 = [&](double d2_hi) {
    return pure_path_loss_ != nullptr ? pure_path_loss_->GainD2(d2_hi)
                                      : model.MinGain(std::sqrt(d2_hi));
  };
  const auto max_gain_d2 = [&](double d2_lo) {
    return pure_path_loss_ != nullptr ? pure_path_loss_->GainD2(d2_lo)
                                      : model.MaxGain(std::sqrt(d2_lo));
  };
  const double near_sq = near_radius_ * near_radius_;

  const std::size_t count = all_listeners ? listeners.size()
                                          : ordinals.size();
  for (std::size_t k = 0; k < count; ++k) {
    const auto ordinal = all_listeners ? static_cast<std::uint32_t>(k)
                                       : ordinals[k];
    const std::size_t u = listeners[ordinal];
    DCC_CHECK(!P.is_tx[u]);  // a transmitter cannot listen
    const Vec2 pu = net.position(u);
    const auto tile_u = static_cast<std::size_t>(grid.TileOfPoint(u));

    const auto gain_at = [&](std::size_t v) {
      if (pure_path_loss_ != nullptr) {
        return pure_path_loss_->GainD2(Dist2(net.position(v), pu));
      }
      return net.Gain(v, u);
    };

    // Stage 1 — near tiles: exact member scan; mid tiles: envelope bounds.
    double close_sum = 0.0;
    double best = -1.0;
    std::size_t best_v = 0;
    double bound_lo = P.tile_far_lo[tile_u];
    double gain_ub = P.tile_far_ub[tile_u];
    const std::uint32_t close_begin = P.tile_close_begin[tile_u];
    const std::uint32_t close_end = P.tile_close_end[tile_u];
    for (std::uint32_t c = close_begin; c < close_end; ++c) {
      const int b = P.close_pool[c];
      const double d2_lo = grid.DistLoSq(pu, b);
      const std::size_t mb = P.tx_start[static_cast<std::size_t>(b)];
      const std::size_t me = P.tx_start[static_cast<std::size_t>(b) + 1];
      if (d2_lo <= near_sq) {
        for (std::size_t t = mb; t < me; ++t) {
          const double g = gain_at(P.tx_members[t]);
          close_sum += g;
          if (g > best) {
            best = g;
            best_v = P.tx_members[t];
          }
        }
      } else {
        bound_lo +=
            static_cast<double>(me - mb) * min_gain_d2(grid.DistHiSq(pu, b));
        gain_ub = std::max(gain_ub, max_gain_d2(d2_lo));
      }
    }

    // Best-case SINR: the strongest any transmitter could be, against the
    // least interference this listener could see. If even that misses
    // beta, no reception is possible.
    const auto cannot_receive = [&](double best_ub, double interference_lo) {
      if (best_ub <= 0.0) return true;
      const double i_lo = std::max(0.0, interference_lo - best_ub);
      return (best_ub / (noise + i_lo)) * (1.0 + kPruneSlack) < beta;
    };
    if (cannot_receive(std::max(best, gain_ub), close_sum + bound_lo)) {
      ++s.pruned;
      continue;
    }

    // Stage 2 — scan the mid tiles exactly; only the shared far-field
    // bound remains an estimate.
    for (std::uint32_t c = close_begin; c < close_end; ++c) {
      const int b = P.close_pool[c];
      if (grid.DistLoSq(pu, b) <= near_sq) continue;  // already exact
      for (std::size_t t = P.tx_start[static_cast<std::size_t>(b)];
           t < P.tx_start[static_cast<std::size_t>(b) + 1]; ++t) {
        const double g = gain_at(P.tx_members[t]);
        close_sum += g;
        if (g > best) {
          best = g;
          best_v = P.tx_members[t];
        }
      }
    }
    if (cannot_receive(std::max(best, P.tile_far_ub[tile_u]),
                       close_sum + P.tile_far_lo[tile_u])) {
      ++s.pruned;
      continue;
    }

    // Stage 3 — a reception is genuinely possible: defer to the exact
    // fallback (batched for the pure path-loss model).
    ++s.exact_fallbacks;
    if (pure_path_loss_ != nullptr) {
      s.fallback.push_back(GridFallback{static_cast<std::uint32_t>(tile_u),
                                        ordinal, u, close_sum, best, best_v});
    } else if (auto r = ResolveExact(u, transmitters)) {
      s.pending.emplace_back(ordinal, *r);
    }
  }

  if (!s.fallback.empty()) {
    ResolveFallbacksBlocked(P, transmitters, s);
  }
  std::sort(s.pending.begin(), s.pending.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
}

void Engine::MergeShards(int shards, std::vector<Reception>& out) const {
  DCC_TRACE_SPAN("engine.merge");
  // Shard-ordered concatenation; ordinals are globally unique, so one sort
  // restores the exact serial (listener-order) output.
  merge_.clear();
  for (int k = 0; k < shards; ++k) {
    RoundScratch& s = scratch_[static_cast<std::size_t>(k)];
    merge_.insert(merge_.end(), s.pending.begin(), s.pending.end());
    stats_.grid_pruned += s.pruned;
    stats_.grid_exact_fallbacks += s.exact_fallbacks;
    s.pruned = 0;
    s.exact_fallbacks = 0;
  }
  std::sort(merge_.begin(), merge_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [ordinal, rec] : merge_) {
    out.push_back(rec);
  }
}

void Engine::StepGrid(std::span<const std::size_t> transmitters,
                      std::span<const std::size_t> listeners,
                      std::vector<Reception>& out) const {
  // This round's prologue: a validated speculation or a fresh build.
  RoundPrologue& P = AcquirePrologue(transmitters, listeners);
  if (P.small_round) ++stats_.parallel_small_rounds;

  // Launch the *next* round's speculative prologue (if disclosed) before
  // resolving this one — that ordering is the whole pipeline: the build
  // ticket is published first, so an idle or early-finishing worker can
  // execute it while this round's shards (or serial sweep) still run.
  MaybePrefetchNext();

  const int shards = P.shards;
  if (shards <= 1) {
    RoundScratch& s = scratch_[0];
    StepGridRange(P, transmitters, listeners, /*all_listeners=*/true, {}, s);
    stats_.grid_pruned += s.pruned;
    stats_.grid_exact_fallbacks += s.exact_fallbacks;
    s.pruned = 0;
    s.exact_fallbacks = 0;
    for (const auto& [ordinal, rec] : s.pending) {
      out.push_back(rec);
    }
  } else {
    EnsureScratch(shards);
    ++stats_.parallel_rounds;
    if (static_cast<int>(stats_.shard_listeners.size()) < shards) {
      stats_.shard_listeners.resize(static_cast<std::size_t>(shards), 0);
    }
    stats_.steal_count +=
        pool_->Run(static_cast<std::size_t>(shards), [&](std::size_t k) {
          const std::span<const std::uint32_t> ordinals(
              P.shard_ordinals.data() + P.shard_ord_start[k],
              P.shard_ord_start[k + 1] - P.shard_ord_start[k]);
          StepGridRange(P, transmitters, listeners, /*all_listeners=*/false,
                        ordinals, scratch_[k]);
        });
    for (int k = 0; k < shards; ++k) {
      stats_.shard_listeners[static_cast<std::size_t>(k)] +=
          static_cast<std::int64_t>(
              P.shard_ord_start[static_cast<std::size_t>(k) + 1] -
              P.shard_ord_start[static_cast<std::size_t>(k)]);
    }
    MergeShards(shards, out);
  }

  // Cache-resident prologues keep their tx marks until eviction so a hit
  // can skip the whole serial prologue.
  if (!live_from_cache_) ClearTxMarks(P, transmitters);
}

double Engine::Sinr(std::size_t v, std::size_t u,
                    const std::vector<std::size_t>& transmitters) const {
  const Network& net = *net_;
  double interference = 0.0;
  bool v_transmits = false;
  for (const std::size_t w : transmitters) {
    if (w == v) {
      v_transmits = true;
      continue;
    }
    interference += net.Gain(w, u);
  }
  DCC_REQUIRE(v_transmits, "Sinr: v must be in the transmitter set");
  return net.Gain(v, u) / (net.params().noise + interference);
}

double Engine::InterferenceAt(
    std::size_t u, const std::vector<std::size_t>& transmitters) const {
  double total = 0.0;
  for (const std::size_t w : transmitters) {
    if (w != u) total += net_->Gain(w, u);
  }
  return total;
}

}  // namespace dcc::sinr
