// Coordinator side of the distributed round execution mode: a Session owns
// R rank processes (fork/exec of tools/dcc_rank over socketpairs) and takes
// over whole engine rounds through the sinr::StepDelegate hook — the
// in-process shard fan-out becomes a fan-out over processes, and the
// shard-ordered merge becomes a gather.
//
// Per round the session cuts the listener set into R contiguous tile
// ranges with the same balanced ShardPlan the in-process engine uses,
// ships each rank its owned ordinals plus the halo (protocol.h), gathers
// the ordinal-tagged replies, and emits receptions in ordinal order — the
// exact serial emission order, so distributed receptions are bit-identical
// to the in-process engine at every rank count (the 3-step argument in
// docs/ARCHITECTURE.md).
//
// Failure model: any rank dying (EOF on its frame stream), wire error, or
// protocol violation throws DistribError naming the rank; the scenario
// layer converts that into an ok=false report with the dcc.distrib.v1
// section it has so far. The destructor always reaps every child —
// shutdown frames first, SIGKILL for stragglers — and never hangs.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "dcc/distrib/protocol.h"
#include "dcc/parallel/shard_plan.h"
#include "dcc/scenario/spec.h"
#include "dcc/sinr/engine.h"
#include "dcc/sinr/farfield.h"

namespace dcc::distrib {

class DistribError : public std::runtime_error {
 public:
  explicit DistribError(const std::string& what) : std::runtime_error(what) {}
};

class Session : public sinr::StepDelegate {
 public:
  struct Options {
    int ranks = 2;
    // Rank executable; empty resolves $DCC_RANK_EXE, then dcc_rank next to
    // the current executable (all build targets land in one directory).
    std::string rank_exe;
  };

  // Deterministic per-run accounting (byte counts are pure functions of
  // the round content, never of timing), so the dcc.distrib.v1 report
  // section is byte-pinnable.
  struct Stats {
    int ranks = 0;
    std::int64_t rounds = 0;       // rounds shipped to the ranks
    std::int64_t halo_tiles = 0;   // near CSR slices sent (sum over ranks)
    std::int64_t halo_bytes = 0;   // round frame payload bytes sent
    std::int64_t reply_bytes = 0;  // reply frame payload bytes received
    std::vector<std::int64_t> rank_load;  // cumulative owned listeners
  };

  // `spec` supplies the replica recipe the ranks rebuild the network from
  // (topology + SINR + shadowing + id seed under `seed`); engine geometry
  // is taken from the live engine at the first StepRound. Ranks launch
  // lazily on the first round.
  Session(const scenario::ScenarioSpec& spec, std::uint64_t seed,
          Options opts);
  ~Session() override;

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // StepDelegate: ships the round, gathers replies, emits receptions in
  // serial order. Always returns true (a distributed engine never falls
  // back silently — a failure must surface, not change the execution
  // substrate mid-run). Throws DistribError on any rank failure.
  bool StepRound(const sinr::Engine& engine,
                 std::span<const std::size_t> transmitters,
                 std::span<const std::size_t> listeners,
                 std::vector<sinr::Reception>& out) override;

  const Stats& stats() const { return stats_; }
  int ranks() const { return opts_.ranks; }

  // Test hook: SIGKILLs rank k's process (the socket stays open, so the
  // next round observes EOF/ECONNRESET and must fail cleanly).
  void KillRank(int k);

 private:
  struct Rank {
    int fd = -1;
    pid_t pid = -1;
    bool alive = false;
  };

  void EnsureStarted(const sinr::Engine& engine);
  void SpawnRank(int k, const std::string& exe);
  void SendPositions(const sinr::Engine& engine);
  // Send/receive one frame on rank k, wrapping failures in DistribError.
  void SendTo(int k, const std::string& payload);
  std::string ReadFrom(int k);

  scenario::ScenarioSpec spec_;
  std::uint64_t seed_ = 0;
  Options opts_;
  bool started_ = false;
  // Tracing was negotiated in the Hello: the destructor collects one
  // kTraceDump per rank after the shutdown frame and injects it into the
  // coordinator tracer (pure observation; never read on the round path).
  bool trace_ = false;
  std::vector<Rank> ranks_;
  std::uint64_t round_ = 0;
  std::uint64_t last_pos_gen_ = 0;
  std::uint64_t last_index_gen_ = 0;
  parallel::ShardPlan plan_;
  Stats stats_;

  // Round-scratch buffers, reused across rounds.
  std::vector<std::uint32_t> tile_weights_;
  std::vector<int> tx_tile_;
  std::vector<int> occupied_tx_;
  std::vector<std::uint32_t> tx_count_;
  // Coordinator's half of the halo cut, when the engine runs with the
  // pyramid: one rebuild per round, then each rank's near set falls out of
  // a log-depth descent instead of |listener tiles| x |occupied| walks.
  // The receiving rank re-derives the near set flat and verifies, so the
  // wire format (and the cut itself) is provably unchanged.
  sinr::FarFieldPyramid pyramid_;
  std::vector<std::pair<std::uint32_t, sinr::Reception>> merge_;
};

}  // namespace dcc::distrib
