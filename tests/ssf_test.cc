#include "dcc/sel/ssf.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "dcc/sel/verify.h"

namespace dcc::sel {
namespace {

TEST(SsfTest, MembershipMatchesResidues) {
  const Ssf s = Ssf::Construct(100, 3);
  for (std::int64_t i = 0; i < s.size(); i += 7) {
    const auto [p, r] = s.SetParams(i);
    for (std::int64_t x = 1; x <= 100; x += 13) {
      EXPECT_EQ(s.Member(i, x), x % p == r);
    }
  }
}

TEST(SsfTest, RoundIndexOutOfRangeThrows) {
  const Ssf s = Ssf::Construct(64, 2);
  EXPECT_THROW(s.SetParams(-1), InvalidArgument);
  EXPECT_THROW(s.SetParams(s.size()), InvalidArgument);
}

TEST(SsfTest, CoversAllResiduesOfAllPrimes) {
  const Ssf s = Ssf::Construct(256, 4);
  std::int64_t total = 0;
  for (const std::int64_t p : s.primes()) total += p;
  EXPECT_EQ(s.size(), total);
}

// The construction is provably an (N,k)-ssf; verify exhaustively for small
// N to pin the implementation.
TEST(SsfTest, ExhaustiveSelectionSmall) {
  for (const int k : {1, 2, 3}) {
    const Ssf s = Ssf::Construct(12, k);
    const auto res = VerifySsfExhaustive(s);
    EXPECT_TRUE(res.AllSatisfied())
        << "k=" << k << " failures=" << res.failures << "/" << res.trials;
  }
}

TEST(SsfTest, ExhaustiveSelectionMediumK) {
  const Ssf s = Ssf::Construct(16, 5);
  const auto res = VerifySsfExhaustive(s);
  EXPECT_TRUE(res.AllSatisfied()) << res.failures << "/" << res.trials;
}

TEST(SsfTest, SizeGrowsRoughlyQuadraticallyInK) {
  const std::int64_t N = 1 << 16;
  const auto s4 = Ssf::Construct(N, 4);
  const auto s8 = Ssf::Construct(N, 8);
  const auto s16 = Ssf::Construct(N, 16);
  // Doubling k should grow size at most ~6x (k^2 log-ish with slack).
  EXPECT_GT(s8.size(), s4.size());
  EXPECT_GT(s16.size(), s8.size());
  EXPECT_LT(s16.size(), 8 * s8.size());
}

TEST(SsfTest, PrimesExceedWitnessThreshold) {
  // Count primes needed by the construction's guarantee: strictly more
  // than (k-1)*ceil(log_T N) primes in (T, 2T].
  const std::int64_t N = 1024;
  const int k = 6;
  const Ssf s = Ssf::Construct(N, k);
  ASSERT_FALSE(s.primes().empty());
  const std::int64_t T = s.primes().front() - 1;
  const double logT = std::log(static_cast<double>(T));
  const double needed =
      (k - 1) * std::ceil(std::log(static_cast<double>(N)) / logT);
  EXPECT_GT(static_cast<double>(s.primes().size()), needed);
}

// Property sweep: selection holds on sampled instances for larger N.
class SsfSampledTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SsfSampledTest, SampledSelection) {
  const auto [logN, k] = GetParam();
  const std::int64_t N = 1ll << logN;
  const Ssf s = Ssf::Construct(N, k);
  // Sample random k-subsets and check each element gets selected.
  Xoshiro256ss rng(static_cast<std::uint64_t>(logN * 131 + k));
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::int64_t> X;
    while (static_cast<int>(X.size()) < k) {
      const std::int64_t v =
          static_cast<std::int64_t>(rng.NextBelow(static_cast<std::uint64_t>(N))) + 1;
      if (std::find(X.begin(), X.end(), v) == X.end()) X.push_back(v);
    }
    for (const std::int64_t x : X) {
      bool selected = false;
      for (std::int64_t i = 0; i < s.size() && !selected; ++i) {
        if (!s.Member(i, x)) continue;
        bool alone = true;
        for (const std::int64_t y : X) {
          if (y != x && s.Member(i, y)) {
            alone = false;
            break;
          }
        }
        selected = alone;
      }
      EXPECT_TRUE(selected) << "N=" << N << " k=" << k << " x=" << x;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SsfSampledTest,
                         ::testing::Values(std::tuple{10, 4}, std::tuple{12, 6},
                                           std::tuple{14, 8},
                                           std::tuple{16, 12}));

}  // namespace
}  // namespace dcc::sel
