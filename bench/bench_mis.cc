// MIS substrate ablation — the paper's [34] stand-in (DESIGN.md §4.2).
//
// Reports LOCAL-round counts of the Linial pipeline (log*-shaped in the id
// space, plus the O(Delta^2)-color MIS sweep) and of the capped
// local-minima MIS (fast path used inside the sparsifier), on random
// bounded-degree graphs. Expected: Linial reduction rounds flat (log*),
// local-minima rounds small and flat; both outputs independent+maximal.
#include <iostream>

#include "dcc/common/rng.h"
#include "dcc/common/table.h"
#include "dcc/mis/linial.h"
#include "dcc/mis/local_mis.h"

namespace dcc {
namespace {

mis::LocalGraph RandomGraph(int n, int degree, std::uint64_t seed) {
  mis::LocalGraph g;
  g.adj.resize(static_cast<std::size_t>(n));
  Xoshiro256ss rng(seed);
  for (int e = 0; e < n * degree / 2; ++e) {
    const auto a = rng.NextBelow(static_cast<std::uint64_t>(n));
    const auto b = rng.NextBelow(static_cast<std::uint64_t>(n));
    if (a == b) continue;
    auto& na = g.adj[a];
    auto& nb = g.adj[b];
    if (na.size() >= static_cast<std::size_t>(degree) ||
        nb.size() >= static_cast<std::size_t>(degree)) {
      continue;
    }
    bool dup = false;
    for (const auto x : na) {
      if (x == b) dup = true;
    }
    if (dup) continue;
    na.push_back(b);
    nb.push_back(a);
  }
  return g;
}

void Run() {
  std::cout << "\n=== MIS substrate (stand-in for [34]) ===\n"
            << "expected shape: Linial reduction rounds ~log* N (flat); "
               "local-minima rounds small and flat\n\n";

  Table t({"n", "id-space", "deg", "linial-reduce", "mis-sweep",
           "total-linial", "local-minima", "both-valid"});
  for (const int logn : {8, 10, 12}) {
    const int n = 1 << logn;
    const int nodes = std::min(n, 2048);
    for (const int deg : {3, 5}) {
      const auto g = RandomGraph(nodes, deg,
                                 static_cast<std::uint64_t>(logn * 13 + deg));
      std::vector<std::int64_t> ids(g.size());
      for (std::size_t i = 0; i < g.size(); ++i) {
        ids[i] = static_cast<std::int64_t>(i) + 1;
      }
      const std::int64_t id_space = 4ll * n;

      std::vector<std::int64_t> colors(ids);
      for (auto& c : colors) --c;
      const auto red =
          mis::LinialColorReduction(g, colors, id_space, g.MaxDegree());
      const auto sweep = mis::MisFromColoring(g, red.colors, red.num_colors);
      const auto lm = mis::LocalMinimaMis(g, ids, 50);

      std::vector<bool> in_linial(g.size()), in_lm(g.size());
      for (std::size_t v = 0; v < g.size(); ++v) {
        in_linial[v] = sweep.in_mis[v];
        in_lm[v] = lm.state[v] == mis::MisState::kInMis;
      }
      const bool valid = g.IsIndependent(in_linial) &&
                         g.IsDominating(in_linial) &&
                         g.IsIndependent(in_lm) &&
                         (!lm.all_decided || g.IsDominating(in_lm));
      t.AddRow({Table::Num(std::int64_t{nodes}), Table::Num(id_space),
                Table::Num(std::int64_t{deg}),
                Table::Num(std::int64_t{red.local_rounds}),
                Table::Num(std::int64_t{sweep.local_rounds}),
                Table::Num(std::int64_t{red.local_rounds + sweep.local_rounds}),
                Table::Num(std::int64_t{lm.local_rounds}),
                valid ? "yes" : "NO"});
    }
  }
  t.Print(std::cout);
  std::cout << "\n(the mis-sweep column is the O(Delta^2)-colors pass — the "
               "reason the sparsifier uses the capped local-minima MIS; "
               "see profile.use_linial_mis)\n";
}

}  // namespace
}  // namespace dcc

int main() {
  dcc::Run();
  return 0;
}
