// Capped local-minima MIS: the fast deterministic MIS used inside the
// sparsification loops (profile option `use_linial_mis = false`).
//
// Each round, every undecided node that holds the minimum ID among the
// undecided nodes of its closed neighborhood joins the MIS; undecided
// neighbors of MIS nodes leave as "dominated". After `max_rounds` rounds
// remaining undecided nodes are left undecided (callers treat them as
// outside the MIS and not dominated).
//
// Properties: the joined set is always independent; domination is complete
// when the cap suffices (empirically a handful of rounds on geometric
// proximity graphs; worst case is a decreasing-ID path). The sparsification
// algorithms only need per-dense-area progress, which round 1 already
// provides (the locally minimal node of the neighborhood joins); see
// DESIGN.md §4.2 for why this substitution is safe and how validators guard
// it.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "dcc/common/types.h"
#include "dcc/mis/linial.h"

namespace dcc::mis {

enum class MisState : std::uint8_t { kUndecided, kInMis, kDominated };

// One node's local-minima round: `id`/`state` are the node's own, and
// `neighbors` are the (id, state) pairs it heard this round.
MisState LocalMinimaStep(NodeId id, MisState state,
                         std::span<const std::pair<NodeId, MisState>> neighbors);

struct PartialMisRun {
  std::vector<MisState> state;
  int local_rounds = 0;
  bool all_decided = false;
};

// Whole-graph runner with a round cap.
PartialMisRun LocalMinimaMis(const LocalGraph& g,
                             const std::vector<std::int64_t>& ids,
                             int max_rounds);

}  // namespace dcc::mis
