#include "dcc/sinr/engine.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dcc::sinr {
namespace {

Network LineNetwork(int n, double pitch, Params p = Params::Default()) {
  std::vector<Vec2> pts;
  for (int i = 0; i < n; ++i) pts.push_back({i * pitch, 0.0});
  return Network::WithSequentialIds(std::move(pts), p);
}

TEST(EngineTest, LoneTransmitterReachesRangeOne) {
  // Nodes at distances 0.5, 1.0 (exactly range), 1.01 (beyond).
  std::vector<Vec2> pts{{0, 0}, {0.5, 0}, {1.0, 0}, {1.01, 0}};
  const Network net = Network::WithSequentialIds(pts, Params::Default());
  const Engine eng(net);
  const auto recs = eng.Step({0}, {1, 2, 3});
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].listener, 1u);
  EXPECT_EQ(recs[1].listener, 2u);  // boundary d=1: SINR == beta exactly
}

TEST(EngineTest, SinrMatchesHandComputation) {
  // Transmitters at 0 and 2; listener at 0.5.
  std::vector<Vec2> pts{{0, 0}, {2.0, 0}, {0.5, 0}};
  const Network net = Network::WithSequentialIds(pts, Params::Default());
  const Engine eng(net);
  const Params& p = net.params();
  const double sig = p.power / std::pow(0.5, p.alpha);
  const double intf = p.power / std::pow(1.5, p.alpha);
  const double want = sig / (p.noise + intf);
  EXPECT_NEAR(eng.Sinr(0, 2, {0, 1}), want, 1e-12);
}

TEST(EngineTest, CollisionBlocksEquidistantListeners) {
  // Two transmitters equidistant from the listener: SINR ~ 1 < beta.
  std::vector<Vec2> pts{{-0.4, 0}, {0.4, 0}, {0, 0}};
  const Network net = Network::WithSequentialIds(pts, Params::Default());
  const Engine eng(net);
  const auto recs = eng.Step({0, 1}, {2});
  EXPECT_TRUE(recs.empty());
}

TEST(EngineTest, CaptureEffect) {
  // A much closer transmitter wins despite a far interferer.
  std::vector<Vec2> pts{{0, 0}, {5.0, 0}, {0.1, 0}};
  const Network net = Network::WithSequentialIds(pts, Params::Default());
  const Engine eng(net);
  const auto recs = eng.Step({0, 1}, {2});
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].sender, 0u);
}

TEST(EngineTest, AtMostOneSenderPerListener) {
  // beta > 1 means at most one transmitter can clear the threshold.
  const Network net = LineNetwork(10, 0.3);
  const Engine eng(net);
  const auto recs = eng.Step({0, 9}, {1, 2, 3, 4, 5, 6, 7, 8});
  std::vector<int> count(10, 0);
  for (const auto& r : recs) ++count[r.listener];
  for (const int c : count) EXPECT_LE(c, 1);
}

TEST(EngineTest, NoiseLimitsRange) {
  // Even alone, a transmitter cannot be heard past range 1.
  const Network net = LineNetwork(2, 1.5);
  const Engine eng(net);
  EXPECT_TRUE(eng.Step({0}, {1}).empty());
}

TEST(EngineTest, InterferenceAccumulates) {
  // Many transmitters at distance ~1 jam a reception that a single
  // interferer would not.
  std::vector<Vec2> pts;
  pts.push_back({0, 0});     // transmitter of interest
  pts.push_back({0.72, 0});  // listener (within comm radius 0.8)
  const int ring = 12;
  for (int i = 0; i < ring; ++i) {
    const double a = 2 * 3.14159265 * i / ring;
    pts.push_back({0.72 + 1.3 * std::cos(a), 1.3 * std::sin(a)});
  }
  const Network net = Network::WithSequentialIds(pts, Params::Default());
  const Engine eng(net);
  // Alone: received.
  EXPECT_EQ(eng.Step({0}, {1}).size(), 1u);
  // With the whole ring transmitting: blocked.
  std::vector<std::size_t> tx{0};
  for (int i = 0; i < ring; ++i) tx.push_back(2 + static_cast<std::size_t>(i));
  EXPECT_TRUE(eng.Step(tx, {1}).empty());
}

TEST(EngineTest, InterferenceAtMatchesSum) {
  const Network net = LineNetwork(4, 0.5);
  const Engine eng(net);
  const double want = net.Gain(0, 3) + net.Gain(1, 3) + net.Gain(2, 3);
  EXPECT_NEAR(eng.InterferenceAt(3, {0, 1, 2}), want, 1e-12);
}

TEST(EngineTest, StatsAccumulate) {
  const Network net = LineNetwork(4, 0.5);
  Engine eng(net);
  eng.Step({0}, {1, 2, 3});
  eng.Step({0, 1}, {2, 3});
  EXPECT_EQ(eng.stats().rounds, 2);
  EXPECT_EQ(eng.stats().transmissions, 3);
  EXPECT_GT(eng.stats().receptions, 0);
  eng.ResetStats();
  EXPECT_EQ(eng.stats().rounds, 0);
}

TEST(EngineTest, SinrRequiresSenderInSet) {
  const Network net = LineNetwork(3, 0.5);
  const Engine eng(net);
  EXPECT_THROW(eng.Sinr(0, 1, {2}), InvalidArgument);
}

}  // namespace
}  // namespace dcc::sinr
