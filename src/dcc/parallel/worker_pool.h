// A persistent work-stealing pool for data-parallel fan-out: Run(n, fn)
// executes fn(0..n-1) across the pool's threads plus the calling thread,
// blocking until every job finished. One process-wide pool
// (`WorkerPool::Shared()`, sized once to the hardware concurrency) backs
// both the scenario sweep loop and the engine's sharded rounds, so neither
// pays thread creation or teardown per call.
//
// Scheduling model (work stealing):
//  * Every fan-out is a heap-allocated task with an atomic job dispenser;
//    participation is advertised through *tickets* (pointers to the task).
//    A top-level Run pushes its tickets onto a shared injection queue; a
//    nested Run — a job fanning out again — pushes them onto the calling
//    worker's own bottom-growing deque and keeps draining jobs itself, so
//    nesting never blocks and never degrades to a serial loop.
//  * Idle workers first pop their own deque (newest first), then take from
//    the injection queue, then steal the *oldest* ticket from another
//    worker's deque. Stealing oldest-first is what lets the tail of a
//    sweep donate idle workers to the last runs' engine shards (and to
//    pipelined round prologues submitted via Submit()).
//  * A ticket is a hint, not an obligation: the dispenser hands each job
//    index out exactly once, so a stale ticket for a completed task is a
//    cheap no-op. Tasks are reference-counted (caller + one ref per
//    ticket) and freed when the last ticket drains.
//
// Semantics:
//  * Jobs are independent; the pool guarantees nothing about which thread
//    runs which job, so callers needing determinism must make each job a
//    pure function of its index (the engine's shard workers are).
//  * The first exception thrown by a job is captured and rethrown from Run
//    after all jobs drain; later exceptions are dropped.
//  * Run establishes a full happens-before edge: everything jobs wrote is
//    visible to the caller when Run returns.
//  * Submit() schedules a single closure for asynchronous execution by an
//    idle worker; TaskHandle::Wait() runs it inline when no worker picked
//    it up, so a 0-worker pool degrades gracefully.
//
// `DCC_POOL_WORKERS` overrides Shared()'s worker-thread count (strict
// parse, [0, 4096]; parallelism() == workers + 1). Useful to exercise the
// thread ladder on hosts whose hardware_concurrency is 1.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dcc::parallel {

class WorkerPool {
 public:
  struct Task;

  // Spawns `workers` threads. The calling thread of Run also executes jobs,
  // so parallelism() == workers + 1; workers == 0 is a valid (serial) pool.
  explicit WorkerPool(int workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // The process-wide pool, sized once on first use to
  // hardware_concurrency() - 1 workers (never negative) unless
  // DCC_POOL_WORKERS overrides it. Lives for the process; intentionally
  // leaked so late static destructors can still call into it.
  static WorkerPool& Shared();

  // Max threads a Run can occupy (pool workers + the caller).
  int parallelism() const { return n_workers_ + 1; }

  // Runs fn(i) for i in [0, n_jobs), returning when all completed. At most
  // max_workers threads participate (0 = no cap beyond parallelism());
  // max_workers == 1, a 0-worker pool, and n_jobs <= 1 run the loop inline
  // on the caller. Nested calls fan out through the caller's deque (see
  // header comment) instead of going inline.
  //
  // Returns the number of pool threads that joined this fan-out by
  // stealing one of its tickets from another worker's deque. Only nested
  // Runs publish deque tickets, so a top-level Run always returns 0 —
  // helpers arriving through the injection queue are normal staffing, not
  // steals — which keeps the count deterministic for top-level callers.
  int Run(std::size_t n_jobs, const std::function<void(std::size_t)>& fn,
          int max_workers = 0);

  // Handle for a closure scheduled with Submit(). Wait() blocks until the
  // closure ran, executing it inline on the waiter when no worker claimed
  // it first, and rethrows any exception it threw. The destructor waits
  // too (swallowing errors) — call Wait() to observe them.
  class TaskHandle {
   public:
    TaskHandle() = default;
    TaskHandle(TaskHandle&& o) noexcept : task_(o.task_) { o.task_ = nullptr; }
    TaskHandle& operator=(TaskHandle&& o) noexcept;
    ~TaskHandle();

    TaskHandle(const TaskHandle&) = delete;
    TaskHandle& operator=(const TaskHandle&) = delete;

    bool valid() const { return task_ != nullptr; }
    // Returns true when another thread executed the closure (the overlap
    // actually happened), false when the waiter ran it inline just now.
    // Invalidates the handle.
    bool Wait();

   private:
    friend class WorkerPool;
    explicit TaskHandle(Task* t) : task_(t) {}
    Task* task_ = nullptr;
  };

  // Schedules fn to run on an idle worker (one ticket: local deque when
  // called from a worker, injection queue otherwise). The closure runs at
  // most once; if no worker picks it up, TaskHandle::Wait() runs it
  // inline.
  TaskHandle Submit(std::function<void()> fn);

  // True while the calling thread is executing a job of this pool.
  bool OnWorkerThread() const;

  // Cumulative deque steals across the pool's lifetime (tickets taken from
  // another worker's local deque; injection-queue pickups don't count).
  std::uint64_t steal_count() const {
    return steal_count_.load(std::memory_order_relaxed);
  }

 private:
  // Bounded Chase-Lev-style deque of task tickets. The owning worker
  // pushes and pops at the bottom; thieves take from the top. All slot
  // accesses are atomic (a thief may read a slot it then fails to claim),
  // and a full deque overflows to the injection queue instead of
  // resizing.
  class Deque {
   public:
    // Owner only. False when full.
    bool TryPush(Task* t) {
      const std::int64_t b = bottom_.load(std::memory_order_relaxed);
      const std::int64_t top = top_.load(std::memory_order_acquire);
      if (b - top >= kCap) return false;
      slots_[static_cast<std::size_t>(b & kMask)].store(
          t, std::memory_order_relaxed);
      bottom_.store(b + 1, std::memory_order_release);
      return true;
    }

    // Owner only.
    Task* PopBottom() {
      const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
      bottom_.store(b, std::memory_order_seq_cst);
      std::int64_t top = top_.load(std::memory_order_seq_cst);
      if (top > b) {  // empty
        bottom_.store(b + 1, std::memory_order_relaxed);
        return nullptr;
      }
      Task* t =
          slots_[static_cast<std::size_t>(b & kMask)].load(
              std::memory_order_relaxed);
      if (top != b) return t;  // more than one element: no thief can race us
      // Last element: race thieves for it through the top index.
      if (!top_.compare_exchange_strong(top, top + 1,
                                        std::memory_order_seq_cst)) {
        t = nullptr;  // a thief won
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
      return t;
    }

    // Any thread. Takes the oldest ticket; nullptr when empty or when the
    // claim raced (callers just move on to the next victim).
    Task* Steal() {
      std::int64_t top = top_.load(std::memory_order_seq_cst);
      const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
      if (top >= b) return nullptr;
      Task* t =
          slots_[static_cast<std::size_t>(top & kMask)].load(
              std::memory_order_relaxed);
      if (!top_.compare_exchange_strong(top, top + 1,
                                        std::memory_order_seq_cst)) {
        return nullptr;
      }
      return t;
    }

   private:
    static constexpr std::int64_t kCap = 256;  // power of two
    static constexpr std::int64_t kMask = kCap - 1;
    std::atomic<std::int64_t> top_{0};
    std::atomic<std::int64_t> bottom_{0};
    std::array<std::atomic<Task*>, static_cast<std::size_t>(kCap)> slots_{};
  };

  void WorkerLoop(int self);
  // Makes `count` tickets for `task` visible to other threads (local deque
  // for workers, injection queue otherwise) and wakes sleepers.
  void PublishTickets(Task* task, int count);
  // Pops and releases completed-task tickets from the bottom of `d`,
  // stopping at the first live one. Owner only; keeps a worker's deque
  // from accumulating stale tickets across many nested Runs.
  void CollectStaleTickets(Deque& d);
  // Takes one ticket: own deque, then injection queue, then steal.
  Task* FindWork(int self, bool* stolen);
  // Contributes to `task` until its dispenser is exhausted, then drops the
  // ticket's reference.
  void JoinTask(Task* task, bool stolen);
  // Executes job `i`, capturing the first exception into the task.
  void RunJob(Task& task, std::size_t i);
  static void ReleaseRef(Task* t);

  // Fixed before any worker spawns: workers consult the count while the
  // constructor is still growing `threads_`, so they must never read the
  // vector itself.
  int n_workers_ = 0;
  std::vector<std::thread> threads_;
  std::unique_ptr<Deque[]> deques_;  // one per worker thread

  std::mutex inj_mu_;
  std::deque<Task*> injection_;  // tickets from non-worker threads; FIFO

  // Sleep/wake: workers re-scan when the signal moved since their last
  // failed scan, so a publish between scan and sleep is never missed.
  std::atomic<std::uint64_t> work_signal_{0};
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  bool stop_ = false;  // guarded by idle_mu_

  std::atomic<std::uint64_t> steal_count_{0};
};

}  // namespace dcc::parallel
