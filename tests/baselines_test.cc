// Baseline algorithms: correctness of the comparators used by Tables 1-2.
#include <gtest/gtest.h>

#include "dcc/baselines/decay_global.h"
#include "dcc/baselines/grid_tdma.h"
#include "dcc/baselines/rand_local.h"
#include "dcc/baselines/tdma.h"
#include "dcc/cluster/validate.h"
#include "dcc/workload/generators.h"

namespace dcc::baselines {
namespace {

sinr::Params TestParams() {
  sinr::Params p = sinr::Params::Default();
  p.id_space = 1 << 10;
  return p;
}

std::vector<std::size_t> AllIndices(const sinr::Network& net) {
  std::vector<std::size_t> all(net.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return all;
}

TEST(RandLocalTest, KnownDeltaCoversUniformField) {
  const auto params = TestParams();
  auto pts = workload::UniformSquare(80, 4.0, 5);
  const auto net = workload::MakeNetwork(pts, params, 3);
  const auto all = AllIndices(net);
  const int delta = cluster::SubsetDensity(net, all);
  sim::Exec ex(net);
  const auto res = RandLocalBroadcastKnown(ex, all, delta, 1.0, 24.0, 42);
  EXPECT_TRUE(res.covered) << res.covered_nodes << "/" << res.members;
  EXPECT_LE(res.rounds_to_cover, res.rounds_budget);
}

TEST(RandLocalTest, UnknownDeltaDoublingCovers) {
  const auto params = TestParams();
  auto pts = workload::UniformSquare(64, 4.0, 9);
  const auto net = workload::MakeNetwork(pts, params, 7);
  const auto all = AllIndices(net);
  const int delta = cluster::SubsetDensity(net, all);
  sim::Exec ex(net);
  const auto res = RandLocalBroadcastUnknown(ex, all, delta * 2, 1.0, 24.0, 7);
  EXPECT_TRUE(res.covered);
}

TEST(RandLocalTest, DifferentSeedsDifferentRounds) {
  const auto params = TestParams();
  auto pts = workload::UniformSquare(48, 3.0, 4);
  const auto net = workload::MakeNetwork(pts, params, 5);
  const auto all = AllIndices(net);
  sim::Exec ex1(net), ex2(net);
  const auto a = RandLocalBroadcastKnown(ex1, all, 10, 1.0, 24.0, 1);
  const auto b = RandLocalBroadcastKnown(ex2, all, 10, 1.0, 24.0, 2);
  // Randomized: completion rounds almost surely differ across seeds.
  EXPECT_NE(a.rounds_to_cover, b.rounds_to_cover);
}

TEST(DecayGlobalTest, ReachesWholeConnectedNetwork) {
  const auto params = TestParams();
  auto pts = workload::ConnectedUniform(64, 4.0, params, 11);
  const auto net = workload::MakeNetwork(pts, params, 13);
  sim::Exec ex(net);
  const auto res =
      DecayGlobalBroadcast(ex, 0, net.Density(), 200000, 3);
  EXPECT_TRUE(res.all_awake) << res.awake << "/" << net.size();
  EXPECT_EQ(res.awake_at[0], 0);
}

TEST(DecayGlobalTest, WakeTimesMonotoneInHops) {
  const auto params = TestParams();
  auto pts = workload::Line(16, 0.7, 8);
  const auto net = workload::MakeNetwork(pts, params, 17);
  sim::Exec ex(net);
  const auto res = DecayGlobalBroadcast(ex, 0, net.Density(), 200000, 5);
  ASSERT_TRUE(res.all_awake);
  // The far end must wake after the near end (sanity of propagation).
  EXPECT_GT(res.awake_at[15], res.awake_at[1]);
}

TEST(TdmaTest, LocalBroadcastAlwaysCompletesInNRounds) {
  const auto params = TestParams();
  auto pts = workload::UniformSquare(48, 3.0, 21);
  const auto net = workload::MakeNetwork(pts, params, 19);
  const auto all = AllIndices(net);
  sim::Exec ex(net);
  const auto res = TdmaLocalBroadcast(ex, all);
  EXPECT_TRUE(res.complete);
  EXPECT_EQ(res.rounds, params.id_space);  // exactly N rounds, no collisions
}

TEST(TdmaTest, GlobalBroadcastTakesDSweeps) {
  const auto params = TestParams();
  auto pts = workload::Line(12, 0.7, 2);
  const auto net = workload::MakeNetwork(pts, params, 23);
  sim::Exec ex(net);
  const auto res = TdmaGlobalBroadcast(ex, 0, net.Diameter() + 2);
  EXPECT_TRUE(res.complete);
  // At least one full N-round sweep, at most ~D of them. (Within a sweep a
  // message can travel several hops when slot order cooperates, and
  // reception range 1.0 exceeds the comm radius, so D-1 sweeps is not a
  // lower bound.)
  EXPECT_GE(res.rounds, params.id_space);
  EXPECT_LE(res.rounds, params.id_space * (net.Diameter() + 2));
}

TEST(GridTdmaTest, CoversWithLocationKnowledge) {
  const auto params = TestParams();
  auto pts = workload::UniformSquare(96, 4.0, 31);
  const auto net = workload::MakeNetwork(pts, params, 29);
  const auto all = AllIndices(net);
  sim::Exec ex(net);
  const auto res = GridTdmaLocalBroadcast(ex, all, 6);
  EXPECT_TRUE(res.covered) << res.covered_nodes << "/" << res.members;
  // Rounds = s^2 * occupancy, linear in density, independent of N.
  EXPECT_EQ(res.rounds,
            static_cast<Round>(res.cell_colors) * res.max_occupancy);
}

TEST(GridTdmaTest, RoundsScaleWithDensityNotIdSpace) {
  sinr::Params params = TestParams();
  params.id_space = 1 << 20;  // huge id space: must not matter
  auto pts = workload::UniformSquare(64, 4.0, 7);
  const auto net = workload::MakeNetwork(pts, params, 5);
  const auto all = AllIndices(net);
  sim::Exec ex(net);
  const auto res = GridTdmaLocalBroadcast(ex, all, 6);
  EXPECT_TRUE(res.covered);
  EXPECT_LT(res.rounds, 2000);  // nowhere near N = 2^20
}

TEST(GridTdmaTest, PeriodTooSmallRejected) {
  const auto params = TestParams();
  auto pts = workload::UniformSquare(16, 3.0, 2);
  const auto net = workload::MakeNetwork(pts, params, 3);
  sim::Exec ex(net);
  EXPECT_THROW(GridTdmaLocalBroadcast(ex, AllIndices(net), 2),
               InvalidArgument);
}

}  // namespace
}  // namespace dcc::baselines
