#include "dcc/sel/verify.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

namespace dcc::sel {

namespace {

// Draws `count` distinct values from [1, N] excluding `exclude` (may be
// empty). Assumes count << N.
std::vector<std::int64_t> SampleDistinct(
    Xoshiro256ss& rng, std::int64_t N, int count,
    const std::unordered_set<std::int64_t>& exclude) {
  std::unordered_set<std::int64_t> got;
  std::vector<std::int64_t> out;
  while (static_cast<int>(out.size()) < count) {
    const std::int64_t v = static_cast<std::int64_t>(rng.NextBelow(
                               static_cast<std::uint64_t>(N))) + 1;
    if (exclude.count(v) || got.count(v)) continue;
    got.insert(v);
    out.push_back(v);
  }
  return out;
}

}  // namespace

VerifyResult VerifySsfExhaustive(const Ssf& s) {
  DCC_REQUIRE(s.N() <= 20, "VerifySsfExhaustive: N too large");
  const int n = static_cast<int>(s.N());
  const int k = s.k();
  VerifyResult res;

  // Enumerate all non-empty X with |X| <= k via bitmask popcount filter.
  const std::uint32_t limit = (n >= 31) ? ~0u : ((1u << n) - 1);
  for (std::uint32_t X = 1; X <= limit && X != 0; ++X) {
    if (__builtin_popcount(X) > k) continue;
    for (int xi = 0; xi < n; ++xi) {
      if (!((X >> xi) & 1)) continue;
      const std::int64_t x = xi + 1;
      ++res.trials;
      bool selected = false;
      for (std::int64_t i = 0; i < s.size() && !selected; ++i) {
        if (!s.Member(i, x)) continue;
        bool alone = true;
        for (int yi = 0; yi < n && alone; ++yi) {
          if (yi == xi || !((X >> yi) & 1)) continue;
          if (s.Member(i, yi + 1)) alone = false;
        }
        selected = alone;
      }
      if (!selected) ++res.failures;
    }
  }
  return res;
}

VerifyResult VerifyWssSampled(const Wss& w, std::int64_t trials,
                              std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  VerifyResult res;
  const std::int64_t N = w.N();
  const int k = w.k();
  DCC_REQUIRE(N > k, "VerifyWssSampled: need N > k");
  for (std::int64_t t = 0; t < trials; ++t) {
    const auto X = SampleDistinct(rng, N, k, {});
    const std::unordered_set<std::int64_t> Xset(X.begin(), X.end());
    const std::int64_t x = X[rng.NextBelow(X.size())];
    const auto ys = SampleDistinct(rng, N, 1, Xset);
    const std::int64_t y = ys[0];
    ++res.trials;
    bool ok = false;
    for (std::int64_t i = 0; i < w.size() && !ok; ++i) {
      if (!w.Member(i, x) || !w.Member(i, y)) continue;
      bool alone = true;
      for (const std::int64_t z : X) {
        if (z != x && w.Member(i, z)) {
          alone = false;
          break;
        }
      }
      ok = alone;
    }
    if (!ok) ++res.failures;
  }
  return res;
}

VerifyResult VerifyWcssSampled(const Wcss& w, std::int64_t trials,
                               std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  VerifyResult res;
  const std::int64_t N = w.N();
  const int k = w.k();
  const int l = w.l();
  DCC_REQUIRE(N > k && N > l + 1, "VerifyWcssSampled: N too small");
  for (std::int64_t t = 0; t < trials; ++t) {
    // Cluster phi plus a conflict set C of l other clusters.
    const auto clusters = SampleDistinct(rng, N, l + 1, {});
    const ClusterId phi = clusters[0];
    const std::vector<std::int64_t> C(clusters.begin() + 1, clusters.end());
    // X: k member ids within phi; y: one more id in phi outside X.
    const auto members = SampleDistinct(rng, N, k + 1, {});
    const std::vector<std::int64_t> X(members.begin(), members.begin() + k);
    const std::int64_t x = X[rng.NextBelow(X.size())];
    const std::int64_t y = members[static_cast<std::size_t>(k)];
    ++res.trials;
    bool ok = false;
    for (std::int64_t i = 0; i < w.size() && !ok; ++i) {
      if (!w.Member(i, x, phi) || !w.Member(i, y, phi)) continue;
      bool alone = true;
      for (const std::int64_t z : X) {
        if (z != x && w.Member(i, z, phi)) {
          alone = false;
          break;
        }
      }
      if (!alone) continue;
      // The round must be free of all conflict clusters: a cluster is
      // "present" in a round if it is allowed (any of its pairs could be
      // scheduled), so freeness means the cluster coin missed.
      bool free = true;
      for (const std::int64_t cphi : C) {
        if (w.ClusterAllowed(i, cphi)) {
          free = false;
          break;
        }
      }
      ok = free;
    }
    if (!ok) ++res.failures;
  }
  return res;
}

}  // namespace dcc::sel
