// A wireless network instance: node positions + IDs + SINR parameters,
// with derived structure (communication graph, density, diameter).
//
// Internally nodes are indexed 0..n-1 for the simulator; protocol code must
// operate on NodeIds only (the paper's knowledge model). The Network owns
// the id<->index mapping.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "dcc/common/geometry.h"
#include "dcc/common/types.h"
#include "dcc/sinr/params.h"
#include "dcc/sinr/propagation.h"

namespace dcc::sinr {

// Optional deterministic shadowing: per-link multiplicative gain
// perturbation, log-uniform in [1/(1+spread), 1+spread], seeded and
// symmetric. Models the idealized-SINR / real-radio gap (obstacles,
// antenna variation) while keeping runs reproducible. spread = 0 disables.
// (Convenience wrapper over LogUniformShadowingModel; pass a model directly
// for anything beyond that.)
struct Shadowing {
  double spread = 0.0;
  std::uint64_t seed = 0;
};

class Network {
 public:
  // IDs must be unique and within [1, params.id_space]; positions and ids
  // must have equal length.
  Network(std::vector<Vec2> positions, std::vector<NodeId> ids, Params params,
          Shadowing shadowing = {});

  // Same, with an explicit propagation model (must be non-null).
  Network(std::vector<Vec2> positions, std::vector<NodeId> ids, Params params,
          std::shared_ptr<const PropagationModel> model);

  // Assigns IDs 1..n in position order (convenience for tests/workloads).
  static Network WithSequentialIds(std::vector<Vec2> positions, Params params);

  std::size_t size() const { return pos_.size(); }

  // --- Dynamic topologies: in-place position updates. ---
  // Mobility mutates positions between protocol epochs; node count and ids
  // are fixed (churn is an *activity* notion layered above — see
  // scenario/dynamics.h). Both calls refresh the dense gain matrix where
  // present and invalidate the lazy communication graph.

  // Replaces every position; pts.size() must equal size(). O(n^2) while the
  // dense gain matrix is live (n <= kGainMatrixLimit), O(n) beyond.
  void SetPositions(std::span<const Vec2> pts);

  // Moves one node (churn respawns). O(n) with the dense gain matrix
  // (refreshes row and column i), O(1) beyond.
  void SetPosition(std::size_t i, Vec2 p);

  // Bumped on every SetPositions/SetPosition. Consumers holding position
  // snapshots (the engine's pipelined round prologues) record this value
  // and discard the snapshot when it moved.
  std::uint64_t generation() const { return generation_; }

  const Params& params() const { return params_; }
  const std::vector<Vec2>& positions() const { return pos_; }
  Vec2 position(std::size_t i) const { return pos_[i]; }
  NodeId id(std::size_t i) const { return ids_[i]; }
  const std::vector<NodeId>& ids() const { return ids_; }

  // Index of a node by ID; throws if unknown.
  std::size_t IndexOf(NodeId id) const;
  bool HasId(NodeId id) const { return index_of_.count(id) > 0; }

  double Distance(std::size_t i, std::size_t j) const {
    return Dist(pos_[i], pos_[j]);
  }

  // Received power at j of a transmission from i, as defined by the
  // propagation model (P / d(i,j)^alpha for the default path-loss model).
  // Precomputed into a dense matrix for n <= kGainMatrixLimit, otherwise
  // computed on the fly.
  double Gain(std::size_t i, std::size_t j) const {
    if (!gain_.empty()) return gain_[i * pos_.size() + j];
    return ComputeGain(i, j);
  }

  // The propagation model gains are computed under.
  const PropagationModel& propagation() const { return *model_; }

  // --- Communication graph: edges {u,v} with d(u,v) <= 1 - eps. ---
  const std::vector<std::vector<std::size_t>>& CommGraph() const;

  // Degree of the communication graph (max over nodes).
  int MaxDegree() const;

  // Density Gamma: max number of nodes in a node-centered unit ball
  // (see geometry.h for the node-centered convention).
  int Density() const;

  // BFS hop distances in the communication graph from `src` (index);
  // unreachable nodes get -1.
  std::vector<int> HopDistances(std::size_t src) const;

  // Diameter of the communication graph (max finite BFS eccentricity from
  // node 0's component); -1 if the graph is empty.
  int Diameter() const;

  // True iff the communication graph is connected.
  bool Connected() const;

  static constexpr std::size_t kGainMatrixLimit = 2048;

 private:
  double ComputeGain(std::size_t i, std::size_t j) const;

  std::uint64_t generation_ = 0;
  std::vector<Vec2> pos_;
  std::vector<NodeId> ids_;
  Params params_;
  std::shared_ptr<const PropagationModel> model_;
  std::unordered_map<NodeId, std::size_t> index_of_;
  std::vector<double> gain_;  // dense n*n when n <= kGainMatrixLimit
  mutable std::vector<std::vector<std::size_t>> comm_graph_;  // lazy
};

}  // namespace dcc::sinr
