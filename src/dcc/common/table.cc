#include "dcc/common/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "dcc/common/types.h"

namespace dcc {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  DCC_REQUIRE(!headers_.empty(), "Table: need at least one column");
}

void Table::AddRow(std::vector<std::string> cells) {
  DCC_REQUIRE(cells.size() == headers_.size(),
              "Table::AddRow: cell count must match header count");
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

std::string Table::Num(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

void Table::Print(std::ostream& os, int indent) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  auto print_row = [&](const std::vector<std::string>& row) {
    os << pad;
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(width[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };
  print_row(headers_);
  os << pad;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c], '-') << "  ";
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace dcc
