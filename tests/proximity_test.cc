// Lemma 7: ProximityGraphConstruction yields a constant-degree graph
// containing every close pair (Definition 1), in O(log N) rounds.
#include "dcc/cluster/proximity.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "dcc/cluster/validate.h"
#include "dcc/workload/generators.h"

namespace dcc::cluster {
namespace {

struct Built {
  ProximityResult prox;
  std::vector<sim::Participant> parts;
  Round rounds;
};

Built Build(const sinr::Network& net, const Profile& prof,
            const std::vector<std::size_t>& members,
            const std::vector<ClusterId>& cluster_of, bool clustered,
            std::uint64_t nonce) {
  sim::Exec ex(net);
  Built b;
  for (const std::size_t idx : members) {
    b.parts.push_back({idx, net.id(idx),
                       clustered ? cluster_of[idx] : kNoCluster});
  }
  b.prox = BuildProximityGraph(ex, prof, b.parts, clustered, nonce);
  b.rounds = ex.rounds();
  return b;
}

bool HasEdge(const Built& b, std::size_t idx_u, std::size_t idx_w) {
  for (std::size_t p = 0; p < b.parts.size(); ++p) {
    if (b.parts[p].index != idx_u) continue;
    for (const std::size_t q : b.prox.adj[p]) {
      if (b.parts[q].index == idx_w) return true;
    }
  }
  return false;
}

TEST(ProximityTest, TwoIsolatedNodesBecomeNeighbors) {
  sinr::Params params = sinr::Params::Default();
  params.id_space = 1 << 10;
  std::vector<Vec2> pts{{0, 0}, {0.1, 0}};
  const auto net = workload::MakeNetwork(pts, params, 1);
  const auto prof = Profile::Practical(params.id_space);
  std::vector<ClusterId> cl(net.size(), kNoCluster);
  const auto b = Build(net, prof, {0, 1}, cl, false, 1);
  EXPECT_TRUE(HasEdge(b, 0, 1));
  EXPECT_TRUE(HasEdge(b, 1, 0));
}

TEST(ProximityTest, UnclusteredClosePairsCovered) {
  sinr::Params params = sinr::Params::Default();
  params.id_space = 1 << 12;
  auto pts = workload::UniformSquare(96, 6.0, 11);
  const auto net = workload::MakeNetwork(pts, params, 2);
  const auto prof = Profile::Practical(params.id_space);
  std::vector<std::size_t> all(net.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  std::vector<ClusterId> one(net.size(), 1);

  const int gamma = SubsetDensity(net, all);
  const auto close = FindClosePairs(net, all, one, gamma, 1.0);
  ASSERT_FALSE(close.empty());  // dense areas must produce close pairs

  const auto b = Build(net, prof, all, one, false, 7);
  for (const auto& [u, w] : close) {
    EXPECT_TRUE(HasEdge(b, u, w))
        << "close pair (" << u << "," << w << ") d=" << net.Distance(u, w)
        << " missing from proximity graph";
  }
}

TEST(ProximityTest, DegreeBoundedByKappa) {
  sinr::Params params = sinr::Params::Default();
  params.id_space = 1 << 12;
  auto pts = workload::UniformSquare(128, 5.0, 3);
  const auto net = workload::MakeNetwork(pts, params, 9);
  const auto prof = Profile::Practical(params.id_space);
  std::vector<std::size_t> all(net.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  std::vector<ClusterId> one(net.size(), 1);
  const auto b = Build(net, prof, all, one, false, 3);
  for (const auto& adj : b.prox.adj) {
    EXPECT_LE(static_cast<int>(adj.size()), prof.kappa);
  }
}

TEST(ProximityTest, AdjacencyIsSymmetric) {
  sinr::Params params = sinr::Params::Default();
  params.id_space = 1 << 12;
  auto pts = workload::UniformSquare(80, 5.0, 21);
  const auto net = workload::MakeNetwork(pts, params, 4);
  const auto prof = Profile::Practical(params.id_space);
  std::vector<std::size_t> all(net.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  std::vector<ClusterId> one(net.size(), 1);
  const auto b = Build(net, prof, all, one, false, 5);
  for (std::size_t p = 0; p < b.prox.adj.size(); ++p) {
    for (const std::size_t q : b.prox.adj[p]) {
      EXPECT_TRUE(std::binary_search(b.prox.adj[q].begin(),
                                     b.prox.adj[q].end(), p));
    }
  }
}

TEST(ProximityTest, ClusteredModeKeepsEdgesIntraCluster) {
  sinr::Params params = sinr::Params::Default();
  params.id_space = 1 << 12;
  // Two dense clumps 0.6 apart; distinct clusters.
  std::vector<Vec2> pts;
  for (int i = 0; i < 12; ++i) pts.push_back({0.02 * i, 0.0});
  for (int i = 0; i < 12; ++i) pts.push_back({0.6 + 0.02 * i, 0.3});
  const auto net = workload::MakeNetwork(pts, params, 8);
  const auto prof = Profile::Practical(params.id_space);
  std::vector<std::size_t> all(net.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  std::vector<ClusterId> cl(net.size());
  for (std::size_t i = 0; i < 12; ++i) cl[i] = net.id(0);
  for (std::size_t i = 12; i < 24; ++i) cl[i] = net.id(12);

  const auto b = Build(net, prof, all, cl, true, 6);
  int edges = 0;
  for (std::size_t p = 0; p < b.prox.adj.size(); ++p) {
    for (const std::size_t q : b.prox.adj[p]) {
      EXPECT_EQ(cl[b.parts[p].index], cl[b.parts[q].index]);
      ++edges;
    }
  }
  EXPECT_GT(edges, 0);
  // Each dense cluster must contain at least one close-pair edge (Lemma 1).
  const auto close = FindClosePairs(net, all, cl, 12, 1.0);
  EXPECT_FALSE(close.empty());
  for (const auto& [u, w] : close) {
    EXPECT_TRUE(HasEdge(b, u, w));
  }
}

TEST(ProximityTest, RoundsLogarithmic) {
  sinr::Params params = sinr::Params::Default();
  params.id_space = 1 << 12;
  auto pts = workload::UniformSquare(32, 4.0, 2);
  const auto net = workload::MakeNetwork(pts, params, 3);
  const auto prof = Profile::Practical(params.id_space);
  std::vector<std::size_t> all(net.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  std::vector<ClusterId> one(net.size(), 1);
  const auto b = Build(net, prof, all, one, false, 9);
  // (kappa + 1) schedule executions.
  EXPECT_EQ(b.rounds, (prof.kappa + 1) * prof.WssLen(params.id_space));
}

class ProximitySweep
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(ProximitySweep, ClosePairCoverageAcrossDensities) {
  const auto [n, side, seed] = GetParam();
  sinr::Params params = sinr::Params::Default();
  params.id_space = 1 << 12;
  auto pts = workload::UniformSquare(n, side, static_cast<std::uint64_t>(seed));
  const auto net =
      workload::MakeNetwork(pts, params, static_cast<std::uint64_t>(seed) + 7);
  const auto prof = Profile::Practical(params.id_space);
  std::vector<std::size_t> all(net.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  std::vector<ClusterId> one(net.size(), 1);
  const int gamma = SubsetDensity(net, all);
  const auto close = FindClosePairs(net, all, one, gamma, 1.0);
  const auto b = Build(net, prof, all, one, false,
                       static_cast<std::uint64_t>(seed) * 31);
  for (const auto& [u, w] : close) {
    EXPECT_TRUE(HasEdge(b, u, w)) << "n=" << n << " side=" << side;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ProximitySweep,
    ::testing::Values(std::tuple{48, 5.0, 1}, std::tuple{96, 5.0, 2},
                      std::tuple{96, 8.0, 3}, std::tuple{144, 6.0, 4}));

}  // namespace
}  // namespace dcc::cluster
