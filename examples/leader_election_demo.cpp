// Leader election + wake-up demo (Theorems 4-5): an ad hoc deployment
// where a few sensors power on spontaneously, wake the whole field, and
// the field then elects a single leader — all deterministic, no
// coordinates, no carrier sensing.
//
//   $ ./examples/leader_election_demo [n] [seed]
#include <cstdlib>
#include <iostream>

#include "dcc/bcast/leader_election.h"
#include "dcc/bcast/wakeup.h"
#include "dcc/workload/generators.h"

int main(int argc, char** argv) {
  using namespace dcc;

  const int n = argc > 1 ? std::atoi(argv[1]) : 80;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5;

  sinr::Params params = sinr::Params::Default();
  params.id_space = 1 << 12;

  auto pts = workload::ConnectedUniform(n, 4.5, params, seed);
  const sinr::Network net = workload::MakeNetwork(pts, params, seed + 1);
  const auto prof = cluster::Profile::Practical(params.id_space);
  std::cout << "deployment: " << net.size() << " nodes, density "
            << net.Density() << ", diameter " << net.Diameter() << "\n\n";

  // --- Wake-up (Theorem 4): three nodes power on by themselves. ---
  {
    sim::Exec ex(net);
    const auto wk = bcast::RunWakeup(
        ex, prof,
        {{0, 0}, {net.size() / 2, 0}, {net.size() - 1, 0}},
        net.Density(), net.Diameter() + 3, seed + 2);
    std::cout << "wake-up: " << (wk.all_awake ? "all awake" : "INCOMPLETE")
              << " after " << wk.rounds << " rounds (" << wk.epochs
              << " epoch(s))\n";
  }

  // --- Leader election (Theorem 5). ---
  {
    std::vector<std::size_t> members(net.size());
    for (std::size_t i = 0; i < members.size(); ++i) members[i] = i;
    sim::Exec ex(net);
    const auto le = bcast::ElectLeader(ex, prof, members, net.Density(),
                                       net.Diameter() + 3, seed + 3);
    std::cout << "leader election: leader id " << le.leader << " ("
              << (le.agreed ? "network-wide agreement" : "DISAGREEMENT")
              << "), " << le.probes << " binary-search probes, " << le.rounds
              << " rounds\n";
    std::cout << "\nThe leader is the minimum-id cluster center: clustering"
                 "\npicks O(1)-density centers, and each binary-search probe"
                 "\nruns one multi-source broadcast (Alg. 8) so every node"
                 "\nobserves the same empty/non-empty bit.\n";
    return le.agreed ? 0 : 1;
  }
}
