#include "dcc/sel/wcss.h"

#include <algorithm>
#include <cmath>

namespace dcc::sel {

Wcss Wcss::Construct(std::int64_t N, int k, int l, double c,
                     std::uint64_t seed) {
  DCC_REQUIRE(N >= 1 && k >= 1 && l >= 1, "Wcss: bad parameters");
  DCC_REQUIRE(c > 0, "Wcss: c > 0");
  const double lnN = std::log(static_cast<double>(std::max<std::int64_t>(N, 2)));
  const double len = c * (static_cast<double>(k) + static_cast<double>(l)) *
                     static_cast<double>(l) * static_cast<double>(k) *
                     static_cast<double>(k) * lnN;
  return Wcss(N, k, l, static_cast<std::int64_t>(std::ceil(len)), seed);
}

Wcss Wcss::WithLength(std::int64_t N, int k, int l, std::int64_t m,
                      std::uint64_t seed) {
  DCC_REQUIRE(N >= 1 && k >= 1 && l >= 1 && m >= 1, "Wcss: bad parameters");
  return Wcss(N, k, l, m, seed);
}

}  // namespace dcc::sel
