// Mobility layer: time-varying node positions for dynamic ad hoc networks.
//
// The source paper clusters a static network; the dynamics subsystem grows
// it to the MANET setting (Gavalas et al.; Agarwal's MANET clustering
// survey) where node motion and churn are the defining workload. A
// MobilityModel owns per-node kinematic state and advances all positions by
// one *epoch* of simulated time at a time; between epochs the scenario
// layer re-runs clustering and measures how much of the previous epoch's
// structure survived (see scenario/dynamics.h).
//
// Conventions:
//  * Positions are confined to the model's world Box. Models reflect or
//    re-target at the boundary; they never emit a position outside it, so
//    a SpatialGrid built with the world as its coverage box stays sound.
//  * All randomness is seed-deterministic (Xoshiro256ss per model): the
//    same seed replays the same trajectories on any host.
//  * Node count is fixed; churn (ChurnProcess, churn.h) toggles *activity*.
//    Inactive nodes keep their slot but do not move; a rejoining node gets
//    fresh kinematic state via Respawn.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "dcc/common/geometry.h"

namespace dcc::mobility {

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  // The rectangle every emitted position stays inside.
  virtual const Box& world() const = 0;

  // Adopts the initial placement (one entry per node) and seeds per-node
  // kinematic state. Must be called once, before the first Step.
  virtual void Init(std::span<const Vec2> pos) = 0;

  // Advances simulated time by dt: every node with active[i] != 0 gets a
  // new position written into pos[i]; inactive nodes are left untouched.
  virtual void Step(double dt, std::span<Vec2> pos,
                    std::span<const char> active) = 0;

  // Re-seeds node i's kinematic state after a churn rejoin and returns its
  // spawn position (inside the world box).
  virtual Vec2 Respawn(std::size_t i) = 0;
};

}  // namespace dcc::mobility
