#include "dcc/mis/linial.h"

#include <algorithm>

#include "dcc/common/math_util.h"

namespace dcc::mis {

int LocalGraph::MaxDegree() const {
  std::size_t deg = 0;
  for (const auto& a : adj) deg = std::max(deg, a.size());
  return static_cast<int>(deg);
}

bool LocalGraph::IsIndependent(const std::vector<bool>& in_set) const {
  for (std::size_t v = 0; v < adj.size(); ++v) {
    if (!in_set[v]) continue;
    for (const std::size_t u : adj[v]) {
      if (in_set[u]) return false;
    }
  }
  return true;
}

bool LocalGraph::IsDominating(const std::vector<bool>& in_set) const {
  for (std::size_t v = 0; v < adj.size(); ++v) {
    if (in_set[v]) continue;
    bool dominated = false;
    for (const std::size_t u : adj[v]) {
      if (in_set[u]) {
        dominated = true;
        break;
      }
    }
    if (!dominated) return false;
  }
  return true;
}

namespace {

// Smallest prime q and degree bound t such that q^{t+1} >= m (colors are
// encodable as degree-<=t polynomials over GF(q)) and q > delta * t (so a
// free evaluation point always exists).
LinialRound PickRound(std::int64_t m, int delta) {
  DCC_CHECK(m >= 2);
  for (std::int64_t q = NextPrime(std::max<std::int64_t>(delta + 1, 2));;
       q = NextPrime(q + 1)) {
    // smallest t with q^{t+1} >= m
    int t = 0;
    std::int64_t pow = q;  // q^{t+1}
    while (pow < m) {
      // overflow-safe multiply: values stay tiny in practice
      DCC_CHECK(pow < (std::int64_t{1} << 56) / q);
      pow *= q;
      ++t;
    }
    if (q > static_cast<std::int64_t>(delta) * t) {
      return LinialRound{q, t, m};
    }
    DCC_CHECK(q < (std::int64_t{1} << 40));  // always terminates
  }
}

}  // namespace

std::vector<LinialRound> LinialPlan(std::int64_t m0, int delta) {
  DCC_REQUIRE(m0 >= 2, "LinialPlan: need m0 >= 2");
  DCC_REQUIRE(delta >= 0, "LinialPlan: need delta >= 0");
  std::vector<LinialRound> plan;
  std::int64_t m = m0;
  for (;;) {
    const LinialRound r = PickRound(m, delta);
    if (r.q * r.q >= m) break;  // no further progress
    plan.push_back(r);
    m = r.q * r.q;
  }
  return plan;
}

std::int64_t LinialStep(std::int64_t c, std::span<const std::int64_t> neighbors,
                        const LinialRound& round) {
  const std::int64_t q = round.q;
  const int t = round.t;
  DCC_REQUIRE(c >= 0 && c < round.m, "LinialStep: color out of range");

  // Digits of a color in base q: color <-> polynomial coefficients.
  const auto digits = [&](std::int64_t col) {
    std::vector<std::int64_t> d(static_cast<std::size_t>(t) + 1);
    for (int j = 0; j <= t; ++j) {
      d[static_cast<std::size_t>(j)] = col % q;
      col /= q;
    }
    return d;
  };
  const auto eval = [&](const std::vector<std::int64_t>& d, std::int64_t a) {
    std::int64_t acc = 0;
    for (int j = t; j >= 0; --j) {
      acc = (acc * a + d[static_cast<std::size_t>(j)]) % q;
    }
    return acc;
  };

  const auto dc = digits(c);
  // For every evaluation point a, check that no neighbor polynomial agrees.
  for (std::int64_t a = 0; a < q; ++a) {
    const std::int64_t fa = eval(dc, a);
    bool clash = false;
    for (const std::int64_t nc : neighbors) {
      DCC_CHECK(nc != c);  // proper coloring invariant
      if (eval(digits(nc), a) == fa) {
        clash = true;
        break;
      }
    }
    if (!clash) return a * q + fa;
  }
  // Unreachable when |neighbors| <= delta: each neighbor polynomial agrees
  // with f_c on <= t points and delta * t < q.
  DCC_CHECK_MSG(false, "LinialStep: no free evaluation point (degree bound violated?)");
  std::abort();
}

ColoringRun LinialColorReduction(const LocalGraph& g,
                                 std::vector<std::int64_t> colors,
                                 std::int64_t m0, int delta) {
  DCC_REQUIRE(colors.size() == g.size(), "colors size mismatch");
  const auto plan = LinialPlan(m0, delta);
  ColoringRun run;
  std::int64_t m = m0;
  for (const LinialRound& round : plan) {
    std::vector<std::int64_t> next(colors.size());
    for (std::size_t v = 0; v < g.size(); ++v) {
      std::vector<std::int64_t> ncs;
      ncs.reserve(g.adj[v].size());
      for (const std::size_t u : g.adj[v]) ncs.push_back(colors[u]);
      next[v] = LinialStep(colors[v], ncs, round);
    }
    colors = std::move(next);
    m = round.q * round.q;
    ++run.local_rounds;
    // Invariant: coloring stays proper.
    for (std::size_t v = 0; v < g.size(); ++v) {
      for (const std::size_t u : g.adj[v]) DCC_CHECK(colors[v] != colors[u]);
    }
  }
  run.colors = std::move(colors);
  run.num_colors = m;
  return run;
}

ColoringRun ReduceColors(const LocalGraph& g, std::vector<std::int64_t> colors,
                         std::int64_t num_colors, std::int64_t target) {
  DCC_REQUIRE(colors.size() == g.size(), "ReduceColors: colors size mismatch");
  DCC_REQUIRE(target >= g.MaxDegree() + 1,
              "ReduceColors: target must be >= MaxDegree()+1");
  ColoringRun run;
  for (std::int64_t cls = num_colors - 1; cls >= target; --cls) {
    // All nodes of class `cls` recolor simultaneously; they are pairwise
    // non-adjacent (proper coloring), so greedy choices cannot clash.
    for (std::size_t v = 0; v < g.size(); ++v) {
      if (colors[v] != cls) continue;
      std::vector<bool> used(static_cast<std::size_t>(target), false);
      for (const std::size_t u : g.adj[v]) {
        if (colors[u] < target) used[static_cast<std::size_t>(colors[u])] = true;
      }
      for (std::int64_t c = 0; c < target; ++c) {
        if (!used[static_cast<std::size_t>(c)]) {
          colors[v] = c;
          break;
        }
      }
      DCC_CHECK(colors[v] < target);  // degree bound guarantees a free color
    }
    ++run.local_rounds;
    for (std::size_t v = 0; v < g.size(); ++v) {
      for (const std::size_t u : g.adj[v]) DCC_CHECK(colors[v] != colors[u]);
    }
  }
  run.colors = std::move(colors);
  run.num_colors = std::min(num_colors, target);
  return run;
}

MisRun MisFromColoring(const LocalGraph& g,
                       const std::vector<std::int64_t>& colors,
                       std::int64_t num_colors) {
  DCC_REQUIRE(colors.size() == g.size(), "colors size mismatch");
  MisRun run;
  run.in_mis.assign(g.size(), false);
  std::vector<bool> decided(g.size(), false);
  for (std::int64_t cls = 0; cls < num_colors; ++cls) {
    for (std::size_t v = 0; v < g.size(); ++v) {
      if (decided[v] || colors[v] != cls) continue;
      bool neighbor_in = false;
      for (const std::size_t u : g.adj[v]) {
        if (run.in_mis[u]) {
          neighbor_in = true;
          break;
        }
      }
      if (!neighbor_in) run.in_mis[v] = true;
      decided[v] = true;
    }
    // Domination propagates implicitly: a later-class node checks in_mis.
    ++run.local_rounds;
  }
  return run;
}

MisRun LinialMis(const LocalGraph& g, const std::vector<std::int64_t>& ids,
                 std::int64_t id_space) {
  // IDs are 1-based in [1, id_space]; colors are 0-based.
  std::vector<std::int64_t> colors(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    DCC_REQUIRE(ids[i] >= 1 && ids[i] <= id_space, "LinialMis: id out of range");
    colors[i] = ids[i] - 1;
  }
  const auto reduced =
      LinialColorReduction(g, std::move(colors), id_space, g.MaxDegree());
  MisRun mis = MisFromColoring(g, reduced.colors, reduced.num_colors);
  mis.local_rounds += reduced.local_rounds;
  return mis;
}

}  // namespace dcc::mis
