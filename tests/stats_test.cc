#include "dcc/stats/recorder.h"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

namespace dcc::stats {
namespace {

TEST(RecorderTest, AddAccumulatesSetOverwrites) {
  Recorder r;
  r.Add("rounds", 10);
  r.Add("rounds", 5);
  EXPECT_DOUBLE_EQ(r.Get("rounds"), 15.0);
  r.Set("rounds", 3);
  EXPECT_DOUBLE_EQ(r.Get("rounds"), 3.0);
}

TEST(RecorderTest, MissingKeyIsZero) {
  Recorder r;
  EXPECT_DOUBLE_EQ(r.Get("absent"), 0.0);
  EXPECT_FALSE(r.Has("absent"));
  r.Add("present", 0.0);
  EXPECT_TRUE(r.Has("present"));
}

TEST(RecorderTest, InsertionOrderPreserved) {
  Recorder r;
  r.Add("b", 1);
  r.Add("a", 2);
  r.Add("b", 1);
  ASSERT_EQ(r.entries().size(), 2u);
  EXPECT_EQ(r.entries()[0].first, "b");
  EXPECT_EQ(r.entries()[1].first, "a");
}

TEST(RecorderTest, PrintJsonGolden) {
  Recorder r;
  r.Set("rounds", 460010);
  r.Set("max_radius", 0.9981188584948859);
  r.Set("ratio", 0.5);
  r.Set("inf", std::numeric_limits<double>::infinity());
  r.Set("quote\"key", 1);
  std::ostringstream os;
  r.PrintJson(os);
  EXPECT_EQ(os.str(),
            "{\"rounds\": 460010, \"max_radius\": 0.9981188584948859, "
            "\"ratio\": 0.5, \"inf\": null, \"quote\\\"key\": 1}");
}

TEST(RecorderTest, PrintJsonEmptyRecorder) {
  Recorder r;
  std::ostringstream os;
  r.PrintJson(os);
  EXPECT_EQ(os.str(), "{}");
}

TEST(RecorderTest, PrintFormatsAllEntries) {
  Recorder r;
  r.Add("x", 1.5);
  r.Add("y", 2);
  std::ostringstream os;
  r.Print(os, 2);
  EXPECT_EQ(os.str(), "  x = 1.5\n  y = 2\n");
}

}  // namespace
}  // namespace dcc::stats
