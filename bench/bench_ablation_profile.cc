// Ablation: which profile constants actually carry the clustering
// pipeline, end to end. DESIGN.md §4.3 claims the calibrated practical
// profile is safe because the validators gate it — this bench shows the
// cliff: sweep one constant at a time, run full Clustering, and report
// validity + rounds.
//
// Expected: validity holds from the default down to a visible knee
// (wss too short -> proximity misses close pairs -> sparsification stalls
// -> unassigned nodes or fat radii), and rounds scale ~linearly with the
// selector lengths above the knee.
#include "bench_common.h"
#include "dcc/cluster/clustering.h"

namespace dcc {
namespace {

struct Outcome {
  bool valid = false;
  Round rounds = 0;
  std::size_t unassigned = 0;
};

Outcome RunOnce(const sinr::Network& net, const cluster::Profile& prof,
                std::uint64_t nonce) {
  std::vector<std::size_t> all(net.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  const int gamma = cluster::SubsetDensity(net, all);
  sim::Exec ex(net, bench::EngineOptionsFromEnv());
  const auto res = cluster::BuildClustering(ex, prof, all, gamma, nonce);
  const auto chk = cluster::CheckClustering(net, all, res.cluster_of);
  return {res.unassigned == 0 &&
              chk.ValidRClustering(1.0, net.params().eps),
          res.rounds, res.unassigned};
}

void Run() {
  bench::Banner("Profile ablation (end-to-end Clustering)",
                "DESIGN.md §4.3 calibration evidence",
                "validity cliff as constants shrink; rounds ~linear in the "
                "selector lengths above it");

  sinr::Params params = sinr::Params::Default();
  params.id_space = 1 << 12;
  auto pts = workload::UniformSquare(96, 4.0, 11);
  const auto net = workload::MakeNetwork(pts, params, 21);

  // A hard workload: one very dense clump (Gamma ~ n) — where undersized
  // constants actually fall off the cliff.
  auto dense_pts = workload::UniformSquare(72, 1.4, 13);
  const auto dense_net = workload::MakeNetwork(dense_pts, params, 23);

  std::cout << "-- wss length multiplier (default 0.35) --\n";
  Table tw({"wss_c", "wss_len", "valid", "unassigned", "rounds"});
  for (const double c : {0.05, 0.1, 0.2, 0.35, 0.7, 1.4}) {
    auto prof = cluster::Profile::Practical(params.id_space);
    prof.wss_c = c;
    const auto out = RunOnce(net, prof, 1);
    tw.AddRow({Table::Num(c), Table::Num(prof.WssLen(params.id_space)),
               out.valid ? "yes" : "NO",
               Table::Num(static_cast<std::int64_t>(out.unassigned)),
               Table::Num(out.rounds)});
  }
  tw.Print(std::cout);

  std::cout << "\n-- kappa (close-neighbor constant, default 5) --\n";
  Table tk({"kappa", "valid", "unassigned", "rounds"});
  for (const int k : {2, 3, 5, 8}) {
    auto prof = cluster::Profile::Practical(params.id_space);
    prof.kappa = k;
    const auto out = RunOnce(net, prof, 2);
    tk.AddRow({Table::Num(std::int64_t{k}), out.valid ? "yes" : "NO",
               Table::Num(static_cast<std::int64_t>(out.unassigned)),
               Table::Num(out.rounds)});
  }
  tk.Print(std::cout);

  std::cout << "\n-- sns_k (SNS selection parameter, default 8) --\n";
  Table ts({"sns_k", "valid", "unassigned", "rounds"});
  for (const int k : {3, 5, 8, 12}) {
    auto prof = cluster::Profile::Practical(params.id_space);
    prof.sns_k = k;
    const auto out = RunOnce(net, prof, 3);
    ts.AddRow({Table::Num(std::int64_t{k}), out.valid ? "yes" : "NO",
               Table::Num(static_cast<std::int64_t>(out.unassigned)),
               Table::Num(out.rounds)});
  }
  ts.Print(std::cout);

  std::cout << "\n-- mis_rounds (LOCAL cap, default 10) --\n";
  Table tmr({"mis_rounds", "valid", "unassigned", "rounds"});
  for (const int r : {1, 2, 4, 10, 20}) {
    auto prof = cluster::Profile::Practical(params.id_space);
    prof.mis_rounds = r;
    const auto out = RunOnce(net, prof, 4);
    tmr.AddRow({Table::Num(std::int64_t{r}), out.valid ? "yes" : "NO",
                Table::Num(static_cast<std::int64_t>(out.unassigned)),
                Table::Num(out.rounds)});
  }
  tmr.Print(std::cout);

  std::cout << "\n-- hard workload: 72 nodes in a 1.4x1.4 clump (Gamma="
            << dense_net.Density() << ") --\n";
  Table th({"wss_c", "kappa", "valid", "unassigned", "rounds"});
  for (const auto& [c, k] :
       std::vector<std::pair<double, int>>{{0.02, 2},
                                           {0.05, 2},
                                           {0.05, 5},
                                           {0.35, 2},
                                           {0.35, 5},
                                           {0.7, 5}}) {
    auto prof = cluster::Profile::Practical(params.id_space);
    prof.wss_c = c;
    prof.kappa = k;
    const auto out = RunOnce(dense_net, prof, 5);
    th.AddRow({Table::Num(c), Table::Num(std::int64_t{k}),
               out.valid ? "yes" : "NO",
               Table::Num(static_cast<std::int64_t>(out.unassigned)),
               Table::Num(out.rounds)});
  }
  th.Print(std::cout);
  std::cout << "\n(the uniform-field sweeps above show the default profile "
               "is conservative; the clump is where the margins are spent)\n";
}

}  // namespace
}  // namespace dcc

int main() {
  dcc::Run();
  return 0;
}
