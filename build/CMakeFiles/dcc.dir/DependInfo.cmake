
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dcc/baselines/decay_global.cc" "CMakeFiles/dcc.dir/src/dcc/baselines/decay_global.cc.o" "gcc" "CMakeFiles/dcc.dir/src/dcc/baselines/decay_global.cc.o.d"
  "/root/repo/src/dcc/baselines/grid_tdma.cc" "CMakeFiles/dcc.dir/src/dcc/baselines/grid_tdma.cc.o" "gcc" "CMakeFiles/dcc.dir/src/dcc/baselines/grid_tdma.cc.o.d"
  "/root/repo/src/dcc/baselines/rand_local.cc" "CMakeFiles/dcc.dir/src/dcc/baselines/rand_local.cc.o" "gcc" "CMakeFiles/dcc.dir/src/dcc/baselines/rand_local.cc.o.d"
  "/root/repo/src/dcc/baselines/tdma.cc" "CMakeFiles/dcc.dir/src/dcc/baselines/tdma.cc.o" "gcc" "CMakeFiles/dcc.dir/src/dcc/baselines/tdma.cc.o.d"
  "/root/repo/src/dcc/bcast/leader_election.cc" "CMakeFiles/dcc.dir/src/dcc/bcast/leader_election.cc.o" "gcc" "CMakeFiles/dcc.dir/src/dcc/bcast/leader_election.cc.o.d"
  "/root/repo/src/dcc/bcast/local_broadcast.cc" "CMakeFiles/dcc.dir/src/dcc/bcast/local_broadcast.cc.o" "gcc" "CMakeFiles/dcc.dir/src/dcc/bcast/local_broadcast.cc.o.d"
  "/root/repo/src/dcc/bcast/smsb.cc" "CMakeFiles/dcc.dir/src/dcc/bcast/smsb.cc.o" "gcc" "CMakeFiles/dcc.dir/src/dcc/bcast/smsb.cc.o.d"
  "/root/repo/src/dcc/bcast/sns.cc" "CMakeFiles/dcc.dir/src/dcc/bcast/sns.cc.o" "gcc" "CMakeFiles/dcc.dir/src/dcc/bcast/sns.cc.o.d"
  "/root/repo/src/dcc/bcast/wakeup.cc" "CMakeFiles/dcc.dir/src/dcc/bcast/wakeup.cc.o" "gcc" "CMakeFiles/dcc.dir/src/dcc/bcast/wakeup.cc.o.d"
  "/root/repo/src/dcc/cluster/clustering.cc" "CMakeFiles/dcc.dir/src/dcc/cluster/clustering.cc.o" "gcc" "CMakeFiles/dcc.dir/src/dcc/cluster/clustering.cc.o.d"
  "/root/repo/src/dcc/cluster/full_sparsify.cc" "CMakeFiles/dcc.dir/src/dcc/cluster/full_sparsify.cc.o" "gcc" "CMakeFiles/dcc.dir/src/dcc/cluster/full_sparsify.cc.o.d"
  "/root/repo/src/dcc/cluster/labeling.cc" "CMakeFiles/dcc.dir/src/dcc/cluster/labeling.cc.o" "gcc" "CMakeFiles/dcc.dir/src/dcc/cluster/labeling.cc.o.d"
  "/root/repo/src/dcc/cluster/profile.cc" "CMakeFiles/dcc.dir/src/dcc/cluster/profile.cc.o" "gcc" "CMakeFiles/dcc.dir/src/dcc/cluster/profile.cc.o.d"
  "/root/repo/src/dcc/cluster/proximity.cc" "CMakeFiles/dcc.dir/src/dcc/cluster/proximity.cc.o" "gcc" "CMakeFiles/dcc.dir/src/dcc/cluster/proximity.cc.o.d"
  "/root/repo/src/dcc/cluster/radius_reduction.cc" "CMakeFiles/dcc.dir/src/dcc/cluster/radius_reduction.cc.o" "gcc" "CMakeFiles/dcc.dir/src/dcc/cluster/radius_reduction.cc.o.d"
  "/root/repo/src/dcc/cluster/sparsify.cc" "CMakeFiles/dcc.dir/src/dcc/cluster/sparsify.cc.o" "gcc" "CMakeFiles/dcc.dir/src/dcc/cluster/sparsify.cc.o.d"
  "/root/repo/src/dcc/cluster/validate.cc" "CMakeFiles/dcc.dir/src/dcc/cluster/validate.cc.o" "gcc" "CMakeFiles/dcc.dir/src/dcc/cluster/validate.cc.o.d"
  "/root/repo/src/dcc/common/geometry.cc" "CMakeFiles/dcc.dir/src/dcc/common/geometry.cc.o" "gcc" "CMakeFiles/dcc.dir/src/dcc/common/geometry.cc.o.d"
  "/root/repo/src/dcc/common/math_util.cc" "CMakeFiles/dcc.dir/src/dcc/common/math_util.cc.o" "gcc" "CMakeFiles/dcc.dir/src/dcc/common/math_util.cc.o.d"
  "/root/repo/src/dcc/common/spatial_grid.cc" "CMakeFiles/dcc.dir/src/dcc/common/spatial_grid.cc.o" "gcc" "CMakeFiles/dcc.dir/src/dcc/common/spatial_grid.cc.o.d"
  "/root/repo/src/dcc/common/table.cc" "CMakeFiles/dcc.dir/src/dcc/common/table.cc.o" "gcc" "CMakeFiles/dcc.dir/src/dcc/common/table.cc.o.d"
  "/root/repo/src/dcc/lowerbound/adversary.cc" "CMakeFiles/dcc.dir/src/dcc/lowerbound/adversary.cc.o" "gcc" "CMakeFiles/dcc.dir/src/dcc/lowerbound/adversary.cc.o.d"
  "/root/repo/src/dcc/lowerbound/gadget.cc" "CMakeFiles/dcc.dir/src/dcc/lowerbound/gadget.cc.o" "gcc" "CMakeFiles/dcc.dir/src/dcc/lowerbound/gadget.cc.o.d"
  "/root/repo/src/dcc/mis/linial.cc" "CMakeFiles/dcc.dir/src/dcc/mis/linial.cc.o" "gcc" "CMakeFiles/dcc.dir/src/dcc/mis/linial.cc.o.d"
  "/root/repo/src/dcc/mis/local_mis.cc" "CMakeFiles/dcc.dir/src/dcc/mis/local_mis.cc.o" "gcc" "CMakeFiles/dcc.dir/src/dcc/mis/local_mis.cc.o.d"
  "/root/repo/src/dcc/sel/ssf.cc" "CMakeFiles/dcc.dir/src/dcc/sel/ssf.cc.o" "gcc" "CMakeFiles/dcc.dir/src/dcc/sel/ssf.cc.o.d"
  "/root/repo/src/dcc/sel/verify.cc" "CMakeFiles/dcc.dir/src/dcc/sel/verify.cc.o" "gcc" "CMakeFiles/dcc.dir/src/dcc/sel/verify.cc.o.d"
  "/root/repo/src/dcc/sel/wcss.cc" "CMakeFiles/dcc.dir/src/dcc/sel/wcss.cc.o" "gcc" "CMakeFiles/dcc.dir/src/dcc/sel/wcss.cc.o.d"
  "/root/repo/src/dcc/sel/wss.cc" "CMakeFiles/dcc.dir/src/dcc/sel/wss.cc.o" "gcc" "CMakeFiles/dcc.dir/src/dcc/sel/wss.cc.o.d"
  "/root/repo/src/dcc/sim/runner.cc" "CMakeFiles/dcc.dir/src/dcc/sim/runner.cc.o" "gcc" "CMakeFiles/dcc.dir/src/dcc/sim/runner.cc.o.d"
  "/root/repo/src/dcc/sim/schedule.cc" "CMakeFiles/dcc.dir/src/dcc/sim/schedule.cc.o" "gcc" "CMakeFiles/dcc.dir/src/dcc/sim/schedule.cc.o.d"
  "/root/repo/src/dcc/sinr/engine.cc" "CMakeFiles/dcc.dir/src/dcc/sinr/engine.cc.o" "gcc" "CMakeFiles/dcc.dir/src/dcc/sinr/engine.cc.o.d"
  "/root/repo/src/dcc/sinr/network.cc" "CMakeFiles/dcc.dir/src/dcc/sinr/network.cc.o" "gcc" "CMakeFiles/dcc.dir/src/dcc/sinr/network.cc.o.d"
  "/root/repo/src/dcc/sinr/params.cc" "CMakeFiles/dcc.dir/src/dcc/sinr/params.cc.o" "gcc" "CMakeFiles/dcc.dir/src/dcc/sinr/params.cc.o.d"
  "/root/repo/src/dcc/sinr/propagation.cc" "CMakeFiles/dcc.dir/src/dcc/sinr/propagation.cc.o" "gcc" "CMakeFiles/dcc.dir/src/dcc/sinr/propagation.cc.o.d"
  "/root/repo/src/dcc/stats/recorder.cc" "CMakeFiles/dcc.dir/src/dcc/stats/recorder.cc.o" "gcc" "CMakeFiles/dcc.dir/src/dcc/stats/recorder.cc.o.d"
  "/root/repo/src/dcc/workload/generators.cc" "CMakeFiles/dcc.dir/src/dcc/workload/generators.cc.o" "gcc" "CMakeFiles/dcc.dir/src/dcc/workload/generators.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
