// dccd — the resident scenario daemon.
//
//   $ dccd --socket=/tmp/dccd.sock &
//   $ dcc_load --socket=/tmp/dccd.sock \
//       --spec='--topology=uniform:n=256,side=8 --algo=clustering'
//
// Serves ScenarioSpec runs over a Unix domain socket with content-
// addressed topology/result caches (see src/dcc/service/service.h for
// the protocol). Runs until SIGTERM/SIGINT, then drains gracefully:
// in-flight requests finish, responses flush, and the final
// dcc.service.v1 stats object is printed to stdout before exit 0.
#include <signal.h>

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "dcc/obs/trace.h"
#include "dcc/service/service.h"

namespace {

void PrintUsage(std::ostream& os) {
  os << "usage: dccd [flags]\n"
        "\n"
        "  --socket=PATH        Unix socket to listen on (/tmp/dccd.sock)\n"
        "  --queue=N            admission queue capacity; run requests\n"
        "                       beyond N concurrent block at the door (64)\n"
        "  --topology-cache=N   cached generated networks, LRU (64)\n"
        "  --result-cache=N     cached serialized reports, LRU (4096)\n"
        "  --trace=PATH         record request/cache/engine spans for the\n"
        "                       daemon's lifetime; one Chrome-trace JSON is\n"
        "                       written at drain (pure observation)\n"
        "  --help               usage\n"
        "\n"
        "SIGTERM/SIGINT drain the daemon: in-flight requests finish, the\n"
        "final dcc.service.v1 stats object goes to stdout, exit 0.\n";
}

bool ParseCount(const std::string& arg, const std::string& prefix,
                long long* out) {
  if (arg.rfind(prefix, 0) != 0) return false;
  const std::string value = arg.substr(prefix.size());
  try {
    std::size_t used = 0;
    *out = std::stoll(value, &used);
    if (used != value.size() || *out < 1) throw std::invalid_argument(value);
  } catch (const std::exception&) {
    std::cerr << "dccd: " << prefix << " needs a positive integer, got '"
              << value << "'\n";
    std::exit(2);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  dcc::service::Service::Options opts;
  opts.socket_path = "/tmp/dccd.sock";

  long long n = 0;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage(std::cout);
      return 0;
    } else if (arg.rfind("--socket=", 0) == 0) {
      opts.socket_path = arg.substr(9);
    } else if (ParseCount(arg, "--queue=", &n)) {
      opts.queue_capacity = static_cast<int>(n);
    } else if (ParseCount(arg, "--topology-cache=", &n)) {
      opts.topology_cache = static_cast<std::size_t>(n);
    } else if (ParseCount(arg, "--result-cache=", &n)) {
      opts.result_cache = static_cast<std::size_t>(n);
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(8);
      if (trace_path.empty()) {
        std::cerr << "dccd: --trace= needs a path\n";
        return 2;
      }
    } else {
      std::cerr << "dccd: unknown flag '" << arg << "' (see --help)\n";
      return 2;
    }
  }

  // Route shutdown through sigwait instead of a handler: every service
  // thread inherits the blocked mask, so signals land only on this thread,
  // where Drain() can safely take locks and join.
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGINT);
  sigaddset(&mask, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &mask, nullptr);

  if (!trace_path.empty()) dcc::obs::Tracer::Global().Enable();

  dcc::service::Service service(opts);
  try {
    service.Start();
  } catch (const std::exception& e) {
    std::cerr << "dccd: " << e.what() << '\n';
    return 2;
  }
  std::cerr << "dccd: listening on " << service.socket_path() << '\n';

  int sig = 0;
  while (sigwait(&mask, &sig) != 0) {
  }
  std::cerr << "dccd: caught " << (sig == SIGTERM ? "SIGTERM" : "SIGINT")
            << ", draining\n";
  service.Drain();
  if (!trace_path.empty()) {
    // Drain() joined every service thread, so all trace buffers are quiet.
    std::ofstream out(trace_path);
    if (out) {
      const dcc::obs::TraceSummary sum = dcc::obs::Tracer::Global().Drain(out);
      sum.PrintJson(std::cerr);
      std::cerr << '\n';
    } else {
      std::cerr << "dccd: cannot open " << trace_path << '\n';
    }
  }
  service.Snapshot().PrintJson(std::cout);
  std::cout << '\n';
  return 0;
}
