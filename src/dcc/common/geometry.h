// 2-D Euclidean geometry and the packing quantities used throughout the
// paper (Section 2, "Preliminaries"):
//
//  * chi(r1, r2): the maximal number of points that fit in a ball of radius
//    r1 with pairwise distances >= r2. We use the standard disc-packing
//    upper bound chi(r1, r2) <= (1 + 2*r1/r2)^2; algorithms only ever need
//    an upper bound (loop lengths) or its inverse (d_{Gamma,r}).
//  * d_{Gamma,r}: the smallest d with chi(r, d) >= Gamma/2. Inverting the
//    bound above gives d_{Gamma,r} = 2r / (sqrt(Gamma/2) - 1). This is the
//    upper bound on the closest-pair distance inside any dense cluster.
//
// The paper's results extend to bounded-growth metrics; we implement the
// Euclidean plane, which is what every construction in the paper uses.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dcc/common/types.h"

namespace dcc {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend Vec2 operator+(Vec2 a, Vec2 b) { return {a.x + b.x, a.y + b.y}; }
  friend Vec2 operator-(Vec2 a, Vec2 b) { return {a.x - b.x, a.y - b.y}; }
  friend Vec2 operator*(double s, Vec2 a) { return {s * a.x, s * a.y}; }
  friend bool operator==(Vec2 a, Vec2 b) { return a.x == b.x && a.y == b.y; }
};

inline double Dist2(Vec2 a, Vec2 b) {
  const double dx = a.x - b.x, dy = a.y - b.y;
  return dx * dx + dy * dy;
}
inline double Dist(Vec2 a, Vec2 b) { return std::sqrt(Dist2(a, b)); }

// Closed ball B(center, radius).
struct Ball {
  Vec2 center;
  double radius = 0.0;
  bool Contains(Vec2 p) const { return Dist(center, p) <= radius + 1e-12; }
};

// Upper bound on chi(r1, r2): max points in a ball of radius r1 with
// pairwise distance >= r2 (disc packing: open discs of radius r2/2 centered
// at the points are disjoint and fit in a ball of radius r1 + r2/2).
int ChiUpperBound(double r1, double r2);

// The smallest d such that chi(r, d) >= Gamma/2 (paper: d_{Gamma,r}), using
// the packing upper bound. For Gamma <= 2 there is no constraint; we return
// 2r (cluster diameter) in that case.
double CloseDistanceBound(int gamma, double r);

// Axis-aligned bounding box of a point set (empty set -> zero box).
struct Box {
  Vec2 lo, hi;
};
Box BoundingBox(std::span<const Vec2> pts);

// Uniform grid over a point set for O(1)-neighborhood queries. Cell size is
// chosen by the caller (typically 1.0: the transmission range).
class PointGrid {
 public:
  PointGrid(std::span<const Vec2> pts, double cell);

  // Indices of points within distance `radius` of `p` (inclusive).
  std::vector<std::size_t> Near(Vec2 p, double radius) const;

  // The number of points within `radius` of `p`.
  int CountNear(Vec2 p, double radius) const;

  // Calls `fn(index)` for every point within `radius` of `p`.
  template <typename Fn>
  void ForNear(Vec2 p, double radius, Fn&& fn) const {
    const int span = static_cast<int>(std::ceil(radius / cell_)) + 1;
    const auto [cx, cy] = CellOf(p);
    const double r2 = radius * radius;
    for (int gx = cx - span; gx <= cx + span; ++gx) {
      for (int gy = cy - span; gy <= cy + span; ++gy) {
        const auto it = cells_.find(Key(gx, gy));
        if (it == cells_.end()) continue;
        for (std::size_t j : it->second) {
          if (Dist2(pts_[j], p) <= r2 + 1e-12) fn(j);
        }
      }
    }
  }

 private:
  std::pair<int, int> CellOf(Vec2 p) const {
    return {static_cast<int>(std::floor(p.x / cell_)),
            static_cast<int>(std::floor(p.y / cell_))};
  }
  static std::int64_t Key(int gx, int gy) {
    return (static_cast<std::int64_t>(gx) << 32) ^
           (static_cast<std::int64_t>(gy) & 0xffffffffll);
  }

  std::vector<Vec2> pts_;
  double cell_;
  std::unordered_map<std::int64_t, std::vector<std::size_t>> cells_;
};

// Density of a point set: the maximum number of points inside any unit ball
// (paper, Section 2: density Gamma of an unclustered set). We evaluate balls
// centered at the nodes themselves; the node-centered maximum is within a
// constant factor of the every-point maximum (any ball with k points
// contains a node whose own unit ball has >= k points when radius doubles),
// and Fact 1 only needs density up to constants.
int UnitBallDensity(std::span<const Vec2> pts, double radius = 1.0);

}  // namespace dcc
