// RoundPlanner — the single-slot asynchronous stage behind the engine's
// round pipeline. A caller that can disclose the next round's inputs ahead
// of time Launch()es a build closure; the closure is published as one
// work-stealing ticket (WorkerPool::Submit), so an idle worker — typically
// one freed by the tail of a sweep, or one whose shard finished early —
// executes the next round's prologue while the current round's shards are
// still resolving listeners.
//
// The planner guarantees nothing about *where* the closure runs, only that
// Collect() returns strictly after it ran: if no worker claimed the ticket
// (a 0-worker pool, or everyone busy), Collect() runs it inline, which
// degrades to exactly the serial prologue cost. Collect's Outcome says
// whether the overlap actually happened and how long the build took, so
// callers can report honest pipelining stats instead of assumed ones.
//
// Thread-safety: one planner is owned by one engine; Launch/Collect/
// Abandon are called from the engine's (single) stepping thread. The only
// concurrency is the build closure itself, and Collect/Abandon are the
// happens-before edge that makes its writes visible.
#pragma once

#include <cstdint>
#include <functional>

#include "dcc/parallel/worker_pool.h"

namespace dcc::parallel {

class RoundPlanner {
 public:
  RoundPlanner() = default;
  explicit RoundPlanner(WorkerPool* pool) : pool_(pool) {}

  // Destroying a planner with a build in flight waits for it (TaskHandle's
  // destructor), so the closure never outlives its captures.

  bool pending() const { return handle_.valid(); }

  // Schedules `build` for asynchronous execution. Exactly one build may be
  // in flight; Collect() or Abandon() it first. Requires a pool.
  void Launch(std::function<void()> build);

  struct Outcome {
    // Another thread executed the build before Collect (the prologue
    // genuinely overlapped the previous round); false when Collect ran it
    // inline just now.
    bool overlapped = false;
    // Wall time the build took, wherever it ran.
    std::int64_t build_ns = 0;
  };

  // Waits for the in-flight build (running it inline if unclaimed) and
  // reports where it ran. Requires pending().
  Outcome Collect();

  // Collect() for invalidation paths: the caller is about to mutate state
  // the build reads, so the build must finish (or run) now and its result
  // will be discarded.
  void Abandon();

 private:
  WorkerPool* pool_ = nullptr;
  WorkerPool::TaskHandle handle_;
  std::int64_t build_ns_ = 0;  // written by the closure, read after Wait
};

}  // namespace dcc::parallel
