# Empty dependencies file for bench_table2_global_broadcast.
# This may be replaced when dependencies are built.
