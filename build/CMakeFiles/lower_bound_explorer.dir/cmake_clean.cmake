file(REMOVE_RECURSE
  "CMakeFiles/lower_bound_explorer.dir/examples/lower_bound_explorer.cpp.o"
  "CMakeFiles/lower_bound_explorer.dir/examples/lower_bound_explorer.cpp.o.d"
  "lower_bound_explorer"
  "lower_bound_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lower_bound_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
