#include "dcc/lowerbound/gadget.h"

#include <cmath>

namespace dcc::lowerbound {

sinr::Params GadgetParams(double alpha, double eps, double q) {
  DCC_REQUIRE(q > 1.0, "GadgetParams: gap ratio q must exceed 1");
  sinr::Params p;
  p.alpha = alpha;
  p.eps = eps;
  p.noise = 1.0;
  // Fact 2 blocking: for transmitters v_i, v_j (i < j) and a listener
  // beyond v_j, the worst interferer is v_0: its distance to the listener
  // is at most (1 + sum of gaps / signal distance) <= q/(q-1) times the
  // signal distance (geometric gaps with ratio q). SINR is then at most
  // (q/(q-1))^alpha; beta 15% above that blocks every such reception.
  const double block = std::pow(q / (q - 1.0), alpha);
  p.beta = 1.15 * block;
  p.power = p.noise * p.beta;  // transmission range 1
  p.Validate();
  return p;
}

Gadget MakeGadget(int delta, const sinr::Params& params, double q) {
  DCC_REQUIRE(delta >= 1, "MakeGadget: delta >= 1");
  DCC_REQUIRE(q > 1.0, "MakeGadget: q > 1");
  const double eps = params.eps;
  DCC_REQUIRE(eps < 0.24, "MakeGadget: needs eps < 0.24 (core within range)");

  Gadget g;
  g.delta = delta;
  // s at origin; v_0 at eps — the whole core sits within 4*eps of s, so
  // the wake-up of the core tolerates Theta(eps^{-alpha}) external
  // interference (the nu budget of Lemma 13; see header).
  g.positions.push_back({0.0, 0.0});
  g.s = 0;
  double x = eps;
  g.positions.push_back({x, 0.0});
  g.core.push_back(1);

  // Core gaps: d(v_i, v_{i+1}) = eps * q^{-(delta-i)} for i < delta, then
  // d(v_delta, v_{delta+1}) = 2*eps (Fig. 6 shape, ratio q generalized).
  for (int i = 0; i < delta; ++i) {
    const double gap = eps * std::pow(q, -static_cast<double>(delta - i));
    DCC_REQUIRE(gap > 1e-13, "MakeGadget: delta too large for double precision");
    x += gap;
    g.positions.push_back({x, 0.0});
    g.core.push_back(g.positions.size() - 1);
  }
  x += 2.0 * eps;
  g.positions.push_back({x, 0.0});
  g.core.push_back(g.positions.size() - 1);  // v_{delta+1}

  // t: within range of v_{delta+1} only (d slightly under 1 - eps so the
  // comm edge survives floating-point), beyond everyone else (v_delta sits
  // 2*eps further: > 1).
  x += (1.0 - eps) * 0.999;
  g.positions.push_back({x, 0.0});
  g.t = g.positions.size() - 1;
  return g;
}

GadgetChain MakeGadgetChain(int num_gadgets, int delta,
                            const sinr::Params& params, double q) {
  DCC_REQUIRE(num_gadgets >= 1, "MakeGadgetChain: need >= 1 gadget");
  GadgetChain chain;
  chain.delta = delta;
  chain.num_gadgets = num_gadgets;
  const double eps = params.eps;
  const int kappa = std::max(
      1, static_cast<int>(std::ceil(std::pow(static_cast<double>(delta),
                                             1.0 / params.alpha) /
                                    (1.0 - eps))));

  double x = 0.0;
  for (int gi = 0; gi < num_gadgets; ++gi) {
    Gadget g = MakeGadget(delta, params, q);
    const std::size_t base = chain.positions.size();
    for (const Vec2& p : g.positions) chain.positions.push_back({x + p.x, p.y});
    // re-index
    g.s += base;
    g.t += base;
    for (auto& c : g.core) c += base;
    const double gadget_span = g.positions.back().x;
    x += gadget_span;
    if (gi == 0) chain.s = g.s;
    chain.t = g.t;
    chain.gadgets.push_back(g);

    if (gi + 1 < num_gadgets) {
      // Buffer path: kappa nodes spaced 1-eps apart after t; the next
      // gadget's s is placed 1-eps after the last buffer node.
      for (int b = 0; b < kappa; ++b) {
        x += 1.0 - eps;
        chain.positions.push_back({x, 0.0});
        chain.buffer_nodes.push_back(chain.positions.size() - 1);
      }
      x += 1.0 - eps;  // next gadget's s lands here (its local origin)
    }
  }
  return chain;
}

}  // namespace dcc::lowerbound
