// Failure injection: always-on jammers (rogue transmitters the protocol
// does not know about). The paper's algorithms assume all interference
// comes from protocol participants; these tests map where that assumption
// breaks and verify it degrades loudly, not silently.
#include <gtest/gtest.h>

#include "dcc/bcast/sns.h"
#include "dcc/cluster/clustering.h"
#include "dcc/cluster/validate.h"
#include "dcc/workload/generators.h"

namespace dcc {
namespace {

sinr::Params TestParams() {
  sinr::Params p = sinr::Params::Default();
  p.id_space = 1 << 12;
  return p;
}

TEST(JammerTest, BackgroundTransmitterJamsItsNeighborhood) {
  const auto params = TestParams();
  // sender(0) -> listener(1) at 0.5; jammer(2) sits next to the listener.
  std::vector<Vec2> pts{{0, 0}, {0.5, 0}, {0.6, 0}};
  const auto net = workload::MakeNetwork(pts, params, 1);
  sim::Exec ex(net);

  int heard = 0;
  auto decide = [&](std::size_t i) -> std::optional<sim::Message> {
    if (i != 0) return std::nullopt;
    sim::Message m;
    m.src = net.id(0);
    return m;
  };
  // Count only the protocol sender's deliveries: the jammer's own message
  // is also delivered (it is the strongest signal at the listener), which
  // is exactly how a rogue beacon looks to a real radio.
  auto hear = [&](std::size_t l, const sim::Message& m) {
    if (l == 1 && m.src == net.id(0)) ++heard;
  };

  ex.RunRound({0, 1}, decide, hear);
  EXPECT_EQ(heard, 1);  // clean channel

  ex.SetBackgroundTransmitters({2}, sim::Message{});
  ex.RunRound({0, 1}, decide, hear);
  EXPECT_EQ(heard, 1);  // jammed: no new reception from the sender

  ex.ClearBackgroundTransmitters();
  ex.RunRound({0, 1}, decide, hear);
  EXPECT_EQ(heard, 2);  // clean again
}

TEST(JammerTest, DistantJammerIsHarmless) {
  const auto params = TestParams();
  std::vector<Vec2> pts{{0, 0}, {0.5, 0}, {30.0, 0}};
  const auto net = workload::MakeNetwork(pts, params, 2);
  sim::Exec ex(net);
  ex.SetBackgroundTransmitters({2}, sim::Message{});
  int heard = 0;
  ex.RunRound(
      {0, 1},
      [&](std::size_t i) -> std::optional<sim::Message> {
        if (i != 0) return std::nullopt;
        sim::Message m;
        m.src = net.id(0);
        return m;
      },
      [&](std::size_t l, const sim::Message&) {
        if (l == 1) ++heard;
      });
  EXPECT_EQ(heard, 1);
}

TEST(JammerTest, SnsSurvivesFarJammers) {
  const auto params = TestParams();
  auto pts = workload::Grid(4, 4, 1.1);
  // Jammers on a far ring.
  const std::size_t n_field = pts.size();
  for (const auto& jp : workload::Ring(4, 40.0)) pts.push_back(jp);
  const auto net = workload::MakeNetwork(pts, params, 3);
  const auto prof = cluster::Profile::Practical(params.id_space);

  sim::Exec ex(net);
  std::vector<std::size_t> jammers;
  for (std::size_t j = n_field; j < net.size(); ++j) jammers.push_back(j);
  ex.SetBackgroundTransmitters(jammers, sim::Message{});

  std::vector<sim::Participant> parts;
  for (std::size_t i = 0; i < n_field; ++i) {
    parts.push_back({i, net.id(i), kNoCluster});
  }
  std::vector<std::vector<std::size_t>> heard_by(net.size());
  bcast::RunSns(
      ex, prof, parts,
      [&](std::size_t) {
        sim::Message m;
        m.kind = 1;
        return std::optional<sim::Message>(m);
      },
      [&](std::size_t l, const sim::Message& m) {
        heard_by[net.IndexOf(m.src)].push_back(l);
      },
      5);
  const double comm = net.params().CommRadius();
  for (std::size_t v = 0; v < n_field; ++v) {
    for (std::size_t u = 0; u < n_field; ++u) {
      if (u == v || net.Distance(u, v) > comm) continue;
      EXPECT_NE(std::find(heard_by[v].begin(), heard_by[v].end(), u),
                heard_by[v].end())
          << u << " missed " << v;
    }
  }
}

TEST(JammerTest, ClusteringCompletesWithFarJammersFailsLoudlyWithNear) {
  const auto params = TestParams();
  auto pts = workload::UniformSquare(64, 4.0, 9);
  const std::size_t n_field = pts.size();
  pts.push_back({50.0, 50.0});  // far jammer
  const auto net = workload::MakeNetwork(pts, params, 4);
  const auto prof = cluster::Profile::Practical(params.id_space);
  std::vector<std::size_t> members(n_field);
  for (std::size_t i = 0; i < n_field; ++i) members[i] = i;

  {
    sim::Exec ex(net);
    ex.SetBackgroundTransmitters({n_field}, sim::Message{});
    const auto res = cluster::BuildClustering(ex, prof, members, 12, 1);
    EXPECT_EQ(res.unassigned, 0u);
    const auto chk = cluster::CheckClustering(net, members, res.cluster_of);
    EXPECT_TRUE(chk.ValidRClustering(1.0, params.eps));
  }

  // A jammer inside the field: nodes near it can never receive, so the
  // pipeline must *visibly* fail (unassigned nodes or invalid clustering),
  // never silently produce a wrong answer.
  auto pts2 = workload::UniformSquare(64, 4.0, 9);
  pts2.push_back({2.0, 2.0});
  const auto net2 = workload::MakeNetwork(pts2, params, 4);
  {
    sim::Exec ex(net2);
    ex.SetBackgroundTransmitters({n_field}, sim::Message{});
    const auto res = cluster::BuildClustering(ex, prof, members, 12, 1);
    const auto chk = cluster::CheckClustering(net2, members, res.cluster_of);
    EXPECT_TRUE(res.unassigned > 0 ||
                !chk.ValidRClustering(1.0, params.eps))
        << "in-field jammer went unnoticed";
  }
}

}  // namespace
}  // namespace dcc
