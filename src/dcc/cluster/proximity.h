// ProximityGraphConstruction (Alg. 1, Lemma 7).
//
// Builds, for a (clustered) active set, a constant-degree graph H that
// contains every close pair (Definition 1) as an edge, in O(log N) rounds:
//
//   Exchange phase:      execute the wss/wcss schedule S once; every node
//                        records who it heard and in which rounds.
//   Filtering phase:     v drops w from its candidate set if v heard some
//                        u != w in a round where the public schedule had w
//                        transmitting — the "witnessed" implicit collision
//                        detection. Candidate sets larger than kappa purge.
//   Confirmation phase:  kappa repetitions of S; repetition j carries v's
//                        j-th candidate <v, u>; mutual candidates become
//                        edges.
//
// The returned adjacency uses positions into `parts`. The schedule is
// returned so callers can replay it: every reception along an H-edge that
// happened in the exchange phase recurs in any replay whose transmitter
// sets are subsets of the exchange-phase ones (the SINR "subset argument":
// removing interferers can only help the strongest sender).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dcc/cluster/profile.h"
#include "dcc/sim/runner.h"
#include "dcc/sim/schedule.h"

namespace dcc::cluster {

struct ProximityResult {
  // adj[p] = positions (into parts) of p's H-neighbors; degree <= kappa.
  std::vector<std::vector<std::size_t>> adj;
  std::shared_ptr<const sim::Schedule> schedule;
  Round rounds = 0;
};

// `clustered` selects the wcss (cluster-aware) variant; in that mode
// messages from other clusters are ignored and edges stay intra-cluster.
ProximityResult BuildProximityGraph(sim::Exec& ex, const Profile& prof,
                                    const std::vector<sim::Participant>& parts,
                                    bool clustered, std::uint64_t nonce);

}  // namespace dcc::cluster
