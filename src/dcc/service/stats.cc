#include "dcc/service/stats.h"

#include <ostream>

#include "dcc/common/json.h"

namespace dcc::service {

void LatencyHistogram::Record(std::int64_t micros) {
  int bucket = 0;
  while (bucket + 1 < kBuckets && micros >= (std::int64_t{2} << bucket)) {
    ++bucket;
  }
  buckets_[static_cast<std::size_t>(bucket)].fetch_add(
      1, std::memory_order_relaxed);
}

double LatencyHistogram::QuantileUpperMs(double q) const {
  std::array<std::int64_t, kBuckets> snap;
  std::int64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    snap[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    total += snap[static_cast<std::size_t>(i)];
  }
  if (total == 0) return 0.0;
  const auto rank =
      static_cast<std::int64_t>(q * static_cast<double>(total) + 0.999999);
  std::int64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += snap[static_cast<std::size_t>(i)];
    if (seen >= rank) {
      return static_cast<double>(std::int64_t{2} << i) / 1000.0;
    }
  }
  return static_cast<double>(std::int64_t{2} << (kBuckets - 1)) / 1000.0;
}

std::int64_t LatencyHistogram::count() const {
  std::int64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

namespace {

double Rate(std::int64_t hits, std::int64_t misses) {
  const std::int64_t lookups = hits + misses;
  return lookups == 0
             ? 0.0
             : static_cast<double>(hits) / static_cast<double>(lookups);
}

}  // namespace

void ServiceStats::PrintJson(std::ostream& os) const {
  os << "{\"schema\": \"dcc.service.v1\", \"uptime_ms\": " << uptime_ms
     << ", \"connections_active\": " << connections_active
     << ", \"connections_total\": " << connections_total
     << ", \"requests\": " << requests << ", \"runs\": " << runs
     << ", \"errors\": " << errors << ", \"result_hits\": " << result_hits
     << ", \"result_misses\": " << result_misses
     << ", \"result_hit_rate\": " << JsonNumber(Rate(result_hits,
                                                     result_misses))
     << ", \"topology_hits\": " << topology_hits
     << ", \"topology_misses\": " << topology_misses
     << ", \"topology_hit_rate\": " << JsonNumber(Rate(topology_hits,
                                                       topology_misses))
     << ", \"queue_depth\": " << queue_depth
     << ", \"queue_peak\": " << queue_peak
     << ", \"queue_capacity\": " << queue_capacity
     << ", \"throughput_rps\": " << JsonNumber(throughput_rps)
     << ", \"latency_ms_p50\": " << JsonNumber(latency_ms_p50)
     << ", \"latency_ms_p99\": " << JsonNumber(latency_ms_p99)
     << ", \"draining\": " << (draining ? "true" : "false") << '}';
}

}  // namespace dcc::service
