#include "dcc/mobility/churn.h"

#include <cmath>
#include <cstddef>

#include "dcc/common/types.h"

namespace dcc::mobility {

ChurnProcess::ChurnProcess(double leave_rate, double join_rate,
                           std::uint64_t seed)
    : leave_rate_(leave_rate), join_rate_(join_rate), rng_(seed) {
  DCC_REQUIRE(leave_rate >= 0.0 && join_rate >= 0.0,
              "churn: rates must be >= 0");
}

void ChurnProcess::Step(double dt, std::span<char> active, Delta& delta) {
  delta.Clear();
  const double p_leave = 1.0 - std::exp(-leave_rate_ * dt);
  const double p_join = 1.0 - std::exp(-join_rate_ * dt);
  std::size_t remaining = 0;
  for (const char a : active) remaining += a ? 1 : 0;
  for (std::size_t i = 0; i < active.size(); ++i) {
    if (active[i]) {
      // The draw happens even for the protected last node, so whether a
      // node is spared never shifts the random stream of later nodes.
      const bool leaves = rng_.NextDouble() < p_leave;
      if (leaves && remaining > 1) {
        active[i] = 0;
        --remaining;
        delta.left.push_back(i);
      }
    } else {
      if (rng_.NextDouble() < p_join) {
        active[i] = 1;
        ++remaining;
        delta.joined.push_back(i);
      }
    }
  }
}

}  // namespace dcc::mobility
