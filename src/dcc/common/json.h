// Minimal JSON support: emission helpers for schema-stable reports, and a
// small recursive-descent *parser* for the service wire protocol
// (src/dcc/service) — requests and responses are JSON frames, so both ends
// need to read values back. The parser accepts strict JSON (RFC 8259): no
// comments, no trailing commas, doubles for every number (wire ids and
// seeds stay under 2^53).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace dcc {

// Escapes and quotes `s` as a JSON string literal.
std::string JsonQuote(const std::string& s);

// Shortest decimal representation of `v` that parses back to the same
// double (so emitted metrics are exact and stable across runs). Non-finite
// values — which JSON cannot carry — become null.
std::string JsonNumber(double v);

// One parsed JSON value. Object members keep no insertion order (lookup
// only); arrays keep element order. Accessors throw InvalidArgument on a
// kind mismatch so protocol handlers fail loudly on malformed peers.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  // Parses exactly one JSON document (trailing whitespace allowed, trailing
  // garbage rejected). Throws InvalidArgument on malformed input or nesting
  // deeper than 64 levels.
  static JsonValue Parse(const std::string& text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  bool GetBool() const;
  double GetNumber() const;
  const std::string& GetString() const;
  const std::vector<JsonValue>& GetArray() const;

  // Object member lookup; nullptr when absent (or when this is not an
  // object — absent and wrong-shape read the same to a protocol handler).
  const JsonValue* Find(const std::string& key) const;

  // Convenience typed member reads with fallbacks for optional fields.
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;
  double GetNumber(const std::string& key, double fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::map<std::string, JsonValue> obj_;

  friend class JsonParser;
};

}  // namespace dcc
