// All algorithm constants in one place.
//
// The paper's proofs stack several constants: the close-neighbor constant
// kappa (Lemmas 5-6), the conflicting-cluster constant rho (Lemma 6), the
// SNS density gamma and its ssf parameter k_gamma (Lemma 4), the packing
// numbers chi(5, 1-eps) (Alg. 3) and chi(r+1, 1-eps) (Alg. 5). Deriving
// them literally from the proofs yields values that are astronomically
// conservative (e.g. kappa in the millions for alpha = 3) — sound but
// unusable, as is normal for worst-case interference bounds.
//
// We therefore carry every constant in a `Profile`:
//  * `Theory(params, N)` computes the proof-shaped values (documented
//    formulas below) — used to *exhibit* the constants, not to run.
//  * `Practical(N)` uses calibrated values; the geometric validators in
//    tests/ verify all postconditions (clustering validity, close-pair
//    coverage, broadcast success) under this profile, so calibration cannot
//    silently break correctness. See DESIGN.md §4.3.
#pragma once

#include <cstdint>
#include <memory>

#include "dcc/sim/schedule.h"
#include "dcc/sinr/params.h"

namespace dcc::cluster {

struct Profile {
  // --- structural constants ---
  int kappa = 5;   // close-neighbor constant (Lemmas 5-6)
  int rho = 4;     // conflicting clusters per cluster (Lemma 6)

  // --- selector sizing ---
  // Explicit lengths; 0 means "use c * theory formula".
  std::int64_t wss_len = 0;
  std::int64_t wcss_len = 0;
  double wss_c = 0.35;
  double wcss_c = 0.10;

  // --- Sparse Network Schedule (Lemma 4) ---
  int sns_k = 8;                 // selection parameter k_gamma
  bool sns_use_prime_ssf = false;  // deterministic prime ssf vs seeded
  std::int64_t sns_len = 0;      // seeded variant length; 0 = c * k^2 ln N
  double sns_c = 1.0;

  // --- loop counts ---
  int l_uncl = 2;      // Alg. 3 repetition count (theory: chi(5, 1-eps))
  int rr_iters = 3;    // Alg. 5 loop count (theory: chi(r+1, 1-eps))
  int mis_rounds = 10; // LOCAL-round cap for local-minima MIS
  bool use_linial_mis = false;  // full Linial pipeline instead of the cap
  int label_reps = 3;  // per-stage replays in top-down labeling delivery

  // Instrumentation: allow stages to stop once a fixpoint is centrally
  // detected (round counts then measure actual progress; the worst-case
  // schedule length is reported separately by benches). Never changes any
  // node's decision — only truncates provably idle stage suffixes.
  bool early_stop = true;

  // Selector seed — fixed, public, part of the algorithm description.
  std::uint64_t seed = 0x9E3779B97F4A7C15ull;

  static Profile Practical(std::int64_t id_space);
  static Profile Theory(const sinr::Params& params, std::int64_t id_space);

  // --- schedule factories (shared by all algorithms) ---
  // `nonce` freshens the selector per invocation; it is derived from public
  // stage counters, so all nodes agree on it.
  std::shared_ptr<sim::Schedule> MakeWss(std::int64_t N,
                                         std::uint64_t nonce) const;
  std::shared_ptr<sim::Schedule> MakeWcss(std::int64_t N,
                                          std::uint64_t nonce) const;
  std::shared_ptr<sim::Schedule> MakeSns(std::int64_t N,
                                         std::uint64_t nonce) const;

  std::int64_t WssLen(std::int64_t N) const;
  std::int64_t WcssLen(std::int64_t N) const;
  std::int64_t SnsLen(std::int64_t N) const;
};

}  // namespace dcc::cluster
