#include "dcc/cluster/labeling.h"

#include "dcc/obs/trace.h"

#include <algorithm>
#include <functional>
#include <optional>

namespace dcc::cluster {

namespace {

constexpr std::int32_t kSubtreeSizeMsg = 121;
constexpr std::int32_t kLabelRangeMsg = 122;

}  // namespace

LabelingResult ImperfectLabeling(sim::Exec& ex, const Profile& prof,
                                 const std::vector<std::size_t>& members,
                                 const std::vector<ClusterId>& cluster_of,
                                 int gamma, std::uint64_t nonce) {
  DCC_TRACE_SPAN("cluster.labeling");
  const sinr::Network& net = ex.net();
  const Round start = ex.rounds();
  LabelingResult res;

  FullSparsifyResult forest =
      FullSparsify(ex, prof, members, cluster_of, gamma, nonce);

  // Per-node tree bookkeeping, keyed by NodeId (all entries are knowledge a
  // node legitimately has: its own link and what it heard from children).
  struct TreeInfo {
    std::int64_t subtree = 1;
    // children in deterministic (id) order with their reported sizes and
    // the stage at which they linked.
    std::vector<std::tuple<NodeId, std::int64_t, int>> children;
    std::int64_t lo = 0, hi = 0;  // assigned label range
    bool has_range = false;
  };
  std::unordered_map<NodeId, TreeInfo> info;
  for (const std::size_t idx : members) info[net.id(idx)];

  // children-by-stage for scheduling the replays.
  const int num_stages = static_cast<int>(forest.stages.size());
  std::vector<std::vector<NodeId>> stage_children(
      static_cast<std::size_t>(std::max(num_stages, 1)));
  for (const auto& [child, link] : forest.links) {
    DCC_CHECK(link.stage >= 0 && link.stage < num_stages);
    stage_children[static_cast<std::size_t>(link.stage)].push_back(child);
  }

  // --- Bottom-up: subtree sizes (stages in execution order) ---------------
  for (int s = 0; s < num_stages; ++s) {
    if (stage_children[static_cast<std::size_t>(s)].empty()) continue;
    const ExchangeStage& stage = forest.stages[static_cast<std::size_t>(s)];
    std::unordered_map<std::size_t, std::size_t> pos_of_index;
    for (std::size_t p = 0; p < stage.participants.size(); ++p) {
      pos_of_index.emplace(stage.participants[p].index, p);
    }
    // Dedupe: a parent may hear the same child in several rounds.
    std::unordered_map<NodeId, std::vector<NodeId>> seen;  // parent -> childs
    sim::ExecuteSchedule(
        ex, *stage.schedule, stage.participants,
        [&](std::size_t idx, std::int64_t) -> std::optional<sim::Message> {
          const NodeId id = net.id(idx);
          const auto lit = forest.links.find(id);
          if (lit == forest.links.end() || lit->second.stage != s)
            return std::nullopt;
          sim::Message m;
          m.src = id;
          m.cluster = cluster_of[idx];
          m.kind = kSubtreeSizeMsg;
          m.a = lit->second.parent;    // addressee
          m.b = info.at(id).subtree;   // accumulated size
          return m;
        },
        [&](std::size_t listener, const sim::Message& m, std::int64_t) {
          if (m.kind != kSubtreeSizeMsg) return;
          if (!pos_of_index.count(listener)) return;
          const NodeId me = net.id(listener);
          if (m.a != me) return;
          auto& kids = seen[me];
          if (std::find(kids.begin(), kids.end(), m.src) != kids.end()) return;
          kids.push_back(m.src);
          auto& ti = info.at(me);
          ti.subtree += m.b;
          ti.children.emplace_back(m.src, m.b, s);
        });
  }

  // Deterministic child order (by id) for range splitting.
  for (auto& [id, ti] : info) {
    std::sort(ti.children.begin(), ti.children.end());
  }

  // --- Roots take [1, subtree] --------------------------------------------
  for (const std::size_t idx : forest.final_set()) {
    auto& ti = info.at(net.id(idx));
    ti.lo = 1;
    ti.hi = ti.subtree;
    ti.has_range = true;
  }

  // Splits [lo+1, hi] among children in id order. Returns child's range.
  const auto child_range = [&](const TreeInfo& ti,
                               NodeId child) -> std::pair<std::int64_t, std::int64_t> {
    std::int64_t next = ti.lo + 1;
    for (const auto& [cid, csz, cstage] : ti.children) {
      if (cid == child) return {next, next + csz - 1};
      next += csz;
    }
    DCC_CHECK_MSG(false, "child_range: unknown child");
    std::abort();
  };

  // --- Top-down: ranges (stages in reverse order) --------------------------
  for (int s = num_stages - 1; s >= 0; --s) {
    const auto& kids = stage_children[static_cast<std::size_t>(s)];
    if (kids.empty()) continue;
    const ExchangeStage& stage = forest.stages[static_cast<std::size_t>(s)];
    std::unordered_map<std::size_t, std::size_t> pos_of_index;
    for (std::size_t p = 0; p < stage.participants.size(); ++p) {
      pos_of_index.emplace(stage.participants[p].index, p);
    }
    for (int rep = 0; rep < prof.label_reps; ++rep) {
      sim::ExecuteSchedule(
          ex, *stage.schedule, stage.participants,
          [&](std::size_t idx, std::int64_t) -> std::optional<sim::Message> {
            const NodeId me = net.id(idx);
            const auto iit = info.find(me);
            if (iit == info.end() || !iit->second.has_range)
              return std::nullopt;
            // rep-th child linked at stage s, in id order.
            int count = 0;
            for (const auto& [cid, csz, cstage] : iit->second.children) {
              if (cstage != s) continue;
              if (count == rep) {
                const auto [lo, hi] = child_range(iit->second, cid);
                sim::Message m;
                m.src = me;
                m.cluster = cluster_of[idx];
                m.kind = kLabelRangeMsg;
                m.a = cid;
                m.b = lo;
                m.c = hi;
                return m;
              }
              ++count;
            }
            return std::nullopt;
          },
          [&](std::size_t listener, const sim::Message& m, std::int64_t) {
            if (m.kind != kLabelRangeMsg) return;
            if (!pos_of_index.count(listener)) return;
            const NodeId me = net.id(listener);
            if (m.a != me) return;
            auto& ti = info.at(me);
            if (!ti.has_range) {
              ti.lo = m.b;
              ti.hi = m.c;
              ti.has_range = true;
            }
          });
    }
  }

  // --- Final labels ---------------------------------------------------------
  for (const std::size_t idx : members) {
    const NodeId id = net.id(idx);
    const auto& ti = info.at(id);
    // Nodes that never received a range (possible only if label_reps was
    // too small for a very child-heavy stage) fall back to label 1; the
    // validator counts collisions, so miscalibration is loud in tests.
    const int label = ti.has_range ? static_cast<int>(ti.lo) : 1;
    res.label[id] = label;
    res.max_label = std::max(res.max_label, label);
  }
  res.rounds = ex.rounds() - start;
  return res;
}

}  // namespace dcc::cluster
