// Built-in topology registrations: every workload:: generator, keyed by
// name, parameterized through the spec's ParamMap. Defaults are sized so
// every topology runs in well under a second with any algorithm.
#include "dcc/scenario/registry.h"
#include "dcc/workload/generators.h"

namespace dcc::scenario {

void RegisterBuiltinTopologies(TopologyRegistry& reg) {
  reg.Register(
      "uniform",
      [](const ParamMap& p, const sinr::Params&, std::uint64_t seed) {
        return workload::UniformSquare(
            static_cast<int>(p.GetInt("n", 128)), p.GetDouble("side", 5.0),
            seed);
      },
      "n=128,side=5 — n points uniform in a side x side square");
  reg.Register(
      "connected_uniform",
      [](const ParamMap& p, const sinr::Params& sp, std::uint64_t seed) {
        return workload::ConnectedUniform(
            static_cast<int>(p.GetInt("n", 96)), p.GetDouble("side", 4.0), sp,
            seed, static_cast<int>(p.GetInt("max_tries", 64)));
      },
      "n=96,side=4,max_tries=64 — uniform square resampled until connected");
  reg.Register(
      "blob_chain",
      [](const ParamMap& p, const sinr::Params&, std::uint64_t seed) {
        return workload::BlobChain(static_cast<int>(p.GetInt("blobs", 6)),
                                   static_cast<int>(p.GetInt("per_blob", 10)),
                                   p.GetDouble("sigma", 0.3),
                                   p.GetDouble("spacing", 1.2), seed);
      },
      "blobs=6,per_blob=10,sigma=0.3,spacing=1.2 — Gaussian blob chain "
      "(elongated, dense spots)");
  reg.Register(
      "grid",
      [](const ParamMap& p, const sinr::Params&, std::uint64_t) {
        return workload::Grid(static_cast<int>(p.GetInt("rows", 8)),
                              static_cast<int>(p.GetInt("cols", 8)),
                              p.GetDouble("pitch", 0.5));
      },
      "rows=8,cols=8,pitch=0.5 — regular grid (seed-independent)");
  reg.Register(
      "line",
      [](const ParamMap& p, const sinr::Params&, std::uint64_t seed) {
        return workload::Line(static_cast<int>(p.GetInt("n", 32)),
                              p.GetDouble("pitch", 0.5), seed);
      },
      "n=32,pitch=0.5 — jittered line (max-diameter regime)");
  reg.Register(
      "ring",
      [](const ParamMap& p, const sinr::Params&, std::uint64_t) {
        return workload::Ring(static_cast<int>(p.GetInt("n", 32)),
                              p.GetDouble("radius", 2.5));
      },
      "n=32,radius=2.5 — ring (seed-independent)");
  reg.Register(
      "corridor",
      [](const ParamMap& p, const sinr::Params&, std::uint64_t seed) {
        return workload::Corridor(static_cast<int>(p.GetInt("n", 128)),
                                  p.GetDouble("length", 12.0),
                                  p.GetDouble("width", 3.0),
                                  static_cast<int>(p.GetInt("holes", 3)),
                                  p.GetDouble("hole_side", 1.5), seed);
      },
      "n=128,length=12,width=3,holes=3,hole_side=1.5 — corridor with "
      "pinch points");
  reg.Register(
      "two_scale",
      [](const ParamMap& p, const sinr::Params&, std::uint64_t seed) {
        return workload::TwoScale(static_cast<int>(p.GetInt("n_sparse", 96)),
                                  p.GetDouble("side", 6.0),
                                  static_cast<int>(p.GetInt("hotspots", 3)),
                                  static_cast<int>(p.GetInt("n_dense", 24)),
                                  p.GetDouble("sigma", 0.25), seed);
      },
      "n_sparse=96,side=6,hotspots=3,n_dense=24,sigma=0.25 — sparse "
      "backdrop + dense hotspots (extreme density contrast)");
  reg.Register(
      "star",
      [](const ParamMap& p, const sinr::Params&, std::uint64_t) {
        return workload::Star(static_cast<int>(p.GetInt("arms", 5)),
                              static_cast<int>(p.GetInt("per_arm", 6)),
                              p.GetDouble("pitch", 0.5));
      },
      "arms=5,per_arm=6,pitch=0.5 — hub with rays (seed-independent)");
}

}  // namespace dcc::scenario
