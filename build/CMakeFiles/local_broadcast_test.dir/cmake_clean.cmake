file(REMOVE_RECURSE
  "CMakeFiles/local_broadcast_test.dir/tests/local_broadcast_test.cc.o"
  "CMakeFiles/local_broadcast_test.dir/tests/local_broadcast_test.cc.o.d"
  "local_broadcast_test"
  "local_broadcast_test.pdb"
  "local_broadcast_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_broadcast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
