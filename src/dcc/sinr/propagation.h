// The propagation layer: how transmit power turns into received power.
//
// `Network` composes a PropagationModel instead of baking the power law in,
// so experiments can swap radio conditions (pure path loss, deterministic
// shadowing, theory-mode truncation) without touching the interference or
// execution layers. Models are immutable and shared by const reference.
//
// Besides point-to-point gains, a model exposes a distance *envelope* —
// upper/lower bounds on the gain of any link whose length falls in a given
// interval. The grid-indexed SINR engine uses the envelope to bound the
// aggregate interference of whole tiles without enumerating their members;
// envelopes must therefore be conservative for every id pair.
#pragma once

#include <cmath>
#include <cstdint>
#include <memory>

#include "dcc/common/geometry.h"
#include "dcc/common/types.h"
#include "dcc/sinr/params.h"

namespace dcc::sinr {

// Forward-declared here so network.h can keep including only params.h.
struct Shadowing;

class PropagationModel {
 public:
  virtual ~PropagationModel() = default;

  // The primitive: received power over a link of squared length `d2`
  // between nodes `id_a` and `id_b`. Ids identify the link for models with
  // per-link structure (shadowing); gains are symmetric in id order.
  // Working in squared distance lets callers skip the sqrt of the hot
  // distance computation.
  virtual double GainFromDistanceSq(double d2, NodeId id_a,
                                    NodeId id_b) const = 0;

  // Received power at `b` of a transmission from `a`. Distinct co-located
  // nodes fall into the kMinDistanceSq clamp (a huge but finite gain),
  // matching the engine's devirtualized kernels; "no self-gain" is the
  // Network layer's job, keyed on node identity, not position.
  double Gain(Vec2 a, Vec2 b, NodeId id_a, NodeId id_b) const {
    return GainFromDistanceSq(Dist2(a, b), id_a, id_b);
  }

  // Envelope: an upper bound on Gain over every link of length >= d_lo, and
  // a lower bound over every link of length <= d_hi (0 < d_lo, d_hi).
  virtual double MaxGain(double d_lo) const = 0;
  virtual double MinGain(double d_hi) const = 0;

  virtual const char* name() const = 0;
};

// Pure power law: P / d^alpha (the paper's model, Eq. 1). Co-located points
// are clamped to a tiny distance defensively; the model places distinct
// nodes at distinct positions.
//
// The engine devirtualizes its hot loops onto GainD2 when the network's
// model is exactly this class, so GainD2 is the single arithmetic kernel
// all gain paths (dense matrix, on-the-fly, grid scans) agree on.
class PathLossModel : public PropagationModel {
 public:
  explicit PathLossModel(const Params& params);

  // P / d2^{alpha/2}, with the common alpha = 3 specialized to
  // multiply+sqrt instead of pow.
  double GainD2(double d2) const {
    d2 = d2 < kMinDistanceSq ? kMinDistanceSq : d2;
    if (alpha_is_3_) return power_ / (d2 * std::sqrt(d2));
    return power_ * std::pow(d2, -0.5 * alpha_);
  }

  double GainFromDistanceSq(double d2, NodeId id_a,
                            NodeId id_b) const override;
  double MaxGain(double d_lo) const override;
  double MinGain(double d_hi) const override;
  const char* name() const override { return "path_loss"; }

  double power() const { return power_; }
  double alpha() const { return alpha_; }
  bool alpha_is_three() const { return alpha_is_3_; }

  static constexpr double kMinDistanceSq = 1e-18;

 protected:
  double power_;
  double alpha_;
  bool alpha_is_3_;
};

// Path loss perturbed by a deterministic per-link multiplicative factor,
// log-uniform in [1/(1+spread), 1+spread], symmetric and seeded. Models the
// idealized-SINR / real-radio gap while keeping runs reproducible.
class LogUniformShadowingModel : public PathLossModel {
 public:
  LogUniformShadowingModel(const Params& params, double spread,
                           std::uint64_t seed);

  double GainFromDistanceSq(double d2, NodeId id_a,
                            NodeId id_b) const override;
  double MaxGain(double d_lo) const override;
  double MinGain(double d_hi) const override;
  const char* name() const override { return "log_uniform_shadowing"; }

  // The per-link factor alone (exposed for tests).
  double Factor(NodeId id_a, NodeId id_b) const;

  double spread() const { return spread_; }

 private:
  double spread_;
  std::uint64_t seed_;
};

// Theory mode: the power law of the proofs with interference truncated to
// zero beyond `cutoff` — the bounded-interference idealization several of
// the paper's lemmas reason in. Useful for isolating how much of a
// protocol's behavior is due to far-field interference the analysis
// ignores. `cutoff` defaults to 8x the transmission range.
class TheoryModel : public PathLossModel {
 public:
  explicit TheoryModel(const Params& params, double cutoff = 0.0);

  double GainFromDistanceSq(double d2, NodeId id_a,
                            NodeId id_b) const override;
  double MaxGain(double d_lo) const override;
  double MinGain(double d_hi) const override;
  const char* name() const override { return "theory"; }

  double cutoff() const { return cutoff_; }

 private:
  double cutoff_;
};

// The model matching the legacy (params, shadowing) Network constructor:
// LogUniformShadowingModel when spread > 0, else PathLossModel.
std::shared_ptr<const PropagationModel> MakeDefaultModel(
    const Params& params, const Shadowing& shadowing);

}  // namespace dcc::sinr
