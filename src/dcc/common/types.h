// Basic aliases and invariant-checking macros used across the library.
//
// Conventions (paper, Section 1.1 / 2):
//  * Node IDs are unique values from [N] = {1, ..., N}; we store them as
//    `NodeId` (0 is reserved for "no node").
//  * Cluster IDs are also drawn from [N] (a cluster is named after a node).
//  * "Index" types (positions in the simulator's node array) are plain
//    `std::size_t` and are *not* visible to protocol code, which may only use
//    IDs — the knowledge model of the paper.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>

namespace dcc {

using NodeId = std::int64_t;     // unique identifier in [1, N]
using ClusterId = std::int64_t;  // cluster name in [1, N]; kNoCluster if none
using Round = std::int64_t;      // global round counter

inline constexpr NodeId kNoNode = 0;
inline constexpr ClusterId kNoCluster = 0;

// Thrown on violated preconditions in public API entry points.
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

// Internal invariant failure: fail fast with location info. These guard
// algorithm invariants proven in the paper; a firing check means the
// implementation (or a calibrated constant) is wrong, not the input.
[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "DCC_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

#define DCC_CHECK(expr)                                 \
  do {                                                  \
    if (!(expr)) ::dcc::CheckFailed(#expr, __FILE__, __LINE__); \
  } while (0)

#define DCC_CHECK_MSG(expr, msg)                                          \
  do {                                                                    \
    if (!(expr)) {                                                        \
      std::fprintf(stderr, "DCC_CHECK failed: %s (%s) at %s:%d\n", #expr, \
                   msg, __FILE__, __LINE__);                              \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

// Precondition on user-supplied arguments: throws instead of aborting.
#define DCC_REQUIRE(expr, msg)                                      \
  do {                                                              \
    if (!(expr)) throw ::dcc::InvalidArgument(std::string("precondition: ") + msg); \
  } while (0)

}  // namespace dcc
