file(REMOVE_RECURSE
  "CMakeFiles/smsb_test.dir/tests/smsb_test.cc.o"
  "CMakeFiles/smsb_test.dir/tests/smsb_test.cc.o.d"
  "smsb_test"
  "smsb_test.pdb"
  "smsb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smsb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
