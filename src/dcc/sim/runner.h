// Round execution over the SINR engine.
//
// `Exec` is the shared round clock: every protocol stage in a composite
// algorithm advances the same Exec, so measured round counts are end-to-end.
//
// Knowledge discipline: protocol code receives node *indices* for engine
// efficiency but must base decisions only on node-visible state: own ID,
// public parameters (N, Gamma, SINR params, profile), the round counter and
// previously received messages. The cluster algorithms keep per-node state
// in arrays indexed by node and only ever read their own entry + messages.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "dcc/sim/message.h"
#include "dcc/sinr/engine.h"
#include "dcc/sinr/network.h"

namespace dcc::sim {

class Exec {
 public:
  // `engine_options` selects the interference resolution strategy (exact vs
  // grid-indexed) for every round this Exec runs; the default auto mode
  // picks by network size.
  explicit Exec(const sinr::Network& net,
                sinr::Engine::Options engine_options = {});

  using Decide = std::function<std::optional<Message>(std::size_t)>;
  using Hear = std::function<void(std::size_t, const Message&)>;

  // Runs one SINR round.
  //  * `candidates`: indices that may transmit; `decide` is called for each
  //    and a returned message means "transmit".
  //  * every non-transmitting node is a listener; `hear` fires on each
  //    successful reception (including nodes outside `candidates` — that is
  //    how sleeping nodes get woken in the broadcast problems).
  // Returns the number of transmitters.
  int RunRound(const std::vector<std::size_t>& candidates,
               const Decide& decide, const Hear& hear);

  // Advances the round clock without executing (used to account for stages
  // a node set sits out; keeps measured totals aligned with schedules).
  void ChargeRounds(Round r) {
    DCC_REQUIRE(r >= 0, "ChargeRounds: negative charge");
    round_ += r;
  }

  Round rounds() const { return round_; }
  const sinr::Network& net() const { return *net_; }
  sinr::Engine& engine() { return engine_; }

  // Max transmitters observed in any single round (diagnostics).
  int max_concurrent_tx() const { return max_tx_; }

  // Optional per-round observer (round, transmitter indices, receptions);
  // used by test oracles and benches, never by protocol logic.
  using Observer = std::function<void(Round, const std::vector<std::size_t>&,
                                      const std::vector<sinr::Reception>&)>;
  void SetObserver(Observer obs) { observer_ = std::move(obs); }

  // Failure injection: nodes that transmit `msg` in *every* round
  // (jammers / rogue beacons). They participate in the SINR computation as
  // interferers, their messages are delivered like any other, and they
  // never listen. Protocol code is unaware of them — that is the point.
  void SetBackgroundTransmitters(std::vector<std::size_t> nodes, Message msg);
  void ClearBackgroundTransmitters() { background_.clear(); }

  // Round lookahead (engine pipelining): protocols whose transmit set is a
  // pure function of the round number (schedule-driven — the TDMA family)
  // disclose the next round so the engine can build its prologue while the
  // current round's shards still resolve. The callback receives the global
  // round number about to execute next and appends the indices that will
  // transmit in it, in candidate order; returning false means "no
  // prediction for that round" and skips the disclosure. Exec applies the
  // same activity-mask and background-transmitter transforms RunRound
  // itself will, so a correct prediction matches the executed round
  // exactly. A wrong prediction is safe — the engine validates before use;
  // it just wastes the speculative build. The whole hook is skipped unless
  // the engine pipeline is enabled, so it costs nothing otherwise. Clear
  // it (nullptr) when the schedule ends.
  using Lookahead = std::function<bool(Round, std::vector<std::size_t>&)>;
  void SetLookahead(Lookahead lookahead) { lookahead_ = std::move(lookahead); }

  // Churn (dynamic networks): nodes with mask[i] == 0 are *off* — they
  // neither transmit (candidates and background transmitters are filtered)
  // nor listen, exactly as if powered down, and they may be absent from
  // the engine's spatial index. The mask must outlive the rounds run under
  // it; an empty span restores the everyone-on default. Protocol code
  // stays unaware: departed nodes simply drop out of the member sets the
  // scenario layer passes in.
  void SetActivityMask(std::span<const char> mask);

 private:
  const sinr::Network* net_;
  sinr::Engine engine_;
  Round round_ = 0;
  int max_tx_ = 0;
  // scratch, reused across rounds (RunRound is allocation-free after the
  // first few rounds warm these up)
  std::vector<std::size_t> tx_;
  std::vector<Message> msgs_;
  std::vector<std::size_t> listeners_;
  std::vector<char> is_tx_;
  std::vector<std::size_t> slot_of_;
  std::vector<sinr::Reception> receptions_;
  Observer observer_;
  Lookahead lookahead_;
  std::vector<std::size_t> next_tx_;
  std::vector<std::size_t> next_listeners_;
  std::vector<char> next_is_tx_;
  std::vector<std::size_t> background_;
  Message background_msg_;
  std::span<const char> active_;  // empty = all nodes on
};

// --- Per-node protocol interface (used by baselines and examples). ---
class NodeProtocol {
 public:
  virtual ~NodeProtocol() = default;
  // Transmit decision for global round r; nullopt = listen.
  virtual std::optional<Message> OnRound(Round r) = 0;
  virtual void OnHear(Round r, const Message& m) = 0;
  // A protocol may declare itself finished; Runner stops when all are.
  virtual bool Done() const { return false; }
};

class Runner {
 public:
  explicit Runner(const sinr::Network& net,
                  sinr::Engine::Options engine_options = {})
      : exec_(net, engine_options) {}

  // Runs protocols (one per node index, non-null) until all Done() or
  // max_rounds elapse. Returns rounds executed.
  Round Run(std::vector<NodeProtocol*> protocols, Round max_rounds);

  Exec& exec() { return exec_; }

 private:
  Exec exec_;
};

}  // namespace dcc::sim
