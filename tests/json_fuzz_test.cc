// Property/fuzz coverage for the JSON parser (common/json.cc): random
// document round-trips, truncation, depth bombs, and byte garbage. The
// parser sits on the service wire protocol, so the property that matters
// is "malformed input throws InvalidArgument — it never crashes, hangs,
// or reads past the buffer" (the latter enforced by sanitizer CI runs).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dcc/common/json.h"
#include "dcc/common/rng.h"
#include "dcc/common/types.h"

namespace dcc {
namespace {

// Test-side model tree: generated first, serialized with the library's own
// emission helpers, then parsed back and structurally compared.
struct Model {
  JsonValue::Kind kind = JsonValue::Kind::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<Model> arr;
  std::map<std::string, Model> obj;
};

std::string RandomString(Xoshiro256ss& rng) {
  // ASCII incl. every character JsonQuote must escape: quotes, backslash,
  // control bytes (which become \uXXXX).
  static const char pool[] = "abz09 \"\\/\n\t\r\b\f\x01\x1f{}[]:,";
  std::string s;
  const std::size_t len = rng.NextBelow(12);
  for (std::size_t i = 0; i < len; ++i) {
    s.push_back(pool[rng.NextBelow(sizeof(pool) - 1)]);
  }
  return s;
}

double RandomNumber(Xoshiro256ss& rng) {
  switch (rng.NextBelow(4)) {
    case 0:
      return static_cast<double>(rng.NextBelow(1000000)) -  500000.0;
    case 1:
      return (rng.NextDouble() - 0.5) * 1e-6;
    case 2:
      return (rng.NextDouble() - 0.5) * 1e18;
    default:
      return rng.NextDouble();
  }
}

Model RandomModel(Xoshiro256ss& rng, int depth) {
  Model m;
  const std::uint64_t pick = rng.NextBelow(depth > 0 ? 6 : 4);
  switch (pick) {
    case 0:
      m.kind = JsonValue::Kind::kNull;
      break;
    case 1:
      m.kind = JsonValue::Kind::kBool;
      m.b = rng.NextBelow(2) == 1;
      break;
    case 2:
      m.kind = JsonValue::Kind::kNumber;
      m.num = RandomNumber(rng);
      break;
    case 3:
      m.kind = JsonValue::Kind::kString;
      m.str = RandomString(rng);
      break;
    case 4: {
      m.kind = JsonValue::Kind::kArray;
      const std::size_t len = rng.NextBelow(5);
      for (std::size_t i = 0; i < len; ++i) {
        m.arr.push_back(RandomModel(rng, depth - 1));
      }
      break;
    }
    default: {
      m.kind = JsonValue::Kind::kObject;
      const std::size_t len = rng.NextBelow(5);
      for (std::size_t i = 0; i < len; ++i) {
        m.obj["k" + std::to_string(i) + RandomString(rng)] =
            RandomModel(rng, depth - 1);
      }
      break;
    }
  }
  return m;
}

std::string Serialize(const Model& m) {
  switch (m.kind) {
    case JsonValue::Kind::kNull:
      return "null";
    case JsonValue::Kind::kBool:
      return m.b ? "true" : "false";
    case JsonValue::Kind::kNumber:
      return JsonNumber(m.num);
    case JsonValue::Kind::kString:
      return JsonQuote(m.str);
    case JsonValue::Kind::kArray: {
      std::string out = "[";
      for (std::size_t i = 0; i < m.arr.size(); ++i) {
        if (i) out += ", ";
        out += Serialize(m.arr[i]);
      }
      return out + "]";
    }
    case JsonValue::Kind::kObject: {
      std::string out = "{";
      bool first = true;
      for (const auto& [k, v] : m.obj) {
        if (!first) out += ", ";
        first = false;
        out += JsonQuote(k) + ": " + Serialize(v);
      }
      return out + "}";
    }
  }
  return "null";
}

void ExpectMatches(const Model& m, const JsonValue& v) {
  ASSERT_EQ(m.kind, v.kind());
  switch (m.kind) {
    case JsonValue::Kind::kNull:
      break;
    case JsonValue::Kind::kBool:
      EXPECT_EQ(m.b, v.GetBool());
      break;
    case JsonValue::Kind::kNumber:
      // JsonNumber is the shortest representation that parses back to the
      // same double, so the round trip must be EXACT.
      EXPECT_EQ(m.num, v.GetNumber());
      break;
    case JsonValue::Kind::kString:
      EXPECT_EQ(m.str, v.GetString());
      break;
    case JsonValue::Kind::kArray: {
      ASSERT_EQ(m.arr.size(), v.GetArray().size());
      for (std::size_t i = 0; i < m.arr.size(); ++i) {
        ExpectMatches(m.arr[i], v.GetArray()[i]);
      }
      break;
    }
    case JsonValue::Kind::kObject: {
      for (const auto& [k, child] : m.obj) {
        const JsonValue* found = v.Find(k);
        ASSERT_NE(found, nullptr) << "missing key " << k;
        ExpectMatches(child, *found);
      }
      break;
    }
  }
}

TEST(JsonFuzz, RandomDocumentsRoundTrip) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    Xoshiro256ss rng(seed);
    const Model m = RandomModel(rng, 5);
    const std::string text = Serialize(m);
    SCOPED_TRACE(text);
    JsonValue v = JsonValue::Parse(text);
    ExpectMatches(m, v);
  }
}

TEST(JsonFuzz, TruncatedDocumentsNeverCrash) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    Xoshiro256ss rng(seed * 31);
    Model m = RandomModel(rng, 4);
    // Force a container at the root so every strict prefix is incomplete.
    if (m.kind != JsonValue::Kind::kObject &&
        m.kind != JsonValue::Kind::kArray) {
      Model root;
      root.kind = JsonValue::Kind::kArray;
      root.arr.push_back(m);
      m = root;
    }
    const std::string text = Serialize(m);
    for (std::size_t len = 0; len < text.size(); ++len) {
      EXPECT_THROW(JsonValue::Parse(text.substr(0, len)), InvalidArgument)
          << "prefix of length " << len << " of: " << text;
    }
  }
}

TEST(JsonFuzz, DepthBombsAreRejectedNotOverflowed) {
  // Unclosed: 100 opens with no close — must throw cleanly, not recurse
  // into a stack overflow.
  EXPECT_THROW(JsonValue::Parse(std::string(100, '[')), InvalidArgument);
  // Closed but too deep (> 64 levels).
  {
    std::string deep;
    for (int i = 0; i < 70; ++i) deep += '[';
    deep += "1";
    for (int i = 0; i < 70; ++i) deep += ']';
    EXPECT_THROW(JsonValue::Parse(deep), InvalidArgument);
  }
  // At a legal depth the same shape parses.
  {
    std::string ok;
    for (int i = 0; i < 60; ++i) ok += '[';
    ok += "1";
    for (int i = 0; i < 60; ++i) ok += ']';
    JsonValue v = JsonValue::Parse(ok);
    EXPECT_EQ(v.kind(), JsonValue::Kind::kArray);
  }
  // Object nesting bombs too, not just arrays.
  {
    std::string deep;
    for (int i = 0; i < 70; ++i) deep += "{\"a\":";
    deep += "1";
    for (int i = 0; i < 70; ++i) deep += '}';
    EXPECT_THROW(JsonValue::Parse(deep), InvalidArgument);
  }
}

TEST(JsonFuzz, ByteGarbageNeverCrashes) {
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    Xoshiro256ss rng(seed * 977);
    std::string junk;
    const std::size_t len = rng.NextBelow(64);
    for (std::size_t i = 0; i < len; ++i) {
      junk.push_back(static_cast<char>(rng.NextBelow(256)));
    }
    try {
      (void)JsonValue::Parse(junk);
    } catch (const InvalidArgument&) {
      // Expected for nearly every input; the property is no crash/over-read.
    }
  }
}

TEST(JsonFuzz, TrailingGarbageRejected) {
  EXPECT_THROW(JsonValue::Parse("1 x"), InvalidArgument);
  EXPECT_THROW(JsonValue::Parse("{} {}"), InvalidArgument);
  EXPECT_THROW(JsonValue::Parse("[1,2]]"), InvalidArgument);
  // Trailing whitespace is fine.
  EXPECT_EQ(JsonValue::Parse("42  \n").GetNumber(), 42.0);
}

}  // namespace
}  // namespace dcc
