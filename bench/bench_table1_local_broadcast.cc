// Table 1 — local broadcast algorithms.
//
// Paper rows (asymptotics):
//   [16] randomized, knows Delta, n:        O(Delta log n)
//   [16] randomized, knows n:               O(Delta log^3 n)   (doubling)
//   [35] randomized, knows n:               O(Delta log n + log^2 n)
//   [22] deterministic + location:          O(Delta log^3 n)
//   this work, deterministic, Delta & N:    O(Delta log* n log n)
//
// We regenerate the comparable rows as *measured rounds* over the same
// workloads, sweeping the density Delta at (roughly) fixed n. Absolute
// numbers are simulator-specific; the shape to check is (a) every
// algorithm grows ~linearly in Delta, (b) the deterministic algorithm
// stays within a polylog factor of the randomized baselines, and (c) the
// deterministic TDMA strawman pays Theta(N) regardless of Delta.
//
// Ported onto the scenario layer: one topology spec per n, one algorithm
// registry key per table column (legacy seeds pinned — round counts match
// the pre-port bench exactly).
#include <cmath>

#include "bench_common.h"
#include "dcc/scenario/scenario.h"

namespace dcc {
namespace {

void Run() {
  bench::Banner("Table 1: local broadcast",
                "Jurdzinski et al., PODC'18, Table 1",
                "all rows ~linear in Delta; deterministic (this work) within "
                "polylog of randomized; TDMA pays Theta(N)");

  Table t({"n", "Delta", "rand-known[16]", "rand-unknown[16]",
           "det+loc[22]", "tdma(N=4096)", "this-work", "det/rand",
           "coverage"});

  // Density sweep: same area, growing population.
  for (const int n : {48, 96, 192, 288}) {
    scenario::ScenarioSpec spec;
    spec.topology = "uniform";
    spec.topology_params.Set("n", std::to_string(n));
    spec.topology_params.Set("side", "5.0");
    spec.sinr.id_space = 1 << 12;
    spec.engine = sinr::Engine::Options::FromEnv();
    spec.id_seed = static_cast<std::uint64_t>(7 + n);
    const auto seed = static_cast<std::uint64_t>(1000 + n);

    // One run per table column, same topology, shared round clock per run.
    const auto cell = [&](const std::string& algo,
                          const scenario::ParamMap& params,
                          std::uint64_t nonce) {
      scenario::ScenarioSpec s = spec;
      s.algo = algo;
      s.algo_params = params;
      s.nonce = nonce;
      return scenario::RunScenario(s, seed);
    };

    scenario::ParamMap seed42;
    seed42.Set("seed", "42");
    const auto rk = cell("rand_local_known", seed42, 0);
    scenario::ParamMap seed43;
    seed43.Set("seed", "43");
    const auto ru = cell("rand_local_unknown", seed43, 0);
    const auto td = cell("tdma_local", {}, 0);
    const auto gt = cell("grid_tdma", {}, 0);
    const auto dt = cell("local_broadcast", {},
                         static_cast<std::uint64_t>(100 + n));

    const double ratio = dt.metrics.Get("rounds") /
                         std::max(rk.metrics.Get("rounds_to_cover"), 1.0);
    const auto num = [](double v) {
      return Table::Num(static_cast<std::int64_t>(v));
    };
    t.AddRow({Table::Num(std::int64_t{n}), num(rk.metrics.Get("gamma")),
              num(rk.metrics.Get("rounds_to_cover")),
              num(ru.metrics.Get("rounds_to_cover")),
              num(gt.metrics.Get("rounds")), num(td.metrics.Get("rounds")),
              num(dt.metrics.Get("rounds")), Table::Num(ratio),
              num(dt.metrics.Get("covered_cumulative")) + "/" +
                  num(dt.metrics.Get("members"))});
  }
  t.Print(std::cout);
  std::cout << "\nnotes: rand rows report oracle-observed completion; "
               "this-work reports full protocol rounds\n"
               "(clustering + labeling + Delta SNS runs).\n";
}

}  // namespace
}  // namespace dcc

int main() {
  dcc::Run();
  return 0;
}
