// Theorems 4-5: wake-up and leader election on top of Clustering + SMSB.
#include <gtest/gtest.h>

#include "dcc/bcast/leader_election.h"
#include "dcc/bcast/wakeup.h"
#include "dcc/workload/generators.h"

namespace dcc::bcast {
namespace {

sinr::Params TestParams() {
  sinr::Params p = sinr::Params::Default();
  p.id_space = 1 << 12;
  return p;
}

std::vector<std::size_t> AllIndices(const sinr::Network& net) {
  std::vector<std::size_t> all(net.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return all;
}

TEST(WakeupTest, SingleSpontaneousNodeWakesNetwork) {
  const auto params = TestParams();
  auto pts = workload::ConnectedUniform(60, 4.5, params, 7);
  const auto net = workload::MakeNetwork(pts, params, 3);
  const auto prof = cluster::Profile::Practical(params.id_space);
  sim::Exec ex(net);
  const auto res = RunWakeup(ex, prof, {{5, 0}}, net.Density(),
                             net.Diameter() + 3, 1);
  EXPECT_TRUE(res.all_awake);
  EXPECT_EQ(res.awake_at[5], 0);
}

TEST(WakeupTest, MultipleSpontaneousWakersAnyPattern) {
  const auto params = TestParams();
  auto pts = workload::Line(24, 0.7, 3);
  const auto net = workload::MakeNetwork(pts, params, 5);
  const auto prof = cluster::Profile::Practical(params.id_space);
  sim::Exec ex(net);
  const auto res = RunWakeup(ex, prof, {{0, 0}, {23, 0}, {12, 0}},
                             net.Density(), net.Diameter() + 3, 2);
  EXPECT_TRUE(res.all_awake);
}

TEST(WakeupTest, RequiresAtLeastOneSpontaneous) {
  const auto params = TestParams();
  auto pts = workload::Line(5, 0.7, 4);
  const auto net = workload::MakeNetwork(pts, params, 7);
  const auto prof = cluster::Profile::Practical(params.id_space);
  sim::Exec ex(net);
  EXPECT_THROW(RunWakeup(ex, prof, {}, 4, 8, 3), InvalidArgument);
}


TEST(WakeupTest, StaggeredSpontaneousWakeups) {
  // Spontaneous activations spread over time: the epoch scheme must still
  // wake everyone (later wakers either get woken by the broadcast or join
  // a later epoch as sources).
  const auto params = TestParams();
  auto pts = workload::Line(20, 0.7, 7);
  const auto net = workload::MakeNetwork(pts, params, 9);
  const auto prof = cluster::Profile::Practical(params.id_space);
  sim::Exec ex(net);
  const auto res = RunWakeup(ex, prof, {{3, 0}, {15, 5000}, {19, 90000}},
                             net.Density(), net.Diameter() + 3, 4);
  EXPECT_TRUE(res.all_awake);
  // The round-0 waker is recorded first.
  EXPECT_EQ(res.awake_at[3], 0);
}

TEST(LeaderElectionTest, ElectsMinimumCenterConsistently) {
  const auto params = TestParams();
  auto pts = workload::ConnectedUniform(60, 4.5, params, 11);
  const auto net = workload::MakeNetwork(pts, params, 13);
  const auto prof = cluster::Profile::Practical(params.id_space);
  sim::Exec ex(net);
  const auto res = ElectLeader(ex, prof, AllIndices(net), net.Density(),
                               net.Diameter() + 3, 1);
  EXPECT_TRUE(res.agreed);
  EXPECT_NE(res.leader, kNoNode);
  EXPECT_TRUE(net.HasId(res.leader));
  // Binary search over [1, N]: exactly ceil(log2 N) probes.
  EXPECT_EQ(res.probes, 12);  // id_space = 2^12
}

TEST(LeaderElectionTest, SingletonNetwork) {
  const auto params = TestParams();
  std::vector<Vec2> pts{{0, 0}};
  const auto net = workload::MakeNetwork(pts, params, 17);
  const auto prof = cluster::Profile::Practical(params.id_space);
  sim::Exec ex(net);
  const auto res = ElectLeader(ex, prof, {0}, 1, 2, 2);
  EXPECT_TRUE(res.agreed);
  EXPECT_EQ(res.leader, net.id(0));
}

TEST(LeaderElectionTest, DeterministicLeader) {
  const auto params = TestParams();
  auto pts = workload::ConnectedUniform(40, 3.5, params, 19);
  const auto net = workload::MakeNetwork(pts, params, 23);
  const auto prof = cluster::Profile::Practical(params.id_space);
  sim::Exec ex1(net), ex2(net);
  const auto a = ElectLeader(ex1, prof, AllIndices(net), net.Density(),
                             net.Diameter() + 3, 3);
  const auto b = ElectLeader(ex2, prof, AllIndices(net), net.Density(),
                             net.Diameter() + 3, 3);
  EXPECT_EQ(a.leader, b.leader);
  EXPECT_EQ(a.rounds, b.rounds);
}

}  // namespace
}  // namespace dcc::bcast
