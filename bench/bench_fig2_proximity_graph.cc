// Figure 2 — proximity graph construction (Alg. 1).
//
// The paper's figure walks through Exchange -> Filtering -> Confirmation.
// We regenerate it as measurements over growing density: close pairs
// present, close pairs covered by H (must be all), max degree (must stay
// <= kappa), edges built and rounds consumed (O(log N), independent of
// density).
#include "bench_common.h"
#include "dcc/cluster/proximity.h"

namespace dcc {
namespace {

void Run() {
  bench::Banner("Figure 2: proximity graph construction",
                "Jurdzinski et al., PODC'18, Fig. 2 + Lemma 7",
                "close-pair coverage 100%, degree <= kappa, rounds flat in "
                "density (O(log N))");

  sinr::Params params = sinr::Params::Default();
  params.id_space = 1 << 12;
  const auto prof = cluster::Profile::Practical(params.id_space);

  Table t({"n", "Gamma", "close-pairs", "covered", "max-deg", "edges",
           "rounds"});
  const double side = 5.0;
  for (const int n : {64, 128, 256, 384}) {
    auto pts = workload::UniformSquare(n, side, 17 + n);
    const auto net = workload::MakeNetwork(pts, params, 23 + n);
    const auto all = bench::AllIndices(net);
    const int gamma = cluster::SubsetDensity(net, all);
    std::vector<ClusterId> one(net.size(), 1);

    std::vector<sim::Participant> parts;
    for (const std::size_t idx : all) {
      parts.push_back({idx, net.id(idx), kNoCluster});
    }
    sim::Exec ex(net, bench::EngineOptionsFromEnv());
    const auto prox = cluster::BuildProximityGraph(
        ex, prof, parts, /*clustered=*/false, static_cast<std::uint64_t>(n));

    const auto close = cluster::FindClosePairs(net, all, one, gamma, 1.0);
    int covered = 0;
    auto has_edge = [&](std::size_t u, std::size_t w) {
      for (std::size_t p = 0; p < parts.size(); ++p) {
        if (parts[p].index != u) continue;
        for (const std::size_t q : prox.adj[p]) {
          if (parts[q].index == w) return true;
        }
      }
      return false;
    };
    for (const auto& [u, w] : close) {
      if (has_edge(u, w)) ++covered;
    }
    int max_deg = 0, edges = 0;
    for (const auto& adj : prox.adj) {
      max_deg = std::max(max_deg, static_cast<int>(adj.size()));
      edges += static_cast<int>(adj.size());
    }
    t.AddRow({Table::Num(std::int64_t{n}), Table::Num(std::int64_t{gamma}),
              Table::Num(static_cast<std::int64_t>(close.size())),
              Table::Num(std::int64_t{covered}),
              Table::Num(std::int64_t{max_deg}),
              Table::Num(std::int64_t{edges / 2}), Table::Num(prox.rounds)});
  }
  t.Print(std::cout);
  std::cout << "\nkappa = " << prof.kappa << "\n";
}

}  // namespace
}  // namespace dcc

int main() {
  dcc::Run();
  return 0;
}
