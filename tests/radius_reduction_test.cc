// Lemma 12: RadiusReduction turns an r-clustering (r = O(1)) into a valid
// 1-clustering: every node assigned, clusters inside unit balls around
// centers, centers pairwise > 1 - eps apart.
#include "dcc/cluster/radius_reduction.h"

#include <gtest/gtest.h>

#include <tuple>

#include "dcc/cluster/validate.h"
#include "dcc/workload/generators.h"

namespace dcc::cluster {
namespace {

sinr::Params TestParams() {
  sinr::Params p = sinr::Params::Default();
  p.id_space = 1 << 12;
  return p;
}

std::vector<std::size_t> AllIndices(const sinr::Network& net) {
  std::vector<std::size_t> all(net.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return all;
}

// A synthetic 2-clustering: grid of blobs, blob b assigned to the cluster
// of its first node (blob radius <= 2).
TEST(RadiusReductionTest, TwoClusteringBecomesValidOneClustering) {
  const auto params = TestParams();
  auto pts = workload::BlobChain(4, 20, 0.6, 2.2, 99);
  const auto net = workload::MakeNetwork(pts, params, 7);
  const auto prof = Profile::Practical(params.id_space);
  std::vector<ClusterId> cl(net.size(), kNoCluster);
  for (std::size_t i = 0; i < net.size(); ++i) {
    cl[i] = net.id((i / 20) * 20);
  }
  const auto all = AllIndices(net);
  const int gamma = SubsetDensity(net, all);

  sim::Exec ex(net);
  const auto stats = RadiusReduction(ex, prof, all, cl, gamma, 1);
  EXPECT_EQ(stats.unassigned, 0u);

  const auto chk = CheckClustering(net, all, cl);
  EXPECT_TRUE(chk.ValidRClustering(1.0, net.params().eps))
      << "radius=" << chk.max_radius << " sep=" << chk.min_center_sep
      << " assigned=" << chk.assigned << "/" << chk.members;
  EXPECT_LE(chk.max_clusters_per_unit_ball, 30);  // O(1) contract
}

TEST(RadiusReductionTest, AlreadyTightClusteringStaysValid) {
  const auto params = TestParams();
  std::vector<Vec2> pts;
  for (int i = 0; i < 10; ++i) pts.push_back({0.05 * i, 0.0});
  const auto net = workload::MakeNetwork(pts, params, 5);
  const auto prof = Profile::Practical(params.id_space);
  std::vector<ClusterId> cl(net.size(), net.id(0));
  const auto all = AllIndices(net);
  sim::Exec ex(net);
  RadiusReduction(ex, prof, all, cl, 10, 2);
  const auto chk = CheckClustering(net, all, cl);
  EXPECT_TRUE(chk.ValidRClustering(1.0, net.params().eps));
}

TEST(RadiusReductionTest, CentersComeFromTheInputSet) {
  const auto params = TestParams();
  auto pts = workload::UniformSquare(64, 3.5, 55);
  const auto net = workload::MakeNetwork(pts, params, 3);
  const auto prof = Profile::Practical(params.id_space);
  std::vector<ClusterId> cl(net.size(), net.id(0));
  const auto all = AllIndices(net);
  sim::Exec ex(net);
  RadiusReduction(ex, prof, all, cl, SubsetDensity(net, all), 3);
  for (const std::size_t idx : all) {
    ASSERT_NE(cl[idx], kNoCluster);
    EXPECT_TRUE(net.HasId(cl[idx]));
  }
}

class RadiusReductionSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(RadiusReductionSweep, ValidAcrossBlobShapes) {
  const auto [blobs, per_blob, seed] = GetParam();
  const auto params = TestParams();
  auto pts = workload::BlobChain(blobs, per_blob, 0.5, 2.0,
                                 static_cast<std::uint64_t>(seed));
  const auto net = workload::MakeNetwork(
      pts, params, static_cast<std::uint64_t>(seed) + 13);
  const auto prof = Profile::Practical(params.id_space);
  std::vector<ClusterId> cl(net.size(), kNoCluster);
  for (std::size_t i = 0; i < net.size(); ++i) {
    cl[i] = net.id((i / static_cast<std::size_t>(per_blob)) *
                   static_cast<std::size_t>(per_blob));
  }
  const auto all = AllIndices(net);
  sim::Exec ex(net);
  const auto stats = RadiusReduction(ex, prof, all, cl,
                                     SubsetDensity(net, all),
                                     static_cast<std::uint64_t>(seed));
  EXPECT_EQ(stats.unassigned, 0u);
  const auto chk = CheckClustering(net, all, cl);
  EXPECT_TRUE(chk.ValidRClustering(1.0, net.params().eps))
      << "blobs=" << blobs << " per=" << per_blob << " seed=" << seed
      << " radius=" << chk.max_radius << " sep=" << chk.min_center_sep;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RadiusReductionSweep,
                         ::testing::Values(std::tuple{3, 12, 1},
                                           std::tuple{5, 16, 2},
                                           std::tuple{4, 24, 3}));

}  // namespace
}  // namespace dcc::cluster
