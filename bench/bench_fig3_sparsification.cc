// Figure 3 — one sparsification step (Alg. 2), clustered vs unclustered.
//
// The paper's figure contrasts the clustered case (children always inside
// their cluster; density provably drops to 3/4 Gamma) with the unclustered
// case (a dense ball is not necessarily thinned in one pass — parents can
// be adopted from outside the ball — hence the chained Alg. 3). We
// regenerate both as measurements.
#include "bench_common.h"
#include "dcc/cluster/sparsify.h"

namespace dcc {
namespace {

void Run() {
  bench::Banner(
      "Figure 3: sparsification step",
      "Jurdzinski et al., PODC'18, Fig. 3 + Lemmas 8-9",
      "clustered: per-cluster size <= 3/4 Gamma after one call; unclustered: "
      "density <= 3/4 Gamma after the chained call (Alg. 3)");

  sinr::Params params = sinr::Params::Default();
  params.id_space = 1 << 12;
  const auto prof = cluster::Profile::Practical(params.id_space);

  std::cout << "-- clustered (one Sparsification call) --\n";
  Table tc({"clumps", "Gamma", "max-cluster-before", "max-cluster-after",
            "kept", "rounds"});
  for (const int clumps : {2, 4, 6}) {
    std::vector<Vec2> pts;
    const int per = 16;
    for (int c = 0; c < clumps; ++c) {
      for (int i = 0; i < per; ++i) {
        pts.push_back({c * 2.0 + 0.04 * i, 0.08 * (i % 4)});
      }
    }
    const auto net = workload::MakeNetwork(pts, params, 7 + clumps);
    const auto all = bench::AllIndices(net);
    std::vector<ClusterId> cl(net.size());
    for (std::size_t i = 0; i < net.size(); ++i) {
      cl[i] = net.id((i / per) * per);
    }
    sim::Exec ex(net, bench::EngineOptionsFromEnv());
    const auto r = cluster::Sparsify(ex, prof, all, cl, per, true,
                                     static_cast<std::uint64_t>(clumps));
    tc.AddRow({Table::Num(std::int64_t{clumps}), Table::Num(std::int64_t{per}),
               Table::Num(std::int64_t{
                   cluster::MaxClusterSize(net, all, cl)}),
               Table::Num(std::int64_t{
                   cluster::MaxClusterSize(net, r.returned, cl)}),
               std::to_string(r.returned.size()) + "/" +
                   std::to_string(all.size()),
               Table::Num(r.rounds)});
  }
  tc.Print(std::cout);

  std::cout << "\n-- unclustered (chained SparsificationU, Alg. 3) --\n";
  Table tu({"n", "Gamma-before", "Gamma-after", "kept", "rounds"});
  for (const int n : {96, 160, 256}) {
    auto pts = workload::UniformSquare(n, 4.0, 3 + n);
    const auto net = workload::MakeNetwork(pts, params, 5 + n);
    const auto all = bench::AllIndices(net);
    const int gamma = cluster::SubsetDensity(net, all);
    sim::Exec ex(net, bench::EngineOptionsFromEnv());
    const auto chain = cluster::SparsifyU(ex, prof, all, gamma,
                                          static_cast<std::uint64_t>(n));
    tu.AddRow({Table::Num(std::int64_t{n}), Table::Num(std::int64_t{gamma}),
               Table::Num(std::int64_t{
                   cluster::SubsetDensity(net, chain.sets.back())}),
               std::to_string(chain.sets.back().size()) + "/" +
                   std::to_string(all.size()),
               Table::Num(chain.rounds)});
  }
  tu.Print(std::cout);
}

}  // namespace
}  // namespace dcc

int main() {
  dcc::Run();
  return 0;
}
