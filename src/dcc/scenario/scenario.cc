#include "dcc/scenario/scenario.h"

#include <algorithm>
#include <exception>
#include <memory>
#include <numeric>
#include <utility>

#include "dcc/cluster/validate.h"
#include "dcc/common/rng.h"
#include "dcc/distrib/session.h"
#include "dcc/obs/trace.h"
#include "dcc/parallel/worker_pool.h"
#include "dcc/scenario/dynamics.h"
#include "dcc/workload/generators.h"

namespace dcc::scenario {

namespace {

// Salt separating the fault-selection stream from every other use of the
// run seed.
constexpr std::uint64_t kFaultSalt = 0xFA171E57ull;

// Deterministically samples `count` distinct jammer indices.
std::vector<std::size_t> PickFaultNodes(std::size_t n, int count,
                                        std::uint64_t seed) {
  DCC_REQUIRE(static_cast<std::size_t>(count) < n,
              "faults: at least one non-faulty node required");
  Xoshiro256ss rng(seed ^ kFaultSalt);
  std::vector<char> picked(n, 0);
  std::vector<std::size_t> jammers;
  jammers.reserve(static_cast<std::size_t>(count));
  while (jammers.size() < static_cast<std::size_t>(count)) {
    const auto idx = static_cast<std::size_t>(rng.NextBelow(n));
    if (!picked[idx]) {
      picked[idx] = 1;
      jammers.push_back(idx);
    }
  }
  std::sort(jammers.begin(), jammers.end());
  return jammers;
}

}  // namespace

sinr::Network BuildScenarioNetwork(const ScenarioSpec& spec,
                                   std::uint64_t seed) {
  spec.sinr.Validate();
  const TopologyFn& topo = Topologies().Get(spec.topology);
  // Local ParamMap copies: consumption marks are per-run state and the
  // same spec may be running on several sweep threads.
  ParamMap topo_params = spec.topology_params;
  auto pts = topo(topo_params, spec.sinr, seed);
  topo_params.CheckAllConsumed("topology '" + spec.topology + "'");
  return workload::MakeNetwork(std::move(pts), spec.sinr,
                               spec.id_seed.value_or(seed + 1),
                               spec.shadowing);
}

RunReport RunScenario(const ScenarioSpec& spec, std::uint64_t seed) {
  if (IsDynamic(spec)) return RunDynamicScenario(spec, seed);
  try {
    const sinr::Network net = BuildScenarioNetwork(spec, seed);
    return RunScenarioOnNetwork(spec, seed, net);
  } catch (const std::exception& e) {
    RunReport rep;
    rep.topology = spec.topology;
    rep.algo = spec.algo;
    rep.seed = seed;
    rep.ok = false;
    rep.error = e.what();
    return rep;
  }
}

RunReport RunScenarioOnNetwork(const ScenarioSpec& spec, std::uint64_t seed,
                               const sinr::Network& net) {
  DCC_TRACE_SPAN("scenario.run");
  RunReport rep;
  rep.topology = spec.topology;
  rep.algo = spec.algo;
  rep.seed = seed;
  // Outside the try so the catch path can still report the distributed
  // accounting gathered before a failure (a dead rank mid-run produces an
  // ok=false report WITH its dcc.distrib.v1 section, not a bare error).
  std::unique_ptr<distrib::Session> session;
  try {
    sinr::Engine::Options engine_opts = spec.engine;
    if (spec.ranks >= 1) {
      session = std::make_unique<distrib::Session>(
          spec, seed, distrib::Session::Options{spec.ranks, ""});
      engine_opts.delegate = session.get();
    }
    sim::Exec ex(net, engine_opts);
    if (spec.ranks >= 1 && ex.engine().mode() != sinr::Engine::Mode::kGrid) {
      throw InvalidArgument(
          "--ranks: distributed execution requires the grid engine "
          "(pass --engine=grid)");
    }

    std::vector<std::size_t> members(net.size());
    std::iota(members.begin(), members.end(), std::size_t{0});
    if (spec.faults > 0) {
      const auto jammers = PickFaultNodes(net.size(), spec.faults, seed);
      sim::Message jam;
      jam.kind = -1;
      ex.SetBackgroundTransmitters(jammers, jam);
      std::vector<std::size_t> rest;
      rest.reserve(members.size() - jammers.size());
      std::set_difference(members.begin(), members.end(), jammers.begin(),
                          jammers.end(), std::back_inserter(rest));
      members = std::move(rest);
    }

    const int gamma = cluster::SubsetDensity(net, members);
    const auto prof = cluster::Profile::Practical(spec.sinr.id_space);
    RunContext ctx{net,
                   ex,
                   prof,
                   std::move(members),
                   gamma,
                   spec.max_rounds,
                   seed,
                   spec.nonce.value_or(seed + 2),
                   spec.algo_params};
    const std::size_t n_members = ctx.members.size();

    const auto alg = Algorithms().Get(spec.algo)();
    RunReport algo_rep = alg->Run(ctx);
    ctx.params.CheckAllConsumed("algorithm '" + spec.algo + "'");

    rep.ok = algo_rep.ok;
    rep.error = std::move(algo_rep.error);
    rep.metrics.Set("n", static_cast<double>(net.size()));
    rep.metrics.Set("members", static_cast<double>(n_members));
    rep.metrics.Set("gamma", ctx.gamma);
    if (spec.faults > 0) rep.metrics.Set("faults", spec.faults);
    for (const auto& [key, value] : algo_rep.metrics.entries()) {
      rep.metrics.Set(key, value);
    }
    rep.metrics.Set("rounds_total", static_cast<double>(ex.rounds()));
    FillParallelSection(rep, ex.engine());
  } catch (const std::exception& e) {
    rep.ok = false;
    rep.error = e.what();
  }
  if (session) FillDistribSection(rep, *session);
  return rep;
}

std::vector<RunReport> RunSweep(const ScenarioSpec& spec) {
  DCC_REQUIRE(spec.sweep_key.empty() || !spec.sweep_values.empty(),
              "sweep: a swept key needs at least one value");
  // The grid, value-major: all seeds of the first swept value, then the
  // next value... (a pure seed sweep is a grid with one implicit value).
  struct Job {
    const std::string* value;  // null = no topology override
    std::uint64_t seed;
  };
  std::vector<Job> jobs;
  if (spec.sweep_key.empty()) {
    for (const std::uint64_t seed : spec.seeds) jobs.push_back({nullptr, seed});
  } else {
    for (const std::string& value : spec.sweep_values) {
      for (const std::uint64_t seed : spec.seeds) jobs.push_back({&value, seed});
    }
  }

  std::vector<RunReport> out(jobs.size());
  const auto run_job = [&](std::size_t i) {
    if (jobs[i].value) {
      ScenarioSpec pinned = spec;
      pinned.topology_params.Set(spec.sweep_key, *jobs[i].value);
      out[i] = RunScenario(pinned, jobs[i].seed);
    } else {
      out[i] = RunScenario(spec, jobs[i].seed);
    }
  };

  // One sized-once pool for the whole process: sweeps and the engine's
  // sharded rounds draw from the same threads instead of constructing and
  // tearing down a private pool per call. With more jobs than workers the
  // sweep occupies the pool and each run's engine executes serially
  // (nested Run calls go inline); a single-job "sweep" leaves the pool to
  // the engine.
  parallel::WorkerPool::Shared().Run(jobs.size(), run_job, spec.threads);
  return out;
}

}  // namespace dcc::scenario
