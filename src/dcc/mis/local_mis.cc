#include "dcc/mis/local_mis.h"

namespace dcc::mis {

MisState LocalMinimaStep(
    NodeId id, MisState state,
    std::span<const std::pair<NodeId, MisState>> neighbors) {
  if (state != MisState::kUndecided) return state;
  bool neighbor_in_mis = false;
  bool is_min = true;
  for (const auto& [nid, nstate] : neighbors) {
    if (nstate == MisState::kInMis) neighbor_in_mis = true;
    if (nstate == MisState::kUndecided && nid < id) is_min = false;
  }
  if (neighbor_in_mis) return MisState::kDominated;
  if (is_min) return MisState::kInMis;
  return MisState::kUndecided;
}

PartialMisRun LocalMinimaMis(const LocalGraph& g,
                             const std::vector<std::int64_t>& ids,
                             int max_rounds) {
  DCC_REQUIRE(ids.size() == g.size(), "LocalMinimaMis: ids size mismatch");
  PartialMisRun run;
  run.state.assign(g.size(), MisState::kUndecided);
  for (int r = 0; r < max_rounds; ++r) {
    std::vector<MisState> next(run.state);
    bool changed = false;
    for (std::size_t v = 0; v < g.size(); ++v) {
      std::vector<std::pair<NodeId, MisState>> ns;
      ns.reserve(g.adj[v].size());
      for (const std::size_t u : g.adj[v]) ns.emplace_back(ids[u], run.state[u]);
      next[v] = LocalMinimaStep(ids[v], run.state[v], ns);
      changed = changed || next[v] != run.state[v];
    }
    run.state = std::move(next);
    ++run.local_rounds;
    if (!changed) break;
  }
  run.all_decided = true;
  for (const MisState s : run.state) {
    if (s == MisState::kUndecided) {
      run.all_decided = false;
      break;
    }
  }
  return run;
}

}  // namespace dcc::mis
