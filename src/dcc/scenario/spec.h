// A ScenarioSpec makes an experiment a *value*: topology + algorithm (both
// resolved by name through the scenario registries), SINR/engine options,
// seeds, round budget and optional fault injection. Specs parse from and
// serialize to a flag list — the same grammar the `dcc_run` CLI speaks —
// so any run is reproducible from one printable line.
//
// Per-seed derivations (overridable for exact replay of legacy benches):
//   topology seed = seed        (point generation)
//   id seed       = seed + 1    (random NodeId injection)
//   nonce         = seed + 2    (selector freshening)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dcc/scenario/param_map.h"
#include "dcc/sinr/engine.h"
#include "dcc/sinr/network.h"

namespace dcc::scenario {

struct ScenarioSpec {
  std::string topology = "uniform";  // TopologyRegistry key
  ParamMap topology_params;          // e.g. n=4096,side=20
  std::string algo = "clustering";   // AlgorithmRegistry key
  ParamMap algo_params;              // algorithm-specific knobs

  sinr::Params sinr = sinr::Params::Default();
  sinr::Shadowing shadowing;       // spread = 0 disables
  sinr::Engine::Options engine;    // interference resolution strategy

  std::vector<std::uint64_t> seeds = {1};
  std::optional<std::uint64_t> id_seed;  // default seed + 1
  std::optional<std::uint64_t> nonce;    // default seed + 2

  // Optional size grid: sweep one topology parameter over these values
  // (e.g. key "n", values {"1024","4096"}); the sweep then runs the full
  // values x seeds grid. Empty key = seeds only.
  std::string sweep_key;
  std::vector<std::string> sweep_values;

  // Dynamic scenario (empty = static run): mobility + churn parameters,
  // e.g. model=waypoint,epochs=8,speed=0.5,churn=0.05. Driver keys (model,
  // epochs, epoch_len, churn, join, side) are consumed by the dynamics
  // runner, the rest by the mobility model's factory; unknown keys are
  // rejected. See scenario/dynamics.h.
  ParamMap dynamics;

  Round max_rounds = 0;  // 0 = per-algorithm default budget
  int faults = 0;        // always-on background transmitters (jammers)
  // Sweep parallelism; 0 = hardware concurrency. The --threads flag also
  // copies its value into engine.threads (round-level sharding), so one
  // knob drives both layers; programmatic specs may set them separately.
  int threads = 0;
  // Distributed round execution: run every engine round across this many
  // rank processes (src/dcc/distrib), each owning a contiguous tile range
  // of the spatial index. 0 = in-process (default). Requires grid mode;
  // receptions stay bit-identical to in-process execution.
  int ranks = 0;

  // Parses a flag list (e.g. {"--topology=uniform:n=128,side=5",
  // "--algo=clustering", "--seeds=1..8"}). Unknown flags or malformed
  // values throw InvalidArgument. FromArgs(ToArgs(s)) == s.
  static ScenarioSpec FromArgs(const std::vector<std::string>& args);

  // Canonical flag list: always emits --topology/--algo/--seeds, other
  // flags only when they differ from their defaults.
  std::vector<std::string> ToArgs() const;

  // ToArgs joined with spaces — the printable one-line form.
  std::string ToString() const;

  // Order-invariant content key: ToString() with every ParamMap
  // (topology, algorithm, dynamics) sorted by key. Two specs that spell
  // the same parameters in a different order share a key; any semantic
  // difference — and only a semantic difference — changes it (defaults
  // are elided exactly as in ToArgs). This is the key the service caches
  // content-address on (src/dcc/service/cache.h) and what
  // `dcc_run --canonical` prints.
  std::string CanonicalKey() const;

  friend bool operator==(const ScenarioSpec& a, const ScenarioSpec& b) {
    return a.ToString() == b.ToString();
  }
};

// Parses a seed list: "7", "1..8" (inclusive), or "1,5,9".
std::vector<std::uint64_t> ParseSeeds(const std::string& text);

}  // namespace dcc::scenario
