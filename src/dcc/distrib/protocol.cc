#include "dcc/distrib/protocol.h"

#include "dcc/common/wire.h"

namespace dcc::distrib {

namespace {

using wire::PayloadReader;
using wire::PayloadWriter;
using wire::WireError;

void CheckTag(PayloadReader& r, MsgTag expected) {
  const auto got = static_cast<MsgTag>(r.U8());
  if (got != expected) {
    throw WireError("distrib: expected message tag " +
                    std::to_string(static_cast<int>(expected)) + ", got " +
                    std::to_string(static_cast<int>(got)));
  }
}

// A hostile or corrupted element count must fail as a truncation error
// before it becomes an allocation: every element consumes at least
// `min_bytes` of the remaining payload.
void CheckCount(const PayloadReader& r, std::uint64_t count,
                std::size_t min_bytes) {
  if (count * min_bytes > r.remaining()) {
    throw WireError("distrib: element count " + std::to_string(count) +
                    " exceeds the remaining payload");
  }
}

}  // namespace

std::string Encode(const HelloMsg& m) {
  PayloadWriter w;
  w.U8(static_cast<std::uint8_t>(MsgTag::kHello));
  w.U32(m.version);
  w.U32(m.rank);
  w.U32(m.ranks);
  w.U64(m.seed);
  w.Str(m.spec_line);
  w.F64(m.cell);
  w.U8(m.has_coverage ? 1 : 0);
  w.F64(m.coverage.lo.x);
  w.F64(m.coverage.lo.y);
  w.F64(m.coverage.hi.x);
  w.F64(m.coverage.hi.y);
  w.F64(m.far_start);
  w.U64(m.n);
  w.U64(m.tile_count);
  w.U8(m.trace ? 1 : 0);
  w.U64(static_cast<std::uint64_t>(m.trace_clock_ns));
  return w.Take();
}

HelloMsg DecodeHello(std::string_view payload) {
  PayloadReader r(payload);
  CheckTag(r, MsgTag::kHello);
  HelloMsg m;
  m.version = r.U32();
  m.rank = r.U32();
  m.ranks = r.U32();
  m.seed = r.U64();
  m.spec_line = r.Str();
  m.cell = r.F64();
  m.has_coverage = r.U8() != 0;
  m.coverage.lo.x = r.F64();
  m.coverage.lo.y = r.F64();
  m.coverage.hi.x = r.F64();
  m.coverage.hi.y = r.F64();
  m.far_start = r.F64();
  m.n = r.U64();
  m.tile_count = r.U64();
  m.trace = r.U8() != 0;
  m.trace_clock_ns = static_cast<std::int64_t>(r.U64());
  r.ExpectEnd();
  return m;
}

std::string Encode(const HelloAckMsg& m) {
  PayloadWriter w;
  w.U8(static_cast<std::uint8_t>(MsgTag::kHelloAck));
  w.U32(m.rank);
  w.U64(m.n);
  w.U64(m.tile_count);
  return w.Take();
}

HelloAckMsg DecodeHelloAck(std::string_view payload) {
  PayloadReader r(payload);
  CheckTag(r, MsgTag::kHelloAck);
  HelloAckMsg m;
  m.rank = r.U32();
  m.n = r.U64();
  m.tile_count = r.U64();
  r.ExpectEnd();
  return m;
}

std::string Encode(const PositionsMsg& m) {
  PayloadWriter w;
  w.U8(static_cast<std::uint8_t>(MsgTag::kPositions));
  w.U64(m.positions.size());
  for (std::size_t i = 0; i < m.positions.size(); ++i) {
    w.F64(m.positions[i].x);
    w.F64(m.positions[i].y);
    w.U8(m.live[i]);
  }
  return w.Take();
}

PositionsMsg DecodePositions(std::string_view payload) {
  PayloadReader r(payload);
  CheckTag(r, MsgTag::kPositions);
  const std::uint64_t n = r.U64();
  CheckCount(r, n, 17);
  PositionsMsg m;
  m.positions.resize(n);
  m.live.resize(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    m.positions[i].x = r.F64();
    m.positions[i].y = r.F64();
    m.live[i] = r.U8();
  }
  r.ExpectEnd();
  return m;
}

std::string Encode(const RoundMsg& m) {
  PayloadWriter w;
  w.U8(static_cast<std::uint8_t>(MsgTag::kRound));
  w.U64(m.round);
  w.U64(m.n_listen_total);
  w.U64(m.tx.size());
  for (const std::uint64_t v : m.tx) w.U64(v);
  w.U64(m.owned.size());
  for (const auto& [ordinal, listener] : m.owned) {
    w.U32(ordinal);
    w.U64(listener);
  }
  w.U32(static_cast<std::uint32_t>(m.near.size()));
  for (const TxSlice& s : m.near) {
    w.U32(s.tile);
    w.U32(static_cast<std::uint32_t>(s.members.size()));
    for (std::size_t i = 0; i < s.members.size(); ++i) {
      w.U64(s.members[i]);
      w.F64(s.pos[i].x);
      w.F64(s.pos[i].y);
    }
  }
  w.U32(static_cast<std::uint32_t>(m.far.size()));
  for (const auto& [tile, count] : m.far) {
    w.U32(tile);
    w.U32(count);
  }
  return w.Take();
}

RoundMsg DecodeRound(std::string_view payload) {
  PayloadReader r(payload);
  CheckTag(r, MsgTag::kRound);
  RoundMsg m;
  m.round = r.U64();
  m.n_listen_total = r.U64();
  const std::uint64_t n_tx = r.U64();
  CheckCount(r, n_tx, 8);
  m.tx.resize(n_tx);
  for (std::uint64_t i = 0; i < n_tx; ++i) m.tx[i] = r.U64();
  const std::uint64_t n_owned = r.U64();
  CheckCount(r, n_owned, 12);
  m.owned.resize(n_owned);
  for (std::uint64_t i = 0; i < n_owned; ++i) {
    m.owned[i].first = r.U32();
    m.owned[i].second = r.U64();
  }
  const std::uint32_t n_near = r.U32();
  CheckCount(r, n_near, 8);
  m.near.resize(n_near);
  for (std::uint32_t i = 0; i < n_near; ++i) {
    TxSlice& s = m.near[i];
    s.tile = r.U32();
    const std::uint32_t count = r.U32();
    CheckCount(r, count, 24);
    s.members.resize(count);
    s.pos.resize(count);
    for (std::uint32_t j = 0; j < count; ++j) {
      s.members[j] = r.U64();
      s.pos[j].x = r.F64();
      s.pos[j].y = r.F64();
    }
  }
  const std::uint32_t n_far = r.U32();
  CheckCount(r, n_far, 8);
  m.far.resize(n_far);
  for (std::uint32_t i = 0; i < n_far; ++i) {
    m.far[i].first = r.U32();
    m.far[i].second = r.U32();
  }
  r.ExpectEnd();
  return m;
}

std::string Encode(const RoundReplyMsg& m) {
  PayloadWriter w;
  w.U8(static_cast<std::uint8_t>(MsgTag::kRoundReply));
  w.U64(m.round);
  w.U32(static_cast<std::uint32_t>(m.receptions.size()));
  for (const ReplyEntry& e : m.receptions) {
    w.U32(e.ordinal);
    w.U64(e.listener);
    w.U64(e.sender);
    w.F64(e.sinr);
  }
  return w.Take();
}

RoundReplyMsg DecodeRoundReply(std::string_view payload) {
  PayloadReader r(payload);
  CheckTag(r, MsgTag::kRoundReply);
  RoundReplyMsg m;
  m.round = r.U64();
  const std::uint32_t count = r.U32();
  CheckCount(r, count, 28);
  m.receptions.resize(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ReplyEntry& e = m.receptions[i];
    e.ordinal = r.U32();
    e.listener = r.U64();
    e.sender = r.U64();
    e.sinr = r.F64();
  }
  r.ExpectEnd();
  return m;
}

std::string EncodeShutdown() {
  PayloadWriter w;
  w.U8(static_cast<std::uint8_t>(MsgTag::kShutdown));
  return w.Take();
}

std::string EncodeError(const std::string& message) {
  PayloadWriter w;
  w.U8(static_cast<std::uint8_t>(MsgTag::kError));
  w.Str(message);
  return w.Take();
}

std::string DecodeError(std::string_view payload) {
  PayloadReader r(payload);
  CheckTag(r, MsgTag::kError);
  std::string message = r.Str();
  r.ExpectEnd();
  return message;
}

std::string EncodeTraceDump(const std::string& ship) {
  PayloadWriter w;
  w.U8(static_cast<std::uint8_t>(MsgTag::kTraceDump));
  w.Str(ship);
  return w.Take();
}

std::string DecodeTraceDump(std::string_view payload) {
  PayloadReader r(payload);
  CheckTag(r, MsgTag::kTraceDump);
  std::string ship = r.Str();
  r.ExpectEnd();
  return ship;
}

MsgTag PeekTag(std::string_view payload) {
  if (payload.empty()) throw WireError("distrib: empty message payload");
  return static_cast<MsgTag>(static_cast<std::uint8_t>(payload[0]));
}

std::vector<int> NearTxTiles(const SpatialGrid& grid,
                             std::span<const int> listener_tiles,
                             std::span<const int> occupied_tx,
                             double far_start) {
  const double far_sq = far_start * far_start;
  std::vector<int> near;
  for (const int b : occupied_tx) {
    for (const int t : listener_tiles) {
      if (grid.TileDistLoSq(t, b) <= far_sq) {
        near.push_back(b);
        break;
      }
    }
  }
  return near;
}

}  // namespace dcc::distrib
