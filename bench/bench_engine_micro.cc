// Engine micro-benchmarks (google-benchmark): SINR round throughput with
// the dense gain matrix vs on-the-fly gains, schedule execution overhead,
// and selector membership cost. These gate how large the protocol
// experiments can run.
#include <benchmark/benchmark.h>

#include "dcc/cluster/profile.h"
#include "dcc/sel/ssf.h"
#include "dcc/sim/runner.h"
#include "dcc/sinr/engine.h"
#include "dcc/workload/generators.h"

namespace dcc {
namespace {

sinr::Network MakeNet(int n, std::int64_t id_space) {
  sinr::Params params = sinr::Params::Default();
  params.id_space = id_space;
  auto pts = workload::UniformSquare(n, std::sqrt(static_cast<double>(n)),
                                     42);
  return workload::MakeNetwork(std::move(pts), params, 7);
}

void BM_EngineStepDense(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto net = MakeNet(n, 1 << 16);
  const sinr::Engine eng(net);
  std::vector<std::size_t> tx, listeners;
  for (int i = 0; i < n; ++i) {
    if (i % 8 == 0) {
      tx.push_back(static_cast<std::size_t>(i));
    } else {
      listeners.push_back(static_cast<std::size_t>(i));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.Step(tx, listeners));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(tx.size()) *
                          static_cast<std::int64_t>(listeners.size()));
}
BENCHMARK(BM_EngineStepDense)->Arg(64)->Arg(256)->Arg(1024);

void BM_EngineStepSparseTx(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto net = MakeNet(n, 1 << 16);
  const sinr::Engine eng(net);
  std::vector<std::size_t> tx{0, static_cast<std::size_t>(n / 2)};
  std::vector<std::size_t> listeners;
  for (int i = 1; i < n; ++i) {
    if (i != n / 2) listeners.push_back(static_cast<std::size_t>(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.Step(tx, listeners));
  }
}
BENCHMARK(BM_EngineStepSparseTx)->Arg(256)->Arg(1024);

void BM_ExecRoundOverhead(benchmark::State& state) {
  const auto net = MakeNet(256, 1 << 16);
  sim::Exec ex(net);
  std::vector<std::size_t> all(net.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  for (auto _ : state) {
    ex.RunRound(
        all,
        [](std::size_t i) -> std::optional<sim::Message> {
          if (i % 16 != 0) return std::nullopt;
          return sim::Message{};
        },
        [](std::size_t, const sim::Message&) {});
  }
}
BENCHMARK(BM_ExecRoundOverhead);

void BM_SsfMembership(benchmark::State& state) {
  const auto ssf = sel::Ssf::Construct(1 << 16, 8);
  std::int64_t r = 0, x = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ssf.Member(r, x));
    r = (r + 1) % ssf.size();
    x = (x % (1 << 16)) + 1;
  }
}
BENCHMARK(BM_SsfMembership);

void BM_WssMembership(benchmark::State& state) {
  const auto prof = cluster::Profile::Practical(1 << 16);
  const auto sched = prof.MakeWss(1 << 16, 1);
  std::int64_t r = 0;
  NodeId x = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched->Transmits(r, x, 1));
    r = (r + 1) % sched->size();
    x = (x % (1 << 16)) + 1;
  }
}
BENCHMARK(BM_WssMembership);

void BM_GainMatrixConstruction(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sinr::Params params = sinr::Params::Default();
  params.id_space = 1 << 16;
  const auto pts =
      workload::UniformSquare(n, std::sqrt(static_cast<double>(n)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sinr::Network::WithSequentialIds(pts, params));
  }
}
BENCHMARK(BM_GainMatrixConstruction)->Arg(128)->Arg(512);

}  // namespace
}  // namespace dcc

BENCHMARK_MAIN();
