#include "dcc/obs/trace.h"

#include <algorithm>
#include <limits>
#include <ostream>
#include <utility>

#include "dcc/common/json.h"
#include "dcc/common/wire.h"

namespace dcc::obs {

std::atomic<bool> Tracer::g_enabled_{false};

namespace {

// Each thread remembers which tracer generation its buffer belongs to;
// Enable bumps the epoch, so a stale slot re-registers instead of writing
// into a buffer that Drain already collected.
struct ThreadSlot {
  std::uint64_t epoch = 0;
  void* buf = nullptr;
};
thread_local ThreadSlot t_slot;

// The value reported as TraceSummary::overhead_ns: wall clock for 1000
// passes over the disabled instrumentation check (one relaxed load and a
// dead branch each). Measured after the gate is lowered, so it times
// exactly what every instrumentation point costs in an untraced run.
std::int64_t MeasureDisabledChecksNs() {
  volatile std::int64_t sink = 0;
  const std::int64_t t0 = NowRawNs();
  for (int i = 0; i < 1000; ++i) {
    if (Tracer::enabled()) sink = sink + 1;
  }
  const std::int64_t t1 = NowRawNs();
  (void)sink;
  return t1 - t0;
}

// Bytes one encoded event occupies in a shipped payload (ts + value +
// name + kind) — used to reject hostile counts before allocating.
constexpr std::size_t kShipEventBytes = 8 + 8 + 4 + 1;

}  // namespace

Tracer& Tracer::Global() {
  static Tracer tracer;
  return tracer;
}

void Tracer::Enable(std::size_t ring_capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  bufs_.clear();
  foreign_.clear();
  capacity_.store(ring_capacity == 0 ? 1 : ring_capacity,
                  std::memory_order_relaxed);
  clock_offset_ns_.store(0, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
  g_enabled_.store(true, std::memory_order_release);
}

void Tracer::Disable() { g_enabled_.store(false, std::memory_order_relaxed); }

std::uint32_t Tracer::Intern(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = name_ids_.find(std::string(name));
  if (it != name_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  name_ids_.emplace(names_.back(), id);
  return id;
}

Tracer::ThreadBuf* Tracer::RegisterThisThread(std::uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  auto buf = std::make_unique<ThreadBuf>();
  buf->tid = static_cast<std::uint32_t>(bufs_.size());
  buf->events.reserve(capacity_.load(std::memory_order_relaxed));
  ThreadBuf* raw = buf.get();
  bufs_.push_back(std::move(buf));
  t_slot.epoch = epoch;
  t_slot.buf = raw;
  return raw;
}

void Tracer::Emit(std::uint32_t name, EventKind kind, std::int64_t value) {
  if (!enabled()) return;
  const std::uint64_t epoch = epoch_.load(std::memory_order_acquire);
  auto* buf = static_cast<ThreadBuf*>(t_slot.buf);
  if (buf == nullptr || t_slot.epoch != epoch) {
    buf = RegisterThisThread(epoch);
  }
  if (buf->events.size() <
      capacity_.load(std::memory_order_relaxed)) {  // drop-new when full
    buf->events.push_back(
        {NowRawNs() + clock_offset_ns_.load(std::memory_order_relaxed), value,
         name, kind});
  } else {
    ++buf->dropped;
  }
}

void Tracer::SetClockOffset(std::int64_t offset_ns) {
  clock_offset_ns_.store(offset_ns, std::memory_order_relaxed);
}

std::string Tracer::EncodeShip() const {
  std::lock_guard<std::mutex> lock(mu_);
  wire::PayloadWriter w;
  w.U32(static_cast<std::uint32_t>(names_.size()));
  for (const std::string& name : names_) w.Str(name);
  w.U32(static_cast<std::uint32_t>(bufs_.size()));
  for (const auto& buf : bufs_) {
    w.U32(buf->tid);
    w.U64(buf->dropped);
    w.U64(static_cast<std::uint64_t>(buf->events.size()));
    for (const TraceEvent& e : buf->events) {
      w.U64(static_cast<std::uint64_t>(e.ts_ns));
      w.U64(static_cast<std::uint64_t>(e.value));
      w.U32(e.name);
      w.U8(static_cast<std::uint8_t>(e.kind));
    }
  }
  return w.Take();
}

bool Tracer::InjectShip(std::int64_t pid, std::string_view payload) {
  try {
    wire::PayloadReader r(payload);
    ForeignProcess proc;
    proc.pid = pid;
    const std::uint32_t n_names = r.U32();
    if (n_names > r.remaining() / 4) return false;
    proc.names.reserve(n_names);
    for (std::uint32_t i = 0; i < n_names; ++i) proc.names.push_back(r.Str());
    const std::uint32_t n_threads = r.U32();
    if (n_threads > r.remaining() / (4 + 8 + 8)) return false;
    proc.threads.reserve(n_threads);
    for (std::uint32_t t = 0; t < n_threads; ++t) {
      ForeignThread th;
      th.tid = r.U32();
      th.dropped = r.U64();
      const std::uint64_t n_events = r.U64();
      if (n_events > r.remaining() / kShipEventBytes) return false;
      th.events.reserve(n_events);
      for (std::uint64_t e = 0; e < n_events; ++e) {
        TraceEvent ev;
        ev.ts_ns = static_cast<std::int64_t>(r.U64());
        ev.value = static_cast<std::int64_t>(r.U64());
        ev.name = r.U32();
        const std::uint8_t kind = r.U8();
        if (kind > static_cast<std::uint8_t>(EventKind::kInstant)) {
          return false;
        }
        ev.kind = static_cast<EventKind>(kind);
        th.events.push_back(ev);
      }
      proc.threads.push_back(std::move(th));
    }
    r.ExpectEnd();
    std::lock_guard<std::mutex> lock(mu_);
    foreign_.push_back(std::move(proc));
    return true;
  } catch (const wire::WireError&) {
    return false;
  }
}

TraceSummary Tracer::Drain(std::ostream& os) {
  g_enabled_.store(false, std::memory_order_relaxed);
  TraceSummary sum;
  sum.overhead_ns = MeasureDisabledChecksNs();

  std::lock_guard<std::mutex> lock(mu_);

  // Everything is timestamped in the coordinator clock domain (ranks
  // pre-corrected theirs); rebase onto the earliest event so the viewer
  // opens at t=0.
  std::int64_t min_ts = std::numeric_limits<std::int64_t>::max();
  for (const auto& buf : bufs_) {
    for (const TraceEvent& e : buf->events) min_ts = std::min(min_ts, e.ts_ns);
  }
  for (const ForeignProcess& proc : foreign_) {
    for (const ForeignThread& th : proc.threads) {
      for (const TraceEvent& e : th.events) min_ts = std::min(min_ts, e.ts_ns);
    }
  }
  if (min_ts == std::numeric_limits<std::int64_t>::max()) min_ts = 0;

  os << "{\"traceEvents\": [";
  bool first = true;
  const auto comma = [&os, &first] {
    os << (first ? "\n" : ",\n");
    first = false;
  };
  const auto meta = [&](std::int64_t pid, const std::string& label) {
    comma();
    os << "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": " << pid
       << ", \"tid\": 0, \"args\": {\"name\": " << JsonQuote(label) << "}}";
  };
  meta(0, "dcc (coordinator)");
  for (const ForeignProcess& proc : foreign_) {
    meta(proc.pid, "dcc rank " + std::to_string(proc.pid - 1));
  }

  const auto write_events = [&](std::int64_t pid,
                                const std::vector<std::string>& names,
                                std::uint32_t tid,
                                const std::vector<TraceEvent>& events) {
    for (const TraceEvent& e : events) {
      comma();
      const std::string name =
          e.name < names.size() ? JsonQuote(names[e.name]) : "\"?\"";
      const std::string ts =
          JsonNumber(static_cast<double>(e.ts_ns - min_ts) / 1000.0);
      switch (e.kind) {
        case EventKind::kBegin:
        case EventKind::kEnd:
          os << "{\"name\": " << name << ", \"cat\": \"dcc\", \"ph\": \""
             << (e.kind == EventKind::kBegin ? 'B' : 'E')
             << "\", \"ts\": " << ts << ", \"pid\": " << pid
             << ", \"tid\": " << tid << "}";
          if (e.kind == EventKind::kBegin) ++sum.spans;
          break;
        case EventKind::kCounter:
          os << "{\"name\": " << name << ", \"cat\": \"dcc\", \"ph\": \"C\""
             << ", \"ts\": " << ts << ", \"pid\": " << pid
             << ", \"tid\": " << tid << ", \"args\": {\"value\": " << e.value
             << "}}";
          ++sum.counters;
          break;
        case EventKind::kInstant:
          os << "{\"name\": " << name << ", \"cat\": \"dcc\", \"ph\": \"i\""
             << ", \"ts\": " << ts << ", \"pid\": " << pid
             << ", \"tid\": " << tid << ", \"s\": \"t\"}";
          ++sum.counters;
          break;
      }
      ++sum.events;
    }
    if (!events.empty()) ++sum.threads;
  };

  for (const auto& buf : bufs_) {
    write_events(0, names_, buf->tid, buf->events);
    sum.dropped += static_cast<std::int64_t>(buf->dropped);
  }
  for (const ForeignProcess& proc : foreign_) {
    for (const ForeignThread& th : proc.threads) {
      write_events(proc.pid, proc.names, th.tid, th.events);
      sum.dropped += static_cast<std::int64_t>(th.dropped);
    }
  }
  sum.ranks = static_cast<std::int64_t>(foreign_.size());
  os << "\n]}\n";

  bufs_.clear();
  foreign_.clear();
  return sum;
}

void TraceSummary::PrintJson(std::ostream& os) const {
  os << "{\"schema\": \"dcc.obs.v1\", \"events\": " << events
     << ", \"spans\": " << spans << ", \"counters\": " << counters
     << ", \"dropped\": " << dropped << ", \"threads\": " << threads
     << ", \"ranks\": " << ranks << ", \"overhead_ns\": " << overhead_ns
     << '}';
}

}  // namespace dcc::obs
