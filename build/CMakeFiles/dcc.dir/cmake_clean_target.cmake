file(REMOVE_RECURSE
  "libdcc.a"
)
