// Figure 7 + Theorem 6 — chained gadgets: Omega(D * Delta^{1-1/alpha}).
//
// D/kappa gadgets separated by buffer paths of kappa = Delta^{1/alpha}/(1-eps)
// nodes. Each gadget independently costs ~Delta rounds under adversarial
// IDs, and the buffers keep cross-gadget interference under the nu budget,
// so end-to-end delivery scales like (#gadgets) * Delta ~ D * Delta^{1-1/alpha}.
//
// We simulate the per-gadget relay pessimistically-faithfully: a gadget's
// core starts its (adversarially labeled) selector schedule when its s
// first holds the message; the message advances to the next s through the
// buffer path at one hop per round (free for the algorithm, charged in
// rounds). Measured: total delivery round vs m (chain length) and Delta.
#include <cmath>
#include <numeric>

#include "bench_common.h"
#include "dcc/lowerbound/adversary.h"
#include "dcc/lowerbound/gadget.h"
#include "dcc/sinr/engine.h"

namespace dcc {
namespace {

struct ChainRun {
  Round total = 0;
  std::vector<Round> per_gadget;
};

ChainRun RunChain(const lowerbound::GadgetChain& chain,
                  const sinr::Params& params, std::uint64_t seed,
                  Round horizon) {
  // Per-gadget adversarial ids against the density-aware selector.
  const auto trace =
      lowerbound::SelectorTrace(params.id_space, chain.delta, seed);
  std::vector<NodeId> ids(chain.positions.size());
  NodeId next_id = 1;
  for (auto& id : ids) id = next_id++;  // defaults: buffers, s, t
  NodeId pool_base = 1000;
  for (const auto& g : chain.gadgets) {
    std::vector<NodeId> pool(static_cast<std::size_t>(chain.delta) + 2);
    std::iota(pool.begin(), pool.end(), pool_base);
    pool_base += static_cast<NodeId>(pool.size()) + 10;
    const auto asg =
        lowerbound::AssignAdversarialIds(trace, pool, chain.delta, horizon);
    for (std::size_t i = 0; i < g.core.size(); ++i) {
      ids[g.core[i]] = asg.core_ids[i];
    }
  }
  const sinr::Network net(chain.positions, ids, params);
  const sinr::Engine eng(net);

  ChainRun run;
  Round now = 0;
  const int kappa = static_cast<int>(std::ceil(
      std::pow(static_cast<double>(chain.delta), 1.0 / params.alpha) /
      (1.0 - params.eps)));
  for (std::size_t gi = 0; gi < chain.gadgets.size(); ++gi) {
    const auto& g = chain.gadgets[gi];
    // Core wakes (s transmits once), then runs the selector schedule from
    // local round 0; find the first round t hears.
    const Round start = now + 1;
    Round local = 0;
    for (; local < horizon; ++local) {
      std::vector<std::size_t> tx;
      for (const std::size_t c : g.core) {
        if (trace(net.id(c), local)) tx.push_back(c);
      }
      if (tx.empty()) continue;
      if (!eng.Step(tx, {g.t}).empty()) break;
    }
    run.per_gadget.push_back(local);
    now = start + local;
    // Relay through the buffer path to the next gadget's s: one hop per
    // round (kappa+1 hops), interference-free by construction.
    if (gi + 1 < chain.gadgets.size()) now += kappa + 1;
  }
  run.total = now;
  return run;
}

void Run() {
  bench::Banner(
      "Figure 7: chained-gadget lower bound (Omega(D Delta^{1-1/alpha}))",
      "Jurdzinski et al., PODC'18, Fig. 7, Lemma 14",
      "total ~ m * Delta + buffers: linear in chain length m, superlinear "
      "in Delta after dividing by the kappa-spacing");

  const sinr::Params params = [] {
    auto p = lowerbound::GadgetParams(3.0, 0.08, 2.0);
    p.id_space = 1 << 14;
    return p;
  }();
  const Round horizon = 1 << 15;

  std::cout << "-- chain length sweep (Delta = 16) --\n";
  Table tm({"gadgets", "n", "D(hops)", "delivery", "delivery/gadget"});
  for (const int m : {2, 4, 6, 8}) {
    const auto chain = lowerbound::MakeGadgetChain(m, 16, params, 2.0);
    const auto net =
        sinr::Network::WithSequentialIds(chain.positions, params);
    const auto run = RunChain(chain, params, 7, horizon);
    tm.AddRow({Table::Num(std::int64_t{m}),
               Table::Num(static_cast<std::int64_t>(chain.positions.size())),
               Table::Num(std::int64_t{net.Diameter()}),
               Table::Num(run.total),
               Table::Num(static_cast<double>(run.total) / m)});
  }
  tm.Print(std::cout);

  std::cout << "\n-- Delta sweep (4 gadgets) --\n";
  Table td({"Delta", "kappa", "n", "delivery", "delivery/(m*Delta)"});
  for (const int delta : {8, 16, 24, 32}) {
    const auto chain = lowerbound::MakeGadgetChain(4, delta, params, 2.0);
    const auto run = RunChain(chain, params, 11, horizon);
    const int kappa = static_cast<int>(std::ceil(
        std::pow(static_cast<double>(delta), 1.0 / params.alpha) /
        (1.0 - params.eps)));
    td.AddRow({Table::Num(std::int64_t{delta}), Table::Num(std::int64_t{kappa}),
               Table::Num(static_cast<std::int64_t>(chain.positions.size())),
               Table::Num(run.total),
               Table::Num(static_cast<double>(run.total) / (4.0 * delta))});
  }
  td.Print(std::cout);
}

}  // namespace
}  // namespace dcc

int main() {
  dcc::Run();
  return 0;
}
