#include "dcc/sinr/params.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dcc::sinr {
namespace {

TEST(ParamsTest, DefaultHasUnitRange) {
  const Params p = Params::Default();
  EXPECT_NEAR(p.TransmissionRange(), 1.0, 1e-12);
  EXPECT_NEAR(p.CommRadius(), 1.0 - p.eps, 1e-12);
}

TEST(ParamsTest, RangeFormula) {
  Params p = Params::Default();
  p.power = 8.0 * p.noise * p.beta;  // range = 8^{1/alpha} = 2 at alpha = 3
  EXPECT_NEAR(p.TransmissionRange(), 2.0, 1e-12);
}

TEST(ParamsTest, ValidationRejectsBadRanges) {
  Params p = Params::Default();
  p.alpha = 2.0;  // must be > 2
  EXPECT_THROW(p.Validate(), InvalidArgument);

  p = Params::Default();
  p.beta = 1.0;  // must be > 1
  EXPECT_THROW(p.Validate(), InvalidArgument);

  p = Params::Default();
  p.eps = 0.0;
  EXPECT_THROW(p.Validate(), InvalidArgument);
  p.eps = 1.0;
  EXPECT_THROW(p.Validate(), InvalidArgument);

  p = Params::Default();
  p.noise = 0.0;
  EXPECT_THROW(p.Validate(), InvalidArgument);

  p = Params::Default();
  p.id_space = 0;
  EXPECT_THROW(p.Validate(), InvalidArgument);
}

TEST(ParamsTest, DefaultAcceptsCustomAlphaBetaEps) {
  const Params p = Params::Default(4.0, 2.0, 0.3);
  EXPECT_DOUBLE_EQ(p.alpha, 4.0);
  EXPECT_DOUBLE_EQ(p.beta, 2.0);
  EXPECT_DOUBLE_EQ(p.eps, 0.3);
  EXPECT_NEAR(p.TransmissionRange(), 1.0, 1e-12);
}

}  // namespace
}  // namespace dcc::sinr
