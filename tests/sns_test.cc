// Lemma 4 (Sparse Network Schedule) on real geometry: when the participant
// set has constant density, every participant's message must be received at
// every node within 1 - eps in some round.
#include "dcc/bcast/sns.h"

#include <gtest/gtest.h>

#include <tuple>
#include <unordered_set>

#include "dcc/workload/generators.h"

namespace dcc::bcast {
namespace {

// Runs an SNS over the given participant indices and returns, per
// participant, whether every node within comm radius heard it.
std::vector<bool> SnsCoverage(const sinr::Network& net,
                              const cluster::Profile& prof,
                              const std::vector<std::size_t>& members,
                              std::uint64_t nonce) {
  sim::Exec ex(net);
  std::vector<sim::Participant> parts;
  for (const std::size_t idx : members) {
    parts.push_back({idx, net.id(idx), kNoCluster});
  }
  std::vector<std::unordered_set<std::size_t>> heard_by(net.size());
  RunSns(
      ex, prof, parts,
      [&](std::size_t) {
        sim::Message m;
        m.kind = 1;
        return std::optional<sim::Message>(m);
      },
      [&](std::size_t listener, const sim::Message& m) {
        heard_by[net.IndexOf(m.src)].insert(listener);
      },
      nonce);

  const double comm = net.params().CommRadius();
  std::vector<bool> covered;
  for (const std::size_t v : members) {
    bool all = true;
    for (std::size_t u = 0; u < net.size(); ++u) {
      if (u == v || net.Distance(v, u) > comm) continue;
      if (!heard_by[v].count(u)) {
        all = false;
        break;
      }
    }
    covered.push_back(all);
  }
  return covered;
}

TEST(SnsTest, SingleNodeHeardEverywhereInRange) {
  auto pts = workload::Line(5, 0.7, 1);
  const auto net = sinr::Network::WithSequentialIds(pts, sinr::Params::Default());
  const auto prof = cluster::Profile::Practical(net.params().id_space);
  const auto cov = SnsCoverage(net, prof, {2}, 1);
  EXPECT_TRUE(cov[0]);
}

TEST(SnsTest, ConstantDensitySetFullCoverage) {
  // ~1 node per unit cell over a 8x8 field: density O(1).
  sinr::Params params = sinr::Params::Default();
  params.id_space = 1 << 12;
  auto pts = workload::UniformSquare(64, 8.0, 7);
  const auto net = workload::MakeNetwork(pts, params, 99);
  const auto prof = cluster::Profile::Practical(params.id_space);
  std::vector<std::size_t> all(net.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  const auto cov = SnsCoverage(net, prof, all, 2);
  for (std::size_t i = 0; i < cov.size(); ++i) {
    EXPECT_TRUE(cov[i]) << "node " << i << " not fully heard";
  }
}

TEST(SnsTest, GridDensityOnePerCell) {
  sinr::Params params = sinr::Params::Default();
  params.id_space = 1 << 12;
  auto pts = workload::Grid(6, 6, 1.1);
  const auto net = workload::MakeNetwork(pts, params, 5);
  const auto prof = cluster::Profile::Practical(params.id_space);
  std::vector<std::size_t> all(net.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  const auto cov = SnsCoverage(net, prof, all, 3);
  for (std::size_t i = 0; i < cov.size(); ++i) {
    EXPECT_TRUE(cov[i]) << "grid node " << i;
  }
}

TEST(SnsTest, LengthIsLogarithmicInIdSpace) {
  const auto prof = cluster::Profile::Practical(1 << 16);
  const auto len12 = prof.SnsLen(1 << 12);
  const auto len24 = prof.SnsLen(1ll << 24);
  // ln scaling: doubling the exponent should ~double the length.
  EXPECT_GT(len24, len12);
  EXPECT_LT(len24, 3 * len12);
}

class SnsDensitySweep : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(SnsDensitySweep, CoverageAcrossSeedsAndSizes) {
  const auto [n, seed] = GetParam();
  sinr::Params params = sinr::Params::Default();
  params.id_space = 1 << 12;
  const double side = std::sqrt(static_cast<double>(n));  // ~1 per unit area
  auto pts = workload::UniformSquare(n, side, static_cast<std::uint64_t>(seed));
  const auto net = workload::MakeNetwork(pts, params,
                                         static_cast<std::uint64_t>(seed) + 50);
  const auto prof = cluster::Profile::Practical(params.id_space);
  std::vector<std::size_t> all(net.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  const auto cov = SnsCoverage(net, prof, all, static_cast<std::uint64_t>(seed));
  std::size_t covered = 0;
  for (const bool c : cov) covered += c ? 1 : 0;
  EXPECT_EQ(covered, cov.size());
}

INSTANTIATE_TEST_SUITE_P(Sweep, SnsDensitySweep,
                         ::testing::Combine(::testing::Values(36, 81, 144),
                                            ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace dcc::bcast
