#include "dcc/scenario/report.h"

#include <algorithm>
#include <ostream>

#include "dcc/common/json.h"
#include "dcc/distrib/session.h"
#include "dcc/sinr/engine.h"

namespace dcc::scenario {

void RunReport::PrintJson(std::ostream& os) const {
  os << "{\"schema\": \"dcc.run_report.v1\", \"topology\": "
     << JsonQuote(topology) << ", \"algo\": " << JsonQuote(algo)
     << ", \"seed\": " << seed << ", \"ok\": " << (ok ? "true" : "false");
  if (!error.empty()) os << ", \"error\": " << JsonQuote(error);
  os << ", \"metrics\": ";
  metrics.PrintJson(os);
  if (!dynamic.empty()) {
    os << ", \"dynamic\": {\"schema\": \"dcc.dynamic.v1\", \"model\": "
       << JsonQuote(dynamic.model)
       << ", \"epoch_len\": " << JsonNumber(dynamic.epoch_len)
       << ", \"epochs\": [";
    for (std::size_t i = 0; i < dynamic.epochs.size(); ++i) {
      if (i) os << ", ";
      dynamic.epochs[i].PrintJson(os);
    }
    os << "]}";
  }
  if (!parallel.empty()) {
    os << ", \"parallel\": {\"schema\": \"dcc.parallel.v1\", \"threads\": "
       << parallel.threads
       << ", \"rounds_parallel\": " << parallel.rounds_parallel
       << ", \"rounds_serial\": " << parallel.rounds_serial
       << ", \"shard_load\": [";
    for (std::size_t i = 0; i < parallel.shard_load.size(); ++i) {
      if (i) os << ", ";
      os << parallel.shard_load[i];
    }
    os << "], \"imbalance\": " << JsonNumber(parallel.imbalance)
       << ", \"rounds_pipelined\": " << parallel.rounds_pipelined
       << ", \"prologue_overlap_ns\": " << parallel.prologue_overlap_ns
       << ", \"steal_count\": " << parallel.steal_count
       << ", \"tile_states_computed\": " << parallel.tile_states_computed
       << ", \"tile_states_reused\": " << parallel.tile_states_reused
       << ", \"prologue_cache_hits\": " << parallel.prologue_cache_hits
       << ", \"prologue_cache_misses\": " << parallel.prologue_cache_misses
       << '}';
  }
  if (!distrib.empty()) {
    os << ", \"distrib\": {\"schema\": \"dcc.distrib.v1\", \"ranks\": "
       << distrib.ranks << ", \"rounds\": " << distrib.rounds
       << ", \"halo_tiles\": " << distrib.halo_tiles
       << ", \"halo_bytes\": " << distrib.halo_bytes
       << ", \"reply_bytes\": " << distrib.reply_bytes << ", \"rank_load\": [";
    for (std::size_t i = 0; i < distrib.rank_load.size(); ++i) {
      if (i) os << ", ";
      os << distrib.rank_load[i];
    }
    os << "], \"imbalance\": " << JsonNumber(distrib.imbalance) << '}';
  }
  os << '}';
}

void FillParallelSection(RunReport& rep, const sinr::Engine& engine) {
  if (engine.threads() <= 1) return;
  const sinr::Engine::Stats& st = engine.stats();
  rep.parallel.threads = engine.threads();
  rep.parallel.rounds_parallel = st.parallel_rounds;
  rep.parallel.rounds_serial = st.parallel_small_rounds;
  rep.parallel.shard_load = st.shard_listeners;
  rep.parallel.rounds_pipelined = st.rounds_pipelined;
  rep.parallel.prologue_overlap_ns = st.prologue_overlap_ns;
  rep.parallel.steal_count = st.steal_count;
  rep.parallel.tile_states_computed = st.tile_states_computed;
  rep.parallel.tile_states_reused = st.tile_states_reused;
  rep.parallel.prologue_cache_hits = st.prologue_cache_hits;
  rep.parallel.prologue_cache_misses = st.prologue_cache_misses;
  rep.parallel.imbalance = 0.0;
  if (!st.shard_listeners.empty()) {
    std::int64_t total = 0;
    std::int64_t peak = 0;
    for (const std::int64_t l : st.shard_listeners) {
      total += l;
      peak = std::max(peak, l);
    }
    if (total > 0) {
      const double mean = static_cast<double>(total) /
                          static_cast<double>(st.shard_listeners.size());
      rep.parallel.imbalance = static_cast<double>(peak) / mean;
    }
  }
}

void FillDistribSection(RunReport& rep, const distrib::Session& session) {
  const distrib::Session::Stats& st = session.stats();
  if (st.rounds <= 0) return;
  rep.distrib.ranks = st.ranks;
  rep.distrib.rounds = st.rounds;
  rep.distrib.halo_tiles = st.halo_tiles;
  rep.distrib.halo_bytes = st.halo_bytes;
  rep.distrib.reply_bytes = st.reply_bytes;
  rep.distrib.rank_load = st.rank_load;
  rep.distrib.imbalance = 0.0;
  std::int64_t total = 0;
  std::int64_t peak = 0;
  for (const std::int64_t l : st.rank_load) {
    total += l;
    peak = std::max(peak, l);
  }
  if (total > 0 && !st.rank_load.empty()) {
    const double mean = static_cast<double>(total) /
                        static_cast<double>(st.rank_load.size());
    rep.distrib.imbalance = static_cast<double>(peak) / mean;
  }
}

void PrintSweepJson(std::ostream& os, const std::string& spec_line,
                    const std::vector<RunReport>& runs) {
  os << "{\"schema\": \"dcc.sweep.v1\", \"spec\": " << JsonQuote(spec_line)
     << ", \"runs\": [";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (i) os << ", ";
    runs[i].PrintJson(os);
  }
  os << "]}\n";
}

}  // namespace dcc::scenario
