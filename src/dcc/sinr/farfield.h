// Far-field tile pyramid: a multi-resolution aggregation over the
// SpatialGrid's tiles, rebuilt from each round's transmitter CSR, that lets
// a listener tile accumulate its far-field interference bounds by visiting
// O(log #tiles) coarse cells instead of every occupied transmitter tile.
//
// Structure. Level 0 is the leaf tiling (one cell per SpatialGrid tile);
// each higher level halves both axis extents (rounding up) until a single
// root cell covers the whole grid. A cell stores the total transmitter
// count of its descendant leaves, so empty subtrees are skipped without
// being visited.
//
// Conservativeness. The distance bounds between a listener tile and a
// coarse cell come from SpatialGrid::TileRangeDistLoSq/HiSq over the cell's
// leaf-coordinate range: the lower bound never exceeds any descendant
// leaf's TileDistLoSq and the upper bound never undercuts any descendant's
// TileDistHiSq, and at level 0 the range collapses to the exact
// TileDistLoSq/HiSq arithmetic. Consequences, relied on by the engine's
// bit-identity contract (see ARCHITECTURE.md "Far-field tile pyramid"):
//  * The close/far *classification* of every leaf tile is identical to the
//    flat per-tile walk: a leaf is close iff TileDistLoSq <= far_sq, and an
//    ancestor is pruned as far only when its range lower bound — which is
//    <= the leaf's — already exceeds far_sq, so no close leaf can be
//    skipped and no far leaf can be misclassified as close.
//  * The accumulated far-field bounds are conservative relative to the
//    flat walk: the interference lower bound can only shrink (coarser
//    upper distances) and the best-gain upper bound can only grow (coarser
//    lower distances). Pruning with these bounds can therefore only defer
//    *more* listeners to the exact stage-3 fallback — never change which
//    listeners receive, which is why receptions are bit-identical with the
//    pyramid on or off.
//
// Thread-safety: Rebuild/Accumulate/NearTiles use internal scratch and must
// not run concurrently on one pyramid. The engine serializes its prologue
// builds (AbandonPrefetch/Collect precede every fresh build), which is the
// only place the pyramid is touched.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "dcc/common/spatial_grid.h"

namespace dcc::sinr {

class FarFieldPyramid {
 public:
  // Binds the pyramid to a grid's tile geometry (idempotent while the
  // shape is unchanged; SpatialGrid never re-tiles after construction, so
  // one Reset per engine lifetime is the steady state).
  void Reset(const SpatialGrid& grid);

  // Rebuilds the counts from one round's occupied transmitter tiles
  // (ascending) and a per-tile count lookup — the engine passes CSR row
  // widths, the distributed session its tx tally. Incremental: only the
  // cells touched by the previous round are zeroed, so a rebuild is
  // O(|occupied| * levels), not O(#tiles).
  template <class CountFn>
  void Rebuild(std::span<const int> occupied_tx, CountFn&& count_of) {
    for (Level& lv : levels_) {
      for (const std::uint32_t idx : lv.touched) lv.count[idx] = 0;
      lv.touched.clear();
    }
    for (const int b : occupied_tx) {
      const auto cnt = static_cast<std::uint32_t>(count_of(b));
      std::uint32_t x = static_cast<std::uint32_t>(b % nx0_);
      std::uint32_t y = static_cast<std::uint32_t>(b / nx0_);
      for (Level& lv : levels_) {
        const std::uint32_t idx = y * static_cast<std::uint32_t>(lv.nx) + x;
        if (lv.count[idx] == 0) lv.touched.push_back(idx);
        lv.count[idx] += cnt;
        x >>= 1;
        y >>= 1;
      }
    }
  }

  // Descends from the root for one listener tile: coarse cells entirely
  // beyond far_sq contribute their whole count to the far-field bounds at
  // their level; cells that might be close refine, and close *leaves* are
  // appended to `close_out` (sorted ascending before returning, matching
  // the flat walk's occupied-ascending order). min_gain_d2/max_gain_d2 map
  // a squared distance to the model's envelope gains.
  template <class MinGain, class MaxGain>
  void Accumulate(const SpatialGrid& grid, int tile, double far_sq,
                  MinGain&& min_gain_d2, MaxGain&& max_gain_d2,
                  std::vector<int>& close_out, double& far_lo,
                  double& far_ub) const {
    const std::size_t close_begin = close_out.size();
    stack_.clear();
    const int top = static_cast<int>(levels_.size()) - 1;
    if (top >= 0 && levels_[static_cast<std::size_t>(top)].count[0] > 0) {
      stack_.push_back(Cell{top, 0, 0});
    }
    while (!stack_.empty()) {
      const Cell c = stack_.back();
      stack_.pop_back();
      const Level& lv = levels_[static_cast<std::size_t>(c.level)];
      const int bx0 = c.x << c.level;
      const int by0 = c.y << c.level;
      const int bx1 = std::min(((c.x + 1) << c.level) - 1, nx0_ - 1);
      const int by1 = std::min(((c.y + 1) << c.level) - 1, ny0_ - 1);
      const double d2_lo = grid.TileRangeDistLoSq(tile, bx0, by0, bx1, by1);
      if (d2_lo > far_sq) {
        const auto cnt = static_cast<double>(
            lv.count[static_cast<std::size_t>(c.y) *
                         static_cast<std::size_t>(lv.nx) +
                     static_cast<std::size_t>(c.x)]);
        far_lo += cnt * min_gain_d2(
                            grid.TileRangeDistHiSq(tile, bx0, by0, bx1, by1));
        far_ub = std::max(far_ub, max_gain_d2(d2_lo));
      } else if (c.level == 0) {
        close_out.push_back(by0 * nx0_ + bx0);
      } else {
        PushChildren(c);
      }
    }
    std::sort(close_out.begin() + static_cast<std::ptrdiff_t>(close_begin),
              close_out.end());
  }

  // The subset of `occupied_tx` within far_start of at least one listener
  // tile, ascending — provably the same set protocol.h's flat NearTxTiles
  // derives (the leaf close/far classification above is exact), found in
  // O(|listener_tiles| * log #tiles + |occupied|) instead of the flat
  // product. The distributed session uses this for its per-rank halo cut;
  // the receiving rank still verifies against the flat derivation.
  std::vector<int> NearTiles(const SpatialGrid& grid,
                             std::span<const int> listener_tiles,
                             std::span<const int> occupied_tx,
                             double far_start) const;

  // This round's transmitter count at a leaf tile (0 when unoccupied).
  std::uint32_t LeafCount(int tile) const {
    return levels_.empty() ? 0
                           : levels_[0].count[static_cast<std::size_t>(tile)];
  }

  // Number of levels (0 before Reset; 1 for a single-tile grid).
  std::size_t depth() const { return levels_.size(); }

 private:
  struct Level {
    int nx = 0, ny = 0;
    std::vector<std::uint32_t> count;
    std::vector<std::uint32_t> touched;  // nonzero cells of the last Rebuild
  };
  struct Cell {
    int level;
    int x, y;  // cell coordinates at that level
  };

  void PushChildren(Cell c) const {
    const Level& child = levels_[static_cast<std::size_t>(c.level) - 1];
    const int lo_x = c.x << 1, lo_y = c.y << 1;
    for (int dy = 0; dy < 2; ++dy) {
      const int y = lo_y + dy;
      if (y >= child.ny) continue;
      for (int dx = 0; dx < 2; ++dx) {
        const int x = lo_x + dx;
        if (x >= child.nx) continue;
        if (child.count[static_cast<std::size_t>(y) *
                            static_cast<std::size_t>(child.nx) +
                        static_cast<std::size_t>(x)] == 0) {
          continue;
        }
        stack_.push_back(Cell{c.level - 1, x, y});
      }
    }
  }

  int nx0_ = 0, ny0_ = 0;  // leaf (grid) dimensions
  std::vector<Level> levels_;
  mutable std::vector<Cell> stack_;       // descent scratch
  mutable std::vector<char> near_mark_;   // NearTiles scratch
};

}  // namespace dcc::sinr
