// ScenarioSpec::CanonicalKey — the content address the service caches
// (and `dcc_run --canonical`) rely on. Two properties under test: specs
// spelling the same parameters in any order share one key, and the key
// separates every semantically distinct spec (no collisions across the
// golden set of all registered topology x algorithm pairs).
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dcc/scenario/registry.h"
#include "dcc/scenario/spec.h"

namespace {

using dcc::scenario::ScenarioSpec;

std::string Key(const std::vector<std::string>& args) {
  return ScenarioSpec::FromArgs(args).CanonicalKey();
}

TEST(CanonicalKeyTest, TopologyParamOrderIsIrrelevant) {
  EXPECT_EQ(Key({"--topology=uniform:n=64,side=4"}),
            Key({"--topology=uniform:side=4,n=64"}));
}

TEST(CanonicalKeyTest, AlgoAndDynamicsParamOrderIsIrrelevant) {
  EXPECT_EQ(Key({"--algo=clustering:b=2,a=1"}),
            Key({"--algo=clustering:a=1,b=2"}));
  EXPECT_EQ(Key({"--dynamics=model=waypoint,epochs=4,churn=0.05"}),
            Key({"--dynamics=churn=0.05,model=waypoint,epochs=4"}));
}

TEST(CanonicalKeyTest, FlagOrderIsIrrelevant) {
  EXPECT_EQ(Key({"--topology=uniform:n=64,side=4", "--algo=clustering",
                 "--seeds=3"}),
            Key({"--seeds=3", "--algo=clustering",
                 "--topology=uniform:n=64,side=4"}));
}

TEST(CanonicalKeyTest, DefaultsAreElided) {
  // Spelling a default explicitly and omitting it must address the same
  // content (ToArgs elides defaults).
  EXPECT_EQ(Key({}), Key({"--topology=uniform", "--algo=clustering",
                          "--seeds=1"}));
}

TEST(CanonicalKeyTest, SemanticDifferencesChangeTheKey) {
  const std::string base = Key({"--topology=uniform:n=64,side=4"});
  EXPECT_NE(base, Key({"--topology=uniform:n=65,side=4"}));
  EXPECT_NE(base, Key({"--topology=uniform:n=64,side=4", "--seeds=2"}));
  EXPECT_NE(base, Key({"--topology=uniform:n=64,side=4",
                       "--algo=local_broadcast"}));
  EXPECT_NE(base, Key({"--topology=uniform:n=64,side=4", "--faults=1"}));
  EXPECT_NE(base, Key({"--topology=uniform:n=64,side=4", "--threads=2"}));
  EXPECT_NE(base, Key({"--topology=uniform:n=64,side=4",
                       "--dynamics=model=waypoint"}));
}

TEST(CanonicalKeyTest, GoldenRegistryPairsDoNotCollide) {
  std::set<std::string> keys;
  int pairs = 0;
  for (const auto& [topology, t_help] : dcc::scenario::Topologies().List()) {
    for (const auto& [algo, a_help] : dcc::scenario::Algorithms().List()) {
      ScenarioSpec spec;
      spec.topology = topology;
      spec.algo = algo;
      const auto [it, inserted] = keys.insert(spec.CanonicalKey());
      EXPECT_TRUE(inserted) << "key collision at " << topology << " x "
                            << algo << ": " << *it;
      ++pairs;
    }
  }
  EXPECT_EQ(static_cast<int>(keys.size()), pairs);
  EXPECT_GT(pairs, 0);
}

TEST(CanonicalKeyTest, KeyRoundTripsThroughFromArgs) {
  // The key is itself a valid spec line whose key is itself — canonical
  // means fixed point.
  const std::string key =
      Key({"--topology=uniform:side=4,n=64", "--algo=clustering:b=2,a=1",
           "--seeds=5", "--faults=2"});
  std::vector<std::string> args;
  std::size_t pos = 0;
  while (pos < key.size()) {
    std::size_t end = key.find(' ', pos);
    if (end == std::string::npos) end = key.size();
    if (end > pos) args.push_back(key.substr(pos, end - pos));
    pos = end + 1;
  }
  EXPECT_EQ(Key(args), key);
}

}  // namespace
