# Empty dependencies file for wakeup_leader_test.
# This may be replaced when dependencies are built.
