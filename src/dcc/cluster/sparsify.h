// Sparsification (Alg. 2, Lemmas 8-9) and SparsificationU (Alg. 3).
//
// Sparsification repeatedly builds a proximity graph on the active set,
// picks an independent set Y (clustered sets: local ID minima; unclustered
// sets: a LOCAL-model MIS simulated over schedule replays), links non-Y
// nodes with Y-neighbors to parents, and retires both children and parents
// from the active set. It returns Active ∪ Prnts — a 3/4-density
// sparsification for clustered sets — together with the *exchange stages*
// (schedule + participant snapshots) later replayed for tree communication
// (labeling, cluster inheritance).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "dcc/cluster/profile.h"
#include "dcc/cluster/proximity.h"
#include "dcc/sim/runner.h"

namespace dcc::cluster {

// One proximity-exchange stage: enough to replay the schedule with the
// exact participant snapshot and reproduce every H-edge delivery.
struct ExchangeStage {
  std::shared_ptr<const sim::Schedule> schedule;
  std::vector<sim::Participant> participants;
};

struct ParentLink {
  NodeId parent = kNoNode;
  int stage = -1;  // index into the owning result's `stages`
};

struct SparsifyResult {
  std::vector<std::size_t> returned;  // node indices: Active ∪ Prnts
  std::unordered_map<NodeId, ParentLink> links;  // child id -> link
  std::vector<ExchangeStage> stages;
  Round rounds = 0;
  int iterations_run = 0;
};

// Alg. 2. `active` are node indices; `cluster_of` is indexed by node index
// (ignored when `clustered` is false). `gamma` is the density bound
// driving the iteration count.
SparsifyResult Sparsify(sim::Exec& ex, const Profile& prof,
                        const std::vector<std::size_t>& active,
                        const std::vector<ClusterId>& cluster_of, int gamma,
                        bool clustered, std::uint64_t nonce);

// Alg. 3: l_uncl chained unclustered sparsifications. sets[0] is the input
// set; sets[i] the result of the i-th call. Stage indices in `links` refer
// to the concatenated `stages`.
struct SparsifyChain {
  std::vector<std::vector<std::size_t>> sets;
  std::unordered_map<NodeId, ParentLink> links;
  std::vector<ExchangeStage> stages;
  Round rounds = 0;
};

SparsifyChain SparsifyU(sim::Exec& ex, const Profile& prof,
                        const std::vector<std::size_t>& active, int gamma,
                        std::uint64_t nonce);

}  // namespace dcc::cluster
