// Deterministic pseudo-random primitives.
//
// Two distinct uses, kept separate on purpose:
//  1. `SplitMix64` / `Xoshiro256ss` — sequential generators for *workloads*
//     (node placement, baseline randomized protocols). Seeded per experiment.
//  2. `StatelessHash` — a counter-mode hash used to realize the paper's
//     probabilistic-method selectors (Lemmas 2-3) as deterministic implicit
//     membership predicates: member(round, id, ...) = f(seed, round, id, ...).
//     All nodes evaluate the same pure function, so the resulting protocol
//     is deterministic and requires no shared random source — the fixed seed
//     is part of the algorithm description (see DESIGN.md §4.1).
#pragma once

#include <cstdint>

namespace dcc {

// splitmix64 (Steele, Lea, Flood) — used to seed and as a one-shot mixer.
inline std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Mixes an arbitrary number of 64-bit words into one, stateless.
inline std::uint64_t Mix64(std::uint64_t x) {
  std::uint64_t s = x;
  return SplitMix64(s);
}
inline std::uint64_t HashCombine(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2));
  return SplitMix64(s);
}
inline std::uint64_t HashWords(std::uint64_t a, std::uint64_t b,
                               std::uint64_t c = 0, std::uint64_t d = 0) {
  return HashCombine(HashCombine(a, b), HashCombine(c, d ^ 0xD6E8FEB86659FD93ull));
}

// xoshiro256** 1.0 (Blackman, Vigna) — workload generator.
class Xoshiro256ss {
 public:
  explicit Xoshiro256ss(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = SplitMix64(sm);
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Uniform integer in [0, bound) for bound >= 1 (modulo bias is negligible
  // for our bounds << 2^64; documented tradeoff for speed/simplicity).
  std::uint64_t NextBelow(std::uint64_t bound) { return Next() % bound; }

  // std::uniform_random_bit_generator interface, usable with <random>.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return Next(); }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4] = {};
};

// Stateless keyed hash: Bernoulli(1/denom) coin for a tuple of words.
// Used by the implicit wss/wcss constructions.
class StatelessHash {
 public:
  explicit StatelessHash(std::uint64_t seed) : seed_(seed) {}

  std::uint64_t operator()(std::uint64_t a, std::uint64_t b,
                           std::uint64_t c = 0, std::uint64_t d = 0) const {
    return HashWords(seed_ ^ a, b, c, d);
  }

  // True with probability ~ 1/denom over the hash output.
  bool Coin(std::uint64_t denom, std::uint64_t a, std::uint64_t b,
            std::uint64_t c = 0, std::uint64_t d = 0) const {
    return (*this)(a, b, c, d) % denom == 0;
  }

  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
};

}  // namespace dcc
