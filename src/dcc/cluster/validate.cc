#include "dcc/cluster/validate.h"

#include <algorithm>
#include <unordered_set>

#include "dcc/common/geometry.h"
#include "dcc/obs/trace.h"

namespace dcc::cluster {

ClusteringCheck CheckClustering(const sinr::Network& net,
                                const std::vector<std::size_t>& members,
                                const std::vector<ClusterId>& cluster_of) {
  DCC_TRACE_SPAN("cluster.validate");
  ClusteringCheck chk;
  chk.members = members.size();

  std::unordered_map<ClusterId, std::vector<std::size_t>> by_cluster;
  for (const std::size_t idx : members) {
    const ClusterId phi = cluster_of[idx];
    if (phi == kNoCluster) continue;
    ++chk.assigned;
    by_cluster[phi].push_back(idx);
  }
  chk.num_clusters = static_cast<int>(by_cluster.size());

  std::vector<Vec2> centers;
  for (const auto& [phi, idxs] : by_cluster) {
    chk.max_cluster_size =
        std::max(chk.max_cluster_size, static_cast<int>(idxs.size()));
    if (!net.HasId(phi)) {
      chk.centers_exist = false;
      continue;
    }
    const Vec2 c = net.position(net.IndexOf(phi));
    centers.push_back(c);
    for (const std::size_t idx : idxs) {
      chk.max_radius = std::max(chk.max_radius, Dist(c, net.position(idx)));
    }
  }
  for (std::size_t i = 0; i < centers.size(); ++i) {
    for (std::size_t j = i + 1; j < centers.size(); ++j) {
      chk.min_center_sep =
          std::min(chk.min_center_sep, Dist(centers[i], centers[j]));
    }
  }

  // Clusters per unit ball, balls centered at members.
  for (const std::size_t u : members) {
    std::unordered_set<ClusterId> seen;
    for (const std::size_t v : members) {
      if (cluster_of[v] == kNoCluster) continue;
      if (Dist(net.position(u), net.position(v)) <= 1.0 + 1e-12) {
        seen.insert(cluster_of[v]);
      }
    }
    chk.max_clusters_per_unit_ball =
        std::max(chk.max_clusters_per_unit_ball, static_cast<int>(seen.size()));
  }
  return chk;
}

std::vector<std::pair<std::size_t, std::size_t>> FindClosePairs(
    const sinr::Network& net, const std::vector<std::size_t>& members,
    const std::vector<ClusterId>& cluster_of, int gamma, double r) {
  const double d_bound = CloseDistanceBound(gamma, r);
  const double comm = 1.0 - net.params().eps;
  std::vector<std::pair<std::size_t, std::size_t>> out;

  std::unordered_map<ClusterId, std::vector<std::size_t>> by_cluster;
  for (const std::size_t idx : members) by_cluster[cluster_of[idx]].push_back(idx);

  for (const auto& [phi, idxs] : by_cluster) {
    for (std::size_t a = 0; a < idxs.size(); ++a) {
      for (std::size_t b = a + 1; b < idxs.size(); ++b) {
        const std::size_t u = idxs[a], w = idxs[b];
        const double d = net.Distance(u, w);
        // (b) d = zeta * d_bound <= 1 - eps for zeta in (0, 1].
        if (d > d_bound + 1e-12 || d > comm + 1e-12) continue;
        const double zeta = d / d_bound;
        // (c) u and w are mutually nearest within the cluster.
        bool nearest = true;
        for (const std::size_t x : idxs) {
          if (x == u || x == w) continue;
          if (net.Distance(u, x) < d - 1e-12 ||
              net.Distance(w, x) < d - 1e-12) {
            nearest = false;
            break;
          }
        }
        if (!nearest) continue;
        // (d) pairwise distances inside B(u, zeta) ∪ B(w, zeta) are >= d/2.
        std::vector<std::size_t> nearby;
        for (const std::size_t x : idxs) {
          if (net.Distance(u, x) <= zeta + 1e-12 ||
              net.Distance(w, x) <= zeta + 1e-12) {
            nearby.push_back(x);
          }
        }
        bool spaced = true;
        for (std::size_t i = 0; i < nearby.size() && spaced; ++i) {
          for (std::size_t j = i + 1; j < nearby.size(); ++j) {
            if (net.Distance(nearby[i], nearby[j]) < d / 2.0 - 1e-12) {
              spaced = false;
              break;
            }
          }
        }
        if (spaced) out.emplace_back(u, w);
      }
    }
  }
  return out;
}

int SubsetDensity(const sinr::Network& net,
                  const std::vector<std::size_t>& members) {
  std::vector<Vec2> pts;
  pts.reserve(members.size());
  for (const std::size_t idx : members) pts.push_back(net.position(idx));
  return UnitBallDensity(pts, 1.0);
}

int MaxClusterSize(const sinr::Network& net,
                   const std::vector<std::size_t>& members,
                   const std::vector<ClusterId>& cluster_of) {
  (void)net;
  std::unordered_map<ClusterId, int> count;
  int best = 0;
  for (const std::size_t idx : members) {
    if (cluster_of[idx] == kNoCluster) continue;
    best = std::max(best, ++count[cluster_of[idx]]);
  }
  return best;
}

LabelingCheck CheckLabeling(const sinr::Network& net,
                            const std::vector<std::size_t>& members,
                            const std::vector<ClusterId>& cluster_of,
                            const std::unordered_map<NodeId, int>& labels) {
  LabelingCheck chk;
  std::unordered_map<std::int64_t, int> mult;  // (cluster, label) -> count
  for (const std::size_t idx : members) {
    const auto it = labels.find(net.id(idx));
    if (it == labels.end()) {
      chk.all_labeled = false;
      continue;
    }
    chk.max_label = std::max(chk.max_label, it->second);
    const std::int64_t key =
        cluster_of[idx] * 1000003ll + static_cast<std::int64_t>(it->second);
    chk.max_multiplicity = std::max(chk.max_multiplicity, ++mult[key]);
  }
  return chk;
}

}  // namespace dcc::cluster
