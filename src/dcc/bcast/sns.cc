#include "dcc/bcast/sns.h"

namespace dcc::bcast {

Round RunSns(sim::Exec& ex, const cluster::Profile& prof,
             const std::vector<sim::Participant>& parts,
             const std::function<std::optional<sim::Message>(std::size_t)>&
                 make_msg,
             const std::function<void(std::size_t, const sim::Message&)>& hear,
             std::uint64_t nonce) {
  const Round start = ex.rounds();
  const auto sns = prof.MakeSns(ex.net().params().id_space, nonce);
  sim::ExecuteSchedule(
      ex, *sns, parts,
      [&](std::size_t idx, std::int64_t) -> std::optional<sim::Message> {
        auto m = make_msg(idx);
        if (m && m->src == kNoNode) m->src = ex.net().id(idx);
        return m;
      },
      [&](std::size_t listener, const sim::Message& m, std::int64_t) {
        hear(listener, m);
      });
  return ex.rounds() - start;
}

}  // namespace dcc::bcast
