#include "dcc/parallel/worker_pool.h"

#include <atomic>
#include <exception>

namespace dcc::parallel {

namespace {

// Identifies the pool whose job the current thread is running (nullptr
// outside any job). A plain thread_local pointer: a thread runs jobs of at
// most one pool at a time, because nested Run calls go inline.
thread_local const WorkerPool* t_running_pool = nullptr;

}  // namespace

struct WorkerPool::Task {
  const std::function<void(std::size_t)>* fn;
  std::size_t n_jobs;
  std::atomic<std::size_t> next{0};  // job dispenser
  int slots;        // worker participation budget (guarded by pool mu_)
  int active = 0;   // workers currently inside DrainJobs (guarded by mu_)
  std::mutex error_mu;
  std::exception_ptr error;  // first job exception (guarded by error_mu)
};

WorkerPool::WorkerPool(int workers) {
  threads_.reserve(workers > 0 ? static_cast<std::size_t>(workers) : 0);
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

WorkerPool& WorkerPool::Shared() {
  // Leaked on purpose: joining workers from a static destructor while other
  // statics may still Run is a shutdown hazard with zero upside.
  static WorkerPool* pool = new WorkerPool(
      static_cast<int>(std::thread::hardware_concurrency() > 1
                           ? std::thread::hardware_concurrency() - 1
                           : 0));
  return *pool;
}

bool WorkerPool::OnWorkerThread() const { return t_running_pool == this; }

void WorkerPool::DrainJobs(Task& task) {
  for (;;) {
    const std::size_t i = task.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= task.n_jobs) return;
    try {
      (*task.fn)(i);
    } catch (...) {
      // The first error wins; stop dispensing further jobs so the fan-out
      // drains quickly (jobs already running finish normally). The caller
      // reads `error` only after the completion barrier.
      task.next.store(task.n_jobs, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(task.error_mu);
      if (!task.error) task.error = std::current_exception();
    }
  }
}

void WorkerPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  std::uint64_t seen = 0;
  for (;;) {
    work_cv_.wait(lock, [&] {
      return stop_ || (task_ != nullptr && generation_ != seen);
    });
    if (stop_) return;
    seen = generation_;
    Task* task = task_;
    if (task->slots <= 0) continue;  // task fully staffed
    --task->slots;
    ++task->active;
    lock.unlock();
    t_running_pool = this;
    DrainJobs(*task);
    t_running_pool = nullptr;
    lock.lock();
    if (--task->active == 0) done_cv_.notify_all();
  }
}

void WorkerPool::Run(std::size_t n_jobs,
                     const std::function<void(std::size_t)>& fn,
                     int max_workers) {
  if (n_jobs == 0) return;
  const bool inline_only = OnWorkerThread() || threads_.empty() ||
                           n_jobs == 1 || max_workers == 1;
  if (inline_only) {
    for (std::size_t i = 0; i < n_jobs; ++i) fn(i);
    return;
  }

  std::lock_guard<std::mutex> run_lock(run_mu_);
  Task task;
  task.fn = &fn;
  task.n_jobs = n_jobs;
  // The caller occupies one participation slot; workers take the rest, and
  // never more than there are jobs left to hand out.
  int worker_cap = max_workers > 0 ? max_workers - 1
                                   : static_cast<int>(threads_.size());
  if (static_cast<std::size_t>(worker_cap) > n_jobs - 1) {
    worker_cap = static_cast<int>(n_jobs - 1);
  }
  task.slots = worker_cap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    task_ = &task;
    ++generation_;
  }
  work_cv_.notify_all();

  // The caller participates like any worker — including the re-entrancy
  // marker, so a job it runs that fans out again goes inline instead of
  // self-deadlocking on run_mu_.
  t_running_pool = this;
  DrainJobs(task);
  t_running_pool = nullptr;

  // The caller drained the dispenser (next >= n_jobs), so completion is
  // exactly "no worker still inside a job". A worker can only join while
  // task_ is published, and both the join and the un-publish below happen
  // under mu_ — so after this wait no thread can touch `task` again. The
  // same mutex hand-off makes every job's writes visible to the caller.
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return task.active == 0; });
  task_ = nullptr;
  lock.unlock();

  if (task.error) std::rethrow_exception(task.error);
}

}  // namespace dcc::parallel
