#include "dcc/workload/generators.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace dcc::workload {
namespace {

TEST(UniformSquareTest, BoundsAndDeterminism) {
  const auto a = UniformSquare(100, 5.0, 42);
  const auto b = UniformSquare(100, 5.0, 42);
  EXPECT_EQ(a.size(), 100u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
    EXPECT_GE(a[i].x, 0.0);
    EXPECT_LE(a[i].x, 5.0);
    EXPECT_GE(a[i].y, 0.0);
    EXPECT_LE(a[i].y, 5.0);
  }
  const auto c = UniformSquare(100, 5.0, 43);
  EXPECT_NE(a[0], c[0]);
}

TEST(BlobChainTest, BlobsCenteredOnLine) {
  const auto pts = BlobChain(3, 50, 0.3, 5.0, 7);
  ASSERT_EQ(pts.size(), 150u);
  for (int b = 0; b < 3; ++b) {
    double cx = 0;
    for (int i = 0; i < 50; ++i) {
      cx += pts[static_cast<std::size_t>(b * 50 + i)].x;
    }
    cx /= 50;
    EXPECT_NEAR(cx, 5.0 * b, 0.3);
  }
}

TEST(GridTest, ExactPositions) {
  const auto pts = Grid(2, 3, 1.5);
  ASSERT_EQ(pts.size(), 6u);
  EXPECT_EQ(pts[0], (Vec2{0, 0}));
  EXPECT_EQ(pts[5], (Vec2{3.0, 1.5}));
}

TEST(LineTest, PitchRespected) {
  const auto pts = Line(10, 0.7, 3);
  for (int i = 0; i + 1 < 10; ++i) {
    EXPECT_NEAR(pts[static_cast<std::size_t>(i + 1)].x -
                    pts[static_cast<std::size_t>(i)].x,
                0.7, 1e-9);
  }
}

TEST(RingTest, AllOnCircle) {
  const auto pts = Ring(12, 3.0);
  for (const auto& p : pts) {
    EXPECT_NEAR(Dist(p, {0, 0}), 3.0, 1e-9);
  }
}

TEST(ConnectedUniformTest, ProducesConnectedNetwork) {
  const auto params = sinr::Params::Default();
  const auto pts = ConnectedUniform(50, 4.0, params, 11);
  const auto net = sinr::Network::WithSequentialIds(pts, params);
  EXPECT_TRUE(net.Connected());
}

TEST(ConnectedUniformTest, ThrowsWhenImpossible) {
  const auto params = sinr::Params::Default();
  // 3 nodes over a 100x100 field: essentially never connected.
  EXPECT_THROW(ConnectedUniform(3, 100.0, params, 1, 4), InvalidArgument);
}

TEST(MakeNetworkTest, IdsDistinctAndInRange) {
  sinr::Params params = sinr::Params::Default();
  params.id_space = 300;
  const auto pts = UniformSquare(200, 10.0, 5);
  const auto net = MakeNetwork(pts, params, 9);
  std::unordered_set<NodeId> seen;
  for (std::size_t i = 0; i < net.size(); ++i) {
    const NodeId id = net.id(i);
    EXPECT_GE(id, 1);
    EXPECT_LE(id, 300);
    EXPECT_TRUE(seen.insert(id).second);
  }
}

TEST(MakeNetworkTest, SparseRegimeSampling) {
  sinr::Params params = sinr::Params::Default();
  params.id_space = 1 << 20;
  const auto pts = UniformSquare(50, 5.0, 5);
  const auto net = MakeNetwork(pts, params, 9);
  std::unordered_set<NodeId> seen;
  for (std::size_t i = 0; i < net.size(); ++i) {
    EXPECT_TRUE(seen.insert(net.id(i)).second);
  }
}

TEST(CorridorTest, RespectsHoles) {
  const auto pts = Corridor(200, 10.0, 2.0, 3, 1.0, 5);
  EXPECT_EQ(pts.size(), 200u);
  for (const auto& p : pts) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 10.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 2.0);
    // Hole centers at x = 2.5, 5, 7.5, y = 1; side 1.
    for (const double hx : {2.5, 5.0, 7.5}) {
      EXPECT_FALSE(std::abs(p.x - hx) <= 0.5 && std::abs(p.y - 1.0) <= 0.5)
          << "point in hole at " << hx;
    }
  }
}

TEST(CorridorTest, ImpossibleHolesRejected) {
  EXPECT_THROW(Corridor(50, 2.0, 2.0, 1, 10.0, 1), InvalidArgument);
}

TEST(TwoScaleTest, ContrastingDensities) {
  const auto pts = TwoScale(40, 8.0, 2, 30, 0.2, 9);
  EXPECT_EQ(pts.size(), 40u + 60u);
  // The hotspots push unit-ball density far above the sparse backdrop.
  EXPECT_GE(UnitBallDensity(pts), 25);
}

TEST(StarTest, HubPlusArms) {
  const auto pts = Star(4, 5, 0.5);
  EXPECT_EQ(pts.size(), 21u);
  EXPECT_EQ(pts[0], (Vec2{0, 0}));
  // Arm tips at distance per_arm * pitch.
  EXPECT_NEAR(Dist(pts[5], {0, 0}), 2.5, 1e-9);
}

TEST(MakeNetworkTest, TooManyNodesRejected) {
  sinr::Params params = sinr::Params::Default();
  params.id_space = 10;
  const auto pts = UniformSquare(20, 5.0, 5);
  EXPECT_THROW(MakeNetwork(pts, params, 1), InvalidArgument);
}

}  // namespace
}  // namespace dcc::workload
