#include "dcc/sinr/engine.h"

#include <algorithm>

namespace dcc::sinr {

Engine::Engine(const Network& net) : net_(&net) {}

std::vector<Reception> Engine::Step(
    const std::vector<std::size_t>& transmitters,
    const std::vector<std::size_t>& listeners) const {
  ++stats_.rounds;
  stats_.transmissions += static_cast<std::int64_t>(transmitters.size());
  std::vector<Reception> out;
  if (transmitters.empty() || listeners.empty()) return out;

  const Network& net = *net_;
  const double beta = net.params().beta;
  const double noise = net.params().noise;

  for (const std::size_t u : listeners) {
    double total = 0.0;
    double best = -1.0;
    std::size_t best_tx = 0;
    for (const std::size_t v : transmitters) {
      DCC_CHECK(v != u);  // a transmitter cannot listen
      const double g = net.Gain(v, u);
      total += g;
      if (g > best) {
        best = g;
        best_tx = v;
      }
    }
    const double interference = total - best;
    const double sinr = best / (noise + interference);
    if (sinr >= beta) {
      out.push_back(Reception{u, best_tx, sinr});
      ++stats_.receptions;
    }
  }
  return out;
}

double Engine::Sinr(std::size_t v, std::size_t u,
                    const std::vector<std::size_t>& transmitters) const {
  const Network& net = *net_;
  double interference = 0.0;
  bool v_transmits = false;
  for (const std::size_t w : transmitters) {
    if (w == v) {
      v_transmits = true;
      continue;
    }
    interference += net.Gain(w, u);
  }
  DCC_REQUIRE(v_transmits, "Sinr: v must be in the transmitter set");
  return net.Gain(v, u) / (net.params().noise + interference);
}

double Engine::InterferenceAt(
    std::size_t u, const std::vector<std::size_t>& transmitters) const {
  double total = 0.0;
  for (const std::size_t w : transmitters) {
    if (w != u) total += net_->Gain(w, u);
  }
  return total;
}

}  // namespace dcc::sinr
