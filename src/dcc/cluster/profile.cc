#include "dcc/cluster/profile.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dcc/common/geometry.h"
#include "dcc/common/rng.h"
#include "dcc/sel/ssf.h"

namespace dcc::cluster {

Profile Profile::Practical(std::int64_t id_space) {
  Profile p;
  (void)id_space;  // lengths are computed lazily from N at factory time
  return p;        // defaults in the header are the calibrated values
}

Profile Profile::Theory(const sinr::Params& params, std::int64_t id_space) {
  (void)id_space;
  Profile p;
  const double alpha = params.alpha;
  const double beta = params.beta;
  const double eps = params.eps;

  // Lemma 5: a close pair (u,v) at distance d succeeds when no node among
  // the kappa closest transmits. Using Proposition 1 with ring constant
  // 8*pi, delta = chi(d, d/2) <= 25, the far-field cutoff x must satisfy
  //   8*pi*delta/(alpha-2) * x^{2-alpha} <= 2^{-alpha} / (4*beta),
  // and kappa = chi(x*d, d/2) <= (1 + 4x)^2.
  const double delta = 25.0;
  const double rhs = std::pow(2.0, -alpha) / (4.0 * beta);
  const double x =
      std::ceil(std::pow(8.0 * 3.14159265358979 * delta / ((alpha - 2.0) * rhs),
                         1.0 / (alpha - 2.0)));
  const double kappa_exact = std::pow(1.0 + 4.0 * x, 2.0);
  p.kappa = kappa_exact >= static_cast<double>(std::numeric_limits<int>::max())
                ? std::numeric_limits<int>::max()
                : static_cast<int>(kappa_exact);

  // Lemma 6: clusters with nodes inside B(center, 2r) conflict; their count
  // is bounded by the packing of centers at pairwise distance >= 1-eps.
  p.rho = ChiUpperBound(2.0 * 2.0 /*r=2*/, 1.0 - eps);

  // Lemma 4: SNS must select each node among all nodes within the far-field
  // cutoff, k_gamma = gamma * chi(x, 1) with gamma the density bound.
  const int gamma = 3;
  p.sns_k = gamma * ChiUpperBound(x, 1.0);
  p.sns_use_prime_ssf = true;

  // Full-length selectors (Lemmas 2-3 union bounds): c covers the e^2-ish
  // slack of the probabilistic argument.
  p.wss_c = 3.0 * std::exp(2.0);
  p.wcss_c = 3.0 * std::exp(2.0);
  p.wss_len = 0;
  p.wcss_len = 0;

  p.l_uncl = ChiUpperBound(5.0, 1.0 - eps);
  p.rr_iters = ChiUpperBound(3.0 /*r+1 for r=2*/, 1.0 - eps);
  p.use_linial_mis = true;
  p.mis_rounds = 0;  // unused with the Linial pipeline
  p.label_reps = p.kappa;
  p.early_stop = false;
  return p;
}

std::int64_t Profile::WssLen(std::int64_t N) const {
  if (wss_len > 0) return wss_len;
  const double lnN = std::log(static_cast<double>(std::max<std::int64_t>(N, 2)));
  const double k = kappa;
  return std::max<std::int64_t>(
      64, static_cast<std::int64_t>(std::ceil(wss_c * k * k * (k + 2.0) * lnN)));
}

std::int64_t Profile::WcssLen(std::int64_t N) const {
  if (wcss_len > 0) return wcss_len;
  const double lnN = std::log(static_cast<double>(std::max<std::int64_t>(N, 2)));
  const double k = kappa, l = rho;
  return std::max<std::int64_t>(
      64,
      static_cast<std::int64_t>(std::ceil(wcss_c * (k + l) * l * k * k * lnN)));
}

std::int64_t Profile::SnsLen(std::int64_t N) const {
  if (sns_len > 0) return sns_len;
  const double lnN = std::log(static_cast<double>(std::max<std::int64_t>(N, 2)));
  const double k = sns_k;
  return std::max<std::int64_t>(
      64, static_cast<std::int64_t>(std::ceil(sns_c * k * k * lnN)));
}

std::shared_ptr<sim::Schedule> Profile::MakeWss(std::int64_t N,
                                                std::uint64_t nonce) const {
  return std::make_shared<sim::WssSchedule>(
      sel::Wss::WithLength(N, kappa, WssLen(N), HashCombine(seed, nonce)));
}

std::shared_ptr<sim::Schedule> Profile::MakeWcss(std::int64_t N,
                                                 std::uint64_t nonce) const {
  return std::make_shared<sim::WcssSchedule>(sel::Wcss::WithLength(
      N, kappa, rho, WcssLen(N), HashCombine(seed, nonce ^ 0xABCDEF12345ull)));
}

std::shared_ptr<sim::Schedule> Profile::MakeSns(std::int64_t N,
                                                std::uint64_t nonce) const {
  if (sns_use_prime_ssf) {
    return std::make_shared<sim::SsfSchedule>(sel::Ssf::Construct(N, sns_k));
  }
  // Seeded variant: per-round inclusion with probability 1/sns_k, which is
  // the probabilistic-method ssf; same determinism argument as the wss.
  return std::make_shared<sim::WssSchedule>(sel::Wss::WithLength(
      N, sns_k, SnsLen(N), HashCombine(seed, nonce ^ 0x5115511551155ull)));
}

}  // namespace dcc::cluster
