// Lower-bound constructions (Section 6, Theorem 6, Figs. 5-7).
//
// A *gadget* is Delta+4 collinear nodes s, v_0..v_{Delta+1}, t with
// geometrically growing gaps inside the core: d(v_i, v_{i+1}) =
// span * q^{-(Delta-i)}-shaped, so that (Fact 2):
//   (1) two core transmitters v_i, v_j (i<j) jam every listener beyond j;
//   (2) t hears only v_{Delta+1}, and only when it transmits alone.
//
// Two deliberate deviations from the paper's figures, both documented in
// DESIGN.md:
//  * the paper draws gap ratio q = 2 and asserts Fact 2 "for eps small
//    enough"; the ratio is eps-independent, and blocking at ratio q needs
//    beta > (q/(q-1))^alpha (worst interferer: v_0), so we expose q and
//    default experiments to beta chosen to satisfy it (GadgetParams).
//  * we place v_0 at distance eps from s (the paper's figure suggests
//    1 - eps) so that s's wake-up of the core, like the core-internal
//    traffic, tolerates the Theta(eps^{-alpha}) external-interference
//    budget nu of Lemma 13 — at distance ~1 the wake budget would be ~0
//    and no buffer path could protect it.
//
// Gap ratios burn one factor q of double precision per core node, capping
// Delta around 40 at q = 2 — ample for the scaling experiments.
#pragma once

#include <cstdint>
#include <vector>

#include "dcc/common/geometry.h"
#include "dcc/sinr/params.h"

namespace dcc::lowerbound {

struct Gadget {
  std::vector<Vec2> positions;  // [s, v_0, ..., v_{Delta+1}, t]
  std::size_t s = 0;
  std::size_t t = 0;
  std::vector<std::size_t> core;  // v_0..v_{Delta+1}
  int delta = 0;
};

// Core span is ~3*eps as in the paper (Fig. 6). `q` is the gap ratio.
Gadget MakeGadget(int delta, const sinr::Params& params, double q = 2.0);

// SINR parameters under which Fact 2 holds at gap ratio q: beta is set just
// above ((q+1)/q)^alpha (with margin), power re-normalized to range 1.
sinr::Params GadgetParams(double alpha, double eps, double q = 2.0);

struct GadgetChain {
  std::vector<Vec2> positions;
  std::size_t s = 0;              // source (s of the first gadget)
  std::size_t t = 0;              // target (t of the last gadget)
  std::vector<Gadget> gadgets;    // index ranges refer to `positions`
  std::vector<std::size_t> buffer_nodes;
  int delta = 0;
  int num_gadgets = 0;
};

// Fig. 7: m gadgets separated by buffer paths of ceil(Delta^{1/alpha}/(1-eps))
// nodes spaced 1-eps apart. The i-th gadget's source s is the last buffer
// node before it (the paper identifies them logically; we keep one node).
GadgetChain MakeGadgetChain(int num_gadgets, int delta,
                            const sinr::Params& params, double q = 2.0);

}  // namespace dcc::lowerbound
