// Clustering (Alg. 6, Theorem 1): builds a 1-clustering of an *unclustered*
// set in O(Gamma log N log* N) rounds.
//
// Phase 1 (thinning): k = ceil(log_{4/3} Gamma) rounds of unclustered
// sparsification chains (Alg. 3) with geometrically decaying density bound,
// recording every level's parent links and exchange stages.
//
// Phase 2 (re-clustering): the final sparse core self-clusters (cluster id
// = own id); levels are then replayed bottom-up — children inherit their
// parent's cluster id (giving a 2-clustering of the level), and
// RadiusReduction rebuilds a 1-clustering before the next level joins.
//
// Postconditions (validated geometrically in tests): every member is
// assigned; each cluster fits in a unit ball around its center; centers are
// pairwise > 1 - eps apart; every unit ball meets O(1) clusters.
#pragma once

#include <cstdint>
#include <vector>

#include "dcc/cluster/profile.h"
#include "dcc/sim/runner.h"

namespace dcc::cluster {

struct ClusteringResult {
  // Indexed by node index; kNoCluster for non-members (and for members the
  // pipeline failed to assign, counted in `unassigned` — zero under a
  // sufficient profile).
  std::vector<ClusterId> cluster_of;
  std::size_t unassigned = 0;
  Round rounds = 0;
  int levels = 0;  // sparsification levels executed
};

ClusteringResult BuildClustering(sim::Exec& ex, const Profile& prof,
                                 const std::vector<std::size_t>& members,
                                 int gamma, std::uint64_t nonce);

}  // namespace dcc::cluster
