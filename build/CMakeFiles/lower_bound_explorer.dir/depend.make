# Empty dependencies file for lower_bound_explorer.
# This may be replaced when dependencies are built.
