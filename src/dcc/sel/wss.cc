#include "dcc/sel/wss.h"

#include <algorithm>
#include <cmath>
#include <functional>

namespace dcc::sel {

Wss Wss::Construct(std::int64_t N, int k, double c, std::uint64_t seed) {
  DCC_REQUIRE(N >= 1 && k >= 1, "Wss: N >= 1, k >= 1");
  DCC_REQUIRE(c > 0, "Wss: c > 0");
  const double lnN = std::log(static_cast<double>(std::max<std::int64_t>(N, 2)));
  const double len = c * static_cast<double>(k) * static_cast<double>(k) *
                     (static_cast<double>(k) + 2.0) * lnN;
  return Wss(N, k, static_cast<std::int64_t>(std::ceil(len)), seed);
}

Wss Wss::WithLength(std::int64_t N, int k, std::int64_t m, std::uint64_t seed) {
  DCC_REQUIRE(N >= 1 && k >= 1 && m >= 1, "Wss: bad arguments");
  return Wss(N, k, m, seed);
}

namespace {

// Enumerates all k-subsets of [N] as bitmasks.
void ForAllSubsets(int n, int k, const std::function<void(std::uint32_t)>& fn) {
  // Gosper's hack over n-bit masks with popcount k.
  if (k > n) return;
  std::uint32_t v = (1u << k) - 1;
  const std::uint32_t limit = 1u << n;
  while (v < limit) {
    fn(v);
    const std::uint32_t t = v | (v - 1);
    v = (t + 1) | (((~t & (t + 1)) - 1) >> (__builtin_ctz(v) + 1));
    if (v == 0) break;
  }
}

}  // namespace

GreedyWss GreedyWss::Construct(std::int64_t N, int k) {
  DCC_REQUIRE(N >= 2 && N <= 20, "GreedyWss: N in [2, 20]");
  DCC_REQUIRE(k >= 1 && k < N, "GreedyWss: 1 <= k < N");
  const int n = static_cast<int>(N);

  // Constraint list: (X mask, x bit, y bit).
  struct Constraint {
    std::uint32_t X;
    std::uint32_t x;
    std::uint32_t y;
  };
  std::vector<Constraint> cons;
  ForAllSubsets(n, k, [&](std::uint32_t X) {
    for (int xi = 0; xi < n; ++xi) {
      const std::uint32_t xbit = 1u << xi;
      if (!(X & xbit)) continue;
      for (int yi = 0; yi < n; ++yi) {
        const std::uint32_t ybit = 1u << yi;
        if (X & ybit) continue;
        cons.push_back({X, xbit, ybit});
      }
    }
  });

  std::vector<bool> covered(cons.size(), false);
  std::size_t remaining = cons.size();
  GreedyWss out;
  const std::uint32_t all = (n == 32) ? ~0u : ((1u << n) - 1);
  while (remaining > 0) {
    std::uint32_t best_set = 0;
    std::size_t best_cover = 0;
    for (std::uint32_t S = 1; S <= all; ++S) {
      std::size_t cover = 0;
      for (std::size_t ci = 0; ci < cons.size(); ++ci) {
        if (covered[ci]) continue;
        const auto& c = cons[ci];
        if ((S & c.X) == c.x && (S & c.y)) ++cover;
      }
      if (cover > best_cover) {
        best_cover = cover;
        best_set = S;
      }
    }
    DCC_CHECK(best_cover > 0);  // the full constraint set is always coverable
    out.sets_.push_back(best_set);
    for (std::size_t ci = 0; ci < cons.size(); ++ci) {
      if (covered[ci]) continue;
      const auto& c = cons[ci];
      if ((best_set & c.X) == c.x && (best_set & c.y)) {
        covered[ci] = true;
        --remaining;
      }
    }
  }
  return out;
}

}  // namespace dcc::sel
