#include "dcc/workload/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>

#include "dcc/common/rng.h"

namespace dcc::workload {

std::vector<Vec2> UniformSquare(int n, double side, std::uint64_t seed) {
  DCC_REQUIRE(n >= 0 && side > 0, "UniformSquare: bad arguments");
  Xoshiro256ss rng(seed);
  std::vector<Vec2> pts(static_cast<std::size_t>(n));
  for (auto& p : pts) p = {rng.NextDouble() * side, rng.NextDouble() * side};
  return pts;
}

std::vector<Vec2> BlobChain(int blobs, int per_blob, double sigma,
                            double spacing, std::uint64_t seed) {
  DCC_REQUIRE(blobs >= 1 && per_blob >= 1, "BlobChain: bad arguments");
  Xoshiro256ss rng(seed);
  std::normal_distribution<double> gauss(0.0, sigma);
  std::vector<Vec2> pts;
  pts.reserve(static_cast<std::size_t>(blobs) * per_blob);
  for (int b = 0; b < blobs; ++b) {
    const Vec2 center{spacing * b, 0.0};
    for (int i = 0; i < per_blob; ++i) {
      pts.push_back({center.x + gauss(rng), center.y + gauss(rng)});
    }
  }
  return pts;
}

std::vector<Vec2> Grid(int rows, int cols, double pitch) {
  DCC_REQUIRE(rows >= 1 && cols >= 1 && pitch > 0, "Grid: bad arguments");
  std::vector<Vec2> pts;
  pts.reserve(static_cast<std::size_t>(rows) * cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      pts.push_back({c * pitch, r * pitch});
    }
  }
  return pts;
}

std::vector<Vec2> Line(int n, double pitch, std::uint64_t seed) {
  DCC_REQUIRE(n >= 1 && pitch > 0, "Line: bad arguments");
  Xoshiro256ss rng(seed);
  std::vector<Vec2> pts(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pts[static_cast<std::size_t>(i)] = {i * pitch,
                                        (rng.NextDouble() - 0.5) * 1e-3};
  }
  return pts;
}

std::vector<Vec2> Ring(int n, double radius) {
  DCC_REQUIRE(n >= 1 && radius > 0, "Ring: bad arguments");
  std::vector<Vec2> pts(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double a = 2.0 * 3.14159265358979 * i / n;
    pts[static_cast<std::size_t>(i)] = {radius * std::cos(a),
                                        radius * std::sin(a)};
  }
  return pts;
}

std::vector<Vec2> ConnectedUniform(int n, double side, sinr::Params params,
                                   std::uint64_t seed, int max_tries) {
  for (int t = 0; t < max_tries; ++t) {
    auto pts = UniformSquare(n, side, seed + static_cast<std::uint64_t>(t));
    sinr::Network net = sinr::Network::WithSequentialIds(pts, params);
    if (net.Connected()) return pts;
  }
  throw InvalidArgument(
      "ConnectedUniform: could not generate a connected network; "
      "increase n or shrink the side length");
}

std::vector<Vec2> Corridor(int n, double length, double width, int holes,
                           double hole_side, std::uint64_t seed) {
  DCC_REQUIRE(n >= 0 && length > 0 && width > 0, "Corridor: bad dimensions");
  DCC_REQUIRE(holes >= 0 && hole_side >= 0, "Corridor: bad holes");
  Xoshiro256ss rng(seed);
  // Hole centers evenly spaced along the corridor midline.
  std::vector<Vec2> centers;
  for (int h = 0; h < holes; ++h) {
    centers.push_back({length * (h + 1) / (holes + 1), width / 2});
  }
  const auto blocked = [&](Vec2 p) {
    for (const Vec2& c : centers) {
      if (std::abs(p.x - c.x) <= hole_side / 2 &&
          std::abs(p.y - c.y) <= hole_side / 2) {
        return true;
      }
    }
    return false;
  };
  std::vector<Vec2> pts;
  pts.reserve(static_cast<std::size_t>(n));
  int guard = 0;
  while (static_cast<int>(pts.size()) < n) {
    const Vec2 p{rng.NextDouble() * length, rng.NextDouble() * width};
    if (!blocked(p)) pts.push_back(p);
    DCC_REQUIRE(++guard < 1000 * (n + 1),
                "Corridor: holes cover too much of the corridor");
  }
  return pts;
}

std::vector<Vec2> TwoScale(int n_sparse, double side, int hotspots,
                           int n_dense, double sigma, std::uint64_t seed) {
  DCC_REQUIRE(n_sparse >= 0 && hotspots >= 0 && n_dense >= 0,
              "TwoScale: bad counts");
  Xoshiro256ss rng(seed);
  std::normal_distribution<double> gauss(0.0, sigma);
  std::vector<Vec2> pts = UniformSquare(n_sparse, side, seed ^ 0xABCDu);
  for (int h = 0; h < hotspots; ++h) {
    const Vec2 c{rng.NextDouble() * side, rng.NextDouble() * side};
    for (int i = 0; i < n_dense; ++i) {
      pts.push_back({c.x + gauss(rng), c.y + gauss(rng)});
    }
  }
  return pts;
}

std::vector<Vec2> Star(int arms, int per_arm, double pitch) {
  DCC_REQUIRE(arms >= 1 && per_arm >= 0 && pitch > 0, "Star: bad arguments");
  std::vector<Vec2> pts{{0.0, 0.0}};  // hub
  for (int a = 0; a < arms; ++a) {
    const double ang = 2.0 * 3.14159265358979 * a / arms;
    for (int i = 1; i <= per_arm; ++i) {
      pts.push_back({i * pitch * std::cos(ang), i * pitch * std::sin(ang)});
    }
  }
  return pts;
}

sinr::Network MakeNetwork(std::vector<Vec2> pts, sinr::Params params,
                          std::uint64_t id_seed, sinr::Shadowing shadowing) {
  DCC_REQUIRE(static_cast<std::int64_t>(pts.size()) <= params.id_space,
              "MakeNetwork: more nodes than ids");
  // Sample a random injection [n] -> [1, id_space].
  Xoshiro256ss rng(id_seed);
  std::vector<NodeId> ids;
  if (static_cast<std::int64_t>(pts.size()) * 4 >= params.id_space) {
    // Dense regime: permute [1, id_space] and take a prefix.
    std::vector<NodeId> all(static_cast<std::size_t>(params.id_space));
    std::iota(all.begin(), all.end(), NodeId{1});
    std::shuffle(all.begin(), all.end(), rng);
    ids.assign(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(pts.size()));
  } else {
    // Sparse regime: rejection-sample distinct ids.
    std::vector<char> used(static_cast<std::size_t>(params.id_space) + 1, 0);
    while (ids.size() < pts.size()) {
      const NodeId id = static_cast<NodeId>(
                            rng.NextBelow(static_cast<std::uint64_t>(
                                params.id_space))) + 1;
      if (!used[static_cast<std::size_t>(id)]) {
        used[static_cast<std::size_t>(id)] = 1;
        ids.push_back(id);
      }
    }
  }
  return sinr::Network(std::move(pts), std::move(ids), params, shadowing);
}

}  // namespace dcc::workload
