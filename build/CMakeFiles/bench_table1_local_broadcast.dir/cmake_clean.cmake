file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_local_broadcast.dir/bench/bench_table1_local_broadcast.cc.o"
  "CMakeFiles/bench_table1_local_broadcast.dir/bench/bench_table1_local_broadcast.cc.o.d"
  "bench_table1_local_broadcast"
  "bench_table1_local_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_local_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
