#include "dcc/scenario/registry.h"

namespace dcc::scenario {

// Defined in topologies.cc / algorithms.cc.
void RegisterBuiltinTopologies(TopologyRegistry& reg);
void RegisterBuiltinAlgorithms(AlgorithmRegistry& reg);

TopologyRegistry& Topologies() {
  static TopologyRegistry* reg = [] {
    auto* r = new TopologyRegistry("topology");
    RegisterBuiltinTopologies(*r);
    return r;
  }();
  return *reg;
}

AlgorithmRegistry& Algorithms() {
  static AlgorithmRegistry* reg = [] {
    auto* r = new AlgorithmRegistry("algorithm");
    RegisterBuiltinAlgorithms(*r);
    return r;
  }();
  return *reg;
}

}  // namespace dcc::scenario
