// The service load generator: N client connections replaying a workload
// of (spec, seed) pairs against a running dccd, used by the `dcc_load`
// tool and `bench_service_load`. Beyond throughput it checks the
// service's core promise while driving it: every response for the same
// (spec, seed) must carry byte-identical report bytes, whatever cache
// path served it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dcc::service {

struct LoadSpec {
  std::string socket_path;
  // The workload alphabet: requests cycle through spec_lines x seeds in
  // round-robin order, interleaved across connections so concurrent
  // same-key traffic actually happens.
  std::vector<std::string> spec_lines;
  std::vector<std::uint64_t> seeds = {1};
  int connections = 4;
  int requests = 256;  // total across all connections
};

struct LoadResult {
  std::int64_t requests = 0;
  std::int64_t errors = 0;        // responses with ok = false
  std::int64_t result_cached = 0;
  std::int64_t topology_cached = 0;
  std::int64_t uncached = 0;
  double wall_ms = 0.0;
  double ms_per_request = 0.0;    // wall_ms * connections / requests
  double rps = 0.0;
  // Client-side per-request latency percentiles (each connection stamps
  // around its own Call; interpolated from a power-of-two histogram).
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  bool reports_consistent = true;  // byte-identity held for every pair
  std::string first_error;         // first ok=false message, for diagnostics
};

// Runs the workload; throws on connection/protocol failures (a daemon
// that answers ok=false is a counted error, not a throw).
LoadResult RunLoad(const LoadSpec& spec);

}  // namespace dcc::service
