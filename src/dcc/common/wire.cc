#include "dcc/common/wire.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>

namespace dcc::wire {

namespace {

// Reads exactly `len` bytes. Returns false on EOF before the first byte
// when `eof_ok`; throws on every other short read.
bool ReadAll(int fd, char* buf, std::size_t len, bool eof_ok) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t r = ::read(fd, buf + got, len - got);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) {
      if (got == 0 && eof_ok) return false;
      throw WireError("wire: connection closed mid-frame");
    }
    if (errno == EINTR) continue;
    throw WireError(std::string("wire: read failed: ") + std::strerror(errno));
  }
  return true;
}

void WriteAll(int fd, const char* buf, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t w = ::send(fd, buf + sent, len - sent, MSG_NOSIGNAL);
    if (w >= 0) {
      sent += static_cast<std::size_t>(w);
      continue;
    }
    if (errno == EINTR) continue;
    throw WireError(std::string("wire: write failed: ") + std::strerror(errno));
  }
}

}  // namespace

bool ReadFrame(int fd, std::string* payload) {
  unsigned char hdr[4];
  if (!ReadAll(fd, reinterpret_cast<char*>(hdr), sizeof hdr,
               /*eof_ok=*/true)) {
    return false;
  }
  const std::uint32_t len = (static_cast<std::uint32_t>(hdr[0]) << 24) |
                            (static_cast<std::uint32_t>(hdr[1]) << 16) |
                            (static_cast<std::uint32_t>(hdr[2]) << 8) |
                            static_cast<std::uint32_t>(hdr[3]);
  if (len > kMaxFrameBytes) {
    throw WireError("wire: frame length " + std::to_string(len) +
                    " exceeds the " + std::to_string(kMaxFrameBytes) +
                    " byte cap");
  }
  payload->resize(len);
  ReadAll(fd, payload->data(), len, /*eof_ok=*/false);
  return true;
}

void WriteFrame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) {
    throw WireError("wire: refusing to send a frame of " +
                    std::to_string(payload.size()) + " bytes");
  }
  const auto len = static_cast<std::uint32_t>(payload.size());
  const unsigned char hdr[4] = {static_cast<unsigned char>(len >> 24),
                                static_cast<unsigned char>(len >> 16),
                                static_cast<unsigned char>(len >> 8),
                                static_cast<unsigned char>(len)};
  WriteAll(fd, reinterpret_cast<const char*>(hdr), sizeof hdr);
  WriteAll(fd, payload.data(), payload.size());
}

void PayloadWriter::Str(std::string_view s) {
  if (s.size() > kMaxFrameBytes) {
    throw WireError("wire: payload string of " + std::to_string(s.size()) +
                    " bytes exceeds the frame cap");
  }
  U32(static_cast<std::uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
}

void PayloadWriter::Bytes(const void* data, std::size_t len) {
  buf_.append(static_cast<const char*>(data), len);
}

void PayloadReader::Need(std::size_t n) const {
  if (buf_.size() - pos_ < n) {
    throw WireError("wire: payload truncated: need " + std::to_string(n) +
                    " bytes at offset " + std::to_string(pos_) + " of " +
                    std::to_string(buf_.size()));
  }
}

std::uint32_t PayloadReader::U32() {
  Need(4);
  const auto* p = reinterpret_cast<const unsigned char*>(buf_.data() + pos_);
  pos_ += 4;
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

std::uint64_t PayloadReader::U64() {
  const std::uint64_t hi = U32();
  return (hi << 32) | U32();
}

std::string PayloadReader::Str() {
  const std::uint32_t len = U32();
  Need(len);
  std::string out(buf_.substr(pos_, len));
  pos_ += len;
  return out;
}

void PayloadReader::ExpectEnd() const {
  if (!AtEnd()) {
    throw WireError("wire: " + std::to_string(remaining()) +
                    " trailing payload bytes");
  }
}

}  // namespace dcc::wire
