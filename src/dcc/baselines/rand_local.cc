#include "dcc/baselines/rand_local.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "dcc/common/rng.h"

namespace dcc::baselines {

namespace {

constexpr std::int32_t kPayloadMsg = 301;

// Shared driver: runs `rounds` rounds at transmit probability `p(round)`,
// tracking cumulative neighbor coverage through the observer.
RandLocalResult Drive(sim::Exec& ex, const std::vector<std::size_t>& members,
                      Round budget,
                      const std::function<double(Round)>& prob,
                      std::uint64_t seed) {
  const sinr::Network& net = ex.net();
  RandLocalResult res;
  res.members = members.size();
  res.rounds_budget = budget;

  const auto& comm = net.CommGraph();
  std::vector<std::unordered_set<std::size_t>> covered(net.size());
  std::vector<char> done(net.size(), 0);
  std::size_t remaining = 0;
  for (const std::size_t v : members) {
    if (comm[v].empty()) {
      done[v] = 1;  // no neighbors: vacuously covered
    } else {
      ++remaining;
    }
  }

  Xoshiro256ss rng(seed);
  const Round start = ex.rounds();
  ex.SetObserver([&](Round, const std::vector<std::size_t>&,
                     const std::vector<sinr::Reception>& recs) {
    for (const auto& r : recs) {
      if (done[r.sender]) continue;
      covered[r.sender].insert(r.listener);
      if (covered[r.sender].size() >= comm[r.sender].size()) {
        // check actual neighbor containment
        bool all = true;
        for (const std::size_t w : comm[r.sender]) {
          if (!covered[r.sender].count(w)) {
            all = false;
            break;
          }
        }
        if (all) {
          done[r.sender] = 1;
          --remaining;
          res.rounds_to_cover = ex.rounds() - start;
        }
      }
    }
  });

  for (Round t = 0; t < budget; ++t) {
    const double p = prob(t);
    ex.RunRound(
        members,
        [&](std::size_t) -> std::optional<sim::Message> {
          if (rng.NextDouble() >= p) return std::nullopt;
          sim::Message m;
          m.kind = kPayloadMsg;
          return m;
        },
        [](std::size_t, const sim::Message&) {});
    if (remaining == 0) break;
  }
  ex.SetObserver(nullptr);

  for (const std::size_t v : members) {
    if (done[v]) ++res.covered_nodes;
  }
  res.covered = res.covered_nodes == res.members;
  if (!res.covered) res.rounds_to_cover = ex.rounds() - start;
  return res;
}

}  // namespace

RandLocalResult RandLocalBroadcastKnown(sim::Exec& ex,
                                        const std::vector<std::size_t>& members,
                                        int delta, double c_prob,
                                        double c_len, std::uint64_t seed) {
  DCC_REQUIRE(delta >= 1, "RandLocalBroadcastKnown: delta >= 1");
  const double n = static_cast<double>(std::max<std::size_t>(members.size(), 2));
  const double p = std::min(1.0, c_prob / static_cast<double>(delta));
  const Round budget = static_cast<Round>(
      std::ceil(c_len * static_cast<double>(delta) * std::log2(n)));
  return Drive(ex, members, budget, [p](Round) { return p; }, seed);
}

RandLocalResult RandLocalBroadcastUnknown(
    sim::Exec& ex, const std::vector<std::size_t>& members, int max_delta,
    double c_prob, double c_len, std::uint64_t seed) {
  const double n = static_cast<double>(std::max<std::size_t>(members.size(), 2));
  // Epoch e guesses Delta_e = 2^e; total budget ~ sum_e c*2^e*log n.
  std::vector<std::pair<Round, double>> epochs;  // (length, probability)
  Round budget = 0;
  for (int e = 1; (1 << e) <= 2 * max_delta; ++e) {
    const double guess = static_cast<double>(1 << e);
    const Round len =
        static_cast<Round>(std::ceil(c_len * guess * std::log2(n)));
    epochs.emplace_back(len, std::min(1.0, c_prob / guess));
    budget += len;
  }
  auto prob = [epochs](Round t) {
    Round acc = 0;
    for (const auto& [len, p] : epochs) {
      acc += len;
      if (t < acc) return p;
    }
    return epochs.back().second;
  };
  return Drive(ex, members, budget, prob, seed);
}

}  // namespace dcc::baselines
