#include "dcc/bcast/local_broadcast.h"

#include <algorithm>
#include <unordered_set>

#include "dcc/bcast/sns.h"
#include "dcc/cluster/clustering.h"
#include "dcc/cluster/labeling.h"

namespace dcc::bcast {

namespace {
constexpr std::int32_t kPayloadMsg = 201;
}  // namespace

LocalBroadcastResult LocalBroadcast(sim::Exec& ex,
                                    const cluster::Profile& prof,
                                    const std::vector<std::size_t>& members,
                                    int gamma, std::uint64_t nonce) {
  const sinr::Network& net = ex.net();
  LocalBroadcastResult res;
  res.members = members.size();
  const Round start = ex.rounds();

  // Stage 1: 1-clustering of the whole set (Theorem 1).
  cluster::ClusteringResult cl =
      cluster::BuildClustering(ex, prof, members, gamma, nonce);
  res.clustering_rounds = cl.rounds;
  res.cluster_of = cl.cluster_of;

  // Stage 2: imperfect labeling within clusters (Lemma 11).
  cluster::LabelingResult lab = cluster::ImperfectLabeling(
      ex, prof, members, res.cluster_of, gamma, HashCombine(nonce, 0x6001u));
  res.labeling_rounds = lab.rounds;

  // Success oracle: per member, which comm-graph neighbors heard it, and
  // whether one round covered all of them.
  const auto& comm = net.CommGraph();
  std::vector<std::unordered_set<std::size_t>> covered(net.size());
  std::vector<char> single_round(net.size(), 0);
  auto observer = [&](Round, const std::vector<std::size_t>& tx,
                      const std::vector<sinr::Reception>& recs) {
    // Group receptions by sender.
    for (const std::size_t v : tx) {
      std::size_t got = 0;
      for (const auto& r : recs) {
        if (r.sender != v) continue;
        covered[v].insert(r.listener);
      }
      // single-round check: every comm neighbor of v received from v now
      bool all = true;
      for (const std::size_t w : comm[v]) {
        bool found = false;
        for (const auto& r : recs) {
          if (r.sender == v && r.listener == w) {
            found = true;
            break;
          }
        }
        if (!found) {
          all = false;
          break;
        }
        ++got;
      }
      if (all) single_round[v] = 1;
      (void)got;
    }
  };
  ex.SetObserver(observer);

  // Stage 3: Delta runs of SNS, the l-th by nodes labeled l. The label
  // bound is the clustered density (<= gamma), a public quantity.
  const Round sns_start = ex.rounds();
  const int max_label = std::max(gamma, lab.max_label);
  for (int l = 1; l <= max_label; ++l) {
    std::vector<sim::Participant> parts;
    for (const std::size_t idx : members) {
      const auto it = lab.label.find(net.id(idx));
      if (it != lab.label.end() && it->second == l) {
        parts.push_back(
            sim::Participant{idx, net.id(idx), res.cluster_of[idx]});
      }
    }
    if (parts.empty() && prof.early_stop) continue;
    RunSns(
        ex, prof, parts,
        [&](std::size_t) -> std::optional<sim::Message> {
          sim::Message m;
          m.kind = kPayloadMsg;
          return m;
        },
        [&](std::size_t, const sim::Message&) {},
        HashCombine(nonce, 0x6100u + l));
  }
  res.sns_rounds = ex.rounds() - sns_start;
  ex.SetObserver(nullptr);

  for (const std::size_t v : members) {
    if (single_round[v]) ++res.covered_single_round;
    bool all = true;
    for (const std::size_t w : comm[v]) {
      if (!covered[v].count(w)) {
        all = false;
        break;
      }
    }
    if (all) ++res.covered_cumulative;
  }
  res.rounds = ex.rounds() - start;
  return res;
}

}  // namespace dcc::bcast
