// The SINR round engine: given the set of transmitters in a round, computes
// which listeners successfully receive and from whom (Eq. 1 of the paper).
//
// Because beta > 1, at most one transmitter can satisfy the SINR constraint
// at a given listener, so reception resolves to "the strongest transmitter,
// if its SINR clears beta" — the engine computes exactly that.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "dcc/sinr/network.h"

namespace dcc::sinr {

// Result of one round for one listener.
struct Reception {
  std::size_t listener = 0;
  std::size_t sender = 0;
  double sinr = 0.0;
};

class Engine {
 public:
  explicit Engine(const Network& net);

  // Computes receptions for one round.
  //  * `transmitters`: indices of nodes transmitting this round.
  //  * `listeners`: indices of nodes listening (a transmitter never listens;
  //    passing it as a listener is an error).
  // Returns one entry per successful reception.
  std::vector<Reception> Step(const std::vector<std::size_t>& transmitters,
                              const std::vector<std::size_t>& listeners) const;

  // SINR of transmitter `v` at listener `u` under transmitter set T.
  double Sinr(std::size_t v, std::size_t u,
              const std::vector<std::size_t>& transmitters) const;

  // Total interference power at `u` from `transmitters` (no noise term).
  double InterferenceAt(std::size_t u,
                        const std::vector<std::size_t>& transmitters) const;

  const Network& net() const { return *net_; }

  // Cumulative counters (diagnostics for benches).
  struct Stats {
    std::int64_t rounds = 0;
    std::int64_t transmissions = 0;
    std::int64_t receptions = 0;
  };
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = {}; }

 private:
  const Network* net_;
  mutable Stats stats_;
};

}  // namespace dcc::sinr
