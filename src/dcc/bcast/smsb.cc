#include "dcc/bcast/smsb.h"

#include <algorithm>
#include <unordered_set>

#include "dcc/bcast/sns.h"
#include "dcc/cluster/labeling.h"
#include "dcc/cluster/radius_reduction.h"

namespace dcc::bcast {

namespace {
constexpr std::int32_t kBroadcastMsg = 211;
}  // namespace

SmsbResult SmsBroadcast(sim::Exec& ex, const cluster::Profile& prof,
                        const std::vector<std::size_t>& sources, int gamma,
                        int max_phases, std::uint64_t nonce) {
  const sinr::Network& net = ex.net();
  DCC_REQUIRE(!sources.empty(), "SmsBroadcast: need at least one source");
  for (std::size_t i = 0; i < sources.size(); ++i) {
    for (std::size_t j = i + 1; j < sources.size(); ++j) {
      DCC_REQUIRE(net.Distance(sources[i], sources[j]) >
                      1.0 - net.params().eps,
                  "SmsBroadcast: sources must be pairwise > 1-eps apart");
    }
  }

  const Round start = ex.rounds();
  SmsbResult res;
  res.awake_phase.assign(net.size(), -1);
  res.cluster_of.assign(net.size(), kNoCluster);

  // Phase 0: sources broadcast over SNS; receivers wake under the source's
  // cluster (cluster id = source id).
  std::vector<sim::Participant> src_parts;
  for (const std::size_t s : sources) {
    src_parts.push_back(sim::Participant{s, net.id(s), net.id(s)});
    res.awake_phase[s] = 0;
    res.cluster_of[s] = net.id(s);
  }
  std::vector<std::size_t> cohort;  // L_1
  RunSns(
      ex, prof, src_parts,
      [&](std::size_t idx) -> std::optional<sim::Message> {
        sim::Message m;
        m.kind = kBroadcastMsg;
        m.cluster = net.id(idx);
        return m;
      },
      [&](std::size_t listener, const sim::Message& m) {
        if (m.kind != kBroadcastMsg) return;
        if (res.awake_phase[listener] >= 0) return;
        res.awake_phase[listener] = 1;
        res.cluster_of[listener] = m.cluster;
        cohort.push_back(listener);
      },
      HashCombine(nonce, 0x7000u));

  // Phases i = 1, 2, ...: the cohort labels itself, locally broadcasts (by
  // label), wakes the next cohort, and the next cohort re-clusters.
  int phase = 1;
  for (; phase <= max_phases && !cohort.empty(); ++phase) {
    SmsbPhase ps;
    ps.cohort = cohort.size();
    const std::uint64_t pn = HashCombine(nonce, 0x7100u + phase);

    // Stage 1: imperfect labeling of the cohort.
    cluster::LabelingResult lab = cluster::ImperfectLabeling(
        ex, prof, cohort, res.cluster_of, gamma, HashCombine(pn, 1u));
    ps.label_rounds = lab.rounds;

    // Stage 2: Delta SNS runs; hearers wake and inherit clusters.
    std::vector<std::size_t> next_cohort;
    const Round sns_start = ex.rounds();
    const int max_label = std::max(gamma, lab.max_label);
    for (int l = 1; l <= max_label; ++l) {
      std::vector<sim::Participant> parts;
      for (const std::size_t idx : cohort) {
        const auto it = lab.label.find(net.id(idx));
        const int node_label = it == lab.label.end() ? 1 : it->second;
        if (node_label == l) {
          parts.push_back(
              sim::Participant{idx, net.id(idx), res.cluster_of[idx]});
        }
      }
      if (parts.empty() && prof.early_stop) continue;
      RunSns(
          ex, prof, parts,
          [&](std::size_t idx) -> std::optional<sim::Message> {
            sim::Message m;
            m.kind = kBroadcastMsg;
            m.cluster = res.cluster_of[idx];
            return m;
          },
          [&](std::size_t listener, const sim::Message& m) {
            if (m.kind != kBroadcastMsg) return;
            if (res.awake_phase[listener] >= 0) return;
            res.awake_phase[listener] = phase + 1;
            res.cluster_of[listener] = m.cluster;  // inherit: 2-clustering
            next_cohort.push_back(listener);
          },
          HashCombine(pn, 0x100u + l));
    }
    ps.sns_rounds = ex.rounds() - sns_start;
    ps.newly_awake = next_cohort.size();

    // Stage 3: reduce the inherited 2-clustering of L_{i+1} to radius 1.
    if (!next_cohort.empty()) {
      const Round rr_start = ex.rounds();
      cluster::RadiusReduction(ex, prof, next_cohort, res.cluster_of, gamma,
                               HashCombine(pn, 3u));
      ps.rr_rounds = ex.rounds() - rr_start;
      std::unordered_set<ClusterId> distinct;
      for (const std::size_t idx : next_cohort) {
        distinct.insert(res.cluster_of[idx]);
      }
      ps.clusters = static_cast<int>(distinct.size());
    }

    res.phase_stats.push_back(ps);
    cohort = std::move(next_cohort);
  }

  res.phases = phase - 1;
  for (const int ph : res.awake_phase) {
    if (ph >= 0) ++res.awake;
  }
  res.all_awake = res.awake == net.size();
  res.rounds = ex.rounds() - start;
  return res;
}

}  // namespace dcc::bcast
