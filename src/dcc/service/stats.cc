#include "dcc/service/stats.h"

#include <ostream>

#include "dcc/common/json.h"

namespace dcc::service {

namespace {

double Rate(std::int64_t hits, std::int64_t misses) {
  const std::int64_t lookups = hits + misses;
  return lookups == 0
             ? 0.0
             : static_cast<double>(hits) / static_cast<double>(lookups);
}

}  // namespace

void ServiceStats::PrintJson(std::ostream& os) const {
  os << "{\"schema\": \"dcc.service.v1\", \"uptime_ms\": " << uptime_ms
     << ", \"connections_active\": " << connections_active
     << ", \"connections_total\": " << connections_total
     << ", \"requests\": " << requests << ", \"runs\": " << runs
     << ", \"errors\": " << errors << ", \"result_hits\": " << result_hits
     << ", \"result_misses\": " << result_misses
     << ", \"result_hit_rate\": " << JsonNumber(Rate(result_hits,
                                                     result_misses))
     << ", \"topology_hits\": " << topology_hits
     << ", \"topology_misses\": " << topology_misses
     << ", \"topology_hit_rate\": " << JsonNumber(Rate(topology_hits,
                                                       topology_misses))
     << ", \"queue_depth\": " << queue_depth
     << ", \"queue_peak\": " << queue_peak
     << ", \"queue_capacity\": " << queue_capacity
     << ", \"throughput_rps\": " << JsonNumber(throughput_rps)
     << ", \"latency_ms_p50\": " << JsonNumber(latency_ms_p50)
     << ", \"latency_ms_p99\": " << JsonNumber(latency_ms_p99)
     << ", \"draining\": " << (draining ? "true" : "false") << '}';
}

}  // namespace dcc::service
