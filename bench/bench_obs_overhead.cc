// bench_obs_overhead — the price of the observability layer
// (src/dcc/obs): grid-mode SINR rounds with the tracer compiled in but
// DISABLED versus the same rounds with it ENABLED and recording.
//
// The layer's contract is that instrumentation compiled into the hot
// path (engine rounds, shards, clustering phases) costs one relaxed
// atomic load per site when tracing is off. This bench prices that
// contract end to end: for each n it times ms/round traced off and on,
// re-checks receptions bit-identical across the flip (tracing is pure
// observation — the trace must never feed back into scheduling), and
// reports the measured cost of the disabled check itself.
//
// Flags:
//   --compare_json   one JSON object per line (dcc.bench.obs_overhead.v1)
//   --full           extend the size ladder
//
// CI appends the JSON to the stream scripts/bench_trend.py tracks in
// BENCH_trend.json (keyed on (n, trace), value ms_per_round); the
// trace=off configs enter a tightened 1% regression gate — the "tracing
// compiled in but off is free" invariant, watched as a trend.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "dcc/obs/trace.h"
#include "dcc/scenario/scenario.h"
#include "dcc/scenario/spec.h"
#include "dcc/sinr/engine.h"

namespace {

using Clock = std::chrono::steady_clock;
using dcc::obs::Tracer;
using dcc::obs::TraceSummary;
using dcc::scenario::ScenarioSpec;
using dcc::sinr::Engine;
using dcc::sinr::Network;
using dcc::sinr::Reception;

ScenarioSpec MakeSpec(int n) {
  const double side = std::sqrt(static_cast<double>(n));
  char topo[64];
  std::snprintf(topo, sizeof topo, "--topology=uniform:n=%d,side=%g", n, side);
  return ScenarioSpec::FromArgs({topo});
}

bool SameReceptions(const std::vector<Reception>& a,
                    const std::vector<Reception>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].listener != b[i].listener || a[i].sender != b[i].sender ||
        a[i].sinr != b[i].sinr) {
      return false;
    }
  }
  return true;
}

// ms per round, over enough rounds to fill ~300 ms of wall clock.
double TimeRounds(const Engine& eng, const std::vector<std::size_t>& tx,
                  const std::vector<std::size_t>& listeners) {
  std::vector<Reception> out;
  const auto w0 = Clock::now();
  eng.StepInto(tx, listeners, out);
  const double warm_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - w0).count();
  const int rounds = std::max(3, static_cast<int>(300.0 / (warm_ms + 0.01)));
  const auto t0 = Clock::now();
  for (int r = 0; r < rounds; ++r) eng.StepInto(tx, listeners, out);
  const double ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  return ms / rounds;
}

void EmitLine(bool json, int n, const char* trace, double ms, double overhead,
              std::int64_t events, std::int64_t dropped, bool identical,
              int* bad) {
  *bad += identical ? 0 : 1;
  if (json) {
    std::cout << "{\"schema\": \"dcc.bench.obs_overhead.v1\", \"n\": " << n
              << ", \"trace\": \"" << trace << "\", \"ms_per_round\": " << ms
              << ", \"overhead_pct\": " << overhead
              << ", \"events\": " << events << ", \"dropped\": " << dropped
              << ", \"identical\": " << (identical ? "true" : "false")
              << "}\n";
  } else {
    std::printf("%7d  %-5s  %8.3f  %7.2f%%  %9lld  %9lld  %s\n", n, trace, ms,
                overhead, static_cast<long long>(events),
                static_cast<long long>(dropped), identical ? "yes" : "NO");
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--compare_json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    } else {
      std::cerr << "usage: bench_obs_overhead [--compare_json] [--full]\n";
      return 2;
    }
  }

  std::vector<int> sizes{16384, 65536};
  if (full) sizes.push_back(262144);
  constexpr std::uint64_t kSeed = 42;

  if (!json) {
    std::cout << "observability overhead (grid engine; trace=off must be "
                 "free, trace=on prices recording)\n"
              << "      n  trace  ms/round  overhead     events    dropped  "
                 "identical\n";
  }

  int bad = 0;
  for (const int n : sizes) {
    const ScenarioSpec spec = MakeSpec(n);
    const Network net = dcc::scenario::BuildScenarioNetwork(spec, kSeed);
    std::vector<std::size_t> tx, listeners;
    for (std::size_t i = 0; i < net.size(); ++i) {
      (i % 8 == 0 ? tx : listeners).push_back(i);
    }

    const Engine::Options grid{.mode = Engine::Mode::kGrid};
    const Engine eng(net, grid);

    Tracer::Global().Disable();
    const std::vector<Reception> want = eng.Step(tx, listeners);
    const double off_ms = TimeRounds(eng, tx, listeners);
    EmitLine(json, n, "off", off_ms, 0.0, 0, 0, true, &bad);

    Tracer::Global().Enable();
    const bool identical = SameReceptions(want, eng.Step(tx, listeners));
    const double on_ms = TimeRounds(eng, tx, listeners);
    std::ofstream devnull;  // unopened: Drain's writes are discarded
    const TraceSummary sum = Tracer::Global().Drain(devnull);
    EmitLine(json, n, "on", on_ms, (on_ms / off_ms - 1.0) * 100.0, sum.events,
             sum.dropped, identical, &bad);
    if (!json) {
      std::printf("         (disabled check: %lld ns / 1000 calls)\n",
                  static_cast<long long>(sum.overhead_ns));
    }
  }
  if (bad > 0) {
    std::cerr << "bench_obs_overhead: " << bad
              << " configurations changed receptions when tracing flipped\n";
    return 1;
  }
  return 0;
}
