#include "dcc/parallel/shard_plan.h"

#include <algorithm>

#include "dcc/common/types.h"

namespace dcc::parallel {

void ShardPlan::Reset(int n_tiles, int shards, ShardPolicy policy,
                      std::span<const std::uint32_t> weights) {
  DCC_REQUIRE(n_tiles >= 0, "ShardPlan: negative tile count");
  DCC_REQUIRE(shards >= 1, "ShardPlan: at least one shard required");
  bounds_.clear();
  bounds_.reserve(static_cast<std::size_t>(shards) + 1);
  bounds_.push_back(0);

  if (policy == ShardPolicy::kEven || n_tiles == 0) {
    for (int k = 1; k <= shards; ++k) {
      bounds_.push_back(static_cast<int>(
          (static_cast<std::int64_t>(n_tiles) * k) / shards));
    }
    return;
  }

  DCC_REQUIRE(weights.size() == static_cast<std::size_t>(n_tiles),
              "ShardPlan: weights must cover every tile");
  std::uint64_t total = 0;
  for (const std::uint32_t w : weights) total += w;

  // Cut after the tile whose cumulative weight first reaches k/K of the
  // total. Integer thresholds keep the plan exactly reproducible.
  std::uint64_t cum = 0;
  int tile = 0;
  for (int k = 1; k < shards; ++k) {
    const std::uint64_t target = (total * static_cast<std::uint64_t>(k)) /
                                 static_cast<std::uint64_t>(shards);
    while (tile < n_tiles && cum < target) {
      cum += weights[static_cast<std::size_t>(tile)];
      ++tile;
    }
    bounds_.push_back(tile);
  }
  bounds_.push_back(n_tiles);
}

int ShardPlan::ShardOfTile(int tile) const {
  DCC_CHECK(tile >= 0 && tile < bounds_.back());
  // The owning shard is the last bound <= tile.
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), tile);
  return static_cast<int>(it - bounds_.begin()) - 1;
}

}  // namespace dcc::parallel
