// Executing ScenarioSpecs: one run per seed, or a seed sweep on a thread
// pool. This is the umbrella header of the scenario layer — include this
// to drive experiments, registry.h to extend it.
#pragma once

#include <cstdint>
#include <vector>

#include "dcc/scenario/registry.h"
#include "dcc/scenario/report.h"
#include "dcc/scenario/spec.h"

namespace dcc::scenario {

// Runs the spec once under `seed`: resolve the topology, build the network
// (ids from id_seed, default seed+1), inject faults, resolve and run the
// algorithm, validate. Never throws — a failed run returns a report with
// ok = false and the error message.
RunReport RunScenario(const ScenarioSpec& spec, std::uint64_t seed);

// Runs the spec over its sweep grid — spec.seeds, crossed with
// spec.sweep_values over topology parameter spec.sweep_key when set — on
// the process-wide parallel::WorkerPool, capped at spec.threads workers
// (0 = the pool's full parallelism). Every run builds its own
// Network/Exec, so the result is independent of the thread count and
// equal to serial execution; reports come back in grid order
// (value-major, then seed). Engines inside a pool-occupying sweep run
// their rounds serially (nested fan-outs go inline); a single-job sweep
// leaves the pool to the engine's shards.
std::vector<RunReport> RunSweep(const ScenarioSpec& spec);

}  // namespace dcc::scenario
