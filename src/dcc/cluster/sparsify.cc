#include "dcc/cluster/sparsify.h"

#include <algorithm>
#include <optional>

#include "dcc/mis/linial.h"
#include "dcc/mis/local_mis.h"
#include "dcc/obs/trace.h"

namespace dcc::cluster {

namespace {

constexpr std::int32_t kMisStateMsg = 111;
constexpr std::int32_t kInYMsg = 112;
constexpr std::int32_t kParentClaimMsg = 113;
constexpr std::int32_t kColorMsg = 114;

// Replays `stage.schedule` once over the stage participants; `payload(p)`
// produces the message for participant position p (nullopt = silent).
// Receptions are filtered to participants and delivered as positions.
void ReplayOnce(
    sim::Exec& ex, const ExchangeStage& stage,
    const std::function<std::optional<sim::Message>(std::size_t)>& payload,
    const std::function<void(std::size_t, const sim::Message&)>& on_hear) {
  std::unordered_map<std::size_t, std::size_t> pos_of_index;
  pos_of_index.reserve(stage.participants.size());
  for (std::size_t p = 0; p < stage.participants.size(); ++p) {
    pos_of_index.emplace(stage.participants[p].index, p);
  }
  sim::ExecuteSchedule(
      ex, *stage.schedule, stage.participants,
      [&](std::size_t idx, std::int64_t) { return payload(pos_of_index.at(idx)); },
      [&](std::size_t listener, const sim::Message& m, std::int64_t) {
        const auto it = pos_of_index.find(listener);
        if (it == pos_of_index.end()) return;
        on_hear(it->second, m);
      });
}

}  // namespace

SparsifyResult Sparsify(sim::Exec& ex, const Profile& prof,
                        const std::vector<std::size_t>& active,
                        const std::vector<ClusterId>& cluster_of, int gamma,
                        bool clustered, std::uint64_t nonce) {
  DCC_TRACE_SPAN("cluster.sparsify");
  const sinr::Network& net = ex.net();
  const Round start = ex.rounds();
  SparsifyResult res;

  std::vector<std::size_t> cur = active;  // Active
  std::vector<std::size_t> parents;       // Prnts
  std::vector<char> is_parent(net.size(), 0);
  int idle_iters = 0;

  for (int iter = 1; iter <= gamma; ++iter) {
    if (cur.empty()) break;

    // Participants snapshot for this iteration.
    std::vector<sim::Participant> parts;
    parts.reserve(cur.size());
    for (const std::size_t idx : cur) {
      parts.push_back(sim::Participant{
          idx, net.id(idx),
          clustered ? cluster_of[idx] : kNoCluster});
    }

    const std::uint64_t stage_nonce =
        HashCombine(nonce, static_cast<std::uint64_t>(iter));
    ProximityResult prox =
        BuildProximityGraph(ex, prof, parts, clustered, stage_nonce);
    const ExchangeStage stage{prox.schedule, parts};
    const int stage_index = static_cast<int>(res.stages.size());
    res.stages.push_back(stage);

    const std::size_t np = parts.size();

    // --- Independent set Y ------------------------------------------------
    std::vector<char> in_y(np, 0);
    // What each node knows about its neighbors' Y-membership.
    std::vector<std::vector<std::size_t>> y_neighbors(np);

    if (clustered) {
      // Local minima by ID (v knows its H-neighbors' IDs from Alg. 1).
      for (std::size_t p = 0; p < np; ++p) {
        bool is_min = true;
        for (const std::size_t w : prox.adj[p]) {
          if (parts[w].id < parts[p].id) {
            is_min = false;
            break;
          }
        }
        in_y[p] = is_min ? 1 : 0;
      }
      // One replay: everyone announces its Y flag; H-neighbors hear it
      // (H-edge deliveries recur under replays — see proximity.h).
      std::vector<std::vector<std::pair<std::size_t, char>>> heard_flags(np);
      ReplayOnce(
          ex, stage,
          [&](std::size_t p) -> std::optional<sim::Message> {
            sim::Message m;
            m.src = parts[p].id;
            m.cluster = parts[p].cluster;
            m.kind = kInYMsg;
            m.a = in_y[p];
            return m;
          },
          [&](std::size_t p, const sim::Message& m) {
            if (m.kind != kInYMsg) return;
            for (const std::size_t w : prox.adj[p]) {
              if (parts[w].id == m.src) {
                if (m.a) y_neighbors[p].push_back(w);
                return;
              }
            }
          });
    } else if (prof.use_linial_mis) {
      // Theory path: Linial color reduction + color-class MIS sweep over H,
      // one schedule replay per LOCAL round (DESIGN.md §4.2). Round counts
      // are O((log* N + Delta_H^2) log N); intended for theory-mode runs.
      const std::int64_t id_space = ex.net().params().id_space;
      const int deg_bound = prof.kappa;
      std::vector<std::int64_t> color(np);
      for (std::size_t p = 0; p < np; ++p) color[p] = parts[p].id - 1;
      const auto plan = mis::LinialPlan(id_space, deg_bound);
      for (const mis::LinialRound& lr : plan) {
        std::vector<std::vector<std::int64_t>> ncolors(np);
        ReplayOnce(
            ex, stage,
            [&](std::size_t p) -> std::optional<sim::Message> {
              sim::Message m;
              m.src = parts[p].id;
              m.kind = kColorMsg;
              m.a = color[p];
              return m;
            },
            [&](std::size_t p, const sim::Message& m) {
              if (m.kind != kColorMsg) return;
              for (const std::size_t w : prox.adj[p]) {
                if (parts[w].id == m.src) {
                  ncolors[p].push_back(m.a);
                  return;
                }
              }
            });
        for (std::size_t p = 0; p < np; ++p) {
          color[p] = mis::LinialStep(color[p], ncolors[p], lr);
        }
      }
      const std::int64_t num_colors =
          plan.empty() ? id_space : plan.back().q * plan.back().q;
      // Color-class sweep: class c joins unless a neighbor already did.
      std::vector<mis::MisState> state(np, mis::MisState::kUndecided);
      for (std::int64_t cls = 0; cls < num_colors; ++cls) {
        std::vector<std::vector<std::pair<NodeId, mis::MisState>>> inbox(np);
        ReplayOnce(
            ex, stage,
            [&](std::size_t p) -> std::optional<sim::Message> {
              sim::Message m;
              m.src = parts[p].id;
              m.kind = kMisStateMsg;
              m.a = static_cast<std::int64_t>(state[p]);
              return m;
            },
            [&](std::size_t p, const sim::Message& m) {
              if (m.kind != kMisStateMsg) return;
              for (const std::size_t w : prox.adj[p]) {
                if (parts[w].id == m.src) {
                  inbox[p].emplace_back(m.src,
                                        static_cast<mis::MisState>(m.a));
                  return;
                }
              }
            });
        for (std::size_t p = 0; p < np; ++p) {
          if (state[p] != mis::MisState::kUndecided) continue;
          bool neighbor_in = false;
          for (const auto& [nid, ns] : inbox[p]) {
            if (ns == mis::MisState::kInMis) neighbor_in = true;
          }
          if (neighbor_in) {
            state[p] = mis::MisState::kDominated;
          } else if (color[p] == cls) {
            state[p] = mis::MisState::kInMis;
          }
        }
        if (prof.early_stop) {
          bool any_undecided = false;
          for (const auto s : state) {
            if (s == mis::MisState::kUndecided) any_undecided = true;
          }
          if (!any_undecided) break;
        }
      }
      for (std::size_t p = 0; p < np; ++p) {
        in_y[p] = state[p] == mis::MisState::kInMis ? 1 : 0;
      }
      // Final Y-flag broadcast (as in the fast path below).
      ReplayOnce(
          ex, stage,
          [&](std::size_t p) -> std::optional<sim::Message> {
            sim::Message m;
            m.src = parts[p].id;
            m.kind = kInYMsg;
            m.a = in_y[p];
            return m;
          },
          [&](std::size_t p, const sim::Message& m) {
            if (m.kind != kInYMsg) return;
            for (const std::size_t w : prox.adj[p]) {
              if (parts[w].id == m.src) {
                if (m.a) y_neighbors[p].push_back(w);
                return;
              }
            }
          });
    } else {
      // LOCAL-model MIS over H, one schedule replay per LOCAL round.
      std::vector<mis::MisState> state(np, mis::MisState::kUndecided);
      std::vector<std::vector<std::pair<NodeId, mis::MisState>>> inbox(np);
      const int rounds_cap = std::max(prof.mis_rounds, 1);
      for (int r = 0; r < rounds_cap; ++r) {
        for (auto& in : inbox) in.clear();
        ReplayOnce(
            ex, stage,
            [&](std::size_t p) -> std::optional<sim::Message> {
              sim::Message m;
              m.src = parts[p].id;
              m.kind = kMisStateMsg;
              m.a = static_cast<std::int64_t>(state[p]);
              return m;
            },
            [&](std::size_t p, const sim::Message& m) {
              if (m.kind != kMisStateMsg) return;
              // Accept only H-neighbors.
              for (const std::size_t w : prox.adj[p]) {
                if (parts[w].id == m.src) {
                  inbox[p].emplace_back(m.src,
                                        static_cast<mis::MisState>(m.a));
                  return;
                }
              }
            });
        bool changed = false;
        std::vector<mis::MisState> next(state);
        for (std::size_t p = 0; p < np; ++p) {
          next[p] = mis::LocalMinimaStep(parts[p].id, state[p], inbox[p]);
          changed = changed || next[p] != state[p];
        }
        state = std::move(next);
        if (prof.early_stop && !changed) break;
      }
      for (std::size_t p = 0; p < np; ++p) {
        in_y[p] = state[p] == mis::MisState::kInMis ? 1 : 0;
      }
      // Y-neighborhood knowledge from the final states heard: replay once
      // more so every node sees neighbors' final states.
      ReplayOnce(
          ex, stage,
          [&](std::size_t p) -> std::optional<sim::Message> {
            sim::Message m;
            m.src = parts[p].id;
            m.kind = kInYMsg;
            m.a = in_y[p];
            return m;
          },
          [&](std::size_t p, const sim::Message& m) {
            if (m.kind != kInYMsg) return;
            for (const std::size_t w : prox.adj[p]) {
              if (parts[w].id == m.src) {
                if (m.a) y_neighbors[p].push_back(w);
                return;
              }
            }
          });
    }

    // --- Children link to parents ------------------------------------------
    // NewChl = {v not in Y with a Y-neighbor}; parent = min-ID Y-neighbor.
    std::vector<std::optional<std::size_t>> parent_pos(np);
    for (std::size_t p = 0; p < np; ++p) {
      if (in_y[p] || y_neighbors[p].empty()) continue;
      std::size_t best = y_neighbors[p][0];
      for (const std::size_t w : y_neighbors[p]) {
        if (parts[w].id < parts[best].id) best = w;
      }
      parent_pos[p] = best;
    }

    // One replay: children claim their parents; parents learn children.
    std::vector<char> has_children(np, 0);
    ReplayOnce(
        ex, stage,
        [&](std::size_t p) -> std::optional<sim::Message> {
          if (!parent_pos[p]) return std::nullopt;
          sim::Message m;
          m.src = parts[p].id;
          m.cluster = parts[p].cluster;
          m.kind = kParentClaimMsg;
          m.a = parts[*parent_pos[p]].id;
          return m;
        },
        [&](std::size_t p, const sim::Message& m) {
          if (m.kind != kParentClaimMsg) return;
          if (m.a == parts[p].id) has_children[p] = 1;
        });

    // --- Retire children and (new) parents from Active ----------------------
    std::vector<std::size_t> next_active;
    int removed = 0;
    for (std::size_t p = 0; p < np; ++p) {
      const std::size_t idx = parts[p].index;
      if (parent_pos[p]) {
        res.links[parts[p].id] =
            ParentLink{parts[*parent_pos[p]].id, stage_index};
        ++removed;
        continue;  // child: retired for good
      }
      if (has_children[p]) {
        if (!is_parent[idx]) {
          is_parent[idx] = 1;
          parents.push_back(idx);
        }
        ++removed;
        continue;  // parent: retired from Active, kept in the return set
      }
      next_active.push_back(idx);
    }
    cur = std::move(next_active);
    res.iterations_run = iter;

    if (removed == 0) {
      ++idle_iters;
      if (prof.early_stop && idle_iters >= 2) break;
    } else {
      idle_iters = 0;
    }
  }

  res.returned = cur;
  res.returned.insert(res.returned.end(), parents.begin(), parents.end());
  std::sort(res.returned.begin(), res.returned.end());
  res.rounds = ex.rounds() - start;
  return res;
}

SparsifyChain SparsifyU(sim::Exec& ex, const Profile& prof,
                        const std::vector<std::size_t>& active, int gamma,
                        std::uint64_t nonce) {
  const Round start = ex.rounds();
  SparsifyChain chain;
  chain.sets.push_back(active);
  const std::vector<ClusterId> empty_clusters(ex.net().size(), kNoCluster);
  for (int i = 0; i < prof.l_uncl; ++i) {
    SparsifyResult r =
        Sparsify(ex, prof, chain.sets.back(), empty_clusters, gamma,
                 /*clustered=*/false, HashCombine(nonce, 0x1000u + i));
    const int stage_offset = static_cast<int>(chain.stages.size());
    for (auto& st : r.stages) chain.stages.push_back(std::move(st));
    for (const auto& [child, link] : r.links) {
      chain.links[child] = ParentLink{link.parent, link.stage + stage_offset};
    }
    chain.sets.push_back(std::move(r.returned));
  }
  chain.rounds = ex.rounds() - start;
  return chain;
}

}  // namespace dcc::cluster
