# Empty dependencies file for leader_election_demo.
# This may be replaced when dependencies are built.
