// Structured result of one scenario run: the spec coordinates that produced
// it, a pass/fail verdict from the algorithm's validator, and a named-metric
// recorder (round counts, validation measurements, diagnostics). Serializes
// to schema-stable JSON ("dcc.run_report.v1") for downstream tooling.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "dcc/stats/recorder.h"

namespace dcc::scenario {

struct RunReport {
  std::string topology;
  std::string algo;
  std::uint64_t seed = 0;
  // Verdict of the algorithm's own validation (geometric postconditions,
  // coverage, agreement...). A run that threw has ok = false and `error`.
  bool ok = false;
  std::string error;
  stats::Recorder metrics;

  // Dynamic runs only ("dcc.dynamic.v1"): one metric set per epoch
  // (rounds, clusters, unassigned, survival...). Static runs leave it
  // empty and the JSON omits the section entirely.
  struct DynamicSection {
    std::string model;          // mobility model name
    double epoch_len = 0.0;     // simulated time per epoch
    std::vector<stats::Recorder> epochs;
    bool empty() const { return epochs.empty(); }
  };
  DynamicSection dynamic;

  void PrintJson(std::ostream& os) const;
};

// Sweep envelope ("dcc.sweep.v1"): the canonical spec line + all runs.
void PrintSweepJson(std::ostream& os, const std::string& spec_line,
                    const std::vector<RunReport>& runs);

}  // namespace dcc::scenario
