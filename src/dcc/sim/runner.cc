#include "dcc/sim/runner.h"

#include <algorithm>

namespace dcc::sim {

Exec::Exec(const sinr::Network& net, sinr::Engine::Options engine_options)
    : net_(&net), engine_(net, engine_options) {
  is_tx_.assign(net.size(), 0);
}

void Exec::SetBackgroundTransmitters(std::vector<std::size_t> nodes,
                                     Message msg) {
  for (const std::size_t i : nodes) {
    DCC_REQUIRE(i < net_->size(), "background transmitter index out of range");
  }
  background_ = std::move(nodes);
  background_msg_ = msg;
}

void Exec::SetActivityMask(std::span<const char> mask) {
  DCC_REQUIRE(mask.empty() || mask.size() == net_->size(),
              "SetActivityMask: mask size must equal the node count");
  active_ = mask;
}

int Exec::RunRound(const std::vector<std::size_t>& candidates,
                   const Decide& decide, const Hear& hear) {
  tx_.clear();
  msgs_.clear();
  // Off nodes are filtered on the transmit side too (not just as
  // listeners): a stale candidate list crossing a churn epoch must not put
  // an index-erased node in front of the engine.
  const auto on = [&](std::size_t i) {
    return active_.empty() || active_[i];
  };
  for (const std::size_t i : candidates) {
    if (!on(i)) continue;
    if (auto m = decide(i)) {
      tx_.push_back(i);
      msgs_.push_back(*m);
    }
  }
  for (const std::size_t j : background_) {
    if (!on(j)) continue;
    if (std::find(tx_.begin(), tx_.end(), j) == tx_.end()) {
      tx_.push_back(j);
      msgs_.push_back(background_msg_);
    }
  }
  ++round_;
  max_tx_ = std::max(max_tx_, static_cast<int>(tx_.size()));
  const std::size_t n = net_->size();
  // Disclose the next round (if predictable) before stepping this one: the
  // engine then overlaps the next prologue build with this round's shard
  // resolution. round_ has already advanced, so it IS the next round's
  // global number. Runs even when this round has no transmitters — sparse
  // schedules (think a TDMA slot nobody owns) would otherwise lose the
  // disclosure for the next occupied slot.
  if (lookahead_ && engine_.pipeline_enabled()) {
    next_tx_.clear();
    if (lookahead_(round_, next_tx_)) {
      std::erase_if(next_tx_, [&](std::size_t i) { return !on(i); });
      for (const std::size_t j : background_) {
        if (!on(j)) continue;
        if (std::find(next_tx_.begin(), next_tx_.end(), j) == next_tx_.end()) {
          next_tx_.push_back(j);
        }
      }
      if (next_is_tx_.size() != n) next_is_tx_.assign(n, 0);
      for (const std::size_t i : next_tx_) next_is_tx_[i] = 1;
      next_listeners_.clear();
      for (std::size_t u = 0; u < n; ++u) {
        if (!next_is_tx_[u] && on(u)) next_listeners_.push_back(u);
      }
      for (const std::size_t i : next_tx_) next_is_tx_[i] = 0;
      engine_.SetNextRound(next_tx_, next_listeners_);
    } else {
      engine_.ClearNextRound();
    }
  }
  if (tx_.empty()) {
    // No step will run this round, so the launch site inside the engine's
    // step can't fire; kick the disclosed build now.
    engine_.PumpPrefetch();
    if (observer_) observer_(round_ - 1, tx_, {});
    return 0;
  }

  if (slot_of_.size() != net_->size()) slot_of_.assign(net_->size(), 0);
  for (std::size_t s = 0; s < tx_.size(); ++s) {
    is_tx_[tx_[s]] = 1;
    slot_of_[tx_[s]] = s;
  }
  listeners_.clear();
  for (std::size_t u = 0; u < n; ++u) {
    if (!is_tx_[u] && (active_.empty() || active_[u])) listeners_.push_back(u);
  }

  engine_.StepInto(tx_, listeners_, receptions_);
  if (observer_) observer_(round_ - 1, tx_, receptions_);
  for (const auto& rec : receptions_) {
    hear(rec.listener, msgs_[slot_of_[rec.sender]]);
  }
  for (const std::size_t i : tx_) is_tx_[i] = 0;
  return static_cast<int>(tx_.size());
}

Round Runner::Run(std::vector<NodeProtocol*> protocols, Round max_rounds) {
  DCC_REQUIRE(protocols.size() == exec_.net().size(),
              "Runner: one protocol per node");
  std::vector<std::size_t> all(protocols.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  Round executed = 0;
  while (executed < max_rounds) {
    bool all_done = true;
    for (const auto* p : protocols) {
      if (p != nullptr && !p->Done()) {
        all_done = false;
        break;
      }
    }
    if (all_done) break;
    const Round r = exec_.rounds();
    exec_.RunRound(
        all,
        [&](std::size_t i) -> std::optional<Message> {
          return protocols[i] ? protocols[i]->OnRound(r) : std::nullopt;
        },
        [&](std::size_t i, const Message& m) {
          if (protocols[i]) protocols[i]->OnHear(r, m);
        });
    ++executed;
  }
  return executed;
}

}  // namespace dcc::sim
