# Empty dependencies file for wcss_test.
# This may be replaced when dependencies are built.
