file(REMOVE_RECURSE
  "CMakeFiles/sns_test.dir/tests/sns_test.cc.o"
  "CMakeFiles/sns_test.dir/tests/sns_test.cc.o.d"
  "sns_test"
  "sns_test.pdb"
  "sns_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sns_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
