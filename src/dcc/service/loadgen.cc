#include "dcc/service/loadgen.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "dcc/common/types.h"
#include "dcc/obs/histogram.h"
#include "dcc/service/client.h"

namespace dcc::service {

LoadResult RunLoad(const LoadSpec& spec) {
  DCC_REQUIRE(!spec.socket_path.empty(), "loadgen: socket_path required");
  DCC_REQUIRE(!spec.spec_lines.empty(), "loadgen: at least one spec line");
  DCC_REQUIRE(!spec.seeds.empty(), "loadgen: at least one seed");
  DCC_REQUIRE(spec.connections >= 1, "loadgen: connections must be >= 1");
  DCC_REQUIRE(spec.requests >= 1, "loadgen: requests must be >= 1");

  struct Pair {
    std::string line;
    std::uint64_t seed;
  };
  std::vector<Pair> pairs;
  for (const std::string& line : spec.spec_lines) {
    for (const std::uint64_t seed : spec.seeds) pairs.push_back({line, seed});
  }

  std::mutex mu;  // guards the tallies and the reference-report map
  std::unordered_map<std::string, std::string> reference;  // pair key -> bytes
  LoadResult out;
  obs::Pow2Histogram latency_us;  // atomic buckets; recorded outside `mu`
  std::atomic<int> next_request{0};
  std::exception_ptr failure;

  const auto worker = [&] {
    Client client(spec.socket_path);
    try {
      for (;;) {
        const int idx = next_request.fetch_add(1, std::memory_order_relaxed);
        if (idx >= spec.requests) break;
        const Pair& p = pairs[static_cast<std::size_t>(idx) % pairs.size()];
        const auto req0 = std::chrono::steady_clock::now();
        const Client::RunResult r = client.Run(p.line, p.seed);
        latency_us.Record(std::chrono::duration_cast<std::chrono::microseconds>(
                              std::chrono::steady_clock::now() - req0)
                              .count());
        std::lock_guard<std::mutex> lock(mu);
        ++out.requests;
        if (!r.ok) {
          ++out.errors;
          if (out.first_error.empty()) out.first_error = r.error;
          continue;
        }
        if (r.cached == "result") {
          ++out.result_cached;
        } else if (r.cached == "topology") {
          ++out.topology_cached;
        } else {
          ++out.uncached;
        }
        const std::string key = p.line + '\n' + std::to_string(p.seed);
        const auto [it, inserted] = reference.emplace(key, r.report);
        if (!inserted && it->second != r.report) {
          out.reports_consistent = false;
        }
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu);
      if (!failure) failure = std::current_exception();
    }
  };

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(spec.connections));
  for (int c = 0; c < spec.connections; ++c) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();
  const auto t1 = std::chrono::steady_clock::now();

  if (failure) std::rethrow_exception(failure);

  out.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  if (out.requests > 0) {
    // Per-request service time as seen by one connection: wall time is
    // shared by `connections` concurrent streams.
    out.ms_per_request = out.wall_ms * static_cast<double>(spec.connections) /
                         static_cast<double>(out.requests);
    out.rps = static_cast<double>(out.requests) / (out.wall_ms / 1000.0);
    out.p50_ms = latency_us.Quantile(0.50) / 1000.0;
    out.p90_ms = latency_us.Quantile(0.90) / 1000.0;
    out.p99_ms = latency_us.Quantile(0.99) / 1000.0;
  }
  return out;
}

}  // namespace dcc::service
