// Aligned-column table printing for benchmark output (paper tables and
// figure series are printed as rows), plus CSV export.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dcc {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Adds one row; cell count must match the header count.
  void AddRow(std::vector<std::string> cells);

  // Convenience: formats arithmetic values with %g-style formatting.
  static std::string Num(double v);
  static std::string Num(std::int64_t v);

  // Renders with padded columns, a header underline, and `indent` leading
  // spaces per line.
  void Print(std::ostream& os, int indent = 0) const;

  // Comma-separated form (no padding); suitable for piping into plotters.
  void PrintCsv(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dcc
