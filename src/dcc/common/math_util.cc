#include "dcc/common/math_util.h"

#include <cmath>

namespace dcc {

int CeilLog2(std::uint64_t x) {
  DCC_REQUIRE(x >= 1, "CeilLog2: x >= 1");
  int lg = 0;
  std::uint64_t v = 1;
  while (v < x) {
    v <<= 1;
    ++lg;
  }
  return lg;
}

int LogStar(double n) {
  int it = 0;
  double v = n;
  while (v > 1.0 + 1e-12) {
    v = std::log2(v);
    ++it;
    DCC_CHECK(it < 64);  // log* of any representable double is tiny
  }
  return it;
}

int CeilLog43(double x) {
  DCC_REQUIRE(x >= 1, "CeilLog43: x >= 1");
  if (x <= 1.0) return 0;
  return static_cast<int>(std::ceil(std::log(x) / std::log(4.0 / 3.0)));
}

bool IsPrime(std::int64_t x) {
  if (x < 2) return false;
  if (x < 4) return true;
  if (x % 2 == 0) return false;
  for (std::int64_t d = 3; d * d <= x; d += 2) {
    if (x % d == 0) return false;
  }
  return true;
}

std::vector<std::int64_t> PrimesInRange(std::int64_t lo, std::int64_t hi) {
  std::vector<std::int64_t> out;
  for (std::int64_t x = std::max<std::int64_t>(lo, 2); x <= hi; ++x) {
    if (IsPrime(x)) out.push_back(x);
  }
  return out;
}

std::int64_t NextPrime(std::int64_t x) {
  std::int64_t v = std::max<std::int64_t>(x, 2);
  while (!IsPrime(v)) ++v;
  return v;
}

}  // namespace dcc
