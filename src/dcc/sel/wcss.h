// Witnessed cluster-aware strong selectors (Lemma 3).
//
// An (N,k,l)-wcss is a sequence S_1..S_m of subsets of [N]x[N] (pairs
// (id, cluster)) such that for every set of clusters C (|C| = l), every
// cluster phi not in C, every X subset of [N]x{phi} with |X| = k, every
// x in X and every y in cluster phi outside X, there is a set S_i with:
//    S_i ∩ X = {x},   y in S_i,   and S_i free of all clusters in C.
//
// Existence with m = O((k+l) * l * k^2 * log N) is Lemma 3 (probabilistic
// method; cluster phi allowed with prob 1/l, element included with prob
// 1/k). We realize it as a seeded implicit membership predicate exactly
// mirroring that construction; see wss.h for the determinism argument.
#pragma once

#include <cstdint>

#include "dcc/common/rng.h"
#include "dcc/common/types.h"

namespace dcc::sel {

class Wcss {
 public:
  // Theory-shaped length: ceil(c * (k + l) * l * k^2 * ln N).
  static Wcss Construct(std::int64_t N, int k, int l, double c,
                        std::uint64_t seed);

  // Explicit length override (practical profiles).
  static Wcss WithLength(std::int64_t N, int k, int l, std::int64_t m,
                         std::uint64_t seed);

  std::int64_t size() const { return m_; }
  std::int64_t N() const { return n_; }
  int k() const { return k_; }
  int l() const { return l_; }

  // Is cluster phi "allowed" in round i? (prob 1/l)
  bool ClusterAllowed(std::int64_t i, ClusterId phi) const {
    return hash_.Coin(static_cast<std::uint64_t>(l_),
                      static_cast<std::uint64_t>(i),
                      static_cast<std::uint64_t>(phi), 0x1d8e4e27c47d124full);
  }

  // Is (x, phi) in S_i? Mirrors the Lemma 3 construction: the pair is
  // present iff its cluster is allowed and the element coin (prob 1/k) hits.
  bool Member(std::int64_t i, std::int64_t x, ClusterId phi) const {
    return ClusterAllowed(i, phi) &&
           hash_.Coin(static_cast<std::uint64_t>(k_),
                      static_cast<std::uint64_t>(i),
                      static_cast<std::uint64_t>(x),
                      static_cast<std::uint64_t>(phi));
  }

 private:
  Wcss(std::int64_t N, int k, int l, std::int64_t m, std::uint64_t seed)
      : n_(N), k_(k), l_(l), m_(m), hash_(seed) {}

  std::int64_t n_;
  int k_;
  int l_;
  std::int64_t m_;
  StatelessHash hash_;
};

}  // namespace dcc::sel
